// Benchmarks comparing the two execution backends (docs/VM.md): the
// tree-walking reference interpreter vs the bytecode VM, on identical
// workloads. The results feed BENCH_VM.json via `make bench-vm`
// (cmd/benchvm); the quick view is
//
//	go test -bench=BenchmarkBackend -benchtime 10x .
package eol

import (
	"fmt"
	"testing"

	"eol/internal/bench"
	"eol/internal/cfg"
	"eol/internal/core"
	"eol/internal/ddg"
	"eol/internal/implicit"
	"eol/internal/interp"
	"eol/internal/slicing"
	"eol/internal/trace"
	"eol/internal/verifyengine"
	"eol/internal/vm"
)

// vmBenchBackends pairs each backend with its registry name.
var vmBenchBackends = []struct {
	name string
	bk   interp.Backend
}{
	{"tree", interp.Tree},
	{"vm", vm.Backend},
}

// BenchmarkBackendInterp measures raw substrate speed per backend:
// plain and traced execution of the scaled grep analog.
func BenchmarkBackendInterp(b *testing.B) {
	p := prep(b, "grepsim/V4-F2")
	in := bench.ScaledGrepInput(400)
	for _, be := range vmBenchBackends {
		for _, mode := range []struct {
			name   string
			traced bool
		}{{"plain", false}, {"traced", true}} {
			b.Run(fmt.Sprintf("%s/%s", be.name, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := be.bk.Run(p.Faulty, interp.Options{Input: in, BuildTrace: mode.traced})
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			})
		}
	}
}

// BenchmarkBackendVerifyEngine measures the verification hot path — one
// expand iteration's batch of switched re-executions — per backend in
// the production configuration: a long failing trace (the scaled grep
// analog, the paper's Table 4 regime), checkpoints captured during the
// failing run (core.Spec's default), switched runs forked from them,
// sequential so the backend is the only variable. Traces are
// byte-identical across backends, so the requests computed from one
// tree-walker run of the scaled input are valid against either
// backend's own failing run.
func BenchmarkBackendVerifyEngine(b *testing.B) {
	p := prep(b, "grepsim/V4-F2")
	in := bench.ScaledGrepInput(400)
	run := interp.Run(p.Faulty, interp.Options{Input: in, BuildTrace: true})
	if run.Err != nil {
		b.Fatal(run.Err)
	}
	exp := interp.Run(p.Correct, interp.Options{Input: in}).OutputValues()
	seq, _, ok := slicing.FirstWrongOutput(run.OutputValues(), exp)
	if !ok {
		b.Fatal("scaled input did not expose the fault")
	}
	wrong := *run.Trace.OutputAt(seq)
	cx := slicing.NewContext(p.Faulty, run.Trace)
	g := ddg.New(run.Trace)
	slice := slicing.Dynamic(g, slicing.FailureSeeds(run.Trace, seq))
	var reqs []implicit.Request
	for _, u := range ddg.SortedEntries(slice) {
		for _, pd := range cx.PotentialDeps(u) {
			reqs = append(reqs, implicit.Request{
				Pred: pd.Pred, Use: u, UseSym: pd.UseSym, UseElem: pd.UseElem,
			})
		}
		if len(reqs) >= 96 {
			break
		}
	}
	if len(reqs) < 2 {
		b.Skip("workload too small")
	}
	for _, be := range vmBenchBackends {
		st := be.bk.NewCheckpoints(0)
		orig := be.bk.Run(p.Faulty, interp.Options{Input: in, BuildTrace: true, Checkpoints: st})
		if orig.Err != nil {
			b.Fatal(orig.Err)
		}
		b.Run(be.name, func(b *testing.B) {
			b.ReportMetric(float64(len(reqs)), "reqs")
			b.ReportMetric(float64(orig.Trace.Len()), "trace_entries")
			for i := 0; i < b.N; i++ {
				v := &implicit.Verifier{
					C: p.Faulty, Input: in, Orig: orig.Trace, WrongOut: wrong,
					Backend: be.bk, Checkpoints: st,
				}
				if seq < len(exp) {
					v.Vexp, v.HasVexp = exp[seq], true
				}
				e := verifyengine.New(v, verifyengine.Config{Workers: 1, CacheSize: -1})
				e.VerifyBatch(reqs)
			}
		})
	}
}

// BenchmarkBackendLocate measures the full demand-driven localization
// per backend on every benchmark case.
func BenchmarkBackendLocate(b *testing.B) {
	for _, name := range allCaseNames() {
		p := prep(b, name)
		for _, be := range vmBenchBackends {
			b.Run(fmt.Sprintf("%s/%s", name, be.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					spec := p.Spec()
					spec.Backend = be.bk
					spec.VerifyWorkers = 1
					spec.VerifyCacheSize = -1
					rep, err := core.Locate(spec)
					if err != nil {
						b.Fatal(err)
					}
					if !rep.Located {
						b.Fatalf("%s: not located", name)
					}
				}
			})
		}
	}
}

// BenchmarkBackendCheckpointReplay measures one forked switched
// re-execution from the nearest checkpoint per backend — the unit the
// VM reimplements as a pc/frame-stack snapshot restore.
func BenchmarkBackendCheckpointReplay(b *testing.B) {
	p := prep(b, "grepsim/V4-F2")
	in := bench.ScaledGrepInput(400)
	for _, be := range vmBenchBackends {
		st := be.bk.NewCheckpoints(0)
		run := be.bk.Run(p.Faulty, interp.Options{Input: in, BuildTrace: true, Checkpoints: st})
		if run.Err != nil {
			b.Fatal(run.Err)
		}
		tr := run.Trace
		budget := 10*tr.Len() + 1000
		var preds []trace.Instance
		for i := tr.Len() * 3 / 4; i < tr.Len() && len(preds) < 8; i++ {
			if e := tr.At(i); e.Branch != cfg.None {
				preds = append(preds, e.Inst)
			}
		}
		if len(preds) == 0 {
			b.Fatal("no late predicates in the scaled trace")
		}
		b.Run(be.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pred := preds[i%len(preds)]
				r := be.bk.RunSwitchedFrom(st, tr, p.Faulty, interp.Options{
					Input:      in,
					Switch:     &interp.SwitchPlan{Stmt: pred.Stmt, Occ: pred.Occ},
					StepBudget: budget,
				})
				if r == nil {
					b.Fatal("no checkpoint before a late predicate")
				}
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		})
	}
}
