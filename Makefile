# Convenience targets; tier-1 verification is `make build test`,
# the race lane (ROADMAP.md) is `make race`.

GO ?= go

.PHONY: all build test race vet lint bench bench-smoke bench-vm verify-table journal-smoke corpus-smoke checkpoint-smoke staticreach-smoke serve-smoke vm-smoke spec-smoke

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race lane: the verification engine fans verifications out over
# goroutines and shares cached switched traces between them — run the
# suite under the race detector whenever that machinery changes.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Lint lane: Go-level vet plus the MiniC static checker suite over the
# checked-in subjects (testdata/lint/ holds known-bad fixtures and is
# deliberately excluded).
lint: vet
	$(GO) run ./cmd/eolvet testdata/*.mc

bench:
	$(GO) test -bench . -benchmem -benchtime 10x .

# Bench smoke lane: every benchmark must still compile and survive one
# iteration (no measurements) — keeps the bench suite from bit-rotting
# between real benchmarking sessions.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Tree-vs-VM backend benchmark trajectory point (docs/VM.md): run the
# backend comparison suite and record per-workload ns/op plus tree/vm
# speedups in BENCH_VM.json via cmd/benchvm. Two -bench invocations
# because the benchmark name regex is matched per slash-separated
# element, so the Locate sub-case filter cannot be combined with the
# top-level family alternation.
bench-vm:
	( $(GO) test -run=NONE \
		-bench='BenchmarkBackend(Interp|VerifyEngine|CheckpointReplay)' \
		-benchtime=3x . && \
	  $(GO) test -run=NONE \
		-bench='BenchmarkBackendLocate/grepsim/V4-F2' \
		-benchtime=3x . ) | $(GO) run ./cmd/benchvm -o BENCH_VM.json

# Sequential vs parallel vs cached verification scheduling table.
verify-table:
	$(GO) run ./cmd/benchtab -table verify -reps 5

# Observability smoke: run one localization with the JSONL run journal
# on, then validate the journal (docs/OBSERVABILITY.md).
journal-smoke:
	$(GO) run ./cmd/eoloc -correct testdata/fig1_fixed.mc -input 1 \
		-root 'read() * 0' -trace /tmp/eol-journal-smoke.jsonl \
		testdata/fig1_faulty.mc
	$(GO) run ./cmd/journalcheck /tmp/eol-journal-smoke.jsonl

# Corpus smoke lane: sharded multi-subject localization over the smoke
# manifest — two fig1 subjects locate, one long-running subject hits its
# 5ms deadline, so eolcorpus must exit 1. The shards=1 and shards=2
# outputs are compared byte-for-byte (the determinism contract of
# docs/CORPUS.md) and the corpus journal is validated.
corpus-smoke:
	$(GO) build -o /tmp/eolcorpus-smoke ./cmd/eolcorpus
	/tmp/eolcorpus-smoke -shards 1 -o /tmp/eol-corpus-1.json \
		testdata/corpus/smoke.json; test $$? -eq 1
	/tmp/eolcorpus-smoke -shards 2 -o /tmp/eol-corpus-2.json \
		-trace /tmp/eol-corpus-smoke.jsonl testdata/corpus/smoke.json; \
		test $$? -eq 1
	cmp /tmp/eol-corpus-1.json /tmp/eol-corpus-2.json
	$(GO) run ./cmd/journalcheck /tmp/eol-corpus-smoke.jsonl

# Checkpoint smoke lane: localize a long-trace grepsim subject with
# checkpointed switched replay on (default) and off (-checkpoints -1).
# Results and journal must be byte-identical — the transparency contract
# of docs/CHECKPOINT.md — and the journal must validate.
checkpoint-smoke:
	$(GO) build -o /tmp/eolcorpus-ckpt ./cmd/eolcorpus
	/tmp/eolcorpus-ckpt -o /tmp/eol-ckpt-on.json \
		-trace /tmp/eol-ckpt-on.jsonl testdata/corpus/checkpoint.json
	/tmp/eolcorpus-ckpt -checkpoints -1 -o /tmp/eol-ckpt-off.json \
		-trace /tmp/eol-ckpt-off.jsonl testdata/corpus/checkpoint.json
	cmp /tmp/eol-ckpt-on.json /tmp/eol-ckpt-off.json
	cmp /tmp/eol-ckpt-on.jsonl /tmp/eol-ckpt-off.jsonl
	$(GO) run ./cmd/journalcheck /tmp/eol-ckpt-on.jsonl

# Static-reach smoke: the SPDG reach filter must fire on the
# element-disjointness subjects (static_reach_skips > 0), the output
# must be shard-count invariant, and switching the filter off must
# change nothing but the skip accounting — the journal byte-for-byte,
# the JSON up to the two skip counters.
staticreach-smoke:
	$(GO) build -o /tmp/eolcorpus-sr ./cmd/eolcorpus
	/tmp/eolcorpus-sr -shards 1 -o /tmp/eol-sr-on.json \
		-trace /tmp/eol-sr-on.jsonl testdata/corpus/staticreach.json
	/tmp/eolcorpus-sr -shards 2 -o /tmp/eol-sr-on2.json \
		-trace /tmp/eol-sr-on2.jsonl testdata/corpus/staticreach.json
	cmp /tmp/eol-sr-on.json /tmp/eol-sr-on2.json
	cmp /tmp/eol-sr-on.jsonl /tmp/eol-sr-on2.jsonl
	/tmp/eolcorpus-sr -shards 1 -no-static-reach -o /tmp/eol-sr-off.json \
		-trace /tmp/eol-sr-off.jsonl testdata/corpus/staticreach.json
	cmp /tmp/eol-sr-on.jsonl /tmp/eol-sr-off.jsonl
	grep -v -e '"static_reach_skips"' -e '"replay_skips"' /tmp/eol-sr-on.json > /tmp/eol-sr-on.stripped
	grep -v -e '"static_reach_skips"' -e '"replay_skips"' /tmp/eol-sr-off.json > /tmp/eol-sr-off.stripped
	cmp /tmp/eol-sr-on.stripped /tmp/eol-sr-off.stripped
	grep -q '"static_reach_skips": [1-9]' /tmp/eol-sr-on.json
	$(GO) run ./cmd/journalcheck /tmp/eol-sr-on.jsonl

# VM smoke lane: run the long-trace corpus under both execution
# backends (docs/VM.md). The JSON reports and the run journals must be
# byte-identical — the backend byte-identity contract — and the journal
# must validate.
vm-smoke:
	$(GO) build -o /tmp/eolcorpus-vm ./cmd/eolcorpus
	/tmp/eolcorpus-vm -backend tree -o /tmp/eol-vm-tree.json \
		-trace /tmp/eol-vm-tree.jsonl testdata/corpus/checkpoint.json
	/tmp/eolcorpus-vm -backend vm -o /tmp/eol-vm-vm.json \
		-trace /tmp/eol-vm-vm.jsonl testdata/corpus/checkpoint.json
	cmp /tmp/eol-vm-tree.json /tmp/eol-vm-vm.json
	cmp /tmp/eol-vm-tree.jsonl /tmp/eol-vm-vm.jsonl
	$(GO) run ./cmd/journalcheck /tmp/eol-vm-vm.jsonl

# Speculation smoke lane: localize the long-trace corpus with
# speculative verification off (default) and on (-speculate). Speculation
# is results-neutral (docs/SPECULATION.md): the JSON reports and the run
# journals must be byte-identical — only the in-process Spec* cost
# counters may differ, and those stay out of both documents — and the
# journal must validate.
spec-smoke:
	$(GO) build -o /tmp/eolcorpus-spec ./cmd/eolcorpus
	/tmp/eolcorpus-spec -o /tmp/eol-spec-off.json \
		-trace /tmp/eol-spec-off.jsonl testdata/corpus/checkpoint.json
	/tmp/eolcorpus-spec -speculate -o /tmp/eol-spec-on.json \
		-trace /tmp/eol-spec-on.jsonl testdata/corpus/checkpoint.json
	cmp /tmp/eol-spec-off.json /tmp/eol-spec-on.json
	cmp /tmp/eol-spec-off.jsonl /tmp/eol-spec-on.jsonl
	$(GO) run ./cmd/journalcheck /tmp/eol-spec-on.jsonl

# Serve smoke lane: boot the resident server (docs/SERVER.md) on an
# ephemeral port and drive it with eoloadgen — health probe; a corpus
# request whose response must be byte-identical to eolcorpus batch
# output (the A/B contract); an async job whose NDJSON event stream
# must validate as a corpus journal; and an open-loop load burst that
# must observe at least one rate-limit 429.
serve-smoke:
	$(GO) build -o /tmp/eolserve-smoke ./cmd/eolserve
	$(GO) build -o /tmp/eoloadgen-smoke ./cmd/eoloadgen
	$(GO) build -o /tmp/eolcorpus-serve ./cmd/eolcorpus
	rm -f /tmp/eol-serve-addr
	/tmp/eolserve-smoke -addr 127.0.0.1:0 -addr-file /tmp/eol-serve-addr \
		-rate 5 -burst 2 & \
	SRV=$$!; \
	trap 'kill $$SRV 2>/dev/null' EXIT; \
	for i in $$(seq 1 100); do test -s /tmp/eol-serve-addr && break; sleep 0.1; done; \
	BASE=http://$$(head -1 /tmp/eol-serve-addr); \
	/tmp/eoloadgen-smoke -base $$BASE -healthz && \
	/tmp/eoloadgen-smoke -base $$BASE -tenant corpus \
		-corpus testdata/corpus/smoke.json -o /tmp/eol-serve-corpus.json && \
	{ /tmp/eolcorpus-serve -o /tmp/eol-serve-batch.json \
		testdata/corpus/smoke.json; test $$? -eq 1; } && \
	cmp /tmp/eol-serve-corpus.json /tmp/eol-serve-batch.json && \
	/tmp/eoloadgen-smoke -base $$BASE -tenant jobs \
		-corpus testdata/corpus/smoke.json -async \
		-events /tmp/eol-serve-events.jsonl -o /tmp/eol-serve-job.json && \
	/tmp/eoloadgen-smoke -base $$BASE -tenant hammer \
		-subject testdata/corpus/smoke.json -n 12 -rate 100 \
		-min-rejected 1 -o /tmp/eol-serve-load.json
	$(GO) run ./cmd/journalcheck /tmp/eol-serve-events.jsonl
