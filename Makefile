# Convenience targets; tier-1 verification is `make build test`,
# the race lane (ROADMAP.md) is `make race`.

GO ?= go

.PHONY: all build test race vet lint bench verify-table

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race lane: the verification engine fans verifications out over
# goroutines and shares cached switched traces between them — run the
# suite under the race detector whenever that machinery changes.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Lint lane: Go-level vet plus the MiniC static checker suite over the
# checked-in subjects (testdata/lint/ holds known-bad fixtures and is
# deliberately excluded).
lint: vet
	$(GO) run ./cmd/eolvet testdata/*.mc

bench:
	$(GO) test -bench . -benchmem -benchtime 10x .

# Sequential vs parallel vs cached verification scheduling table.
verify-table:
	$(GO) run ./cmd/benchtab -table verify -reps 5
