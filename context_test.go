package eol

import (
	"context"
	"errors"
	"testing"
	"time"

	"eol/internal/testsupport"
)

// TestLocateContextPartialDiagnosis cancels a localization up front and
// checks the facade contract: a non-nil partial Diagnosis plus an error
// matching both the eol taxonomy and the context sentinels.
func TestLocateContextPartialDiagnosis(t *testing.T) {
	s, _, fixed := fig1Session(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	diag, err := s.LocateContext(ctx, WithCorrectVersion(fixed))
	if err == nil {
		t.Fatal("canceled LocateContext succeeded")
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not match ErrCanceled/context.Canceled", err)
	}
	if diag == nil {
		t.Fatal("nil Diagnosis, want partial")
	}
	if diag.Located || len(diag.Candidates) != 0 {
		t.Errorf("aborted diagnosis claims results: located=%v candidates=%d",
			diag.Located, len(diag.Candidates))
	}
}

// TestRunContextDeadline bounds a long-running program by a few
// milliseconds through the facade.
func TestRunContextDeadline(t *testing.T) {
	p := MustCompile(`
func main() {
    var x = read();
    var i = 0;
    while (i < 100000000) {
        i = i + 1;
    }
    print(x);
}
`)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := p.RunContext(ctx, []int64{1}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("RunContext error %v does not match ErrDeadline", err)
	}
	if _, err := p.RunPlainContext(ctx, []int64{1}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("RunPlainContext error %v does not match ErrDeadline", err)
	}
}

// TestBackgroundWrappersUnchanged pins the migration promise: the
// context-free entry points still work exactly as before.
func TestBackgroundWrappersUnchanged(t *testing.T) {
	s, _, fixed := fig1Session(t)
	diag, err := s.Locate(WithCorrectVersion(fixed))
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.Candidates) == 0 {
		t.Error("no candidates from the background-context path")
	}
}

// TestLocateCorpusFacade drives the corpus service through the public
// API with an in-memory manifest.
func TestLocateCorpusFacade(t *testing.T) {
	m := &CorpusManifest{Subjects: []CorpusSubject{
		{
			Name:          "fig1",
			Source:        testsupport.Fig1Faulty,
			CorrectSource: testsupport.Fig1Fixed,
			Input:         testsupport.Fig1Input,
			RootFrag:      "read() * 0",
		},
		{
			Name:          "fig1-twin",
			Source:        testsupport.Fig1Faulty,
			CorrectSource: testsupport.Fig1Fixed,
			Input:         testsupport.Fig1Input,
			RootFrag:      "read() * 0",
		},
	}}
	res, err := LocateCorpus(context.Background(), m, CorpusOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Located != 2 || res.Failed != 0 {
		t.Fatalf("located=%d failed=%d, want 2/0", res.Located, res.Failed)
	}
	for i := range res.Subjects {
		if !res.Subjects[i].Located() {
			t.Errorf("%s not located: %v", res.Subjects[i].Name, res.Subjects[i].Err)
		}
	}
}

// TestErrNotLocatedTaxonomy checks the exported sentinel flows out of a
// corpus subject whose root fragment never enters the candidate set.
func TestErrNotLocatedTaxonomy(t *testing.T) {
	m := &CorpusManifest{Subjects: []CorpusSubject{{
		Name:     "never",
		Source:   "func main() {\n    var a = read();\n    var dead = 7;\n    print(a + 1);\n}",
		Input:    []int64{1},
		Expected: []int64{3},
		RootFrag: "var dead",
	}}}
	res, err := LocateCorpus(context.Background(), m, CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Subjects[0].Err, ErrNotLocated) {
		t.Fatalf("subject error %v does not match ErrNotLocated", res.Subjects[0].Err)
	}
}
