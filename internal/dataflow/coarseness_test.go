package dataflow

import (
	"sort"
	"testing"
)

// TestArrayCoarsenessPinned pins the DELIBERATE whole-array granularity
// of reaching definitions: element writes are weak defs that kill
// nothing, so every earlier write — and the implicit zero
// initialization — still reaches any later element read, even when the
// constant indices provably differ. The paper's potential-dependence
// computation (Def. 1) relies on exactly this over-approximation to
// surface candidate implicit dependences; a "smarter" element-wise
// analysis here would silently shrink candidate sets. The static
// checker suite must respect it too: dead-store (EOL0002) exempts
// array-element writes rather than "fixing" this coarseness.
func TestArrayCoarsenessPinned(t *testing.T) {
	info, an := build(t, `
var a[4];
func main() {
    a[0] = read();
    a[1] = read();
    print(a[0]);
}`)
	sym := symID(t, info, "a")
	use := stmtID(t, info, "print(a[0])")
	w0 := stmtID(t, info, "a[0] = read()")
	w1 := stmtID(t, info, "a[1] = read()")

	got := an.DefsReaching(use, sym)
	sort.Ints(got)
	// The a[1] write must NOT kill the a[0] write (weak def), and the
	// a[0] read must see the a[1] write (whole-array use).
	want := []int{w0, w1}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("DefsReaching(print, a) = %v, want %v (whole-array coarseness)", got, want)
	}
	// The implicit zero init survives both element writes.
	if !an.EntryReaches(use, sym) {
		t.Error("virtual entry definition killed by element writes; they must stay weak")
	}
}
