package dataflow

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"eol/internal/cfg"
	"eol/internal/lang/ast"
	"eol/internal/lang/parser"
	"eol/internal/lang/sem"
)

func build(t *testing.T, src string) (*sem.Info, *Analysis) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	graphs, err := cfg.Build(info)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return info, New(info, graphs)
}

func stmtID(t *testing.T, info *sem.Info, frag string) int {
	t.Helper()
	for _, s := range info.Stmts {
		if strings.Contains(ast.StmtString(s), frag) {
			return s.ID()
		}
	}
	t.Fatalf("no statement containing %q", frag)
	return 0
}

func symID(t *testing.T, info *sem.Info, name string) int {
	t.Helper()
	for _, s := range info.Symbols {
		if s.Name == name {
			return s.ID
		}
	}
	t.Fatalf("symbol %q missing", name)
	return 0
}

const branchSrc = `
func main() {
    var p = read();
    var x = 0;
    if (p) {
        x = 1;
    } else {
        x = 2;
    }
    print(x);
}`

func TestReachingDefinitions(t *testing.T) {
	info, a := build(t, branchSrc)
	x := symID(t, info, "x")
	pr := stmtID(t, info, "print(x)")
	x0 := stmtID(t, info, "var x = 0")
	x1 := stmtID(t, info, "x = 1")
	x2 := stmtID(t, info, "x = 2")

	got := a.DefsReaching(pr, x)
	sort.Ints(got)
	want := []int{x1, x2}
	sort.Ints(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DefsReaching(print, x) = %v, want %v (the init is killed on both paths)", got, want)
	}
	// At the branch arms, only the init reaches.
	got = a.DefsReaching(x1, x)
	if !reflect.DeepEqual(got, []int{x0}) {
		t.Errorf("DefsReaching(x=1, x) = %v, want [%d]", got, x0)
	}
}

func TestWeakArrayUpdates(t *testing.T) {
	src := `
var a[4];
func main() {
    a[0] = 1;
    a[1] = 2;
    print(a[0]);
}`
	info, a := build(t, src)
	arr := symID(t, info, "a")
	pr := stmtID(t, info, "print(a[0])")
	got := a.DefsReaching(pr, arr)
	// Both element writes reach (weak updates do not kill each other).
	// The global declaration is represented by the virtual entry
	// definition, which DefsReaching excludes.
	a0 := stmtID(t, info, "a[0] = 1")
	a1 := stmtID(t, info, "a[1] = 2")
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{a0, a1}) {
		t.Errorf("DefsReaching(print, a) = %v, want both element writes %v", got, []int{a0, a1})
	}
}

func TestControlledByClosure(t *testing.T) {
	src := `
func main() {
    var p = read();
    var q = read();
    var x = 0;
    if (p) {
        if (q) {
            x = 1;
        }
        x = x + 10;
    }
    print(x);
}`
	info, a := build(t, src)
	ifP := stmtID(t, info, "if (p)")
	ifQ := stmtID(t, info, "if (q)")
	x1 := stmtID(t, info, "x = 1")
	x10 := stmtID(t, info, "x = x + 10")
	pr := stmtID(t, info, "print(x)")

	inP := a.ControlledBy(ifP, cfg.True)
	if !inP[ifQ] || !inP[x1] || !inP[x10] {
		t.Errorf("ControlledBy(ifP, T) = %v, want {ifQ, x=1, x+10}", inP)
	}
	if inP[pr] || inP[ifP] {
		t.Errorf("ControlledBy must exclude the join point and the predicate itself: %v", inP)
	}
	inQ := a.ControlledBy(ifQ, cfg.True)
	if !inQ[x1] || inQ[x10] {
		t.Errorf("ControlledBy(ifQ, T) = %v, want exactly {x=1}", inQ)
	}
	if got := a.ControlledBy(ifP, cfg.False); len(got) != 0 {
		t.Errorf("no else branch: ControlledBy(ifP, F) = %v", got)
	}
	// Memoized second call returns the same set.
	if again := a.ControlledBy(ifP, cfg.True); !reflect.DeepEqual(again, inP) {
		t.Error("memoization changed the result")
	}
}

func TestMayDefineGlobals(t *testing.T) {
	src := `
var g1;
var g2;
var buf[4];
func leaf() {
    g1 = 1;
    return 0;
}
func mid(x) {
    leaf();
    buf[x] = 2;
    return x;
}
func pure(x) {
    return x * 2;
}
func main() {
    mid(1);
    pure(2);
    g2 = 3;
}`
	info, a := build(t, src)
	g1 := symID(t, info, "g1")
	g2 := symID(t, info, "g2")
	buf := symID(t, info, "buf")

	leaf := a.MayDefineGlobals("leaf")
	if !leaf[g1] || leaf[g2] || leaf[buf] {
		t.Errorf("leaf may-def = %v", leaf)
	}
	mid := a.MayDefineGlobals("mid")
	if !mid[g1] || !mid[buf] || mid[g2] {
		t.Errorf("mid may-def = %v (transitive through leaf)", mid)
	}
	if len(a.MayDefineGlobals("pure")) != 0 {
		t.Errorf("pure may-def = %v", a.MayDefineGlobals("pure"))
	}
	main := a.MayDefineGlobals("main")
	if !main[g1] || !main[g2] || !main[buf] {
		t.Errorf("main may-def = %v", main)
	}
}

func TestPotentialBranchFig1(t *testing.T) {
	src := `
var flags;
var outbuf[8];
func main() {
    var s = read();
    flags = 0;
    if (s) {
        flags = flags | 8;
    }
    outbuf[0] = flags;
    if (s) {
        outbuf[1] = 99;
    }
    print(outbuf[0]);
}`
	info, a := build(t, src)
	flags := symID(t, info, "flags")
	outbuf := symID(t, info, "outbuf")
	store := stmtID(t, info, "outbuf[0] = flags")
	pr := stmtID(t, info, "print")

	var ifs []int
	for _, s := range info.Stmts {
		if ast.StmtString(s) == "if (s)" {
			ifs = append(ifs, s.ID())
		}
	}
	if len(ifs) != 2 {
		t.Fatalf("ifs = %v", ifs)
	}

	// The first if's TRUE side defines flags: a False-taking instance has
	// a potential dependence for the flags use at the store.
	if !a.PotentialBranch(ifs[0], cfg.False, store, flags) {
		t.Error("flags store should potentially depend on the first if taking F")
	}
	// Not for the outbuf use at the print: the first if defines no outbuf.
	if a.PotentialBranch(ifs[0], cfg.False, pr, outbuf) {
		t.Error("print(outbuf) must not potentially depend on the first if")
	}
	// The second if's TRUE side writes outbuf: the print's outbuf use
	// qualifies (whole-array granularity, the paper's false dependence).
	if !a.PotentialBranch(ifs[1], cfg.False, pr, outbuf) {
		t.Error("print(outbuf) should potentially depend on the second if (array coarseness)")
	}
	// Taking the branch the defs live on yields no potential dependence.
	if a.PotentialBranch(ifs[0], cfg.True, store, flags) {
		t.Error("a True-taking instance's opposite side has no flags defs")
	}
}

func TestPotentialBranchCrossFunction(t *testing.T) {
	src := `
var g;
func setg() { g = 1; return 0; }
func main() {
	var p = read();
	g = 0;
	if (p) {
		setg();
	}
	print(g);
}`
	info, a := build(t, src)
	g := symID(t, info, "g")
	ifP := stmtID(t, info, "if (p)")
	pr := stmtID(t, info, "print(g)")
	// The call inside the branch may define g (summary): condition (iv)
	// holds via the call site.
	if !a.PotentialBranch(ifP, cfg.False, pr, g) {
		t.Error("call-site may-defs should feed potential dependences")
	}
}
