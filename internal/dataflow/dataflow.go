// Package dataflow implements the static analyses behind potential
// dependences (Definition 1 of the PLDI 2007 paper):
//
//   - intraprocedural reaching definitions over abstract locations (one
//     per scalar symbol, one per whole array object — the deliberate
//     coarseness that reproduces the paper's false potential dependences),
//   - may-define summaries for calls (which globals a call might write,
//     transitively), and
//   - transitive control-dependence closures ("which statements execute
//     only because predicate p took branch L").
//
// The package answers the one static question relevant slicing needs:
// could a different definition of location v reach use site u if
// predicate p had taken its other branch?
package dataflow

import (
	"fmt"

	"eol/internal/cfg"
	"eol/internal/lang/ast"
	"eol/internal/lang/sem"
)

// DefSite is a static definition site: statement Stmt may define Sym.
// Strong sites overwrite the whole location (scalar assignment, array
// declaration); weak sites (array element writes, call may-defs) do not
// kill other definitions.
type DefSite struct {
	Stmt   int // 0 for the virtual entry definition
	Sym    int
	Strong bool
}

// Analysis holds the static dataflow results for one compiled program.
type Analysis struct {
	info *sem.Info
	cfgs *cfg.Program

	// mayDef maps function name -> set of global symbol IDs the function
	// (or its callees) may define.
	mayDef map[string]map[int]bool

	fns map[string]*fnFlow

	// transCD caches transitive control-dependence closures.
	transCD map[cdKey]map[int]bool

	// potCache memoizes PotentialBranch answers.
	potCache map[potKey]bool
}

type cdKey struct {
	pred  int
	label cfg.Label
}

type potKey struct {
	pred    int
	taken   cfg.Label
	useStmt int
	sym     int
}

type fnFlow struct {
	graph *cfg.Graph
	sites []DefSite
	// siteOf indexes sites by (stmt, sym).
	siteOf map[[2]int][]int
	// reachIn[stmtID] = bitset over site indices reaching the statement.
	reachIn map[int]bitset
}

// New computes the static analyses for a checked program.
func New(info *sem.Info, cfgs *cfg.Program) *Analysis {
	a := &Analysis{
		info:     info,
		cfgs:     cfgs,
		mayDef:   map[string]map[int]bool{},
		fns:      map[string]*fnFlow{},
		transCD:  map[cdKey]map[int]bool{},
		potCache: map[potKey]bool{},
	}
	a.computeMayDef()
	for name := range info.Funcs {
		a.fns[name] = a.computeReaching(name)
	}
	return a
}

// MayDefineGlobals returns the set of global symbol IDs that calling fn
// may define, transitively through callees.
func (a *Analysis) MayDefineGlobals(fn string) map[int]bool { return a.mayDef[fn] }

// computeMayDef runs a fixpoint over the call graph.
func (a *Analysis) computeMayDef() {
	for name := range a.info.Funcs {
		a.mayDef[name] = map[int]bool{}
	}
	// Direct global defs.
	for name, fi := range a.info.Funcs {
		for _, id := range fi.StmtIDs {
			for _, s := range a.info.StmtDefs[id] {
				if s.Kind == sem.Global {
					a.mayDef[name][s.ID] = true
				}
			}
		}
	}
	// Transitive closure through calls.
	for changed := true; changed; {
		changed = false
		for name, fi := range a.info.Funcs {
			for _, id := range fi.StmtIDs {
				for _, callee := range a.info.StmtCalls[id] {
					for g := range a.mayDef[callee] {
						if !a.mayDef[name][g] {
							a.mayDef[name][g] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

// defSitesAt returns the definition sites contributed by statement id:
// its direct defs plus call may-defs.
func (a *Analysis) defSitesAt(id int) []DefSite {
	var sites []DefSite
	_, isDecl := a.info.Stmt(id).(*ast.VarDeclStmt)
	for _, s := range a.info.StmtDefs[id] {
		// An array-element write is a weak update of the array object; a
		// scalar write or a whole-array declaration is strong.
		strong := !s.IsArray || isDecl
		sites = append(sites, DefSite{Stmt: id, Sym: s.ID, Strong: strong})
	}
	for _, callee := range a.info.StmtCalls[id] {
		for g := range a.mayDef[callee] {
			sites = append(sites, DefSite{Stmt: id, Sym: g, Strong: false})
		}
	}
	return sites
}

// computeReaching runs iterative reaching definitions over the CFG of fn.
func (a *Analysis) computeReaching(fn string) *fnFlow {
	g := a.cfgs.Funcs[fn]
	f := &fnFlow{graph: g, siteOf: map[[2]int][]int{}, reachIn: map[int]bitset{}}

	// Virtual entry definitions: one per global and per symbol local to
	// fn (params and locals), so that kills behave and "no definition
	// executed yet" is representable. Virtual sites have Stmt == 0 and
	// never participate in potential dependences.
	addSite := func(s DefSite) int {
		idx := len(f.sites)
		f.sites = append(f.sites, s)
		f.siteOf[[2]int{s.Stmt, s.Sym}] = append(f.siteOf[[2]int{s.Stmt, s.Sym}], idx)
		return idx
	}
	entryBits := newBitset(0)
	for _, sym := range a.info.Symbols {
		if sym.Kind == sem.Global || (sym.Func != nil && sym.Func.Name == fn) {
			idx := addSite(DefSite{Stmt: 0, Sym: sym.ID, Strong: false})
			entryBits = entryBits.grow(idx + 1)
			entryBits.set(idx)
		}
	}
	// Real sites, per statement of fn.
	fi := a.info.Funcs[fn]
	for _, id := range fi.StmtIDs {
		for _, s := range a.defSitesAt(id) {
			addSite(s)
		}
	}
	n := len(f.sites)

	// Per-node GEN and KILL.
	gen := map[int]bitset{}
	kill := map[int]bitset{}
	for _, id := range fi.StmtIDs {
		gb := newBitset(n)
		kb := newBitset(n)
		for _, idx := range a.siteIdxsAt(f, id) {
			gb.set(idx)
			site := f.sites[idx]
			if site.Strong {
				// kill all other sites of the same symbol
				for j, other := range f.sites {
					if other.Sym == site.Sym && j != idx {
						kb.set(j)
					}
				}
			}
		}
		gen[id] = gb
		kill[id] = kb
	}

	// Iterative worklist over CFG nodes. IN/OUT keyed by node index.
	in := make([]bitset, len(g.Nodes))
	out := make([]bitset, len(g.Nodes))
	for i := range g.Nodes {
		in[i] = newBitset(n)
		out[i] = newBitset(n)
	}
	in[g.Entry.Idx] = entryBits.grow(n)
	out[g.Entry.Idx] = entryBits.grow(n)

	for changed := true; changed; {
		changed = false
		for _, node := range g.Nodes {
			if node == g.Entry {
				continue
			}
			newIn := newBitset(n)
			for _, e := range node.Preds {
				newIn.or(out[e.To.Idx])
			}
			id := node.StmtID()
			newOut := newIn.clone()
			if id != 0 {
				newOut.andNot(kill[id])
				newOut.or(gen[id])
			}
			if !newIn.equal(in[node.Idx]) || !newOut.equal(out[node.Idx]) {
				in[node.Idx] = newIn
				out[node.Idx] = newOut
				changed = true
			}
		}
	}

	for _, node := range g.Nodes {
		if id := node.StmtID(); id != 0 {
			f.reachIn[id] = in[node.Idx]
		}
	}
	return f
}

// siteIdxsAt returns the site indices contributed by statement id.
func (a *Analysis) siteIdxsAt(f *fnFlow, id int) []int {
	var res []int
	seen := map[int]bool{}
	for _, s := range a.defSitesAt(id) {
		for _, idx := range f.siteOf[[2]int{id, s.Sym}] {
			if !seen[idx] {
				seen[idx] = true
				res = append(res, idx)
			}
		}
	}
	return res
}

// ControlledBy returns the transitive closure of statements whose
// execution is governed by predicate pred taking branch label: the
// statements directly control dependent on (pred, label), plus everything
// control dependent on those, through nested predicates.
func (a *Analysis) ControlledBy(pred int, label cfg.Label) map[int]bool {
	key := cdKey{pred: pred, label: label}
	if c, ok := a.transCD[key]; ok {
		return c
	}
	g := a.cfgs.GraphOf(pred)
	res := map[int]bool{}
	if g == nil {
		a.transCD[key] = res
		return res
	}
	var work []int
	add := func(ids []int) {
		for _, id := range ids {
			if !res[id] && id != pred {
				res[id] = true
				work = append(work, id)
			}
		}
	}
	add(g.CDKids[pred][label])
	for len(work) > 0 {
		q := work[len(work)-1]
		work = work[:len(work)-1]
		if kids, ok := g.CDKids[q]; ok {
			add(kids[cfg.True])
			add(kids[cfg.False])
			add(kids[cfg.None])
		}
	}
	a.transCD[key] = res
	return res
}

// DefsReaching returns the statement IDs of real definition sites of sym
// that may reach the entry of useStmt (virtual entry definitions are
// excluded).
func (a *Analysis) DefsReaching(useStmt, sym int) []int {
	fi := a.info.StmtFunc[useStmt]
	if fi == nil {
		return nil
	}
	f := a.fns[fi.Name]
	bits, ok := f.reachIn[useStmt]
	if !ok {
		return nil
	}
	var res []int
	for idx, site := range f.sites {
		if site.Sym == sym && site.Stmt != 0 && bits.get(idx) {
			res = append(res, site.Stmt)
		}
	}
	return res
}

// EntryReaches reports whether the virtual entry definition of sym — the
// "no definition has executed yet" state — may reach the entry of
// useStmt: some path from function entry to useStmt never strongly
// defines sym. This is the static-checker query behind the
// uninitialized-read pass; note that a plain declaration (`var x;`) is a
// strong definition (MiniC zero-initializes), so the entry definition
// only survives up to the declaration.
func (a *Analysis) EntryReaches(useStmt, sym int) bool {
	fi := a.info.StmtFunc[useStmt]
	if fi == nil {
		return false
	}
	f := a.fns[fi.Name]
	bits, ok := f.reachIn[useStmt]
	if !ok {
		return false
	}
	for idx, site := range f.sites {
		if site.Sym == sym && site.Stmt == 0 && bits.get(idx) {
			return true
		}
	}
	return false
}

// PotentialBranch answers Definition 1's condition (iv): could a
// different definition of sym reach useStmt if predicate pred — which
// dynamically took branch `taken` — had evaluated the other way?
//
// It holds iff some definition site d of sym is (transitively) controlled
// by (pred, opposite-of-taken) and d's definition may reach useStmt. Both
// statements must be in the same function (the analysis is
// intraprocedural; calls are summarized as may-defs of globals).
func (a *Analysis) PotentialBranch(pred int, taken cfg.Label, useStmt, sym int) bool {
	key := potKey{pred: pred, taken: taken, useStmt: useStmt, sym: sym}
	if v, ok := a.potCache[key]; ok {
		return v
	}
	res := a.potentialBranch(pred, taken, useStmt, sym)
	a.potCache[key] = res
	return res
}

func (a *Analysis) potentialBranch(pred int, taken cfg.Label, useStmt, sym int) bool {
	pf, uf := a.info.StmtFunc[pred], a.info.StmtFunc[useStmt]
	if pf == nil || uf == nil || pf != uf {
		return false
	}
	opposite := taken.Negate()
	controlled := a.ControlledBy(pred, opposite)
	if len(controlled) == 0 {
		return false
	}
	for _, d := range a.DefsReaching(useStmt, sym) {
		if controlled[d] {
			return true
		}
	}
	return false
}

// PotentialBranchGlobal is the conservative cross-function variant of
// condition (iv) for *global* locations: it holds iff some definition
// site of sym (a direct write or a call that may write it) is
// transitively governed by pred taking the branch opposite to `taken`.
// No reaches-the-use check is attempted across function boundaries; the
// demand-driven verification filters the resulting extra candidates.
func (a *Analysis) PotentialBranchGlobal(pred int, taken cfg.Label, sym int) bool {
	opposite := taken.Negate()
	for d := range a.ControlledBy(pred, opposite) {
		for _, site := range a.defSitesAt(d) {
			if site.Sym == sym {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// bitset

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) grow(n int) bitset {
	need := (n + 63) / 64
	if len(b) >= need {
		return b
	}
	nb := make(bitset, need)
	copy(nb, b)
	return nb
}

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) get(i int) bool { return i/64 < len(b) && b[i/64]&(1<<uint(i%64)) != 0 }

func (b bitset) clone() bitset {
	nb := make(bitset, len(b))
	copy(nb, b)
	return nb
}

func (b bitset) or(o bitset) {
	for i := range o {
		if i < len(b) {
			b[i] |= o[i]
		}
	}
}

func (b bitset) andNot(o bitset) {
	for i := range o {
		if i < len(b) {
			b[i] &^= o[i]
		}
	}
}

func (b bitset) equal(o bitset) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders set bits for debugging.
func (b bitset) String() string {
	s := "{"
	first := true
	for i := 0; i < len(b)*64; i++ {
		if b.get(i) {
			if !first {
				s += ","
			}
			s += fmt.Sprint(i)
			first = false
		}
	}
	return s + "}"
}
