package bench

// makeSrc is the build-scheduler analog of make. The paper's Table 1
// discussion notes: "We did not use the benchmark make in the suite
// because we were not able to expose any errors using the provided test
// cases." This reproduction mirrors that situation faithfully: makesim
// ships with a seeded fault (the dirty-propagation term of the rebuild
// check is dropped), but every provided test input uses fresh rebuild
// stamps below the originals' range, so the stamp comparison masks the
// missing term and the fault stays latent. MakeCase is therefore
// EXCLUDED from Cases() and the error tables, and used only for
// substrate-level testing and benchmarks.
//
// Input format: n, then per target (in dependency order): depCount,
// deps..., stamp; output: the rebuilt target ids and the rebuild count.
const makeSrc = `
// makesim: timestamp-based rebuild scheduling, make-style.
var deps[64];
var depStart[16];
var depCnt[16];
var stamp[16];
var dirty[16];

func main() {
    var n = read();
    var pos = 0;
    for (var i = 0; i < n; i++) {
        var cnt = read();
        depStart[i] = pos;
        depCnt[i] = cnt;
        for (var j = 0; j < cnt; j++) {
            deps[pos] = read();
            pos = pos + 1;
        }
        stamp[i] = read();
    }
    var rebuilt = 0;
    for (var i = 0; i < n; i++) {
        var need = 0;
        var j = 0;
        while (j < depCnt[i]) {
            var d = deps[depStart[i] + j];
            if (stamp[d] > stamp[i] || dirty[d] > 0) {
                need = 1;
            }
            j = j + 1;
        }
        if (need > 0) {
            dirty[i] = 1;
            stamp[i] = 100 + i;
            rebuilt = rebuilt + 1;
            print(i);
        }
    }
    print(rebuilt);
}
`

// MakeCase returns the makesim case. It is not part of Cases(): like the
// paper's make, its seeded fault is not exposable by the provided test
// inputs (the rebuild stamps 100+i always exceed the test stamps, so the
// stamp comparison subsumes the dropped dirty-propagation term). An
// input with original stamps above 100+i would expose it; none is
// provided, matching the paper's experience.
func MakeCase() *Case {
	return &Case{
		Program:     "makesim",
		ID:          "V1-F1",
		Description: "dirty-propagation term dropped from the rebuild check; latent under all provided tests (stamp comparison masks it)",
		CorrectSrc:  makeSrc,
		FaultFrom:   "if (stamp[d] > stamp[i] || dirty[d] > 0) {",
		FaultTo:     "if (stamp[d] > stamp[i]) {",
		RootFrag:    "stamp[d] > stamp[i]",
		// A three-target chain: 2 depends on 1 depends on 0. Target 0 is
		// newer than 1, so 1 rebuilds (stamp 101); 101 > stamp[2]=50, so
		// the stamp comparison alone also rebuilds 2 — fault latent.
		FailingInput: []int64{3, 0, 30, 1, 0, 20, 1, 1, 50},
		PassingInputs: [][]int64{
			{3, 0, 30, 1, 0, 20, 1, 1, 50},       // the chain above
			{2, 0, 10, 1, 0, 5},                  // single edge, dep newer
			{2, 0, 5, 1, 0, 10},                  // single edge, up to date
			{1, 0, 7},                            // no deps at all
			{4, 0, 9, 1, 0, 3, 1, 1, 2, 1, 2, 1}, // cascade via stamps
		},
	}
}
