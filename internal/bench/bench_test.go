package bench

import (
	"reflect"
	"testing"

	"eol/internal/interp"
	"eol/internal/slicing"
)

func TestCaseInventory(t *testing.T) {
	cs := Cases()
	if len(cs) != 9 {
		t.Fatalf("cases = %d, want 9 (Table 2 rows)", len(cs))
	}
	byProg := map[string]int{}
	names := map[string]bool{}
	for _, c := range cs {
		byProg[c.Program]++
		if names[c.Name()] {
			t.Errorf("duplicate case name %s", c.Name())
		}
		names[c.Name()] = true
	}
	want := map[string]int{"flexsim": 5, "grepsim": 1, "gzipsim": 1, "sedsim": 2}
	if !reflect.DeepEqual(byProg, want) {
		t.Errorf("case distribution = %v, want %v", byProg, want)
	}
	if ByName("gzipsim/V2-F3") == nil {
		t.Error("ByName lookup failed")
	}
	if ByName("nope/X") != nil {
		t.Error("ByName should return nil for unknown cases")
	}
}

// TestEveryCaseExposesFault: on the failing input the faulty program's
// output must differ from the correct program's by a wrong VALUE (not
// merely truncation), since the technique slices from a wrong value.
func TestEveryCaseExposesFault(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			p, err := c.Prepare()
			if err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			seq, missing, ok := slicing.FirstWrongOutput(p.Run.OutputValues(), p.Expected)
			if !ok {
				t.Fatalf("failing input does not expose the fault: %v", p.Run.OutputValues())
			}
			if missing {
				t.Fatalf("failure is a missing output, need a wrong value (outputs %v, expected %v)",
					p.Run.OutputValues(), p.Expected)
			}
			if seq < 0 {
				t.Fatal("no wrong output")
			}
		})
	}
}

// TestEveryCasePassesOnTestSuite: passing inputs must not expose the
// fault (they form the value profile and regression suite).
func TestEveryCasePassesOnTestSuite(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			p, err := c.Prepare()
			if err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			for i, in := range c.PassingInputs {
				fr := interp.Run(p.Faulty, interp.Options{Input: in})
				cr := interp.Run(p.Correct, interp.Options{Input: in})
				if fr.Err != nil || cr.Err != nil {
					t.Fatalf("input %d: run errors %v / %v", i, fr.Err, cr.Err)
				}
				if !reflect.DeepEqual(fr.OutputValues(), cr.OutputValues()) {
					t.Errorf("input %d exposes the fault: faulty %v, correct %v",
						i, fr.OutputValues(), cr.OutputValues())
				}
			}
		})
	}
}

// TestFaultIsOmission: on the failing input the faulty run must execute
// no statement the correct run doesn't reach more often — i.e. the fault
// manifests as omitted execution of the critical assignment (the faulty
// run's instance count for some statement is lower). We check the weaker,
// universal property: some statement executes fewer times in the faulty
// run, and the classic dynamic slice of the wrong output misses the root
// cause (the defining property of an execution omission error).
func TestFaultIsOmission(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			p, err := c.Prepare()
			if err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			correct := p.CorrectTrace()

			fewer := false
			for id := 1; id <= p.Faulty.Info.NumStmts(); id++ {
				if p.Run.Trace.Occurrences(id) < correct.Trace.Occurrences(id) {
					fewer = true
					break
				}
			}
			if !fewer {
				t.Error("no statement executes fewer times in the faulty run: not an omission")
			}
		})
	}
}

func TestLOCAndStructure(t *testing.T) {
	for _, c := range Cases() {
		if c.LOC() < 30 {
			t.Errorf("%s: LOC = %d, suspiciously small", c.Name(), c.LOC())
		}
		if c.Description == "" {
			t.Errorf("%s: missing description", c.Name())
		}
	}
	if got := len(ByName("grepsim/V4-F2").PassingInputs); got < 3 {
		t.Errorf("grepsim test suite has %d inputs, want >= 3", got)
	}
}

func TestFaultySrcErrors(t *testing.T) {
	c := &Case{Program: "x", ID: "y", CorrectSrc: "abc", FaultFrom: "zzz", FaultTo: "q"}
	if _, err := c.FaultySrc(); err == nil {
		t.Error("missing fault site should error")
	}
	c = &Case{Program: "x", ID: "y", CorrectSrc: "abab", FaultFrom: "ab", FaultTo: "q"}
	if _, err := c.FaultySrc(); err == nil {
		t.Error("ambiguous fault site should error")
	}
}

func TestInputHelpers(t *testing.T) {
	if got := Bytes("ab"); !reflect.DeepEqual(got, []int64{97, 98}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := Line("hi"); !reflect.DeepEqual(got, []int64{2, 104, 105}) {
		t.Errorf("Line = %v", got)
	}
	if got := Cat([]int64{1}, []int64{2, 3}); !reflect.DeepEqual(got, []int64{1, 2, 3}) {
		t.Errorf("Cat = %v", got)
	}
}
