package bench

// flexSrc is the scanner analog of flex-generated lexers: it tokenizes a
// byte stream into identifiers, keywords, numbers and operators, emitting
// one token code per token as it goes (flex "emits results gradually",
// which the paper notes makes its cases easier) and summary counters at
// the end.
//
// Token codes: 1 identifier, 2 number, 3 keyword, 4 arithmetic operator,
// 5 other operator.
const flexSrc = `
// flexsim: a tiny scanner in the style of a flex-generated lexer.
var counts[8];
var lineno;
var tokens;
var longIds;

func isAlpha(c) {
    return (c >= 97 && c <= 122) || (c >= 65 && c <= 90) || c == 95;
}

func isDigit(c) {
    return c >= 48 && c <= 57;
}

func main() {
    lineno = 1;
    tokens = 0;
    longIds = 0;
    while (!eof()) {
        var c = read();
        if (c == 10) {
            lineno = lineno + 1;
        }
        if (c == 32 || c == 9 || c == 13 || c == 10) {
            continue;
        }
        if (isAlpha(c)) {
            var first = c;
            var tlen = 1;
            var sum = c;
            while (isAlpha(peek()) || isDigit(peek())) {
                var d = read();
                sum = sum + d;
                tlen = tlen + 1;
            }
            var kw = 0;
            if (first == 105 && tlen == 2) {
                kw = 1;
            }
            if (first == 102 && tlen == 3) {
                kw = 1;
            }
            if (first == 118 && tlen == 3) {
                kw = 1;
            }
            var code = 1;
            if (kw > 0) {
                code = 3;
            }
            if (tlen >= 4) {
                longIds = longIds + 1;
            }
            counts[code] = counts[code] + 1;
            tokens = tokens + 1;
            print(code);
            continue;
        }
        if (isDigit(c)) {
            var val = c - 48;
            while (isDigit(peek())) {
                var d = read();
                val = val * 10 + d - 48;
            }
            counts[2] = counts[2] + 1;
            tokens = tokens + 1;
            print(2);
            continue;
        }
        var opcode = 0;
        if (c == 43 || c == 45) {
            opcode = 4;
        }
        if (opcode == 0) {
            opcode = 5;
        }
        counts[opcode] = counts[opcode] + 1;
        tokens = tokens + 1;
        print(opcode);
    }
    var active = 0;
    if (tokens > 0) {
        active = 1;
    }
    print(lineno);
    print(tokens);
    print(longIds);
    print(active);
    print(counts[1]);
    print(counts[2]);
    print(counts[3]);
    print(counts[4]);
    print(counts[5]);
}
`

func flexCases() []*Case {
	return []*Case{
		{
			Program:     "flexsim",
			ID:          "V1-F9",
			Description: "keyword recognition suppressed for 2-letter keywords: the code=3 branch is omitted for 'if'",
			CorrectSrc:  flexSrc,
			FaultFrom:   "if (kw > 0) {",
			FaultTo:     "if (kw > 0 && tlen > 2) {",
			RootFrag:    "kw > 0 && tlen > 2",
			// 'if' should scan as keyword (code 3) but prints 1.
			FailingInput: Bytes("x = 1\nif y\nfor z\n"),
			PassingInputs: [][]int64{
				Bytes("for x = 1 + 2\n"), // 3-letter keywords unaffected
				Bytes("var yy = 33\n"),
				Bytes("abc 12 + 34"),
				Bytes(""),
				Bytes("zz * 7"),
			},
		},
		{
			Program:     "flexsim",
			ID:          "V2-F14",
			Description: "line counting omitted before the first token: lineno increment guarded by tokens > 0",
			CorrectSrc:  flexSrc,
			FaultFrom:   "if (c == 10) {",
			FaultTo:     "if (c == 10 && tokens > 0) {",
			RootFrag:    "c == 10 && tokens > 0",
			// Leading newline before any token is not counted; the final
			// lineno is off by one. No later newline exists, so no
			// instance of the edited predicate ever takes the true
			// branch and the statement stays out of the dynamic slice.
			FailingInput: Bytes("\nalpha beta 5"),
			PassingInputs: [][]int64{
				Bytes("alpha 5\nbeta\n"), // no leading newline
				Bytes("x y z"),
				Bytes("1 + 2\n3 + 4\n"),
				Bytes(""),
			},
		},
		{
			Program:     "flexsim",
			ID:          "V3-F10",
			Description: "active-flag omission on single-token inputs: threshold off by one",
			CorrectSrc:  flexSrc,
			FaultFrom:   "if (tokens > 0) {",
			FaultTo:     "if (tokens > 1) {",
			RootFrag:    "tokens > 1",
			// Exactly one token: active should be 1 but stays 0.
			FailingInput: Bytes("hello"),
			PassingInputs: [][]int64{
				Bytes("a b"), // two tokens
				Bytes("1 2 3"),
				Bytes(""), // zero tokens: active 0 either way
				Bytes("for x = 1\n"),
			},
		},
		{
			Program:     "flexsim",
			ID:          "V4-F6",
			Description: "long-identifier counting misses the boundary length: >= becomes >",
			CorrectSrc:  flexSrc,
			FaultFrom:   "if (tlen >= 4) {",
			FaultTo:     "if (tlen > 4) {",
			RootFrag:    "tlen > 4",
			// 'wxyz' has length exactly 4: longIds should count it. It is
			// the only long identifier, so the increment never executes.
			FailingInput: Bytes("ab wxyz c"),
			PassingInputs: [][]int64{
				Bytes("ab cde f"),   // no identifier of length 4
				Bytes("longname x"), // length > 4 still counted
				Bytes("1 + 2"),
				Bytes(""),
			},
		},
		{
			Program:     "flexsim",
			ID:          "V5-F6",
			Description: "operator classification omits '-': minus falls through to the catch-all code",
			CorrectSrc:  flexSrc,
			FaultFrom:   "if (c == 43 || c == 45) {",
			FaultTo:     "if (c == 43) {",
			RootFrag:    "if (c == 43)",
			// '-' should print code 4 but prints 5.
			FailingInput: Bytes("a + b - c\n"),
			PassingInputs: [][]int64{
				Bytes("a + b + c"), // no minus
				Bytes("x * y"),
				Bytes("12 34"),
				Bytes(""),
			},
		},
	}
}
