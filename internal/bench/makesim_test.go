package bench

import (
	"reflect"
	"testing"

	"eol/internal/interp"
)

// TestMakeExcludedFromSuite mirrors the paper: make is characterized but
// not among the error cases.
func TestMakeExcludedFromSuite(t *testing.T) {
	for _, c := range Cases() {
		if c.Program == "makesim" {
			t.Fatal("makesim must not be part of the error-case suite")
		}
	}
	if MakeCase().LOC() < 30 {
		t.Errorf("makesim LOC = %d", MakeCase().LOC())
	}
}

// TestMakeFaultLatentOnProvidedTests reproduces the paper's experience:
// the seeded fault is not exposable by any provided input.
func TestMakeFaultLatentOnProvidedTests(t *testing.T) {
	c := MakeCase()
	faultySrc, err := c.FaultySrc()
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := interp.Compile(faultySrc)
	if err != nil {
		t.Fatal(err)
	}
	correct, err := interp.Compile(c.CorrectSrc)
	if err != nil {
		t.Fatal(err)
	}
	inputs := append([][]int64{c.FailingInput}, c.PassingInputs...)
	for i, in := range inputs {
		fr := interp.Run(faulty, interp.Options{Input: in})
		cr := interp.Run(correct, interp.Options{Input: in})
		if fr.Err != nil || cr.Err != nil {
			t.Fatalf("input %d: %v / %v", i, fr.Err, cr.Err)
		}
		if !reflect.DeepEqual(fr.OutputValues(), cr.OutputValues()) {
			t.Errorf("input %d exposes the supposedly latent fault: %v vs %v",
				i, fr.OutputValues(), cr.OutputValues())
		}
	}
}

// TestMakeFaultIsExposableInPrinciple: the fault is real — an input with
// original stamps above the rebuild-stamp range (100+i) exposes the
// missing dirty propagation. Such an input is deliberately NOT among the
// provided tests.
func TestMakeFaultIsExposableInPrinciple(t *testing.T) {
	c := MakeCase()
	faultySrc, err := c.FaultySrc()
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := interp.Compile(faultySrc)
	if err != nil {
		t.Fatal(err)
	}
	correct, err := interp.Compile(c.CorrectSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Chain 2 <- 1 <- 0 with big original stamps: target 0 newer than 1
	// forces 1 to rebuild (new stamp 101), but 101 < stamp[2] = 500, so
	// only the dirty flag can propagate the rebuild to 2.
	exposing := []int64{3, 0, 400, 1, 0, 300, 1, 1, 500}
	fr := interp.Run(faulty, interp.Options{Input: exposing})
	cr := interp.Run(correct, interp.Options{Input: exposing})
	if fr.Err != nil || cr.Err != nil {
		t.Fatalf("%v / %v", fr.Err, cr.Err)
	}
	if reflect.DeepEqual(fr.OutputValues(), cr.OutputValues()) {
		t.Fatalf("crafted input failed to expose the fault: %v", fr.OutputValues())
	}
}

// TestMakeCorrectSemantics sanity-checks the scheduler on the correct
// version.
func TestMakeCorrectSemantics(t *testing.T) {
	correct, err := interp.Compile(MakeCase().CorrectSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Up-to-date graph: nothing rebuilds.
	r := interp.Run(correct, interp.Options{Input: []int64{2, 0, 5, 1, 0, 10}})
	if !reflect.DeepEqual(r.OutputValues(), []int64{0}) {
		t.Errorf("up-to-date build rebuilt something: %v", r.OutputValues())
	}
	// Dep newer: the dependent rebuilds.
	r = interp.Run(correct, interp.Options{Input: []int64{2, 0, 10, 1, 0, 5}})
	if !reflect.DeepEqual(r.OutputValues(), []int64{1, 1}) {
		t.Errorf("stale build = %v, want [1 1]", r.OutputValues())
	}
	// Transitive chain with high stamps: both 1 and 2 rebuild.
	r = interp.Run(correct, interp.Options{Input: []int64{3, 0, 400, 1, 0, 300, 1, 1, 500}})
	if !reflect.DeepEqual(r.OutputValues(), []int64{1, 2, 2}) {
		t.Errorf("chain build = %v, want [1 2 2]", r.OutputValues())
	}
}
