package bench

import (
	"reflect"
	"testing"

	"eol/internal/interp"
	"eol/internal/slicing"
)

// TestScaledGrepInput: the scaled workload exposes the V4-F2 fault at
// every size, deterministically, with trace size growing with the line
// count.
func TestScaledGrepInput(t *testing.T) {
	p, err := ByName("grepsim/V4-F2").Prepare()
	if err != nil {
		t.Fatal(err)
	}
	prevLen := 0
	for _, n := range []int{5, 20, 60} {
		in := ScaledGrepInput(n)
		if !reflect.DeepEqual(in, ScaledGrepInput(n)) {
			t.Fatal("scaled input not deterministic")
		}
		fr := interp.Run(p.Faulty, interp.Options{Input: in, BuildTrace: true})
		cr := interp.Run(p.Correct, interp.Options{Input: in})
		if fr.Err != nil || cr.Err != nil {
			t.Fatalf("n=%d: %v / %v", n, fr.Err, cr.Err)
		}
		seq, missing, ok := slicing.FirstWrongOutput(fr.OutputValues(), cr.OutputValues())
		if !ok || missing || seq < 0 {
			t.Errorf("n=%d: fault not exposed as a wrong value", n)
		}
		if fr.Trace.Len() <= prevLen {
			t.Errorf("n=%d: trace did not grow (%d <= %d)", n, fr.Trace.Len(), prevLen)
		}
		prevLen = fr.Trace.Len()
	}
}

// TestScaledFlexInput: the token stream scales and runs clean on both
// versions for the V3-F10 case-irrelevant workload.
func TestScaledFlexInput(t *testing.T) {
	p, err := ByName("flexsim/V1-F9").Prepare()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{10, 50} {
		in := ScaledFlexInput(n)
		fr := interp.Run(p.Faulty, interp.Options{Input: in})
		cr := interp.Run(p.Correct, interp.Options{Input: in})
		if fr.Err != nil || cr.Err != nil {
			t.Fatalf("n=%d: %v / %v", n, fr.Err, cr.Err)
		}
		// The stream contains 'if' tokens, so the V1-F9 fault shows.
		if reflect.DeepEqual(fr.OutputValues(), cr.OutputValues()) {
			t.Errorf("n=%d: expected the keyword fault to show on a stream with 'if'", n)
		}
	}
}

// TestScaledSedInput: g-flag-off workloads behave identically on both
// versions (pure substrate scaling).
func TestScaledSedInput(t *testing.T) {
	p, err := ByName("sedsim/V3-F2").Prepare()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{5, 25} {
		in := ScaledSedInput(n)
		fr := interp.Run(p.Faulty, interp.Options{Input: in})
		cr := interp.Run(p.Correct, interp.Options{Input: in})
		if fr.Err != nil || cr.Err != nil {
			t.Fatalf("n=%d: %v / %v", n, fr.Err, cr.Err)
		}
		if !reflect.DeepEqual(fr.OutputValues(), cr.OutputValues()) {
			t.Errorf("n=%d: g-off workload must be fault-latent", n)
		}
	}
}
