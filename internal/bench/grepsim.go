package bench

// grepSrc is the pattern-matcher analog of grep: a naive substring
// matcher with '.' wildcards. Like grep, it prints nothing until the end
// (matching line numbers, then the match count and line total), which the
// paper identifies as the property that makes its error the hardest case:
// the corrupted state propagates a long way before any observation.
const grepSrc = `
// grepsim: naive pattern matcher with '.' wildcards, grep-style.
var pattern[32];
var plen;
var line[64];
var matches[32];
var nmatch;

func matchAt(start, llen) {
    var i = 0;
    while (i < plen) {
        if (start + i >= llen) {
            return 0;
        }
        var pc = pattern[i];
        var lc = line[start + i];
        var okc = 0;
        if (pc == 46) {
            okc = 1;
        }
        if (pc == lc) {
            okc = 1;
        }
        if (okc == 0) {
            return 0;
        }
        i = i + 1;
    }
    return 1;
}

func matchLine(llen) {
    var s = 0;
    while (s + plen <= llen) {
        if (matchAt(s, llen)) {
            return 1;
        }
        s = s + 1;
    }
    return 0;
}

func main() {
    plen = read();
    var i = 0;
    while (i < plen) {
        pattern[i] = read();
        i = i + 1;
    }
    var lineno = 0;
    nmatch = 0;
    var total = 0;
    while (!eof()) {
        var llen = read();
        var j = 0;
        while (j < llen) {
            line[j] = read();
            j = j + 1;
        }
        lineno = lineno + 1;
        if (matchLine(llen)) {
            matches[nmatch] = lineno;
            nmatch = nmatch + 1;
        }
        total = total + 1;
    }
    var k = 0;
    while (k < nmatch) {
        print(matches[k]);
        k = k + 1;
    }
    print(nmatch);
    print(total);
}
`

func grepCases() []*Case {
	return []*Case{
		{
			Program:     "grepsim",
			ID:          "V4-F2",
			Description: "'.' wildcard honored only at pattern position 0: mid-pattern wildcards never match, so a matching line is silently dropped and every later observation shifts",
			CorrectSrc:  grepSrc,
			FaultFrom:   "if (pc == 46) {",
			FaultTo:     "if (pc == 46 && i == 0) {",
			RootFrag:    "pc == 46 && i == 0",
			// Pattern "a.c": lines 2 ("xabcx") and 4 ("aXc") match via the
			// mid-pattern wildcard and are missed; line 5 ("xa.cz")
			// matches literally in both versions, so the faulty matches
			// array holds [5] instead of [2 4 5] and the first printed
			// line number is wrong.
			FailingInput: Cat(
				Line("a.c"),
				Line("hello"),
				Line("xabcx"),
				Line("nope"),
				Line("aXc"),
				Line("xa.cz"),
				Line("end"),
			),
			PassingInputs: [][]int64{
				// wildcard at position 0 works in both versions
				Cat(Line(".bc"), Line("abc"), Line("zbc"), Line("qqq")),
				// no wildcard at all
				Cat(Line("abc"), Line("xxabcxx"), Line("abd")),
				// no lines
				Cat(Line("a.c")),
				// wildcard never needed to decide
				Cat(Line("zz"), Line("zz"), Line("azza")),
			},
		},
	}
}
