package bench

// gzipSrc is the compressor analog of gzip: it writes a gzip-style header
// (magic, method, flags, optional original-name bytes), an RLE-compressed
// body, and a checksum. The V2-F3 fault is the paper's own motivating
// example (Fig. 1): the save-original-name flag is zeroed, so the
// ORIG_NAME bit never reaches the flags byte and the name bytes are never
// emitted.
const gzipSrc = `
// gzipsim: header + RLE body + checksum, gzip-style.
var outbuf[256];
var outcnt;

func emit(b) {
    outbuf[outcnt] = b;
    outcnt = outcnt + 1;
    return outcnt;
}

func main() {
    var saveOrigName = read();
    var timestamp = read();

    emit(31);
    emit(139);
    emit(8);
    var flags = 0;
    if (saveOrigName) {
        flags = flags | 8;
    }
    if (timestamp > 0) {
        flags = flags | 4;
    }
    emit(flags);
    emit(timestamp % 256);
    if (saveOrigName) {
        emit(78);
        emit(65);
    }

    var prev = 0 - 1;
    var run = 0;
    while (!eof()) {
        var ch = read();
        if (ch == prev && run < 255) {
            run = run + 1;
        } else {
            if (run > 0) {
                emit(prev);
                emit(run);
            }
            prev = ch;
            run = 1;
        }
    }
    if (run > 0) {
        emit(prev);
        emit(run);
    }

    var crc = 0;
    var i = 0;
    while (i < outcnt) {
        crc = (crc * 31 + outbuf[i]) % 65536;
        i = i + 1;
    }
    var j = 0;
    while (j < outcnt) {
        print(outbuf[j]);
        j = j + 1;
    }
    print(crc);
}
`

func gzipCases() []*Case {
	return []*Case{
		{
			Program:     "gzipsim",
			ID:          "V2-F3",
			Description: "Fig. 1: saveOrigName is zeroed, the ORIG_NAME branch is omitted, and the flags byte written to the output is wrong",
			CorrectSrc:  gzipSrc,
			FaultFrom:   "var saveOrigName = read();",
			FaultTo:     "var saveOrigName = read() * 0;",
			RootFrag:    "read() * 0",
			// -N mode with a small body: flags byte should be 8.
			FailingInput: Cat([]int64{1, 0}, Bytes("aaabbc")),
			PassingInputs: [][]int64{
				Cat([]int64{0, 0}, Bytes("aaabbc")),   // no -N: fault latent
				Cat([]int64{0, 7}, Bytes("xyz")),      // timestamp flag path
				Cat([]int64{0, 0}, Bytes("")),         // empty body
				Cat([]int64{0, 3}, Bytes("aaaaaaaa")), // long run
			},
		},
	}
}
