package bench

// sedSrc is the stream-editor analog of sed: per line it applies a
// character substitution (first occurrence, or all occurrences with the
// g flag), deletes lines starting with a marker character, and computes a
// final status word. The V3-F2 fault produces the paper's two-expansion
// case: the zeroed g flag suppresses the markEnd assignment, whose stale
// value then suppresses the status assignment — two chained execution
// omissions between the root cause and the failure.
const sedSrc = `
// sedsim: s/from/to/[g] + line deletion + status summary, sed-style.
var buf[64];

func main() {
    var from = read();
    var to = read();
    var gflag = read();
    var delChar = read();

    var markEnd = 0;
    if (gflag > 0) {
        markEnd = 1;
    }

    var lineno = 0;
    var kept = 0;
    var totalSubs = 0;
    while (!eof()) {
        var llen = read();
        var i = 0;
        while (i < llen) {
            buf[i] = read();
            i = i + 1;
        }
        lineno = lineno + 1;
        var del = 0;
        if (llen > 0) {
            if (buf[0] == delChar) {
                del = 1;
            }
        }
        if (del == 0) {
            var subs = 0;
            var j = 0;
            while (j < llen) {
                if (buf[j] == from) {
                    if (subs == 0 || gflag > 0) {
                        buf[j] = to;
                        subs = subs + 1;
                    }
                }
                j = j + 1;
            }
            totalSubs = totalSubs + subs;
            kept = kept + 1;
            var k = 0;
            while (k < llen) {
                print(buf[k]);
                k = k + 1;
            }
        }
    }
    var status = 0;
    if (totalSubs > 0) {
        if (markEnd > 0) {
            status = lineno * 100 + totalSubs;
        }
    }
    print(kept);
    print(totalSubs);
    print(status);
    print(lineno);
}
`

func sedCases() []*Case {
	return []*Case{
		{
			Program: "sedsim",
			ID:      "V3-F2",
			Description: "g flag zeroed: the markEnd assignment is omitted, whose stale value then omits " +
				"the status assignment — a two-step execution-omission chain (two expansions needed)",
			CorrectSrc: sedSrc,
			FaultFrom:  "var gflag = read();",
			FaultTo:    "var gflag = read() * 0;",
			RootFrag:   "read() * 0",
			// g mode, but no line has a second occurrence of 'a', so the
			// substitution behavior is identical and the only divergence
			// flows through markEnd -> status.
			FailingInput: Cat(
				[]int64{'a', 'A', 1, '#'},
				Line("cat"),
				Line("#drop"),
				Line("lamp"),
			),
			PassingInputs: [][]int64{
				// g flag off: fault latent
				Cat([]int64{'a', 'A', 0, '#'}, Line("cat"), Line("lamp")),
				Cat([]int64{'x', 'X', 0, '!'}, Line("box"), Line("!gone"), Line("ox")),
				Cat([]int64{'q', 'Q', 0, '#'}, Line("nothing here")),
				Cat([]int64{'z', 'Z', 0, '#'}),
			},
		},
		{
			Program:     "sedsim",
			ID:          "V3-F3",
			Description: "substitution omitted at line position 0: the match predicate requires j > 0",
			CorrectSrc:  sedSrc,
			FaultFrom:   "if (buf[j] == from) {",
			FaultTo:     "if (buf[j] == from && j > 0) {",
			RootFrag:    "buf[j] == from && j > 0",
			// 'apple' starts with 'a': the first character should be
			// substituted but is printed unchanged.
			FailingInput: Cat(
				[]int64{'a', 'A', 0, '#'},
				Line("apple"),
				Line("bat"),
			),
			PassingInputs: [][]int64{
				// no line starts with the from-char
				Cat([]int64{'a', 'A', 0, '#'}, Line("bat"), Line("cap")),
				Cat([]int64{'z', 'Z', 1, '#'}, Line("fizz buzz")),
				Cat([]int64{'m', 'M', 0, '!'}, Line("!mmm"), Line("ham")),
				Cat([]int64{'k', 'K', 0, '#'}),
			},
		},
	}
}
