package bench

import "fmt"

// ScaledGrepInput generates a grepsim workload with n lines for scaling
// sweeps: the pattern is "a.c"; every 7th line matches via the
// mid-pattern wildcard (missed by the V4-F2 fault), every 13th matches
// literally, the rest do not match. Deterministic by construction.
func ScaledGrepInput(n int) []int64 {
	in := Line("a.c")
	for i := 1; i <= n; i++ {
		switch {
		case i%13 == 0:
			in = Cat(in, Line(fmt.Sprintf("xa.c%d", i)))
		case i%7 == 0 || i == 3:
			// wildcard matches; i == 3 guarantees one at every size
			in = Cat(in, Line(fmt.Sprintf("zaXc%d", i)))
		default:
			in = Cat(in, Line(fmt.Sprintf("noise%d", i)))
		}
	}
	return in
}

// ScaledFlexInput generates a flexsim token stream with roughly n tokens.
func ScaledFlexInput(n int) []int64 {
	var src string
	words := []string{"alpha", "if", "for", "beta", "x9", "wxyz", "12", "+", "-", "*"}
	for i := 0; i < n; i++ {
		src += words[i%len(words)]
		if i%11 == 10 {
			src += "\n"
		} else {
			src += " "
		}
	}
	return Bytes(src)
}

// ScaledSedInput generates a sedsim workload with n lines (g mode off so
// both program versions behave identically on it; useful for pure
// substrate scaling).
func ScaledSedInput(n int) []int64 {
	in := []int64{'a', 'A', 0, '#'}
	for i := 0; i < n; i++ {
		if i%5 == 4 {
			in = Cat(in, Line(fmt.Sprintf("#drop%d", i)))
		} else {
			in = Cat(in, Line(fmt.Sprintf("data%d", i)))
		}
	}
	return in
}
