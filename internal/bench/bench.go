// Package bench defines the benchmark suite of the reproduction: MiniC
// analogs of the four SIR/Siemens utilities the paper evaluates on
// (flex, grep, gzip, sed), each with seeded execution-omission faults
// mirroring the nine error cases of Table 2/Table 3.
//
// Every fault is an in-place, expression-level edit of the correct
// program (like the paper's seeded errors), so the faulty and correct
// versions share statement numbering — which both the ground-truth state
// oracle and the evaluation harness rely on. Each case carries a failing
// input that exposes the fault and a set of passing inputs used as the
// test suite (value profiles for confidence analysis, and regression
// checks that the fault stays latent on them).
package bench

import (
	"fmt"
	"strings"

	"eol/internal/check"
	"eol/internal/confidence"
	"eol/internal/core"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/oracle"
)

// Case is one benchmark error case (a row of Tables 2-4).
type Case struct {
	// Program is the benchmark name: flexsim, grepsim, gzipsim, sedsim.
	Program string
	// ID names the error in the paper's "Vx-Fy" style.
	ID string
	// Description explains the seeded fault.
	Description string

	// CorrectSrc is the correct program; the faulty version is produced
	// by replacing FaultFrom with FaultTo (exactly once).
	CorrectSrc string
	FaultFrom  string
	FaultTo    string

	// RootFrag is a source fragment identifying the root-cause statement
	// in the *faulty* program.
	RootFrag string

	// FailingInput exposes the fault; PassingInputs do not (they form
	// the test suite and the value profile).
	FailingInput  []int64
	PassingInputs [][]int64
}

// Name returns "program/ID".
func (c *Case) Name() string { return c.Program + "/" + c.ID }

// FaultySrc derives the faulty program text.
func (c *Case) FaultySrc() (string, error) {
	if !strings.Contains(c.CorrectSrc, c.FaultFrom) {
		return "", fmt.Errorf("%s: fault site %q not found", c.Name(), c.FaultFrom)
	}
	if strings.Count(c.CorrectSrc, c.FaultFrom) != 1 {
		return "", fmt.Errorf("%s: fault site %q is ambiguous", c.Name(), c.FaultFrom)
	}
	return strings.Replace(c.CorrectSrc, c.FaultFrom, c.FaultTo, 1), nil
}

// Prepared is a compiled, executed and profiled case, ready for analysis.
type Prepared struct {
	Case     *Case
	Faulty   *interp.Compiled
	Correct  *interp.Compiled
	Expected []int64        // correct outputs on the failing input
	Run      *interp.Result // traced faulty run on the failing input
	Profile  *confidence.Profile
	RootStmt int
}

// Prepare compiles both versions, runs them on the failing input, builds
// the value profile from the passing inputs, and resolves the root-cause
// statement.
func (c *Case) Prepare() (*Prepared, error) {
	faultySrc, err := c.FaultySrc()
	if err != nil {
		return nil, err
	}
	faulty, err := interp.Compile(faultySrc)
	if err != nil {
		return nil, fmt.Errorf("%s: faulty: %w", c.Name(), err)
	}
	correct, err := interp.Compile(c.CorrectSrc)
	if err != nil {
		return nil, fmt.Errorf("%s: correct: %w", c.Name(), err)
	}
	if faulty.Info.NumStmts() != correct.Info.NumStmts() {
		return nil, fmt.Errorf("%s: fault edit changed statement numbering", c.Name())
	}
	for _, v := range []struct {
		which string
		c     *interp.Compiled
	}{{"correct", correct}, {"faulty", faulty}} {
		if diags := check.Vet(check.NewUnit(v.c, nil)); check.HasErrors(diags) {
			return nil, fmt.Errorf("%s: %s version fails static validation: %v", c.Name(), v.which, diags)
		}
	}

	correctRun := interp.Run(correct, interp.Options{Input: c.FailingInput, BuildTrace: true})
	if correctRun.Err != nil {
		return nil, fmt.Errorf("%s: correct run: %w", c.Name(), correctRun.Err)
	}
	faultyRun := interp.Run(faulty, interp.Options{Input: c.FailingInput, BuildTrace: true})
	if faultyRun.Err != nil {
		return nil, fmt.Errorf("%s: faulty run: %w", c.Name(), faultyRun.Err)
	}

	prof := confidence.NewProfile()
	for _, in := range c.PassingInputs {
		r := interp.Run(faulty, interp.Options{Input: in, BuildTrace: true})
		if r.Err != nil {
			return nil, fmt.Errorf("%s: profile run: %w", c.Name(), r.Err)
		}
		prof.AddTrace(r.Trace)
	}

	root := 0
	for _, s := range faulty.Info.Stmts {
		if strings.Contains(ast.StmtString(s), c.RootFrag) {
			root = s.ID()
			break
		}
	}
	if root == 0 {
		return nil, fmt.Errorf("%s: root fragment %q not found", c.Name(), c.RootFrag)
	}

	return &Prepared{
		Case:     c,
		Faulty:   faulty,
		Correct:  correct,
		Expected: correctRun.OutputValues(),
		Run:      faultyRun,
		Profile:  prof,
		RootStmt: root,
	}, nil
}

// CorrectTrace returns the reference trace on the failing input.
func (p *Prepared) CorrectTrace() *interp.Result {
	return interp.Run(p.Correct, interp.Options{Input: p.Case.FailingInput, BuildTrace: true})
}

// Spec builds the localization problem with the ground-truth state
// oracle.
func (p *Prepared) Spec() *core.Spec {
	return &core.Spec{
		Program:   p.Faulty,
		Input:     p.Case.FailingInput,
		Expected:  p.Expected,
		RootCause: []int{p.RootStmt},
		Oracle:    &oracle.StateOracle{Correct: p.CorrectTrace().Trace},
		Profile:   p.Profile,
	}
}

// LOC counts non-blank source lines of the correct program.
func (c *Case) LOC() int {
	n := 0
	for _, l := range strings.Split(c.CorrectSrc, "\n") {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}

// Cases returns all benchmark error cases in Table 2 order.
func Cases() []*Case {
	var cs []*Case
	cs = append(cs, flexCases()...)
	cs = append(cs, grepCases()...)
	cs = append(cs, gzipCases()...)
	cs = append(cs, sedCases()...)
	return cs
}

// ByName returns the case with the given "program/ID" name, or nil.
func ByName(name string) *Case {
	for _, c := range Cases() {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Input encoding helpers

// Bytes encodes a string as its byte values.
func Bytes(s string) []int64 {
	vs := make([]int64, len(s))
	for i := 0; i < len(s); i++ {
		vs[i] = int64(s[i])
	}
	return vs
}

// Line encodes a length-prefixed line: [len, bytes...].
func Line(s string) []int64 {
	return append([]int64{int64(len(s))}, Bytes(s)...)
}

// Cat concatenates input fragments.
func Cat(parts ...[]int64) []int64 {
	var res []int64
	for _, p := range parts {
		res = append(res, p...)
	}
	return res
}
