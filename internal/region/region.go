// Package region exposes the execution-region decomposition of Definition
// 3 of the PLDI 2007 paper over a trace:
//
//	Region ::= s CD
//	CD     ::= ε | Region | CD Region
//
// A region is a statement execution s together with the statement
// executions control dependent on it. The interpreter's dynamic
// control-parent relation already *is* this decomposition, so a Region
// here is just a view: it is identified by its head entry index, and its
// members are the head plus its region-tree descendants. The virtual root
// region (Head == Root) spans the whole execution.
//
// The navigation operations — surrounding region, first subregion,
// sibling region, branch outcome, membership — are exactly the primitives
// of the paper's matching algorithm (Algorithm 1).
package region

import (
	"fmt"
	"sort"

	"eol/internal/cfg"
	"eol/internal/trace"
)

// Root is the head value of the virtual whole-execution region.
const Root = -1

// Region is a view of one execution region of a trace.
type Region struct {
	T    *trace.Trace
	Head int // entry index of the region head, or Root
}

// String renders the region for diagnostics.
func (r Region) String() string {
	if r.Head == Root {
		return "[root]"
	}
	return fmt.Sprintf("[%s...]", r.T.At(r.Head).Inst)
}

// Whole returns the virtual whole-execution region of t.
func Whole(t *trace.Trace) Region { return Region{T: t, Head: Root} }

// Of returns the immediate surrounding region of entry: the region headed
// by its dynamic control parent (the paper's Region(s)).
func Of(t *trace.Trace, entry int) Region {
	return Region{T: t, Head: t.At(entry).Parent}
}

// Parent returns the immediate surrounding region of r (the paper's
// Region(r)). The parent of the whole-execution region is itself.
func (r Region) Parent() Region {
	if r.Head == Root {
		return r
	}
	return Region{T: r.T, Head: r.T.At(r.Head).Parent}
}

// IsRoot reports whether r is the virtual whole-execution region.
func (r Region) IsRoot() bool { return r.Head == Root }

// Contains reports whether entry belongs to r (the paper's InRegion):
// the head itself or any region-tree descendant of it.
func (r Region) Contains(entry int) bool {
	if r.Head == Root {
		return true
	}
	return r.T.Ancestry().IsAncestor(r.Head, entry)
}

// HeadStmt returns the statement ID of the region head, or 0 for the
// root region.
func (r Region) HeadStmt() int {
	if r.Head == Root {
		return 0
	}
	return r.T.At(r.Head).Inst.Stmt
}

// HeadInstance returns the head's statement instance; zero for the root.
func (r Region) HeadInstance() trace.Instance {
	if r.Head == Root {
		return trace.Instance{}
	}
	return r.T.At(r.Head).Inst
}

// Branch returns the branch outcome taken at the region head (the
// paper's Branch(r)); cfg.None for non-predicate heads and the root.
func (r Region) Branch() cfg.Label {
	if r.Head == Root {
		return cfg.None
	}
	return r.T.At(r.Head).Branch
}

// children returns the entry indices of the direct subregion heads.
func (r Region) children() []int {
	if r.Head == Root {
		return r.T.Roots()
	}
	return r.T.Children(r.Head)
}

// FirstSub returns the first immediate subregion of r (the paper's
// FirstSubRegion), or ok == false if r has none.
func (r Region) FirstSub() (Region, bool) {
	kids := r.children()
	if len(kids) == 0 {
		return Region{}, false
	}
	return Region{T: r.T, Head: kids[0]}, true
}

// Sibling returns the next sibling subregion of r within its surrounding
// region (the paper's SiblingRegion), or ok == false if r is the last.
func (r Region) Sibling() (Region, bool) {
	if r.Head == Root {
		return Region{}, false
	}
	sibs := r.Parent().children()
	// kids are sorted by entry index; locate r.Head.
	i := sort.SearchInts(sibs, r.Head)
	if i >= len(sibs) || sibs[i] != r.Head || i+1 >= len(sibs) {
		return Region{}, false
	}
	return Region{T: r.T, Head: sibs[i+1]}, true
}

// SubRegions returns all immediate subregions in execution order.
func (r Region) SubRegions() []Region {
	kids := r.children()
	res := make([]Region, len(kids))
	for i, k := range kids {
		res[i] = Region{T: r.T, Head: k}
	}
	return res
}

// Size returns the number of entries in the region (head + descendants);
// the root region spans the whole trace.
func (r Region) Size() int {
	if r.Head == Root {
		return r.T.Len()
	}
	n := 0
	var walk func(int)
	walk = func(i int) {
		n++
		for _, k := range r.T.Children(i) {
			walk(k)
		}
	}
	walk(r.Head)
	return n
}
