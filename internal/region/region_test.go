package region

import (
	"testing"

	"eol/internal/cfg"
	"eol/internal/interp"
	"eol/internal/testsupport"
	"eol/internal/trace"
)

const src = `
func main() {
    var t = read();
    var i = 0;
    if (t) {
        i = 1;
    }
    while (i < 2) {
        i = i + 1;
    }
    print(i);
}`

func run(t *testing.T) (*interp.Compiled, *trace.Trace) {
	t.Helper()
	c := testsupport.Compile(t, src)
	r := testsupport.Run(t, c, []int64{1})
	return c, r.Trace
}

func inst(t *testing.T, c *interp.Compiled, tr *trace.Trace, frag string, occ int) int {
	t.Helper()
	id := testsupport.StmtID(t, c, frag)
	i := tr.FindInstance(trace.Instance{Stmt: id, Occ: occ})
	if i < 0 {
		t.Fatalf("%s#%d not executed", frag, occ)
	}
	return i
}

func TestWholeRegion(t *testing.T) {
	_, tr := run(t)
	w := Whole(tr)
	if !w.IsRoot() {
		t.Error("whole region must be root")
	}
	if w.Size() != tr.Len() {
		t.Errorf("root size = %d, want %d", w.Size(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if !w.Contains(i) {
			t.Errorf("root must contain %d", i)
		}
	}
	if w.Parent() != w {
		t.Error("root's parent is itself")
	}
	if w.Branch() != cfg.None || w.HeadStmt() != 0 {
		t.Error("root has no head")
	}
	if _, ok := w.Sibling(); ok {
		t.Error("root has no sibling")
	}
}

func TestRegionNavigation(t *testing.T) {
	c, tr := run(t)
	ifIdx := inst(t, c, tr, "if (t)", 1)
	thenIdx := inst(t, c, tr, "i = 1", 1)

	rThen := Of(tr, thenIdx)
	if rThen.Head != ifIdx {
		t.Errorf("Region(then) headed by %d, want the if %d", rThen.Head, ifIdx)
	}
	if !rThen.Contains(thenIdx) || !rThen.Contains(ifIdx) {
		t.Error("region must contain its head and members")
	}
	if rThen.HeadStmt() != tr.At(ifIdx).Inst.Stmt {
		t.Error("HeadStmt mismatch")
	}
	if rThen.Branch() != cfg.True {
		t.Errorf("if took %v, want True", rThen.Branch())
	}
	sub, ok := rThen.FirstSub()
	if !ok || sub.Head != thenIdx {
		t.Errorf("FirstSub = %v (%v)", sub, ok)
	}
	if _, ok := sub.FirstSub(); ok {
		t.Error("leaf region has no subregions")
	}
}

func TestSiblingWalk(t *testing.T) {
	c, tr := run(t)
	// Top-level statements of main are roots; walk them via the whole
	// region's subregions.
	w := Whole(tr)
	subs := w.SubRegions()
	if len(subs) != len(tr.Roots()) {
		t.Fatalf("subregions = %d, roots = %d", len(subs), len(tr.Roots()))
	}
	// FirstSub + Sibling* traverses exactly SubRegions.
	cur, ok := w.FirstSub()
	for i := 0; ok; i++ {
		if cur.Head != subs[i].Head {
			t.Fatalf("walk diverged at %d", i)
		}
		cur, ok = cur.Sibling()
	}

	// Loop iterations nest: while#2's region is a subregion of while#1's.
	w1 := inst(t, c, tr, "while (i < 2)", 1)
	w2 := inst(t, c, tr, "while (i < 2)", 2)
	r1 := Region{T: tr, Head: w1}
	if !r1.Contains(w2) {
		t.Error("iteration 2 must nest inside iteration 1's region")
	}
	if got := (Region{T: tr, Head: w2}).Parent().Head; got != w1 {
		t.Errorf("parent of iter-2 region = %d, want %d", got, w1)
	}
}

func TestRegionSize(t *testing.T) {
	c, tr := run(t)
	ifIdx := inst(t, c, tr, "if (t)", 1)
	r := Region{T: tr, Head: ifIdx}
	if r.Size() != 2 { // the if + the then assignment
		t.Errorf("if-region size = %d, want 2", r.Size())
	}
}

func TestHeadInstanceAndString(t *testing.T) {
	c, tr := run(t)
	ifIdx := inst(t, c, tr, "if (t)", 1)
	r := Region{T: tr, Head: ifIdx}
	if r.HeadInstance() != tr.At(ifIdx).Inst {
		t.Error("HeadInstance mismatch")
	}
	if r.String() == "" || Whole(tr).String() != "[root]" {
		t.Error("String render broken")
	}
	if (Whole(tr)).HeadInstance() != (trace.Instance{}) {
		t.Error("root HeadInstance must be zero")
	}
}
