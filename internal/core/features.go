package core

import (
	"fmt"
	"sort"
)

// FeatureMode is a tri-state switch for one optional engine feature.
// FeatureDefault defers to the legacy knob on Spec (NoStaticSkip,
// NoStaticReach, NoIncremental, the sign of Checkpoints) or, for features
// without a legacy knob, to the built-in default; FeatureOn and
// FeatureOff force the feature regardless of the legacy knobs.
type FeatureMode uint8

const (
	FeatureDefault FeatureMode = iota
	FeatureOn
	FeatureOff
)

// String renders the wire spelling: "default", "on", "off".
func (m FeatureMode) String() string {
	switch m {
	case FeatureOn:
		return "on"
	case FeatureOff:
		return "off"
	}
	return "default"
}

// ParseFeatureMode parses the wire spelling. The empty string reads as
// FeatureDefault, so map-valued wire fields can omit a value.
func ParseFeatureMode(s string) (FeatureMode, error) {
	switch s {
	case "", "default":
		return FeatureDefault, nil
	case "on":
		return FeatureOn, nil
	case "off":
		return FeatureOff, nil
	}
	return FeatureDefault, fmt.Errorf("unknown feature mode %q (want on, off or default)", s)
}

// Features selects the locator's optional engine features positively,
// replacing the accreted negative knobs on Spec (NoStaticSkip,
// NoStaticReach, NoIncremental, Checkpoints < 0). Each field is a
// tri-state: FeatureDefault defers to the corresponding legacy knob, so
// a zero Features changes nothing and old call sites keep working.
//
// Every feature is results-neutral: Report counters, VerifyLog and the
// obs journal are byte-identical whatever the switches — only cost
// counters and wall-clock time change (see the field docs on Spec).
type Features struct {
	// StaticSkip is the trace-replay skip filter (check.SwitchFilter);
	// legacy knob: NoStaticSkip. On by default.
	StaticSkip FeatureMode
	// StaticReach is the SPDG pre-execution reach filter
	// (check.StaticReachFilter); legacy knob: NoStaticReach. On by
	// default.
	StaticReach FeatureMode
	// IncrementalReprune is delta re-propagation in confidence analysis;
	// legacy knob: NoIncremental. On by default.
	IncrementalReprune FeatureMode
	// Checkpoints is checkpointed switched replay; legacy knob: the sign
	// of Spec.Checkpoints (negative = off). When forced On while the
	// legacy field is negative, the default checkpoint count is used;
	// otherwise Spec.Checkpoints keeps selecting the count. On by
	// default.
	Checkpoints FeatureMode
	// Speculation overlaps predicted next-round switched runs with the
	// re-prune (docs/SPECULATION.md). No legacy knob; OFF by default —
	// on single-CPU hosts speculative runs compete with demand work.
	// Forced off under PathMode and when the switched-run cache is
	// disabled (there is nowhere to land the results).
	Speculation FeatureMode
}

// Overlay returns f with over's non-default fields taking precedence —
// the per-subject merge rule of corpus manifests.
func (f Features) Overlay(over Features) Features {
	pick := func(base, o FeatureMode) FeatureMode {
		if o != FeatureDefault {
			return o
		}
		return base
	}
	return Features{
		StaticSkip:         pick(f.StaticSkip, over.StaticSkip),
		StaticReach:        pick(f.StaticReach, over.StaticReach),
		IncrementalReprune: pick(f.IncrementalReprune, over.IncrementalReprune),
		Checkpoints:        pick(f.Checkpoints, over.Checkpoints),
		Speculation:        pick(f.Speculation, over.Speculation),
	}
}

// Feature names as spelled on the wire (api requests, corpus manifests)
// and in -feature CLI flags.
const (
	FeatureStaticSkip         = "static_skip"
	FeatureStaticReach        = "static_reach"
	FeatureIncrementalReprune = "incremental_reprune"
	FeatureCheckpoints        = "checkpoints"
	FeatureSpeculation        = "speculation"
)

// FeatureNames lists the wire-spelling feature names, sorted.
func FeatureNames() []string {
	return []string{
		FeatureCheckpoints,
		FeatureIncrementalReprune,
		FeatureSpeculation,
		FeatureStaticReach,
		FeatureStaticSkip,
	}
}

// ParseFeatures builds a Features from its wire spelling: a map from
// feature name to mode ("on", "off", "default" or empty). Unknown names
// and modes are rejected — the server surfaces them with the `invalid`
// error code.
func ParseFeatures(m map[string]string) (Features, error) {
	var f Features
	// Deterministic error selection: report the smallest offending name.
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mode, err := ParseFeatureMode(m[name])
		if err != nil {
			return Features{}, fmt.Errorf("feature %s: %w", name, err)
		}
		switch name {
		case FeatureStaticSkip:
			f.StaticSkip = mode
		case FeatureStaticReach:
			f.StaticReach = mode
		case FeatureIncrementalReprune:
			f.IncrementalReprune = mode
		case FeatureCheckpoints:
			f.Checkpoints = mode
		case FeatureSpeculation:
			f.Speculation = mode
		default:
			return Features{}, fmt.Errorf("unknown feature %q (want one of %v)", name, FeatureNames())
		}
	}
	return f, nil
}

// Map renders f in its wire spelling, omitting FeatureDefault fields —
// so a zero Features marshals to nothing and existing requests stay
// byte-identical.
func (f Features) Map() map[string]string {
	m := map[string]string{}
	put := func(name string, mode FeatureMode) {
		if mode != FeatureDefault {
			m[name] = mode.String()
		}
	}
	put(FeatureStaticSkip, f.StaticSkip)
	put(FeatureStaticReach, f.StaticReach)
	put(FeatureIncrementalReprune, f.IncrementalReprune)
	put(FeatureCheckpoints, f.Checkpoints)
	put(FeatureSpeculation, f.Speculation)
	if len(m) == 0 {
		return nil
	}
	return m
}

// ResolvedFeatures is a Spec's feature configuration after resolving the
// tri-states against the legacy knobs: plain booleans plus the
// checkpoint count, ready for LocateContext to act on.
type ResolvedFeatures struct {
	StaticSkip         bool
	StaticReach        bool
	IncrementalReprune bool
	Checkpoints        bool
	// CheckpointCount is the capture bound when Checkpoints is true
	// (0 = interp.DefaultCheckpoints).
	CheckpointCount int
	Speculation     bool
}

// ResolveFeatures resolves spec's Features against its legacy negative
// knobs. FeatureDefault defers to the legacy field; FeatureOn/FeatureOff
// override it. This is the single source of truth for what LocateContext
// enables — callers inspecting a Spec (harness, corpus, tests) should
// use it instead of reading the legacy fields.
func (s *Spec) ResolveFeatures() ResolvedFeatures {
	r := ResolvedFeatures{
		StaticSkip:         !s.NoStaticSkip,
		StaticReach:        !s.NoStaticReach,
		IncrementalReprune: !s.NoIncremental,
		Checkpoints:        s.Checkpoints >= 0,
		Speculation:        false,
	}
	if s.Checkpoints > 0 {
		r.CheckpointCount = s.Checkpoints
	}
	apply := func(mode FeatureMode, b *bool) {
		switch mode {
		case FeatureOn:
			*b = true
		case FeatureOff:
			*b = false
		}
	}
	apply(s.Features.StaticSkip, &r.StaticSkip)
	apply(s.Features.StaticReach, &r.StaticReach)
	apply(s.Features.IncrementalReprune, &r.IncrementalReprune)
	apply(s.Features.Checkpoints, &r.Checkpoints)
	apply(s.Features.Speculation, &r.Speculation)
	return r
}
