package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"eol/internal/interp"
	"eol/internal/obs"
)

// cancelOn cancels a context the first time the named span begins. Core
// emits events only from the locator's own goroutine (never from
// verification workers), so the cancellation lands at a deterministic
// program point.
type cancelOn struct {
	span   string
	cancel context.CancelFunc
	fired  bool
	events []obs.Event
}

func (c *cancelOn) Event(e obs.Event) {
	c.events = append(c.events, e)
	if !c.fired && e.Kind == obs.KindBegin && e.Name == c.span {
		c.fired = true
		c.cancel()
	}
}

// checkBalanced verifies every begun span was ended — the journal
// contract that must hold even for aborted runs.
func checkBalanced(t *testing.T, events []obs.Event) {
	t.Helper()
	var stack []string
	for _, e := range events {
		switch e.Kind {
		case obs.KindBegin:
			stack = append(stack, e.Name)
		case obs.KindEnd:
			if len(stack) == 0 || stack[len(stack)-1] != e.Name {
				t.Fatalf("unbalanced journal: end %q with open spans %v", e.Name, stack)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		t.Fatalf("unbalanced journal: spans never ended: %v", stack)
	}
}

// cancelAtSpan runs a fig1 localization that cancels itself when the
// given span begins, and checks the abort contract: an error matching
// ErrCanceled, a non-nil partial report, and a balanced journal.
func cancelAtSpan(t *testing.T, span string, workers int) (*Report, *cancelOn) {
	t.Helper()
	spec, _ := fig1Spec(t)
	spec.VerifyWorkers = workers
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	co := &cancelOn{span: span, cancel: cancel}
	spec.Observer = co
	rep, err := LocateContext(ctx, spec)
	if !co.fired {
		t.Fatalf("span %q never began; cannot test cancellation there", span)
	}
	if err == nil {
		t.Fatalf("cancel at %q: Locate succeeded, want cancellation error", span)
	}
	if !errors.Is(err, interp.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel at %q: error %v does not match ErrCanceled/context.Canceled", span, err)
	}
	if ErrClass(err) != "canceled" {
		t.Fatalf("cancel at %q: ErrClass = %q, want canceled", span, ErrClass(err))
	}
	if rep == nil {
		t.Fatalf("cancel at %q: nil report, want partial report", span)
	}
	if rep.Located {
		t.Fatalf("cancel at %q: aborted run claims Located", span)
	}
	checkBalanced(t, co.events)
	return rep, co
}

// TestCancelDuringSlicing cancels while the initial pruning pass runs:
// the first reprune span begins right after slicing.
func TestCancelDuringSlicing(t *testing.T) {
	rep, _ := cancelAtSpan(t, "reprune", 1)
	// Nothing has been verified yet at that point.
	if rep.Stats.Verifications != 0 {
		t.Errorf("Verifications = %d before any expansion, want 0", rep.Stats.Verifications)
	}
}

// TestCancelDuringVerifyBatch cancels as a verification batch starts,
// with a parallel worker pool: in-flight switched runs must drain, the
// batch must be discarded whole, and the partial stats must still carry
// the pre-batch counters.
func TestCancelDuringVerifyBatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rep, _ := cancelAtSpan(t, "verify_batch", workers)
		if rep.Stats.Verifications != 0 {
			t.Errorf("workers=%d: aborted batch absorbed %d verifications, want 0",
				workers, rep.Stats.Verifications)
		}
	}
}

// TestCancelDuringSwitchedRun cancels mid-localization at the iteration
// boundary.
func TestCancelDuringSwitchedRun(t *testing.T) {
	cancelAtSpan(t, "iteration", 2)
}

// TestDeadlinePreExpired runs Locate under an already-expired deadline:
// the failing run aborts before executing a single statement and the
// error matches both ErrDeadline and context.DeadlineExceeded.
func TestDeadlinePreExpired(t *testing.T) {
	spec, _ := fig1Spec(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	rep, err := LocateContext(ctx, spec)
	if err == nil {
		t.Fatal("Locate met an expired deadline, want error")
	}
	if !errors.Is(err, interp.ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not match ErrDeadline/context.DeadlineExceeded", err)
	}
	if ErrClass(err) != "deadline" {
		t.Fatalf("ErrClass = %q, want deadline", ErrClass(err))
	}
	if rep == nil {
		t.Fatal("nil report, want empty partial report")
	}
}

// TestDeadlineDuringRun gives a long-running failing program a few
// milliseconds: the interpreter's amortized context checkpoint must
// stop it mid-run with partial step accounting.
func TestDeadlineDuringRun(t *testing.T) {
	c := mustCompileT(t, `
func main() {
    var x = read();
    var i = 0;
    while (i < 100000000) {
        i = i + 1;
    }
    print(x);
}
`)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	spec := &Spec{Program: c, Input: []int64{1}, Expected: []int64{2}}
	rep, err := LocateContext(ctx, spec)
	if !errors.Is(err, interp.ErrDeadline) {
		t.Fatalf("error %v does not match ErrDeadline", err)
	}
	if rep == nil {
		t.Fatal("nil report, want partial report")
	}
}

// TestCanceledLocateLeaksNoGoroutines runs many canceled parallel
// localizations and checks the goroutine count settles back: worker
// pools must drain even when their batch is aborted.
func TestCanceledLocateLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		spec, _ := fig1Spec(t)
		spec.VerifyWorkers = 4
		ctx, cancel := context.WithCancel(context.Background())
		co := &cancelOn{span: "verify_batch", cancel: cancel}
		spec.Observer = co
		if _, err := LocateContext(ctx, spec); err == nil {
			t.Fatal("expected cancellation error")
		}
		cancel()
	}
	// Give drained workers a moment to exit.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after canceled runs", before, runtime.NumGoroutine())
}

func mustCompileT(t *testing.T, src string) *interp.Compiled {
	t.Helper()
	c, err := interp.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}
