package core

import (
	"testing"

	"eol/internal/confidence"
	"eol/internal/ddg"
	"eol/internal/implicit"
	"eol/internal/slicing"
	"eol/internal/testsupport"
	"eol/internal/trace"
)

// TestPaperWalkthrough replays the paper's §3.2 numbered computation
// steps on the Fig. 1 program, asserting each intermediate state:
//
//	(1) prune the dynamic slice of the wrong output — the one-to-one
//	    analog (the DEFLATED/method chain) is removed;
//	(2) the wrong output is selected for expansion; PD = {S7};
//	    VerifyDep(S7, S10) returns NOT_ID, no edges are added;
//	(3) the flags store is selected; PD = {S4};
//	    VerifyDep(S4, S6) returns STRONG_ID, the edge is added;
//	(4) the re-pruned slice contains the root cause and explains the
//	    failure.
func TestPaperWalkthrough(t *testing.T) {
	c := testsupport.Compile(t, testsupport.Fig1Faulty)
	fixed := testsupport.Compile(t, testsupport.Fig1Fixed)
	expected := testsupport.Run(t, fixed, testsupport.Fig1Input).OutputValues()
	r := testsupport.Run(t, c, testsupport.Fig1Input)
	tr := r.Trace

	// Paper statement names.
	s1 := testsupport.StmtID(t, c, "read() * 0")                  // S1: root cause
	s2 := testsupport.StmtID(t, c, "flags = 0")                   // S2
	s4 := testsupport.StmtID(t, c, "if (saveOrigName)")           // S4 (first if)
	s6 := testsupport.StmtID(t, c, "outbuf[outcnt] = flags")      // S6
	s10 := testsupport.StmtID(t, c, "print(outbuf[1])")           // S10
	s3analog := testsupport.StmtID(t, c, "var method = deflated") // one-to-one to correct output

	seq, _, ok := slicing.FirstWrongOutput(r.OutputValues(), expected)
	if !ok || seq != 1 {
		t.Fatalf("failure detection: seq=%d ok=%v", seq, ok)
	}
	wrong := *tr.OutputAt(seq)
	correct := []trace.Output{*tr.OutputAt(0)}
	g := ddg.New(tr)

	// --- Step (1): prune the dynamic slice.
	ds := slicing.Dynamic(g, wrong.Entry)
	if g.ContainsStmt(ds, s1) || g.ContainsStmt(ds, s4) {
		t.Fatal("precondition: DS must miss the root cause and the predicate")
	}
	an := confidence.New(c, g, nil, correct, wrong)
	an.Compute()
	pruned := ddg.NewSet(tr.Len())
	for _, cand := range an.FaultCandidates() {
		pruned.Add(cand.Entry)
	}
	if g.ContainsStmt(pruned, s3analog) {
		t.Error("step 1: the one-to-one analog of S3 must be pruned (it feeds the correct output)")
	}
	for _, must := range []int{s2, s6, s10} {
		if !g.ContainsStmt(ds, must) {
			t.Errorf("step 1: DS missing the paper's S%d analog (stmt %d)", must, must)
		}
	}

	ver := &implicit.Verifier{
		C: c, Input: testsupport.Fig1Input, Orig: tr,
		WrongOut: wrong, Vexp: expected[seq], HasVexp: true,
	}
	cx := slicing.NewContext(c, tr)

	// --- Step (2): expand the wrong output; the false dependence is
	// rejected.
	pds := cx.PotentialDeps(wrong.Entry)
	if len(pds) == 0 {
		t.Fatal("step 2: PD(S10) must not be empty")
	}
	for _, pd := range pds {
		v := ver.Verify(implicit.Request{Pred: pd.Pred, Use: wrong.Entry, UseSym: pd.UseSym, UseElem: pd.UseElem})
		if v != implicit.NotID {
			t.Errorf("step 2: VerifyDep(%v, S10) = %v, want NOT_ID", tr.At(pd.Pred).Inst, v)
		}
	}

	// --- Step (3): expand the flags store; the strong implicit
	// dependence on S4 is found and added.
	s6idx := tr.FindInstance(trace.Instance{Stmt: s6, Occ: 1})
	pds = cx.PotentialDeps(s6idx)
	if len(pds) != 1 || tr.At(pds[0].Pred).Inst.Stmt != s4 {
		t.Fatalf("step 3: PD(S6) = %v, want exactly {S4#1}", pds)
	}
	v := ver.Verify(implicit.Request{Pred: pds[0].Pred, Use: s6idx, UseSym: pds[0].UseSym, UseElem: pds[0].UseElem})
	if v != implicit.StrongID {
		t.Fatalf("step 3: VerifyDep(S4, S6) = %v, want STRONG_ID", v)
	}
	g.AddEdge(s6idx, pds[0].Pred, ddg.StrongImplicit)

	// --- Step (4): the new pruned slice contains the root cause and the
	// whole cause-effect chain {S1, S2, S4, S6, S10}.
	an.Compute()
	final := ddg.NewSet(tr.Len())
	for _, cand := range an.FaultCandidates() {
		final.Add(cand.Entry)
	}
	for _, must := range []int{s1, s2, s4, s6, s10} {
		if !g.ContainsStmt(final, must) {
			t.Errorf("step 4: final slice missing the paper's chain member (stmt %d)", must)
		}
	}
	// And the chain explains the failure: the root cause reaches the
	// wrong output in the expanded graph.
	closure := g.BackwardSlice(ddg.Explicit|ddg.StrongImplicit, wrong.Entry)
	rootIdx := tr.FindInstance(trace.Instance{Stmt: s1, Occ: 1})
	if !closure.Has(rootIdx) {
		t.Error("step 4: the root cause is not reachable from the failure in the expanded graph")
	}
}
