package core_test

// A/B coverage for the SPDG static reach filter: every observable output
// of Locate — verdict, Table 3 counters, VerifyLog, IPS ranking — must be
// identical with the filter on and off, across worker/cache/checkpoint
// configurations; only the run-accounting counters (SwitchedRuns,
// StaticReachSkips) may differ, and on the filtered side they must show
// the filter actually fired. The subjects are the element-disjointness
// programs of testdata/corpus/staticreach.json: a symbol-level candidate
// generator pairs their decoy predicates with constant-index array uses
// the predicates provably cannot reach (docs/STATICDEP.md).

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eol/internal/core"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/oracle"
)

// staticReachSpec builds a Spec from one of the staticreach corpus
// subject file pairs, with the state oracle and root-cause marker the
// corpus driver would derive.
func staticReachSpec(t *testing.T, base, rootFrag string, crossFn bool) *core.Spec {
	t.Helper()
	dir := filepath.Join("..", "..", "testdata", "corpus")
	load := func(name string) *interp.Compiled {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		c, err := interp.Compile(string(src))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return c
	}
	faulty := load(base + ".mc")
	fixed := load(base + "_fixed.mc")
	input := []int64{5}
	corRun := interp.Run(fixed, interp.Options{Input: input, BuildTrace: true})
	if corRun.Err != nil {
		t.Fatalf("correct run: %v", corRun.Err)
	}
	var root []int
	for _, s := range faulty.Info.Stmts {
		if strings.Contains(ast.StmtString(s), rootFrag) {
			root = append(root, s.ID())
		}
	}
	if len(root) == 0 {
		t.Fatalf("no statement matches root frag %q", rootFrag)
	}
	return &core.Spec{
		Program:         faulty,
		Input:           input,
		Expected:        corRun.OutputValues(),
		Oracle:          &oracle.StateOracle{Correct: corRun.Trace},
		RootCause:       root,
		CrossFunctionPD: crossFn,
	}
}

var staticReachSubjects = []struct {
	name, base, root string
	crossFn          bool
}{
	{"elem", "staticreach_elem", "buf[1] > 100", false},
	{"cross", "staticreach_cross", "v > 90", true},
}

// TestStaticReachAB: filter on vs off across engine configurations.
func TestStaticReachAB(t *testing.T) {
	for _, sub := range staticReachSubjects {
		t.Run(sub.name, func(t *testing.T) {
			offSpec := staticReachSpec(t, sub.base, sub.root, sub.crossFn)
			offSpec.NoStaticReach = true
			offSpec.VerifyWorkers, offSpec.VerifyCacheSize = 1, -1
			off, offJournal := locateJournaled(t, offSpec)
			if !off.Located {
				t.Fatal("baseline did not locate")
			}
			if off.Stats.StaticReachSkips != 0 {
				t.Fatalf("filter disabled, yet %d static reach skips", off.Stats.StaticReachSkips)
			}

			var baseJournal []byte
			for _, cfg := range []struct {
				label            string
				workers, cacheSz int
				checkpoints      int
			}{
				{"workers=1/nocache", 1, -1, 0},
				{"workers=1/nocache/nockpt", 1, -1, -1},
				{"workers=8/nocache", 8, -1, 0},
				{"workers=8/cache", 8, 0, 0},
			} {
				spec := staticReachSpec(t, sub.base, sub.root, sub.crossFn)
				spec.VerifyWorkers, spec.VerifyCacheSize = cfg.workers, cfg.cacheSz
				spec.Checkpoints = cfg.checkpoints

				on, onJournal := locateJournaled(t, spec)
				assertSameOutcome(t, sub.name+"/"+cfg.label, off, on)
				if on.Stats.StaticReachSkips == 0 {
					t.Errorf("%s: static reach filter never fired", cfg.label)
				}
				// The reach filter is consulted before the replay filter, so
				// it may claim candidates the replay filter would otherwise
				// skip — but never invent or lose any: the total of runs and
				// skips of both kinds is invariant.
				if on.Stats.StaticSkips > off.Stats.StaticSkips {
					t.Errorf("%s: replay skips grew from %d to %d with the reach filter on",
						cfg.label, off.Stats.StaticSkips, on.Stats.StaticSkips)
				}
				got := on.Stats.SwitchedRuns + on.Stats.StaticReachSkips + on.Stats.StaticSkips
				want := off.Stats.SwitchedRuns + off.Stats.StaticReachSkips + off.Stats.StaticSkips
				if cfg.cacheSz == -1 && got != want {
					t.Errorf("%s: runs+skips = %d, want %d (each skip must replace exactly one switched run)",
						cfg.label, got, want)
				}
				// Journal bytes are scheduling-independent: every filtered
				// uncached config must produce the same journal regardless
				// of workers or checkpoints. (Cache hits legitimately move
				// the runs gauge, as in the checkpoint A/B.)
				if cfg.cacheSz == -1 {
					if baseJournal == nil {
						baseJournal = onJournal
					} else if !bytes.Equal(onJournal, baseJournal) {
						t.Errorf("%s: journal bytes diverged across engine configurations", cfg.label)
					}
				}
			}
			_ = offJournal // differs from baseJournal only in run-accounting gauges; see TestStaticReachJournalNoFire
		})
	}
}

// TestStaticReachJournalNoFire: on a subject where the filter finds
// nothing to prove (Figure 1 — every array index is loop-variant), the
// journal must be byte-identical with the filter on and off: consulting
// the SPDG must be observationally free.
func TestStaticReachJournalNoFire(t *testing.T) {
	onSpec := fig1DetSpec(t)
	on, onJournal := locateJournaled(t, onSpec)
	if on.Stats.StaticReachSkips != 0 {
		t.Fatalf("expected no static reach skips on Figure 1, got %d", on.Stats.StaticReachSkips)
	}
	offSpec := fig1DetSpec(t)
	offSpec.NoStaticReach = true
	off, offJournal := locateJournaled(t, offSpec)
	assertSameOutcome(t, "fig1/on-vs-off", off, on)
	if !bytes.Equal(onJournal, offJournal) {
		t.Error("journal bytes diverged between filter on and off with zero fires")
	}
}
