package core_test

// Differential coverage for incremental re-pruning at the Locate level:
// Spec.NoIncremental toggles how the re-prune step after each expansion
// iteration is computed (delta re-propagation vs full recompute), and
// the two modes must produce identical Reports — verdict, Table 3
// counters, VerifyLog, IPS entries and confidences. Only the cost
// counters Stats.Repropagated / Stats.DirtyFraction may differ.

import (
	"testing"

	"eol/internal/bench"
	"eol/internal/core"
)

// assertSameDiagnosis extends assertSameOutcome with the confidence
// ranking, which the incremental path recomputes selectively.
func assertSameDiagnosis(t *testing.T, label string, want, got *core.Report) {
	t.Helper()
	assertSameOutcome(t, label, want, got)
	if len(got.IPSConfidence) != len(want.IPSConfidence) {
		t.Fatalf("%s: %d IPS confidences, want %d",
			label, len(got.IPSConfidence), len(want.IPSConfidence))
	}
	for i := range want.IPSConfidence {
		if got.IPSConfidence[i] != want.IPSConfidence[i] {
			t.Errorf("%s: IPS confidence %d = %v, want %v",
				label, i, got.IPSConfidence[i], want.IPSConfidence[i])
		}
	}
}

// TestIncrementalDeterminismFig1: incremental off vs on under every
// worker / cache / skip-filter combination on the Figure 1 program.
func TestIncrementalDeterminismFig1(t *testing.T) {
	for _, cfg := range []struct {
		label            string
		workers, cacheSz int
		noSkip           bool
	}{
		{"workers=1/nocache", 1, -1, false},
		{"workers=8/cache", 8, 0, false},
		{"workers=8/nocache/noskip", 8, -1, true},
	} {
		full := fig1DetSpec(t)
		full.NoIncremental = true
		full.NoStaticSkip = cfg.noSkip
		want := locateConfigured(t, full, cfg.workers, cfg.cacheSz)

		inc := fig1DetSpec(t)
		inc.NoStaticSkip = cfg.noSkip
		got := locateConfigured(t, inc, cfg.workers, cfg.cacheSz)
		assertSameDiagnosis(t, cfg.label, want, got)
		if want.Stats.DirtyFraction != 0 && want.Stats.DirtyFraction != 1 {
			t.Errorf("%s: full mode reported dirty fraction %v, want 0 or 1",
				cfg.label, want.Stats.DirtyFraction)
		}
	}
}

// TestIncrementalDeterminismBench: the same A/B over the benchmark cases
// with the largest re-prune volumes, and the cost claim itself — after
// iteration 1 the incremental runs must touch a strictly smaller dirty
// cone than a full recompute (DirtyFraction < 1 somewhere in the suite).
func TestIncrementalDeterminismBench(t *testing.T) {
	sawDelta := false
	for _, name := range []string{"grepsim/V4-F2", "sedsim/V3-F2", "sedsim/V3-F3"} {
		c := bench.ByName(name)
		if c == nil {
			t.Fatalf("unknown case %s", name)
		}
		pA, err := c.Prepare()
		if err != nil {
			t.Fatal(err)
		}
		pB, err := c.Prepare()
		if err != nil {
			t.Fatal(err)
		}
		full := pA.Spec()
		full.NoIncremental = true
		want := locateConfigured(t, full, 1, -1)
		got := locateConfigured(t, pB.Spec(), 1, -1)
		assertSameDiagnosis(t, name, want, got)

		if got.Stats.Iterations > 1 {
			if got.Stats.DirtyFraction >= 1 || got.Stats.DirtyFraction < 0 {
				t.Errorf("%s: incremental dirty fraction %v, want in [0, 1)",
					name, got.Stats.DirtyFraction)
			}
			if got.Stats.DirtyFraction < 1 && got.Stats.Repropagated < want.Stats.Repropagated {
				sawDelta = true
			}
		}
	}
	if !sawDelta {
		t.Error("no benchmark case exercised a strict incremental win")
	}
}
