package core_test

// Journal determinism: the JSONL event stream Locate emits must be
// byte-identical for any worker count, with or without the switched-run
// cache and the static skip-filter. This extends the Report-level
// determinism contract (determinism_test.go) down to the observability
// layer — the journal carries per-batch counter deltas and per-result
// marks, so any scheduling leak (events emitted from worker goroutines,
// worker counts in attributes, absorption-order drift) shows up as a
// byte diff here.

import (
	"bytes"
	"fmt"
	"testing"

	"eol/internal/bench"
	"eol/internal/core"
	"eol/internal/obs"
)

// journalFor runs Locate on spec with the given engine sizing and
// returns the raw JSONL journal bytes.
func journalFor(t *testing.T, spec *core.Spec, workers, cacheSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	j := obs.NewJournal(&buf)
	spec.VerifyWorkers = workers
	spec.VerifyCacheSize = cacheSize
	spec.Observer = j
	if _, err := core.Locate(spec); err != nil {
		t.Fatalf("Locate(workers=%d cache=%d): %v", workers, cacheSize, err)
	}
	if err := j.Flush(); err != nil {
		t.Fatalf("journal flush: %v", err)
	}
	return buf.Bytes()
}

// diffLine finds the first differing line for a readable failure report.
func diffLine(a, b []byte) string {
	al, bl := bytes.Split(a, []byte{'\n'}), bytes.Split(b, []byte{'\n'})
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// TestJournalDeterminismFig1: byte-identical journals for workers 1 vs 8
// under every cache / skip-filter combination on the Figure 1 program.
func TestJournalDeterminismFig1(t *testing.T) {
	for _, cfg := range []struct {
		label   string
		cacheSz int
		noSkip  bool
	}{
		{"nocache", -1, false},
		{"cache", 0, false},
		{"nocache/noskip", -1, true},
		{"cache/noskip", 0, true},
	} {
		specA, specB := fig1DetSpec(t), fig1DetSpec(t)
		specA.NoStaticSkip = cfg.noSkip
		specB.NoStaticSkip = cfg.noSkip
		want := journalFor(t, specA, 1, cfg.cacheSz)
		got := journalFor(t, specB, 8, cfg.cacheSz)
		if err := obs.ValidateJournal(bytes.NewReader(want)); err != nil {
			t.Fatalf("%s: invalid journal: %v", cfg.label, err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s: journal differs between workers=1 and workers=8\n%s",
				cfg.label, diffLine(want, got))
		}
	}
}

// TestJournalDeterminismIncremental: the journal must be byte-identical
// with incremental re-pruning on vs off — the mode-dependent cost
// counters (Stats.Repropagated, Stats.DirtyFraction) live only in the
// Report, never in the event stream (docs/OBSERVABILITY.md).
func TestJournalDeterminismIncremental(t *testing.T) {
	specFull, specInc := fig1DetSpec(t), fig1DetSpec(t)
	specFull.NoIncremental = true
	want := journalFor(t, specFull, 1, -1)
	got := journalFor(t, specInc, 1, -1)
	if !bytes.Equal(want, got) {
		t.Errorf("journal differs between incremental off and on\n%s", diffLine(want, got))
	}

	for _, name := range []string{"grepsim/V4-F2", "sedsim/V3-F2"} {
		c := bench.ByName(name)
		if c == nil {
			t.Fatalf("unknown case %s", name)
		}
		pA, err := c.Prepare()
		if err != nil {
			t.Fatal(err)
		}
		pB, err := c.Prepare()
		if err != nil {
			t.Fatal(err)
		}
		specFull := pA.Spec()
		specFull.NoIncremental = true
		want := journalFor(t, specFull, 4, 0)
		got := journalFor(t, pB.Spec(), 4, 0)
		if !bytes.Equal(want, got) {
			t.Errorf("%s: journal differs between incremental off and on\n%s",
				name, diffLine(want, got))
		}
	}
}

// TestJournalDeterminismSed: the same byte-level comparison on the
// hardest benchmark cases — the largest verification batches, where the
// cache and the skip-filter actually fire.
func TestJournalDeterminismSed(t *testing.T) {
	for _, name := range []string{"sedsim/V3-F2", "sedsim/V3-F3"} {
		c := bench.ByName(name)
		if c == nil {
			t.Fatalf("unknown case %s", name)
		}
		for _, cacheSz := range []int{-1, 0} {
			pA, err := c.Prepare()
			if err != nil {
				t.Fatal(err)
			}
			pB, err := c.Prepare()
			if err != nil {
				t.Fatal(err)
			}
			want := journalFor(t, pA.Spec(), 1, cacheSz)
			got := journalFor(t, pB.Spec(), 8, cacheSz)
			if err := obs.ValidateJournal(bytes.NewReader(want)); err != nil {
				t.Fatalf("%s cache=%d: invalid journal: %v", name, cacheSz, err)
			}
			if !bytes.Equal(want, got) {
				t.Errorf("%s cache=%d: journal differs between workers=1 and workers=8\n%s",
					name, cacheSz, diffLine(want, got))
			}
		}
	}
}
