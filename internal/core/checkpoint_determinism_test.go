package core_test

// A/B coverage for checkpointed switched replay: every observable output
// of Locate — verdict, Table 3 counters, VerifyLog, IPS ranking, and the
// byte-level obs journal — must be identical with checkpointing on and
// off, across worker/cache/skip configurations. Only the checkpoint cost
// counters may differ, and on the forked side they must show that the
// shortcut actually fired.

import (
	"bytes"
	"testing"

	"eol/internal/bench"
	"eol/internal/core"
	"eol/internal/obs"
)

// locateJournaled runs Locate capturing the JSONL journal bytes.
func locateJournaled(t *testing.T, spec *core.Spec) (*core.Report, []byte) {
	t.Helper()
	var buf bytes.Buffer
	j := obs.NewJournal(&buf)
	spec.Observer = j
	rep, err := core.Locate(spec)
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if err := j.Flush(); err != nil {
		t.Fatalf("journal flush: %v", err)
	}
	return rep, buf.Bytes()
}

// TestDeterminismCheckpoints: checkpoints on vs off on Figure 1, across
// the engine configurations, with journal byte-comparison.
func TestDeterminismCheckpoints(t *testing.T) {
	offSpec := fig1DetSpec(t)
	offSpec.Checkpoints = -1
	offSpec.VerifyWorkers, offSpec.VerifyCacheSize = 1, -1
	want, wantJournal := locateJournaled(t, offSpec)
	if !want.Located {
		t.Fatal("baseline did not locate")
	}
	if want.Stats.CheckpointHits != 0 || want.Stats.Checkpoints != 0 {
		t.Fatalf("checkpoints disabled, yet stats report %d hits / %d checkpoints",
			want.Stats.CheckpointHits, want.Stats.Checkpoints)
	}

	var hits int64
	for _, cfg := range []struct {
		label            string
		workers, cacheSz int
		noSkip           bool
	}{
		{"workers=1/nocache", 1, -1, false},
		{"workers=1/nocache/noskip", 1, -1, true},
		{"workers=8/nocache", 8, -1, false},
		{"workers=8/cache", 8, 0, false},
	} {
		spec := fig1DetSpec(t)
		spec.VerifyWorkers, spec.VerifyCacheSize = cfg.workers, cfg.cacheSz
		spec.NoStaticSkip = cfg.noSkip

		specOff := fig1DetSpec(t)
		specOff.Checkpoints = -1
		specOff.VerifyWorkers, specOff.VerifyCacheSize = cfg.workers, cfg.cacheSz
		specOff.NoStaticSkip = cfg.noSkip

		on, onJournal := locateJournaled(t, spec)
		off, offJournal := locateJournaled(t, specOff)
		assertSameOutcome(t, cfg.label+"/on-vs-off", off, on)
		if !bytes.Equal(onJournal, offJournal) {
			t.Errorf("%s: journal bytes diverged with checkpoints on", cfg.label)
		}
		// The same-config journal must also match the sequential baseline
		// when only workers changed (cache state changes the hit counters
		// but those are not journal gauges either).
		if cfg.cacheSz == -1 && !cfg.noSkip && !bytes.Equal(onJournal, wantJournal) {
			t.Errorf("%s: journal bytes diverged from the sequential baseline", cfg.label)
		}
		if on.Stats.Checkpoints == 0 {
			t.Errorf("%s: no checkpoints captured with checkpointing on", cfg.label)
		}
		hits += on.Stats.CheckpointHits
		if on.Stats.CheckpointHits > 0 && on.Stats.SuffixSteps == 0 {
			t.Errorf("%s: %d checkpoint hits but zero suffix steps", cfg.label, on.Stats.CheckpointHits)
		}
	}
	if hits == 0 {
		t.Error("checkpointed replay never fired on Figure 1")
	}
}

// TestDeterminismCheckpointsSed: the same on/off comparison on the sed
// simulator cases — long traces, where forks skip the most work.
func TestDeterminismCheckpointsSed(t *testing.T) {
	for _, name := range []string{"sedsim/V3-F2", "sedsim/V3-F3"} {
		c := bench.ByName(name)
		if c == nil {
			t.Fatalf("unknown case %s", name)
		}
		p, err := c.Prepare()
		if err != nil {
			t.Fatal(err)
		}
		specOff := p.Spec()
		specOff.Checkpoints = -1
		want, wantJournal := locateJournaled(t, specOff)

		spec := p.Spec()
		spec.VerifyWorkers = 8
		on, onJournal := locateJournaled(t, spec)
		assertSameOutcome(t, name+"/checkpoints-on", want, on)
		if !bytes.Equal(onJournal, wantJournal) {
			t.Errorf("%s: journal bytes diverged with checkpoints on", name)
		}
		if on.Stats.CheckpointHits == 0 {
			t.Errorf("%s: checkpointed replay never fired", name)
		} else if on.Stats.SuffixSteps == 0 {
			t.Errorf("%s: %d checkpoint hits but zero suffix steps", name, on.Stats.CheckpointHits)
		}
	}
}
