package core_test

// Determinism coverage for the verification engine: Locate's observable
// output — location verdict, Table 3 counters, the full VerifyLog order —
// must be byte-identical for any worker count and cache setting. This is
// the contract that lets the engine parallelize the hot path without
// perturbing the paper's reproducible numbers.

import (
	"reflect"
	"testing"

	"eol/internal/bench"
	"eol/internal/core"
	"eol/internal/testsupport"
	"eol/internal/trace"
)

// fig1DetSpec rebuilds the Figure 1 localization problem (a fresh Spec
// per call: Locate and the engine attach state to the spec's verifier).
func fig1DetSpec(t *testing.T) *core.Spec {
	t.Helper()
	c := testsupport.Compile(t, testsupport.Fig1Faulty)
	fixed := testsupport.Compile(t, testsupport.Fig1Fixed)
	expected := testsupport.Run(t, fixed, testsupport.Fig1Input).OutputValues()
	root := testsupport.StmtID(t, c, "read() * 0")
	os := []trace.Instance{
		{Stmt: root, Occ: 1},
		{Stmt: testsupport.StmtID(t, c, "if (saveOrigName)"), Occ: 1},
		{Stmt: testsupport.StmtID(t, c, "outbuf[outcnt] = flags"), Occ: 1},
		{Stmt: testsupport.StmtID(t, c, "print(outbuf[1])"), Occ: 1},
	}
	return &core.Spec{
		Program:   c,
		Input:     testsupport.Fig1Input,
		Expected:  expected,
		RootCause: []int{root},
		Oracle:    core.NewChainOracle(os),
	}
}

// locateConfigured runs Locate with the given engine sizing.
func locateConfigured(t *testing.T, spec *core.Spec, workers, cacheSize int) *core.Report {
	t.Helper()
	spec.VerifyWorkers = workers
	spec.VerifyCacheSize = cacheSize
	rep, err := core.Locate(spec)
	if err != nil {
		t.Fatalf("Locate(workers=%d cache=%d): %v", workers, cacheSize, err)
	}
	return rep
}

// assertSameOutcome compares every reproducibility-relevant Report field.
func assertSameOutcome(t *testing.T, label string, want, got *core.Report) {
	t.Helper()
	if got.Located != want.Located || got.RootEntry != want.RootEntry {
		t.Errorf("%s: located %v@%d, want %v@%d",
			label, got.Located, got.RootEntry, want.Located, want.RootEntry)
	}
	if got.Stats.UserPrunings != want.Stats.UserPrunings ||
		got.Stats.Verifications != want.Stats.Verifications ||
		got.Stats.Iterations != want.Stats.Iterations ||
		got.Stats.ExpandedEdges != want.Stats.ExpandedEdges {
		t.Errorf("%s: counters (%d %d %d %d), want (%d %d %d %d)", label,
			got.Stats.UserPrunings, got.Stats.Verifications, got.Stats.Iterations, got.Stats.ExpandedEdges,
			want.Stats.UserPrunings, want.Stats.Verifications, want.Stats.Iterations, want.Stats.ExpandedEdges)
	}
	if !reflect.DeepEqual(got.VerifyLog, want.VerifyLog) {
		t.Errorf("%s: VerifyLog diverged\n got: %v\nwant: %v", label, got.VerifyLog, want.VerifyLog)
	}
	if !reflect.DeepEqual(got.IPSEntries, want.IPSEntries) {
		t.Errorf("%s: IPS entries %v, want %v", label, got.IPSEntries, want.IPSEntries)
	}
}

// TestDeterminismFig1: workers=1 (sequential) vs workers=8, with and
// without the switched-run cache, on the paper's Figure 1 program.
func TestDeterminismFig1(t *testing.T) {
	want := locateConfigured(t, fig1DetSpec(t), 1, -1)
	if !want.Located {
		t.Fatal("baseline did not locate")
	}
	for _, cfg := range []struct {
		label            string
		workers, cacheSz int
	}{
		{"workers=8/nocache", 8, -1},
		{"workers=8/cache", 8, 0},
		{"workers=1/cache", 1, 0},
	} {
		got := locateConfigured(t, fig1DetSpec(t), cfg.workers, cfg.cacheSz)
		assertSameOutcome(t, cfg.label, want, got)
	}
}

// TestDeterminismStaticSkip: the static skip-filter must be observably
// side-effect free — location verdict, Table 3 counters, the VerifyLog
// and the IPS byte-identical with the filter on vs. off — while actually
// skipping switched runs somewhere in the suite (the whole point).
func TestDeterminismStaticSkip(t *testing.T) {
	off := fig1DetSpec(t)
	off.NoStaticSkip = true
	want := locateConfigured(t, off, 1, -1)
	got := locateConfigured(t, fig1DetSpec(t), 1, -1)
	assertSameOutcome(t, "fig1/skip-on", want, got)

	var skips int64
	for _, name := range []string{"sedsim/V3-F2", "sedsim/V3-F3"} {
		c := bench.ByName(name)
		if c == nil {
			t.Fatalf("unknown case %s", name)
		}
		p, err := c.Prepare()
		if err != nil {
			t.Fatal(err)
		}
		specOff := p.Spec()
		specOff.NoStaticSkip = true
		want := locateConfigured(t, specOff, 1, -1)
		got := locateConfigured(t, p.Spec(), 1, -1)
		assertSameOutcome(t, name+"/skip-on", want, got)
		if s := got.Stats.StaticSkips; s > 0 {
			skips += s
			if got.Stats.SwitchedRuns+s != want.Stats.SwitchedRuns {
				t.Errorf("%s: %d runs + %d skips, want %d runs without the filter",
					name, got.Stats.SwitchedRuns, s, want.Stats.SwitchedRuns)
			}
		}
	}
	if skips == 0 {
		t.Error("static skip-filter never fired on the sed benchmarks")
	}
}

// TestDeterminismSed: same comparison on the sed simulator benchmark
// cases — the largest traces and verification batches in the suite.
func TestDeterminismSed(t *testing.T) {
	for _, name := range []string{"sedsim/V3-F2", "sedsim/V3-F3"} {
		c := bench.ByName(name)
		if c == nil {
			t.Fatalf("unknown case %s", name)
		}
		p, err := c.Prepare()
		if err != nil {
			t.Fatal(err)
		}
		want := locateConfigured(t, p.Spec(), 1, -1)
		if !want.Located {
			t.Fatalf("%s: baseline did not locate", name)
		}
		got := locateConfigured(t, p.Spec(), 8, 0)
		assertSameOutcome(t, name+"/workers=8", want, got)
	}
}
