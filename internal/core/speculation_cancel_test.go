package core

// Mid-speculation cancellation: a context cancel that lands while
// speculative switched runs are in flight must discard them — canceled
// results are never committed to the shared cache (the PR 5 poisoning
// guard, extended to the speculative side table) — drain every
// goroutine, and leave the shared cache serving byte-identical verdicts
// to later localizations.

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"eol/internal/interp"
	"eol/internal/obs"
	"eol/internal/verifyengine"
)

// cancelOnNth cancels a context the nth time the named span begins —
// cancelOn generalized so the test can let the first reprune (before any
// speculation exists) pass and strike the second, which begins
// immediately after locator.speculate() has issued its runs.
type cancelOnNth struct {
	span   string
	n      int
	cancel context.CancelFunc
	seen   int
	fired  bool
	events []obs.Event
}

func (c *cancelOnNth) Event(e obs.Event) {
	c.events = append(c.events, e)
	if !c.fired && e.Kind == obs.KindBegin && e.Name == c.span {
		c.seen++
		if c.seen == c.n {
			c.fired = true
			c.cancel()
		}
	}
}

// TestCancelMidSpeculation cancels as the post-expansion re-prune begins
// — exactly the window speculative runs overlap — and verifies the abort
// contract plus cache hygiene: a fresh localization over the same shared
// cache reproduces the uncached baseline verdict for verdict, counter
// for counter.
func TestCancelMidSpeculation(t *testing.T) {
	baseSpec, _ := fig1Spec(t)
	baseSpec.VerifyCacheSize = -1
	want, err := Locate(baseSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Located {
		t.Fatal("baseline did not locate")
	}

	cache := verifyengine.NewRunCache(0)
	before := runtime.NumGoroutine()

	spec, _ := fig1Spec(t)
	spec.VerifyWorkers = 4
	spec.VerifyCache = cache
	spec.Features.Speculation = FeatureOn
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The first reprune runs before the expansion loop; the second begins
	// right after the locator issued its speculative runs.
	co := &cancelOnNth{span: "reprune", n: 2, cancel: cancel}
	spec.Observer = co
	rep, err := LocateContext(ctx, spec)
	if !co.fired {
		t.Fatal("second reprune never began; cannot cancel mid-speculation")
	}
	if err == nil {
		t.Fatal("Locate succeeded, want cancellation error")
	}
	if !errors.Is(err, interp.ErrCanceled) {
		t.Fatalf("error %v does not match ErrCanceled", err)
	}
	if rep == nil || rep.Located {
		t.Fatalf("aborted run: report %+v", rep)
	}
	checkBalanced(t, co.events)

	// WaitSpeculation ran inside finalizeStats: no speculative goroutine
	// may outlive Locate.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after canceled speculative run",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Cache hygiene: whatever the aborted run left behind (completed
	// speculative entries, demand-run results) must be real runs only —
	// a later localization sharing the cache reproduces the uncached
	// baseline exactly.
	spec2, _ := fig1Spec(t)
	spec2.VerifyCache = cache
	got, err := Locate(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Located != want.Located || got.RootEntry != want.RootEntry {
		t.Errorf("after aborted speculation: located %v@%d, want %v@%d",
			got.Located, got.RootEntry, want.Located, want.RootEntry)
	}
	if got.Stats.Verifications != want.Stats.Verifications ||
		got.Stats.UserPrunings != want.Stats.UserPrunings ||
		got.Stats.Iterations != want.Stats.Iterations {
		t.Errorf("after aborted speculation: counters (%d %d %d), want (%d %d %d)",
			got.Stats.Verifications, got.Stats.UserPrunings, got.Stats.Iterations,
			want.Stats.Verifications, want.Stats.UserPrunings, want.Stats.Iterations)
	}
	if !reflect.DeepEqual(got.VerifyLog, want.VerifyLog) {
		t.Errorf("after aborted speculation: VerifyLog diverged\n got: %v\nwant: %v",
			got.VerifyLog, want.VerifyLog)
	}
}

// TestCanceledSpeculativeLocateLeaksNoGoroutines is the speculative
// variant of TestCanceledLocateLeaksNoGoroutines: repeated canceled runs
// with speculation on settle back to the starting goroutine count.
func TestCanceledSpeculativeLocateLeaksNoGoroutines(t *testing.T) {
	cache := verifyengine.NewRunCache(0)
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		spec, _ := fig1Spec(t)
		spec.VerifyWorkers = 4
		spec.VerifyCache = cache
		spec.Features.Speculation = FeatureOn
		ctx, cancel := context.WithCancel(context.Background())
		co := &cancelOn{span: "iteration", cancel: cancel}
		spec.Observer = co
		if _, err := LocateContext(ctx, spec); err == nil {
			t.Fatal("expected cancellation error")
		}
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after canceled speculative runs",
		before, runtime.NumGoroutine())
}
