package core_test

// Backend A/B coverage: Locate driven by the bytecode VM must be
// observationally identical to Locate driven by the tree-walking
// reference interpreter — verdict, Table 3 counters, VerifyLog, IPS
// ranking, and the byte-level obs journal — across worker, cache,
// static-skip, and checkpoint configurations. This is the acceptance
// contract that lets the VM be the default backend while the tree
// walker stays the differential oracle.

import (
	"bytes"
	"testing"

	"eol/internal/bench"
	"eol/internal/interp"
	"eol/internal/vm"
)

// backendConfigs is the engine configuration matrix the A/B comparison
// sweeps. Checkpoints: 0 means the library default store size; -1
// disables checkpointing entirely.
var backendConfigs = []struct {
	label            string
	workers, cacheSz int
	noSkip           bool
	checkpoints      int
}{
	{"workers=1/nocache", 1, -1, false, 0},
	{"workers=1/nocache/noskip", 1, -1, true, 0},
	{"workers=1/nocache/nockpt", 1, -1, false, -1},
	{"workers=8/nocache", 8, -1, false, 0},
	{"workers=8/cache", 8, 0, false, 0},
}

// TestBackendDeterminismFig1: tree vs VM on the Figure 1 problem, with
// journal byte-comparison, across the configuration matrix.
func TestBackendDeterminismFig1(t *testing.T) {
	for _, cfg := range backendConfigs {
		treeSpec := fig1DetSpec(t)
		treeSpec.Backend = interp.Tree
		treeSpec.VerifyWorkers, treeSpec.VerifyCacheSize = cfg.workers, cfg.cacheSz
		treeSpec.NoStaticSkip, treeSpec.Checkpoints = cfg.noSkip, cfg.checkpoints

		vmSpec := fig1DetSpec(t)
		vmSpec.Backend = vm.Backend
		vmSpec.VerifyWorkers, vmSpec.VerifyCacheSize = cfg.workers, cfg.cacheSz
		vmSpec.NoStaticSkip, vmSpec.Checkpoints = cfg.noSkip, cfg.checkpoints

		treeRep, treeJournal := locateJournaled(t, treeSpec)
		vmRep, vmJournal := locateJournaled(t, vmSpec)
		if !treeRep.Located {
			t.Fatalf("%s: tree baseline did not locate", cfg.label)
		}
		assertSameOutcome(t, cfg.label+"/tree-vs-vm", treeRep, vmRep)
		if !bytes.Equal(treeJournal, vmJournal) {
			t.Errorf("%s: journal bytes diverged between backends", cfg.label)
		}
	}
}

// TestBackendDeterminismSed: the same A/B on a sed simulator case — the
// largest traces and verification batches in the suite — once with the
// sequential baseline and once with the full engine (workers + cache).
func TestBackendDeterminismSed(t *testing.T) {
	c := bench.ByName("sedsim/V3-F2")
	if c == nil {
		t.Fatal("unknown case sedsim/V3-F2")
	}
	p, err := c.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct {
		label            string
		workers, cacheSz int
	}{
		{"workers=1/nocache", 1, -1},
		{"workers=8/cache", 8, 0},
	} {
		treeSpec := p.Spec()
		treeSpec.Backend = interp.Tree
		treeSpec.VerifyWorkers, treeSpec.VerifyCacheSize = cfg.workers, cfg.cacheSz

		vmSpec := p.Spec()
		vmSpec.Backend = vm.Backend
		vmSpec.VerifyWorkers, vmSpec.VerifyCacheSize = cfg.workers, cfg.cacheSz

		treeRep, treeJournal := locateJournaled(t, treeSpec)
		vmRep, vmJournal := locateJournaled(t, vmSpec)
		if !treeRep.Located {
			t.Fatalf("%s: tree baseline did not locate", cfg.label)
		}
		assertSameOutcome(t, cfg.label+"/tree-vs-vm", treeRep, vmRep)
		if !bytes.Equal(treeJournal, vmJournal) {
			t.Errorf("%s: journal bytes diverged between backends", cfg.label)
		}
	}
}
