package core

import (
	"sort"

	"eol/internal/confidence"
	"eol/internal/ddg"
	"eol/internal/implicit"
	"eol/internal/lang/ast"
	"eol/internal/lang/sem"
	"eol/internal/lang/token"
)

// The perturbation fallback implements the paper's §5 proposal: when
// predicate switching cannot expose any implicit dependence (the nested-
// predicate soundness gap of Table 5(b)), perturb the *values* feeding
// the candidate predicates instead of their branch outcomes.
//
// Candidate replacement values combine the value profile with boundary
// probing: for every integer literal compared against inside a predicate,
// the values {lit-1, lit, lit+1} are tried — the standard way to cross
// relational boundaries without enumerating the whole integer domain.

// perturbFallback attempts value-perturbation verification for the
// top-ranked candidates after predicate switching produced no edges. It
// returns whether any implicit edge was added.
func (l *locator) perturbFallback() bool {
	probes := l.candidateValues()
	for _, cand := range l.an.FaultCandidates() {
		u := cand.Entry
		added := false
		for _, pd := range l.pd(u) {
			pe := l.cx.T.At(pd.Pred)
			// Perturb the definitions feeding the predicate's condition.
			for _, use := range pe.Uses {
				if use.Def < 0 {
					continue
				}
				defStmt := l.cx.T.At(use.Def).Inst.Stmt
				vals := append([]int64{}, l.profileValues(defStmt)...)
				vals = append(vals, probes...)
				res := l.ver.PerturbVerify(implicit.PerturbRequest{
					Def: use.Def, Use: u, Candidates: vals,
				})
				if res.Dependent {
					l.an.AddEdges(confidence.Arc{From: u, To: use.Def, Kind: ddg.Implicit})
					l.rep.Stats.ExpandedEdges++
					added = true
				}
			}
		}
		if added {
			return true
		}
	}
	return false
}

func (l *locator) profileValues(stmt int) []int64 {
	if l.spec.Profile == nil {
		return nil
	}
	return l.spec.Profile.Values(stmt)
}

// candidateValues extracts boundary-probe values from the program's
// predicates (memoized per locator).
func (l *locator) candidateValues() []int64 {
	if l.boundaryVals != nil {
		return l.boundaryVals
	}
	set := map[int64]bool{0: true, 1: true, -1: true}
	for _, lit := range comparisonLiterals(l.spec.Program.Info) {
		set[lit-1] = true
		set[lit] = true
		set[lit+1] = true
	}
	vals := make([]int64, 0, len(set))
	for v := range set {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	const maxCandidates = 24
	if len(vals) > maxCandidates {
		vals = vals[:maxCandidates]
	}
	l.boundaryVals = vals
	return vals
}

// comparisonLiterals collects the integer literals that predicates
// compare against.
func comparisonLiterals(info *sem.Info) []int64 {
	var lits []int64
	for _, s := range info.Stmts {
		if !ast.IsPredicate(s) {
			continue
		}
		ast.InspectExprs(s, func(e ast.Expr) {
			b, ok := e.(*ast.BinaryExpr)
			if !ok {
				return
			}
			switch b.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				if lit, ok := b.X.(*ast.IntLit); ok {
					lits = append(lits, lit.Value)
				}
				if lit, ok := b.Y.(*ast.IntLit); ok {
					lits = append(lits, lit.Value)
				}
			}
		})
	}
	return lits
}
