// Package core implements the demand-driven fault localization procedure
// of the PLDI 2007 paper (Algorithm 2, LocateFault): the paper's primary
// contribution.
//
// The procedure interleaves two steps until the root cause enters the
// fault candidate set:
//
//  1. PruneSlicing — confidence analysis plus a scripted interactive
//     pruning pass: candidates are presented in rank order and the user
//     (an Oracle here) marks instances with benign program state, which
//     pins them and re-propagates, until every remaining candidate has
//     corrupted state.
//  2. Expansion — the top-ranked corrupted use u is selected, its
//     potential dependences PD(u) (Definition 1) are verified one by one
//     through predicate switching, and the verified (strong) implicit
//     edges are added to the dependence graph. Strong implicit
//     dependences override plain ones (Algorithm 2 lines 10-11). For
//     every predicate that verified, the other uses potentially
//     depending on it are verified too (Fig. 5: this enables confidence
//     to flow and prune), then the slice is re-pruned.
//
// The run records the effectiveness counters of Table 3: user prunings,
// verifications, iterations, and expanded edges.
//
// # Mapping onto the paper
//
//	Locate            Algorithm 2 LocateFault: failing run, wrong-output
//	                  detection, then the PruneSlicing/Expansion loop
//	locator.pruneSlicing   Algorithm 2 line 3 and line 19 (the scripted
//	                       interactive pass; Oracle = the programmer)
//	locator.expand         Algorithm 2 lines 5-18 (VerifyDep over PD(u),
//	                       verdict grouping, sibling uses of Fig. 5)
//	locator.siblingUses    the "other uses t with p in PD(t)" of line 12
//	Report                 the Table 3 row: UserPrunings, Verifications,
//	                       Iterations, ExpandedEdges, IPS vs OS
//
// # Verification scheduling
//
// Verification — one switched re-execution plus alignment per candidate
// — dominates the procedure's cost (the paper's Table 4 "Verification"
// column). Locate therefore routes every per-iteration batch of
// VerifyDep calls through internal/verifyengine: a bounded worker pool
// with a switched-run cache. Spec.VerifyWorkers and Spec.VerifyCacheSize
// size it. Scheduling is observably side-effect free: verdicts are
// absorbed in deterministic rank order, so Report counters and the
// VerifyLog are byte-identical for any worker count (see
// docs/VERIFICATION_ENGINE.md).
package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"eol/internal/backend"
	"eol/internal/check"
	"eol/internal/confidence"
	"eol/internal/ddg"
	"eol/internal/implicit"
	"eol/internal/interp"
	"eol/internal/obs"
	"eol/internal/slicing"
	"eol/internal/staticdep"
	"eol/internal/trace"
	"eol/internal/verifyengine"
)

// Oracle abstracts the programmer's two roles in Algorithm 2: judging
// whether a presented instance's program state is benign, and knowing the
// expected value at the failure point (vexp).
type Oracle interface {
	// IsBenign reports whether the program state produced at the given
	// trace entry is correct.
	IsBenign(t *trace.Trace, entry int) bool
}

// ChainOracle is the scripted user of the paper's evaluation protocol:
// instances on the known failure-inducing chain (OS) have corrupted
// state; everything else presented is declared benign.
type ChainOracle struct {
	OS map[trace.Instance]bool
}

// NewChainOracle builds the oracle from the OS instance list.
func NewChainOracle(os []trace.Instance) *ChainOracle {
	m := make(map[trace.Instance]bool, len(os))
	for _, i := range os {
		m[i] = true
	}
	return &ChainOracle{OS: m}
}

// IsBenign implements Oracle.
func (o *ChainOracle) IsBenign(t *trace.Trace, entry int) bool {
	return !o.OS[t.At(entry).Inst]
}

// neverBenign is the default when no Oracle is supplied: no interactive
// pruning happens (every instance is treated as potentially corrupted).
type neverBenign struct{}

// IsBenign always answers false.
func (neverBenign) IsBenign(*trace.Trace, int) bool { return false }

// Spec describes one localization problem.
type Spec struct {
	// Program is the compiled faulty program.
	Program *interp.Compiled
	// Backend selects the execution engine for the failing run and every
	// switched/perturbed re-execution (nil = backend.Default(), the
	// bytecode VM). Backends are byte-identical — same Report counters,
	// VerifyLog, obs journal — so this only changes wall-clock time; the
	// tree-walker (interp.Tree) remains the differential oracle.
	Backend interp.Backend
	// Input is the failing input.
	Input []int64
	// Expected is the correct output sequence (from the test oracle).
	Expected []int64
	// RootCause lists the statement IDs that constitute the fault; the
	// search stops when any of them enters the fault candidate set.
	RootCause []int
	// Oracle answers benign-state queries; defaults to an oracle that
	// never prunes.
	Oracle Oracle
	// Profile supplies value ranges for confidence analysis (optional).
	Profile *confidence.Profile
	// MaxIterations bounds the expansion loop (default 10).
	MaxIterations int
	// PathMode selects the safe path-based VerifyDep variant.
	PathMode bool
	// PerturbFallback enables value perturbation (the paper's §5
	// proposal) when predicate switching exposes no dependence — closing
	// the nested-predicate soundness gap of Table 5(b) at extra cost.
	PerturbFallback bool
	// CrossFunctionPD extends potential dependences across function
	// boundaries for globals, so callee-side omissions become reachable
	// (more candidates to verify, fewer blind spots).
	CrossFunctionPD bool
	// BudgetFactor for switched re-executions (default 10).
	BudgetFactor int
	// VerifyWorkers sizes the verification worker pool: 0 means
	// GOMAXPROCS, 1 forces sequential verification. Any value produces
	// identical Report counters and VerifyLog order; only wall-clock
	// time changes.
	VerifyWorkers int
	// VerifyCacheSize bounds the switched-run cache (entries): 0 means
	// verifyengine.DefaultCacheSize, negative disables caching.
	VerifyCacheSize int
	// VerifyCache optionally shares a switched-run cache across Locate
	// calls (e.g. many localizations of one program family). Overrides
	// VerifyCacheSize.
	VerifyCache *verifyengine.RunCache
	// Features selects the optional engine features as explicit
	// tri-states (see the Features type). It is the preferred spelling;
	// the negative knobs below remain honored where a field is left at
	// FeatureDefault. Resolution order is defined by ResolveFeatures.
	Features Features
	// NoIncremental disables incremental re-pruning: every PruneSlicing
	// pass recomputes confidence over the whole graph instead of
	// re-propagating only the cone invalidated since the previous pass.
	// Results (Report counters, VerifyLog, obs journal) are byte-identical
	// either way — only Stats.Repropagated/DirtyFraction and wall-clock
	// time differ — so this flag exists for A/B comparison and debugging.
	//
	// Deprecated: set Features.IncrementalReprune = FeatureOff instead.
	NoIncremental bool
	// Checkpoints bounds the execution snapshots captured during the
	// failing run for checkpointed switched replay (docs/CHECKPOINT.md):
	// 0 means interp.DefaultCheckpoints, negative disables checkpointing
	// entirely. Every switched re-execution then forks from the nearest
	// checkpoint and replays only the suffix. Results (Report counters,
	// VerifyLog, obs journal) are byte-identical on or off — only
	// Stats.CheckpointHits/SuffixSteps/Checkpoints/CheckpointBytes and
	// wall-clock time differ.
	//
	// Deprecated: the negative-means-off encoding; prefer
	// Features.Checkpoints for the on/off switch and keep this field
	// >= 0 as the capture count.
	Checkpoints int
	// NoStaticSkip disables the static skip-filter
	// (check.SwitchFilter), which proves some verifications NOT_ID from
	// the failing trace alone and answers them without a switched
	// re-execution. The filter never changes verdicts, counters or the
	// VerifyLog — only Stats.SwitchedRuns and StaticSkips — so it is on
	// by default; this flag exists for A/B comparison and debugging.
	// The filter is unsound under PathMode and is force-disabled there.
	//
	// Deprecated: set Features.StaticSkip = FeatureOff instead.
	NoStaticSkip bool
	// NoStaticReach disables the SPDG reach filter
	// (check.StaticReachFilter), which proves some verifications NOT_ID
	// from the static program dependence graph alone — before any
	// execution — and answers them with zero trace work. Like the replay
	// filter above it never changes verdicts, Table-3 counters or the
	// VerifyLog — only Stats.SwitchedRuns and StaticReachSkips — so it is
	// on by default; the flag exists for A/B comparison and debugging.
	// Unsound under PathMode and force-disabled there.
	//
	// Deprecated: set Features.StaticReach = FeatureOff instead.
	NoStaticReach bool
	// StaticDeps optionally supplies a prebuilt SPDG for Program (e.g.
	// the corpus driver's shared staticdep.Cache); nil means Locate
	// builds its own when the reach filter is enabled.
	StaticDeps *staticdep.Graph
	// Observer, if non-nil, receives the run's observability stream:
	// spans for each localization phase, counter deltas and final stats
	// gauges (see internal/obs and docs/OBSERVABILITY.md). For a fixed
	// cache/skip-filter configuration the stream is byte-identical for
	// any VerifyWorkers value.
	Observer obs.Observer
}

// Report is the outcome of LocateFault, carrying the Table 3 counters.
type Report struct {
	// Located reports whether a root-cause instance entered the fault
	// candidate set.
	Located bool
	// RootEntry is the trace index of the located root-cause instance.
	RootEntry int

	// Stats aggregates the run's counters: the paper's Table 3 terms
	// (UserPrunings, Verifications, Iterations, ExpandedEdges) plus the
	// verification engine's scheduling and cache counters.
	Stats obs.Stats

	// IPS is the final pruned expanded slice (instances with confidence
	// < 1 in the wrong output's expanded slice). IPSEntries is ranked
	// most-suspicious-first; IPSConfidence holds the matching confidence
	// values.
	IPS           ddg.SliceStats
	IPSEntries    []int
	IPSConfidence []float64

	// WrongOutput is the failure observation; Vexp its expected value.
	WrongOutput trace.Output
	Vexp        int64

	// VerifyLog records every verification performed, in order.
	VerifyLog []implicit.LogEntry

	// Trace and Graph expose the analyzed execution for reporting.
	Trace *trace.Trace
	Graph *ddg.Graph
}

// ErrNoFailure is returned when the program's output matches Expected.
var ErrNoFailure = errors.New("program output matches the expected output")

// ErrMissingOutput is returned when the failure is a truncated output
// stream rather than a wrong value; the technique needs a wrong value to
// slice from.
var ErrMissingOutput = errors.New("failure is a missing output, not a wrong value")

// ErrNotLocated reports a localization that completed without the known
// root cause entering the fault candidate set. Locate itself never
// returns it — an unlocated diagnosis is a result, not a failure — but
// corpus drivers and CLIs that treat "expected to locate, didn't" as an
// error use it, and errors.Is finds it through their wrapping.
var ErrNotLocated = errors.New("root cause not located")

// ErrClass names the taxonomy class of a localization error for
// reporting: "deadline", "canceled", "budget", "not_located",
// "no_failure", or "error" for everything else ("" for nil). The names
// are stable — journals and JSON outputs key on them.
func ErrClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, interp.ErrDeadline):
		return "deadline"
	case errors.Is(err, interp.ErrCanceled):
		return "canceled"
	case errors.Is(err, interp.ErrBudget):
		return "budget"
	case errors.Is(err, ErrNotLocated):
		return "not_located"
	case errors.Is(err, ErrNoFailure):
		return "no_failure"
	default:
		return "error"
	}
}

// Locate runs the full demand-driven procedure on spec.
func Locate(spec *Spec) (*Report, error) {
	return LocateContext(context.Background(), spec)
}

// LocateContext is Locate bounded by ctx (nil = background): cancelling
// ctx or passing its deadline aborts the procedure — including in-flight
// switched re-executions on the verification workers — with an error
// wrapping interp.ErrCanceled/ErrDeadline. The returned Report is then
// non-nil and partial: the cost counters (Stats, VerifyLog) reflect the
// work done up to the abort, while Located/IPS stay at their zero
// values. Any attached Observer sees a balanced event stream either way.
func LocateContext(ctx context.Context, spec *Spec) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if spec.Oracle == nil {
		spec.Oracle = neverBenign{}
	}
	maxIter := spec.MaxIterations
	if maxIter <= 0 {
		maxIter = 10
	}

	feats := spec.ResolveFeatures()

	rec := obs.NewRecorder(spec.Observer)
	rec.Begin("locate")

	bk := spec.Backend
	if bk == nil {
		bk = backend.Default()
	}

	// The failing run ("Graph" construction in Table 4 terms). It also
	// captures the checkpoint store that later switched re-executions
	// fork from (unless disabled). The store is the backend's own
	// representation, so forks restore native execution state.
	var cks interp.Checkpoints
	if feats.Checkpoints {
		cks = bk.NewCheckpoints(feats.CheckpointCount)
	}
	rec.Begin("failing_run")
	run := bk.Run(spec.Program, interp.Options{Input: spec.Input, BuildTrace: true, Rec: rec, Ctx: ctx, Checkpoints: cks})
	rec.End("failing_run", int64(run.Steps))
	if run.Err != nil {
		rec.End("locate", 0)
		return &Report{}, fmt.Errorf("failing run aborted: %w", run.Err)
	}
	tr := run.Trace

	seq, missing, ok := slicing.FirstWrongOutput(run.OutputValues(), spec.Expected)
	if !ok {
		rec.End("locate", 0)
		return nil, ErrNoFailure
	}
	if missing {
		rec.End("locate", 0)
		return nil, ErrMissingOutput
	}
	wrong := *tr.OutputAt(seq)
	var correct []trace.Output
	for i := 0; i < seq; i++ {
		correct = append(correct, *tr.OutputAt(i))
	}
	// When the failure is an EXTRA output (the faulty run printed more
	// than expected), there is no expected value at the failure point:
	// strong-implicit-dependence checks are disabled and plain implicit
	// verification carries the run.
	var vexp int64
	hasVexp := seq < len(spec.Expected)
	if hasVexp {
		vexp = spec.Expected[seq]
	}

	rec.Begin("slicing")
	g := ddg.New(tr)
	cx := slicing.NewContext(spec.Program, tr)
	cx.CrossFunction = spec.CrossFunctionPD
	an := confidence.New(spec.Program, g, spec.Profile, correct, wrong)
	an.Incremental = feats.IncrementalReprune
	rec.End("slicing", int64(tr.Len()))
	ver := &implicit.Verifier{
		C: spec.Program, Input: spec.Input, Orig: tr,
		WrongOut: wrong, Vexp: vexp, HasVexp: hasVexp,
		PathMode: spec.PathMode, BudgetFactor: spec.BudgetFactor,
		Rec: rec, Ctx: ctx, Backend: bk, Checkpoints: cks,
	}

	engCfg := verifyengine.Config{
		Workers:   spec.VerifyWorkers,
		CacheSize: spec.VerifyCacheSize,
		Cache:     spec.VerifyCache,
		Rec:       rec,
		Ctx:       ctx,
	}
	// Static skip-filter: answers provably-NOT_ID verifications without a
	// switched run. Unsound under PathMode (taint through allowed suffix
	// writes can create an explicit p'-u' path), so only installed for
	// the default edge-mode verifier.
	if feats.StaticSkip && !spec.PathMode {
		flt := check.NewSwitchFilter(spec.Program, nil, tr, wrong.Entry, spec.BudgetFactor)
		engCfg.Filter = func(req implicit.Request) bool {
			return flt.ProvablyNotID(req.Pred, req.Use, req.UseSym)
		}
	}
	// SPDG reach filter: proves NOT_ID pre-execution from the static
	// dependence graph, consulted by the engine before the replay filter
	// above. Same PathMode exclusion.
	if feats.StaticReach && !spec.PathMode {
		sd := spec.StaticDeps
		if sd == nil {
			sd = staticdep.New(spec.Program, cx.Flow)
		}
		rf := check.NewStaticReachFilter(sd, tr, wrong.Entry)
		engCfg.ReachFilter = func(req implicit.Request) bool {
			return rf.ProvablyNotID(req.Pred, req.Use)
		}
	}
	eng := verifyengine.New(ver, engCfg)

	rep := &Report{WrongOutput: wrong, Vexp: vexp, Trace: tr, Graph: g}

	l := &locator{spec: spec, ctx: ctx, feats: feats, cx: cx, an: an, ver: ver, eng: eng, rep: rep,
		rec: rec, pdCache: map[int][]slicing.PDep{}, judged: map[int]bool{},
		expanded: map[int]bool{}}

	// Initial PruneSlicing (Algorithm 2 line 3).
	if err := l.pruneSlicing(); err != nil {
		return l.abort(err)
	}

	for iter := 0; iter < maxIter; iter++ {
		if l.rootInCandidates() {
			break
		}
		rec.Begin("iteration", "n", strconv.Itoa(iter+1))
		added := false
		var expErr error
		// Select uses u from PS by rank until one yields edges
		// (Algorithm 2 lines 5-18).
		for _, cand := range l.an.FaultCandidates() {
			if l.expanded[cand.Entry] {
				continue
			}
			l.expanded[cand.Entry] = true
			ok, err := l.expand(cand.Entry)
			if err != nil {
				expErr = err
				break
			}
			if ok {
				added = true
				break
			}
		}
		if expErr == nil && !added && spec.PerturbFallback {
			added = l.perturbFallback()
			if err := ctx.Err(); err != nil {
				expErr = fmt.Errorf("perturbation fallback aborted: %w", interp.CtxErr(err))
			}
		}
		if expErr != nil {
			rec.End("iteration", 0)
			return l.abort(expErr)
		}
		if !added {
			rec.End("iteration", 0)
			break // no unexpanded candidates produced edges: give up
		}
		rep.Stats.Iterations++
		// Pipelining (docs/SPECULATION.md): issue the predicted next
		// round's switched runs now, so they execute while the re-prune
		// below occupies this goroutine.
		l.speculate()
		err := l.pruneSlicing() // Algorithm 2 line 19
		rec.End("iteration", 1)
		if err != nil {
			return l.abort(err)
		}
	}

	l.finish()
	l.finalizeStats()
	var located int64
	if rep.Located {
		located = 1
	}
	rep.Stats.Emit(rec)
	if rec.Enabled() {
		rec.Gauge("located", located)
	}
	rec.End("locate", located)
	return rep, nil
}

type locator struct {
	spec     *Spec
	ctx      context.Context
	feats    ResolvedFeatures
	cx       *slicing.Context
	an       *confidence.Analyzer
	ver      *implicit.Verifier
	eng      *verifyengine.Engine
	rep      *Report
	rec      *obs.Recorder
	pdCache  map[int][]slicing.PDep
	judged   map[int]bool // entries already answered "corrupted" by the user
	expanded map[int]bool // entries already selected for expansion

	boundaryVals []int64 // memoized perturbation probe values
}

// speculateTopK bounds how many predicted candidates get their potential
// dependences speculated per round. The next round expands exactly one
// candidate (the top-ranked unexpanded one that yields edges), so a
// small K covers the common case while bounding misprediction cost.
const speculateTopK = 2

// speculate predicts the next round's expansion targets from the
// analyzer's stale ranking (confidence.PredictCandidates) and issues
// their potential dependences' switched runs speculatively, overlapping
// them with the re-prune that follows. Determinism is unaffected by
// construction: speculative runs are invisible to every journal-visible
// counter until a demand lookup claims them, and then charge exactly
// what the demand run they replaced would have (docs/SPECULATION.md).
func (l *locator) speculate() {
	if !l.feats.Speculation || l.spec.PathMode {
		return
	}
	picked := 0
	var reqs []implicit.Request
	for _, cand := range l.an.PredictCandidates(0) {
		if l.expanded[cand.Entry] {
			continue
		}
		pds := l.pd(cand.Entry)
		if len(pds) == 0 {
			continue
		}
		for _, pd := range pds {
			reqs = append(reqs, implicit.Request{
				Pred: pd.Pred, Use: cand.Entry, UseSym: pd.UseSym, UseElem: pd.UseElem,
			})
		}
		if picked++; picked >= speculateTopK {
			break
		}
	}
	l.eng.Speculate(reqs)
}

func (l *locator) pd(entry int) []slicing.PDep {
	if pds, ok := l.pdCache[entry]; ok {
		return pds
	}
	pds := l.cx.PotentialDeps(entry)
	l.pdCache[entry] = pds
	return pds
}

// pruneSlicing is the interactive pruning pass: present candidates in
// rank order; benign answers pin the instance and re-rank, corrupted
// answers are remembered. It stops when every candidate is judged
// corrupted.
//
// Each Compute here is a re-prune: after the first pass it re-propagates
// only the cone invalidated by the latest expansion edges and pins
// (unless Spec.NoIncremental). The dirty-set sizes are mode-dependent
// cost counters and therefore live in Report.Stats
// (Repropagated/DirtyFraction), not in the journal — the reprune span
// itself is emitted identically in both modes.
func (l *locator) pruneSlicing() error {
	l.rec.Begin("reprune")
	l.an.Compute()
	for {
		// One cancellation checkpoint per pinning round: propagation and
		// the oracle calls are pure CPU, so this is where a deadline that
		// fired during slicing or confidence analysis is observed.
		if err := l.ctx.Err(); err != nil {
			l.rec.End("reprune", 0)
			return fmt.Errorf("pruning aborted: %w", interp.CtxErr(err))
		}
		repeat := false
		for _, cand := range l.an.FaultCandidates() {
			if l.judged[cand.Entry] {
				continue
			}
			if l.spec.Oracle.IsBenign(l.cx.T, cand.Entry) {
				l.rep.Stats.UserPrunings++
				l.rec.Count("pruned_entries", 1)
				l.an.Pin(cand.Entry)
				l.an.Compute()
				repeat = true
				break
			}
			l.judged[cand.Entry] = true
		}
		if !repeat {
			l.rec.End("reprune", int64(len(l.an.FaultCandidates())))
			return nil
		}
	}
}

// abort finalizes a cancelled run into a usable partial report: the cost
// counters reached so far are filled in, the stats gauges are emitted
// and the locate span is closed, so an attached journal stays balanced
// and Diagnosis.Stats is populated even though no verdict was reached.
func (l *locator) abort(err error) (*Report, error) {
	l.finalizeStats()
	l.rep.Stats.Emit(l.rec)
	if l.rec.Enabled() {
		l.rec.Gauge("located", 0)
	}
	l.rec.End("locate", 0)
	return l.rep, err
}

// finalizeStats folds the verifier's, engine's and analyzer's cost
// counters into the report. Safe on the partial state of an aborted run.
// It first drains the speculation pipeline — aborting in-flight
// speculative runs — so no engine goroutine outlives Locate and the
// counters below are final.
func (l *locator) finalizeStats() {
	l.eng.WaitSpeculation()
	rep := l.rep
	rep.Stats.Verifications = l.ver.Verifications
	rep.VerifyLog = l.ver.Log
	es := l.eng.Stats()
	rep.Stats.SwitchedRuns = es.Runs
	rep.Stats.CacheHits = es.CacheHits
	rep.Stats.CacheMisses = es.CacheMisses
	rep.Stats.CacheEvictions = es.CacheEvictions
	rep.Stats.StaticSkips = es.StaticSkips
	rep.Stats.StaticReachSkips = es.StaticReachSkips
	rep.Stats.AlignedRegions = es.AlignedRegions
	rep.Stats.CheckpointHits = es.CheckpointHits
	rep.Stats.SuffixSteps = es.SuffixSteps
	rep.Stats.SpecIssued = es.SpecIssued
	rep.Stats.SpecHits = es.SpecHits
	rep.Stats.SpecWasted = es.SpecWasted
	if cks := l.ver.Checkpoints; cks != nil {
		cs := cks.Stats()
		rep.Stats.Checkpoints = cs.Count
		rep.Stats.CheckpointBytes = cs.Bytes
	}
	rep.Stats.StrongEdges = rep.Graph.NumExtraEdges(ddg.StrongImplicit)
	rep.Stats.ImplicitEdges = rep.Graph.NumExtraEdges(ddg.Implicit)
	passes, reeval := l.an.RepropStats()
	rep.Stats.Repropagated = reeval
	if passes > 0 && l.cx.T.Len() > 0 {
		rep.Stats.DirtyFraction = float64(reeval) / (float64(passes) * float64(l.cx.T.Len()))
	}
}

// rootInCandidates reports whether a root-cause instance is in the
// current fault candidate set.
func (l *locator) rootInCandidates() bool {
	for _, cand := range l.an.FaultCandidates() {
		stmt := l.cx.T.At(cand.Entry).Inst.Stmt
		for _, rc := range l.spec.RootCause {
			if stmt == rc {
				l.rep.Located = true
				l.rep.RootEntry = cand.Entry
				return true
			}
		}
	}
	return false
}

// expand verifies PD(u) and adds the verified (strong) implicit edges,
// including the sibling uses of each verified predicate (Fig. 5).
// It reports whether any edge was added.
//
// Each wave of VerifyDep calls goes through the engine as one batch: the
// switched re-executions run on the worker pool, and the verdicts come
// back in the batch's own order — PD(u) enumeration order first, then
// per verified predicate the sibling uses in ascending entry order — so
// the log and counters match a sequential pass over the same order.
func (l *locator) expand(u int) (bool, error) {
	pds := l.pd(u)
	if len(pds) == 0 {
		return false, nil
	}

	// Group by verdict (Algorithm 2 lines 6-9).
	reqs := make([]implicit.Request, len(pds))
	for i, pd := range pds {
		reqs[i] = implicit.Request{
			Pred: pd.Pred, Use: u, UseSym: pd.UseSym, UseElem: pd.UseElem,
		}
	}
	vs, err := l.eng.VerifyBatchContext(l.ctx, reqs)
	if err != nil {
		return false, err
	}
	byVerdict := map[implicit.Verdict][]slicing.PDep{}
	for i, v := range vs {
		byVerdict[v] = append(byVerdict[v], pds[i])
	}
	kind := ddg.StrongImplicit
	verdict := implicit.StrongID
	group := byVerdict[implicit.StrongID]
	if len(group) == 0 {
		kind = ddg.Implicit
		verdict = implicit.ID
		group = byVerdict[implicit.ID]
	}
	if len(group) == 0 {
		return false, nil
	}

	// Add edges for u itself, then verify sibling uses t with
	// p ∈ PD(t) (Algorithm 2 lines 12-18).
	added := false
	for _, pd := range group {
		l.an.AddEdges(confidence.Arc{From: u, To: pd.Pred, Kind: kind})
		l.rep.Stats.ExpandedEdges++
		added = true
		var sibReqs []implicit.Request
		var sibUse []int
		for _, t := range l.siblingUses(pd.Pred, u) {
			for _, tpd := range l.pd(t) {
				if tpd.Pred != pd.Pred {
					continue
				}
				sibReqs = append(sibReqs, implicit.Request{
					Pred: tpd.Pred, Use: t, UseSym: tpd.UseSym, UseElem: tpd.UseElem,
				})
				sibUse = append(sibUse, t)
			}
		}
		sibVs, err := l.eng.VerifyBatchContext(l.ctx, sibReqs)
		if err != nil {
			return added, err
		}
		for i, v := range sibVs {
			if v == verdict {
				l.an.AddEdges(confidence.Arc{From: sibUse[i], To: pd.Pred, Kind: kind})
				l.rep.Stats.ExpandedEdges++
			}
		}
	}
	return added, nil
}

// siblingUses enumerates other entries t that might potentially depend on
// predicate instance p. To keep verification counts in check it considers
// entries in the wrong output's slice and the correct outputs' closures —
// the entries whose confidence matters for pruning.
func (l *locator) siblingUses(p, u int) []int {
	// The slice snapshot is from the last Compute (by design: candidates
	// were ranked on it); the correct-output closures run over the current
	// graph, including edges added earlier in this expansion.
	relevant := l.an.Slice().Clone()
	for _, o := range l.an.CorrectOuts {
		l.rep.Graph.Extend(relevant, l.an.Kinds, o.Entry)
	}
	var res []int
	// Bitset iteration is ascending entry order — the stable order both
	// the VerifyLog and reproducible batch scheduling need.
	relevant.ForEach(func(e int) {
		if e == u || e <= p {
			return
		}
		res = append(res, e)
	})
	return res
}

// finish computes the final IPS statistics.
func (l *locator) finish() {
	l.an.Compute()
	cands := l.an.FaultCandidates()
	ips := ddg.NewSet(l.cx.T.Len())
	for _, c := range cands {
		ips.Add(c.Entry)
		l.rep.IPSEntries = append(l.rep.IPSEntries, c.Entry)
		l.rep.IPSConfidence = append(l.rep.IPSConfidence, c.Conf)
	}
	l.rep.IPS = l.rep.Graph.Stats(ips)
	if !l.rep.Located {
		l.rootInCandidates()
	}
}
