package core

import (
	"errors"
	"testing"

	"eol/internal/confidence"
	"eol/internal/ddg"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/testsupport"
	"eol/internal/trace"
)

// fig1Spec builds the localization problem for the paper's Figure 1
// worked example, with the scripted user knowing the failure-inducing
// chain OS = {S1, S4, S6, S10} (in the paper's numbering).
func fig1Spec(t *testing.T) (*Spec, *interp.Compiled) {
	t.Helper()
	c := testsupport.Compile(t, testsupport.Fig1Faulty)
	fixed := testsupport.Compile(t, testsupport.Fig1Fixed)
	expected := testsupport.Run(t, fixed, testsupport.Fig1Input).OutputValues()

	root := testsupport.StmtID(t, c, "read() * 0")
	ifFlags := testsupport.StmtID(t, c, "if (saveOrigName)")
	writeFlags := testsupport.StmtID(t, c, "outbuf[outcnt] = flags")
	wrongPrint := testsupport.StmtID(t, c, "print(outbuf[1])")

	os := []trace.Instance{
		{Stmt: root, Occ: 1},
		{Stmt: ifFlags, Occ: 1},
		{Stmt: writeFlags, Occ: 1},
		{Stmt: wrongPrint, Occ: 1},
	}
	return &Spec{
		Program:   c,
		Input:     testsupport.Fig1Input,
		Expected:  expected,
		RootCause: []int{root},
		Oracle:    NewChainOracle(os),
	}, c
}

// TestFig1Locate is the paper's end-to-end worked example: the locator
// finds the root cause in one expansion iteration with few verifications
// and a strong implicit edge.
func TestFig1Locate(t *testing.T) {
	spec, c := fig1Spec(t)
	rep, err := Locate(spec)
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if !rep.Located {
		t.Fatalf("root cause not located; IPS=%v prunings=%d verifs=%d iters=%d edges=%d",
			rep.IPS, rep.Stats.UserPrunings, rep.Stats.Verifications, rep.Stats.Iterations, rep.Stats.ExpandedEdges)
	}
	root := testsupport.StmtID(t, c, "read() * 0")
	if got := rep.Trace.At(rep.RootEntry).Inst.Stmt; got != root {
		t.Errorf("located S%d, want S%d", got, root)
	}
	if rep.Stats.Iterations != 1 {
		t.Errorf("iterations = %d, want 1 (paper: gzip expands once)", rep.Stats.Iterations)
	}
	if rep.Stats.ExpandedEdges < 1 {
		t.Errorf("expanded edges = %d, want ≥1", rep.Stats.ExpandedEdges)
	}
	if rep.Stats.Verifications < 1 || rep.Stats.Verifications > 20 {
		t.Errorf("verifications = %d, want a small number", rep.Stats.Verifications)
	}
	// The added edge must be STRONG (switching S4 repairs the output).
	if n := rep.Graph.NumExtraEdges(ddg.StrongImplicit); n < 1 {
		t.Errorf("strong implicit edges = %d, want ≥1", n)
	}
	// The final IPS must contain the whole failure-inducing chain.
	ifFlags := testsupport.StmtID(t, c, "if (saveOrigName)")
	inIPS := map[int]bool{}
	for _, e := range rep.IPSEntries {
		inIPS[rep.Trace.At(e).Inst.Stmt] = true
	}
	for _, want := range []int{root, ifFlags} {
		if !inIPS[want] {
			t.Errorf("IPS missing S%d; have %v", want, inIPS)
		}
	}
}

// TestFig1FalseEdgeNotAdded: the S7→S10 potential dependence must not
// survive into the graph (it fails verification).
func TestFig1FalseEdgeNotAdded(t *testing.T) {
	spec, c := fig1Spec(t)
	rep, err := Locate(spec)
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	// Find the second if instance.
	first := testsupport.StmtID(t, c, "if (saveOrigName)")
	second := 0
	for _, s := range c.Info.Stmts {
		if s.ID() > first && ast.StmtString(s) == "if (saveOrigName)" {
			second = s.ID()
		}
	}
	secondIdx := rep.Trace.FindInstance(trace.Instance{Stmt: second, Occ: 1})
	for i := 0; i < rep.Trace.Len(); i++ {
		for _, e := range rep.Graph.ExtraEdges(i) {
			if e.To == secondIdx && (e.Kind == ddg.Implicit || e.Kind == ddg.StrongImplicit) {
				t.Errorf("false potential dependence on the second if was added as %v", e.Kind)
			}
		}
	}
}

// TestNoFailure: matching output reports ErrNoFailure.
func TestNoFailure(t *testing.T) {
	c := testsupport.Compile(t, testsupport.Fig1Fixed)
	expected := testsupport.Run(t, c, testsupport.Fig1Input).OutputValues()
	_, err := Locate(&Spec{Program: c, Input: testsupport.Fig1Input, Expected: expected})
	if !errors.Is(err, ErrNoFailure) {
		t.Errorf("err = %v, want ErrNoFailure", err)
	}
}

// TestMissingOutputRejected: truncated output is reported as unsupported.
func TestMissingOutputRejected(t *testing.T) {
	src := `
func main() {
    var x = read();
    if (x > 0) {
        print(1);
    }
}`
	c := testsupport.Compile(t, src)
	_, err := Locate(&Spec{Program: c, Input: []int64{0}, Expected: []int64{1}})
	if !errors.Is(err, ErrMissingOutput) {
		t.Errorf("err = %v, want ErrMissingOutput", err)
	}
}

// TestExplicitErrorStillFound: for a plain (non-omission) value error the
// root cause is already in the dynamic slice — zero iterations, zero
// verifications.
func TestExplicitErrorStillFound(t *testing.T) {
	faulty := `
func main() {
    var a = read();
    var b = a * 3;      // ROOT CAUSE: should be a * 2
    print(a);
    print(b);
}`
	c := testsupport.Compile(t, faulty)
	root := testsupport.StmtID(t, c, "var b = a * 3")
	pr := testsupport.StmtID(t, c, "print(b)")
	rep, err := Locate(&Spec{
		Program:   c,
		Input:     []int64{5},
		Expected:  []int64{5, 10},
		RootCause: []int{root},
		Oracle: NewChainOracle([]trace.Instance{
			{Stmt: root, Occ: 1}, {Stmt: pr, Occ: 1},
		}),
	})
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if !rep.Located {
		t.Fatal("explicit error not located")
	}
	if rep.Stats.Iterations != 0 || rep.Stats.Verifications != 0 {
		t.Errorf("explicit error should need no expansion: iters=%d verifs=%d",
			rep.Stats.Iterations, rep.Stats.Verifications)
	}
}

// TestExpandVerifiesSiblingUses reproduces Fig. 5: when p → u verifies,
// the other uses t with p ∈ PD(t) are verified too, so confidence can
// flow through them and prune.
func TestExpandVerifiesSiblingUses(t *testing.T) {
	// Both t and u read variables that the if's other branch would have
	// redefined. t feeds the correct output, u feeds the wrong one.
	faulty := `
func main() {
    var cond = read() * 0;   // ROOT CAUSE: should be read()
    var a = 1;
    var b = 1;
    if (cond) {
        a = 2;
        b = 2;
    }
    var t = a + 10;
    var u = b + 20;
    print(t);
    print(u);
}`
	c := testsupport.Compile(t, faulty)
	root := testsupport.StmtID(t, c, "read() * 0")
	ifID := testsupport.StmtID(t, c, "if (cond)")
	uDef := testsupport.StmtID(t, c, "var u = b + 20")
	prU := testsupport.StmtID(t, c, "print(u)")

	// Expected: correct run takes the branch: t=12, u=22. The faulty run
	// prints t=11 (ALSO wrong) — to make print(t) correct we must expect
	// 11 for it. Use an expectation where only u is wrong: expected t=11
	// (user considers it fine), u=22.
	rep, err := Locate(&Spec{
		Program:   c,
		Input:     []int64{1},
		Expected:  []int64{11, 22},
		RootCause: []int{root},
		Oracle: NewChainOracle([]trace.Instance{
			{Stmt: root, Occ: 1}, {Stmt: ifID, Occ: 1},
			{Stmt: uDef, Occ: 1}, {Stmt: prU, Occ: 1},
		}),
	})
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if !rep.Located {
		t.Fatal("root cause not located")
	}
	// The sibling use (var t = a + 10) must have received a verified
	// edge to the if as well: it potentially depends on the same
	// predicate, and its verification shares the verdict.
	tDef := testsupport.StmtID(t, c, "var t = a + 10")
	tIdx := rep.Trace.FindInstance(trace.Instance{Stmt: tDef, Occ: 1})
	found := false
	for _, e := range rep.Graph.ExtraEdges(tIdx) {
		if e.Kind == ddg.Implicit || e.Kind == ddg.StrongImplicit {
			found = true
		}
	}
	if !found {
		t.Errorf("sibling use t did not receive a verified implicit edge (Fig. 5)")
	}
}

// TestProfileImprovesRanking: with a profile, fractional confidences are
// computed but the locator still works.
func TestProfileImprovesRanking(t *testing.T) {
	spec, _ := fig1Spec(t)
	prof := confidence.NewProfile()
	fixed := testsupport.Compile(t, testsupport.Fig1Fixed)
	for _, v := range []int64{0, 1} {
		prof.AddTrace(testsupport.Run(t, fixed, []int64{v}).Trace)
	}
	spec.Profile = prof
	rep, err := Locate(spec)
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if !rep.Located {
		t.Fatal("root cause not located with profile")
	}
}

// TestPathModeLocates: the safe path-based VerifyDep variant also locates
// the Fig. 1 root cause.
func TestPathModeLocates(t *testing.T) {
	spec, _ := fig1Spec(t)
	spec.PathMode = true
	rep, err := Locate(spec)
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if !rep.Located {
		t.Fatal("path mode failed to locate")
	}
}

// TestChainOracle basics.
func TestChainOracle(t *testing.T) {
	c := testsupport.Compile(t, testsupport.Fig1Faulty)
	r := testsupport.Run(t, c, testsupport.Fig1Input)
	root := testsupport.StmtID(t, c, "read() * 0")
	o := NewChainOracle([]trace.Instance{{Stmt: root, Occ: 1}})
	rootIdx := r.Trace.FindInstance(trace.Instance{Stmt: root, Occ: 1})
	if o.IsBenign(r.Trace, rootIdx) {
		t.Error("root cause instance must not be benign")
	}
	other := r.Trace.FindInstance(trace.Instance{Stmt: testsupport.StmtID(t, c, "flags = 0"), Occ: 1})
	if !o.IsBenign(r.Trace, other) {
		t.Error("off-chain instance must be benign")
	}
}

// TestExtraOutputFailure: when the faulty run prints MORE than expected,
// there is no expected value at the failure point; the locator must
// handle it (plain implicit verification, no strong checks) instead of
// panicking. Regression test for a bug found by fault-injection testing.
func TestExtraOutputFailure(t *testing.T) {
	// The fault silences the break, so extra iterations print extra
	// values beyond the expected stream.
	faulty := `
func main() {
    var i = 0;
    while (i < 4) {
        if ((i == 2) && 0) {
            break;
        }
        print(i);
        i = i + 1;
    }
}`
	c := testsupport.Compile(t, faulty)
	root := testsupport.StmtID(t, c, "&& 0")
	rep, err := Locate(&Spec{
		Program:   c,
		Input:     nil,
		Expected:  []int64{0, 1, 2}, // correct run breaks at i==2
		RootCause: []int{root},
	})
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	// Wrong output = the extra print at seq 3; vexp unknown.
	if rep.WrongOutput.Seq != 3 {
		t.Errorf("wrong output seq = %d, want 3", rep.WrongOutput.Seq)
	}
	// No strong edges are possible without vexp.
	if n := rep.Graph.NumExtraEdges(ddg.StrongImplicit); n != 0 {
		t.Errorf("strong edges = %d without an expected value", n)
	}
	_ = rep
}
