package core_test

// Speculation A/B coverage: Locate with Features.Speculation on must be
// observationally identical to Locate with it off — verdict, Table 3
// counters, VerifyLog, IPS ranking, and the byte-level obs journal —
// across worker, cache, and backend configurations. This is the hard
// guarantee that lets speculation ship enabled without perturbing the
// paper's reproducible numbers: only Stats.SpecIssued/SpecHits/SpecWasted
// (never journal gauges) may differ.

import (
	"bytes"
	"testing"

	"eol/internal/bench"
	"eol/internal/core"
	"eol/internal/interp"
	"eol/internal/vm"
)

// speculationConfigs is the configuration matrix the A/B comparison
// sweeps: workers 1/8 × cache off/on × backend tree/vm. The cache-off
// rows pin the degenerate case — speculation has nowhere to land results
// and must be a silent no-op.
var speculationConfigs = []struct {
	label            string
	workers, cacheSz int
	backend          interp.Backend
}{
	{"tree/workers=1/nocache", 1, -1, interp.Tree},
	{"tree/workers=1/cache", 1, 0, interp.Tree},
	{"tree/workers=8/cache", 8, 0, interp.Tree},
	{"vm/workers=1/cache", 1, 0, vm.Backend},
	{"vm/workers=8/nocache", 8, -1, vm.Backend},
	{"vm/workers=8/cache", 8, 0, vm.Backend},
}

func withSpeculation(spec *core.Spec, on bool) *core.Spec {
	if on {
		spec.Features.Speculation = core.FeatureOn
	}
	return spec
}

// TestSpeculationDeterminismFig1: speculation on vs off on the Figure 1
// problem, with journal byte-comparison, across the matrix.
func TestSpeculationDeterminismFig1(t *testing.T) {
	for _, cfg := range speculationConfigs {
		offSpec := fig1DetSpec(t)
		offSpec.Backend = cfg.backend
		offSpec.VerifyWorkers, offSpec.VerifyCacheSize = cfg.workers, cfg.cacheSz

		onSpec := withSpeculation(fig1DetSpec(t), true)
		onSpec.Backend = cfg.backend
		onSpec.VerifyWorkers, onSpec.VerifyCacheSize = cfg.workers, cfg.cacheSz

		offRep, offJournal := locateJournaled(t, offSpec)
		onRep, onJournal := locateJournaled(t, onSpec)
		if !offRep.Located {
			t.Fatalf("%s: baseline did not locate", cfg.label)
		}
		assertSameOutcome(t, cfg.label+"/spec-on-vs-off", offRep, onRep)
		if !bytes.Equal(offJournal, onJournal) {
			t.Errorf("%s: journal bytes diverged with speculation\n%s",
				cfg.label, diffLine(offJournal, onJournal))
		}
		if offRep.Stats.SpecIssued != 0 || offRep.Stats.SpecHits != 0 {
			t.Errorf("%s: speculation-off run reports SpecIssued=%d SpecHits=%d",
				cfg.label, offRep.Stats.SpecIssued, offRep.Stats.SpecHits)
		}
		if cfg.cacheSz < 0 && onRep.Stats.SpecIssued != 0 {
			t.Errorf("%s: cacheless run issued %d speculative runs",
				cfg.label, onRep.Stats.SpecIssued)
		}
	}
}

// TestSpeculationDeterminismBench: the same A/B on the multi-round
// benchmark cases — the subjects where prediction has rounds to work
// with — and proof that speculation actually fires (SpecIssued > 0) and
// lands (SpecHits > 0) somewhere in the suite.
func TestSpeculationDeterminismBench(t *testing.T) {
	var issued, hits int64
	for _, name := range []string{"grepsim/V4-F2", "sedsim/V3-F2", "sedsim/V3-F3"} {
		c := bench.ByName(name)
		if c == nil {
			t.Fatalf("unknown case %s", name)
		}
		for _, workers := range []int{1, 8} {
			pOff, err := c.Prepare()
			if err != nil {
				t.Fatal(err)
			}
			pOn, err := c.Prepare()
			if err != nil {
				t.Fatal(err)
			}
			offSpec := pOff.Spec()
			offSpec.VerifyWorkers, offSpec.VerifyCacheSize = workers, 0
			onSpec := withSpeculation(pOn.Spec(), true)
			onSpec.VerifyWorkers, onSpec.VerifyCacheSize = workers, 0

			label := name + "/workers=" + string(rune('0'+workers))
			offRep, offJournal := locateJournaled(t, offSpec)
			onRep, onJournal := locateJournaled(t, onSpec)
			if !offRep.Located {
				t.Fatalf("%s: baseline did not locate", label)
			}
			assertSameOutcome(t, label+"/spec-on-vs-off", offRep, onRep)
			if !bytes.Equal(offJournal, onJournal) {
				t.Errorf("%s: journal bytes diverged with speculation\n%s",
					label, diffLine(offJournal, onJournal))
			}
			issued += onRep.Stats.SpecIssued
			hits += onRep.Stats.SpecHits
			if w := onRep.Stats.SpecIssued - onRep.Stats.SpecHits; onRep.Stats.SpecWasted != max64(0, w) {
				t.Errorf("%s: SpecWasted=%d, want %d", label, onRep.Stats.SpecWasted, max64(0, w))
			}
		}
	}
	if issued == 0 {
		t.Error("speculation never issued a run on the multi-round benchmarks")
	}
	if hits == 0 {
		t.Error("speculation never hit on the multi-round benchmarks")
	}
}

// TestSpeculationIssuedDeterministic: for a fixed configuration the set
// of issued speculative keys is registered synchronously on the locator
// goroutine, so SpecIssued itself is reproducible run to run (SpecHits
// can vary only when the cache is shared across localizations, which a
// private per-Locate cache is not).
func TestSpeculationIssuedDeterministic(t *testing.T) {
	c := bench.ByName("grepsim/V4-F2")
	if c == nil {
		t.Fatal("unknown case grepsim/V4-F2")
	}
	var first *core.Report
	for i := 0; i < 3; i++ {
		p, err := c.Prepare()
		if err != nil {
			t.Fatal(err)
		}
		spec := withSpeculation(p.Spec(), true)
		rep := locateConfigured(t, spec, 4, 0)
		if first == nil {
			first = rep
			continue
		}
		if rep.Stats.SpecIssued != first.Stats.SpecIssued {
			t.Fatalf("run %d: SpecIssued=%d, first run had %d",
				i, rep.Stats.SpecIssued, first.Stats.SpecIssued)
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
