package core

import (
	"strings"
	"testing"

	"eol/internal/oracle"
	"eol/internal/testsupport"
)

// table5bFaulty is the paper's Table 5(b) scenario as a full localization
// problem: A is computed wrongly (5 instead of the input), so both nested
// predicates take false and X keeps its stale value. Predicate switching
// cannot expose the dependence (switching P1 alone leaves P2 false), so
// the standard locator gives up; the §5 perturbation fallback probes A's
// value across the comparison boundaries and finds it.
const table5bFaulty = `
func main() {
    var A = read() * 0 + 5;   // ROOT CAUSE: should be read()
    var X = 1;
    if (A > 10) {
        if (A > 100) {
            X = 2;
        }
    }
    print(X);
}`

var table5bFixed = strings.Replace(table5bFaulty,
	"var A = read() * 0 + 5;", "var A = read();", 1)

func table5bSpec(t *testing.T) *Spec {
	t.Helper()
	faulty := testsupport.Compile(t, table5bFaulty)
	fixed := testsupport.Compile(t, table5bFixed)
	input := []int64{200}
	expected := testsupport.Run(t, fixed, input).OutputValues()
	root := testsupport.StmtID(t, faulty, "read() * 0 + 5")
	return &Spec{
		Program:   faulty,
		Input:     input,
		Expected:  expected,
		RootCause: []int{root},
		Oracle:    &oracle.StateOracle{Correct: testsupport.Run(t, fixed, input).Trace},
	}
}

// TestTable5bStandardLocatorFails: without the fallback, the documented
// soundness gap makes the locator give up.
func TestTable5bStandardLocatorFails(t *testing.T) {
	spec := table5bSpec(t)
	rep, err := Locate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Located {
		t.Fatal("switching-only locator should miss the Table 5(b) root cause")
	}
}

// TestTable5bPerturbationLocates: the fallback perturbs A across the
// 10/100 comparison boundaries and exposes the hidden dependence.
func TestTable5bPerturbationLocates(t *testing.T) {
	spec := table5bSpec(t)
	spec.PerturbFallback = true
	rep, err := Locate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Located {
		t.Fatalf("perturbation fallback failed; IPS=%v verifs=%d", rep.IPS, rep.Stats.Verifications)
	}
	if got := rep.Trace.At(rep.RootEntry).Inst.Stmt; got != spec.RootCause[0] {
		t.Errorf("located S%d, want S%d", got, spec.RootCause[0])
	}
	if rep.Stats.ExpandedEdges < 1 {
		t.Error("no edges added by the fallback")
	}
}

// TestPerturbFallbackNotUsedWhenSwitchingSuffices: on Fig. 1 the fallback
// changes nothing (switching already succeeds with the same counters).
func TestPerturbFallbackNotUsedWhenSwitchingSuffices(t *testing.T) {
	build := func(fallback bool) *Report {
		c := testsupport.Compile(t, testsupport.Fig1Faulty)
		fixed := testsupport.Compile(t, testsupport.Fig1Fixed)
		expected := testsupport.Run(t, fixed, testsupport.Fig1Input).OutputValues()
		root := testsupport.StmtID(t, c, "read() * 0")
		rep, err := Locate(&Spec{
			Program: c, Input: testsupport.Fig1Input, Expected: expected,
			RootCause:       []int{root},
			Oracle:          &oracle.StateOracle{Correct: testsupport.Run(t, fixed, testsupport.Fig1Input).Trace},
			PerturbFallback: fallback,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	without := build(false)
	with := build(true)
	if !without.Located || !with.Located {
		t.Fatal("both runs should locate")
	}
	if with.Stats.Verifications != without.Stats.Verifications {
		t.Errorf("fallback changed verification count: %d vs %d",
			with.Stats.Verifications, without.Stats.Verifications)
	}
}

func TestComparisonLiterals(t *testing.T) {
	c := testsupport.Compile(t, table5bFaulty)
	lits := comparisonLiterals(c.Info)
	found := map[int64]bool{}
	for _, l := range lits {
		found[l] = true
	}
	if !found[10] || !found[100] {
		t.Errorf("literals = %v, want to include 10 and 100", lits)
	}
}

// TestCrossFunctionLocate: an omission inside a callee (the predicate
// suppressing a global write lives in setup(), the wrong value surfaces
// in main) is invisible to intraprocedural PD but located with the
// cross-function extension.
func TestCrossFunctionLocate(t *testing.T) {
	faulty := `
var mode;

func setup(request) {
    if (request > 0) {
        mode = 7;
    }
    return 0;
}

func main() {
    var request = read() * 0;   // ROOT CAUSE: should be read()
    mode = 1;
    setup(request);
    print(mode);
}`
	fixed := strings.Replace(faulty, "read() * 0", "read()", 1)
	c := testsupport.Compile(t, faulty)
	fx := testsupport.Compile(t, fixed)
	input := []int64{5}
	expected := testsupport.Run(t, fx, input).OutputValues()
	root := testsupport.StmtID(t, c, "read() * 0")

	base := &Spec{
		Program: c, Input: input, Expected: expected,
		RootCause: []int{root},
		Oracle:    &oracle.StateOracle{Correct: testsupport.Run(t, fx, input).Trace},
	}
	rep, err := Locate(base)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Located {
		t.Fatal("intraprocedural PD should miss the callee-side omission")
	}

	ext := *base
	ext.CrossFunctionPD = true
	rep, err = Locate(&ext)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Located {
		t.Fatalf("cross-function PD failed to locate; IPS=%v verifs=%d", rep.IPS, rep.Stats.Verifications)
	}
	if got := rep.Trace.At(rep.RootEntry).Inst.Stmt; got != root {
		t.Errorf("located S%d, want S%d", got, root)
	}
}
