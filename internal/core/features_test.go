package core

import (
	"reflect"
	"strings"
	"testing"
)

func TestFeatureModeRoundTrip(t *testing.T) {
	for _, m := range []FeatureMode{FeatureDefault, FeatureOn, FeatureOff} {
		got, err := ParseFeatureMode(m.String())
		if err != nil {
			t.Fatalf("ParseFeatureMode(%q): %v", m.String(), err)
		}
		if got != m {
			t.Errorf("round trip %v -> %q -> %v", m, m.String(), got)
		}
	}
	if m, err := ParseFeatureMode(""); err != nil || m != FeatureDefault {
		t.Errorf(`ParseFeatureMode("") = %v, %v; want default, nil`, m, err)
	}
	if _, err := ParseFeatureMode("yes"); err == nil {
		t.Error(`ParseFeatureMode("yes") accepted`)
	}
}

func TestParseFeaturesRoundTrip(t *testing.T) {
	f := Features{
		StaticSkip:  FeatureOff,
		Checkpoints: FeatureOn,
		Speculation: FeatureOn,
	}
	m := f.Map()
	want := map[string]string{
		"static_skip": "off",
		"checkpoints": "on",
		"speculation": "on",
	}
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("Map() = %v, want %v", m, want)
	}
	got, err := ParseFeatures(m)
	if err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Errorf("round trip: got %+v, want %+v", got, f)
	}
	// Zero features marshal to nothing: that is what keeps existing wire
	// requests byte-identical.
	if m := (Features{}).Map(); m != nil {
		t.Errorf("zero Features.Map() = %v, want nil", m)
	}
	if f, err := ParseFeatures(nil); err != nil || f != (Features{}) {
		t.Errorf("ParseFeatures(nil) = %+v, %v", f, err)
	}
}

func TestParseFeaturesRejectsUnknown(t *testing.T) {
	_, err := ParseFeatures(map[string]string{"warp_drive": "on"})
	if err == nil {
		t.Fatal("unknown feature name accepted")
	}
	if !strings.Contains(err.Error(), "warp_drive") {
		t.Errorf("error does not name the feature: %v", err)
	}
	_, err = ParseFeatures(map[string]string{"speculation": "sometimes"})
	if err == nil {
		t.Fatal("unknown feature mode accepted")
	}
	if !strings.Contains(err.Error(), "sometimes") {
		t.Errorf("error does not name the mode: %v", err)
	}
	// Error choice is deterministic regardless of map iteration order:
	// the smallest offending name wins.
	for i := 0; i < 10; i++ {
		_, err := ParseFeatures(map[string]string{"zzz": "on", "aaa": "on"})
		if err == nil || !strings.Contains(err.Error(), "aaa") {
			t.Fatalf("want error about %q, got %v", "aaa", err)
		}
	}
}

func TestFeaturesOverlay(t *testing.T) {
	base := Features{StaticSkip: FeatureOff, Speculation: FeatureOn}
	over := Features{StaticSkip: FeatureOn, Checkpoints: FeatureOff}
	got := base.Overlay(over)
	want := Features{
		StaticSkip:  FeatureOn,  // over wins
		Speculation: FeatureOn,  // over default: base survives
		Checkpoints: FeatureOff, // base default: over lands
	}
	if got != want {
		t.Errorf("Overlay = %+v, want %+v", got, want)
	}
}

// TestResolveFeaturesLegacyMapping pins the compatibility contract: at
// FeatureDefault the deprecated negative knobs decide, and an explicit
// tri-state overrides them.
func TestResolveFeaturesLegacyMapping(t *testing.T) {
	// Zero spec: everything on (speculation off — no legacy knob).
	var s Spec
	r := s.ResolveFeatures()
	want := ResolvedFeatures{StaticSkip: true, StaticReach: true, IncrementalReprune: true, Checkpoints: true}
	if r != want {
		t.Errorf("zero spec: %+v, want %+v", r, want)
	}

	// Legacy knobs flip the defaults.
	s = Spec{NoStaticSkip: true, NoStaticReach: true, NoIncremental: true, Checkpoints: -1}
	r = s.ResolveFeatures()
	if r.StaticSkip || r.StaticReach || r.IncrementalReprune || r.Checkpoints {
		t.Errorf("legacy knobs ignored: %+v", r)
	}

	// Explicit tri-states beat the legacy knobs.
	s.Features = Features{
		StaticSkip:         FeatureOn,
		StaticReach:        FeatureOn,
		IncrementalReprune: FeatureOn,
		Checkpoints:        FeatureOn,
		Speculation:        FeatureOn,
	}
	r = s.ResolveFeatures()
	if !r.StaticSkip || !r.StaticReach || !r.IncrementalReprune || !r.Checkpoints || !r.Speculation {
		t.Errorf("explicit on overridden by legacy knobs: %+v", r)
	}
	// Forced on over a negative legacy count uses the default count.
	if r.CheckpointCount != 0 {
		t.Errorf("CheckpointCount = %d, want 0 (default)", r.CheckpointCount)
	}

	// Positive legacy count still selects the bound.
	s = Spec{Checkpoints: 7}
	if r := s.ResolveFeatures(); !r.Checkpoints || r.CheckpointCount != 7 {
		t.Errorf("Checkpoints=7: %+v", r)
	}

	// Explicit off beats a legacy-on default.
	s = Spec{Features: Features{StaticSkip: FeatureOff}}
	if r := s.ResolveFeatures(); r.StaticSkip {
		t.Error("FeatureOff did not disable StaticSkip")
	}
}
