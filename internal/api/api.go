// Package api is the versioned wire vocabulary of the localization
// service: the JSON request, response, and error shapes shared by the
// batch CLI (cmd/eolcorpus) and the resident server (internal/serve,
// cmd/eolserve). Both surfaces marshal exactly these types through
// Encode, so a server response for a manifest is byte-identical to the
// batch driver's -o output for the same subjects.
//
// # Versioning policy
//
// Every top-level document carries "schema_version". The current
// version is SchemaVersion; within one version fields are only ever
// added (never renamed, retyped, or reordered — encoding/json emits
// struct order, which is part of the byte-stability surface pinned by
// the golden tests). Decoding is strict: unknown fields are rejected
// (DisallowUnknownFields), and a request carrying a schema_version
// other than 0 (absent) or SchemaVersion is rejected with CodeInvalid,
// so version skew fails loudly instead of silently dropping fields.
//
// # Error codes
//
// Error classes are the stable string codes of the core.ErrClass
// taxonomy plus the transport-level codes the server adds (rejected,
// invalid, internal). The same strings appear in CLI exit diagnostics
// (cliutil.ExitErr), per-subject "class" fields, server error bodies,
// and the HTTP status mapping (HTTPStatus); see docs/SERVER.md for the
// full table.
package api

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"eol/internal/core"
	"eol/internal/corpus"
)

// SchemaVersion is the current wire schema version.
const SchemaVersion = 1

// Stable error codes. The first six are core.ErrClass names (pinned by
// tests); the rest exist only at the transport layer.
const (
	// CodeDeadline: the wall-clock bound expired (subject deadline or
	// whole-request deadline).
	CodeDeadline = "deadline"
	// CodeCanceled: the caller canceled the operation (fail-fast, client
	// disconnect, server shutdown).
	CodeCanceled = "canceled"
	// CodeBudget: the interpreter step budget was exhausted.
	CodeBudget = "budget"
	// CodeNotLocated: localization completed without the known root
	// cause entering the candidate set.
	CodeNotLocated = "not_located"
	// CodeNoFailure: the program's output matches the expected output.
	CodeNoFailure = "no_failure"
	// CodeError: any other localization failure (compile error, runtime
	// fault, internal error).
	CodeError = "error"

	// CodeRejected: the server's admission control refused the request
	// (token bucket empty or queue full). Retry after the Retry-After
	// interval.
	CodeRejected = "rejected"
	// CodeInvalid: the request was malformed (bad JSON, unknown field,
	// unsupported schema_version, invalid manifest).
	CodeInvalid = "invalid"
	// CodeNotFound: the requested resource (a job id) does not exist —
	// or belongs to another tenant, which is indistinguishable.
	CodeNotFound = "not_found"
)

// CodeOf names the stable code of a localization error — exactly
// core.ErrClass ("" for nil, CodeError for unclassified errors).
func CodeOf(err error) string { return core.ErrClass(err) }

// HTTPStatus maps an error code to the HTTP status the server responds
// with when the code terminates a whole request. Subject-level outcomes
// (budget, not_located, no_failure, and per-subject deadline/canceled)
// ride inside a 200 response's "class" fields, exactly as in batch
// output; see docs/SERVER.md.
func HTTPStatus(code string) int {
	switch code {
	case "":
		return 200
	case CodeInvalid:
		return 400
	case CodeNotFound:
		return 404
	case CodeRejected:
		return 429
	case CodeDeadline:
		return 504
	case CodeCanceled:
		return 503
	default:
		return 500
	}
}

// ErrorBody is the JSON body of every non-2xx server response.
type ErrorBody struct {
	SchemaVersion int    `json:"schema_version"`
	Class         string `json:"class"`
	Message       string `json:"message"`
}

// Errorf builds an ErrorBody with a formatted message.
func Errorf(class, format string, args ...any) *ErrorBody {
	return &ErrorBody{
		SchemaVersion: SchemaVersion,
		Class:         class,
		Message:       fmt.Sprintf(format, args...),
	}
}

// Error implements error, so an ErrorBody decoded from a response can be
// returned directly by client code.
func (e *ErrorBody) Error() string {
	return fmt.Sprintf("%s: %s", e.Class, e.Message)
}

// LocateRequest is the body of POST /v1/locate: one localization
// subject. The subject fields are exactly the corpus manifest subject
// fields (docs/CORPUS.md) except that file references (file,
// correct_file) are rejected — wire subjects carry program text inline.
type LocateRequest struct {
	SchemaVersion int `json:"schema_version,omitempty"`
	corpus.Subject
}

// CorpusRequest is the body of POST /v1/corpus: a whole manifest —
// defaults plus subjects — with the same inline-text restriction as
// LocateRequest.
type CorpusRequest struct {
	SchemaVersion int             `json:"schema_version,omitempty"`
	Defaults      corpus.Defaults `json:"defaults,omitempty"`
	Subjects      []corpus.Subject `json:"subjects"`
}

// SubjectResult is one per-subject result row, identical in batch
// output and server responses. Fields from "error" on are populated
// only when timing output is requested: they depend on scheduling and
// would break the byte-determinism contract of the default output.
type SubjectResult struct {
	Name    string `json:"name"`
	Located bool   `json:"located"`
	Class   string `json:"class,omitempty"`

	UserPrunings  int `json:"user_prunings"`
	Verifications int `json:"verifications"`
	Iterations    int `json:"iterations"`
	ExpandedEdges int `json:"expanded_edges"`
	StrongEdges   int `json:"strong_edges"`
	ImplicitEdges int `json:"implicit_edges"`
	IPSStatic     int `json:"ips_static"`
	IPSDynamic    int `json:"ips_dynamic"`

	// The verification-avoidance split: candidates retired before any
	// execution by the SPDG reach filter vs. by trace replay. Both are
	// decided in the engine's sequential planning loop, so they are
	// scheduling-independent and safe for the deterministic output.
	StaticReachSkips int64 `json:"static_reach_skips"`
	ReplaySkips      int64 `json:"replay_skips"`

	Error     string  `json:"error,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	Shard     *int    `json:"shard,omitempty"`
}

// LocateResponse is the body of a successful POST /v1/locate.
type LocateResponse struct {
	SchemaVersion int `json:"schema_version"`
	SubjectResult
}

// CacheStats reports shared switched-run cache traffic (timing output
// only: hit/miss splits are scheduling-dependent).
type CacheStats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// CorpusReport is the whole-corpus result document: eolcorpus output
// and the body of a successful POST /v1/corpus. Fields from
// "elapsed_ms" on appear only in timing output.
type CorpusReport struct {
	SchemaVersion int             `json:"schema_version"`
	Subjects      []SubjectResult `json:"subjects"`
	Total         int             `json:"total"`
	Located       int             `json:"located"`
	Failed        int             `json:"failed"`

	ElapsedMS float64     `json:"elapsed_ms,omitempty"`
	Shards    int         `json:"shards,omitempty"`
	Cache     *CacheStats `json:"cache,omitempty"`
}

// Job states, as reported by GET /v1/jobs/{id}.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
)

// JobStatus describes an async corpus job: the body of the 202 response
// to POST /v1/corpus?async=1 and of GET /v1/jobs/{id}. Report and Error
// are set only once State is JobDone (exactly one of them).
type JobStatus struct {
	SchemaVersion int           `json:"schema_version"`
	ID            string        `json:"id"`
	State         string        `json:"state"`
	Report        *CorpusReport `json:"report,omitempty"`
	Error         *ErrorBody    `json:"error,omitempty"`
}

// NewSubjectResult converts one corpus subject outcome to its wire row.
// timing adds the scheduling-dependent fields.
func NewSubjectResult(sr *corpus.SubjectResult, timing bool) SubjectResult {
	row := SubjectResult{
		Name:    sr.Name,
		Located: sr.Located(),
		Class:   sr.Class,
	}
	if rep := sr.Report; rep != nil {
		row.UserPrunings = rep.Stats.UserPrunings
		row.Verifications = rep.Stats.Verifications
		row.Iterations = rep.Stats.Iterations
		row.ExpandedEdges = rep.Stats.ExpandedEdges
		row.StrongEdges = rep.Stats.StrongEdges
		row.ImplicitEdges = rep.Stats.ImplicitEdges
		row.IPSStatic = rep.IPS.Static
		row.IPSDynamic = rep.IPS.Dynamic
		row.StaticReachSkips = rep.Stats.StaticReachSkips
		row.ReplaySkips = rep.Stats.StaticSkips
	}
	if timing {
		if sr.Err != nil {
			row.Error = sr.Err.Error()
		}
		row.ElapsedMS = float64(sr.Elapsed) / float64(time.Millisecond)
		shard := sr.Shard
		row.Shard = &shard
	}
	return row
}

// NewCorpusReport converts a corpus result to its wire document. timing
// adds the scheduling-dependent fields; shards is reported only then.
func NewCorpusReport(res *corpus.Result, timing bool, shards int) *CorpusReport {
	out := &CorpusReport{
		SchemaVersion: SchemaVersion,
		Subjects:      make([]SubjectResult, len(res.Subjects)),
		Total:         len(res.Subjects),
		Located:       res.Located,
		Failed:        res.Failed,
	}
	for i := range res.Subjects {
		out.Subjects[i] = NewSubjectResult(&res.Subjects[i], timing)
	}
	if timing {
		out.ElapsedMS = float64(res.Elapsed) / float64(time.Millisecond)
		out.Shards = shards
		if res.SharedCache {
			c := res.Cache
			rate := 0.0
			if c.Hits+c.Misses > 0 {
				rate = float64(c.Hits) / float64(c.Hits+c.Misses)
			}
			out.Cache = &CacheStats{Hits: c.Hits, Misses: c.Misses, Evictions: c.Evictions, HitRate: rate}
		}
	}
	return out
}

// Encode writes v as indented JSON with a trailing newline — the one
// serialization both the CLI and the server use, so equal values mean
// equal bytes.
func Encode(w io.Writer, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Decode strictly decodes one JSON document from r into v: unknown
// fields and trailing data are errors.
func Decode(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON document")
	}
	return nil
}

// checkVersion accepts the current schema version or 0 (absent).
func checkVersion(v int) error {
	if v != 0 && v != SchemaVersion {
		return fmt.Errorf("unsupported schema_version %d (this build speaks %d)", v, SchemaVersion)
	}
	return nil
}

// DecodeLocateRequest strictly decodes and version-checks a locate
// request.
func DecodeLocateRequest(r io.Reader) (*LocateRequest, error) {
	var req LocateRequest
	if err := Decode(r, &req); err != nil {
		return nil, err
	}
	if err := checkVersion(req.SchemaVersion); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeCorpusRequest strictly decodes and version-checks a corpus
// request.
func DecodeCorpusRequest(r io.Reader) (*CorpusRequest, error) {
	var req CorpusRequest
	if err := Decode(r, &req); err != nil {
		return nil, err
	}
	if err := checkVersion(req.SchemaVersion); err != nil {
		return nil, err
	}
	return &req, nil
}

// rejectFileRefs enforces the inline-text restriction on wire subjects.
func rejectFileRefs(subjects []corpus.Subject) error {
	for i := range subjects {
		s := &subjects[i]
		if s.File != "" || s.CorrectFile != "" {
			return fmt.Errorf("subject %d (%s): file references are not accepted over the wire; inline the program text", i, s.Name)
		}
	}
	return nil
}

// Manifest converts the request to a validated, defaults-folded corpus
// manifest.
func (r *LocateRequest) Manifest() (*corpus.Manifest, error) {
	if err := rejectFileRefs([]corpus.Subject{r.Subject}); err != nil {
		return nil, err
	}
	m := &corpus.Manifest{Subjects: []corpus.Subject{r.Subject}}
	m.Fold()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Manifest converts the request to a validated, defaults-folded corpus
// manifest.
func (r *CorpusRequest) Manifest() (*corpus.Manifest, error) {
	if err := rejectFileRefs(r.Subjects); err != nil {
		return nil, err
	}
	m := &corpus.Manifest{Defaults: r.Defaults, Subjects: r.Subjects}
	m.Fold()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// RequestFromManifest turns a loaded (file-resolved) manifest into a
// wire corpus request: sources are already inlined by corpus.Load, so
// the file reference fields are cleared. This is what wire clients
// (cmd/eoloadgen) use to ship an on-disk manifest to a server.
func RequestFromManifest(m *corpus.Manifest) *CorpusRequest {
	req := &CorpusRequest{
		SchemaVersion: SchemaVersion,
		Defaults:      m.Defaults,
		Subjects:      make([]corpus.Subject, len(m.Subjects)),
	}
	copy(req.Subjects, m.Subjects)
	for i := range req.Subjects {
		req.Subjects[i].File = ""
		req.Subjects[i].CorrectFile = ""
	}
	return req
}
