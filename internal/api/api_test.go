package api

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"strings"
	"testing"

	"eol/internal/core"
	"eol/internal/corpus"
	"eol/internal/interp"
)

// update regenerates the golden file: go test ./internal/api -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// fixedResult builds a deterministic corpus.Result without running
// anything, exercising every deterministic row field.
func fixedResult() *corpus.Result {
	rep := &core.Report{Located: true}
	rep.Stats.UserPrunings = 2
	rep.Stats.Verifications = 3
	rep.Stats.Iterations = 1
	rep.Stats.ExpandedEdges = 4
	rep.Stats.StrongEdges = 1
	rep.Stats.ImplicitEdges = 1
	rep.Stats.StaticReachSkips = 5
	rep.Stats.StaticSkips = 6
	rep.IPS.Static = 7
	rep.IPS.Dynamic = 8
	return &corpus.Result{
		Subjects: []corpus.SubjectResult{
			{Name: "good", Report: rep},
			{Name: "bad", Report: &core.Report{}, Err: core.ErrNotLocated, Class: "not_located"},
		},
		Located: 1,
		Failed:  1,
	}
}

// TestCorpusReportGolden pins the exact bytes of the deterministic
// (timing-free) corpus document — the byte-stability surface shared by
// eolcorpus -o and every eolserve response. If this changes, batch
// output changes for every user: update deliberately, with a CHANGES
// note.
func TestCorpusReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, NewCorpusReport(fixedResult(), false, 0)); err != nil {
		t.Fatal(err)
	}
	const golden = "testdata/corpus_report.golden"
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("corpus report bytes drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestTimingFieldsOptIn: the scheduling-dependent fields stay out of the
// deterministic document and appear under timing.
func TestTimingFieldsOptIn(t *testing.T) {
	var det, tim bytes.Buffer
	res := fixedResult()
	res.SharedCache = true
	res.Cache.Hits, res.Cache.Misses = 3, 1
	if err := Encode(&det, NewCorpusReport(res, false, 4)); err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"elapsed_ms", "shard", "cache", "error"} {
		if strings.Contains(det.String(), banned) {
			t.Errorf("deterministic output contains %q", banned)
		}
	}
	if err := Encode(&tim, NewCorpusReport(res, true, 4)); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"shards": 4`, `"hit_rate": 0.75`, `"error": "root cause not located"`, `"shard": 0`} {
		if !strings.Contains(tim.String(), want) {
			t.Errorf("timing output missing %q:\n%s", want, tim.String())
		}
	}
}

// TestStrictDecoding: unknown fields, trailing data, and foreign schema
// versions are rejected; version 0 (absent) and 1 are accepted.
func TestStrictDecoding(t *testing.T) {
	if _, err := DecodeLocateRequest(strings.NewReader(`{"source":"x","expected":[1],"bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := DecodeLocateRequest(strings.NewReader(`{"source":"x"} {"more":1}`)); err == nil {
		t.Error("trailing data accepted")
	}
	if _, err := DecodeLocateRequest(strings.NewReader(`{"schema_version":2,"source":"x"}`)); err == nil {
		t.Error("schema_version 2 accepted")
	}
	for _, body := range []string{`{"source":"x","expected":[1]}`, `{"schema_version":1,"source":"x","expected":[1]}`} {
		if _, err := DecodeLocateRequest(strings.NewReader(body)); err != nil {
			t.Errorf("valid request %s rejected: %v", body, err)
		}
	}
	if _, err := DecodeCorpusRequest(strings.NewReader(`{"subjects":[],"nope":true}`)); err == nil {
		t.Error("unknown corpus field accepted")
	}
}

// TestManifestConversion: wire requests reject file references, fold
// defaults, and validate.
func TestManifestConversion(t *testing.T) {
	req := &CorpusRequest{
		Defaults: corpus.Defaults{MaxIterations: 7},
		Subjects: []corpus.Subject{{Source: "main(){}", Expected: []int64{1}}},
	}
	m, err := req.Manifest()
	if err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	if m.Subjects[0].Name != "subject-0" || m.Subjects[0].MaxIterations != 7 {
		t.Errorf("defaults not folded: %+v", m.Subjects[0])
	}

	req.Subjects[0].File = "evil.mc"
	if _, err := req.Manifest(); err == nil || !strings.Contains(err.Error(), "file references") {
		t.Errorf("file reference not rejected: %v", err)
	}
	req.Subjects[0].File = ""
	req.Subjects[0].Expected = nil
	if _, err := req.Manifest(); err == nil {
		t.Error("invalid manifest (no expected output) accepted")
	}

	lr := &LocateRequest{Subject: corpus.Subject{CorrectFile: "x.mc", Source: "main(){}"}}
	if _, err := lr.Manifest(); err == nil {
		t.Error("locate file reference not rejected")
	}
}

// TestWireFeatures: the additive features field decodes strictly, folds
// through Manifest(), and unknown names or modes are rejected there —
// which the server reports with the `invalid` code.
func TestWireFeatures(t *testing.T) {
	req, err := DecodeCorpusRequest(strings.NewReader(`{
  "defaults": {"features": {"speculation": "on"}},
  "subjects": [
    {"source": "main(){}", "expected": [1]},
    {"source": "main(){}", "expected": [1], "features": {"speculation": "off"}}
  ]
}`))
	if err != nil {
		t.Fatalf("features field rejected: %v", err)
	}
	m, err := req.Manifest()
	if err != nil {
		t.Fatalf("valid features rejected: %v", err)
	}
	if got := m.Subjects[0].Features["speculation"]; got != "on" {
		t.Errorf("default feature not folded: %v", m.Subjects[0].Features)
	}
	if got := m.Subjects[1].Features["speculation"]; got != "off" {
		t.Errorf("subject feature overridden: %v", m.Subjects[1].Features)
	}

	bad := &CorpusRequest{Subjects: []corpus.Subject{{
		Source: "main(){}", Expected: []int64{1},
		Features: map[string]string{"warp_drive": "on"},
	}}}
	if _, err := bad.Manifest(); err == nil || !strings.Contains(err.Error(), "warp_drive") {
		t.Errorf("unknown feature name not rejected: %v", err)
	}
	lr := &LocateRequest{Subject: corpus.Subject{
		Source: "main(){}", Expected: []int64{1},
		Features: map[string]string{"speculation": "maybe"},
	}}
	if _, err := lr.Manifest(); err == nil || !strings.Contains(err.Error(), "maybe") {
		t.Errorf("unknown feature mode not rejected: %v", err)
	}
}

// TestRequestFromManifest: loaded manifests ship with sources inlined
// and file references cleared, and survive the round trip through
// strict decoding.
func TestRequestFromManifest(t *testing.T) {
	m, err := corpus.Load("../../testdata/corpus/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	req := RequestFromManifest(m)
	for i := range req.Subjects {
		if req.Subjects[i].File != "" || req.Subjects[i].CorrectFile != "" {
			t.Fatalf("subject %d still carries file refs", i)
		}
		if req.Subjects[i].Source == "" {
			t.Fatalf("subject %d lost its source", i)
		}
	}
	// The original manifest must be untouched.
	if m.Subjects[0].File == "" {
		t.Error("RequestFromManifest mutated its input")
	}
	var buf bytes.Buffer
	if err := Encode(&buf, req); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeCorpusRequest(&buf)
	if err != nil {
		t.Fatalf("round trip rejected: %v", err)
	}
	if _, err := dec.Manifest(); err != nil {
		t.Fatalf("round-tripped manifest invalid: %v", err)
	}
}

// TestCodesMatchErrClass pins the wire codes to the core.ErrClass
// taxonomy — the CLI exit handling and the server error bodies must
// speak the same strings.
func TestCodesMatchErrClass(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{interp.ErrDeadline, CodeDeadline},
		{interp.ErrCanceled, CodeCanceled},
		{interp.CtxErr(context.Canceled), CodeCanceled},
		{interp.CtxErr(context.DeadlineExceeded), CodeDeadline},
		{interp.ErrBudget, CodeBudget},
		{core.ErrNotLocated, CodeNotLocated},
		{core.ErrNoFailure, CodeNoFailure},
		{errors.New("boom"), CodeError},
	}
	for _, c := range cases {
		if got := CodeOf(c.err); got != c.want {
			t.Errorf("CodeOf(%v) = %q, want %q", c.err, got, c.want)
		}
		if got := core.ErrClass(c.err); got != CodeOf(c.err) {
			t.Errorf("core.ErrClass(%v) = %q diverges from CodeOf %q", c.err, got, CodeOf(c.err))
		}
	}
}

// TestHTTPStatus pins the whole code→status table.
func TestHTTPStatus(t *testing.T) {
	want := map[string]int{
		"":             200,
		CodeInvalid:    400,
		CodeRejected:   429,
		CodeDeadline:   504,
		CodeCanceled:   503,
		CodeBudget:     500,
		CodeNotLocated: 500,
		CodeNoFailure:  500,
		CodeError:      500,
	}
	for code, status := range want {
		if got := HTTPStatus(code); got != status {
			t.Errorf("HTTPStatus(%q) = %d, want %d", code, got, status)
		}
	}
}
