// Package align implements the execution alignment algorithm (Algorithm 1
// of the PLDI 2007 paper): given an original execution E and a switched
// re-execution E', find the point u' in E' that corresponds to a point u
// in E, or determine that no such point exists.
//
// Individual statement instances cannot be aligned directly — switching a
// predicate can insert or remove arbitrarily long subsequences (loops,
// recursion). The algorithm instead aligns *regions* (Definition 3):
// starting from the smallest region around the switched predicate that
// contains u, it descends through matching subregions in lockstep,
// requiring equal branch outcomes at each matched predicate head, until
// u's own head is reached or the lockstep walk fails (sibling exhausted,
// head statements diverge, or branch outcomes differ — the Fig. 2/Fig. 3
// failure cases).
package align

import (
	"eol/internal/region"
	"eol/internal/trace"
)

// Match finds the entry in ePrime corresponding to entry u of e, given
// that the two runs are identical up to predicate instance p (the
// switched predicate, present in both traces with the same statement and
// occurrence numbers). It returns the matching entry index, or ok ==
// false if no corresponding point exists in ePrime.
//
// Precondition: u is not inside p's own region (the demand-driven
// algorithm only verifies uses that are not control dependent on p).
func Match(e, ePrime *trace.Trace, p trace.Instance, u int) (int, bool) {
	idx, ok, _ := MatchCounted(e, ePrime, p, u)
	return idx, ok
}

// MatchCounted is Match plus a work measure: regions is the number of
// region steps the alignment walked (climbs plus lockstep subregion
// visits). It is a pure function of the two traces, so the count is
// deterministic and can be aggregated by callers for observability.
func MatchCounted(e, ePrime *trace.Trace, p trace.Instance, u int) (idx int, ok bool, regions int) {
	pIdx := e.FindInstance(p)
	pIdxP := ePrime.FindInstance(p)
	if pIdx < 0 || pIdxP < 0 {
		return 0, false, 0
	}
	if u == pIdx {
		return pIdxP, true, 0
	}
	// A point that is a region ancestor of p began before the divergence;
	// by prefix identity it matches its own instance.
	if e.Ancestry().IsAncestor(u, pIdx) {
		m := ePrime.FindInstance(e.At(u).Inst)
		return m, m >= 0, 0
	}

	// r = Region(p); climb until u is inside. The ancestor chains of p in
	// E and E' are identical instance-for-instance (deterministic prefix),
	// so the climb is mirrored by instance lookup.
	r := region.Of(e, pIdx)
	for !r.Contains(u) {
		if r.IsRoot() {
			// u precedes the whole-execution region? Cannot happen: the
			// root contains everything.
			break
		}
		r = r.Parent()
		regions++
	}
	var rp region.Region
	if r.IsRoot() {
		rp = region.Whole(ePrime)
	} else {
		hp := ePrime.FindInstance(r.HeadInstance())
		if hp < 0 {
			return 0, false, regions
		}
		rp = region.Region{T: ePrime, Head: hp}
	}
	idx, ok, walked := matchInsideRegion(r, u, rp)
	return idx, ok, regions + walked
}

// matchInsideRegion mirrors the paper's MatchInsideRegion(R, u, R'):
// walk the immediate subregions of R and R' in lockstep until the
// subregion containing u is found, then either return its counterpart's
// head (if u heads the subregion) or recurse after checking that the two
// heads took the same branch. regions counts subregion visits.
func matchInsideRegion(r region.Region, u int, rp region.Region) (idx int, found bool, regions int) {
	sub, ok := r.FirstSub()
	if !ok {
		return 0, false, 0 // u is in R but R has no subregions: impossible
	}
	subP, okP := rp.FirstSub()
	if !okP {
		return 0, false, 0 // line 16: different exit, counterpart empty
	}
	regions = 1
	for !sub.Contains(u) {
		sub, ok = sub.Sibling()
		if !ok {
			return 0, false, regions
		}
		subP, okP = subP.Sibling()
		if !okP {
			return 0, false, regions // line 20: single-entry-multiple-exit case (Fig. 3)
		}
		regions++
	}
	// The lockstep counterpart must be an instance of the same statement;
	// otherwise the executions structurally diverged before u.
	if sub.HeadStmt() != subP.HeadStmt() {
		return 0, false, regions
	}
	if sub.Head == u {
		return subP.Head, true, regions // line 22: FirstStmt(r) == u
	}
	if sub.Branch() != subP.Branch() {
		return 0, false, regions // line 23: switching altered a governing branch
	}
	idx, found, walked := matchInsideRegion(sub, u, subP)
	return idx, found, regions + walked
}

// MatchInstance is a convenience wrapper that matches the instance at
// entry u and reports the matched instance.
func MatchInstance(e, ePrime *trace.Trace, p trace.Instance, u int) (trace.Instance, bool) {
	idx, ok := Match(e, ePrime, p, u)
	if !ok {
		return trace.Instance{}, false
	}
	return ePrime.At(idx).Inst, true
}
