package align

import (
	"testing"

	"eol/internal/interp"
	"eol/internal/region"
	"eol/internal/testsupport"
	"eol/internal/trace"
)

// fig2Src is the MiniC analog of the paper's Figure 2. With input
// P=0,C1=0,C2=0, the if(P) branch is skipped; print(x) executes inside
// the doubly nested if at the end.
const fig2Src = `
func main() {
    var i = 0;
    var t = 0;
    var x = 0;
    var P = read();
    var C1 = read();
    var C2 = read();
    if (P) {
        t = 1;
        x = 5;
    }
    while (i < t) {
        var w = 1;
        if (C1) {
            w = 2;
        }
        i = i + 1;
    }
    if (1) {
        if (C2 == 0) {
            print(x);
        }
        var z = 9;
    }
}`

// fig2BSrc is the paper's execution (3) variant: the switched branch also
// sets C2 = 1, so print(x) does not execute in the switched run.
const fig2BSrc = `
func main() {
    var i = 0;
    var t = 0;
    var x = 0;
    var P = read();
    var C1 = read();
    var C2 = read();
    if (P) {
        t = 1;
        C2 = 1;
        x = 5;
    }
    while (i < t) {
        var w = 1;
        if (C1) {
            w = 2;
        }
        i = i + 1;
    }
    if (1) {
        if (C2 == 0) {
            print(x);
        }
        var z = 9;
    }
}`

func runBoth(t *testing.T, src string, input []int64, switchStmt int) (*trace.Trace, *trace.Trace, *interp.Compiled) {
	t.Helper()
	c := testsupport.Compile(t, src)
	orig := testsupport.Run(t, c, input)
	sw := interp.Run(c, interp.Options{
		Input: input, BuildTrace: true,
		Switch: &interp.SwitchPlan{Stmt: switchStmt, Occ: 1},
	})
	if sw.Err != nil {
		t.Fatalf("switched run: %v", sw.Err)
	}
	if !sw.SwitchApplied {
		t.Fatal("switch not applied")
	}
	return orig.Trace, sw.Trace, c
}

// TestFig2MatchFound: the match of the use of x (paper's 15(1)) exists in
// the switched execution (paper's execution (2)) even though the switch
// inserted a whole loop execution in between.
func TestFig2MatchFound(t *testing.T) {
	input := []int64{0, 0, 0}
	c := testsupport.Compile(t, fig2Src)
	ifP := testsupport.StmtID(t, c, "if (P)")
	prX := testsupport.StmtID(t, c, "print(x)")

	e, ep, _ := runBoth(t, fig2Src, input, ifP)
	u := e.FindInstance(trace.Instance{Stmt: prX, Occ: 1})
	if u < 0 {
		t.Fatal("print(x) not executed in original")
	}
	got, ok := Match(e, ep, trace.Instance{Stmt: ifP, Occ: 1}, u)
	if !ok {
		t.Fatal("match of print(x) not found in switched run")
	}
	if ep.At(got).Inst.Stmt != prX {
		t.Errorf("matched %v, want an instance of S%d", ep.At(got).Inst, prX)
	}
	// And the value changed: x is 5 in the switched run.
	if outs := ep.OutputsOf(got); len(outs) != 1 || outs[0].Value != 5 {
		t.Errorf("switched print outputs = %v, want [5]", outs)
	}
}

// TestFig2NoMatch: in the execution-(3) variant the switched branch flips
// C2, so the inner if takes the other branch and print(x) has no
// counterpart (the paper's "15(1) has no corresponding match in (3)").
func TestFig2NoMatch(t *testing.T) {
	input := []int64{0, 0, 0}
	c := testsupport.Compile(t, fig2BSrc)
	ifP := testsupport.StmtID(t, c, "if (P)")
	prX := testsupport.StmtID(t, c, "print(x)")

	e, ep, _ := runBoth(t, fig2BSrc, input, ifP)
	u := e.FindInstance(trace.Instance{Stmt: prX, Occ: 1})
	if _, ok := Match(e, ep, trace.Instance{Stmt: ifP, Occ: 1}, u); ok {
		t.Fatal("match must not be found: the governing branch outcome differs")
	}
	// But the enclosing region head (the inner if) itself matches.
	ifC2 := testsupport.StmtID(t, c, "if (C2 == 0)")
	v := e.FindInstance(trace.Instance{Stmt: ifC2, Occ: 1})
	got, ok := Match(e, ep, trace.Instance{Stmt: ifP, Occ: 1}, v)
	if !ok || ep.At(got).Inst.Stmt != ifC2 {
		t.Errorf("the if(C2==0) instance itself should match (got %v, ok=%v)", got, ok)
	}
}

// TestFig3SingleEntryMultipleExit: switching a predicate makes the loop
// break in its first iteration; the use inside the second part of the
// iteration has no match (sibling exhausted — the paper's Fig. 3 case).
const fig3Src = `
func main() {
    var P = read();
    var C0 = 0;
    var x = 1;
    if (P) {
        C0 = 1;
    }
    var i = 0;
    var t = 2;
    while (i < t) {
        if (C0) {
            break;
        }
        if (1) {
            print(x);
        }
        i = i + 1;
    }
    print(99);
}`

func TestFig3SingleEntryMultipleExit(t *testing.T) {
	input := []int64{0}
	c := testsupport.Compile(t, fig3Src)
	ifP := testsupport.StmtID(t, c, "if (P)")
	prX := testsupport.StmtID(t, c, "print(x)")
	pr99 := testsupport.StmtID(t, c, "print(99)")

	e, ep, _ := runBoth(t, fig3Src, input, ifP)
	u := e.FindInstance(trace.Instance{Stmt: prX, Occ: 1})
	if _, ok := Match(e, ep, trace.Instance{Stmt: ifP, Occ: 1}, u); ok {
		t.Fatal("print(x) must have no match after the switched run breaks out")
	}
	// The statement after the loop still matches.
	v := e.FindInstance(trace.Instance{Stmt: pr99, Occ: 1})
	got, ok := Match(e, ep, trace.Instance{Stmt: ifP, Occ: 1}, v)
	if !ok || ep.At(got).Inst.Stmt != pr99 {
		t.Errorf("print(99) should match across the loop (got %v ok=%v)", got, ok)
	}
}

// TestRecursionInsertion mirrors the paper's recursive-call discussion:
// the switched branch triggers a recursive call whose body contains the
// same statements, yet alignment must not confuse the recursive instance
// with the original one.
const recSrc = `
var depth;
func work(n) {
    depth = depth + 1;
    if (n > 0) {
        work(n - 1);
    }
    return 0;
}
func main() {
    var P = read();
    var arg = 0;
    if (P) {
        arg = 2;
    }
    work(arg);
    print(depth);
}`

func TestRecursionInsertion(t *testing.T) {
	input := []int64{0}
	c := testsupport.Compile(t, recSrc)
	ifP := testsupport.StmtID(t, c, "if (P)")
	pr := testsupport.StmtID(t, c, "print(depth)")
	inc := testsupport.StmtID(t, c, "depth = depth + 1")

	e, ep, _ := runBoth(t, recSrc, input, ifP)

	// print(depth) after the call matches.
	u := e.FindInstance(trace.Instance{Stmt: pr, Occ: 1})
	got, ok := Match(e, ep, trace.Instance{Stmt: ifP, Occ: 1}, u)
	if !ok || ep.At(got).Inst.Stmt != pr {
		t.Fatalf("print(depth) should match (ok=%v)", ok)
	}
	// The first "depth = depth + 1" (top-level call) matches the first
	// instance in the switched run, not a recursive one.
	w := e.FindInstance(trace.Instance{Stmt: inc, Occ: 1})
	got, ok = Match(e, ep, trace.Instance{Stmt: ifP, Occ: 1}, w)
	if !ok {
		t.Fatal("outer depth increment should match")
	}
	if ep.At(got).Inst != (trace.Instance{Stmt: inc, Occ: 1}) {
		t.Errorf("matched %v, want S%d#1 (the outer activation)", ep.At(got).Inst, inc)
	}
}

// TestSelfMatchIdentity: aligning a trace against an identical re-run maps
// every entry to itself (property over all entries).
func TestSelfMatchIdentity(t *testing.T) {
	input := []int64{1, 0, 1}
	c := testsupport.Compile(t, fig2Src)
	ifP := testsupport.StmtID(t, c, "if (P)")
	r1 := testsupport.Run(t, c, input)
	r2 := testsupport.Run(t, c, input)

	// Use the real if(P) instance as the "switch point"; since nothing is
	// actually switched the traces are identical and every entry after p
	// must match itself.
	p := trace.Instance{Stmt: ifP, Occ: 1}
	pIdx := r1.Trace.FindInstance(p)
	for u := 0; u < r1.Trace.Len(); u++ {
		if r1.Trace.Ancestry().IsAncestor(pIdx, u) && u != pIdx {
			continue // inside p's region: out of scope for Match
		}
		got, ok := Match(r1.Trace, r2.Trace, p, u)
		if !ok {
			t.Fatalf("entry %d (%v) did not match itself", u, r1.Trace.At(u).Inst)
		}
		if got != u {
			t.Fatalf("entry %d matched %d", u, got)
		}
	}
}

// TestRegionGrammar: the region decomposition satisfies Definition 3 —
// every member of a region's CD list is directly control dependent on the
// region head, and subregions partition the region body.
func TestRegionGrammar(t *testing.T) {
	input := []int64{1, 1, 0}
	c := testsupport.Compile(t, fig2Src)
	r := testsupport.Run(t, c, input)
	tr := r.Trace

	whole := region.Whole(tr)
	var checkRegion func(reg region.Region)
	seen := 0
	checkRegion = func(reg region.Region) {
		for _, sub := range reg.SubRegions() {
			seen++
			if !reg.Contains(sub.Head) {
				t.Fatalf("subregion head %d not contained in parent %v", sub.Head, reg)
			}
			if !reg.IsRoot() && tr.At(sub.Head).Parent != reg.Head {
				t.Fatalf("subregion head %d has parent %d, want %d", sub.Head, tr.At(sub.Head).Parent, reg.Head)
			}
			checkRegion(sub)
		}
	}
	checkRegion(whole)
	if seen != tr.Len() {
		t.Errorf("region tree covers %d entries, trace has %d", seen, tr.Len())
	}
	if whole.Size() != tr.Len() {
		t.Errorf("root region size %d != trace length %d", whole.Size(), tr.Len())
	}
}

// TestMatchEdgeCases covers the non-walk branches of Match.
func TestMatchEdgeCases(t *testing.T) {
	input := []int64{0, 0, 0}
	c := testsupport.Compile(t, fig2Src)
	ifP := testsupport.StmtID(t, c, "if (P)")
	e, ep, _ := runBoth(t, fig2Src, input, ifP)
	p := trace.Instance{Stmt: ifP, Occ: 1}
	pIdx := e.FindInstance(p)

	// u == p matches p' itself.
	if m, ok := Match(e, ep, p, pIdx); !ok || ep.At(m).Inst != p {
		t.Errorf("Match(p) = (%d, %v)", m, ok)
	}
	// Unknown predicate instance: not found.
	if _, ok := Match(e, ep, trace.Instance{Stmt: ifP, Occ: 99}, pIdx); ok {
		t.Error("nonexistent switch instance should not match")
	}
	// MatchInstance wrapper.
	w1 := testsupport.StmtID(t, c, "while (i < t)")
	u := e.FindInstance(trace.Instance{Stmt: w1, Occ: 1})
	inst, ok := MatchInstance(e, ep, p, u)
	if !ok || inst.Stmt != w1 {
		t.Errorf("MatchInstance = (%v, %v)", inst, ok)
	}
	// An ancestor of p matches itself (prefix identity).
	var anc int = -1
	if par := e.At(pIdx).Parent; par >= 0 {
		anc = par
	}
	if anc >= 0 {
		if m, ok := Match(e, ep, p, anc); !ok || m != anc {
			t.Errorf("ancestor match = (%d, %v), want identity", m, ok)
		}
	}
}
