package cfg

import (
	"fmt"
	"io"

	"eol/internal/lang/ast"
)

// WriteDOT renders the function's CFG in Graphviz DOT format: boxes for
// statements (diamonds for predicates), labeled True/False edges, and a
// dashed annotation from each statement to the predicate it is directly
// control dependent on.
func (g *Graph) WriteDOT(w io.Writer, withCD bool) error {
	name := "fn"
	if g.Fn != nil {
		name = g.Fn.Name
	}
	if _, err := fmt.Fprintf(w, "digraph cfg_%s {\n", name); err != nil {
		return err
	}
	fmt.Fprintln(w, `  node [fontname="monospace", fontsize=10];`)

	label := func(n *Node) string {
		switch n {
		case g.Entry:
			return "ENTRY"
		case g.Exit:
			return "EXIT"
		}
		return fmt.Sprintf("S%d %s", n.StmtID(), ast.StmtString(n.Stmt))
	}
	for _, n := range g.Nodes {
		shape := "box"
		if n.IsPredicate() {
			shape = "diamond"
		}
		if n == g.Entry || n == g.Exit {
			shape = "ellipse"
		}
		fmt.Fprintf(w, "  n%d [label=%q, shape=%s];\n", n.Idx, label(n), shape)
	}
	for _, n := range g.Nodes {
		for _, e := range n.Succs {
			attr := ""
			if e.Label != None {
				attr = fmt.Sprintf(` [label=%q]`, e.Label.String())
			}
			fmt.Fprintf(w, "  n%d -> n%d%s;\n", n.Idx, e.To.Idx, attr)
		}
	}
	if withCD {
		for _, n := range g.Nodes {
			for _, cd := range n.CD {
				fmt.Fprintf(w, "  n%d -> n%d [style=dashed, color=gray, label=\"cd/%s\"];\n",
					n.Idx, cd.P.Idx, cd.Label)
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
