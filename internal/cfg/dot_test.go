package cfg

import (
	"bytes"
	"testing"
)

// TestWriteDOTGolden pins the exact DOT rendering — node labels and
// shapes, branch edge labels, dashed control-dependence edges — so
// downstream tooling that parses the output (and the -cfgdot CLI) gets
// a stable format.
func TestWriteDOTGolden(t *testing.T) {
	_, p := compile(t, `
func main() {
    var x = read();
    if (x > 0) {
        print(1);
    }
    print(2);
}`)
	g := p.Funcs["main"]

	var plain, withCD bytes.Buffer
	if err := g.WriteDOT(&plain, false); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteDOT(&withCD, true); err != nil {
		t.Fatal(err)
	}

	const golden = `digraph cfg_main {
  node [fontname="monospace", fontsize=10];
  n0 [label="ENTRY", shape=ellipse];
  n1 [label="EXIT", shape=ellipse];
  n2 [label="S1 var x = read();", shape=box];
  n3 [label="S2 if (x > 0)", shape=diamond];
  n4 [label="S3 print(1);", shape=box];
  n5 [label="S4 print(2);", shape=box];
  n0 -> n2;
  n2 -> n3;
  n3 -> n4 [label="T"];
  n3 -> n5 [label="F"];
  n4 -> n5;
  n5 -> n1;
}
`
	if plain.String() != golden {
		t.Errorf("plain DOT differs from golden:\n got:\n%s\nwant:\n%s", plain.String(), golden)
	}

	// The CD overlay adds exactly one dashed edge: print(1) is control
	// dependent on the if.
	const cdEdge = `  n4 -> n3 [style=dashed, color=gray, label="cd/T"];`
	if !bytes.Contains(withCD.Bytes(), []byte(cdEdge)) {
		t.Errorf("withCD DOT missing %q:\n%s", cdEdge, withCD.String())
	}
	if !bytes.HasPrefix(withCD.Bytes(), []byte(golden[:len(golden)-2])) {
		t.Errorf("withCD DOT does not extend the plain rendering:\n%s", withCD.String())
	}
}
