package cfg

import (
	"strings"
	"testing"

	"eol/internal/lang/ast"
	"eol/internal/lang/parser"
	"eol/internal/lang/sem"
)

func compile(t *testing.T, src string) (*sem.Info, *Program) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	p, err := Build(info)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return info, p
}

// stmtIDByText finds the first numbered statement whose rendering contains
// the fragment.
func stmtIDByText(t *testing.T, info *sem.Info, frag string) int {
	t.Helper()
	for _, s := range info.Stmts {
		if contains(ast.StmtString(s), frag) {
			return s.ID()
		}
	}
	t.Fatalf("no statement containing %q", frag)
	return 0
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

const ifSrc = `
func main() {
    var x = read();
    var y = 0;
    if (x > 0) {
        y = 1;
    } else {
        y = 2;
    }
    print(y);
}`

func TestIfControlDependence(t *testing.T) {
	info, p := compile(t, ifSrc)
	condID := stmtIDByText(t, info, "if (x > 0)")
	then := stmtIDByText(t, info, "y = 1")
	els := stmtIDByText(t, info, "y = 2")
	pr := stmtIDByText(t, info, "print(y)")

	g := p.Funcs["main"]
	wantCD := func(s int, label Label) {
		t.Helper()
		for _, cd := range g.NodeOf(s).CD {
			if cd.P.StmtID() == condID && cd.Label == label {
				return
			}
		}
		t.Errorf("S%d: want control dependence on S%d/%s, have %v", s, condID, label, g.NodeOf(s).CD)
	}
	wantCD(then, True)
	wantCD(els, False)
	if len(g.NodeOf(pr).CD) != 0 {
		t.Errorf("print(y) should have no control dependence, got %v", g.NodeOf(pr).CD)
	}
	if len(g.NodeOf(condID).CD) != 0 {
		t.Errorf("if-cond should have no control dependence, got %v", g.NodeOf(condID).CD)
	}
}

const whileSrc = `
func main() {
    var i = 0;
    while (i < 10) {
        i = i + 1;
    }
    print(i);
}`

func TestWhileSelfDependence(t *testing.T) {
	info, p := compile(t, whileSrc)
	cond := stmtIDByText(t, info, "while (i < 10)")
	body := stmtIDByText(t, info, "i = i + 1")
	pr := stmtIDByText(t, info, "print(i)")
	g := p.Funcs["main"]

	// Loop predicates are control dependent on themselves (FOW).
	selfDep := false
	for _, cd := range g.NodeOf(cond).CD {
		if cd.P.StmtID() == cond && cd.Label == True {
			selfDep = true
		}
	}
	if !selfDep {
		t.Errorf("while-cond should be control dependent on itself via T, got %v", g.NodeOf(cond).CD)
	}
	if !p.IsControlDependentOn(body, cond) {
		t.Errorf("loop body should be control dependent on the loop predicate")
	}
	if p.IsControlDependentOn(pr, cond) {
		t.Errorf("statement after loop must not be control dependent on the loop predicate")
	}
}

const breakSrc = `
func main() {
    var i = 0;
    while (i < 10) {
        if (i == 5) {
            break;
        }
        i = i + 1;
    }
    print(i);
}`

func TestBreakControlDependence(t *testing.T) {
	info, p := compile(t, breakSrc)
	wcond := stmtIDByText(t, info, "while (i < 10)")
	icond := stmtIDByText(t, info, "if (i == 5)")
	brk := stmtIDByText(t, info, "break")
	inc := stmtIDByText(t, info, "i = i + 1")
	g := p.Funcs["main"]
	_ = g

	if !p.IsControlDependentOn(brk, icond) {
		t.Errorf("break should be control dependent on the if")
	}
	if !p.IsControlDependentOn(inc, icond) {
		t.Errorf("i=i+1 should be control dependent on the if (False branch)")
	}
	// Because of the break, the while condition's re-execution is control
	// dependent on the inner if.
	if !p.IsControlDependentOn(wcond, icond) {
		t.Errorf("loop predicate should be control dependent on the breaking if")
	}
}

const forSrc = `
func main() {
    var s = 0;
    for (var i = 0; i < 4; i++) {
        if (i == 2) { continue; }
        s += i;
    }
    print(s);
}`

func TestForCFGShape(t *testing.T) {
	info, p := compile(t, forSrc)
	fcond := stmtIDByText(t, info, "for (")
	post := 0
	// The post statement renders as "i += 1;".
	for _, s := range info.Stmts {
		if ast.StmtString(s) == "i += 1;" {
			post = s.ID()
		}
	}
	if post == 0 {
		t.Fatal("post statement not found")
	}
	g := p.Funcs["main"]
	// Post must flow back to the for-cond.
	found := false
	for _, e := range g.NodeOf(post).Succs {
		if e.To.StmtID() == fcond {
			found = true
		}
	}
	if !found {
		t.Errorf("post statement should have an edge to the for condition")
	}
	// continue must flow to the post statement.
	cont := stmtIDByText(t, info, "continue")
	found = false
	for _, e := range g.NodeOf(cont).Succs {
		if e.To.StmtID() == post {
			found = true
		}
	}
	if !found {
		t.Errorf("continue should have an edge to the post statement, got %v", g.NodeOf(cont).Succs)
	}
	if !p.IsControlDependentOn(post, fcond) {
		t.Errorf("post statement should be control dependent on the for predicate")
	}
}

func TestInfiniteLoopRejected(t *testing.T) {
	// A for-loop without a condition and without break can never reach
	// the function exit in the static CFG. (A while(1) loop still has a
	// static False edge, so it is accepted.)
	src := `func main() { for (;;) { var x = 1; } }`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	if _, err := Build(info); err == nil {
		t.Fatal("Build should reject a loop that cannot reach the function exit")
	}
}

func TestWhileOneWithBreakAccepted(t *testing.T) {
	src := `func main() { var i = 0; while (1) { i++; if (i > 3) { break; } } print(i); }`
	compile(t, src)
}

// TestPostDominanceProperties checks reflexivity/antisymmetry of the
// post-dominator tree and that Exit post-dominates everything.
func TestPostDominanceProperties(t *testing.T) {
	srcs := []string{ifSrc, whileSrc, breakSrc, forSrc}
	for _, src := range srcs {
		_, p := compile(t, src)
		g := p.Funcs["main"]
		for _, n := range g.Nodes {
			if !PostDominates(n, n) {
				t.Errorf("PostDominates not reflexive at %s", n)
			}
			if !PostDominates(g.Exit, n) {
				t.Errorf("Exit should post-dominate %s", n)
			}
			if n != g.Exit && PostDominates(n, g.Exit) {
				t.Errorf("%s must not post-dominate Exit", n)
			}
		}
		// Every non-exit node's IPDom chain terminates at Exit without
		// cycles.
		for _, n := range g.Nodes {
			seen := map[*Node]bool{}
			for m := n; m != nil && m != g.Exit; m = m.IPDom {
				if seen[m] {
					t.Fatalf("IPDom cycle at %s", m)
				}
				seen[m] = true
			}
		}
	}
}

// TestNestedCD: statements in doubly nested branches are directly control
// dependent only on the innermost predicate.
func TestNestedCD(t *testing.T) {
	src := `
func main() {
    var a = read();
    var b = read();
    if (a) {
        if (b) {
            print(1);
        }
    }
    print(2);
}`
	info, p := compile(t, src)
	outer := stmtIDByText(t, info, "if (a)")
	inner := stmtIDByText(t, info, "if (b)")
	p1 := stmtIDByText(t, info, "print(1)")
	p2 := stmtIDByText(t, info, "print(2)")

	if !p.IsControlDependentOn(p1, inner) {
		t.Errorf("print(1) should depend on inner if")
	}
	if p.IsControlDependentOn(p1, outer) {
		t.Errorf("print(1) should NOT directly depend on outer if")
	}
	if !p.IsControlDependentOn(inner, outer) {
		t.Errorf("inner if should depend on outer if")
	}
	if cds := p.ControlDeps(p2); len(cds) != 0 {
		t.Errorf("print(2) should have no control deps, got %v", cds)
	}
}

func TestWriteDOT(t *testing.T) {
	_, p := compile(t, breakSrc)
	g := p.Funcs["main"]
	var sb strings.Builder
	if err := g.WriteDOT(&sb, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph cfg_main {",
		"ENTRY", "EXIT",
		"shape=diamond", // predicates
		`[label="T"]`,   // labeled branch edge
		"style=dashed",  // CD annotation
		"while (i < 10)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Without CD annotations there are no dashed edges.
	sb.Reset()
	if err := g.WriteDOT(&sb, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "style=dashed") {
		t.Error("CD edges rendered despite withCD=false")
	}
}
