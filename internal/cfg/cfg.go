// Package cfg builds per-function control-flow graphs for MiniC and
// computes post-dominators and control dependence.
//
// The graphs are at statement granularity: one node per numbered
// statement, plus synthetic Entry and Exit nodes per function. Predicate
// nodes (if/while/for) have True/False labeled out-edges. Control
// dependence follows Ferrante-Ottenstein-Warren: node n is control
// dependent on edge (p, L) iff n post-dominates the L-successor of p but
// does not strictly post-dominate p.
//
// These control-dependence sets drive three things downstream:
//
//   - the interpreter's dynamic control-dependence stack (which yields the
//     region decomposition of Definition 3 of the PLDI 2007 paper),
//   - static potential-dependence computation for relevant slicing
//     (Definition 1), and
//   - the structural checks of the execution alignment algorithm.
package cfg

import (
	"fmt"

	"eol/internal/lang/ast"
	"eol/internal/lang/sem"
)

// Label classifies CFG edges.
type Label int

// Edge labels. Unlabeled edges are fall-through; True/False label the two
// out-edges of predicate nodes.
const (
	None Label = iota
	True
	False
)

// String names the label.
func (l Label) String() string {
	switch l {
	case True:
		return "T"
	case False:
		return "F"
	}
	return "-"
}

// Negate flips True and False; None negates to None.
func (l Label) Negate() Label {
	switch l {
	case True:
		return False
	case False:
		return True
	}
	return None
}

// Node is a CFG node.
type Node struct {
	Idx   int          // dense index within the function graph
	Stmt  ast.Numbered // nil for Entry and Exit
	Succs []Edge
	Preds []Edge

	// IPDom is the immediate post-dominator, nil only for Exit.
	IPDom *Node

	// CD lists the (predicate, label) pairs this node is control
	// dependent on.
	CD []CDep
}

// StmtID returns the statement ID of the node, or 0 for Entry/Exit.
func (n *Node) StmtID() int {
	if n.Stmt == nil {
		return 0
	}
	return n.Stmt.ID()
}

// IsPredicate reports whether the node is a branching statement.
func (n *Node) IsPredicate() bool {
	return n.Stmt != nil && ast.IsPredicate(n.Stmt)
}

// String renders the node for diagnostics.
func (n *Node) String() string {
	if n.Stmt == nil {
		return fmt.Sprintf("#%d", n.Idx)
	}
	return fmt.Sprintf("S%d", n.Stmt.ID())
}

// Edge is a labeled CFG edge.
type Edge struct {
	To    *Node
	Label Label
}

// CDep records one control dependence: on predicate P via branch Label.
type CDep struct {
	P     *Node
	Label Label
}

// Graph is the CFG of one function.
type Graph struct {
	Fn     *sem.FuncInfo
	Entry  *Node
	Exit   *Node
	Nodes  []*Node       // all nodes incl. Entry (index 0) and Exit (index 1)
	ByStmt map[int]*Node // statement ID -> node

	// CDKids maps a predicate statement ID to the statement IDs control
	// dependent on it, per branch label. Inverse of Node.CD, restricted
	// to real statements.
	CDKids map[int]map[Label][]int
}

// NodeOf returns the node for statement id, or nil.
func (g *Graph) NodeOf(id int) *Node { return g.ByStmt[id] }

// Program holds the CFGs of all functions of a MiniC program.
type Program struct {
	Info  *sem.Info
	Funcs map[string]*Graph
}

// GraphOf returns the CFG of the function containing statement id, or nil
// for global declarations.
func (p *Program) GraphOf(id int) *Graph {
	fi := p.Info.StmtFunc[id]
	if fi == nil {
		return nil
	}
	return p.Funcs[fi.Name]
}

// NodeOf returns the CFG node of statement id, or nil for globals.
func (p *Program) NodeOf(id int) *Node {
	g := p.GraphOf(id)
	if g == nil {
		return nil
	}
	return g.NodeOf(id)
}

// ControlDeps returns the set of (predicate stmt ID, label) pairs that
// statement id is directly control dependent on. Empty for top-level
// statements and globals.
func (p *Program) ControlDeps(id int) []CDep {
	n := p.NodeOf(id)
	if n == nil {
		return nil
	}
	return n.CD
}

// IsControlDependentOn reports whether stmt s is directly control
// dependent on predicate p (either branch).
func (p *Program) IsControlDependentOn(s, pred int) bool {
	for _, cd := range p.ControlDeps(s) {
		if cd.P.StmtID() == pred {
			return true
		}
	}
	return false
}

// Build constructs CFGs for every function in info and computes
// post-dominators and control dependence. It returns an error if some
// statement cannot reach the function exit (a statically infinite loop),
// because post-dominance would be undefined there.
func Build(info *sem.Info) (*Program, error) {
	p := &Program{Info: info, Funcs: map[string]*Graph{}}
	for name, fi := range info.Funcs {
		g, err := buildFunc(fi)
		if err != nil {
			return nil, fmt.Errorf("function %s: %w", name, err)
		}
		if err := analyze(g); err != nil {
			return nil, fmt.Errorf("function %s: %w", name, err)
		}
		p.Funcs[name] = g
	}
	return p, nil
}

// MustBuild panics on error; for tests and embedded benchmark programs.
func MustBuild(info *sem.Info) *Program {
	p, err := Build(info)
	if err != nil {
		panic(fmt.Sprintf("cfg.MustBuild: %v", err))
	}
	return p
}

// ---------------------------------------------------------------------------
// Construction

type builder struct {
	g *Graph
	// loop context for break/continue
	breakTargets    []*pending
	continueTargets []*pending
}

// pending is a set of dangling edges waiting for their target node.
type pending struct {
	edges []*danglingEdge
}

type danglingEdge struct {
	from  *Node
	label Label
}

func (p *pending) add(from *Node, label Label) {
	p.edges = append(p.edges, &danglingEdge{from: from, label: label})
}

func (p *pending) merge(q *pending) {
	p.edges = append(p.edges, q.edges...)
}

func (p *pending) connect(to *Node) {
	for _, e := range p.edges {
		addEdge(e.from, to, e.label)
	}
	p.edges = nil
}

func addEdge(from, to *Node, label Label) {
	from.Succs = append(from.Succs, Edge{To: to, Label: label})
	to.Preds = append(to.Preds, Edge{To: from, Label: label})
}

func (b *builder) newNode(s ast.Numbered) *Node {
	n := &Node{Idx: len(b.g.Nodes), Stmt: s}
	b.g.Nodes = append(b.g.Nodes, n)
	if s != nil {
		b.g.ByStmt[s.ID()] = n
	}
	return n
}

func buildFunc(fi *sem.FuncInfo) (*Graph, error) {
	g := &Graph{Fn: fi, ByStmt: map[int]*Node{}, CDKids: map[int]map[Label][]int{}}
	b := &builder{g: g}
	g.Entry = b.newNode(nil)
	g.Exit = b.newNode(nil)

	frontier := &pending{}
	frontier.add(g.Entry, None)
	frontier = b.buildBlock(fi.Decl.Body, frontier)
	frontier.connect(g.Exit) // implicit return at end of body
	return g, nil
}

// buildBlock threads the frontier through the statements of a block and
// returns the new frontier.
func (b *builder) buildBlock(blk *ast.BlockStmt, frontier *pending) *pending {
	for _, s := range blk.Stmts {
		frontier = b.buildStmt(s, frontier)
	}
	return frontier
}

func (b *builder) buildStmt(s ast.Stmt, frontier *pending) *pending {
	switch n := s.(type) {
	case *ast.BlockStmt:
		return b.buildBlock(n, frontier)

	case *ast.VarDeclStmt, *ast.AssignStmt, *ast.ExprStmt, *ast.PrintStmt:
		node := b.newNode(s.(ast.Numbered))
		frontier.connect(node)
		out := &pending{}
		out.add(node, None)
		return out

	case *ast.ReturnStmt:
		node := b.newNode(n)
		frontier.connect(node)
		addEdge(node, b.g.Exit, None)
		return &pending{} // nothing falls through

	case *ast.BreakStmt:
		node := b.newNode(n)
		frontier.connect(node)
		if len(b.breakTargets) > 0 {
			b.breakTargets[len(b.breakTargets)-1].add(node, None)
		}
		return &pending{}

	case *ast.ContinueStmt:
		node := b.newNode(n)
		frontier.connect(node)
		if len(b.continueTargets) > 0 {
			b.continueTargets[len(b.continueTargets)-1].add(node, None)
		}
		return &pending{}

	case *ast.IfStmt:
		cond := b.newNode(n)
		frontier.connect(cond)
		out := &pending{}

		thenIn := &pending{}
		thenIn.add(cond, True)
		thenOut := b.buildBlock(n.Then, thenIn)
		out.merge(thenOut)

		if n.Else != nil {
			elseIn := &pending{}
			elseIn.add(cond, False)
			elseOut := b.buildStmt(n.Else, elseIn)
			out.merge(elseOut)
		} else {
			out.add(cond, False)
		}
		return out

	case *ast.WhileStmt:
		cond := b.newNode(n)
		frontier.connect(cond)

		brk := &pending{}
		cont := &pending{}
		b.breakTargets = append(b.breakTargets, brk)
		b.continueTargets = append(b.continueTargets, cont)

		bodyIn := &pending{}
		bodyIn.add(cond, True)
		bodyOut := b.buildBlock(n.Body, bodyIn)
		bodyOut.connect(cond)
		cont.connect(cond)

		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]

		out := &pending{}
		out.add(cond, False)
		out.merge(brk)
		return out

	case *ast.ForStmt:
		if n.Init != nil {
			frontier = b.buildStmt(n.Init, frontier)
		}
		cond := b.newNode(n)
		frontier.connect(cond)

		brk := &pending{}
		cont := &pending{}
		b.breakTargets = append(b.breakTargets, brk)
		b.continueTargets = append(b.continueTargets, cont)

		bodyIn := &pending{}
		bodyIn.add(cond, True)
		bodyOut := b.buildBlock(n.Body, bodyIn)

		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]

		if n.Post != nil {
			bodyOut.merge(cont)
			postOut := b.buildStmt(n.Post, bodyOut)
			postOut.connect(cond)
		} else {
			bodyOut.connect(cond)
			cont.connect(cond)
		}

		out := &pending{}
		if n.Cond != nil {
			out.add(cond, False)
		}
		out.merge(brk)
		return out
	}
	panic(fmt.Sprintf("cfg: unexpected statement %T", s))
}

// ---------------------------------------------------------------------------
// Post-dominators and control dependence

// analyze computes IPDom and CD for every node of g.
func analyze(g *Graph) error {
	// Check every node reaches Exit (otherwise post-dominance is undefined).
	reach := make([]bool, len(g.Nodes))
	var stack []*Node
	stack = append(stack, g.Exit)
	reach[g.Exit.Idx] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Preds {
			if !reach[e.To.Idx] {
				reach[e.To.Idx] = true
				stack = append(stack, e.To)
			}
		}
	}
	for _, n := range g.Nodes {
		if !reach[n.Idx] && n != g.Exit {
			if n.Stmt != nil {
				return fmt.Errorf("statement S%d (%s) cannot reach function exit (infinite loop?)",
					n.Stmt.ID(), ast.StmtString(n.Stmt))
			}
			return fmt.Errorf("unreachable exit from node %s", n)
		}
	}

	computeIPDom(g)

	// FOW control dependence: for each labeled edge (p -> t, L) where p
	// branches, walk the post-dominator tree from t up to (excluding)
	// IPDom(p), marking every visited node control dependent on (p, L).
	for _, p := range g.Nodes {
		if len(p.Succs) < 2 {
			continue
		}
		for _, e := range p.Succs {
			runner := e.To
			for runner != nil && runner != p.IPDom {
				runner.CD = append(runner.CD, CDep{P: p, Label: e.Label})
				runner = runner.IPDom
			}
		}
	}
	// Deduplicate CD entries (a node can be reached from both branches of
	// p only if it equals IPDom(p), so duplicates are rare but possible
	// through multi-edge merges).
	for _, n := range g.Nodes {
		seen := map[CDep]bool{}
		var uniq []CDep
		for _, cd := range n.CD {
			if !seen[cd] {
				seen[cd] = true
				uniq = append(uniq, cd)
			}
		}
		n.CD = uniq
	}

	// Forward index, statements only.
	for _, n := range g.Nodes {
		if n.Stmt == nil {
			continue
		}
		for _, cd := range n.CD {
			pid := cd.P.StmtID()
			if pid == 0 {
				continue
			}
			m := g.CDKids[pid]
			if m == nil {
				m = map[Label][]int{}
				g.CDKids[pid] = m
			}
			m[cd.Label] = append(m[cd.Label], n.Stmt.ID())
		}
	}
	return nil
}

// computeIPDom runs the Cooper-Harvey-Kennedy iterative dominator
// algorithm on the reverse CFG rooted at Exit.
func computeIPDom(g *Graph) {
	// Reverse postorder on the reverse graph (successors = Preds).
	order := make([]*Node, 0, len(g.Nodes))
	visited := make([]bool, len(g.Nodes))
	var dfs func(n *Node)
	dfs = func(n *Node) {
		visited[n.Idx] = true
		for _, e := range n.Preds {
			if !visited[e.To.Idx] {
				dfs(e.To)
			}
		}
		order = append(order, n) // postorder
	}
	dfs(g.Exit)
	// order is postorder; reverse it for RPO.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, len(g.Nodes))
	for i, n := range order {
		rpoNum[n.Idx] = i
	}

	idom := make([]*Node, len(g.Nodes))
	idom[g.Exit.Idx] = g.Exit

	intersect := func(a, b *Node) *Node {
		for a != b {
			for rpoNum[a.Idx] > rpoNum[b.Idx] {
				a = idom[a.Idx]
			}
			for rpoNum[b.Idx] > rpoNum[a.Idx] {
				b = idom[b.Idx]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, n := range order {
			if n == g.Exit {
				continue
			}
			// predecessors in the reverse graph = CFG successors
			var newIdom *Node
			for _, e := range n.Succs {
				s := e.To
				if idom[s.Idx] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = s
				} else {
					newIdom = intersect(newIdom, s)
				}
			}
			if newIdom != nil && idom[n.Idx] != newIdom {
				idom[n.Idx] = newIdom
				changed = true
			}
		}
	}

	for _, n := range g.Nodes {
		if n == g.Exit {
			n.IPDom = nil
			continue
		}
		n.IPDom = idom[n.Idx]
	}
}

// PostDominates reports whether a post-dominates b in graph g (reflexive).
func PostDominates(a, b *Node) bool {
	for n := b; n != nil; n = n.IPDom {
		if n == a {
			return true
		}
		if n.IPDom == n {
			break
		}
	}
	return false
}
