package trace

import "testing"

// buildLazyBase constructs a finished lazy trace shaped like an
// interpreter run: properly nested regions, an open loop chain at the
// end (entry 5 still open when the trace is cut).
//
//	0 (root)
//	├── 1
//	│   └── 2
//	└── 3
//	4 (root, predicate)
//	└── 5 (open at any cut ≥ 6)
//	    └── 6
func buildLazyBase() *Trace {
	t := NewLazy()
	t.Append(Entry{Inst: Instance{Stmt: 1, Occ: 1}, Parent: -1})
	t.Append(Entry{Inst: Instance{Stmt: 2, Occ: 1}, Parent: 0})
	t.Append(Entry{Inst: Instance{Stmt: 3, Occ: 1}, Parent: 1})
	t.Append(Entry{Inst: Instance{Stmt: 2, Occ: 2}, Parent: 0})
	t.Append(Entry{Inst: Instance{Stmt: 4, Occ: 1}, Parent: -1})
	t.Append(Entry{Inst: Instance{Stmt: 5, Occ: 1}, Parent: 4})
	t.Append(Entry{Inst: Instance{Stmt: 6, Occ: 1}, Parent: 5})
	t.Finish()
	return t
}

func TestLazyMatchesEager(t *testing.T) {
	lz := buildLazyBase()
	if lz.Len() != 7 {
		t.Fatalf("len = %d", lz.Len())
	}
	if got := lz.Roots(); len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Errorf("roots = %v", got)
	}
	if got := lz.Children(0); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("children(0) = %v", got)
	}
	if got := lz.FindInstance(Instance{Stmt: 2, Occ: 2}); got != 3 {
		t.Errorf("FindInstance = %d", got)
	}
	if got := lz.Occurrences(2); got != 2 {
		t.Errorf("Occurrences(2) = %d", got)
	}
	if got := lz.InstancesOf(2); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("InstancesOf(2) = %v", got)
	}
}

// TestLazyForkSeededAncestry pins the seeded interval path: a fork of a
// lazy base with a prebuilt ancestry must answer every IsAncestor pair
// exactly like the parent-chain walk, including pairs that mix prefix
// and suffix entries and the re-extended open chain (4 → 5).
func TestLazyForkSeededAncestry(t *testing.T) {
	base := buildLazyBase()
	base.Ancestry() // interval mode: fork will seed from this

	f := base.PrefixAt(6).Fork()
	if f.baseAnc == nil {
		t.Fatal("fork did not capture the base ancestry seed")
	}
	// Suffix: the switched run closes 5's region after one more child
	// and continues with a new root region.
	f.Append(Entry{Inst: Instance{Stmt: 7, Occ: 1}, Parent: 5})
	f.Append(Entry{Inst: Instance{Stmt: 8, Occ: 1}, Parent: -1})
	f.Append(Entry{Inst: Instance{Stmt: 9, Occ: 1}, Parent: 7})
	f.Finish()

	anc := f.Ancestry()
	if anc.in != nil {
		t.Fatal("seeded ancestry must be interval-mode")
	}
	for a := 0; a < f.Len(); a++ {
		for b := 0; b < f.Len(); b++ {
			if got, want := anc.IsAncestor(a, b), f.IsAncestor(a, b); got != want {
				t.Errorf("IsAncestor(%d,%d) = %v, want %v", a, b, got, want)
			}
		}
	}
}

// TestLazyForkPrefixQueries pins the two-level children and instance
// resolution of a finished lazy fork.
func TestLazyForkPrefixQueries(t *testing.T) {
	base := buildLazyBase()
	f := base.PrefixAt(6).Fork()
	f.Append(Entry{Inst: Instance{Stmt: 6, Occ: 1}, Parent: 5})
	f.Append(Entry{Inst: Instance{Stmt: 3, Occ: 2}, Parent: -1})
	f.Finish()

	// Prefix row served from the prototype; parent 5 gained a suffix
	// child through the override map.
	if got := f.Children(0); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("children(0) = %v", got)
	}
	if got := f.Children(5); len(got) != 1 || got[0] != 6 {
		t.Errorf("children(5) = %v", got)
	}
	if got := f.Roots(); len(got) != 3 || got[2] != 7 {
		t.Errorf("roots = %v", got)
	}
	// Instance inside the cut resolves through the base rows; the
	// occurrence past the cut resolves through the suffix rows; the
	// base's own entry 6 (beyond the cut) must not leak in.
	if got := f.FindInstance(Instance{Stmt: 2, Occ: 2}); got != 3 {
		t.Errorf("FindInstance(S2#2) = %d", got)
	}
	if got := f.FindInstance(Instance{Stmt: 6, Occ: 1}); got != 6 {
		t.Errorf("FindInstance(S6#1) = %d", got)
	}
	if got := f.Occurrences(3); got != 2 {
		t.Errorf("Occurrences(3) = %d", got)
	}
	if got := f.InstancesOf(3); len(got) != 2 || got[0] != 2 || got[1] != 7 {
		t.Errorf("InstancesOf(3) = %v", got)
	}
}
