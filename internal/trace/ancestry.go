package trace

// Ancestry is an ancestor index over the region forest, answering
// ancestor queries in O(1). Loop iterations nest (each re-evaluation of a
// loop predicate is a child of the previous one), so the naive
// parent-chain walk is O(iterations); analyses that test many pairs use
// this index instead.
//
// Interpreter traces are a preorder walk of the region forest — every
// region is a contiguous interval of trace indices — so the common
// representation is just the interval ends (in[i] is the entry index
// itself). Hand-built forests that violate proper nesting fall back to a
// full Euler-tour DFS over the children rows.
type Ancestry struct {
	in  []int // nil in interval mode, where in[i] == i
	out []int
}

// Ancestry builds (or returns the cached) ancestor index. The trace must
// not be appended to afterwards.
func (t *Trace) Ancestry() *Ancestry {
	t.ensureFinished()
	n := t.Len()
	if t.anc != nil && len(t.anc.out) == n {
		return t.anc
	}

	// Forks of a lazy base whose ancestry is already in interval mode
	// seed from it: a prefix interval wholly inside the cut keeps its
	// end; one still open at the cut spans exactly [i, cut) here (while
	// open, everything appended is its descendant), so its end clamps
	// to the cut and the suffix pass below re-extends the open chain.
	// The fork's suffix comes from the interpreter, which emits properly
	// nested regions, so the nesting re-check is not needed.
	if t.baseAnc != nil {
		nb := len(t.base)
		out := make([]int, n)
		copy(out, t.baseAnc.out[:nb])
		for i, v := range out[:nb] {
			if v > nb {
				out[i] = nb
			}
		}
		var ext []int
		for i := n - 1; i >= nb; i-- {
			if out[i] < i+1 {
				out[i] = i + 1
			}
			if p := t.At(i).Parent; p >= 0 && out[p] < out[i] {
				if p < nb {
					ext = append(ext, p)
				}
				out[p] = out[i]
			}
		}
		// Propagate the extensions up the (prefix) parent chains of the
		// open-at-cut ancestors.
		for _, p := range ext {
			for q := t.At(p).Parent; q >= 0 && out[q] < out[p]; q = t.At(q).Parent {
				out[q] = out[p]
				p = q
			}
		}
		t.anc = &Ancestry{out: out}
		return t.anc
	}

	// Interval pass: out[i] is one past the last descendant of i,
	// computed bottom-up (children precede their parent in the reverse
	// scan, so out[p] accumulates the max over its subtree).
	out := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		if out[i] < i+1 {
			out[i] = i + 1
		}
		if p := t.At(i).Parent; p >= 0 && out[p] < out[i] {
			out[p] = out[i]
		}
	}
	// The intervals are the ancestor relation iff the forest is properly
	// nested in trace order: each entry's parent must be the innermost
	// still-open interval. One forward pass with an open-interval stack
	// verifies that; interpreter traces always pass.
	nested := true
	var open []int
	for i := 0; i < n && nested; i++ {
		for len(open) > 0 && out[open[len(open)-1]] == i {
			open = open[:len(open)-1]
		}
		if p := t.At(i).Parent; len(open) == 0 {
			nested = p < 0
		} else {
			nested = p == open[len(open)-1]
		}
		open = append(open, i)
	}
	if nested {
		t.anc = &Ancestry{out: out}
		return t.anc
	}

	// General forest: Euler-tour DFS over the children rows.
	a := &Ancestry{in: make([]int, n), out: out}
	clock := 0
	type item struct {
		idx   int
		child int
	}
	var stack []item
	push := func(i int) {
		a.in[i] = clock
		clock++
		stack = append(stack, item{idx: i})
	}
	for _, r := range t.Roots() {
		push(r)
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			kids := t.Children(top.idx)
			if top.child < len(kids) {
				c := kids[top.child]
				top.child++
				push(c)
				continue
			}
			a.out[top.idx] = clock
			clock++
			stack = stack[:len(stack)-1]
		}
	}
	t.anc = a
	return a
}

// IsAncestor reports whether x is an ancestor of y in the region forest
// (reflexive).
func (a *Ancestry) IsAncestor(x, y int) bool {
	if a.in == nil {
		return x <= y && y < a.out[x]
	}
	return a.in[x] <= a.in[y] && a.out[y] <= a.out[x]
}
