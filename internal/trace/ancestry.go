package trace

// Ancestry is an Euler-tour index over the region forest, answering
// ancestor queries in O(1). Loop iterations nest (each re-evaluation of a
// loop predicate is a child of the previous one), so the naive
// parent-chain walk is O(iterations); analyses that test many pairs use
// this index instead.
type Ancestry struct {
	in, out []int
}

// Ancestry builds (or returns the cached) ancestor index. The trace must
// not be appended to afterwards.
func (t *Trace) Ancestry() *Ancestry {
	if t.anc != nil && len(t.anc.in) == t.Len() {
		return t.anc
	}
	a := &Ancestry{in: make([]int, t.Len()), out: make([]int, t.Len())}
	clock := 0
	// Iterative DFS over the forest, children in execution order.
	type item struct {
		idx   int
		child int
	}
	var stack []item
	push := func(i int) {
		a.in[i] = clock
		clock++
		stack = append(stack, item{idx: i})
	}
	for _, r := range t.rootsList {
		push(r)
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			kids := t.children[top.idx]
			if top.child < len(kids) {
				c := kids[top.child]
				top.child++
				push(c)
				continue
			}
			a.out[top.idx] = clock
			clock++
			stack = stack[:len(stack)-1]
		}
	}
	t.anc = a
	return a
}

// IsAncestor reports whether x is an ancestor of y in the region forest
// (reflexive).
func (a *Ancestry) IsAncestor(x, y int) bool {
	return a.in[x] <= a.in[y] && a.out[y] <= a.out[x]
}
