package trace

import (
	"testing"
	"testing/quick"
)

// buildTree constructs a small region forest:
//
//	0 (root)
//	├── 1
//	│   └── 2
//	└── 3
//	4 (root)
func buildTree() *Trace {
	t := New()
	t.Append(Entry{Inst: Instance{Stmt: 1, Occ: 1}, Parent: -1})
	t.Append(Entry{Inst: Instance{Stmt: 2, Occ: 1}, Parent: 0})
	t.Append(Entry{Inst: Instance{Stmt: 3, Occ: 1}, Parent: 1})
	t.Append(Entry{Inst: Instance{Stmt: 2, Occ: 2}, Parent: 0})
	t.Append(Entry{Inst: Instance{Stmt: 4, Occ: 1}, Parent: -1})
	return t
}

func TestTreeStructure(t *testing.T) {
	tr := buildTree()
	if tr.Len() != 5 {
		t.Fatalf("len = %d", tr.Len())
	}
	if got := tr.Roots(); len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Errorf("roots = %v", got)
	}
	if got := tr.Children(0); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("children(0) = %v", got)
	}
	if got := tr.Children(1); len(got) != 1 || got[0] != 2 {
		t.Errorf("children(1) = %v", got)
	}
	if got := tr.Children(4); len(got) != 0 {
		t.Errorf("children(4) = %v", got)
	}
}

func TestAncestorsAndDepth(t *testing.T) {
	tr := buildTree()
	cases := []struct {
		a, b int
		want bool
	}{
		{0, 0, true}, {0, 1, true}, {0, 2, true}, {0, 3, true},
		{1, 2, true}, {1, 3, false}, {0, 4, false}, {4, 0, false},
		{2, 1, false}, {3, 0, false},
	}
	anc := tr.Ancestry()
	for _, c := range cases {
		if got := tr.IsAncestor(c.a, c.b); got != c.want {
			t.Errorf("IsAncestor(%d,%d) = %v", c.a, c.b, got)
		}
		if got := anc.IsAncestor(c.a, c.b); got != c.want {
			t.Errorf("Ancestry.IsAncestor(%d,%d) = %v", c.a, c.b, got)
		}
	}
	if tr.RegionDepth(0) != 0 || tr.RegionDepth(2) != 2 || tr.RegionDepth(4) != 0 {
		t.Errorf("depths: %d %d %d", tr.RegionDepth(0), tr.RegionDepth(2), tr.RegionDepth(4))
	}
}

func TestInstanceLookup(t *testing.T) {
	tr := buildTree()
	if got := tr.FindInstance(Instance{Stmt: 2, Occ: 2}); got != 3 {
		t.Errorf("FindInstance = %d", got)
	}
	if got := tr.FindInstance(Instance{Stmt: 2, Occ: 3}); got != -1 {
		t.Errorf("missing instance = %d, want -1", got)
	}
	if got := tr.Occurrences(2); got != 2 {
		t.Errorf("Occurrences(2) = %d", got)
	}
	if got := tr.Occurrences(99); got != 0 {
		t.Errorf("Occurrences(99) = %d", got)
	}
	if got := tr.InstancesOf(2); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("InstancesOf(2) = %v", got)
	}
	if (Instance{Stmt: 15, Occ: 2}).String() != "S15#2" {
		t.Error("Instance render broken")
	}
}

func TestOutputs(t *testing.T) {
	tr := New()
	tr.Append(Entry{Inst: Instance{Stmt: 1, Occ: 1}, Parent: -1})
	tr.Outputs = append(tr.Outputs,
		Output{Seq: 0, Entry: 0, Arg: 0, Value: 10},
		Output{Seq: 1, Entry: 0, Arg: 1, Value: 20},
	)
	if o := tr.OutputAt(1); o == nil || o.Value != 20 {
		t.Errorf("OutputAt(1) = %v", o)
	}
	if tr.OutputAt(2) != nil || tr.OutputAt(-1) != nil {
		t.Error("out-of-range OutputAt must be nil")
	}
	if got := tr.OutputsOf(0); len(got) != 2 {
		t.Errorf("OutputsOf = %v", got)
	}
	if got := tr.OutputValues(); len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Errorf("OutputValues = %v", got)
	}
}

// TestAncestryAgreesWithWalk is a property test: the Euler-tour index
// must agree with the parent-chain walk on random forests.
func TestAncestryAgreesWithWalk(t *testing.T) {
	f := func(parents []uint8) bool {
		tr := New()
		for i, p := range parents {
			parent := int(p)%(i+1) - 1 // in [-1, i-1]
			tr.Append(Entry{Inst: Instance{Stmt: 1, Occ: i + 1}, Parent: parent})
		}
		if tr.Len() == 0 {
			return true
		}
		anc := tr.Ancestry()
		for a := 0; a < tr.Len(); a++ {
			for b := 0; b < tr.Len(); b++ {
				if anc.IsAncestor(a, b) != tr.IsAncestor(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	tr := buildTree()
	if tr.String() != "trace{5 entries, 0 outputs}" {
		t.Errorf("String = %q", tr.String())
	}
}
