package trace

import "sort"

// Lazily built traces: the optimized VM backend (internal/vm) appends
// tens of thousands of entries per run, and the eager per-append index
// maintenance — a children row append, an instance-map insert — is the
// dominant cost of trace construction. A lazy trace records entries
// only; Finish, called once when the run completes, materializes every
// derived index in flat exact-sized passes:
//
//   - children rows and the roots list are carved out of one shared
//     arena sized by a counting pass (no amortized-growth appends, no
//     per-parent small allocations),
//   - the instance index is a per-statement row table (rows[s][k] is
//     the trace index of S<s>#<start[s]+k>) instead of a hash map keyed
//     by Instance.
//
// Analyses observe identical results through the Trace accessors; the
// differential suite in internal/proptest pins the equivalence against
// eagerly built tree-walker traces. Querying a lazy trace before Finish
// (or appending after it) is a programming error and panics, which is
// also what makes the scheme race-free: Finish runs on the executing
// goroutine before the trace is ever shared.

// lazyRows is the instance index of a finished lazy trace, covering the
// owned suffix only (the whole trace when unforked). rows[s] lists the
// trace indices of statement s's instances in execution order; start[s]
// is the occurrence number of rows[s][0] (occurrence numbering continues
// across a fork's checkpoint cut, so start-1 is also the number of
// prefix instances whenever rows[s] is non-empty).
type lazyRows struct {
	rows  [][]int
	start []int32
}

// NewLazy creates an empty trace with deferred index maintenance:
// Append records the entry only, and the caller must invoke Finish once
// the run completes, before any index query. The eager New path remains
// the reference; this is the construction mode of the VM backend
// (docs/VM.md).
func NewLazy() *Trace {
	return &Trace{lazy: true}
}

// Reserve pre-allocates capacity for at least n further Append calls.
// The VM backend calls it on forked suffix traces, where the original
// run's length is a good estimate of the switched suffix; it is a pure
// capacity hint and never changes observable state.
func (t *Trace) Reserve(n int) {
	if free := cap(t.entries) - len(t.entries); n <= 0 || free >= n {
		return
	}
	grown := make([]Entry, len(t.entries), len(t.entries)+n)
	copy(grown, t.entries)
	t.entries = grown
}

// AppendSlot extends a lazy trace by one zero entry and returns it for
// in-place initialization, together with its index. This is the VM
// backend's emission path: filling a handful of integer fields in the
// slot skips the 100-byte entry copy (and its pointer write barriers)
// that Append pays. Slots inside reserved capacity are already zero —
// make and slice growth both hand out zeroed memory, and entries are
// never truncated — so extending the length is all it takes.
func (t *Trace) AppendSlot() (*Entry, int) {
	if !t.lazy {
		panic("trace: AppendSlot on an eager trace")
	}
	if t.own != nil {
		panic("trace: Append to a finished lazy trace")
	}
	idx := t.Len()
	if len(t.entries) < cap(t.entries) {
		t.entries = t.entries[:len(t.entries)+1]
	} else {
		t.entries = append(t.entries, Entry{})
	}
	e := &t.entries[len(t.entries)-1]
	e.Idx = idx
	return e, idx
}

// Finish materializes the derived indices of a lazily built trace. It
// must be called exactly once, on the goroutine that appended, after
// the last Append.
func (t *Trace) Finish() {
	if !t.lazy {
		return
	}
	if t.own != nil {
		panic("trace: Finish called twice on a lazy trace")
	}
	nb := len(t.base)
	n := len(t.entries)

	// Children and roots. Suffix-parent rows are carved from one arena
	// sized by a counting pass. On unforked traces that arena-backed
	// table IS the children index; on forked traces the prefix stays in
	// the Prefix's shared read-only prototype, with the handful of
	// prefix parents that gained suffix children (the control chain
	// open at the checkpoint cut) overridden in a sparse map — no
	// O(prefix) copy per fork.
	counts := make([]int32, n)
	roots, maxStmt := 0, 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.Parent < 0 {
			roots++
		} else if e.Parent >= nb {
			counts[e.Parent-nb]++
		}
		if e.Inst.Stmt > maxStmt {
			maxStmt = e.Inst.Stmt
		}
	}
	total := 0
	for _, c := range counts {
		total += int(c)
	}
	arena := make([]int, total)
	kids := make([][]int, n)
	cur := 0
	for p, c := range counts {
		if c > 0 {
			kids[p] = arena[cur:cur : cur+int(c)]
			cur += int(c)
		}
	}
	if roots > 0 {
		grown := make([]int, len(t.rootsList), len(t.rootsList)+roots)
		copy(grown, t.rootsList)
		t.rootsList = grown
	}
	for i := range t.entries {
		idx := nb + i
		switch p := t.entries[i].Parent; {
		case p < 0:
			t.rootsList = append(t.rootsList, idx)
		case p >= nb:
			kids[p-nb] = append(kids[p-nb], idx)
		default:
			// Suffix child of a prefix parent: start from the prototype
			// row (capacity-clipped, so this append reallocates a fresh
			// copy) and record the override.
			if t.childOver == nil {
				t.childOver = map[int][]int{}
			}
			row, ok := t.childOver[p]
			if !ok {
				row = t.baseChildren[p]
			}
			t.childOver[p] = append(row, idx)
		}
	}
	if nb > 0 {
		t.suffKids = kids
	} else {
		t.children = kids
	}

	// Instance rows, same counting-pass-then-carve shape.
	r := &lazyRows{
		rows:  make([][]int, maxStmt+1),
		start: make([]int32, maxStmt+1),
	}
	scounts := make([]int32, maxStmt+1)
	for i := range t.entries {
		scounts[t.entries[i].Inst.Stmt]++
	}
	total = 0
	for _, c := range scounts {
		total += int(c)
	}
	sarena := make([]int, total)
	cur = 0
	for s, c := range scounts {
		if c > 0 {
			r.rows[s] = sarena[cur:cur : cur+int(c)]
			cur += int(c)
		}
	}
	for i := range t.entries {
		e := &t.entries[i]
		s := e.Inst.Stmt
		if len(r.rows[s]) == 0 {
			r.start[s] = int32(e.Inst.Occ)
		}
		r.rows[s] = append(r.rows[s], nb+i)
	}
	t.own = r
}

// ensureFinished guards every index query on a lazy trace.
func (t *Trace) ensureFinished() {
	if t.lazy && t.own == nil {
		panic("trace: lazy trace queried before Finish")
	}
}

// findLazy is FindInstance for finished lazy traces: the suffix rows
// answer directly; an instance before the fork cut resolves through the
// base trace's rows, valid only inside the shared prefix (the base run
// continued past the cut, and those later instances did not necessarily
// execute here).
func (t *Trace) findLazy(inst Instance) int {
	t.ensureFinished()
	s := inst.Stmt
	if r := t.own; s >= 0 && s < len(r.rows) && len(r.rows[s]) > 0 {
		if inst.Occ >= int(r.start[s]) {
			if j := inst.Occ - int(r.start[s]); j < len(r.rows[s]) {
				return r.rows[s][j]
			}
			return -1
		}
	}
	if br := t.baseRows; br != nil && s >= 0 && s < len(br.rows) {
		row := br.rows[s]
		if j := inst.Occ - 1; j >= 0 && j < len(row) && row[j] < len(t.base) {
			return row[j]
		}
	}
	return -1
}

// occurrencesLazy is Occurrences for finished lazy traces.
func (t *Trace) occurrencesLazy(stmt int) int {
	t.ensureFinished()
	if r := t.own; stmt >= 0 && stmt < len(r.rows) && len(r.rows[stmt]) > 0 {
		// Occurrence numbering is contiguous across the fork cut, so the
		// suffix row's start pins the prefix count.
		return int(r.start[stmt]) - 1 + len(r.rows[stmt])
	}
	if br := t.baseRows; br != nil && stmt >= 0 && stmt < len(br.rows) {
		// Prefix-only statement: count the base instances inside the cut.
		return sort.SearchInts(br.rows[stmt], len(t.base))
	}
	return 0
}

// instancesLazy is InstancesOf for finished lazy traces. Unforked
// traces return their row directly (no allocation); forked traces
// stitch the prefix part of the base row to the suffix row.
func (t *Trace) instancesLazy(stmt int) []int {
	t.ensureFinished()
	if t.base == nil {
		if r := t.own; stmt >= 0 && stmt < len(r.rows) {
			return r.rows[stmt]
		}
		return nil
	}
	var res []int
	if br := t.baseRows; br != nil && stmt >= 0 && stmt < len(br.rows) {
		row := br.rows[stmt]
		cut := sort.SearchInts(row, len(t.base))
		res = row[:cut:cut]
	}
	if r := t.own; stmt >= 0 && stmt < len(r.rows) && len(r.rows[stmt]) > 0 {
		res = append(res, r.rows[stmt]...)
	}
	return res
}
