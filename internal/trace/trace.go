// Package trace defines the execution trace model produced by the MiniC
// interpreter and consumed by every dynamic analysis in this repository.
//
// A trace is a sequence of *entries*, one per executed statement instance,
// in execution order (the entry index doubles as the timestamp the paper's
// prototype attached to its dependence graph). Each entry records:
//
//   - its statement instance (statement ID, occurrence number),
//   - its dynamic control parent (the most recent open predicate instance
//     it is statically control dependent on, or the call-site instance for
//     the top level of a callee) — the parent relation *is* the region
//     decomposition of Definition 3 of the PLDI 2007 paper,
//   - the cells it read, each with the trace index of the defining entry
//     (dynamic data dependences),
//   - the cells it defined and the produced value,
//   - for predicates, the taken branch and whether it was forcibly
//     switched.
//
// Output events (printed int values) are recorded separately with their
// producing entry; they are the observations that confidence analysis and
// the strong-implicit-dependence check (Definition 4) work from.
//
// Entries are stored in up to two levels: a shared immutable prefix (set
// only on traces created by Prefix.Fork, which is how checkpointed
// re-execution shares the unswitched prefix of the failing run with every
// forked switched run — see docs/CHECKPOINT.md) and an owned suffix that
// Append extends. All accessors (At, Len, Children, FindInstance, ...)
// present the two levels as one contiguous trace.
package trace

import (
	"fmt"

	"eol/internal/cfg"
)

// NoDef marks a use whose value did not come from any traced definition
// (uninitialized cell, program input, or function return plumbing).
const NoDef = -1

// Instance identifies a statement instance: the Occ-th dynamic execution
// of statement Stmt. Occ is 1-based, matching the paper's "15(1)" style
// notation.
type Instance struct {
	Stmt int
	Occ  int
}

// String renders the instance in the paper's notation, e.g. "S15#2".
func (i Instance) String() string { return fmt.Sprintf("S%d#%d", i.Stmt, i.Occ) }

// UseRec records one dynamic use: the abstract location read and the
// trace index of the entry that defined the value (NoDef if none).
type UseRec struct {
	Sym  int   // symbol ID; RetvalSym for a consumed return value
	Elem int64 // array element index, or ScalarElem
	Def  int   // trace index of defining entry, or NoDef
	Val  int64 // the value read
}

// ScalarElem is the Elem value for scalar cells.
const ScalarElem int64 = -1

// RetvalSym is the pseudo symbol ID used for function return values.
const RetvalSym = -2

// DefRec records one dynamic definition: the abstract location written.
type DefRec struct {
	Sym  int
	Elem int64
}

// Entry is one executed statement instance.
type Entry struct {
	Idx    int      // == position in the trace (timestamp)
	Inst   Instance // statement instance
	Frame  int      // activation frame ID (0 = globals, 1 = main, ...)
	Parent int      // trace index of the dynamic control parent, or -1

	Uses []UseRec
	Defs []DefRec

	// Value is the primary value produced: assigned value for
	// assignments/declarations, branch outcome (0/1) for predicates,
	// returned value for returns.
	Value int64

	// Branch is the *effective* branch outcome for predicates (after any
	// forced switch); cfg.None for non-predicates.
	Branch cfg.Label

	// Switched marks the predicate instance whose outcome was forcibly
	// inverted in this run.
	Switched bool
}

// Output is one printed int value.
type Output struct {
	Seq   int // 0-based global output sequence number
	Entry int // producing trace entry index
	Arg   int // 0-based index among the int arguments of the print stmt
	Value int64
}

// Trace is a complete execution trace.
type Trace struct {
	// base is the shared immutable prefix: nil for traces built by New,
	// a capacity-clipped view of another trace's entries for traces built
	// by Prefix.Fork. It is never mutated and never appended to (the clip
	// forces any append to reallocate).
	base []Entry
	// entries is the owned suffix Append extends.
	entries []Entry
	Outputs []Output

	// children[i] lists the trace indices whose Parent == i, in order.
	// Roots (Parent == -1) are in rootsList. Unlike entries, children
	// covers base and suffix uniformly (fork pre-fills the prefix rows
	// with capacity-clipped cuts of the base trace's rows).
	children  [][]int
	rootsList []int

	// instIdx maps an Instance to its trace index (suffix entries only on
	// forked traces). baseIdx, set by Fork, is the *complete* base
	// trace's index; a hit is valid only when the index falls inside the
	// shared prefix.
	instIdx map[Instance]int
	baseIdx map[Instance]int

	// anc is the lazily built ancestor index; see Ancestry.
	anc *Ancestry

	// stmtInsts maps a statement ID to its instance trace indices in
	// execution order; built lazily by InstancesOf.
	stmtInsts map[int][]int

	// lazy marks a trace built with deferred index maintenance (NewLazy):
	// Append records entries only, and own — the per-statement instance
	// rows — doubles as the "Finish ran" marker. baseRows and
	// baseChildren, set by Fork on forks of a lazy base, are the base
	// trace's complete instance row table (a hit is valid only inside
	// the shared prefix) and the prefix's shared read-only children
	// prototype. Finish on such forks fills suffKids (children rows of
	// suffix parents, indexed by parent-nb) and childOver (the few
	// prefix parents whose rows gained suffix children) instead of
	// copying the prototype into a flat array. See lazy.go.
	// baseAnc, set by Fork when the lazy base already has an
	// interval-mode ancestry index, seeds this fork's Ancestry with the
	// base's interval ends instead of a full recomputation.
	baseAnc *Ancestry

	lazy         bool
	own          *lazyRows
	baseRows     *lazyRows
	baseChildren [][]int
	suffKids     [][]int
	childOver    map[int][]int
}

// InstancesOf returns the trace indices of all instances of statement id,
// in execution order. The index is built lazily on first call; the trace
// must not be appended to afterwards.
func (t *Trace) InstancesOf(stmt int) []int {
	if t.lazy {
		return t.instancesLazy(stmt)
	}
	if t.stmtInsts == nil {
		t.stmtInsts = map[int][]int{}
		for i := 0; i < t.Len(); i++ {
			s := t.At(i).Inst.Stmt
			t.stmtInsts[s] = append(t.stmtInsts[s], i)
		}
	}
	return t.stmtInsts[stmt]
}

// New creates an empty trace.
func New() *Trace {
	return &Trace{instIdx: map[Instance]int{}}
}

// Append adds an entry (with Parent already set) and maintains the
// derived indices. It returns the entry index.
func (t *Trace) Append(e Entry) int {
	e.Idx = t.Len()
	if t.lazy {
		if t.own != nil {
			panic("trace: Append to a finished lazy trace")
		}
		t.entries = append(t.entries, e)
		return e.Idx
	}
	t.entries = append(t.entries, e)
	t.children = append(t.children, nil)
	if e.Parent >= 0 {
		t.children[e.Parent] = append(t.children[e.Parent], e.Idx)
	} else {
		t.rootsList = append(t.rootsList, e.Idx)
	}
	t.instIdx[e.Inst] = e.Idx
	return e.Idx
}

// Len returns the number of entries.
func (t *Trace) Len() int { return len(t.base) + len(t.entries) }

// At returns a pointer to entry i. Callers must treat entries inside a
// forked trace's shared prefix as read-only.
func (t *Trace) At(i int) *Entry {
	if i < len(t.base) {
		return &t.base[i]
	}
	return &t.entries[i-len(t.base)]
}

// Children returns the trace indices directly control dependent on entry
// i (the members of entry i's region, excluding i itself and excluding
// nested regions' members), in execution order.
func (t *Trace) Children(i int) []int {
	t.ensureFinished()
	if t.suffKids != nil {
		if nb := len(t.base); i >= nb {
			return t.suffKids[i-nb]
		} else if row, ok := t.childOver[i]; ok {
			return row
		}
		return t.baseChildren[i]
	}
	return t.children[i]
}

// Roots returns the top-level entries (global initializers and the
// statements of main's body not nested in any predicate).
func (t *Trace) Roots() []int {
	t.ensureFinished()
	return t.rootsList
}

// FindInstance returns the trace index of the given statement instance,
// or -1 if it did not execute.
func (t *Trace) FindInstance(inst Instance) int {
	if t.lazy {
		return t.findLazy(inst)
	}
	if i, ok := t.instIdx[inst]; ok {
		return i
	}
	// A base-index hit is only valid inside the shared prefix: the base
	// trace continued past the fork point, and those later instances did
	// not (necessarily) execute in this trace.
	if i, ok := t.baseIdx[inst]; ok && i < len(t.base) {
		return i
	}
	return -1
}

// Occurrences returns how many times statement id executed.
func (t *Trace) Occurrences(stmt int) int {
	if t.lazy {
		return t.occurrencesLazy(stmt)
	}
	n := 0
	for occ := 1; ; occ++ {
		if t.FindInstance(Instance{Stmt: stmt, Occ: occ}) < 0 {
			return n
		}
		n++
	}
}

// OutputAt returns the output event with the given sequence number, or
// nil.
func (t *Trace) OutputAt(seq int) *Output {
	if seq < 0 || seq >= len(t.Outputs) {
		return nil
	}
	return &t.Outputs[seq]
}

// OutputsOf returns the output events produced by entry i.
func (t *Trace) OutputsOf(i int) []Output {
	var res []Output
	for _, o := range t.Outputs {
		if o.Entry == i {
			res = append(res, o)
		}
	}
	return res
}

// OutputValues returns just the printed values in order.
func (t *Trace) OutputValues() []int64 {
	vals := make([]int64, len(t.Outputs))
	for i, o := range t.Outputs {
		vals[i] = o.Value
	}
	return vals
}

// IsAncestor reports whether entry a is an ancestor of entry b in the
// region tree (reflexive: IsAncestor(x, x) == true).
func (t *Trace) IsAncestor(a, b int) bool {
	for n := b; n >= 0; n = t.At(n).Parent {
		if n == a {
			return true
		}
	}
	return false
}

// RegionDepth returns the depth of entry i in the region tree (roots have
// depth 0).
func (t *Trace) RegionDepth(i int) int {
	d := 0
	for n := t.At(i).Parent; n >= 0; n = t.At(n).Parent {
		d++
	}
	return d
}

// String summarizes the trace.
func (t *Trace) String() string {
	return fmt.Sprintf("trace{%d entries, %d outputs}", t.Len(), len(t.Outputs))
}
