package trace

import (
	"fmt"
	"sync"
)

// Prefix is a handle on the first n entries of a trace, from which
// suffix-extending forks can be created in O(prefix) once and O(1)
// allocations per fork thereafter. It is the trace-side half of
// checkpointed re-execution (docs/CHECKPOINT.md): the interpreter
// captures a Prefix at each checkpoint of the failing run, and every
// switched run forked from that checkpoint starts from Fork() instead of
// re-appending the whole unswitched prefix.
//
// The handle may be taken while the base trace is still being appended
// to; the skeleton (per-entry child counts, root and output counts) is
// computed lazily on first Fork, by which time the base run has
// completed. Fork is safe for concurrent use.
type Prefix struct {
	t *Trace
	n int

	once   sync.Once
	proto  [][]int // per prefix entry, its children < n, capacity-clipped
	nRoots int     // rootsList entries < n
	nOuts  int     // outputs produced by entries < n
}

// PrefixAt returns a fork handle on the first n entries of t. The trace
// must itself be unforked (one level of sharing keeps every index
// meaning "offset into the one original failing run").
func (t *Trace) PrefixAt(n int) *Prefix {
	if t.base != nil {
		panic("trace: PrefixAt on a forked trace")
	}
	if n < 0 || n > len(t.entries) {
		panic(fmt.Sprintf("trace: PrefixAt(%d) out of range [0,%d]", n, len(t.entries)))
	}
	return &Prefix{t: t, n: n}
}

// Len returns the prefix length in entries.
func (p *Prefix) Len() int { return p.n }

// BaseLen returns the full length of the base trace the prefix was taken
// from — a sizing hint for forked suffix runs.
func (p *Prefix) BaseLen() int { return p.t.Len() }

// build computes the fork skeleton: one counting pass over the prefix,
// then the shared children prototype — per prefix entry, the
// capacity-clipped row of its children inside the cut. Every fork gets
// its children array by bulk-copying the prototype instead of re-cutting
// row by row. Entries, children rows, rootsList and Outputs of the base
// trace are append-only and already final for indices < n, so this is
// safe to run lazily, after the base run finished growing the trace.
func (p *Prefix) build() {
	// A lazy base must have been finished by its run before any fork
	// (Fork reads its children rows and roots list); fail loudly if not.
	p.t.ensureFinished()
	childCut := make([]int32, p.n)
	for i := 0; i < p.n; i++ {
		if par := p.t.entries[i].Parent; par >= 0 {
			childCut[par]++
		} else {
			p.nRoots++
		}
	}
	p.proto = make([][]int, p.n)
	for i, cut := range childCut {
		if cut > 0 {
			p.proto[i] = p.t.children[i][:cut:cut]
		}
	}
	for _, o := range p.t.Outputs {
		if o.Entry >= p.n {
			break // outputs are appended in entry order
		}
		p.nOuts++
	}
}

// Fork returns a new Trace whose first n entries are shared with the
// base trace (no entry copies) and which can be appended to
// independently. Shared state is handed out through capacity-clipped
// slice views, so the first append to any shared slice reallocates
// instead of scribbling on the base trace; the prefix entries themselves
// must be treated as read-only through the fork (Trace.At documents
// this).
func (p *Prefix) Fork() *Trace {
	p.once.Do(p.build)
	t := p.t
	f := &Trace{
		base:      t.entries[:p.n:p.n],
		Outputs:   t.Outputs[:p.nOuts:p.nOuts],
		rootsList: t.rootsList[:p.nRoots:p.nRoots],
	}
	if t.lazy {
		// Forks of a lazy base stay lazy: the suffix run appends without
		// index maintenance and calls Finish; prefix instances resolve
		// through the base trace's complete row table, and the children
		// prototype is copied only once, into Finish's full-size array
		// (lazy.go) — the fork itself allocates no O(prefix) state.
		f.lazy = true
		f.baseRows = t.own
		f.baseChildren = p.proto
		if t.anc != nil && t.anc.in == nil {
			f.baseAnc = t.anc
		}
	} else {
		f.children = make([][]int, p.n)
		copy(f.children, p.proto)
		f.instIdx = map[Instance]int{}
		f.baseIdx = t.instIdx
	}
	return f
}
