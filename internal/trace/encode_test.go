package trace

import (
	"bytes"
	"reflect"
	"testing"

	"eol/internal/cfg"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	orig := New()
	orig.Append(Entry{Inst: Instance{Stmt: 1, Occ: 1}, Parent: -1, Value: 7, Branch: cfg.True})
	orig.Append(Entry{
		Inst: Instance{Stmt: 2, Occ: 1}, Parent: 0,
		Uses: []UseRec{{Sym: 3, Elem: ScalarElem, Def: 0, Val: 7}},
		Defs: []DefRec{{Sym: 4, Elem: ScalarElem}},
	})
	orig.Append(Entry{Inst: Instance{Stmt: 2, Occ: 2}, Parent: 0, Switched: true})
	orig.Outputs = append(orig.Outputs, Output{Seq: 0, Entry: 1, Arg: 0, Value: 42})

	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got.entries, orig.entries) {
		t.Errorf("entries differ:\n%v\n%v", got.entries, orig.entries)
	}
	if !reflect.DeepEqual(got.Outputs, orig.Outputs) {
		t.Errorf("outputs differ")
	}
	// Derived indices rebuilt.
	if got.FindInstance(Instance{Stmt: 2, Occ: 2}) != 2 {
		t.Error("instance index not rebuilt")
	}
	if kids := got.Children(0); len(kids) != 2 {
		t.Errorf("children not rebuilt: %v", kids)
	}
	if !got.Ancestry().IsAncestor(0, 2) {
		t.Error("ancestry not working after decode")
	}
}

func TestDecodeRejectsCorruptParent(t *testing.T) {
	bad := New()
	bad.entries = []Entry{{Inst: Instance{Stmt: 1, Occ: 1}, Parent: 5}}
	var buf bytes.Buffer
	if err := bad.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(&buf); err == nil {
		t.Error("forward parent must be rejected")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Error("garbage must not decode")
	}
}
