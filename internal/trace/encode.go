package trace

import (
	"encoding/gob"
	"fmt"
	"io"
)

// wireTrace is the serialized form: entries and outputs only — the
// derived indices (children lists, instance map, ancestry) are rebuilt on
// decode.
type wireTrace struct {
	Entries []Entry
	Outputs []Output
}

// Encode writes the trace in gob format. The paper's prototype persisted
// dependence graphs between the online (valgrind) and offline (debugging)
// components; Encode/Decode play that role here, letting traces be
// captured once and analyzed by separate processes.
func (t *Trace) Encode(w io.Writer) error {
	entries := make([]Entry, 0, t.Len())
	entries = append(entries, t.base...)
	entries = append(entries, t.entries...)
	return gob.NewEncoder(w).Encode(wireTrace{Entries: entries, Outputs: t.Outputs})
}

// Decode reads a trace written by Encode and rebuilds all derived
// indices.
func Decode(r io.Reader) (*Trace, error) {
	var wt wireTrace
	if err := gob.NewDecoder(r).Decode(&wt); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	t := New()
	for i, e := range wt.Entries {
		if e.Parent >= i {
			return nil, fmt.Errorf("trace: decode: entry %d has forward parent %d", i, e.Parent)
		}
		t.Append(e)
	}
	t.Outputs = wt.Outputs
	return t, nil
}
