package verifyengine

import (
	"container/list"
	"sync"

	"eol/internal/interp"
	"eol/internal/trace"
)

// DefaultCacheSize is the switched-run cache capacity when none is given.
// One entry holds a full traced re-execution, so the working set is the
// number of distinct predicate instances verified per localization — tens
// on the paper's benchmarks; 256 leaves room for shared caches serving
// several concurrent localizations.
const DefaultCacheSize = 256

// RunKey identifies one switched re-execution. Re-execution is a pure
// function of (program, input, switched predicate instance, step budget):
// the interpreter is deterministic, so two requests with equal keys
// produce identical runs and the first result can stand in for all later
// ones. Program and input enter as FNV-64a hashes so one cache can be
// shared across localizations of different programs.
//
// Checkpointed replay (docs/CHECKPOINT.md) deliberately does NOT enter
// the key: a run forked from a checkpoint is byte-identical to the full
// run it replaces, so the cached value is independent of whether — and
// from which checkpoint — it was produced. Adding a checkpoint component
// would only split identical entries and lower the hit rate.
//
// The backend NAME does enter the key, even though backends are
// byte-identical by contract: the cache is exactly the machinery that
// would mask a divergence between them (a vm run served to a tree
// verifier would hide the very bug the differential lanes exist to
// catch), so cross-backend sharing is deliberately forgone.
type RunKey struct {
	Prog    uint64 // hash of the program source
	Input   uint64 // hash of the failing input vector
	Backend string // executing backend name ("tree", "vm")
	Pred    trace.Instance
	Budget  int
}

// CacheStats is a point-in-time snapshot of a RunCache's counters.
type CacheStats struct {
	Hits      int64 // lookups served from a stored or in-flight run
	Misses    int64 // lookups that had to execute
	Evictions int64 // entries dropped by the LRU policy
	Len       int   // entries currently stored
	Cap       int   // capacity
}

// RunCache is a bounded LRU cache of switched re-executions, safe for
// concurrent use. Lookups of a key whose run is currently being computed
// block until that run finishes instead of re-executing (single-flight),
// which is what lets parallel workers verifying different uses of the
// same predicate share one interpreter run.
//
// Stored results — including their traces — are shared across callers
// and must be treated as read-only; the engine pre-builds each trace's
// lazy ancestry index before publishing it.
type RunCache struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List // front = most recently used
	items    map[RunKey]*list.Element
	inflight map[RunKey]*inflightRun

	hits, misses, evictions int64
}

type cacheEntry struct {
	key RunKey
	res *interp.Result
}

type inflightRun struct {
	done chan struct{}
	res  *interp.Result
}

// NewRunCache returns a cache bounded to max entries (<= 0 means
// DefaultCacheSize).
func NewRunCache(max int) *RunCache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &RunCache{
		cap:      max,
		ll:       list.New(),
		items:    map[RunKey]*list.Element{},
		inflight: map[RunKey]*inflightRun{},
	}
}

// GetOrRun returns the cached run for key, or executes run exactly once
// per key (concurrent callers for the same key wait for the first) and
// stores the result. hit reports whether an execution was avoided.
func (c *RunCache) GetOrRun(key RunKey, run func() *interp.Result) (res *interp.Result, hit bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		res = el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true
	}
	if fl, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-fl.done
		return fl.res, true
	}
	fl := &inflightRun{done: make(chan struct{})}
	c.inflight[key] = fl
	c.misses++
	c.mu.Unlock()

	fl.res = run()

	c.mu.Lock()
	delete(c.inflight, key)
	// A run aborted by its caller's context is NOT a value of the pure
	// function the key names — it is an artifact of that caller's
	// deadline. Storing it would poison every later localization sharing
	// this cache with a wrong NOT_ID verdict. Deliver it to current
	// waiters only (they re-check their own contexts and retry) and leave
	// the key uncached so the next lookup re-executes.
	if fl.res == nil || !interp.IsCancellation(fl.res.Err) {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: fl.res})
		for c.ll.Len() > c.cap {
			back := c.ll.Back()
			c.ll.Remove(back)
			delete(c.items, back.Value.(*cacheEntry).key)
			c.evictions++
		}
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.res, false
}

// Stats snapshots the cache counters.
func (c *RunCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Len: c.ll.Len(), Cap: c.cap,
	}
}
