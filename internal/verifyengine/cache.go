package verifyengine

import (
	"container/list"
	"sync"

	"eol/internal/interp"
	"eol/internal/trace"
)

// DefaultCacheSize is the switched-run cache capacity when none is given.
// One entry holds a full traced re-execution, so the working set is the
// number of distinct predicate instances verified per localization — tens
// on the paper's benchmarks; 256 leaves room for shared caches serving
// several concurrent localizations.
const DefaultCacheSize = 256

// RunKey identifies one switched re-execution. Re-execution is a pure
// function of (program, input, switched predicate instance, step budget):
// the interpreter is deterministic, so two requests with equal keys
// produce identical runs and the first result can stand in for all later
// ones. Program and input enter as FNV-64a hashes so one cache can be
// shared across localizations of different programs.
//
// Checkpointed replay (docs/CHECKPOINT.md) deliberately does NOT enter
// the key: a run forked from a checkpoint is byte-identical to the full
// run it replaces, so the cached value is independent of whether — and
// from which checkpoint — it was produced. Adding a checkpoint component
// would only split identical entries and lower the hit rate.
//
// The backend NAME does enter the key, even though backends are
// byte-identical by contract: the cache is exactly the machinery that
// would mask a divergence between them (a vm run served to a tree
// verifier would hide the very bug the differential lanes exist to
// catch), so cross-backend sharing is deliberately forgone.
type RunKey struct {
	Prog    uint64 // hash of the program source
	Input   uint64 // hash of the failing input vector
	Backend string // executing backend name ("tree", "vm")
	Pred    trace.Instance
	Budget  int
}

// CacheStats is a point-in-time snapshot of a RunCache's counters.
type CacheStats struct {
	Hits      int64 // lookups served from a stored or in-flight run
	Misses    int64 // lookups that had to execute
	Evictions int64 // entries dropped by the LRU policy
	Len       int   // entries currently stored
	Cap       int   // capacity
}

// RunCache is a bounded LRU cache of switched re-executions, safe for
// concurrent use. Lookups of a key whose run is currently being computed
// block until that run finishes instead of re-executing (single-flight),
// which is what lets parallel workers verifying different uses of the
// same predicate share one interpreter run.
//
// Stored results — including their traces — are shared across callers
// and must be treated as read-only; the engine pre-builds each trace's
// lazy ancestry index before publishing it.
type RunCache struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List // front = most recently used
	items    map[RunKey]*list.Element
	inflight map[RunKey]*inflightRun

	// Speculative side table (docs/SPECULATION.md). Completed speculative
	// runs wait here — outside the LRU and outside the hit/miss/eviction
	// counters — until a demand lookup claims one, at which point it is
	// charged as a miss and inserted into the LRU exactly as the demand
	// run it replaced would have been. Unclaimed entries (mispredictions)
	// linger as warm results, bounded by cap, and are simply dropped with
	// the cache.
	spec         map[RunKey]*interp.Result
	specInflight map[RunKey]*inflightRun

	hits, misses, evictions int64
}

type cacheEntry struct {
	key RunKey
	res *interp.Result
}

type inflightRun struct {
	done chan struct{}
	res  *interp.Result
}

// NewRunCache returns a cache bounded to max entries (<= 0 means
// DefaultCacheSize).
func NewRunCache(max int) *RunCache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &RunCache{
		cap:          max,
		ll:           list.New(),
		items:        map[RunKey]*list.Element{},
		inflight:     map[RunKey]*inflightRun{},
		spec:         map[RunKey]*interp.Result{},
		specInflight: map[RunKey]*inflightRun{},
	}
}

// lookupOutcome classifies how a demand lookup was served, so the engine
// can charge its counters identically to a speculation-free run.
type lookupOutcome int

const (
	// lookupHit: served from a stored entry or an in-flight demand run —
	// a re-execution was avoided even without speculation.
	lookupHit lookupOutcome = iota
	// lookupRan: the lookup executed run() itself (counted as a miss).
	lookupRan
	// lookupClaimed: served by claiming a completed speculative run. The
	// cache charges the miss; the caller must charge whatever else the
	// demand run it replaced would have charged (charge-on-claim).
	lookupClaimed
)

// GetOrRun returns the cached run for key, or executes run exactly once
// per key (concurrent callers for the same key wait for the first) and
// stores the result. hit reports whether an execution was avoided.
func (c *RunCache) GetOrRun(key RunKey, run func() *interp.Result) (res *interp.Result, hit bool) {
	res, out := c.getOrRun(key, run)
	return res, out == lookupHit
}

// getOrRun is GetOrRun with the full outcome. A key whose speculative run
// is still executing is WAITED for, then claimed — never raced with a
// duplicate demand execution — so speculation can only change when a
// result becomes available, never which lookups count as hits or misses.
func (c *RunCache) getOrRun(key RunKey, run func() *interp.Result) (*interp.Result, lookupOutcome) {
	var fl *inflightRun
	for fl == nil {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			c.hits++
			res := el.Value.(*cacheEntry).res
			c.mu.Unlock()
			return res, lookupHit
		}
		if dfl, ok := c.inflight[key]; ok {
			c.hits++
			c.mu.Unlock()
			<-dfl.done
			return dfl.res, lookupHit
		}
		if res, ok := c.spec[key]; ok {
			// Claim: the entry moves from the side table into the LRU
			// through the same insert path a demand run would have used,
			// and the lookup is charged as the miss it would have been.
			delete(c.spec, key)
			c.misses++
			c.insertLocked(key, res)
			c.mu.Unlock()
			return res, lookupClaimed
		}
		if sf, ok := c.specInflight[key]; ok {
			c.mu.Unlock()
			<-sf.done
			continue // re-enter: claim the stored result, or run if it was canceled
		}
		fl = &inflightRun{done: make(chan struct{})}
		c.inflight[key] = fl
		c.misses++
		c.mu.Unlock()
	}

	fl.res = run()

	c.mu.Lock()
	delete(c.inflight, key)
	// A run aborted by its caller's context is NOT a value of the pure
	// function the key names — it is an artifact of that caller's
	// deadline. Storing it would poison every later localization sharing
	// this cache with a wrong NOT_ID verdict. Deliver it to current
	// waiters only (they re-check their own contexts and retry) and leave
	// the key uncached so the next lookup re-executes.
	if fl.res == nil || !interp.IsCancellation(fl.res.Err) {
		c.insertLocked(key, fl.res)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.res, lookupRan
}

// insertLocked stores res under key in the LRU and applies the eviction
// policy. Caller holds c.mu.
func (c *RunCache) insertLocked(key RunKey, res *interp.Result) {
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// BeginSpeculative registers a speculative run for key. It returns
// ok == false — nothing to do — when the key is already stored, already
// being computed (demand or speculative), or the side table is full. On
// ok, the caller must execute the run WITHOUT charging any counters and
// then invoke commit exactly once with the result (nil or a canceled
// result records "no result": waiters re-enter the demand path, the same
// poisoning guard as GetOrRun). Demand lookups for the key wait for
// commit and then claim the stored result.
func (c *RunCache) BeginSpeculative(key RunKey) (commit func(*interp.Result), ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[key]; ok {
		return nil, false
	}
	if _, ok := c.inflight[key]; ok {
		return nil, false
	}
	if _, ok := c.spec[key]; ok {
		return nil, false
	}
	if _, ok := c.specInflight[key]; ok {
		return nil, false
	}
	if len(c.spec)+len(c.specInflight) >= c.cap {
		return nil, false
	}
	sf := &inflightRun{done: make(chan struct{})}
	c.specInflight[key] = sf
	return func(res *interp.Result) {
		c.mu.Lock()
		delete(c.specInflight, key)
		if res != nil && !interp.IsCancellation(res.Err) {
			c.spec[key] = res
		}
		c.mu.Unlock()
		close(sf.done)
	}, true
}

// Stats snapshots the cache counters.
func (c *RunCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Len: c.ll.Len(), Cap: c.cap,
	}
}
