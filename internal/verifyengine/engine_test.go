package verifyengine

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"eol/internal/implicit"
	"eol/internal/interp"
	"eol/internal/slicing"
	"eol/internal/trace"
)

// fixture builds a verifier over a failing run of a program with several
// verifiable potential dependences: the guarded writes are omitted, so
// every later use potentially depends on the same predicate instance.
func fixture(t *testing.T) (*implicit.Verifier, []implicit.Request) {
	t.Helper()
	src := `
func main() {
    var cond = read() * 0;   // ROOT CAUSE: should be read()
    var a = 1;
    var b = 1;
    var c = 1;
    if (cond) {
        a = 2;
        b = 2;
        c = 2;
    }
    print(a);
    print(b);
    print(c);
}`
	c, err := interp.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	input := []int64{1}
	run := interp.Run(c, interp.Options{Input: input, BuildTrace: true})
	if run.Err != nil {
		t.Fatal(run.Err)
	}
	seq, _, ok := slicing.FirstWrongOutput(run.OutputValues(), []int64{2, 2, 2})
	if !ok {
		t.Fatal("no failure")
	}
	wrong := *run.Trace.OutputAt(seq)
	v := &implicit.Verifier{
		C: c, Input: input, Orig: run.Trace,
		WrongOut: wrong, Vexp: 2, HasVexp: true,
	}
	cx := slicing.NewContext(c, run.Trace)
	var reqs []implicit.Request
	for _, out := range []int{0, 1, 2} {
		u := run.Trace.OutputAt(out).Entry
		for _, pd := range cx.PotentialDeps(u) {
			reqs = append(reqs, implicit.Request{
				Pred: pd.Pred, Use: u, UseSym: pd.UseSym, UseElem: pd.UseElem,
			})
		}
	}
	if len(reqs) < 3 {
		t.Fatalf("fixture produced only %d requests", len(reqs))
	}
	return v, reqs
}

// sequentialBaseline verifies reqs one by one on a fresh engine-free
// verifier and returns its observable state.
func sequentialBaseline(t *testing.T, reqs []implicit.Request) ([]implicit.Verdict, *implicit.Verifier) {
	t.Helper()
	v, _ := fixture(t)
	var verdicts []implicit.Verdict
	for _, r := range reqs {
		verdicts = append(verdicts, v.Verify(r))
	}
	return verdicts, v
}

// TestBatchMatchesSequential: for every worker count and cache setting,
// VerifyBatch must produce the sequential path's verdicts, log order and
// verification count.
func TestBatchMatchesSequential(t *testing.T) {
	_, reqs := fixture(t)
	wantVerdicts, wantV := sequentialBaseline(t, reqs)

	for _, workers := range []int{1, 2, 8} {
		for _, cacheSize := range []int{-1, 0, 1} {
			name := fmt.Sprintf("workers=%d/cache=%d", workers, cacheSize)
			t.Run(name, func(t *testing.T) {
				base, reqs := fixture(t)
				e := New(base, Config{Workers: workers, CacheSize: cacheSize})
				got := e.VerifyBatch(reqs)
				if !reflect.DeepEqual(got, wantVerdicts) {
					t.Errorf("verdicts = %v, want %v", got, wantVerdicts)
				}
				if base.Verifications != wantV.Verifications {
					t.Errorf("Verifications = %d, want %d", base.Verifications, wantV.Verifications)
				}
				if !reflect.DeepEqual(base.Log, wantV.Log) {
					t.Errorf("Log = %v, want %v", base.Log, wantV.Log)
				}
			})
		}
	}
}

// TestBatchDeduplicates: duplicate requests in one batch are verified
// once, like repeated Verify calls.
func TestBatchDeduplicates(t *testing.T) {
	base, reqs := fixture(t)
	e := New(base, Config{Workers: 4})
	doubled := append(append([]implicit.Request{}, reqs...), reqs...)
	got := e.VerifyBatch(doubled)
	for i := range reqs {
		if got[i] != got[i+len(reqs)] {
			t.Errorf("req %d: duplicate verdict %v != %v", i, got[i], got[i+len(reqs)])
		}
	}
	if base.Verifications != len(base.Log) {
		t.Errorf("Verifications %d != logged %d", base.Verifications, len(base.Log))
	}
	if base.Verifications > len(reqs) {
		t.Errorf("duplicates re-verified: %d verifications for %d unique requests",
			base.Verifications, len(reqs))
	}
}

// TestRunCacheSharesExecutions: all requests hit the same switched
// predicate, so the cached engine must execute once per distinct
// predicate instance and serve the rest from the cache.
func TestRunCacheSharesExecutions(t *testing.T) {
	base, reqs := fixture(t)
	e := New(base, Config{Workers: 1, CacheSize: 0})
	e.VerifyBatch(reqs)
	s := e.Stats()
	preds := map[int]bool{}
	for _, r := range reqs {
		preds[r.Pred] = true
	}
	if s.Runs != int64(len(preds)) {
		t.Errorf("Runs = %d, want %d (one per distinct predicate)", s.Runs, len(preds))
	}
	if s.CacheHits == 0 {
		t.Error("expected cache hits across uses of the same predicate")
	}
	if got := s.CacheHits + s.CacheMisses; got != int64(base.Verifications) {
		t.Errorf("lookups %d != verifications %d", got, base.Verifications)
	}
}

// TestSecondEngineHitsSharedCache: a shared RunCache serves a second
// localization of the same program/input without re-executing.
func TestSecondEngineHitsSharedCache(t *testing.T) {
	cache := NewRunCache(0)
	base1, reqs1 := fixture(t)
	e1 := New(base1, Config{Workers: 2, Cache: cache})
	e1.VerifyBatch(reqs1)
	runsAfterFirst := e1.Stats().Runs

	base2, reqs2 := fixture(t)
	e2 := New(base2, Config{Workers: 2, Cache: cache})
	e2.VerifyBatch(reqs2)
	if got := e2.Stats().Runs; got != 0 {
		t.Errorf("second engine performed %d runs, want 0 (cache shared)", got)
	}
	if runsAfterFirst == 0 {
		t.Error("first engine should have executed at least once")
	}
}

// TestRunCacheLRU: capacity 2 evicts the least recently used entry and
// counts it.
func TestRunCacheLRU(t *testing.T) {
	c := NewRunCache(2)
	mk := func(i int) RunKey { return RunKey{Pred: trace.Instance{Stmt: i, Occ: 1}} }
	run := func() *interp.Result { return &interp.Result{} }

	c.GetOrRun(mk(1), run)
	c.GetOrRun(mk(2), run)
	c.GetOrRun(mk(1), run) // touch 1: now 2 is LRU
	c.GetOrRun(mk(3), run) // evicts 2
	if _, hit := c.GetOrRun(mk(1), run); !hit {
		t.Error("entry 1 should have survived (recently used)")
	}
	if _, hit := c.GetOrRun(mk(2), run); hit {
		t.Error("entry 2 should have been evicted")
	}
	s := c.Stats()
	if s.Evictions < 1 {
		t.Errorf("evictions = %d, want >= 1", s.Evictions)
	}
	if s.Len > 2 {
		t.Errorf("len = %d, want <= cap 2", s.Len)
	}
}

// TestRunCacheSingleFlight: concurrent misses on one key execute once.
func TestRunCacheSingleFlight(t *testing.T) {
	c := NewRunCache(0)
	var mu sync.Mutex
	runs := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.GetOrRun(RunKey{Pred: trace.Instance{Stmt: 7, Occ: 1}}, func() *interp.Result {
				mu.Lock()
				runs++
				mu.Unlock()
				return &interp.Result{}
			})
		}()
	}
	wg.Wait()
	if runs != 1 {
		t.Errorf("run executed %d times, want 1", runs)
	}
	if s := c.Stats(); s.Hits != 15 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 15 hits / 1 miss", s)
	}
}

// TestHitRate sanity-checks the Stats helper.
func TestHitRate(t *testing.T) {
	if r := (Stats{}).HitRate(); r != 0 {
		t.Errorf("empty hit rate = %v", r)
	}
	if r := (Stats{CacheHits: 3, CacheMisses: 1}).HitRate(); r != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", r)
	}
}
