// Package verifyengine schedules implicit-dependence verifications — the
// hot path of the demand-driven locator (Algorithm 2 of the PLDI 2007
// paper). Every candidate potential dependence costs one switched
// re-execution of the whole program plus region alignment; the paper's
// per-run "verification timer" exists because this dominates wall clock.
//
// The engine attacks that cost on two axes without changing observable
// results:
//
//   - Parallelism: VerifyBatch fans a batch of verification requests out
//     across a bounded worker pool (GOMAXPROCS-sized by default). Each
//     worker owns a Clone of the base implicit.Verifier, so no verifier
//     state is shared; results are then absorbed into the base verifier
//     in request order, which keeps the Verifications counter, the
//     VerifyLog order and the verdict memo byte-identical to what a
//     sequential loop would have produced.
//   - Memoization: switched re-executions are pure functions of
//     (program, input, switched predicate instance, budget), so they are
//     cached in an LRU RunCache keyed exactly by that tuple. Verifying
//     many uses against the same predicate — the sibling-use pass of
//     Fig. 5, and re-ranked candidates across PruneSlicing iterations —
//     reuses one interpreter run instead of re-executing per use.
//   - Checkpointed replay: when the base verifier carries an
//     interp.CheckpointStore captured during the failing run, each cache
//     MISS forks from the nearest checkpoint at or before the switched
//     predicate and re-executes only the suffix (docs/CHECKPOINT.md).
//     Forked runs are byte-identical to full runs, so the RunCache key
//     needs no checkpoint component: the cached value is the same object
//     either way, only cheaper to produce.
//
// Determinism: the interpreter is deterministic, alignment is a pure
// function of the two traces, and absorption happens sequentially in
// request order. Worker scheduling therefore cannot change any verdict,
// counter or log entry — only wall-clock time. See
// docs/VERIFICATION_ENGINE.md for the architecture tour and tuning guide.
package verifyengine

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"eol/internal/implicit"
	"eol/internal/interp"
	"eol/internal/obs"
	"eol/internal/trace"
)

// Config sizes one Engine.
type Config struct {
	// Workers is the verification worker-pool size; <= 0 means
	// GOMAXPROCS. 1 degenerates to the sequential inline path.
	Workers int
	// CacheSize bounds the switched-run cache: 0 means DefaultCacheSize,
	// negative disables caching entirely.
	CacheSize int
	// Cache, if non-nil, is used instead of building a private cache —
	// the sharing point for serving many localizations of the same
	// program/input family from one store. Overrides CacheSize.
	Cache *RunCache
	// Filter, if non-nil, reports that a request's verdict is statically
	// provable to be NOT_ID (no implicit dependence). Filtered requests
	// are answered without a switched re-execution: the engine
	// synthesizes the NOT_ID result and absorbs it in request order, so
	// the verifier's log, counters and memo stay byte-identical to an
	// unfiltered run — only Stats.Runs drops. The filter MUST only
	// return true when the verdict is provably NOT_ID; it is consulted
	// from the planning loop, never concurrently.
	Filter func(implicit.Request) bool
	// ReachFilter, if non-nil, is a second pre-execution filter with the
	// same contract as Filter but proved from the static program
	// dependence graph alone (check.StaticReachFilter): no trace replay,
	// no per-instance work. It is consulted BEFORE Filter, so a request
	// provable both ways is accounted to Stats.StaticReachSkips, not
	// Stats.StaticSkips. Same soundness obligation: true only when the
	// switched run would certainly return NOT_ID.
	ReachFilter func(implicit.Request) bool
	// Rec, if non-nil, receives verify_batch spans, per-verification
	// switched_run marks and per-batch counter deltas. All emission
	// happens on the VerifyBatch caller's goroutine — batch planning and
	// sequential absorption — never from workers, and the worker count is
	// never recorded, so the stream is identical for any Workers value.
	Rec *obs.Recorder
	// Ctx, if non-nil, bounds every switched re-execution and
	// verification batch: when it is cancelled or deadlined, in-flight
	// interpreter runs abort with interp.ErrCanceled/ErrDeadline and
	// VerifyBatchContext returns the cancellation instead of absorbing
	// partial verdicts. Defaults to context.Background().
	Ctx context.Context
}

// Stats reports what one engine did. Cache* counters are per-engine
// (this run's hits and misses), except CacheEvictions which is read from
// the underlying cache and is global when the cache is shared.
type Stats struct {
	Workers int
	// Batches and Batched count VerifyBatch calls and the requests they
	// carried.
	Batches, Batched int64
	// Runs counts switched re-executions actually performed.
	Runs int64
	// CacheHits / CacheMisses count switched-run lookups served from /
	// missing the cache. Hits are re-executions avoided.
	CacheHits, CacheMisses int64
	CacheEvictions         int64
	// StaticSkips counts verifications answered by the static skip
	// filter (Config.Filter) without any switched re-execution.
	StaticSkips int64
	// StaticReachSkips counts verifications answered by the SPDG reach
	// filter (Config.ReachFilter) — provable NOT_ID before any
	// execution, without even replaying the failing trace.
	StaticReachSkips int64
	// CheckpointHits counts switched runs served by forking from a
	// checkpoint of the failing run instead of replaying from the start;
	// SuffixSteps totals the steps those forks actually executed (their
	// full-run equivalents would have executed Steps, not Steps −
	// ResumedAt). Neither is emitted as a journal counter: whether a
	// given run forks depends on cache state, which varies across
	// worker/shard configurations even though the run RESULTS do not.
	CheckpointHits, SuffixSteps int64
	// AlignedRegions totals the region steps walked by alignment across
	// all absorbed verifications (see implicit.Result.AlignRegions).
	AlignedRegions int64
	// SpecIssued counts speculative switched runs issued by Speculate;
	// SpecHits counts the ones later claimed by a demand lookup (their
	// cost was hidden behind the re-prune); SpecWasted is the difference —
	// mispredictions plus runs still in flight when the engine drained.
	// Speculative runs are charged to Runs/CacheMisses and the checkpoint
	// counters only when claimed, and charged exactly what the demand run
	// they replaced would have cost, so every other counter is identical
	// with speculation on or off. Like CheckpointHits, none of the three
	// is a journal gauge: with a shared cache they depend on what other
	// localizations already cached, which varies across shard/worker
	// configurations even though the results do not.
	SpecIssued, SpecHits, SpecWasted int64
}

// HitRate returns the switched-run cache hit rate in [0, 1].
func (s Stats) HitRate() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

// Engine is a concurrent verification scheduler bound to one base
// implicit.Verifier (one failing execution). It implements
// implicit.SwitchedRunner, so the verifier's re-executions flow through
// the engine's cache even for direct Verify calls outside a batch.
//
// VerifyBatch must be called from one goroutine at a time (the locator's
// loop); the engine's internals — workers, cache, runner — handle their
// own synchronization.
type Engine struct {
	base        *implicit.Verifier
	clones      []*implicit.Verifier
	workers     int
	cache       *RunCache
	filter      func(implicit.Request) bool
	reachFilter func(implicit.Request) bool
	ctx         context.Context

	progHash    uint64
	inputHash   uint64
	backend     interp.Backend
	backendName string

	rec *obs.Recorder

	batches, batched int64
	staticSkips      int64
	staticReachSkips int64
	alignedRegions   int64
	runs             atomic.Int64
	cacheHits        atomic.Int64
	cacheMisses      atomic.Int64
	checkpointHits   atomic.Int64
	suffixSteps      atomic.Int64

	// Speculation state (docs/SPECULATION.md). specCtx derives from ctx
	// and is additionally canceled by WaitSpeculation, so draining the
	// engine aborts in-flight speculative runs without touching demand
	// work. specIssued is written only from Speculate (the locator
	// goroutine); specHits is bumped by workers claiming entries.
	specCtx    context.Context
	specCancel context.CancelFunc
	specWG     sync.WaitGroup
	specSem    chan struct{}
	specIssued int64
	specHits   atomic.Int64
}

// New builds an engine over base and installs itself as base's Runner.
// The base verifier's original trace gets its lazy ancestry index built
// here, before any worker can race on it.
func New(base *implicit.Verifier, cfg Config) *Engine {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	e := &Engine{base: base, workers: w, filter: cfg.Filter, reachFilter: cfg.ReachFilter, rec: cfg.Rec, ctx: cfg.Ctx}
	if e.ctx == nil {
		e.ctx = context.Background()
	}
	e.specCtx, e.specCancel = context.WithCancel(e.ctx)
	e.specSem = make(chan struct{}, w)
	switch {
	case cfg.Cache != nil:
		e.cache = cfg.Cache
	case cfg.CacheSize >= 0:
		e.cache = NewRunCache(cfg.CacheSize)
	}
	e.progHash = hashString(base.C.Src)
	e.inputHash = hashInts(base.Input)
	e.backend = base.Backend
	if e.backend == nil {
		e.backend = interp.Tree
	}
	e.backendName = e.backend.Name()
	if base.Orig != nil {
		base.Orig.Ancestry()
	}
	base.Runner = e
	e.clones = make([]*implicit.Verifier, w)
	for i := range e.clones {
		e.clones[i] = base.Clone()
	}
	return e
}

// SwitchedRun implements implicit.SwitchedRunner: one switched
// re-execution, served from the cache when possible. Cached traces are
// published with their ancestry index pre-built so concurrent alignment
// against them is read-only.
//
// With a shared cache, a single-flight wait can hand this engine a run
// that was aborted by ANOTHER engine's context (cancellation results
// are never stored, only delivered to waiters). A cancelled result must
// not become this engine's verdict while its own context is live — that
// would poison the verdict and break shard-count determinism — so the
// lookup retries until it gets a real run or its own context dies.
func (e *Engine) SwitchedRun(pred trace.Instance, budget int) *interp.Result {
	for {
		res := e.switchedRunOnce(pred, budget)
		if !interp.IsCancellation(res.Err) || e.ctx.Err() != nil {
			return res
		}
	}
}

func (e *Engine) switchedRunOnce(pred trace.Instance, budget int) *interp.Result {
	if e.cache == nil {
		return e.runSwitched(pred, budget)
	}
	key := RunKey{Prog: e.progHash, Input: e.inputHash, Backend: e.backendName, Pred: pred, Budget: budget}
	res, out := e.cache.getOrRun(key, func() *interp.Result {
		r := e.runSwitched(pred, budget)
		if r.Trace != nil {
			r.Trace.Ancestry()
		}
		return r
	})
	switch out {
	case lookupHit:
		e.cacheHits.Add(1)
	case lookupClaimed:
		// Charge-on-claim: the speculative run executed uncharged; the
		// claim now charges exactly what the demand run it replaced would
		// have charged — one cache miss, one switched run, and the
		// checkpoint-fork counters of the (deterministic) replay. Every
		// journal-visible counter is therefore identical with speculation
		// on or off; only SpecHits records that the latency was hidden.
		e.cacheMisses.Add(1)
		e.chargeRun(res)
		e.specHits.Add(1)
	default: // lookupRan: runSwitched charged inside the closure
		e.cacheMisses.Add(1)
	}
	return res
}

// runSwitched performs one demand switched re-execution and charges it.
func (e *Engine) runSwitched(pred trace.Instance, budget int) *interp.Result {
	r := e.execSwitched(e.ctx, pred, budget)
	e.chargeRun(r)
	return r
}

// execSwitched performs one switched re-execution under ctx, forking from
// the failing run's checkpoint store when the base verifier carries one.
// Forked results are byte-identical to full runs (interp.RunFrom's
// contract), so callers and the RunCache cannot tell the difference —
// only the CheckpointHits/SuffixSteps counters record that the shortcut
// was taken. It charges nothing: the caller decides (demand runs charge
// immediately, speculative runs on claim).
func (e *Engine) execSwitched(ctx context.Context, pred trace.Instance, budget int) *interp.Result {
	return implicit.RunSwitchedFrom(ctx, e.backend, e.base.C, e.base.Input, e.base.Checkpoints, e.base.Orig, pred, budget)
}

// chargeRun accounts one switched re-execution: the run itself plus the
// checkpoint-fork shortcut if the run took it. ResumedAt is deterministic
// for a given key — the checkpoint store is immutable after the failing
// run — so charging a claimed speculative result reproduces exactly what
// the replaced demand run would have counted.
func (e *Engine) chargeRun(r *interp.Result) {
	e.runs.Add(1)
	if r.ResumedAt > 0 {
		e.checkpointHits.Add(1)
		e.suffixSteps.Add(int64(r.Steps - r.ResumedAt))
	}
}

// switchBudget mirrors implicit.Verifier.VerifyDetailed's step-budget
// rule (the paper's verification timer), so speculative runs land on the
// exact RunKey the demand verification will later look up.
func (e *Engine) switchBudget() int {
	factor := e.base.BudgetFactor
	if factor <= 0 {
		factor = 10
	}
	return factor*e.base.Orig.Len() + 1000
}

// Speculate issues speculative switched runs for reqs — predicted, not
// yet demanded, verification requests — on background goroutines bounded
// by the worker count. It must be called from the locator goroutine
// between batches (it consults the static filters, which are not
// concurrency-safe); the runs themselves overlap whatever the locator
// does next and are absorbed by later demand lookups, which wait for an
// in-flight speculative run instead of duplicating it.
//
// Requests that are memoized, statically filtered, already cached or
// already speculated are skipped — they would not cause a switched run
// on the demand path either. Registration is synchronous: the set of
// issued keys (Stats.SpecIssued) is fixed before Speculate returns and
// is therefore deterministic for a fixed configuration. Returns the
// number of runs issued.
func (e *Engine) Speculate(reqs []implicit.Request) int {
	if e.cache == nil || e.base.PathMode {
		return 0
	}
	budget := e.switchBudget()
	issued := 0
	for _, req := range reqs {
		if e.specCtx.Err() != nil {
			break
		}
		if _, ok := e.base.Memoized(req); ok {
			continue
		}
		if e.reachFilter != nil && e.reachFilter(req) {
			continue
		}
		if e.filter != nil && e.filter(req) {
			continue
		}
		pred := e.base.Orig.At(req.Pred).Inst
		key := RunKey{Prog: e.progHash, Input: e.inputHash, Backend: e.backendName, Pred: pred, Budget: budget}
		commit, ok := e.cache.BeginSpeculative(key)
		if !ok {
			continue
		}
		issued++
		e.specIssued++
		e.specWG.Add(1)
		go func(pred trace.Instance, commit func(*interp.Result)) {
			defer e.specWG.Done()
			select {
			case e.specSem <- struct{}{}:
			case <-e.specCtx.Done():
				commit(nil)
				return
			}
			defer func() { <-e.specSem }()
			r := e.execSwitched(e.specCtx, pred, budget)
			if r.Trace != nil {
				r.Trace.Ancestry()
			}
			commit(r)
		}(pred, commit)
	}
	return issued
}

// WaitSpeculation aborts in-flight speculative runs and waits for them
// to drain. Canceled speculative results are never stored (the cache's
// poisoning guard extends to the side table), so draining mid-run leaves
// a shared cache clean for other localizations. The locator calls this
// before folding final stats — on the normal path and on abort — which
// also keeps cancellation leak-free: no speculative goroutine outlives
// Locate. After WaitSpeculation, Speculate becomes a no-op.
func (e *Engine) WaitSpeculation() {
	e.specCancel()
	e.specWG.Wait()
}

// VerifyBatch verifies reqs and returns their verdicts in request order,
// under the engine's configured context. Kept for callers that predate
// the context-first API; on cancellation the partial verdicts are
// returned as-is (unabsorbed requests read as NOT_ID).
func (e *Engine) VerifyBatch(reqs []implicit.Request) []implicit.Verdict {
	verdicts, _ := e.VerifyBatchContext(e.ctx, reqs)
	return verdicts
}

// VerifyBatchContext verifies reqs and returns their verdicts in request
// order. The expensive part — switched re-execution plus alignment —
// runs on the worker pool, deduplicated per memo key and per switched
// predicate; the results are then absorbed into the base verifier
// sequentially in request order, so its log, counters and memo evolve
// exactly as if the requests had been verified one by one.
//
// ctx (nil = the engine's configured context) bounds the batch: on
// cancellation the workers drain, NOTHING is absorbed — a half-absorbed
// batch would leave wrong NOT_ID verdicts in the memo and log — and the
// error wraps interp.ErrDeadline/ErrCanceled. ctx should equal or derive
// from Config.Ctx so the workers' interpreter runs observe the same
// cancellation.
func (e *Engine) VerifyBatchContext(ctx context.Context, reqs []implicit.Request) ([]implicit.Verdict, error) {
	if ctx == nil {
		ctx = e.ctx
	}
	verdicts := make([]implicit.Verdict, len(reqs))
	if len(reqs) == 0 {
		return verdicts, nil
	}
	if err := ctx.Err(); err != nil {
		return verdicts, fmt.Errorf("verification batch aborted: %w", interp.CtxErr(err))
	}
	e.batches++
	e.batched += int64(len(reqs))

	var before Stats
	if e.rec.Enabled() {
		before = e.Stats()
		e.rec.Begin("verify_batch", "reqs", strconv.Itoa(len(reqs)))
	}

	// Plan: one job per distinct not-yet-memoized key, at its first
	// occurrence; duplicates resolve through the memo during absorption.
	results := make([]*implicit.Result, len(reqs))
	seen := map[implicit.MemoKey]bool{}
	var jobs []int
	for i, req := range reqs {
		if _, ok := e.base.Memoized(req); ok {
			continue
		}
		key := e.base.MemoKey(req)
		if seen[key] {
			continue
		}
		seen[key] = true
		if e.reachFilter != nil && e.reachFilter(req) {
			// Provable NOT_ID from the static dependence graph alone —
			// cheaper than the replay filter below, so consulted first.
			results[i] = &implicit.Result{Verdict: implicit.NotID, UPrime: -1, OPrime: -1}
			e.staticReachSkips++
			continue
		}
		if e.filter != nil && e.filter(req) {
			// Statically provable NOT_ID: synthesize the result the
			// switched run would have produced and skip the run. It is
			// absorbed below in request order like any worker result.
			results[i] = &implicit.Result{Verdict: implicit.NotID, UPrime: -1, OPrime: -1}
			e.staticSkips++
			continue
		}
		jobs = append(jobs, i)
	}

	if n := len(jobs); n > 1 && e.workers > 1 {
		w := e.workers
		if w > n {
			w = n
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func(cl *implicit.Verifier) {
				defer wg.Done()
				for {
					// Stop claiming jobs once the batch is cancelled; the
					// job in flight aborts on the interpreter's own ctx
					// checkpoints, so the pool drains promptly and
					// wg.Wait below never leaks a goroutine.
					if ctx.Err() != nil {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					results[jobs[i]] = cl.VerifyDetailed(reqs[jobs[i]])
				}
			}(e.clones[k])
		}
		wg.Wait()
	} else {
		for _, idx := range jobs {
			if ctx.Err() != nil {
				break
			}
			results[idx] = e.clones[0].VerifyDetailed(reqs[idx])
		}
	}

	if err := ctx.Err(); err != nil {
		// Cancelled mid-batch: the worker results may include runs that
		// were aborted by the context and would absorb as spurious NOT_ID
		// verdicts. Discard the whole batch — the verdicts computed so far
		// are returned unabsorbed — and surface the cancellation. The span
		// is still closed so a journal taken during cancellation validates.
		if e.rec.Enabled() {
			e.rec.End("verify_batch", int64(len(reqs)))
		}
		return verdicts, fmt.Errorf("verification batch aborted: %w", interp.CtxErr(err))
	}

	// Absorption is sequential and in request order, so everything
	// emitted below — switched_run marks, the verifier's verdict marks
	// from Absorb, the counter deltas — lands in a deterministic order
	// no matter how the workers interleaved above.
	for i, req := range reqs {
		switch {
		case results[i] != nil:
			res := results[i]
			e.alignedRegions += int64(res.AlignRegions)
			if e.rec.Enabled() && res.Switched != nil {
				e.rec.Mark("switched_run", int64(res.Switched.Steps),
					"pred", e.base.Orig.At(req.Pred).Inst.String())
			}
			verdicts[i] = e.base.Absorb(req, res)
		default:
			// Memoized before the batch, or a duplicate absorbed at its
			// first occurrence above; Verify resolves it from the memo
			// (and, failing that, verifies inline as a safety net).
			verdicts[i] = e.base.Verify(req)
		}
	}

	if e.rec.Enabled() {
		// Per-batch counter deltas. These totals are deterministic even
		// though individual lookups race: within a batch the misses are
		// exactly the distinct uncached run keys (single-flight) and the
		// rest are hits, regardless of worker interleaving.
		after := e.Stats()
		for _, c := range []struct {
			name string
			d    int64
		}{
			{"switched_runs", after.Runs - before.Runs},
			{"cache_hits", after.CacheHits - before.CacheHits},
			{"cache_misses", after.CacheMisses - before.CacheMisses},
			{"cache_evictions", after.CacheEvictions - before.CacheEvictions},
			{"static_skips", after.StaticSkips - before.StaticSkips},
			{"static_reach_skips", after.StaticReachSkips - before.StaticReachSkips},
			{"aligned_regions", after.AlignedRegions - before.AlignedRegions},
		} {
			if c.d != 0 {
				e.rec.Count(c.name, c.d)
			}
		}
		e.rec.End("verify_batch", int64(len(reqs)))
	}
	return verdicts, nil
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Workers: e.workers,
		Batches: e.batches, Batched: e.batched,
		StaticSkips:      e.staticSkips,
		StaticReachSkips: e.staticReachSkips,
		AlignedRegions:   e.alignedRegions,
		Runs:             e.runs.Load(),
		CacheHits:        e.cacheHits.Load(), CacheMisses: e.cacheMisses.Load(),
		CheckpointHits: e.checkpointHits.Load(), SuffixSteps: e.suffixSteps.Load(),
		SpecIssued: e.specIssued, SpecHits: e.specHits.Load(),
	}
	if w := s.SpecIssued - s.SpecHits; w > 0 {
		s.SpecWasted = w
	}
	if e.cache != nil {
		s.CacheEvictions = e.cache.Stats().Evictions
	}
	return s
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func hashInts(vs []int64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range vs {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}
