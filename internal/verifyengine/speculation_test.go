package verifyengine

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"eol/internal/interp"
	"eol/internal/trace"
)

// TestSpeculateThenBatchMatchesSequential: issuing the whole batch
// speculatively ahead of time must leave the demand path observably
// unchanged — identical verdicts, log, and charged counters — while
// SpecIssued/SpecHits record that the work was hidden.
func TestSpeculateThenBatchMatchesSequential(t *testing.T) {
	_, reqs := fixture(t)
	wantVerdicts, wantV := sequentialBaseline(t, reqs)

	// Baseline engine without speculation, same cache configuration.
	basePlain, reqsPlain := fixture(t)
	plain := New(basePlain, Config{Workers: 2, CacheSize: 0})
	plain.VerifyBatch(reqsPlain)
	plainStats := plain.Stats()

	base, reqs := fixture(t)
	e := New(base, Config{Workers: 2, CacheSize: 0})
	issued := e.Speculate(reqs)
	if issued == 0 {
		t.Fatal("Speculate issued no runs")
	}
	got := e.VerifyBatch(reqs)
	e.WaitSpeculation()

	if !reflect.DeepEqual(got, wantVerdicts) {
		t.Errorf("verdicts = %v, want %v", got, wantVerdicts)
	}
	if !reflect.DeepEqual(base.Log, wantV.Log) {
		t.Errorf("Log = %v, want %v", base.Log, wantV.Log)
	}
	s := e.Stats()
	if s.SpecIssued != int64(issued) || s.SpecIssued == 0 {
		t.Errorf("SpecIssued = %d, want %d", s.SpecIssued, issued)
	}
	if s.SpecHits == 0 {
		t.Error("no speculative run was claimed by the demand batch")
	}
	if s.SpecWasted != s.SpecIssued-s.SpecHits {
		t.Errorf("SpecWasted = %d, want %d", s.SpecWasted, s.SpecIssued-s.SpecHits)
	}
	// Charge-on-claim: every counter the journal can see matches the
	// speculation-free engine exactly.
	if s.Runs != plainStats.Runs || s.CacheHits != plainStats.CacheHits ||
		s.CacheMisses != plainStats.CacheMisses ||
		s.CheckpointHits != plainStats.CheckpointHits ||
		s.SuffixSteps != plainStats.SuffixSteps {
		t.Errorf("charged counters diverged with speculation:\n with: %+v\n without: %+v", s, plainStats)
	}
}

// TestSpeculateSkipsDegenerateConfigs: no cache, or a path-mode
// verifier, means nowhere to land results — Speculate must refuse.
func TestSpeculateSkipsDegenerateConfigs(t *testing.T) {
	base, reqs := fixture(t)
	e := New(base, Config{Workers: 2, CacheSize: -1})
	if n := e.Speculate(reqs); n != 0 {
		t.Errorf("cacheless engine issued %d speculative runs", n)
	}

	base2, reqs2 := fixture(t)
	base2.PathMode = true
	e2 := New(base2, Config{Workers: 2, CacheSize: 0})
	if n := e2.Speculate(reqs2); n != 0 {
		t.Errorf("path-mode engine issued %d speculative runs", n)
	}
}

// TestSpeculateIdempotent: re-speculating the same requests issues
// nothing new (the keys are in flight or already committed), and
// Speculate after WaitSpeculation is a no-op.
func TestSpeculateIdempotent(t *testing.T) {
	base, reqs := fixture(t)
	e := New(base, Config{Workers: 2, CacheSize: 0})
	if n := e.Speculate(reqs); n == 0 {
		t.Fatal("first Speculate issued nothing")
	}
	if n := e.Speculate(reqs); n != 0 {
		t.Errorf("second Speculate re-issued %d runs", n)
	}
	e.WaitSpeculation()
	if n := e.Speculate(reqs); n != 0 {
		t.Errorf("Speculate after WaitSpeculation issued %d runs", n)
	}
}

// TestBeginSpeculativeRefusals covers the side-table admission rules.
func TestBeginSpeculativeRefusals(t *testing.T) {
	mk := func(i int) RunKey { return RunKey{Pred: trace.Instance{Stmt: i, Occ: 1}} }

	c := NewRunCache(2)
	// Key already stored demand-side: refused.
	c.GetOrRun(mk(1), func() *interp.Result { return &interp.Result{} })
	if _, ok := c.BeginSpeculative(mk(1)); ok {
		t.Error("BeginSpeculative accepted a stored key")
	}
	// Duplicate speculative registration: refused.
	commit, ok := c.BeginSpeculative(mk(2))
	if !ok {
		t.Fatal("BeginSpeculative refused a fresh key")
	}
	if _, ok := c.BeginSpeculative(mk(2)); ok {
		t.Error("BeginSpeculative accepted an in-flight speculative key")
	}
	commit(&interp.Result{})
	if _, ok := c.BeginSpeculative(mk(2)); ok {
		t.Error("BeginSpeculative accepted a committed speculative key")
	}
	// Side table bounded by cap (cap=2: one committed entry + one more).
	if _, ok := c.BeginSpeculative(mk(3)); !ok {
		t.Fatal("BeginSpeculative refused under capacity")
	}
	if _, ok := c.BeginSpeculative(mk(4)); ok {
		t.Error("BeginSpeculative exceeded the side-table bound")
	}
}

// TestSpeculativeClaimCharging: a committed speculative entry is claimed
// by the next demand lookup as a miss (lookupClaimed), moves into the
// LRU, and the second lookup is a plain hit.
func TestSpeculativeClaimCharging(t *testing.T) {
	c := NewRunCache(4)
	key := RunKey{Pred: trace.Instance{Stmt: 9, Occ: 1}}
	commit, ok := c.BeginSpeculative(key)
	if !ok {
		t.Fatal("BeginSpeculative refused")
	}
	want := &interp.Result{}
	commit(want)

	ran := false
	res, out := c.getOrRun(key, func() *interp.Result { ran = true; return &interp.Result{} })
	if out != lookupClaimed || res != want || ran {
		t.Fatalf("first lookup: outcome=%v ran=%v", out, ran)
	}
	if _, out := c.getOrRun(key, func() *interp.Result { t.Fatal("re-ran"); return nil }); out != lookupHit {
		t.Fatalf("second lookup: outcome=%v, want hit", out)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss (claim charged as the miss)", s)
	}
}

// TestSpeculativeCancelNotStored: committing nil or a canceled result
// records nothing — the poisoning guard extends to the side table — and
// a demand lookup blocked on the speculative run re-enters and executes
// itself.
func TestSpeculativeCancelNotStored(t *testing.T) {
	for _, res := range []*interp.Result{
		nil,
		{Err: interp.ErrCanceled},
	} {
		c := NewRunCache(4)
		key := RunKey{Pred: trace.Instance{Stmt: 5, Occ: 1}}
		commit, ok := c.BeginSpeculative(key)
		if !ok {
			t.Fatal("BeginSpeculative refused")
		}

		type lookup struct {
			res *interp.Result
			out lookupOutcome
		}
		done := make(chan lookup)
		fresh := &interp.Result{}
		go func() {
			r, out := c.getOrRun(key, func() *interp.Result { return fresh })
			done <- lookup{r, out}
		}()
		// The demand lookup must be blocked on the speculative run, not
		// racing a duplicate execution.
		select {
		case l := <-done:
			t.Fatalf("demand lookup did not wait for the speculative run: %+v", l)
		case <-time.After(20 * time.Millisecond):
		}
		commit(res)
		l := <-done
		if l.out != lookupRan || l.res != fresh {
			t.Errorf("after canceled speculation: outcome=%v res=%p, want ran/%p", l.out, l.res, fresh)
		}
		if s := c.Stats(); s.Len != 1 {
			t.Errorf("cache holds %d entries, want 1 (the demand re-execution only)", s.Len)
		}
	}
}

// TestWaitSpeculationAbortsInFlight: canceling the engine's speculation
// context mid-run discards the results — the shared cache holds nothing
// a later engine could be poisoned by — and a fresh engine over the same
// cache reproduces the sequential baseline.
func TestWaitSpeculationAbortsInFlight(t *testing.T) {
	cache := NewRunCache(0)
	ctx, cancel := context.WithCancel(context.Background())
	base, reqs := fixture(t)
	e := New(base, Config{Workers: 2, Cache: cache, Ctx: ctx})
	e.Speculate(reqs)
	cancel() // abort demand AND speculation contexts mid-flight
	e.WaitSpeculation()

	// Whatever completed before the cancel is a real, uncanceled run;
	// canceled ones must not have been committed. Claiming the survivors
	// from a fresh engine must reproduce the baseline verdicts.
	wantVerdicts, _ := sequentialBaseline(t, reqs)
	base2, reqs2 := fixture(t)
	e2 := New(base2, Config{Workers: 1, Cache: cache})
	got := e2.VerifyBatch(reqs2)
	if !reflect.DeepEqual(got, wantVerdicts) {
		t.Errorf("verdicts after aborted speculation = %v, want %v", got, wantVerdicts)
	}
}

// TestSpeculateAfterEngineCtxCanceled: a dead engine context makes
// Speculate a no-op and any registered-but-unstarted goroutines commit
// nil promptly instead of executing.
func TestSpeculateAfterEngineCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base, reqs := fixture(t)
	e := New(base, Config{Workers: 2, CacheSize: 0, Ctx: ctx})
	if n := e.Speculate(reqs); n != 0 {
		t.Errorf("Speculate issued %d runs under a canceled context", n)
	}
	e.WaitSpeculation()
	if s := e.Stats(); s.SpecIssued != 0 || s.SpecHits != 0 || s.SpecWasted != 0 {
		t.Errorf("stats after canceled-context speculation: %+v", s)
	}
	if err := ctx.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected ctx state: %v", err)
	}
}
