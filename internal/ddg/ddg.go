// Package ddg provides the dynamic dependence graph over an execution
// trace: per-instance data and control dependences, plus analysis-added
// edges (potential dependences for relevant slicing, verified implicit
// dependences for the demand-driven locator).
//
// Nodes are trace entry indices. Backward slicing is transitive closure
// over a caller-selected set of edge kinds, so the same graph serves
// classic dynamic slicing (Data|Control), relevant slicing
// (Data|Control|Potential) and the expanded slices of Algorithm 2
// (Data|Control|Implicit|StrongImplicit).
//
// Since the depgraph refactor this package is a thin naming shim over
// internal/depgraph, which owns the actual engine: a CSR base graph built
// once from the trace, a mutable overlay for analysis-added edges, and
// bitset slice sets (see docs/DEPGRAPH.md). Existing importers keep the
// ddg vocabulary; new code may import depgraph directly.
package ddg

import (
	"eol/internal/depgraph"
	"eol/internal/trace"
)

// Kind classifies dependence edges.
type Kind = depgraph.Kind

// Edge kinds. Data and Control come from the trace; the others are added
// by analyses.
const (
	Data           = depgraph.Data
	Control        = depgraph.Control
	Potential      = depgraph.Potential
	Implicit       = depgraph.Implicit
	StrongImplicit = depgraph.StrongImplicit
)

// Explicit selects the dependences observable during execution.
const Explicit = depgraph.Explicit

// Edge is a dependence from a later entry to an earlier one it depends on.
type Edge = depgraph.Edge

// Graph is a dynamic dependence graph over one trace.
type Graph = depgraph.Graph

// Set is a bitset of trace entries; see depgraph.Set.
type Set = depgraph.Set

// SliceStats summarizes a slice in the paper's "static/dynamic" terms.
type SliceStats = depgraph.SliceStats

// DOTOptions configure graph export.
type DOTOptions = depgraph.DOTOptions

// New builds the graph for a trace: the CSR base holds the data and
// control dependences; extra edges start empty.
func New(t *trace.Trace) *Graph { return depgraph.New(t) }

// NewSet returns an empty entry set sized for the trace.
func NewSet(n int) *Set { return depgraph.NewSet(n) }

// SortedEntries returns the slice's entries in execution order. The
// bitset already iterates in ascending index order, which is exactly the
// order the old map-based API produced by sorting keys — callers relying
// on that order (VerifyLog, journal, goldens) see identical bytes.
func SortedEntries(slice *Set) []int { return slice.Ordered() }
