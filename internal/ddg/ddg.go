// Package ddg provides the dynamic dependence graph over an execution
// trace: per-instance data and control dependences, plus analysis-added
// edges (potential dependences for relevant slicing, verified implicit
// dependences for the demand-driven locator).
//
// Nodes are trace entry indices. Backward slicing is transitive closure
// over a caller-selected set of edge kinds, so the same graph serves
// classic dynamic slicing (Data|Control), relevant slicing
// (Data|Control|Potential) and the expanded slices of Algorithm 2
// (Data|Control|Implicit|StrongImplicit).
package ddg

import (
	"sort"

	"eol/internal/trace"
)

// Kind classifies dependence edges.
type Kind int

// Edge kinds. Data and Control come from the trace; the others are added
// by analyses.
const (
	Data Kind = 1 << iota
	Control
	Potential      // Definition 1 (relevant slicing)
	Implicit       // Definition 2, verified by predicate switching
	StrongImplicit // Definition 4
)

// Explicit selects the dependences observable during execution.
const Explicit = Data | Control

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Data:
		return "dd"
	case Control:
		return "cd"
	case Potential:
		return "pd"
	case Implicit:
		return "id"
	case StrongImplicit:
		return "sid"
	}
	return "?"
}

// Edge is a dependence from a later entry to an earlier one it depends on.
type Edge struct {
	To   int
	Kind Kind
}

// Graph is a dynamic dependence graph over one trace.
type Graph struct {
	T     *trace.Trace
	extra map[int][]Edge
}

// New wraps a trace. Data and control dependences come from the trace
// itself; extra edges start empty.
func New(t *trace.Trace) *Graph {
	return &Graph{T: t, extra: map[int][]Edge{}}
}

// AddEdge records an analysis-added dependence from entry `from` to entry
// `to` of the given kind. Duplicate edges are ignored.
func (g *Graph) AddEdge(from, to int, kind Kind) {
	for _, e := range g.extra[from] {
		if e.To == to && e.Kind == kind {
			return
		}
	}
	g.extra[from] = append(g.extra[from], Edge{To: to, Kind: kind})
}

// ExtraEdges returns the analysis-added edges out of entry i.
func (g *Graph) ExtraEdges(i int) []Edge { return g.extra[i] }

// NumExtraEdges counts all analysis-added edges of the given kinds.
func (g *Graph) NumExtraEdges(kinds Kind) int {
	n := 0
	for _, es := range g.extra {
		for _, e := range es {
			if e.Kind&kinds != 0 {
				n++
			}
		}
	}
	return n
}

// Deps appends to buf the dependences of entry i restricted to kinds, and
// returns it. Data edges come from the entry's use records, the control
// edge from its region parent.
func (g *Graph) Deps(i int, kinds Kind, buf []Edge) []Edge {
	e := g.T.At(i)
	if kinds&Data != 0 {
		for _, u := range e.Uses {
			if u.Def >= 0 {
				buf = append(buf, Edge{To: u.Def, Kind: Data})
			}
		}
	}
	if kinds&Control != 0 && e.Parent >= 0 {
		buf = append(buf, Edge{To: e.Parent, Kind: Control})
	}
	for _, x := range g.extra[i] {
		if x.Kind&kinds != 0 {
			buf = append(buf, x)
		}
	}
	return buf
}

// BackwardSlice computes the transitive closure of the seed entries over
// the given edge kinds. The result includes the seeds.
func (g *Graph) BackwardSlice(kinds Kind, seeds ...int) map[int]bool {
	slice := map[int]bool{}
	var work []int
	for _, s := range seeds {
		if s >= 0 && !slice[s] {
			slice[s] = true
			work = append(work, s)
		}
	}
	var buf []Edge
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		buf = g.Deps(n, kinds, buf[:0])
		for _, e := range buf {
			if !slice[e.To] {
				slice[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return slice
}

// ForwardReach computes the set of entries reachable forward from the
// seeds, i.e. entries whose backward closure would include a seed. Used
// by confidence analysis ("does this instance influence output o?").
func (g *Graph) ForwardReach(kinds Kind, seeds ...int) map[int]bool {
	// Build a forward adjacency on demand (deps reversed).
	fwd := make([][]int32, g.T.Len())
	var buf []Edge
	for i := 0; i < g.T.Len(); i++ {
		buf = g.Deps(i, kinds, buf[:0])
		for _, e := range buf {
			fwd[e.To] = append(fwd[e.To], int32(i))
		}
	}
	reach := map[int]bool{}
	var work []int
	for _, s := range seeds {
		if s >= 0 && !reach[s] {
			reach[s] = true
			work = append(work, s)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, m := range fwd[n] {
			if !reach[int(m)] {
				reach[int(m)] = true
				work = append(work, int(m))
			}
		}
	}
	return reach
}

// Distances computes, for every entry in the backward closure of seed,
// its minimal dependence distance (edge count) to the seed. Used for
// ranking fault candidates.
func (g *Graph) Distances(kinds Kind, seed int) map[int]int {
	dist := map[int]int{}
	if seed < 0 {
		return dist
	}
	dist[seed] = 0
	queue := []int{seed}
	var buf []Edge
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		buf = g.Deps(n, kinds, buf[:0])
		for _, e := range buf {
			if _, seen := dist[e.To]; !seen {
				dist[e.To] = dist[n] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return dist
}

// SliceStats summarizes a slice in the paper's "static/dynamic" terms:
// the number of unique source statements and the number of statement
// instances.
type SliceStats struct {
	Static  int
	Dynamic int
}

// Stats computes slice statistics for a set of trace entries.
func (g *Graph) Stats(slice map[int]bool) SliceStats {
	return SliceStats{
		Static:  len(g.T.UniqueStmts(slice)),
		Dynamic: len(slice),
	}
}

// SortedEntries returns the slice's entries in execution order.
func SortedEntries(slice map[int]bool) []int {
	res := make([]int, 0, len(slice))
	for i := range slice {
		res = append(res, i)
	}
	sort.Ints(res)
	return res
}

// ContainsStmt reports whether any instance of statement id is in the
// slice.
func (g *Graph) ContainsStmt(slice map[int]bool, stmt int) bool {
	for i := range slice {
		if g.T.At(i).Inst.Stmt == stmt {
			return true
		}
	}
	return false
}
