package ddg

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := New(chainTrace())
	g.AddEdge(2, 0, StrongImplicit)
	var sb strings.Builder
	hl := NewSet(3)
	hl.Add(2)
	err := g.WriteDOT(&sb, DOTOptions{Highlight: hl})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph ddg {",
		`n1 -> n0 [style=solid, label="dd"]`,
		`n2 -> n1 [style=dashed, label="cd"]`,
		`label="sid"`,
		"fillcolor",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTSubset(t *testing.T) {
	g := New(chainTrace())
	var sb strings.Builder
	only := NewSet(3)
	only.Add(1)
	only.Add(2)
	err := g.WriteDOT(&sb, DOTOptions{Only: only})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "n0 [") {
		t.Error("excluded node rendered")
	}
	if strings.Contains(out, "-> n0") {
		t.Error("edge to excluded node rendered")
	}
	if !strings.Contains(out, "n2 -> n1") {
		t.Error("included edge missing")
	}
}

func TestWriteDOTKindFilter(t *testing.T) {
	g := New(chainTrace())
	var sb strings.Builder
	if err := g.WriteDOT(&sb, DOTOptions{Kinds: Control}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, `label="dd"`) {
		t.Error("data edge rendered despite Control-only filter")
	}
	if !strings.Contains(out, `label="cd"`) {
		t.Error("control edge missing")
	}
}

func TestWriteDOTCustomLabel(t *testing.T) {
	g := New(chainTrace())
	var sb strings.Builder
	err := g.WriteDOT(&sb, DOTOptions{Label: func(i int) string { return "entry" }})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `label="entry"`) {
		t.Error("custom label not used")
	}
}
