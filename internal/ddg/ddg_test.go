package ddg

import (
	"sort"
	"testing"

	"eol/internal/trace"
)

// chainTrace builds a synthetic trace: e0 <- e1 <- e2 (data), with e2
// control dependent on e1.
func chainTrace() *trace.Trace {
	t := trace.New()
	t.Append(trace.Entry{Inst: trace.Instance{Stmt: 1, Occ: 1}, Parent: -1})
	t.Append(trace.Entry{
		Inst: trace.Instance{Stmt: 2, Occ: 1}, Parent: -1,
		Uses: []trace.UseRec{{Sym: 0, Elem: trace.ScalarElem, Def: 0}},
	})
	t.Append(trace.Entry{
		Inst: trace.Instance{Stmt: 3, Occ: 1}, Parent: 1,
		Uses: []trace.UseRec{{Sym: 1, Elem: trace.ScalarElem, Def: 1}},
	})
	return t
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestKinds(t *testing.T) {
	names := map[Kind]string{
		Data: "dd", Control: "cd", Potential: "pd",
		Implicit: "id", StrongImplicit: "sid",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d renders %q, want %q", k, k.String(), want)
		}
	}
	if Explicit != Data|Control {
		t.Error("Explicit must be Data|Control")
	}
}

func TestEachDep(t *testing.T) {
	g := New(chainTrace())
	var got []Edge
	g.EachDep(2, Explicit, func(e Edge) { got = append(got, e) })
	// e2 has one data dep (on 1) and one control dep (on 1), data first.
	if len(got) != 2 {
		t.Fatalf("deps = %v", got)
	}
	if got[0].Kind != Data || got[1].Kind != Control {
		t.Errorf("dep order = %v, want data then control", got)
	}
	for _, e := range got {
		if e.To != 1 {
			t.Errorf("dep target %d, want 1", e.To)
		}
	}
	// Restricting kinds filters.
	got = got[:0]
	g.EachDep(2, Control, func(e Edge) { got = append(got, e) })
	if len(got) != 1 || got[0].Kind != Control {
		t.Errorf("control-only deps = %v", got)
	}
}

func TestBackwardSliceAndExtraEdges(t *testing.T) {
	g := New(chainTrace())
	s := g.BackwardSlice(Explicit, 2)
	if !equalInts(s.Ordered(), []int{0, 1, 2}) {
		t.Errorf("slice = %v", s.Ordered())
	}
	// Restrict to data only from entry 1: {1, 0}.
	s = g.BackwardSlice(Data, 1)
	if !equalInts(s.Ordered(), []int{0, 1}) {
		t.Errorf("data slice = %v", s.Ordered())
	}

	// An implicit edge extends the closure.
	g2 := New(chainTrace())
	g2.AddEdge(0, 2, Implicit) // nonsensical direction is fine for the test
	s = g2.BackwardSlice(Explicit|Implicit, 0)
	if !s.Has(2) {
		t.Errorf("implicit edge not followed: %v", s.Ordered())
	}
	// Duplicate adds are ignored.
	if g2.AddEdge(0, 2, Implicit) {
		t.Error("duplicate AddEdge reported as new")
	}
	if n := g2.NumExtraEdges(Implicit); n != 1 {
		t.Errorf("extra edges = %d, want 1", n)
	}
	if n := g2.NumExtraEdges(StrongImplicit); n != 0 {
		t.Errorf("strong edges = %d, want 0", n)
	}
	if es := g2.ExtraEdges(0); len(es) != 1 || es[0].To != 2 {
		t.Errorf("ExtraEdges = %v", es)
	}
}

func TestVersionCounter(t *testing.T) {
	g := New(chainTrace())
	if g.Version() != 0 {
		t.Errorf("fresh graph version = %d", g.Version())
	}
	g.AddEdge(2, 0, Implicit)
	if g.Version() != 1 {
		t.Errorf("version after add = %d", g.Version())
	}
	g.AddEdge(2, 0, Implicit) // duplicate: no bump
	if g.Version() != 1 {
		t.Errorf("version after duplicate add = %d", g.Version())
	}
}

func TestForwardReach(t *testing.T) {
	g := New(chainTrace())
	r := g.ForwardReach(Explicit, 0)
	if !equalInts(r.Ordered(), []int{0, 1, 2}) {
		t.Errorf("forward reach from 0 = %v", r.Ordered())
	}
	r = g.ForwardReach(Explicit, 2)
	if !equalInts(r.Ordered(), []int{2}) {
		t.Errorf("forward reach from sink = %v", r.Ordered())
	}
	// Overlay edges take part too.
	g.AddEdge(2, 0, Implicit)
	r = g.ForwardReach(Implicit, 0)
	if !r.Has(2) {
		t.Errorf("forward reach missing overlay consumer: %v", r.Ordered())
	}
}

func TestDistances(t *testing.T) {
	g := New(chainTrace())
	d := g.Distances(Explicit, 2)
	if d[2] != 0 || d[1] != 1 || d[0] != 2 {
		t.Errorf("distances = %v", d)
	}
	if d := g.Distances(Explicit, -1); d != nil {
		t.Errorf("invalid seed distances = %v", d)
	}
}

func TestStatsAndHelpers(t *testing.T) {
	tr := trace.New()
	// two instances of stmt 1, one of stmt 2
	tr.Append(trace.Entry{Inst: trace.Instance{Stmt: 1, Occ: 1}, Parent: -1})
	tr.Append(trace.Entry{Inst: trace.Instance{Stmt: 1, Occ: 2}, Parent: -1})
	tr.Append(trace.Entry{Inst: trace.Instance{Stmt: 2, Occ: 1}, Parent: -1})
	g := New(tr)
	slice := NewSet(3)
	slice.Add(0)
	slice.Add(1)
	slice.Add(2)
	st := g.Stats(slice)
	if st.Static != 2 || st.Dynamic != 3 {
		t.Errorf("stats = %+v", st)
	}
	if !g.ContainsStmt(slice, 1) || !g.ContainsStmt(slice, 2) || g.ContainsStmt(slice, 3) {
		t.Error("ContainsStmt broken")
	}
	unordered := NewSet(3)
	unordered.Add(2)
	unordered.Add(0)
	unordered.Add(1)
	ord := SortedEntries(unordered)
	if !sort.IntsAreSorted(ord) || len(ord) != 3 {
		t.Errorf("SortedEntries = %v", ord)
	}
}

func TestSliceWithNegativeSeed(t *testing.T) {
	g := New(chainTrace())
	if s := g.BackwardSlice(Explicit, -1); s.Len() != 0 {
		t.Errorf("negative seed slice = %v", s.Ordered())
	}
}
