package ddg

import (
	"reflect"
	"sort"
	"testing"

	"eol/internal/trace"
)

// chainTrace builds a synthetic trace: e0 <- e1 <- e2 (data), with e2
// control dependent on e1.
func chainTrace() *trace.Trace {
	t := trace.New()
	t.Append(trace.Entry{Inst: trace.Instance{Stmt: 1, Occ: 1}, Parent: -1})
	t.Append(trace.Entry{
		Inst: trace.Instance{Stmt: 2, Occ: 1}, Parent: -1,
		Uses: []trace.UseRec{{Sym: 0, Elem: trace.ScalarElem, Def: 0}},
	})
	t.Append(trace.Entry{
		Inst: trace.Instance{Stmt: 3, Occ: 1}, Parent: 1,
		Uses: []trace.UseRec{{Sym: 1, Elem: trace.ScalarElem, Def: 1}},
	})
	return t
}

func TestKinds(t *testing.T) {
	names := map[Kind]string{
		Data: "dd", Control: "cd", Potential: "pd",
		Implicit: "id", StrongImplicit: "sid",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d renders %q, want %q", k, k.String(), want)
		}
	}
	if Explicit != Data|Control {
		t.Error("Explicit must be Data|Control")
	}
}

func TestDeps(t *testing.T) {
	g := New(chainTrace())
	var buf []Edge
	buf = g.Deps(2, Explicit, buf[:0])
	// e2 has one data dep (on 1) and one control dep (on 1).
	if len(buf) != 2 {
		t.Fatalf("deps = %v", buf)
	}
	kinds := map[Kind]int{}
	for _, e := range buf {
		kinds[e.Kind]++
		if e.To != 1 {
			t.Errorf("dep target %d, want 1", e.To)
		}
	}
	if kinds[Data] != 1 || kinds[Control] != 1 {
		t.Errorf("kinds = %v", kinds)
	}
	// Restricting kinds filters.
	buf = g.Deps(2, Control, buf[:0])
	if len(buf) != 1 || buf[0].Kind != Control {
		t.Errorf("control-only deps = %v", buf)
	}
}

func TestBackwardSliceAndExtraEdges(t *testing.T) {
	g := New(chainTrace())
	s := g.BackwardSlice(Explicit, 2)
	if !reflect.DeepEqual(s, map[int]bool{0: true, 1: true, 2: true}) {
		t.Errorf("slice = %v", s)
	}
	// Restrict to data only from entry 1: {1, 0}.
	s = g.BackwardSlice(Data, 1)
	if !reflect.DeepEqual(s, map[int]bool{0: true, 1: true}) {
		t.Errorf("data slice = %v", s)
	}

	// An implicit edge extends the closure.
	g2 := New(chainTrace())
	g2.AddEdge(0, 2, Implicit) // nonsensical direction is fine for the test
	s = g2.BackwardSlice(Explicit|Implicit, 0)
	if !s[2] {
		t.Errorf("implicit edge not followed: %v", s)
	}
	// Duplicate adds are ignored.
	g2.AddEdge(0, 2, Implicit)
	if n := g2.NumExtraEdges(Implicit); n != 1 {
		t.Errorf("extra edges = %d, want 1", n)
	}
	if n := g2.NumExtraEdges(StrongImplicit); n != 0 {
		t.Errorf("strong edges = %d, want 0", n)
	}
	if es := g2.ExtraEdges(0); len(es) != 1 || es[0].To != 2 {
		t.Errorf("ExtraEdges = %v", es)
	}
}

func TestForwardReach(t *testing.T) {
	g := New(chainTrace())
	r := g.ForwardReach(Explicit, 0)
	if !reflect.DeepEqual(r, map[int]bool{0: true, 1: true, 2: true}) {
		t.Errorf("forward reach from 0 = %v", r)
	}
	r = g.ForwardReach(Explicit, 2)
	if !reflect.DeepEqual(r, map[int]bool{2: true}) {
		t.Errorf("forward reach from sink = %v", r)
	}
}

func TestDistances(t *testing.T) {
	g := New(chainTrace())
	d := g.Distances(Explicit, 2)
	if d[2] != 0 || d[1] != 1 || d[0] != 2 {
		t.Errorf("distances = %v", d)
	}
	if d := g.Distances(Explicit, -1); len(d) != 0 {
		t.Errorf("invalid seed distances = %v", d)
	}
}

func TestStatsAndHelpers(t *testing.T) {
	tr := trace.New()
	// two instances of stmt 1, one of stmt 2
	tr.Append(trace.Entry{Inst: trace.Instance{Stmt: 1, Occ: 1}, Parent: -1})
	tr.Append(trace.Entry{Inst: trace.Instance{Stmt: 1, Occ: 2}, Parent: -1})
	tr.Append(trace.Entry{Inst: trace.Instance{Stmt: 2, Occ: 1}, Parent: -1})
	g := New(tr)
	slice := map[int]bool{0: true, 1: true, 2: true}
	st := g.Stats(slice)
	if st.Static != 2 || st.Dynamic != 3 {
		t.Errorf("stats = %+v", st)
	}
	if !g.ContainsStmt(slice, 1) || !g.ContainsStmt(slice, 2) || g.ContainsStmt(slice, 3) {
		t.Error("ContainsStmt broken")
	}
	ord := SortedEntries(map[int]bool{2: true, 0: true, 1: true})
	if !sort.IntsAreSorted(ord) || len(ord) != 3 {
		t.Errorf("SortedEntries = %v", ord)
	}
}

func TestSliceWithNegativeSeed(t *testing.T) {
	g := New(chainTrace())
	if s := g.BackwardSlice(Explicit, -1); len(s) != 0 {
		t.Errorf("negative seed slice = %v", s)
	}
}
