package check_test

import (
	"strings"
	"testing"

	"eol/internal/bench"
	"eol/internal/check"
)

// vet loads src and runs the full suite.
func vet(t *testing.T, src string) []check.Diagnostic {
	t.Helper()
	u, err := check.Load(src)
	if err != nil {
		t.Fatalf("Load: %v\n%s", err, src)
	}
	return check.Vet(u)
}

// codes extracts the diagnostic codes in order.
func codes(diags []check.Diagnostic) []string {
	var cs []string
	for _, d := range diags {
		cs = append(cs, d.Code)
	}
	return cs
}

func hasCode(diags []check.Diagnostic, code string) bool {
	for _, d := range diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

// TestAnalyzerTriggers runs each pass's minimal triggering program (the
// same programs docs/STATIC_CHECKS.md catalogs) and checks that exactly
// the expected code fires, with the expected severity.
func TestAnalyzerTriggers(t *testing.T) {
	cases := []struct {
		code     string
		severity check.Severity
		src      string
		// extra codes the trigger unavoidably also produces
		also []string
	}{
		{"EOL0001", check.Warning, `
func main() {
	var x;
	if (read() > 0) { x = 1; }
	print(x);
}`, nil},
		{"EOL0002", check.Warning, `
func main() {
	var x = read();
	x = 2;
	x = 3;
	print(x);
}`, nil},
		{"EOL0003", check.Error, `
func f() {
	return 1;
	print(2);
}
func main() {
	print(f());
}`, nil},
		{"EOL0004", check.Warning, `
func main() {
	if (2 > 1) {
		print(read());
	}
}`, nil},
		{"EOL0005", check.Warning, `
func main() {
	var unused = 3;
	print(read());
}`, nil},
		{"EOL0006", check.Warning, `
func f(x) {
	if (x > 0) { return 1; }
}
func main() {
	print(f(read()));
}`, nil},
		{"EOL0007", check.Error, `
var a[4];
func main() {
	a[7] = read();
	print(a[0]);
}`, nil},
		{"EOL0008", check.Info, `
func main() {
	var t = 0;
	if (read() > 0) { t = 1; }
	print(read());
}`, []string{"EOL0002", "EOL0005"}},
		{"EOL0009", check.Info, `
func tally(v) {
	var t = v * 2;
	return t;
}
func main() {
	var x = read();
	if (x > 3) { tally(x); }
	print(x);
}`, nil},
		{"EOL0010", check.Warning, `
var count;
var mirror;
func record(v) {
	count = count + v;
	mirror = count;
}
func main() {
	record(read());
	mirror = 0;
	print(count);
	print(mirror);
}`, nil},
	}
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			diags := vet(t, tc.src)
			if !hasCode(diags, tc.code) {
				t.Fatalf("expected %s, got %v", tc.code, diags)
			}
			allowed := map[string]bool{tc.code: true}
			for _, c := range tc.also {
				allowed[c] = true
			}
			for _, d := range diags {
				if !allowed[d.Code] {
					t.Errorf("unexpected extra diagnostic: %v", d)
				}
				if d.Code == tc.code && d.Severity != tc.severity {
					t.Errorf("%s severity %v, want %v", tc.code, d.Severity, tc.severity)
				}
			}
		})
	}
}

// TestCleanCorpus: the benchmark corpus — both correct and faulty
// versions of every case — must be diagnostic-free at every severity, so
// harness validation and the lint lane never fight the subjects the
// paper's tables are built on.
func TestCleanCorpus(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range bench.Cases() {
		if !seen[c.Program] {
			seen[c.Program] = true
			if diags := vet(t, c.CorrectSrc); len(diags) > 0 {
				t.Errorf("%s (correct): %d diagnostics:\n%s", c.Program, len(diags), render(diags))
			}
		}
		src, err := c.FaultySrc()
		if err != nil {
			t.Fatal(err)
		}
		if diags := vet(t, src); len(diags) > 0 {
			t.Errorf("%s (faulty): %d diagnostics:\n%s", c.Name(), len(diags), render(diags))
		}
	}
}

func render(diags []check.Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString("  " + d.String() + "\n")
	}
	return sb.String()
}
