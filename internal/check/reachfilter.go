// Pre-execution skip-filter over the static program dependence graph.
//
// StaticReachFilter proves NOT_ID verdicts from the SPDG alone
// (internal/staticdep) — before any execution, without even replaying
// the failing trace. It is the static counterpart of SwitchFilter: where
// the replay filter reconstructs one predicate instance's switched
// effects from the concrete trace, the reach filter bounds ALL instances
// of a predicate statement at once by its static forward cone.
//
// The argument. Let E be the failing execution and E' the execution with
// one instance of predicate p's branch inverted. Switching overrides p's
// outcome after its condition is evaluated, so E' shares E's prefix
// through p itself; every statement whose execution count, operand
// values or input/output behaviour can differ between E and E' is
// reachable from p in the SPDG's forward closure over control, data and
// call-summary edges — cone(p). The closure's data edges use the
// interprocedural flow-sensitive reaching definitions of
// staticdep.Graph, a sound over-approximation of every dynamic flow in
// any run of the program, switched ones included. Then, for a
// verification request (p, u, sym) whose use statement lies outside
// cone(p):
//
//   - If the cone is "straight" — no predicate, return, break or
//     continue inside it — then no control-flow decision outside p's
//     own switched instance can change (a differing branch, or an
//     escaping jump executing differently, requires a cone-resident
//     statement), so E' executes statement-for-statement identically to
//     E outside Region(p'). In particular u's counterpart u' exists at
//     the same occurrence, and the verifier's region alignment
//     (align.MatchCounted), which fails ID-conservatively on any
//     structural divergence, provably succeeds.
//   - u's reaching definition cannot move inside Region(p'): a
//     region-internal definition reaching u would be a static def-use
//     edge from inside the cone to u, putting u in the cone.
//   - If the first wrong output statement is also outside the cone, its
//     counterpart o' prints the same wrong value, so the verdict cannot
//     strengthen to StrongID either.
//   - A harmless cone (no fault-capable statement — indexing, division,
//     shifts, assert — and no input consumption) guarantees E' cannot
//     fault or desynchronize input anywhere: statements outside the
//     cone execute with identical operands and the cone's own
//     statements cannot fault or read. A budget-exceeded switched run
//     yields NOT_ID by the paper's aggressive-conclusion rule, so even
//     a longer E' is safe.
//
// Every escape hatch of that argument — u in the cone, wrong output in
// the cone, a fault or read in the cone, any control statement in the
// cone — makes the filter return false; it never guesses. Like
// SwitchFilter it is unsound for PathMode verification and must not be
// consulted there.
//
// Where the pruning power comes from. At symbol granularity the filter
// is provably vacuous on engine requests: every request is a Definition-1
// candidate (slicing.PotentialDeps), whose condition (iii) — the use's
// dynamic reaching definition precedes p — means the executed path from
// p to u contains no statement that defined the symbol, so no static
// must-kill lies on it, so any sound path-insensitive reaching-definition
// analysis must let the untaken-branch definition (condition (iv)) reach
// u — putting u in cone(p) and blocking the fire. The escape is element
// precision: candidate generation treats an array as one abstract
// object, but staticdep's SPDG drops def→use data edges whose constant
// index sets are provably disjoint (a region writing only buf[3] cannot
// produce the reaching definition of a read of buf[1] — the verifier's
// region-internal-definition check is per element, via the trace's
// per-(symbol, element) use records). Candidates pairing a predicate
// with a constant-index use its untaken branch provably cannot touch
// are exactly the ones that become free NOT_IDs, in both the default
// and the cross-function candidate modes (docs/STATICDEP.md).
package check

import (
	"eol/internal/cfg"
	"eol/internal/staticdep"
	"eol/internal/trace"
)

// StaticReachFilter answers "is this verification provably NOT_ID?"
// from the SPDG and the failing trace's statement mapping. It is
// stateless per instance (all per-predicate work is precomputed in the
// graph), so one filter serves any number of requests; like the replay
// filter it is consulted from the engine's sequential planning loop.
type StaticReachFilter struct {
	sd *staticdep.Graph
	tr *trace.Trace
	// wrongStmt is the statement of the first wrong output, or -1 when
	// the verifier has no expected value — sound to omit only then,
	// since without one no verdict can strengthen to StrongID.
	wrongStmt int
}

// NewStaticReachFilter builds a filter over one failing execution.
// wrongEntry is the trace index of the first wrong output (pass -1 only
// when the verifier runs without an expected value).
func NewStaticReachFilter(sd *staticdep.Graph, tr *trace.Trace, wrongEntry int) *StaticReachFilter {
	ws := -1
	if wrongEntry >= 0 && wrongEntry < tr.Len() {
		ws = tr.At(wrongEntry).Inst.Stmt
	}
	tr.Ancestry() // build the lazy index before the engine's workers exist
	return &StaticReachFilter{sd: sd, tr: tr, wrongStmt: ws}
}

// ProvablyNotID reports whether switching the predicate instance at
// trace index predIdx provably cannot yield an implicit-dependence
// verdict for the use entry at useIdx — i.e. the switched run would
// certainly return NOT_ID. The proof is per predicate STATEMENT: it
// holds for every instance at once, which is what makes it free.
func (f *StaticReachFilter) ProvablyNotID(predIdx, useIdx int) bool {
	if predIdx < 0 || useIdx <= predIdx || useIdx >= f.tr.Len() {
		return false
	}
	pe := f.tr.At(predIdx)
	if pe.Branch != cfg.True && pe.Branch != cfg.False {
		return false
	}
	// A use inside the predicate's own dynamic region — a taken-branch
	// entry, or a callee entry evaluated by p's condition — vanishes or
	// moves when the branch is switched; the verifier's alignment
	// precondition excludes it, so the filter must too.
	if f.tr.Ancestry().IsAncestor(predIdx, useIdx) {
		return false
	}
	ps := pe.Inst.Stmt
	if !f.sd.ConeHarmless(ps) || !f.sd.ConeStraight(ps) {
		return false
	}
	if f.sd.InCone(ps, f.tr.At(useIdx).Inst.Stmt) {
		return false
	}
	if f.wrongStmt >= 0 && f.sd.InCone(ps, f.wrongStmt) {
		return false
	}
	return true
}
