package check_test

import (
	"math/rand"
	"testing"

	"eol/internal/cfg"
	"eol/internal/check"
	"eol/internal/implicit"
	"eol/internal/interp"
	"eol/internal/staticdep"
	"eol/internal/testsupport"
)

// TestStaticReachSoundnessRandom cross-checks the SPDG reach filter
// against the ground truth on random programs: every (pred, use) pair
// the filter claims is provably NOT_ID must actually verify as NOT_ID
// when the switched run is performed. Unlike candidate generation, the
// pairs here are NOT restricted to potential dependences — the filter's
// contract must hold for any request the engine could conceivably see.
func TestStaticReachSoundnessRandom(t *testing.T) {
	programs := 80
	maxChecked := 60 // switched runs spent per program confirming fires
	if testing.Short() {
		programs = 15
	}
	rnd := rand.New(rand.NewSource(7))
	var fires, progsWithFires int
	for pi := 0; pi < programs; pi++ {
		src := testsupport.RandomProgram(rnd, testsupport.GenConfig{})
		c, err := interp.Compile(src)
		if err != nil {
			t.Fatalf("program %d does not compile: %v\n%s", pi, err, src)
		}
		run := interp.Run(c, interp.Options{BuildTrace: true})
		if run.Err != nil {
			t.Fatalf("program %d aborted: %v\n%s", pi, run.Err, src)
		}
		tr := run.Trace
		outs := run.OutputValues()
		if len(outs) == 0 {
			continue
		}
		// Synthesize a failure at the last output: pretend it should have
		// printed one more than it did.
		o := tr.OutputAt(len(outs) - 1)
		ver := &implicit.Verifier{
			C: c, Orig: tr,
			WrongOut: *o, Vexp: o.Value + 1, HasVexp: true,
		}
		sd := staticdep.New(c, nil)
		flt := check.NewStaticReachFilter(sd, tr, o.Entry)

		checked := 0
		fired := false
		for p := 0; p < tr.Len() && checked < maxChecked; p++ {
			pe := tr.At(p)
			if pe.Branch != cfg.True && pe.Branch != cfg.False {
				continue
			}
			for u := p + 1; u < tr.Len() && checked < maxChecked; u++ {
				if !flt.ProvablyNotID(p, u) {
					continue
				}
				seen := map[int]bool{}
				for _, rec := range tr.At(u).Uses {
					if rec.Sym < 0 || seen[rec.Sym] || checked >= maxChecked {
						continue
					}
					seen[rec.Sym] = true
					fires++
					checked++
					fired = true
					req := implicit.Request{Pred: p, Use: u, UseSym: rec.Sym, UseElem: rec.Elem}
					if res := ver.VerifyDetailed(req); res.Verdict != implicit.NotID {
						t.Fatalf("program %d: unsound fire pred=%v use=%v sym=%d: verdict %v\n%s",
							pi, pe.Inst, tr.At(u).Inst, rec.Sym, res.Verdict, src)
					}
				}
			}
		}
		if fired {
			progsWithFires++
		}
	}
	if fires == 0 {
		t.Fatal("filter never fired on any random program: stress test is vacuous")
	}
	t.Logf("confirmed %d fires across %d/%d programs", fires, progsWithFires, programs)
}
