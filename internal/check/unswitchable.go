// UnswitchablePredicate (EOL0008): the static cousin of the dynamic
// skip-filter in skipfilter.go. Where the filter proves one switched
// *run* pointless from the failing trace, this pass proves a predicate
// pointless for *every* run: nothing its branches control can influence
// any program output.
package check

import (
	"eol/internal/cfg"
	"eol/internal/lang/ast"
	"eol/internal/lang/sem"
	"eol/internal/lang/token"
)

// UnswitchablePredicate (EOL0008) flags predicates whose switch provably
// cannot affect any output, via a transitive control-dependence +
// reaching-definitions closure over output-relevant statements.
var UnswitchablePredicate = &Analyzer{
	Name:     "unswitchable-predicate",
	Code:     "EOL0008",
	Severity: Info,
	Doc: `flags predicates none of whose controlled statements can influence
any program output: no print, escape, call, input read or fault-capable
operation, and no definition that reaches an output-relevant use. Forcing
either branch of such a predicate is observationally futile, so it can
never carry the implicit dependence the locator searches for.`,
	Run: runUnswitchable,
}

// runUnswitchable computes the set of output-relevant statements as a
// fixpoint and reports predicates whose controlled closures avoid it.
//
// Seeds — statements observable by themselves:
//   - outputs (print) and control escapes (return/break/continue),
//   - user calls (the callee may do anything observable),
//   - input reads (read() desynchronizes every later read),
//   - fault-capable operations (indexing, division, shifts, assert):
//     executing or skipping one can abort the program.
//
// Closure:
//   - a definition is relevant if it may reach a use at a relevant
//     statement (reaching definitions; global definitions are relevant
//     whenever the global is read anywhere, since flows through calls
//     are not tracked per-path),
//   - a predicate is relevant if either branch's transitive
//     control-dependence closure contains a relevant statement.
func runUnswitchable(p *Pass) {
	info := p.Unit.C.Info
	flow := p.Unit.Flow

	relevant := map[int]bool{}
	for _, s := range info.Stmts {
		if seedRelevant(info, s) {
			relevant[s.ID()] = true
		}
	}
	globalRead := map[int]bool{}
	for _, s := range info.Stmts {
		for _, sym := range info.StmtUses[s.ID()] {
			if sym.Kind == sem.Global {
				globalRead[sym.ID] = true
			}
		}
	}

	reaches := func(def int, sym *sem.Symbol) bool {
		if sym.Func == nil {
			return false
		}
		for _, u := range sym.Func.StmtIDs {
			if !relevant[u] || !usesSym(info, u, sym.ID) {
				continue
			}
			for _, d := range flow.DefsReaching(u, sym.ID) {
				if d == def {
					return true
				}
			}
		}
		return false
	}
	controlsRelevant := func(pred int) bool {
		for _, label := range []cfg.Label{cfg.True, cfg.False} {
			for id := range flow.ControlledBy(pred, label) {
				if relevant[id] {
					return true
				}
			}
		}
		return false
	}

	for changed := true; changed; {
		changed = false
		for _, s := range info.Stmts {
			id := s.ID()
			if relevant[id] {
				continue
			}
			for _, sym := range info.StmtDefs[id] {
				if sym.Kind == sem.Global && globalRead[sym.ID] {
					relevant[id] = true
					changed = true
					break
				}
				if reaches(id, sym) {
					relevant[id] = true
					changed = true
					break
				}
			}
			if !relevant[id] && ast.IsPredicate(s) && controlsRelevant(id) {
				relevant[id] = true
				changed = true
			}
		}
	}

	for _, s := range info.Stmts {
		if !ast.IsPredicate(s) {
			continue
		}
		if !controlsRelevant(s.ID()) {
			p.ReportStmt(s.ID(), "switching this predicate cannot affect any output (no controlled statement is output-relevant)")
		}
	}
}

// seedRelevant reports whether executing (or not executing) s is
// observable regardless of data flow.
func seedRelevant(info *sem.Info, s ast.Numbered) bool {
	switch s.(type) {
	case *ast.PrintStmt, *ast.ReturnStmt, *ast.BreakStmt, *ast.ContinueStmt:
		return true
	}
	if len(info.StmtCalls[s.ID()]) > 0 {
		return true
	}
	if a, ok := s.(*ast.AssignStmt); ok {
		switch a.Op {
		case token.QUO_ASSIGN, token.REM_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN:
			return true
		}
	}
	seed := false
	ast.InspectExprs(s, func(x ast.Expr) {
		switch t := x.(type) {
		case *ast.IndexExpr:
			seed = true
		case *ast.BinaryExpr:
			switch t.Op {
			case token.QUO, token.REM, token.SHL, token.SHR:
				seed = true
			}
		case *ast.CallExpr:
			switch t.Fun.Name {
			case "read", "assert":
				seed = true
			}
		}
	})
	return seed
}
