// Static skip-filter for predicate-switching verification.
//
// SwitchFilter proves, from the original failing trace plus static facts
// alone — no switched re-execution — that verifying a candidate implicit
// dependence (p, u) must return NOT_ID. The locator can then skip the
// switched run and synthesize the verdict, keeping verdicts, counters and
// the verification log byte-identical while performing fewer runs.
//
// The argument is a whole-execution replay proof. Let E be the failing
// execution and E' the execution with predicate instance p's branch
// inverted. E' shares E's prefix up to p exactly. Inside p's region, E'
// abandons the entries E executed under the taken branch (the dynamic
// region, read off the trace's control-parent relation) and instead
// executes the statements statically control dependent on the opposite
// branch. If the filter can bound both sides' effects — the vanished
// entries' net state change is known from the trace, the new branch's
// writes are evaluated against the reconstructed state at p — then E'
// re-joins E at the region exit with a known set of "tainted" cells whose
// values may differ. A forward taint walk over E's suffix then records
// the first index where the divergence escapes the proof — flips a branch
// outcome, makes a new fault possible, desynchronizes input, survives
// into a call, or reaches the wrong output entry (predFacts.fatalAt;
// trace length when the taint drains harmlessly). Strictly before that
// index E' is provably aligned entry-for-entry with E. The verdict is
// prefix-determined: once u' materializes untainted with its reaching
// definitions outside Region(p') and the wrong output's counterpart o'
// still prints the wrong value, any later outcome — normal completion,
// fault, or budget exhaustion — still yields NOT_ID (edge mode). So a
// verification is skippable when its deciding facts all commit before
// fatalAt.
//
// Anything the filter cannot bound — loops, calls or input consumption in
// the newly executed branch, control escaping the vanished region,
// unprovable fault safety — makes it bail and report "not provable"; it
// never guesses. The filter is unsound for PathMode verification (taint
// flowing through allowed suffix writes can create an explicit p'–u'
// dependence path), so callers must not consult it when PathMode is on.
package check

import (
	"fmt"

	"eol/internal/cfg"
	"eol/internal/dataflow"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/lang/sem"
	"eol/internal/trace"
)

// cellKey identifies one dynamic storage cell: an abstract location
// (symbol + element) in a concrete activation frame. Globals live in
// frame 0; ScalarElem names the scalar cell.
type cellKey struct {
	sym   int
	elem  int64
	frame int
}

// SwitchFilter answers "is this verification provably NOT_ID?" for one
// failing execution. It is not safe for concurrent use; the locator
// consults it from its sequential planning loop.
type SwitchFilter struct {
	c    *interp.Compiled
	flow *dataflow.Analysis
	tr   *trace.Trace
	// wrong is the trace entry index producing the first wrong output.
	// It must match the verifier's WrongOut.Entry; -1 is only sound when
	// the verifier has no expected value (HasVexp false), since without
	// one no verdict can strengthen to StrongID via the wrong output.
	wrong        int
	budgetFactor int

	preds map[int]*predFacts       // per pred trace index
	scans map[scanKey]*branchScan  // per (pred stmt, opposite label)
	stmts map[int]*stmtStaticFacts // per statement ID
}

// NewSwitchFilter builds a filter over one failing execution. wrongEntry
// is the trace index of the first wrong output (pass -1 only when the
// verifier runs without an expected value); budgetFactor mirrors
// implicit.Verifier.BudgetFactor (<= 0 means the default of 10).
func NewSwitchFilter(c *interp.Compiled, flow *dataflow.Analysis, tr *trace.Trace, wrongEntry, budgetFactor int) *SwitchFilter {
	if flow == nil {
		flow = dataflow.New(c.Info, c.CFG)
	}
	if budgetFactor <= 0 {
		budgetFactor = 10
	}
	return &SwitchFilter{
		c: c, flow: flow, tr: tr,
		wrong:        wrongEntry,
		budgetFactor: budgetFactor,
		preds:        map[int]*predFacts{},
		scans:        map[scanKey]*branchScan{},
		stmts:        map[int]*stmtStaticFacts{},
	}
}

// ProvablyNotID reports whether switching the predicate instance at trace
// index predIdx provably cannot yield an implicit-dependence verdict for
// the use entry at useIdx on symbol sym — i.e. the switched run would
// certainly return NOT_ID, so it can be skipped. The proof is per
// (predicate instance, use instance, symbol); elements are resolved from
// the use entry's recorded cells.
func (f *SwitchFilter) ProvablyNotID(predIdx, useIdx, sym int) bool {
	if predIdx < 0 || useIdx <= predIdx || useIdx >= f.tr.Len() {
		return false
	}
	pf := f.predAnalysis(predIdx)
	if !pf.ok {
		return false
	}
	// u inside the vanishing region would make u' disappear (verdict ID).
	if useIdx < pf.regionEnd {
		return false
	}
	// u' must materialize before the divergence escapes the proof, and so
	// must the wrong output (a structural divergence before it could
	// re-align o' to an instance printing the expected value). A wrong
	// output at or before the predicate, or inside the vanished region,
	// is prefix-identical or unalignable and cannot turn StrongID.
	if useIdx >= pf.fatalAt {
		return false
	}
	if f.wrong >= pf.regionEnd && f.wrong >= pf.fatalAt {
		return false
	}
	// A tainted use could change elements read or values flowing onward.
	if pf.tainted[useIdx] {
		return false
	}
	// Region(p') in E' contains exactly the new branch's entries; if any
	// of them writes a cell the use reads under sym — even writing the
	// same value — u''s reaching definition moves inside the region and
	// the verdict becomes ID. (Only uses matching the request symbol
	// participate in the verdict.)
	ue := f.tr.At(useIdx)
	for _, rec := range ue.Uses {
		if rec.Sym != sym {
			continue
		}
		if pf.newWrites[f.cellOf(ue, rec.Sym, rec.Elem)] {
			return false
		}
	}
	return true
}

// Reason reports why the predicate instance at predIdx is not provable
// ("" when its analysis succeeded), for diagnostics and tests.
func (f *SwitchFilter) Reason(predIdx int) string {
	if predIdx < 0 || predIdx >= f.tr.Len() {
		return "out of range"
	}
	pf := f.predAnalysis(predIdx)
	if !pf.ok {
		return pf.reason
	}
	if pf.fatalWhy != "" {
		return fmt.Sprintf("provable before index %d (%s)", pf.fatalAt, pf.fatalWhy)
	}
	return ""
}

// cellOf resolves the frame of a cell used or defined by entry e.
func (f *SwitchFilter) cellOf(e *trace.Entry, sym int, elem int64) cellKey {
	if f.c.Info.Symbols[sym].Kind == sem.Global {
		return cellKey{sym, elem, 0}
	}
	return cellKey{sym, elem, e.Frame}
}

// ---------------------------------------------------------------------------
// Per-predicate-instance analysis

// predFacts is the cached outcome of analyzing one switch candidate.
type predFacts struct {
	ok        bool
	reason    string // why the filter bailed, for diagnostics and tests
	regionEnd int    // first trace index after the dynamic region
	// fatalAt is the first suffix index where the divergence escapes the
	// proof — a flipped branch outcome, a possible new fault, desynced
	// input, a tainted call, or taint at the wrong output (trace length
	// when none). E and E' are provably aligned entry-for-entry strictly
	// before it; past it anything may happen, but a verdict whose
	// deciding facts (u', and the wrong output if it matters) all commit
	// before fatalAt is already NOT_ID: budget exhaustion and faults
	// both yield NOT_ID once u' exists, and alignment is prefix-stable.
	fatalAt  int
	fatalWhy string
	// tainted marks pre-fatalAt entries whose produced value may differ.
	tainted map[int]bool
	// newWrites holds every cell the opposite branch may write (including
	// provable no-ops, which still relocate reaching definitions).
	newWrites map[cellKey]bool
}

func bail(reason string) *predFacts { return &predFacts{reason: reason} }

func (f *SwitchFilter) predAnalysis(predIdx int) *predFacts {
	if pf, ok := f.preds[predIdx]; ok {
		return pf
	}
	pf := f.analyze(predIdx)
	f.preds[predIdx] = pf
	return pf
}

func (f *SwitchFilter) analyze(predIdx int) *predFacts {
	pe := f.tr.At(predIdx)
	if pe.Branch != cfg.True && pe.Branch != cfg.False {
		return bail("not a predicate instance")
	}
	ps := pe.Inst.Stmt
	scan := f.branchStmts(ps, pe.Branch.Negate())
	if !scan.ok {
		return bail("opposite branch: " + scan.reason)
	}

	// Phase 1: replay E up to the predicate to reconstruct machine state,
	// then through the dynamic region to diff the vanishing effects.
	rp := newReplay(f)
	for i := 0; i < predIdx; i++ {
		rp.step(i)
	}
	rp.release(predIdx) // calls whose span ends at p commit before it
	stateAtP := rp.snapshot()
	framesAtP := map[int]bool{0: true}
	for i := 0; i <= predIdx; i++ {
		framesAtP[f.tr.At(i).Frame] = true
	}

	// The dynamic region: the contiguous run of control descendants.
	anc := f.tr.Ancestry()
	regionEnd := predIdx + 1
	for regionEnd < f.tr.Len() && anc.IsAncestor(predIdx, regionEnd) {
		regionEnd++
	}

	// Vanishing side (the branch E took): every effect is on the trace.
	touched := map[cellKey]cellVal{} // pre-region values of written cells
	for i := predIdx + 1; i < regionEnd; i++ {
		e := f.tr.At(i)
		sf := f.stmtFacts(e.Inst.Stmt)
		if sf.consumesInput {
			return bail("region consumes input")
		}
		switch n := f.c.Info.Stmt(e.Inst.Stmt).(type) {
		case *ast.BreakStmt, *ast.ContinueStmt:
			loop := f.c.Info.LoopOf[e.Inst.Stmt]
			if loop == nil || !f.loopInsideRegion(predIdx, i, loop.ID()) {
				return bail("region breaks out of an enclosing loop")
			}
			_ = n
		case *ast.ReturnStmt:
			if framesAtP[e.Frame] {
				return bail("region returns from a live frame")
			}
		}
		for _, t := range rp.targets(e) {
			if _, seen := touched[t.key]; !seen {
				touched[t.key] = rp.lookup(t.key)
			}
		}
		rp.step(i)
	}
	// Call definitions committing at the region boundary are identical in
	// E and E' (prefix-entered calls that would have to return inside the
	// region were rejected by the live-frame check above); apply them so
	// the diff below sees the true post-region state. Anything still
	// pending afterwards commits in the suffix and is handled by the
	// taint walk.
	rp.release(regionEnd)

	// Taint seeds: vanished writes whose net effect was a value change …
	taintCells := map[cellKey]bool{}
	for key, pre := range touched {
		post := rp.lookup(key)
		if !pre.known || !post.known || pre.val != post.val {
			taintCells[key] = true
		}
	}
	// … plus the new branch's writes, evaluated against the state at p.
	// A new write leaves its cell untainted only when the written value,
	// the state at p (the branch may sit under a further condition and
	// not execute), and E's post-region value all provably agree.
	newVals, ok, why := f.evalNewBranch(scan, pe, stateAtP)
	if !ok {
		return bail("opposite branch: " + why)
	}
	newWrites := make(map[cellKey]bool, len(newVals))
	for key, v := range newVals {
		newWrites[key] = true
		post := rp.lookup(key)
		preP := snapVal(stateAtP, key)
		if !(v.ok && post.known && preP.known && v.val == post.val && preP.val == post.val) {
			taintCells[key] = true
		}
	}

	// Phase 2: forward taint walk over the suffix, up to the first fatal
	// divergence. (No budget precheck is needed: once the deciding facts
	// commit, a budget-exceeded or faulting switched run is NOT_ID too.)
	pf := &predFacts{ok: true, regionEnd: regionEnd, newWrites: newWrites,
		tainted: map[int]bool{}}
	f.taintWalk(rp, pf, taintCells, regionEnd)
	return pf
}

// loopInsideRegion reports whether the loop statement targeted by a
// break/continue entry is itself executing inside the switched region:
// some ancestor of entryIdx at or below predIdx is an instance of loopID.
func (f *SwitchFilter) loopInsideRegion(predIdx, entryIdx, loopID int) bool {
	for i := f.tr.At(entryIdx).Parent; i > predIdx; i = f.tr.At(i).Parent {
		if f.tr.At(i).Inst.Stmt == loopID {
			return true
		}
	}
	return false
}
