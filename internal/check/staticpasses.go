// SPDG-backed passes (EOL0009, EOL0010): the first analyzers to consume
// the interprocedural static dependence graph of internal/staticdep.
// Where EOL0008 reasons per function with conservative global and call
// handling, these two see through calls — summary edges pull callee
// bodies into predicate cones, and the supergraph reaching definitions
// kill global flows that never survive to a reader.
package check

import (
	"sort"
	"strings"

	"eol/internal/lang/ast"
	"eol/internal/lang/sem"
)

// InfluenceFreePredicate (EOL0009) flags predicates whose SPDG forward
// cone is silent: no output, no fault-capable operation and no input
// read anywhere in it, through calls included.
var InfluenceFreePredicate = &Analyzer{
	Name:     "influence-free-predicate",
	Code:     "EOL0009",
	Severity: Info,
	Doc: `flags predicates whose static forward cone over the interprocedural
dependence graph (control + data + call summary edges) contains no
output, fault-capable operation or input read: switching the predicate
cannot influence anything observable, so it can never carry an implicit
dependence. Sees through calls and killed global flows that the
per-function EOL0008 closure must treat conservatively.`,
	Run: runInfluenceFree,
}

// runInfluenceFree reports predicates with a silent, non-empty cone.
// EOL0008 findings are suppressed here — a predicate its weaker
// intra-function analysis already proves futile needs no second report;
// this pass exists for the cones only interprocedural precision closes.
func runInfluenceFree(p *Pass) {
	sd := p.Unit.StaticDeps()
	intra := map[int]bool{}
	diags := []Diagnostic{}
	pass := &Pass{Unit: p.Unit, Analyzer: UnswitchablePredicate, diags: &diags}
	UnswitchablePredicate.Run(pass)
	for _, d := range diags {
		intra[d.Stmt] = true
	}
	for _, s := range p.Unit.C.Info.Stmts {
		if !ast.IsPredicate(s) || intra[s.ID()] {
			continue
		}
		if sd.ConeSilent(s.ID()) {
			p.ReportStmt(s.ID(), "switching this predicate cannot influence any output (its interprocedural dependence cone is silent)")
		}
	}
}

// CrossCallDeadStore (EOL0010) flags global stores no execution can
// ever read, across all call paths.
var CrossCallDeadStore = &Analyzer{
	Name:     "cross-call-dead-store",
	Code:     "EOL0010",
	Severity: Warning,
	Doc: `flags assignments to globals whose values can never reach a reader:
the interprocedural reaching-definitions supergraph shows no use of the
global, in any function, that the stored value survives to. A seeded
fault behind such a store is unreachable by the locator, and in subject
programs it usually marks a misspelled or vestigial accumulator.
Self-updates (the stored expression reads the same global, as in a
trailing counter increment) are exempt: subjects are excerpts of larger
programs, where such counters feed code outside the excerpt.`,
	Run: runCrossCallDeadStore,
}

func runCrossCallDeadStore(p *Pass) {
	info := p.Unit.C.Info
	for _, id := range p.Unit.StaticDeps().DeadGlobalStores() {
		used := map[int]bool{}
		for _, sym := range info.StmtUses[id] {
			used[sym.ID] = true
		}
		var names []string
		for _, sym := range info.StmtDefs[id] {
			if sym.Kind == sem.Global && !used[sym.ID] {
				names = append(names, sym.Name)
			}
		}
		if len(names) == 0 {
			continue
		}
		sort.Strings(names)
		p.ReportStmt(id, "value stored to global %s is never read on any call path", strings.Join(names, ", "))
	}
}
