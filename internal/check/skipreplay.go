// Replay, opposite-branch evaluation and suffix taint walk backing
// SwitchFilter (see skipfilter.go for the overall argument).
package check

import (
	"sort"

	"eol/internal/cfg"
	"eol/internal/lang/ast"
	"eol/internal/lang/sem"
	"eol/internal/lang/token"
	"eol/internal/trace"
)

// ---------------------------------------------------------------------------
// Static per-statement facts

// stmtStaticFacts caches AST-level facts about one statement.
type stmtStaticFacts struct {
	consumesInput bool // contains read(); peek/eof do not consume
	hasUserCall   bool // calls a user-defined function
	// dangerous lists every fault-capable operand expression: divisors,
	// shift counts, array indexes and assert arguments. If none of these
	// can change value, re-executing the statement cannot newly fault.
	dangerous []ast.Expr
}

func (f *SwitchFilter) stmtFacts(id int) *stmtStaticFacts {
	if sf, ok := f.stmts[id]; ok {
		return sf
	}
	sf := &stmtStaticFacts{}
	node := f.c.Info.Stmt(id)
	if a, ok := node.(*ast.AssignStmt); ok {
		switch a.Op {
		case token.QUO_ASSIGN, token.REM_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN:
			sf.dangerous = append(sf.dangerous, a.RHS)
		}
	}
	ast.InspectExprs(node, func(x ast.Expr) {
		switch t := x.(type) {
		case *ast.IndexExpr:
			sf.dangerous = append(sf.dangerous, t.Index)
		case *ast.BinaryExpr:
			switch t.Op {
			case token.QUO, token.REM, token.SHL, token.SHR:
				sf.dangerous = append(sf.dangerous, t.Y)
			}
		case *ast.CallExpr:
			switch t.Fun.Name {
			case "read":
				sf.consumesInput = true
			case "assert":
				sf.dangerous = append(sf.dangerous, t.Args[0])
			case "peek", "eof", "len", "abs", "min", "max":
			default:
				sf.hasUserCall = true
			}
		}
	})
	f.stmts[id] = sf
	return sf
}

// ---------------------------------------------------------------------------
// Static scan of the opposite branch

type scanKey struct {
	stmt  int
	label cfg.Label
}

// branchScan is the cached static admissibility scan of one branch: the
// statements E' would newly execute when the predicate is switched.
type branchScan struct {
	ok      bool
	reason  string
	stmts   []int        // transitively controlled statements, sorted
	defSyms map[int]bool // symbols any of them may define
}

func (f *SwitchFilter) branchStmts(ps int, opp cfg.Label) *branchScan {
	key := scanKey{ps, opp}
	if s, ok := f.scans[key]; ok {
		return s
	}
	s := f.scanBranch(ps, opp)
	f.scans[key] = s
	return s
}

func (f *SwitchFilter) scanBranch(ps int, opp cfg.Label) *branchScan {
	// Switching a loop condition only inverts one evaluation: the loop
	// re-tests afterwards and may iterate unboundedly; model ifs only.
	if _, isIf := f.c.Info.Stmt(ps).(*ast.IfStmt); !isIf {
		return &branchScan{reason: "loop predicate"}
	}
	ctl := f.flow.ControlledBy(ps, opp)
	ids := make([]int, 0, len(ctl))
	for id := range ctl {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	s := &branchScan{stmts: ids, defSyms: map[int]bool{}}
	for _, id := range ids {
		switch f.c.Info.Stmt(id).(type) {
		case *ast.WhileStmt, *ast.ForStmt:
			return &branchScan{reason: "contains a loop"}
		case *ast.BreakStmt, *ast.ContinueStmt, *ast.ReturnStmt:
			return &branchScan{reason: "escapes the region"}
		}
		sf := f.stmtFacts(id)
		if sf.hasUserCall {
			return &branchScan{reason: "calls a function"}
		}
		if sf.consumesInput {
			return &branchScan{reason: "consumes input"}
		}
		for _, sym := range f.c.Info.StmtDefs[id] {
			s.defSyms[sym.ID] = true
		}
	}
	s.ok = true
	return s
}

// ---------------------------------------------------------------------------
// Trace replay with exact machine state

// cellVal is a replayed cell: a concrete value, or "unknown" where the
// trace does not determine it (e.g. parameter bindings, which carry no
// value and are healed by the callee's own use records).
type cellVal struct {
	val   int64
	known bool
}

// defTarget is one resolved definition of a trace entry. The primary
// definition of a statement containing a user call commits only after the
// callee has returned — trace order is not temporal order there — so it
// is marked deferred and applied at the end of the entry's descendant
// span.
type defTarget struct {
	key      cellKey
	val      int64
	known    bool
	deferred bool
}

type pendingDef struct {
	entry   int
	release int // first trace index past the entry's descendant span
	defs    []defTarget
}

// replay reconstructs machine state by walking the failing trace. Cells
// never read a wrong concrete value: anything the trace does not pin down
// is marked unknown, and use records (which carry observed values) heal
// unknowns as execution proceeds.
type replay struct {
	f       *SwitchFilter
	cells   map[cellKey]cellVal
	pending []pendingDef
}

func newReplay(f *SwitchFilter) *replay {
	return &replay{f: f, cells: map[cellKey]cellVal{}}
}

func (rp *replay) lookup(key cellKey) cellVal {
	if v, ok := rp.cells[key]; ok {
		return v
	}
	return cellVal{0, true} // every cell starts zero-initialized
}

func (rp *replay) snapshot() map[cellKey]cellVal {
	m := make(map[cellKey]cellVal, len(rp.cells))
	for k, v := range rp.cells {
		m[k] = v
	}
	return m
}

func snapVal(state map[cellKey]cellVal, key cellKey) cellVal {
	if v, ok := state[key]; ok {
		return v
	}
	return cellVal{0, true}
}

// release applies deferred call definitions whose span has ended by i,
// innermost call first when spans end together.
func (rp *replay) release(i int) {
	if len(rp.pending) == 0 {
		return
	}
	kept := rp.pending[:0]
	var due []pendingDef
	for _, p := range rp.pending {
		if p.release <= i {
			due = append(due, p)
		} else {
			kept = append(kept, p)
		}
	}
	rp.pending = kept
	sort.Slice(due, func(a, b int) bool {
		if due[a].release != due[b].release {
			return due[a].release < due[b].release
		}
		return due[a].entry > due[b].entry
	})
	for _, p := range due {
		for _, t := range p.defs {
			rp.cells[t.key] = cellVal{t.val, t.known}
		}
	}
}

func (rp *replay) spanEnd(i int) int {
	j := i + 1
	for j < rp.f.tr.Len() && rp.f.tr.IsAncestor(i, j) {
		j++
	}
	return j
}

func (rp *replay) step(i int) {
	rp.release(i)
	e := rp.f.tr.At(i)
	if !rp.f.stmtFacts(e.Inst.Stmt).hasUserCall {
		// Use records carry observed values: heal unknowns. (Skipped for
		// call statements, whose uses interleave with callee effects.)
		for _, rec := range e.Uses {
			if rec.Sym < 0 {
				continue
			}
			rp.cells[rp.f.cellOf(e, rec.Sym, rec.Elem)] = cellVal{rec.Val, true}
		}
	}
	var deferred []defTarget
	for _, t := range rp.targets(e) {
		if t.deferred {
			deferred = append(deferred, t)
		} else {
			rp.cells[t.key] = cellVal{t.val, t.known}
		}
	}
	if len(deferred) > 0 {
		rp.pending = append(rp.pending, pendingDef{i, rp.spanEnd(i), deferred})
	}
}

// targets resolves entry e's definition records to concrete cells.
// Parameter bindings at call statements land in the callee's frame —
// found via the entry's trace children — and are value-unknown.
func (rp *replay) targets(e *trace.Entry) []defTarget {
	info := rp.f.c.Info
	node := info.Stmt(e.Inst.Stmt)
	calls := info.StmtCalls[e.Inst.Stmt]
	hasCall := rp.f.stmtFacts(e.Inst.Stmt).hasUserCall
	var out []defTarget
	for _, rec := range e.Defs {
		if rec.Sym < 0 {
			continue
		}
		sym := info.Symbols[rec.Sym]
		binding := false
		if sym.Kind == sem.Param && sym.Func != nil {
			for _, fn := range calls {
				if fn == sym.Func.Name {
					binding = true
					break
				}
			}
		}
		if binding {
			for _, ch := range rp.f.tr.Children(e.Idx) {
				che := rp.f.tr.At(ch)
				if info.StmtFunc[che.Inst.Stmt] == sym.Func {
					out = append(out, defTarget{key: cellKey{rec.Sym, rec.Elem, che.Frame}})
				}
			}
			if primaryDef(info, node, rec.Sym) {
				// Recursion like "n = f(n-1)" inside f: the caller-side
				// cell shares the symbol; frames are ambiguous, poison it.
				out = append(out, defTarget{key: rp.f.cellOf(e, rec.Sym, rec.Elem), deferred: hasCall})
			}
			continue
		}
		if primaryDef(info, node, rec.Sym) {
			out = append(out, defTarget{
				key: rp.f.cellOf(e, rec.Sym, rec.Elem),
				val: primaryVal(node, e), known: true, deferred: hasCall,
			})
		} else {
			out = append(out, defTarget{key: rp.f.cellOf(e, rec.Sym, rec.Elem)})
		}
	}
	return out
}

// primaryDef reports whether rec.Sym is the statement's own assignment
// target (whose produced value the trace records as Entry.Value).
func primaryDef(info *sem.Info, node ast.Stmt, symID int) bool {
	switch n := node.(type) {
	case *ast.VarDeclStmt:
		s := info.Uses[n.Name]
		return s != nil && s.ID == symID
	case *ast.AssignStmt:
		var lhs *ast.Ident
		switch t := n.LHS.(type) {
		case *ast.Ident:
			lhs = t
		case *ast.IndexExpr:
			lhs = t.X
		}
		if lhs == nil {
			return false
		}
		s := info.Uses[lhs]
		return s != nil && s.ID == symID
	}
	return false
}

func primaryVal(node ast.Stmt, e *trace.Entry) int64 {
	if d, ok := node.(*ast.VarDeclStmt); ok && d.Size != nil {
		return 0 // array declarations zero every element
	}
	return e.Value
}
