// Package check is a pass-based static analyzer suite for MiniC,
// modeled on go/analysis: each check is an Analyzer with a name, a doc
// string and a Run function over a shared compilation Unit (AST +
// sem.Info + cfg.Program + dataflow.Analysis), emitting structured
// Diagnostics with stable codes.
//
// The suite exists to keep the reproduction's subjects trustworthy —
// Tables 1–4 are only as good as the MiniC programs behind them, and an
// unreachable seeded fault or an accidentally-constant predicate
// silently corrupts slice sizes and verification counts. It surfaces in
// three places: the eolvet CLI (and minic -vet), subject validation in
// the test/benchmark harnesses (testsupport.Validate), and the static
// skip-filter consulted by core.Locate (SwitchFilter, in this package),
// which shares the same static machinery to prove switched runs
// unnecessary.
//
// See docs/STATIC_CHECKS.md for the pass catalog with one minimal
// triggering program per code.
package check

import (
	"fmt"
	"sort"

	"eol/internal/dataflow"
	"eol/internal/interp"
	"eol/internal/lang/token"
	"eol/internal/staticdep"
)

// Severity grades a diagnostic. Only Error-severity diagnostics make a
// subject ill-formed (harness validation rejects them); warnings flag
// suspicious-but-legal constructs and infos are observations.
type Severity int

// Severities, mildest first.
const (
	Info Severity = iota
	Warning
	Error
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	}
	return "info"
}

// Diagnostic is one finding: a stable code, the statement it anchors to
// (0 when the finding is not statement-shaped, e.g. a whole function),
// its source position, and a message.
type Diagnostic struct {
	Code     string // stable, e.g. "EOL0003"
	Severity Severity
	Stmt     int // statement ID, 0 if none
	Pos      token.Pos
	Message  string
}

// String renders the diagnostic in file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s: %s", d.Pos, d.Severity, d.Code, d.Message)
}

// Unit is the shared compilation unit analyzers run over. Everything is
// derived from one compiled program; Flow is computed on demand by Load
// and shared across passes.
type Unit struct {
	C    *interp.Compiled
	Flow *dataflow.Analysis

	sd *staticdep.Graph // lazily built by StaticDeps
}

// Load compiles src and prepares the analysis unit.
func Load(src string) (*Unit, error) {
	c, err := interp.Compile(src)
	if err != nil {
		return nil, err
	}
	return NewUnit(c, nil), nil
}

// NewUnit wraps an already-compiled program; flow may be nil, in which
// case the dataflow analysis is computed here.
func NewUnit(c *interp.Compiled, flow *dataflow.Analysis) *Unit {
	if flow == nil {
		flow = dataflow.New(c.Info, c.CFG)
	}
	return &Unit{C: c, Flow: flow}
}

// StaticDeps returns the unit's SPDG (internal/staticdep), building it
// on first use and sharing it across passes. Not safe for concurrent
// callers — analyzers run sequentially over one unit.
func (u *Unit) StaticDeps() *staticdep.Graph {
	if u.sd == nil {
		u.sd = staticdep.New(u.C, u.Flow)
	}
	return u.sd
}

// Pass is one analyzer's run over one unit; Report collects findings
// with the analyzer's code and severity attached.
type Pass struct {
	Unit     *Unit
	Analyzer *Analyzer

	diags *[]Diagnostic
}

// Report records a finding at statement stmt (0 if none) and position
// pos.
func (p *Pass) Report(stmt int, pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Code:     p.Analyzer.Code,
		Severity: p.Analyzer.Severity,
		Stmt:     stmt,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportStmt records a finding at a numbered statement, using its own
// source position.
func (p *Pass) ReportStmt(stmt int, format string, args ...any) {
	p.Report(stmt, p.Unit.C.Info.Stmt(stmt).Pos(), format, args...)
}

// Analyzer is one static check, in the style of go/analysis.
type Analyzer struct {
	Name     string // short kebab-case name, e.g. "dead-store"
	Code     string // stable diagnostic code, e.g. "EOL0002"
	Doc      string // one-paragraph description
	Severity Severity
	Run      func(*Pass)
}

// Analyzers returns the full registered suite, in code order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		UninitRead,
		DeadStore,
		Unreachable,
		ConstPredicate,
		Unused,
		MissingReturn,
		ConstIndexOOB,
		UnswitchablePredicate,
		InfluenceFreePredicate,
		CrossCallDeadStore,
	}
}

// ByName returns the registered analyzer with the given name or code,
// nil if unknown.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name || a.Code == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers runs the given analyzers over u and returns their
// findings sorted by source position, then code — a stable order
// independent of pass registration.
func RunAnalyzers(u *Unit, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Unit: u, Analyzer: a, diags: &diags}
		a.Run(pass)
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Code < b.Code
	})
	return diags
}

// Vet runs the whole suite over u.
func Vet(u *Unit) []Diagnostic { return RunAnalyzers(u, Analyzers()) }

// HasErrors reports whether any diagnostic is Error-severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}
