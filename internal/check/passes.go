// The built-in analyzer suite: eight passes over the shared Unit, each
// with a stable EOLnnnn diagnostic code. docs/STATIC_CHECKS.md catalogs
// them with one minimal triggering program per code.
package check

import (
	"eol/internal/cfg"
	"eol/internal/lang/ast"
	"eol/internal/lang/sem"
	"eol/internal/lang/token"
)

// UninitRead (EOL0001) flags reads of scalar locals that a
// definition-free path can reach: the declaration carries no initializer
// and no assignment dominates the read. MiniC zero-initializes, so the
// read is deterministic — but a subject relying on an implicit zero in a
// *local* is almost always a seeding mistake. Globals are exempt: the
// paper's Figure 1 reads a zero-initialized global by design.
var UninitRead = &Analyzer{
	Name:     "uninit-read",
	Code:     "EOL0001",
	Severity: Warning,
	Doc: `flags reads of scalar local variables that may happen before any
initialization: the declaration has no initializer and some path reaches
the read without assigning. Detected via reaching definitions — the
virtual entry definition and uninitialized declaration sites surviving to
the use.`,
	Run: runUninitRead,
}

func runUninitRead(p *Pass) {
	info := p.Unit.C.Info
	for _, s := range info.Stmts {
		id := s.ID()
		for _, sym := range info.StmtUses[id] {
			if sym.Kind != sem.Local || sym.IsArray {
				continue
			}
			if d, ok := uninitDeclReaching(p.Unit, id, sym); ok {
				p.ReportStmt(id, "%s may be read before initialization (declared without initializer at S%d)",
					sym.Name, d)
			} else if p.Unit.Flow.EntryReaches(id, sym.ID) {
				p.ReportStmt(id, "%s may be read before initialization", sym.Name)
			}
		}
	}
}

// uninitDeclReaching reports whether an initializer-less scalar
// declaration of sym reaches the use statement.
func uninitDeclReaching(u *Unit, useStmt int, sym *sem.Symbol) (int, bool) {
	info := u.C.Info
	for _, d := range u.Flow.DefsReaching(useStmt, sym.ID) {
		vd, ok := info.Stmt(d).(*ast.VarDeclStmt)
		if !ok || vd.Init != nil || vd.Size != nil {
			continue
		}
		if ds := info.Uses[vd.Name]; ds != nil && ds.ID == sym.ID {
			return d, true
		}
	}
	return 0, false
}

// DeadStore (EOL0002) flags scalar assignments to locals and parameters
// whose value no use can observe.
var DeadStore = &Analyzer{
	Name:     "dead-store",
	Code:     "EOL0002",
	Severity: Warning,
	Doc: `flags assignments to scalar locals and parameters whose definition
reaches no use: the stored value is dead. Declarations and array-element
writes are exempt (element writes are weak updates under the analysis's
deliberate whole-array coarseness).`,
	Run: runDeadStore,
}

func runDeadStore(p *Pass) {
	info := p.Unit.C.Info
	for _, s := range info.Stmts {
		a, ok := s.(*ast.AssignStmt)
		if !ok {
			continue
		}
		lhs, ok := a.LHS.(*ast.Ident)
		if !ok {
			continue
		}
		sym := info.Uses[lhs]
		if sym == nil || sym.Kind == sem.Global || sym.IsArray || sym.Func == nil {
			continue
		}
		id := s.ID()
		live := false
		for _, u := range sym.Func.StmtIDs {
			if !usesSym(info, u, sym.ID) {
				continue
			}
			for _, d := range p.Unit.Flow.DefsReaching(u, sym.ID) {
				if d == id {
					live = true
					break
				}
			}
			if live {
				break
			}
		}
		if !live {
			p.ReportStmt(id, "value assigned to %s is never read", sym.Name)
		}
	}
}

func usesSym(info *sem.Info, stmt, sym int) bool {
	for _, s := range info.StmtUses[stmt] {
		if s.ID == sym {
			return true
		}
	}
	return false
}

// Unreachable (EOL0003) flags statements no path from function entry can
// execute. An error: a fault seeded on an unreachable statement silently
// measures nothing.
var Unreachable = &Analyzer{
	Name:     "unreachable-code",
	Code:     "EOL0003",
	Severity: Error,
	Doc: `flags statements unreachable from their function's entry (for
example, code after an unconditional return). Error severity: a fault
seeded on an unreachable statement can never execute, silently corrupting
an experiment.`,
	Run: runUnreachable,
}

func runUnreachable(p *Pass) {
	for _, g := range orderedGraphs(p.Unit) {
		seen := reachableNodes(g)
		for _, n := range g.Nodes {
			if n.Stmt != nil && !seen[n.Idx] {
				p.ReportStmt(n.Stmt.ID(), "unreachable code")
			}
		}
	}
}

// reachableNodes marks the nodes forward-reachable from g's entry.
func reachableNodes(g *cfg.Graph) []bool {
	seen := make([]bool, len(g.Nodes))
	stack := []*cfg.Node{g.Entry}
	seen[g.Entry.Idx] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Succs {
			if !seen[e.To.Idx] {
				seen[e.To.Idx] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// orderedGraphs returns the unit's function CFGs in source order.
func orderedGraphs(u *Unit) []*cfg.Graph {
	var gs []*cfg.Graph
	for _, f := range u.C.Info.Prog.Funcs {
		if g := u.C.CFG.Funcs[f.Name.Name]; g != nil {
			gs = append(gs, g)
		}
	}
	return gs
}

// ConstPredicate (EOL0004) flags predicates whose condition folds to a
// constant: the branch outcome never varies, so the predicate
// contributes nothing to control flow — and predicate switching it
// explores an execution the program text already rules out.
var ConstPredicate = &Analyzer{
	Name:     "constant-predicate",
	Code:     "EOL0004",
	Severity: Warning,
	Doc: `flags if/while/for conditions that fold to a constant: the branch
always goes the same way, so the predicate is decoration — and a
suspicious subject for predicate-switching experiments.`,
	Run: runConstPredicate,
}

func runConstPredicate(p *Pass) {
	info := p.Unit.C.Info
	for _, s := range info.Stmts {
		var cond ast.Expr
		switch t := s.(type) {
		case *ast.IfStmt:
			cond = t.Cond
		case *ast.WhileStmt:
			cond = t.Cond
		case *ast.ForStmt:
			cond = t.Cond
		default:
			continue
		}
		if cond == nil {
			continue
		}
		if v, ok := constFold(cond); ok {
			p.ReportStmt(s.ID(), "condition is always %s (folds to %d)", truth(v), v)
		}
	}
}

func truth(v int64) string {
	if v != 0 {
		return "true"
	}
	return "false"
}

// constFold evaluates an expression made of literals and fault-free
// operators; ok is false for anything involving a variable, a call, or
// an operation whose folding could hide a runtime fault.
func constFold(x ast.Expr) (int64, bool) {
	switch t := x.(type) {
	case *ast.IntLit:
		return t.Value, true
	case *ast.UnaryExpr:
		v, ok := constFold(t.X)
		if !ok {
			return 0, false
		}
		switch t.Op {
		case token.SUB:
			return -v, true
		case token.NOT:
			if v == 0 {
				return 1, true
			}
			return 0, true
		case token.TILD:
			return ^v, true
		}
	case *ast.BinaryExpr:
		a, aok := constFold(t.X)
		b, bok := constFold(t.Y)
		if !aok || !bok {
			return 0, false
		}
		switch t.Op {
		case token.QUO:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case token.REM:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case token.SHL, token.SHR:
			if b < 0 || b > 63 {
				return 0, false
			}
			if t.Op == token.SHL {
				return a << uint(b), true
			}
			return a >> uint(b), true
		case token.LAND:
			return boolVal(a != 0 && b != 0), true
		case token.LOR:
			return boolVal(a != 0 || b != 0), true
		case token.ADD, token.SUB, token.MUL, token.AND, token.OR, token.XOR,
			token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			return pureBinop(t.Op, a, b), true
		}
	}
	return 0, false
}

// Unused (EOL0005) flags variables never read and functions never
// called.
var Unused = &Analyzer{
	Name:     "unused",
	Code:     "EOL0005",
	Severity: Warning,
	Doc: `flags variables that are never read (locals, parameters and
globals; assignments alone do not count as reads) and user functions that
are never called.`,
	Run: runUnused,
}

func runUnused(p *Pass) {
	info := p.Unit.C.Info
	read := map[int]bool{}
	for _, s := range info.Stmts {
		for _, sym := range info.StmtUses[s.ID()] {
			read[sym.ID] = true
		}
	}
	for _, sym := range info.Symbols {
		if !read[sym.ID] {
			p.Report(0, sym.DeclPos, "%s %s is never read", sym.Kind, sym.String())
		}
	}
	called := map[string]bool{}
	for _, s := range info.Stmts {
		for _, fn := range info.StmtCalls[s.ID()] {
			called[fn] = true
		}
	}
	for _, f := range info.Prog.Funcs {
		if f.Name.Name != "main" && !called[f.Name.Name] {
			p.Report(0, f.Pos(), "function %s is never called", f.Name.Name)
		}
	}
}

// MissingReturn (EOL0006) flags functions whose result is consumed while
// some path falls off the end (implicitly returning 0).
var MissingReturn = &Analyzer{
	Name:     "missing-return",
	Code:     "EOL0006",
	Severity: Warning,
	Doc: `flags functions whose call results are used as values while some
path through the body falls off the end or hits a bare return — both
implicitly produce 0, which is rarely what the subject means.`,
	Run: runMissingReturn,
}

func runMissingReturn(p *Pass) {
	info := p.Unit.C.Info
	// A function's value is "used" when some call to it is not the
	// entire expression of an ExprStmt (whose value is discarded).
	valueUsed := map[string]bool{}
	for _, s := range info.Stmts {
		discarded := map[ast.Expr]bool{}
		if es, ok := s.(*ast.ExprStmt); ok {
			discarded[es.X] = true
		}
		ast.InspectExprs(s, func(x ast.Expr) {
			if c, ok := x.(*ast.CallExpr); ok && !discarded[x] {
				if _, isUser := info.Funcs[c.Fun.Name]; isUser {
					valueUsed[c.Fun.Name] = true
				}
			}
		})
	}
	for _, f := range info.Prog.Funcs {
		name := f.Name.Name
		if !valueUsed[name] {
			continue
		}
		g := p.Unit.C.CFG.Funcs[name]
		if g == nil {
			continue
		}
		reachable := reachableNodes(g)
		for _, e := range g.Exit.Preds {
			n := e.To
			if !reachable[n.Idx] {
				continue // unreachable fall-offs are EOL0003's problem
			}
			if n.Stmt == nil {
				p.Report(0, f.Pos(), "function %s is used for its value but has an empty body", name)
				break
			}
			if ret, isRet := n.Stmt.(*ast.ReturnStmt); !isRet || ret.Value == nil {
				p.Report(0, f.Pos(), "function %s is used for its value but may return without one (implicitly 0)", name)
				break
			}
		}
	}
}

// ConstIndexOOB (EOL0007) flags array accesses with a constant index
// outside the array bounds: a guaranteed runtime fault if executed.
var ConstIndexOOB = &Analyzer{
	Name:     "const-index-oob",
	Code:     "EOL0007",
	Severity: Error,
	Doc: `flags array index expressions whose index folds to a constant
outside [0, len): executing the access faults unconditionally. Error
severity: such a subject cannot produce the traced runs the experiments
need.`,
	Run: runConstIndexOOB,
}

func runConstIndexOOB(p *Pass) {
	info := p.Unit.C.Info
	for _, s := range info.Stmts {
		id := s.ID()
		ast.InspectExprs(s, func(x ast.Expr) {
			ix, ok := x.(*ast.IndexExpr)
			if !ok {
				return
			}
			sym := info.Uses[ix.X]
			if sym == nil || !sym.IsArray {
				return
			}
			if v, ok := constFold(ix.Index); ok && (v < 0 || v >= sym.Size) {
				p.ReportStmt(id, "constant index %d out of bounds for %s[%d]", v, sym.Name, sym.Size)
			}
		})
	}
}
