// Opposite-branch abstract evaluation and the suffix taint walk for
// SwitchFilter (see skipfilter.go for the overall argument).
package check

import (
	"fmt"

	"eol/internal/lang/ast"
	"eol/internal/lang/sem"
	"eol/internal/lang/token"
	"eol/internal/trace"
)

// ---------------------------------------------------------------------------
// Opposite-branch evaluation

// ev is an abstract value: ok means the value is known exactly, safe
// means evaluating the expression in E' provably cannot fault.
type ev struct {
	val  int64
	ok   bool
	safe bool
}

// nbEval evaluates opposite-branch expressions against the replayed state
// at the predicate. Any symbol the branch itself may define reads as
// unknown, which makes the per-statement evaluation order-insensitive.
type nbEval struct {
	f       *SwitchFilter
	state   map[cellKey]cellVal
	defSyms map[int]bool
	frame   int
}

func (n *nbEval) cellFor(s *sem.Symbol, elem int64) cellKey {
	if s.Kind == sem.Global {
		return cellKey{s.ID, elem, 0}
	}
	return cellKey{s.ID, elem, n.frame}
}

func (n *nbEval) read(s *sem.Symbol, elem int64) ev {
	if n.defSyms[s.ID] {
		return ev{ok: false, safe: true} // may be rewritten within the branch
	}
	v := snapVal(n.state, n.cellFor(s, elem))
	return ev{v.val, v.known, true}
}

func (n *nbEval) expr(x ast.Expr) ev {
	switch t := x.(type) {
	case *ast.IntLit:
		return ev{t.Value, true, true}
	case *ast.StringLit:
		return ev{0, true, true}
	case *ast.Ident:
		s := n.f.c.Info.Uses[t]
		if s == nil || s.IsArray {
			return ev{ok: false, safe: true}
		}
		return n.read(s, trace.ScalarElem)
	case *ast.IndexExpr:
		s := n.f.c.Info.Uses[t.X]
		idx := n.expr(t.Index)
		if s == nil || !idx.ok || !idx.safe || idx.val < 0 || idx.val >= s.Size {
			return ev{ok: false, safe: false}
		}
		return n.read(s, idx.val)
	case *ast.UnaryExpr:
		v := n.expr(t.X)
		if !v.ok {
			return ev{ok: false, safe: v.safe}
		}
		switch t.Op {
		case token.SUB:
			return ev{-v.val, true, v.safe}
		case token.NOT:
			return ev{boolVal(v.val == 0), true, v.safe}
		case token.TILD:
			return ev{^v.val, true, v.safe}
		}
		return ev{ok: false, safe: false}
	case *ast.BinaryExpr:
		return n.binary(t)
	case *ast.CallExpr:
		return n.call(t)
	}
	return ev{ok: false, safe: false}
}

func (n *nbEval) binary(t *ast.BinaryExpr) ev {
	a := n.expr(t.X)
	switch t.Op {
	case token.LAND, token.LOR:
		short := int64(0)
		if t.Op == token.LOR {
			short = 1
		}
		if a.ok && a.safe && boolVal(a.val != 0) == short {
			return ev{short, true, true} // Y never evaluated
		}
		b := n.expr(t.Y)
		safe := a.safe && b.safe
		if b.ok && boolVal(b.val != 0) == short {
			return ev{short, true, safe} // same result whichever side decides
		}
		if a.ok && b.ok {
			if t.Op == token.LAND {
				return ev{boolVal(a.val != 0 && b.val != 0), true, safe}
			}
			return ev{boolVal(a.val != 0 || b.val != 0), true, safe}
		}
		return ev{ok: false, safe: safe}
	}
	b := n.expr(t.Y)
	switch t.Op {
	case token.QUO, token.REM:
		if !b.ok || !b.safe || !a.safe || b.val == 0 {
			return ev{ok: false, safe: false}
		}
		if !a.ok {
			return ev{ok: false, safe: true}
		}
		if t.Op == token.QUO {
			return ev{a.val / b.val, true, true}
		}
		return ev{a.val % b.val, true, true}
	case token.SHL, token.SHR:
		if !b.ok || !b.safe || !a.safe || b.val < 0 || b.val > 63 {
			return ev{ok: false, safe: false}
		}
		if !a.ok {
			return ev{ok: false, safe: true}
		}
		if t.Op == token.SHL {
			return ev{a.val << uint(b.val), true, true}
		}
		return ev{a.val >> uint(b.val), true, true}
	}
	safe := a.safe && b.safe
	if !a.ok || !b.ok {
		return ev{ok: false, safe: safe}
	}
	return ev{pureBinop(t.Op, a.val, b.val), true, safe}
}

func (n *nbEval) call(t *ast.CallExpr) ev {
	switch t.Fun.Name {
	case "len":
		if id, ok := t.Args[0].(*ast.Ident); ok {
			if s := n.f.c.Info.Uses[id]; s != nil {
				return ev{s.Size, true, true}
			}
		}
		return ev{ok: false, safe: false}
	case "peek", "eof":
		return ev{ok: false, safe: true} // consume nothing, never fault
	case "abs":
		v := n.expr(t.Args[0])
		if !v.ok {
			return ev{ok: false, safe: v.safe}
		}
		if v.val < 0 {
			v.val = -v.val
		}
		return v
	case "min", "max":
		a, b := n.expr(t.Args[0]), n.expr(t.Args[1])
		safe := a.safe && b.safe
		if !a.ok || !b.ok {
			return ev{ok: false, safe: safe}
		}
		v := a.val
		if (t.Fun.Name == "min") == (b.val < a.val) {
			v = b.val
		}
		return ev{v, true, safe}
	case "assert":
		v := n.expr(t.Args[0])
		if v.ok && v.safe && v.val != 0 {
			return v
		}
		return ev{ok: false, safe: false}
	}
	return ev{ok: false, safe: false} // read / user calls: excluded statically
}

func boolVal(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// pureBinop mirrors the interpreter for operators that cannot fault.
func pureBinop(op token.Kind, a, b int64) int64 {
	switch op {
	case token.ADD:
		return a + b
	case token.SUB:
		return a - b
	case token.MUL:
		return a * b
	case token.AND:
		return a & b
	case token.OR:
		return a | b
	case token.XOR:
		return a ^ b
	case token.EQL:
		return boolVal(a == b)
	case token.NEQ:
		return boolVal(a != b)
	case token.LSS:
		return boolVal(a < b)
	case token.LEQ:
		return boolVal(a <= b)
	case token.GTR:
		return boolVal(a > b)
	case token.GEQ:
		return boolVal(a >= b)
	}
	return 0
}

// evalNewBranch evaluates every statement the switched predicate would
// newly execute, proving fault-safety and collecting the (may-)written
// cells with their abstract values. Store indexes must be exactly known
// so the written cell set is precise.
func (f *SwitchFilter) evalNewBranch(scan *branchScan, pe *trace.Entry, state map[cellKey]cellVal) (map[cellKey]ev, bool, string) {
	n := &nbEval{f: f, state: state, defSyms: scan.defSyms, frame: pe.Frame}
	info := f.c.Info
	writes := map[cellKey]ev{}
	put := func(key cellKey, v ev) {
		if old, ok := writes[key]; ok && !(old.ok && v.ok && old.val == v.val) {
			v = ev{ok: false, safe: true}
		}
		writes[key] = v
	}
	for _, id := range scan.stmts {
		switch t := info.Stmt(id).(type) {
		case *ast.IfStmt:
			if c := n.expr(t.Cond); !c.safe {
				return nil, false, "condition may fault"
			}
		case *ast.VarDeclStmt:
			s := info.Uses[t.Name]
			if s == nil {
				return nil, false, "unresolved declaration"
			}
			if s.IsArray {
				if s.Size > 4096 {
					return nil, false, "large array declaration"
				}
				for el := int64(0); el < s.Size; el++ {
					put(n.cellFor(s, el), ev{0, true, true})
				}
				continue
			}
			v := ev{0, true, true}
			if t.Init != nil {
				if v = n.expr(t.Init); !v.safe {
					return nil, false, "initializer may fault"
				}
			}
			put(n.cellFor(s, trace.ScalarElem), v)
		case *ast.AssignStmt:
			rhs := n.expr(t.RHS)
			if !rhs.safe {
				return nil, false, "assignment may fault"
			}
			v := rhs
			switch t.Op {
			case token.ASSIGN:
			case token.QUO_ASSIGN, token.REM_ASSIGN:
				if !rhs.ok || rhs.val == 0 {
					return nil, false, "division may fault"
				}
				v = ev{ok: false, safe: true}
			case token.SHL_ASSIGN, token.SHR_ASSIGN:
				if !rhs.ok || rhs.val < 0 || rhs.val > 63 {
					return nil, false, "shift may fault"
				}
				v = ev{ok: false, safe: true}
			default:
				v = ev{ok: false, safe: true} // compound: reads its own target
			}
			switch lhs := t.LHS.(type) {
			case *ast.Ident:
				s := info.Uses[lhs]
				if s == nil {
					return nil, false, "unresolved assignment"
				}
				put(n.cellFor(s, trace.ScalarElem), v)
			case *ast.IndexExpr:
				s := info.Uses[lhs.X]
				idx := n.expr(lhs.Index)
				if s == nil || !idx.ok || !idx.safe || idx.val < 0 || idx.val >= s.Size {
					return nil, false, "store index not provable"
				}
				put(n.cellFor(s, idx.val), v)
			default:
				return nil, false, "invalid assignment target"
			}
		case *ast.PrintStmt:
			// Extra output is harmless to the verdict: only the aligned
			// counterpart of the wrong output entry is ever inspected.
			for _, a := range t.Args {
				if v := n.expr(a); !v.safe {
					return nil, false, "print argument may fault"
				}
			}
		case *ast.ExprStmt:
			if v := n.expr(t.X); !v.safe {
				return nil, false, "expression may fault"
			}
		default:
			return nil, false, "unsupported statement"
		}
	}
	return writes, true, ""
}

// ---------------------------------------------------------------------------
// Suffix taint walk

// taintWalk pushes the cell-level divergence seeded at the region exit
// forward through E's suffix until it escapes the proof — flips a branch
// outcome, makes a new fault possible, desynchronizes input, survives
// into a call, or reaches the wrong output entry — recording that first
// index in pf.fatalAt (trace length when the taint drains harmlessly).
// Strictly before fatalAt, E' is provably aligned entry-for-entry with E;
// entries whose produced value may differ are recorded in pf.tainted.
func (f *SwitchFilter) taintWalk(rp *replay, pf *predFacts, taint map[cellKey]bool, regionEnd int) {
	info := f.c.Info

	// arrTaint counts tainted cells per (array symbol, frame) so that an
	// indexed read with an untainted index is only deemed divergent when
	// the array actually holds taint somewhere.
	arrTaint := map[[2]int]int{}
	for key := range taint {
		if key.elem != trace.ScalarElem {
			arrTaint[[2]int{key.sym, key.frame}]++
		}
	}
	setCell := func(key cellKey, t bool) {
		if taint[key] == t {
			return
		}
		if t {
			taint[key] = true
		} else {
			delete(taint, key)
		}
		if key.elem != trace.ScalarElem {
			d := -1
			if t {
				d = 1
			}
			arrTaint[[2]int{key.sym, key.frame}] += d
		}
	}
	usesTainted := func(e *trace.Entry) bool {
		for _, rec := range e.Uses {
			if rec.Sym == trace.RetvalSym {
				if rec.Def >= 0 && pf.tainted[rec.Def] {
					return true
				}
				continue
			}
			if rec.Sym < 0 {
				continue
			}
			if taint[f.cellOf(e, rec.Sym, rec.Elem)] {
				return true
			}
		}
		return false
	}
	// exprMayDiffer conservatively decides whether an operand expression
	// can evaluate differently in E' — used for the fault-capable
	// operands of tainted entries, including operands a short-circuit
	// skipped in E (they carry no use records but may run in E').
	var exprMayDiffer func(x ast.Expr, e *trace.Entry) bool
	exprMayDiffer = func(x ast.Expr, e *trace.Entry) bool {
		switch t := x.(type) {
		case *ast.IntLit, *ast.StringLit:
			return false
		case *ast.Ident:
			s := info.Uses[t]
			if s == nil {
				return true
			}
			if s.IsArray {
				return false // only valid as a len() argument
			}
			fr := e.Frame
			if s.Kind == sem.Global {
				fr = 0
			}
			return taint[cellKey{s.ID, trace.ScalarElem, fr}]
		case *ast.IndexExpr:
			s := info.Uses[t.X]
			if s == nil || exprMayDiffer(t.Index, e) {
				return true
			}
			fr := e.Frame
			if s.Kind == sem.Global {
				fr = 0
			}
			return arrTaint[[2]int{s.ID, fr}] > 0
		case *ast.UnaryExpr:
			return exprMayDiffer(t.X, e)
		case *ast.BinaryExpr:
			return exprMayDiffer(t.X, e) || exprMayDiffer(t.Y, e)
		case *ast.CallExpr:
			switch t.Fun.Name {
			case "read", "peek", "eof", "len":
				return false // input stays synchronized; len is static
			case "abs", "min", "max", "assert":
				for _, a := range t.Args {
					if exprMayDiffer(a, e) {
						return true
					}
				}
				return false
			}
			return true // user call
		}
		return true
	}
	judge := func(e *trace.Entry, idx int) string {
		if ast.IsPredicate(info.Stmt(e.Inst.Stmt)) {
			return fmt.Sprintf("taint reaches a branch outcome (S%d at %d)", e.Inst.Stmt, idx)
		}
		if idx == f.wrong {
			return "taint reaches the wrong output"
		}
		sf := f.stmtFacts(e.Inst.Stmt)
		if sf.consumesInput {
			return "taint reaches an input read"
		}
		for _, d := range sf.dangerous {
			if exprMayDiffer(d, e) {
				return fmt.Sprintf("taint reaches a fault operand (S%d at %d)", e.Inst.Stmt, idx)
			}
		}
		return ""
	}

	// Deferred call commits: calls entered before the region that span it
	// (their callees return in the suffix — returning inside the region
	// was rejected earlier) plus calls made in the suffix itself. A call
	// whose arguments or callee results are tainted is not modeled — the
	// callee could do anything with them — so it bails the analysis.
	type pendingCall struct {
		entry, release int
		snap           bool // tainted when entered
		defs           []defTarget
	}
	var calls []pendingCall
	for _, p := range rp.pending {
		calls = append(calls, pendingCall{entry: p.entry, release: p.release, defs: p.defs})
	}
	rp.pending = nil
	releaseCalls := func(i int) string {
		kept := calls[:0]
		var due []pendingCall
		for _, p := range calls {
			if p.release <= i {
				due = append(due, p)
			} else {
				kept = append(kept, p)
			}
		}
		calls = kept
		for _, p := range due {
			if p.snap || usesTainted(f.tr.At(p.entry)) {
				return "taint reaches a call"
			}
			for _, d := range p.defs {
				setCell(d.key, false) // identical call, identical result
			}
		}
		return ""
	}

	pf.fatalAt = f.tr.Len()
	for i := regionEnd; i < f.tr.Len(); i++ {
		if why := releaseCalls(i); why != "" {
			pf.fatalAt, pf.fatalWhy = i, why
			return
		}
		e := f.tr.At(i)
		if f.stmtFacts(e.Inst.Stmt).hasUserCall {
			if usesTainted(e) {
				pf.fatalAt, pf.fatalWhy = i, "taint reaches a call"
				return
			}
			var deferred []defTarget
			for _, d := range rp.targets(e) {
				if d.deferred {
					deferred = append(deferred, d)
				} else {
					setCell(d.key, false) // parameter bindings of untainted args
				}
			}
			calls = append(calls, pendingCall{entry: i, release: rp.spanEnd(i), defs: deferred})
			continue
		}
		t := usesTainted(e)
		if t {
			if why := judge(e, i); why != "" {
				pf.fatalAt, pf.fatalWhy = i, why
				return
			}
			pf.tainted[i] = true
		}
		for _, d := range rp.targets(e) {
			setCell(d.key, t)
		}
	}
}
