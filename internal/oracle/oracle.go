// Package oracle mechanizes the paper's evaluation protocol.
//
// The PLDI 2007 experiments used a human in two places: answering "is the
// program state at this instance benign?" during pruning, and manually
// identifying OS, the failure-inducing dependence chain, as the ground
// truth ("statement instances not in OS were selected from the pruned
// slice in order as being benign").
//
// This package derives both mechanically from the *correct* version of
// the program (available for every seeded fault):
//
//   - The faulty and correct runs are paired by a lockstep walk over
//     their region trees: siblings pair positionally while their head
//     statements agree; subtrees are descended only when the paired heads
//     took the same branch. (Faults are expression-level, single-
//     statement edits, so both programs share statement numbering.)
//   - An instance is *benign* iff it pairs with a correct-run instance
//     that produced the same value, took the same branch, and printed the
//     same outputs. Unpaired instances are corrupted.
//
// This is exactly "does this instance hold corrupted program state",
// answered against ground truth instead of programmer judgment.
package oracle

import (
	"eol/internal/trace"
)

// Pairing maps faulty-run entries to correct-run entries.
type Pairing struct {
	faulty, correct *trace.Trace
	pair            map[int]int
}

// Pair aligns the faulty trace against the correct (reference) trace.
func Pair(faulty, correct *trace.Trace) *Pairing {
	p := &Pairing{faulty: faulty, correct: correct, pair: map[int]int{}}
	p.pairSiblings(faulty.Roots(), correct.Roots())
	return p
}

func (p *Pairing) pairSiblings(fs, cs []int) {
	n := len(fs)
	if len(cs) < n {
		n = len(cs)
	}
	for i := 0; i < n; i++ {
		fe := p.faulty.At(fs[i])
		ce := p.correct.At(cs[i])
		if fe.Inst.Stmt != ce.Inst.Stmt {
			return // structural divergence: stop pairing this level
		}
		p.pair[fs[i]] = cs[i]
		if fe.Branch == ce.Branch {
			p.pairSiblings(p.faulty.Children(fs[i]), p.correct.Children(cs[i]))
		}
	}
}

// Match returns the correct-run entry paired with faulty entry e, or -1.
func (p *Pairing) Match(e int) int {
	if m, ok := p.pair[e]; ok {
		return m
	}
	return -1
}

// Benign reports whether faulty entry e holds benign program state: it
// pairs with a correct-run instance with identical produced value, read
// values, branch outcome and printed outputs.
func (p *Pairing) Benign(e int) bool {
	m, ok := p.pair[e]
	if !ok {
		return false
	}
	fe := p.faulty.At(e)
	ce := p.correct.At(m)
	if fe.Value != ce.Value || fe.Branch != ce.Branch {
		return false
	}
	if len(fe.Uses) != len(ce.Uses) {
		return false
	}
	for i := range fe.Uses {
		fu, cu := fe.Uses[i], ce.Uses[i]
		if fu.Sym != cu.Sym || fu.Elem != cu.Elem || fu.Val != cu.Val {
			return false
		}
	}
	fo := p.faulty.OutputsOf(e)
	co := p.correct.OutputsOf(m)
	if len(fo) != len(co) {
		return false
	}
	for i := range fo {
		if fo[i].Value != co[i].Value {
			return false
		}
	}
	return true
}

// Corrupted returns all faulty-run entries with corrupted state.
func (p *Pairing) Corrupted() map[int]bool {
	res := map[int]bool{}
	for e := 0; e < p.faulty.Len(); e++ {
		if !p.Benign(e) {
			res[e] = true
		}
	}
	return res
}

// StateOracle adapts trace pairing to the core.Oracle interface. The
// pairing against the correct reference trace is built lazily per faulty
// trace (the locator runs the faulty program itself; determinism makes
// any run of it structurally identical).
type StateOracle struct {
	Correct *trace.Trace

	last  *trace.Trace
	cache *Pairing
}

// IsBenign implements the benign-state query against ground truth.
func (o *StateOracle) IsBenign(t *trace.Trace, entry int) bool {
	if o.cache == nil || o.last != t {
		o.cache = Pair(t, o.Correct)
		o.last = t
	}
	return o.cache.Benign(entry)
}
