package oracle

import (
	"testing"

	"eol/internal/interp"
	"eol/internal/testsupport"
	"eol/internal/trace"
)

func TestSelfPairingIsBenign(t *testing.T) {
	c := testsupport.Compile(t, testsupport.Fig1Fixed)
	r1 := testsupport.Run(t, c, testsupport.Fig1Input)
	r2 := testsupport.Run(t, c, testsupport.Fig1Input)
	p := Pair(r1.Trace, r2.Trace)
	for e := 0; e < r1.Trace.Len(); e++ {
		if p.Match(e) != e {
			t.Fatalf("self-pairing matched %d to %d", e, p.Match(e))
		}
		if !p.Benign(e) {
			t.Fatalf("self-pairing marked %d corrupted", e)
		}
	}
	if len(p.Corrupted()) != 0 {
		t.Errorf("corrupted = %v, want none", p.Corrupted())
	}
}

func TestFaultyVsCorrectPairing(t *testing.T) {
	faulty := testsupport.Compile(t, testsupport.Fig1Faulty)
	correct := testsupport.Compile(t, testsupport.Fig1Fixed)
	fr := testsupport.Run(t, faulty, testsupport.Fig1Input)
	cr := testsupport.Run(t, correct, testsupport.Fig1Input)
	p := Pair(fr.Trace, cr.Trace)

	mustBeCorrupted := []string{
		"read() * 0",             // the root cause produces 0 vs 1
		"outbuf[outcnt] = flags", // writes 0 vs 8
		"print(outbuf[1])",       // prints 0 vs 8
	}
	for _, frag := range mustBeCorrupted {
		id := testsupport.StmtID(t, faulty, frag)
		idx := fr.Trace.FindInstance(trace.Instance{Stmt: id, Occ: 1})
		if p.Benign(idx) {
			t.Errorf("%q must be corrupted", frag)
		}
	}
	mustBeBenign := []string{
		"var deflated = 8",
		"flags = 0",
		"outbuf[outcnt] = method",
		"print(outbuf[0])",
	}
	for _, frag := range mustBeBenign {
		id := testsupport.StmtID(t, faulty, frag)
		idx := fr.Trace.FindInstance(trace.Instance{Stmt: id, Occ: 1})
		if !p.Benign(idx) {
			t.Errorf("%q must be benign", frag)
		}
	}
	// The branch that diverged: the first if took F vs T => corrupted,
	// and its correct-run children are unpaired (they don't exist in the
	// faulty run at all).
	ifID := testsupport.StmtID(t, faulty, "if (saveOrigName)")
	ifIdx := fr.Trace.FindInstance(trace.Instance{Stmt: ifID, Occ: 1})
	if p.Benign(ifIdx) {
		t.Error("the omitting predicate must be corrupted (branch differs)")
	}
}

func TestOmittedIterationsUnpaired(t *testing.T) {
	// The faulty run executes MORE than the correct one (an omitted
	// break): extra iterations must be corrupted.
	faultySrc := `
func main() {
    var n = read() * 0;   // fault: kills the early exit
    var i = 0;
    while (i < 5) {
        if (n > 0 && i >= 2) {
            break;
        }
        i = i + 1;
    }
    print(i);
}`
	correctSrc := `
func main() {
    var n = read();
    var i = 0;
    while (i < 5) {
        if (n > 0 && i >= 2) {
            break;
        }
        i = i + 1;
    }
    print(i);
}`
	faulty := testsupport.Compile(t, faultySrc)
	correct := testsupport.Compile(t, correctSrc)
	fr := testsupport.Run(t, faulty, []int64{1})
	cr := testsupport.Run(t, correct, []int64{1})
	p := Pair(fr.Trace, cr.Trace)

	// Iterations beyond the correct run's break are unpaired/corrupted.
	incID := testsupport.StmtID(t, faulty, "i = i + 1")
	last := fr.Trace.FindInstance(trace.Instance{Stmt: incID, Occ: 5})
	if last < 0 {
		t.Fatal("faulty run should execute 5 increments")
	}
	if p.Benign(last) {
		t.Error("extra iteration must be corrupted")
	}
	if p.Match(last) >= 0 {
		t.Error("extra iteration must be unpaired")
	}
	// The first increment matches and is benign.
	first := fr.Trace.FindInstance(trace.Instance{Stmt: incID, Occ: 1})
	if !p.Benign(first) {
		t.Error("first iteration should be benign")
	}
}

func TestStateOracleCachesPerTrace(t *testing.T) {
	faulty := testsupport.Compile(t, testsupport.Fig1Faulty)
	correct := testsupport.Compile(t, testsupport.Fig1Fixed)
	cr := testsupport.Run(t, correct, testsupport.Fig1Input)
	o := &StateOracle{Correct: cr.Trace}

	r1 := testsupport.Run(t, faulty, testsupport.Fig1Input)
	rootID := testsupport.StmtID(t, faulty, "read() * 0")
	idx := r1.Trace.FindInstance(trace.Instance{Stmt: rootID, Occ: 1})
	if o.IsBenign(r1.Trace, idx) {
		t.Error("root cause benign?")
	}
	// A different trace instance triggers a fresh pairing.
	r2 := interp.Run(faulty, interp.Options{Input: testsupport.Fig1Input, BuildTrace: true})
	if o.IsBenign(r2.Trace, idx) {
		t.Error("root cause benign on re-run?")
	}
}
