package interp

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"eol/internal/cfg"
	"eol/internal/trace"
)

func run(t *testing.T, src string, input []int64) *Result {
	t.Helper()
	c, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	r := Run(c, Options{Input: input, BuildTrace: true})
	if r.Err != nil {
		t.Fatalf("run: %v", r.Err)
	}
	return r
}

func TestArithmeticAndOutput(t *testing.T) {
	src := `
func main() {
    var a = 7;
    var b = 3;
    print(a + b, " ", a - b, " ", a * b, " ", a / b, " ", a % b);
    print(a & b, " ", a | b, " ", a ^ b, " ", a << b, " ", a >> 1);
    print(a < b, " ", a >= b, " ", a == 7, " ", !b, " ", -a, " ", ~a);
}`
	r := run(t, src, nil)
	want := []int64{10, 4, 21, 2, 1, 3, 7, 4, 56, 3, 0, 1, 1, 0, -7, -8}
	if !reflect.DeepEqual(r.OutputValues(), want) {
		t.Errorf("outputs = %v, want %v", r.OutputValues(), want)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
func main() {
    var s = 0;
    for (var i = 0; i < 10; i++) {
        if (i % 2 == 0) { continue; }
        if (i == 7) { break; }
        s += i;
    }
    print(s);
}`
	r := run(t, src, nil)
	if got := r.OutputValues(); len(got) != 1 || got[0] != 1+3+5 {
		t.Errorf("outputs = %v, want [9]", got)
	}
}

func TestWhileAndInput(t *testing.T) {
	src := `
func main() {
    var sum = 0;
    while (!eof()) {
        var v = read();
        sum += v;
    }
    print(sum);
}`
	r := run(t, src, []int64{5, 10, 15})
	if got := r.OutputValues(); len(got) != 1 || got[0] != 30 {
		t.Errorf("outputs = %v, want [30]", got)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() {
    print(fib(10));
}`
	r := run(t, src, nil)
	if got := r.OutputValues(); len(got) != 1 || got[0] != 55 {
		t.Errorf("fib(10) = %v, want [55]", got)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	src := `
var buf[8];
var count;
func push(v) {
    buf[count] = v;
    count++;
    return count;
}
func main() {
    push(11);
    push(22);
    push(33);
    print(buf[0], " ", buf[1], " ", buf[2], " ", count, " ", len(buf));
}`
	r := run(t, src, nil)
	want := []int64{11, 22, 33, 3, 8}
	if !reflect.DeepEqual(r.OutputValues(), want) {
		t.Errorf("outputs = %v, want %v", r.OutputValues(), want)
	}
}

func TestShortCircuitNoUse(t *testing.T) {
	// The right side of && must not be evaluated (or traced) when the
	// left side is false: a[9] would be out of bounds.
	src := `
var a[3];
func main() {
    var i = 9;
    if (i < 3 && a[i] > 0) {
        print(1);
    } else {
        print(0);
    }
}`
	r := run(t, src, nil)
	if got := r.OutputValues(); len(got) != 1 || got[0] != 0 {
		t.Errorf("outputs = %v, want [0]", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src  string
		want error
	}{
		{`func main() { var x = 1 / 0; }`, ErrDivZero},
		{`func main() { var x = 5 % 0; }`, ErrDivZero},
		{`var a[3]; func main() { a[5] = 1; }`, ErrBounds},
		{`var a[3]; func main() { var x = a[-1]; }`, ErrBounds},
		{`func main() { var x = 1 << 64; }`, ErrShift},
		{`func main() { assert(0); }`, ErrAssert},
		{`func f() { return f(); } func main() { f(); }`, ErrFrames},
	}
	for _, c := range cases {
		comp, err := Compile(c.src)
		if err != nil {
			t.Fatalf("compile %q: %v", c.src, err)
		}
		r := Run(comp, Options{BuildTrace: true})
		if r.Err == nil {
			t.Errorf("%q: expected %v, got nil", c.src, c.want)
			continue
		}
		if !errors.Is(r.Err, c.want) {
			t.Errorf("%q: err = %v, want %v", c.src, r.Err, c.want)
		}
	}
}

func TestStepBudget(t *testing.T) {
	src := `func main() { var i = 0; while (i < 1000000) { i++; } print(i); }`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	r := Run(c, Options{StepBudget: 100})
	if !errors.Is(r.Err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", r.Err)
	}
	// The counter is clamped to exactly the budget on expiry — deadline
	// accounting layered on Steps depends on it never overshooting.
	if r.Steps != 100 {
		t.Errorf("Steps = %d, want exactly the budget (100)", r.Steps)
	}
}

// TestStepBudgetExact pins the clamp boundary: a run that needs exactly N
// steps completes under budget N and fails under budget N-1.
func TestStepBudgetExact(t *testing.T) {
	src := `func main() { var i = 0; i = 1; i = 2; print(i); }`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	full := Run(c, Options{})
	if full.Err != nil {
		t.Fatalf("unbounded run: %v", full.Err)
	}
	n := full.Steps
	if r := Run(c, Options{StepBudget: n}); r.Err != nil {
		t.Errorf("budget %d (exact): err = %v, want clean completion", n, r.Err)
	}
	r := Run(c, Options{StepBudget: n - 1})
	if !errors.Is(r.Err, ErrBudget) {
		t.Errorf("budget %d: err = %v, want ErrBudget", n-1, r.Err)
	}
	if r.Steps != n-1 {
		t.Errorf("budget %d: Steps = %d, want %d", n-1, r.Steps, n-1)
	}
}

// TestForkedRunFirstStepCtxCheck pins the forceCtx contract: a forked
// run inherits an arbitrary step count, so its first suffix step sits
// off the ctxCheckEvery grid — yet it must still observe a context that
// dies between the fork's entry check and that first step. Without the
// forced check, a short suffix (< ctxCheckEvery steps) would never poll
// the context at all and run to completion.
func TestForkedRunFirstStepCtxCheck(t *testing.T) {
	// Small program: the whole run is far under ctxCheckEvery steps, so
	// only the forced first-step check can catch the cancellation.
	src := `func main() {
	    var s = 0;
	    for (var i = 0; i < 40; i++) { if (i % 2 == 0) { s += i; } }
	    print(s);
	}`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	st := NewCheckpointStore(0)
	full := Run(c, Options{BuildTrace: true, Checkpoints: st})
	if full.Err != nil {
		t.Fatalf("captured run: %v", full.Err)
	}
	if full.Steps >= ctxCheckEvery {
		t.Fatalf("subject too large (%d steps): periodic checks would mask the forced one", full.Steps)
	}
	if st.Len() == 0 {
		t.Fatal("no checkpoints captured")
	}
	ck := st.cks[st.Len()/2]
	// Err call 1 passes RunFrom's entry check; call 2 — the forced check
	// on the first suffix step — reports cancellation.
	ctx := &countdownCtx{Context: context.Background(), n: 1}
	r := RunFrom(c, ck, Options{Ctx: ctx})
	if !IsCancellation(r.Err) {
		t.Fatalf("err = %v, want a cancellation", r.Err)
	}
	if r.Steps != ck.Steps()+1 {
		t.Errorf("Steps = %d, want %d (abort on the first suffix step)", r.Steps, ck.Steps()+1)
	}
}

func TestContextCancel(t *testing.T) {
	src := `func main() { var i = 0; while (i < 100000000) { i++; } print(i); }`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}

	// Already-dead context: not a single statement executes.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	r := Run(c, Options{Ctx: dead})
	if !errors.Is(r.Err, ErrCanceled) || !errors.Is(r.Err, context.Canceled) {
		t.Errorf("dead ctx: err = %v, want ErrCanceled wrapping context.Canceled", r.Err)
	}
	if r.Steps != 0 {
		t.Errorf("dead ctx: Steps = %d, want 0", r.Steps)
	}

	// Deadline firing mid-run: the run aborts at a step checkpoint, far
	// short of the loop's full step count.
	ctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel2()
	r = Run(c, Options{Ctx: ctx})
	if !errors.Is(r.Err, ErrDeadline) || !errors.Is(r.Err, context.DeadlineExceeded) {
		t.Errorf("deadline: err = %v, want ErrDeadline wrapping context.DeadlineExceeded", r.Err)
	}
	if !IsCancellation(r.Err) {
		t.Errorf("IsCancellation(%v) = false, want true", r.Err)
	}
	if r.Steps == 0 || r.Steps >= 300000000 {
		t.Errorf("deadline: Steps = %d, want a partial count", r.Steps)
	}
	// The abort lands on the amortized checkpoint stride.
	if r.Steps%ctxCheckEvery != 0 {
		t.Errorf("deadline: Steps = %d, not a multiple of the check stride %d", r.Steps, ctxCheckEvery)
	}
}

const regionSrc = `
func main() {
    var t = 0;
    if (read()) {
        t = 1;
    }
    var i = 0;
    while (i < t) {
        i = i + 1;
    }
    print(i);
}`

func TestDynamicControlParents(t *testing.T) {
	r := run(t, regionSrc, []int64{1})
	tr := r.Trace

	// Find instances.
	find := func(stmt, occ int) int {
		i := tr.FindInstance(trace.Instance{Stmt: stmt, Occ: occ})
		if i < 0 {
			t.Fatalf("S%d#%d not executed", stmt, occ)
		}
		return i
	}
	// Statement IDs in source order:
	// S1 var t; S2 if(read()); S3 t=1; S4 var i; S5 while; S6 i=i+1; S7 print
	ifIdx := find(2, 1)
	thenIdx := find(3, 1)
	w1 := find(5, 1)
	body1 := find(6, 1)
	w2 := find(5, 2)
	printIdx := find(7, 1)

	if tr.At(thenIdx).Parent != ifIdx {
		t.Errorf("then-branch parent = %d, want if at %d", tr.At(thenIdx).Parent, ifIdx)
	}
	if tr.At(body1).Parent != w1 {
		t.Errorf("loop body parent = %d, want while#1 at %d", tr.At(body1).Parent, w1)
	}
	if tr.At(w2).Parent != w1 {
		t.Errorf("while#2 parent = %d, want while#1 at %d (loop self-nesting)", tr.At(w2).Parent, w1)
	}
	if p := tr.At(printIdx).Parent; p != tr.At(ifIdx).Parent {
		t.Errorf("print parent = %d, want top level like the if (%d)", p, tr.At(ifIdx).Parent)
	}
	if tr.At(ifIdx).Branch != cfg.True {
		t.Errorf("if branch = %v, want True", tr.At(ifIdx).Branch)
	}
}

func TestCalleeRegionNesting(t *testing.T) {
	src := `
func helper(x) {
    var y = x + 1;
    return y;
}
func main() {
    var r = helper(5);
    print(r);
}`
	r := run(t, src, nil)
	tr := r.Trace
	// Statements: S1 var y (helper), S2 return y, S3 var r, S4 print.
	callIdx := tr.FindInstance(trace.Instance{Stmt: 3, Occ: 1})
	bodyIdx := tr.FindInstance(trace.Instance{Stmt: 1, Occ: 1})
	if callIdx < 0 || bodyIdx < 0 {
		t.Fatalf("instances not found (call=%d body=%d)", callIdx, bodyIdx)
	}
	if tr.At(bodyIdx).Parent != callIdx {
		t.Errorf("callee top-level parent = %d, want call site %d", tr.At(bodyIdx).Parent, callIdx)
	}
}

func TestDataDependences(t *testing.T) {
	src := `
func main() {
    var a = 5;
    var b = a + 1;
    var c = b * 2;
    print(c);
}`
	r := run(t, src, nil)
	tr := r.Trace
	aIdx := tr.FindInstance(trace.Instance{Stmt: 1, Occ: 1})
	bIdx := tr.FindInstance(trace.Instance{Stmt: 2, Occ: 1})
	cIdx := tr.FindInstance(trace.Instance{Stmt: 3, Occ: 1})
	pIdx := tr.FindInstance(trace.Instance{Stmt: 4, Occ: 1})

	wantDep := func(from, to int) {
		t.Helper()
		for _, u := range tr.At(from).Uses {
			if u.Def == to {
				return
			}
		}
		t.Errorf("entry %d should data-depend on %d; uses = %v", from, to, tr.At(from).Uses)
	}
	wantDep(bIdx, aIdx)
	wantDep(cIdx, bIdx)
	wantDep(pIdx, cIdx)
}

func TestReturnValueDependence(t *testing.T) {
	src := `
func two() {
    return 2;
}
func main() {
    var x = two();
    print(x);
}`
	r := run(t, src, nil)
	tr := r.Trace
	retIdx := tr.FindInstance(trace.Instance{Stmt: 1, Occ: 1}) // return 2
	xIdx := tr.FindInstance(trace.Instance{Stmt: 2, Occ: 1})   // var x = two()
	found := false
	for _, u := range tr.At(xIdx).Uses {
		if u.Sym == trace.RetvalSym && u.Def == retIdx {
			found = true
		}
	}
	if !found {
		t.Errorf("var x should depend on the return entry %d; uses = %v", retIdx, tr.At(xIdx).Uses)
	}
}

func TestSwitchPlan(t *testing.T) {
	src := `
func main() {
    var x = read();
    if (x > 0) {
        print(1);
    } else {
        print(0);
    }
}`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// x = 5 normally prints 1; switched prints 0.
	r1 := Run(c, Options{Input: []int64{5}, BuildTrace: true})
	if got := r1.OutputValues(); got[0] != 1 {
		t.Fatalf("normal run printed %v", got)
	}
	r2 := Run(c, Options{Input: []int64{5}, Switch: &SwitchPlan{Stmt: 2, Occ: 1}, BuildTrace: true})
	if !r2.SwitchApplied {
		t.Fatal("switch not applied")
	}
	if got := r2.OutputValues(); got[0] != 0 {
		t.Errorf("switched run printed %v, want [0]", got)
	}
	// The switched entry must be marked.
	idx := r2.Trace.FindInstance(trace.Instance{Stmt: 2, Occ: 1})
	if !r2.Trace.At(idx).Switched {
		t.Error("switched predicate entry not marked")
	}
	if r2.Trace.At(idx).Branch != cfg.False {
		t.Errorf("effective branch = %v, want False", r2.Trace.At(idx).Branch)
	}
}

func TestSwitchLoopPredicateInstance(t *testing.T) {
	// Switching the 3rd instance of the while predicate ends the loop early.
	src := `
func main() {
    var i = 0;
    while (i < 5) {
        i++;
    }
    print(i);
}`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	r := Run(c, Options{Switch: &SwitchPlan{Stmt: 2, Occ: 3}, BuildTrace: true})
	if !r.SwitchApplied {
		t.Fatal("switch not applied")
	}
	if got := r.OutputValues(); got[0] != 2 {
		t.Errorf("switched loop printed %v, want [2]", got)
	}
}

// TestDeterminism: two traced runs on the same input are identical —
// the prefix-identity property the alignment algorithm relies on.
func TestDeterminism(t *testing.T) {
	src := `
var h[16];
func mix(v) {
    return (v * 31 + 7) % 97;
}
func main() {
    var n = read();
    var i = 0;
    while (i < n) {
        var v = read();
        h[mix(v) % 16] += v;
        i++;
    }
    for (var j = 0; j < 16; j++) {
        if (h[j] > 0) { print(j, ":", h[j]); }
    }
}`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []int16) bool {
		input := make([]int64, 0, len(raw)+1)
		input = append(input, int64(len(raw)))
		for _, v := range raw {
			input = append(input, int64(v))
		}
		r1 := Run(c, Options{Input: input, BuildTrace: true})
		r2 := Run(c, Options{Input: input, BuildTrace: true})
		if r1.Err != nil || r2.Err != nil {
			return r1.Err != nil && r2.Err != nil
		}
		if r1.Rendered != r2.Rendered || r1.Steps != r2.Steps {
			return false
		}
		if r1.Trace.Len() != r2.Trace.Len() {
			return false
		}
		for i := 0; i < r1.Trace.Len(); i++ {
			a, b := r1.Trace.At(i), r2.Trace.At(i)
			if a.Inst != b.Inst || a.Parent != b.Parent || a.Value != b.Value || a.Branch != b.Branch {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestRegionTreeWellFormed: parents always precede children, and every
// non-root parent is a predicate or a call-site statement.
func TestRegionTreeWellFormed(t *testing.T) {
	src := `
func helper(n) {
    var s = 0;
    for (var i = 0; i < n; i++) {
        if (i % 3 == 0) { continue; }
        s += i;
    }
    return s;
}
func main() {
    var total = 0;
    var r = 0;
    while (!eof()) {
        r = helper(read());
        total += r;
    }
    print(total);
}`
	r := run(t, src, []int64{4, 7, 2})
	tr := r.Trace
	for i := 0; i < tr.Len(); i++ {
		p := tr.At(i).Parent
		if p >= i {
			t.Fatalf("entry %d has parent %d (must precede it)", i, p)
		}
		if p >= 0 {
			// children of entry p must be in increasing order
			kids := tr.Children(p)
			for j := 1; j < len(kids); j++ {
				if kids[j] <= kids[j-1] {
					t.Fatalf("children of %d not ordered: %v", p, kids)
				}
			}
		}
	}
}

func TestPlainModeMatchesTraceMode(t *testing.T) {
	src := `
func main() {
    var n = read();
    var f = 1;
    for (var i = 1; i <= n; i++) { f *= i; }
    print(f);
}`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	plain := Run(c, Options{Input: []int64{6}})
	traced := Run(c, Options{Input: []int64{6}, BuildTrace: true})
	if plain.Rendered != traced.Rendered {
		t.Errorf("plain %q != traced %q", plain.Rendered, traced.Rendered)
	}
	if plain.Trace != nil {
		t.Error("plain mode must not build a trace")
	}
	if !reflect.DeepEqual(plain.OutputValues(), traced.OutputValues()) {
		t.Errorf("outputs differ: %v vs %v", plain.OutputValues(), traced.OutputValues())
	}
}

func TestPerturbPlan(t *testing.T) {
	src := `
func main() {
    var a = read();
    var b = a * 2;
    print(b);
}`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb a's definition: b follows the replaced value.
	r := Run(c, Options{Input: []int64{5}, Perturb: &PerturbPlan{Stmt: 1, Occ: 1, Value: 9}, BuildTrace: true})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !r.PerturbApplied {
		t.Fatal("perturbation not applied")
	}
	if got := r.OutputValues(); got[0] != 18 {
		t.Errorf("outputs = %v, want [18]", got)
	}
	// The trace records the perturbed value as the definition's value.
	idx := r.Trace.FindInstance(trace.Instance{Stmt: 1, Occ: 1})
	if r.Trace.At(idx).Value != 9 {
		t.Errorf("recorded value = %d, want 9", r.Trace.At(idx).Value)
	}
}

func TestPerturbSpecificOccurrence(t *testing.T) {
	src := `
func main() {
    var s = 0;
    for (var i = 0; i < 3; i++) {
        s = s + 10;
    }
    print(s);
}`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// "s = s + 10" is S4 (S1 var s, S2 var i, S3 for, S4 body, S5 post).
	// Perturb only its 2nd instance to 0: iterations produce 10, 0, 10.
	r := Run(c, Options{Perturb: &PerturbPlan{Stmt: 4, Occ: 2, Value: 0}})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if got := r.OutputValues(); got[0] != 10 {
		t.Errorf("outputs = %v, want [10] (second accumulation zeroed)", got)
	}
}

func TestPerturbUnreachedInstance(t *testing.T) {
	c, err := Compile(`func main() { var a = 1; print(a); }`)
	if err != nil {
		t.Fatal(err)
	}
	r := Run(c, Options{Perturb: &PerturbPlan{Stmt: 1, Occ: 5, Value: 9}})
	if r.PerturbApplied {
		t.Error("occurrence 5 never happens")
	}
	if got := r.OutputValues(); got[0] != 1 {
		t.Errorf("outputs = %v, want unchanged [1]", got)
	}
}

func TestPerturbArrayElement(t *testing.T) {
	src := `
var a[4];
func main() {
    a[2] = 7;
    print(a[2]);
}`
	c, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// The store is S2 (S1 is the global decl).
	r := Run(c, Options{Perturb: &PerturbPlan{Stmt: 2, Occ: 1, Value: 42}})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if got := r.OutputValues(); got[0] != 42 {
		t.Errorf("outputs = %v, want [42]", got)
	}
}

// TestNestedLoopTorture cross-checks deeply nested loop control flow
// against the same computation in Go.
func TestNestedLoopTorture(t *testing.T) {
	src := `
func main() {
    var acc = 0;
    for (var i = 0; i < 6; i++) {
        if (i == 4) { continue; }
        var j = 0;
        while (j < 5) {
            j++;
            if (j == 3 && i % 2 == 0) { continue; }
            if (j == 4 && i == 3) { break; }
            for (var k = 0; k < 3; k++) {
                if (k == 2) { break; }
                acc = acc + i*100 + j*10 + k;
            }
        }
    }
    print(acc);
}`
	want := int64(0)
	for i := int64(0); i < 6; i++ {
		if i == 4 {
			continue
		}
		j := int64(0)
		for j < 5 {
			j++
			if j == 3 && i%2 == 0 {
				continue
			}
			if j == 4 && i == 3 {
				break
			}
			for k := int64(0); k < 3; k++ {
				if k == 2 {
					break
				}
				want += i*100 + j*10 + k
			}
		}
	}
	r := run(t, src, nil)
	if got := r.OutputValues()[0]; got != want {
		t.Errorf("acc = %d, want %d", got, want)
	}
}

// TestMutualRecursion: parity via mutual recursion.
func TestMutualRecursion(t *testing.T) {
	src := `
func isEven(n) {
    if (n == 0) { return 1; }
    return isOdd(n - 1);
}
func isOdd(n) {
    if (n == 0) { return 0; }
    return isEven(n - 1);
}
func main() {
    print(isEven(10), " ", isEven(7), " ", isOdd(3));
}`
	r := run(t, src, nil)
	want := []int64{1, 0, 1}
	if !reflect.DeepEqual(r.OutputValues(), want) {
		t.Errorf("outputs = %v, want %v", r.OutputValues(), want)
	}
}

// TestBuiltinsCoverage: peek/abs/min/max semantics.
func TestBuiltinsCoverage(t *testing.T) {
	src := `
func main() {
    print(peek());
    print(read());
    print(peek());
    print(abs(-7), " ", abs(7));
    print(min(3, -2), " ", max(3, -2));
    print(eof());
    print(read());
    print(eof());
    print(read(), " ", peek());
}`
	r := run(t, src, []int64{42, 9})
	want := []int64{42, 42, 9, 7, 7, -2, 3, 0, 9, 1, -1, -1}
	if !reflect.DeepEqual(r.OutputValues(), want) {
		t.Errorf("outputs = %v, want %v", r.OutputValues(), want)
	}
}

// TestRenderedFormatting: string literals interleave verbatim, newline per
// print.
func TestRenderedFormatting(t *testing.T) {
	src := `func main() { print("x=", 1, ", y=", 2); print("done"); }`
	r := run(t, src, nil)
	if r.Rendered != "x=1, y=2\ndone\n" {
		t.Errorf("rendered = %q", r.Rendered)
	}
	// Only ints are output events.
	if len(r.Outputs) != 2 {
		t.Errorf("output events = %d, want 2", len(r.Outputs))
	}
}

// TestShadowingSemantics: inner declarations hide outer ones and vanish
// at block exit.
func TestShadowingSemantics(t *testing.T) {
	src := `
var x;
func main() {
    x = 1;
    var y = 0;
    {
        var x = 10;
        x = 20;
        y = x;
    }
    print(x, " ", y);
}`
	r := run(t, src, nil)
	want := []int64{1, 20}
	if !reflect.DeepEqual(r.OutputValues(), want) {
		t.Errorf("outputs = %v, want %v", r.OutputValues(), want)
	}
}
