package interp

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"eol/internal/cfg"
	"eol/internal/trace"
)

// ckSrc exercises every construct checkpointing interacts with: globals,
// arrays (shared COW storage), helper calls (ineligible frames), nested
// while/for loops, else-if chains, break, and interleaved output.
const ckSrc = `
var acc[4];
var total;
func bump(i, v) {
    var j = i % 4;
    acc[j] += v;
    total += v;
    return acc[j];
}
func main() {
    var n = 0;
    while (!eof()) {
        var v = read();
        if (v % 3 == 0) {
            bump(n, v);
        } else if (v % 3 == 1) {
            for (var k = 0; k < v % 5; k++) {
                bump(k, 1);
            }
        } else {
            if (v > 50) { break; }
            total -= 1;
        }
        n++;
        print(n, " ", total);
    }
    print(total, " ", acc[0], " ", acc[1], " ", acc[2], " ", acc[3]);
}`

func ckInput() []int64 {
	var in []int64
	for i := 0; i < 40; i++ {
		in = append(in, int64((i*7+3)%47))
	}
	return in
}

// capturedRun runs src with a checkpoint store attached and returns both.
func capturedRun(t *testing.T, src string, input []int64, max int) (*Compiled, *Result, *CheckpointStore) {
	t.Helper()
	c, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	st := NewCheckpointStore(max)
	r := Run(c, Options{Input: input, BuildTrace: true, Checkpoints: st})
	if r.Err != nil {
		t.Fatalf("captured run: %v", r.Err)
	}
	return c, r, st
}

// assertSameResult compares everything a verification consumer can
// observe about two runs.
func assertSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if got.Steps != want.Steps {
		t.Errorf("%s: Steps = %d, want %d", label, got.Steps, want.Steps)
	}
	if got.SwitchApplied != want.SwitchApplied {
		t.Errorf("%s: SwitchApplied = %v, want %v", label, got.SwitchApplied, want.SwitchApplied)
	}
	if fmt.Sprint(got.Err) != fmt.Sprint(want.Err) {
		t.Errorf("%s: Err = %v, want %v", label, got.Err, want.Err)
	}
	if got.Rendered != want.Rendered {
		t.Errorf("%s: Rendered diverged:\n%q\n%q", label, got.Rendered, want.Rendered)
	}
	if !reflect.DeepEqual(got.Outputs, want.Outputs) {
		t.Errorf("%s: Outputs = %v, want %v", label, got.Outputs, want.Outputs)
	}
	assertSameTrace(t, label, want.Trace, got.Trace)
}

func assertSameTrace(t *testing.T, label string, want, got *trace.Trace) {
	t.Helper()
	if (want == nil) != (got == nil) {
		t.Fatalf("%s: trace nil-ness: got %v, want %v", label, got, want)
	}
	if want == nil {
		return
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: trace len = %d, want %d", label, got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if !reflect.DeepEqual(*got.At(i), *want.At(i)) {
			t.Fatalf("%s: entry %d = %+v, want %+v", label, i, *got.At(i), *want.At(i))
		}
		if !reflect.DeepEqual(got.Children(i), want.Children(i)) {
			t.Fatalf("%s: children(%d) = %v, want %v", label, i, got.Children(i), want.Children(i))
		}
	}
	if !reflect.DeepEqual(got.Roots(), want.Roots()) {
		t.Errorf("%s: roots = %v, want %v", label, got.Roots(), want.Roots())
	}
	if !reflect.DeepEqual(got.Outputs, want.Outputs) {
		t.Errorf("%s: trace outputs diverged", label)
	}
}

// predicateInstances lists the trace indices of all predicate entries.
func predicateInstances(tr *trace.Trace) []int {
	var preds []int
	for i := 0; i < tr.Len(); i++ {
		if tr.At(i).Branch != cfg.None {
			preds = append(preds, i)
		}
	}
	return preds
}

// TestRunFromMatchesFullRun is the core differential: for every retained
// checkpoint and a spread of switched predicates at or after it, the
// forked run must be byte-identical to a full switched run.
func TestRunFromMatchesFullRun(t *testing.T) {
	c, orig, st := capturedRun(t, ckSrc, ckInput(), 0)
	if st.Len() < 3 {
		t.Fatalf("want >= 3 checkpoints, got %d", st.Len())
	}
	preds := predicateInstances(orig.Trace)
	compared := 0
	for _, ck := range st.cks {
		// Switch targets after this checkpoint: nearest, a middle one, and
		// the last.
		var targets []int
		for _, p := range preds {
			if p >= ck.TraceLen() {
				targets = append(targets, p)
			}
		}
		if len(targets) == 0 {
			continue
		}
		pick := []int{targets[0], targets[len(targets)/2], targets[len(targets)-1]}
		for _, p := range pick {
			inst := orig.Trace.At(p).Inst
			plan := &SwitchPlan{Stmt: inst.Stmt, Occ: inst.Occ}
			want := Run(c, Options{Input: ckInput(), BuildTrace: true, Switch: plan})
			got := RunFrom(c, ck, Options{Input: ckInput(), Switch: plan})
			if got.ResumedAt != ck.Steps() {
				t.Errorf("ck@%d: ResumedAt = %d, want %d", ck.Steps(), got.ResumedAt, ck.Steps())
			}
			assertSameResult(t, fmt.Sprintf("ck@%d switch %v", ck.Steps(), inst), want, got)
			compared++
		}
	}
	if compared < 10 {
		t.Errorf("only %d fork/full comparisons ran; test subject too small", compared)
	}
}

// TestCheckpointCaptureIsObservablyFree: attaching a store must not
// change the run it captures from, and the capture schedule must be
// deterministic.
func TestCheckpointCaptureIsObservablyFree(t *testing.T) {
	c, withStore, st := capturedRun(t, ckSrc, ckInput(), 0)
	plain := Run(c, Options{Input: ckInput(), BuildTrace: true})
	assertSameResult(t, "store-on vs store-off", plain, withStore)

	_, _, st2 := capturedRun(t, ckSrc, ckInput(), 0)
	if st.Len() != st2.Len() {
		t.Fatalf("checkpoint count diverged across runs: %d vs %d", st.Len(), st2.Len())
	}
	for i := range st.cks {
		if st.cks[i].Steps() != st2.cks[i].Steps() {
			t.Errorf("checkpoint %d at step %d vs %d", i, st.cks[i].Steps(), st2.cks[i].Steps())
		}
	}
}

// TestCheckpointStoreThinning: the stride-doubling policy respects the
// Max bound and keeps checkpoints in ascending step order.
func TestCheckpointStoreThinning(t *testing.T) {
	src := `func main() { var s = 0; for (var i = 0; i < 2000; i++) { if (i % 2 == 0) { s += i; } } print(s); }`
	_, _, st := capturedRun(t, src, nil, 8)
	stats := st.Stats()
	if stats.Count > 8 || stats.Count == 0 {
		t.Errorf("Count = %d, want in [1, 8]", stats.Count)
	}
	if stats.Thinned == 0 || stats.Captured <= stats.Count {
		t.Errorf("thinning never fired: %+v", stats)
	}
	if stats.Bytes <= 0 {
		t.Errorf("Bytes = %d, want > 0", stats.Bytes)
	}
	for i := 1; i < len(st.cks); i++ {
		if st.cks[i].Steps() <= st.cks[i-1].Steps() {
			t.Fatalf("checkpoints out of order at %d", i)
		}
	}
}

// TestNearest: binary search boundaries.
func TestNearest(t *testing.T) {
	_, _, st := capturedRun(t, ckSrc, ckInput(), 0)
	first := st.cks[0]
	if got := st.Nearest(first.TraceLen() - 1); got != nil {
		t.Errorf("Nearest before the first checkpoint = %v, want nil", got)
	}
	if got := st.Nearest(first.TraceLen()); got != first {
		t.Errorf("Nearest at the first checkpoint's own index must return it")
	}
	last := st.cks[st.Len()-1]
	if got := st.Nearest(1 << 30); got != last {
		t.Errorf("Nearest far past the end = ck@%d, want the last ck@%d", got.Steps(), last.Steps())
	}
	for _, ck := range st.cks {
		if got := st.Nearest(ck.TraceLen()); got != ck {
			t.Errorf("Nearest(%d) skipped the exact checkpoint", ck.TraceLen())
		}
	}
}

// TestRunFromBudgetExhaustion: a budget that expires mid-suffix must
// fail exactly like a full run — ErrBudget with Steps clamped to the
// budget — because the fork inherits the checkpoint's step count.
func TestRunFromBudgetExhaustion(t *testing.T) {
	c, orig, st := capturedRun(t, ckSrc, ckInput(), 0)
	ck := st.cks[st.Len()/2]
	preds := predicateInstances(orig.Trace)
	// Find a switch target whose switched run lasts well past the
	// checkpoint (a switch can shorten the run, e.g. by forcing a break).
	var plan *SwitchPlan
	var budget int
	for _, p := range preds {
		if p < ck.TraceLen() {
			continue
		}
		inst := orig.Trace.At(p).Inst
		cand := &SwitchPlan{Stmt: inst.Stmt, Occ: inst.Occ}
		sw := Run(c, Options{Input: ckInput(), Switch: cand})
		if sw.Err == nil && sw.Steps > ck.Steps()+4 {
			plan = cand
			budget = ck.Steps() + (sw.Steps-ck.Steps())/2
			break
		}
	}
	if plan == nil {
		t.Fatal("no switch target with a long enough switched run")
	}
	want := Run(c, Options{Input: ckInput(), BuildTrace: true, Switch: plan, StepBudget: budget})
	if !errors.Is(want.Err, ErrBudget) || want.Steps != budget {
		t.Fatalf("full run: err = %v steps = %d, want ErrBudget at %d", want.Err, want.Steps, budget)
	}
	got := RunFrom(c, ck, Options{Input: ckInput(), Switch: plan, StepBudget: budget})
	assertSameResult(t, "budget mid-suffix", want, got)

	// A budget at or below the checkpoint cannot be honored by a fork:
	// the store-level helper must refuse and leave the caller on the
	// full-run path.
	if r := RunSwitchedFromStore(st, orig.Trace, c, Options{Input: ckInput(), Switch: plan, StepBudget: ck.Steps()}); r != nil {
		t.Errorf("RunSwitchedFromStore honored an already-spent budget")
	}
}

// countdownCtx is a deterministic cancellation source: Err is nil for
// the first n calls and context.Canceled after. It makes "the context
// dies mid-suffix" reproducible without real clocks.
type countdownCtx struct {
	context.Context
	n, calls int
}

func (c *countdownCtx) Err() error {
	c.calls++
	if c.calls > c.n {
		return context.Canceled
	}
	return nil
}

// TestRunFromDeadlineMidSuffix: periodic context checks keep firing on
// the inherited step grid during a forked suffix.
func TestRunFromDeadlineMidSuffix(t *testing.T) {
	src := `func main() { var s = 0; for (var i = 0; i < 3000; i++) { if (i % 2 == 0) { s += i; } } print(s); }`
	c, orig, st := capturedRun(t, src, nil, 0)
	ck := st.cks[0]
	inst := orig.Trace.At(orig.Trace.Len() - 2).Inst // a late predicate-ish entry; switch plan need not apply
	// Survive the RunFrom entry check (call 1) and the forced first-step
	// check (call 2); die at the first periodic check after that.
	ctx := &countdownCtx{Context: context.Background(), n: 2}
	got := RunFrom(c, ck, Options{Input: nil, Switch: &SwitchPlan{Stmt: inst.Stmt, Occ: inst.Occ}, Ctx: ctx})
	if !errors.Is(got.Err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", got.Err)
	}
	if got.Steps%ctxCheckEvery != 0 {
		t.Errorf("Steps = %d: mid-suffix abort must land on the %d-step check grid", got.Steps, ctxCheckEvery)
	}
	if got.Steps <= ck.Steps()+1 || got.Steps >= orig.Steps {
		t.Errorf("Steps = %d, want strictly inside the suffix (%d, %d)", got.Steps, ck.Steps()+1, orig.Steps)
	}

	// Already-dead context: the fork mirrors Run's entry contract — no
	// partial suffix, cancellation reported immediately.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	r := RunFrom(c, ck, Options{Input: nil, Ctx: dead})
	if !errors.Is(r.Err, ErrCanceled) {
		t.Errorf("dead ctx: err = %v, want ErrCanceled", r.Err)
	}
	if r.Steps != ck.Steps() || r.Trace != nil {
		t.Errorf("dead ctx: Steps = %d Trace = %v, want inherited steps and no trace", r.Steps, r.Trace)
	}
}

// TestRunSwitchedFromStoreFallbacks: the helper declines exactly when a
// fork cannot honor the request.
func TestRunSwitchedFromStoreFallbacks(t *testing.T) {
	c, orig, st := capturedRun(t, ckSrc, ckInput(), 0)
	opts := Options{Input: ckInput(), Switch: &SwitchPlan{Stmt: 1, Occ: 99999}}
	if r := RunSwitchedFromStore(st, orig.Trace, c, opts); r != nil {
		t.Errorf("unknown instance: got a run, want nil")
	}
	if r := RunSwitchedFromStore(nil, orig.Trace, c, opts); r != nil {
		t.Errorf("nil store: got a run, want nil")
	}
	if r := RunSwitchedFromStore(st, orig.Trace, c, Options{Input: ckInput()}); r != nil {
		t.Errorf("no switch plan: got a run, want nil")
	}
	// A predicate before the first checkpoint has no usable prefix.
	first := st.cks[0]
	if first.TraceLen() > 0 {
		inst := orig.Trace.At(0).Inst
		if r := RunSwitchedFromStore(st, orig.Trace, c, Options{Input: ckInput(), Switch: &SwitchPlan{Stmt: inst.Stmt, Occ: inst.Occ}}); r != nil {
			t.Errorf("pre-checkpoint predicate: got a run, want nil")
		}
	}
}
