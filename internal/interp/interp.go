// Package interp is the MiniC execution substrate: a deterministic
// tree-walking interpreter with complete dynamic tracing and forced
// predicate switching.
//
// It stands in for the valgrind-based online component of the PLDI 2007
// prototype (see DESIGN.md). Three capabilities matter downstream:
//
//  1. Trace mode records, per executed statement instance, its dynamic
//     data dependences (per-cell last writer), its dynamic control parent
//     (maintained with a control-dependence stack of (instance, immediate
//     post-dominator) pairs), branch outcomes, and output events. The
//     parent relation is exactly the region decomposition of Definition 3.
//  2. A SwitchPlan forces the branch outcome of one chosen predicate
//     instance to invert — the paper's predicate-switching mechanism used
//     by implicit-dependence verification.
//  3. A step budget bounds re-executions, standing in for the paper's
//     verification timer: on expiry the run reports ErrBudget and the
//     verification is treated as failed. Options.Ctx layers wall-clock
//     bounds on the same accounting: ctx.Err() is polled once per
//     ctxCheckEvery steps (plus unconditionally on the first step of a
//     forked run), so a live context never changes results and a dead one
//     aborts with ErrCanceled/ErrDeadline at a deterministic step.
//
// Execution is fully deterministic given the same input vector, which the
// alignment algorithm relies on ("the two executions are identical till
// they reach the points of p and p'").
//
// # Checkpointed re-execution
//
// A traced run can additionally carry a CheckpointStore
// (Options.Checkpoints): at eligible predicate instances the interpreter
// snapshots its state — environment frames (copy-on-write), input
// cursor, occurrence counts, step count, control stack, trace cursor —
// and RunFrom later forks a fresh run from any snapshot, re-executing
// only the suffix. This is the seam implicit-dependence verification
// uses to make switched re-execution O(suffix) instead of O(trace) per
// candidate; see checkpoint.go and docs/CHECKPOINT.md for eligibility,
// the COW discipline, and the determinism contract (a forked run is
// byte-identical — trace, outputs, steps, error — to a full run with the
// same switch plan).
package interp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"eol/internal/cfg"
	"eol/internal/lang/ast"
	"eol/internal/lang/parser"
	"eol/internal/lang/sem"
	"eol/internal/lang/token"
	"eol/internal/obs"
	"eol/internal/trace"
)

// Compiled is a compiled MiniC program, shareable across runs.
type Compiled struct {
	Src  string
	Prog *ast.Program
	Info *sem.Info
	CFG  *cfg.Program

	// artifacts caches per-backend compilation products (the VM's
	// bytecode) keyed by an opaque backend key, so a program compiled
	// once is lowered once no matter how many runs or goroutines share
	// the *Compiled. See Artifact.
	artifacts sync.Map
}

// Artifact returns the backend compilation artifact cached under key,
// building it with build on first use. Concurrent first calls may each
// run build, but all callers observe the same stored value (builds must
// be deterministic and side-effect free, which bytecode lowering is).
func (c *Compiled) Artifact(key any, build func() any) any {
	if v, ok := c.artifacts.Load(key); ok {
		return v
	}
	v, _ := c.artifacts.LoadOrStore(key, build())
	return v
}

// Compile parses, checks and builds CFGs for src.
func Compile(src string) (*Compiled, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := sem.Analyze(prog)
	if err != nil {
		return nil, err
	}
	graphs, err := cfg.Build(info)
	if err != nil {
		return nil, err
	}
	return &Compiled{Src: src, Prog: prog, Info: info, CFG: graphs}, nil
}

// MustCompile panics on error; for tests and embedded programs.
func MustCompile(src string) *Compiled {
	c, err := Compile(src)
	if err != nil {
		panic(fmt.Sprintf("interp.MustCompile: %v", err))
	}
	return c
}

// SwitchPlan requests that the Occ-th dynamic instance of predicate Stmt
// take the opposite branch.
type SwitchPlan struct {
	Stmt int
	Occ  int
}

// String renders the plan.
func (s SwitchPlan) String() string { return fmt.Sprintf("switch S%d#%d", s.Stmt, s.Occ) }

// PerturbPlan requests that the value defined by the Occ-th instance of
// statement Stmt (a scalar assignment or declaration, or an array element
// store) be replaced with Value. This is the paper's §5 alternative to
// predicate switching: perturbing the *value* feeding nested predicates
// can expose implicit dependences that flipping one branch at a time
// cannot (the Table 5(b) soundness gap) — at the cost of exploring an
// integer domain instead of a binary one.
type PerturbPlan struct {
	Stmt  int
	Occ   int
	Value int64
}

// String renders the plan.
func (p PerturbPlan) String() string {
	return fmt.Sprintf("perturb S%d#%d := %d", p.Stmt, p.Occ, p.Value)
}

// Options configure one run.
type Options struct {
	// Input is the int stream consumed by read()/peek()/eof().
	Input []int64
	// Switch, if non-nil, inverts one predicate instance.
	Switch *SwitchPlan
	// Perturb, if non-nil, overrides one defined value.
	Perturb *PerturbPlan
	// StepBudget bounds executed statement instances; 0 means
	// DefaultStepBudget. Exceeding it aborts the run with ErrBudget.
	StepBudget int
	// BuildTrace enables full dependence tracing ("Graph" mode of Table
	// 4). Without it only outputs are collected ("Plain" mode).
	BuildTrace bool
	// MaxFrames bounds activation depth; 0 means DefaultMaxFrames.
	MaxFrames int
	// Rec, if non-nil, brackets the run in an interp_run span whose End
	// value is the executed step count. Callers that run the interpreter
	// from worker goroutines (the verify engine) must leave it nil —
	// observability for those runs is emitted at absorption instead.
	Rec *obs.Recorder
	// Ctx, if non-nil, bounds the run: once the context is cancelled or
	// its deadline passes, the run aborts with ErrCanceled/ErrDeadline.
	// The check is amortized onto the step-budget accounting — one
	// ctx.Err() per ctxCheckEvery executed statements — so a live context
	// costs nothing measurable and never changes results.
	Ctx context.Context
	// Checkpoints, if non-nil, captures execution snapshots into the
	// store during the run, for later forked suffix runs. Requires
	// BuildTrace (checkpoints index into the trace); ignored otherwise.
	// A store is bound to the single run that fills it, and to the
	// backend that created it: each backend snapshots its own execution
	// representation and ignores a foreign store (the run still
	// completes, it just captures nothing).
	Checkpoints Checkpoints
}

// Default limits.
const (
	DefaultStepBudget = 10_000_000
	DefaultMaxFrames  = 4096
	// ctxCheckEvery is the amortization stride of the Options.Ctx check:
	// ctx.Err() is consulted once per this many executed statements
	// (power of two, so the check is a mask on the step counter).
	ctxCheckEvery = 1024
)

// Sentinel runtime errors. A Result.Err wraps one of these.
var (
	ErrBudget    = errors.New("step budget exceeded")
	ErrFrames    = errors.New("activation depth exceeded")
	ErrDivZero   = errors.New("division by zero")
	ErrBounds    = errors.New("array index out of bounds")
	ErrShift     = errors.New("shift count out of range")
	ErrAssert    = errors.New("assertion failed")
	ErrInterrupt = errors.New("interpreter aborted")
)

// Cancellation sentinels: a run cut short by its Options.Ctx reports one
// of these. Each wraps the corresponding context sentinel, so both
// errors.Is(err, ErrDeadline) and errors.Is(err,
// context.DeadlineExceeded) hold on the same chain.
var (
	ErrDeadline = fmt.Errorf("run deadline exceeded: %w", context.DeadlineExceeded)
	ErrCanceled = fmt.Errorf("run canceled: %w", context.Canceled)
)

// CtxErr maps a context error onto the cancellation sentinels (nil in,
// nil out).
func CtxErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadline
	default:
		return ErrCanceled
	}
}

// IsCancellation reports whether err's chain stems from context
// cancellation or deadline expiry — the errors for which a partial
// result is expected rather than a defect.
func IsCancellation(err error) bool {
	return errors.Is(err, ErrDeadline) || errors.Is(err, ErrCanceled)
}

// RuntimeError wraps a sentinel error with source position context.
type RuntimeError struct {
	Pos  token.Pos
	Stmt int // statement ID, 0 if unknown
	Err  error
}

// Error implements the error interface.
func (e *RuntimeError) Error() string {
	if e.Stmt != 0 {
		return fmt.Sprintf("%s (S%d): %v", e.Pos, e.Stmt, e.Err)
	}
	return fmt.Sprintf("%s: %v", e.Pos, e.Err)
}

// Unwrap exposes the sentinel for errors.Is.
func (e *RuntimeError) Unwrap() error { return e.Err }

// Result is the outcome of one run.
type Result struct {
	// Trace is the full trace in BuildTrace mode, nil otherwise.
	Trace *trace.Trace
	// Outputs are the printed int values, in order. In trace mode the
	// Entry/Arg fields identify the producing instance; in plain mode
	// Entry is -1.
	Outputs []trace.Output
	// Rendered is the program's formatted text output.
	Rendered string
	// Steps is the number of executed statement instances.
	Steps int
	// Steps is inherited from the checkpoint on runs forked by RunFrom,
	// so budget expiry fires at the same absolute step count as a full
	// run; ResumedAt records that inherited count (Steps - ResumedAt is
	// the executed suffix). 0 for full runs.
	ResumedAt int
	// SwitchApplied reports whether the SwitchPlan's instance was reached.
	SwitchApplied bool
	// PerturbApplied reports whether the PerturbPlan's instance was reached.
	PerturbApplied bool
	// Err is nil for a clean exit, or a *RuntimeError.
	Err error
}

// OutputValues returns just the printed values.
func (r *Result) OutputValues() []int64 {
	vals := make([]int64, len(r.Outputs))
	for i, o := range r.Outputs {
		vals[i] = o.Value
	}
	return vals
}

// Run executes the program.
func Run(c *Compiled, opts Options) *Result {
	ip := &interp{
		c:         c,
		input:     opts.Input,
		plan:      opts.Switch,
		perturb:   opts.Perturb,
		maxFrames: opts.MaxFrames,
		occ:       make([]int, c.Info.NumStmts()+1),
		res:       &Result{},
	}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			// Already expired: report without executing a single statement,
			// so a dead context can never produce partial output.
			ip.res.Err = &RuntimeError{Err: CtxErr(err)}
			return ip.res
		}
	}
	budget := opts.StepBudget
	if budget <= 0 {
		budget = DefaultStepBudget
	}
	if ip.maxFrames <= 0 {
		ip.maxFrames = DefaultMaxFrames
	}
	ip.meter = NewStepMeter(&ip.res.Steps, budget, opts.Ctx, false)
	if opts.BuildTrace {
		ip.tr = trace.New()
		ip.res.Trace = ip.tr
		// Only a store of this backend's representation can capture here;
		// a foreign (VM) store is left untouched.
		if cs, ok := opts.Checkpoints.(*CheckpointStore); ok && cs != nil {
			cs.bind(ip.tr)
			ip.cks = cs
		}
	}
	if opts.Rec.Enabled() {
		mode := "plain"
		if opts.BuildTrace {
			mode = "trace"
		}
		opts.Rec.Begin("interp_run", "mode", mode)
		defer func() { opts.Rec.End("interp_run", int64(ip.res.Steps)) }()
	}
	ip.run()
	ip.res.Rendered = ip.out.String()
	return ip.res
}

// ---------------------------------------------------------------------------
// Interpreter state

type cell struct {
	val int64
	def int // trace index of last writer, trace.NoDef if none
}

// frame holds one activation's storage: dense slot-indexed cell slices
// (see sem.Symbol.Slot) rather than maps, for cheap access on the
// interpreter's hot path.
//
// Frames are the copy-on-write unit of checkpointing: capturing a
// checkpoint freezes every live frame (frozen = true, all array slots
// marked shared) and stores the pointers. A frozen frame is immutable —
// both the continuing original run and any forked run thaw (clone) it
// before the first mutation, so concurrent forks can share one snapshot
// without synchronization.
type frame struct {
	id         int // unique activation ID (0 = globals, 1 = main, then dense)
	scalars    []cell
	arrays     [][]cell
	callParent int // trace index of the call-site entry, -1 for main/globals
	ctrl       []ctrlEntry

	// frozen marks the frame as shared with >= 1 checkpoint; any mutation
	// must go through interp.thaw first.
	frozen bool
	// arrShared[i] marks arrays[i] as shared with a frozen snapshot: a
	// write to an element must clone the array first. Nil until the frame
	// is first frozen; thaw copies it (a thawed clone still shares the
	// inner arrays with the snapshot it was cloned from).
	arrShared []bool
}

// freeze marks the frame immutable for sharing with a checkpoint.
func (f *frame) freeze() {
	f.frozen = true
	if f.arrShared == nil {
		f.arrShared = make([]bool, len(f.arrays))
	}
	for i := range f.arrShared {
		f.arrShared[i] = true
	}
}

// newFrame allocates a frame with nslots cells, all marked undefined.
func newFrame(id, nslots, callParent int) *frame {
	f := &frame{
		id:         id,
		scalars:    make([]cell, nslots),
		arrays:     make([][]cell, nslots),
		callParent: callParent,
	}
	for i := range f.scalars {
		f.scalars[i].def = trace.NoDef
	}
	return f
}

type ctrlEntry struct {
	entryIdx int
	ipdom    *cfg.Node
}

type interp struct {
	c         *Compiled
	input     []int64
	inPos     int
	plan      *SwitchPlan
	perturb   *PerturbPlan
	maxFrames int
	meter     StepMeter // budget + ctx-poll accounting (counts into res.Steps)

	tr      *trace.Trace // nil in plain mode
	occ     []int        // per-statement occurrence counts
	frames  []*frame
	nextAct int // next activation ID
	out     strings.Builder
	res     *Result

	curEntry int // trace index of the entry being built, -1 outside

	// Checkpointing state. cks is the capture store (nil on plain runs
	// and on forked runs — forks never re-capture). path is the resume
	// path: the stack of main-frame control constructs currently being
	// executed, maintained only while cks != nil; a checkpoint copies it
	// so RunFrom can rebuild the interpreter's Go stack by descending it.
	cks  *CheckpointStore
	path []pathStep
}

// abort is the panic payload used to unwind on runtime errors.
type abort struct{ err *RuntimeError }

func (ip *interp) fail(pos token.Pos, stmt int, err error) {
	panic(abort{&RuntimeError{Pos: pos, Stmt: stmt, Err: err}})
}

func (ip *interp) frame() *frame { return ip.frames[len(ip.frames)-1] }

func (ip *interp) run() {
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(abort); ok {
				ip.res.Err = a.err
				return
			}
			panic(r)
		}
	}()

	// Frame 0: globals.
	g := newFrame(0, ip.c.Info.NumGlobalSlots, -1)
	ip.nextAct = 1
	ip.frames = append(ip.frames, g)
	ip.curEntry = -1
	for _, d := range ip.c.Prog.Globals {
		ip.execStmt(d)
	}

	// Frame 1: main. curEntry must be reset so main's top-level
	// statements become region roots rather than children of the last
	// global declaration.
	ip.curEntry = -1
	main := ip.c.Info.Funcs["main"]
	ip.callFunction(main, nil, token.Pos{Line: 1, Col: 1})
}

// ---------------------------------------------------------------------------
// Statements

type signal int

const (
	sigNormal signal = iota
	sigBreak
	sigContinue
	sigReturn
)

// beginStmt handles control-stack maintenance, budget accounting and
// entry creation for the execution of one instance of s. It returns the
// trace index of the new entry (-1 in plain mode).
func (ip *interp) beginStmt(s ast.Numbered) int {
	if err := ip.meter.Tick(); err != nil {
		ip.fail(s.Pos(), s.ID(), err)
	}
	id := s.ID()
	ip.occ[id]++

	node := ip.c.CFG.NodeOf(id)
	fr := ip.frame()
	if node != nil && len(fr.ctrl) > 0 && fr.ctrl[len(fr.ctrl)-1].ipdom == node {
		fr = ip.thawTop() // popping mutates the ctrl stack
		for len(fr.ctrl) > 0 && fr.ctrl[len(fr.ctrl)-1].ipdom == node {
			fr.ctrl = fr.ctrl[:len(fr.ctrl)-1]
		}
	}

	if ip.tr == nil {
		ip.curEntry = -1
		return -1
	}
	parent := fr.callParent
	if len(fr.ctrl) > 0 {
		parent = fr.ctrl[len(fr.ctrl)-1].entryIdx
	}
	idx := ip.tr.Append(trace.Entry{
		Inst:   trace.Instance{Stmt: id, Occ: ip.occ[id]},
		Frame:  fr.id,
		Parent: parent,
	})
	ip.curEntry = idx
	return idx
}

func (ip *interp) entry(idx int) *trace.Entry {
	return ip.tr.At(idx)
}

func (ip *interp) recordDef(idx int, sym *sem.Symbol, elem int64, val int64) {
	if idx < 0 {
		return
	}
	e := ip.entry(idx)
	e.Defs = append(e.Defs, trace.DefRec{Sym: sym.ID, Elem: elem})
	e.Value = val
}

// pushCtrl opens the region of a predicate instance.
func (ip *interp) pushCtrl(stmtID, entryIdx int) {
	node := ip.c.CFG.NodeOf(stmtID)
	fr := ip.thawTop()
	fr.ctrl = append(fr.ctrl, ctrlEntry{entryIdx: entryIdx, ipdom: node.IPDom})
}

// thaw makes frame i writable: a frozen frame (shared with a checkpoint)
// is replaced by a private clone; an unfrozen frame is returned as-is.
// The clone copies the scalar cells, the control stack and the outer
// array table but still shares the array element storage (arrShared
// stays set) — writableArrayCells unshares per slot on first write.
func (ip *interp) thaw(i int) *frame {
	fr := ip.frames[i]
	if !fr.frozen {
		return fr
	}
	nf := &frame{
		id:         fr.id,
		callParent: fr.callParent,
		scalars:    append([]cell(nil), fr.scalars...),
		arrays:     append([][]cell(nil), fr.arrays...),
		ctrl:       append([]ctrlEntry(nil), fr.ctrl...),
		arrShared:  append([]bool(nil), fr.arrShared...),
	}
	ip.frames[i] = nf
	return nf
}

// thawTop thaws the current (topmost) frame.
func (ip *interp) thawTop() *frame { return ip.thaw(len(ip.frames) - 1) }

// writableTargetFrame is targetFrame with the thaw applied: use for any
// access that mutates the frame. Because checkpoints are captured only
// between statements, the returned pointer stays valid for the rest of
// the current statement's execution.
func (ip *interp) writableTargetFrame(sym *sem.Symbol) *frame {
	if sym.Kind == sem.Global {
		return ip.thaw(0)
	}
	return ip.thawTop()
}

// writableScalarCell returns sym's scalar cell in a writable frame.
func (ip *interp) writableScalarCell(sym *sem.Symbol) *cell {
	return &ip.writableTargetFrame(sym).scalars[sym.Slot]
}

// writableArrayCells returns sym's array storage ready for element
// writes: the frame is thawed and, if the array is still shared with a
// frozen snapshot, the elements are cloned first.
func (ip *interp) writableArrayCells(sym *sem.Symbol, pos token.Pos) []cell {
	arr := ip.arrayCells(sym, pos) // lazy-init (itself thaws if needed)
	fr := ip.writableTargetFrame(sym)
	if fr.arrShared != nil && fr.arrShared[sym.Slot] {
		arr = append([]cell(nil), arr...)
		fr.arrays[sym.Slot] = arr
		fr.arrShared[sym.Slot] = false
	}
	return arr
}

func (ip *interp) execBlock(b *ast.BlockStmt) (signal, int64) {
	if !ip.tracking() {
		for _, s := range b.Stmts {
			if sig, v := ip.execStmt(s); sig != sigNormal {
				return sig, v
			}
		}
		return sigNormal, 0
	}
	pi := len(ip.path)
	ip.path = append(ip.path, pathStep{kind: stepBlock, node: b})
	for i, s := range b.Stmts {
		ip.path[pi].idx = i
		if sig, v := ip.execStmt(s); sig != sigNormal {
			ip.path = ip.path[:pi]
			return sig, v
		}
	}
	ip.path = ip.path[:pi]
	return sigNormal, 0
}

// tracking reports whether resume-path steps must be recorded: only a
// checkpoint-capturing run, and only while executing in main's frame
// (the only frame RunFrom can rebuild — see Checkpoint eligibility).
func (ip *interp) tracking() bool {
	return ip.cks != nil && ip.frames[len(ip.frames)-1].id == 1
}

// pushStep records entry into a tracked control construct and reports
// whether a step was pushed (popStep must mirror it).
func (ip *interp) pushStep(kind stepKind, node ast.Stmt) bool {
	if !ip.tracking() {
		return false
	}
	ip.path = append(ip.path, pathStep{kind: kind, node: node})
	return true
}

// popStep unwinds pushStep. The path is balanced at this point (every
// nested construct popped its own step before returning), so truncating
// by one drops exactly the step pushed by the matching pushStep.
func (ip *interp) popStep(pushed bool) {
	if pushed {
		ip.path = ip.path[:len(ip.path)-1]
	}
}

func (ip *interp) execStmt(s ast.Stmt) (signal, int64) {
	switch n := s.(type) {
	case *ast.BlockStmt:
		return ip.execBlock(n)

	case *ast.VarDeclStmt:
		idx := ip.beginStmt(n)
		sym := ip.c.Info.Uses[n.Name]
		if sym.IsArray {
			arr := make([]cell, sym.Size)
			for i := range arr {
				arr[i].def = idxOrNoDef(idx)
			}
			fr := ip.writableTargetFrame(sym)
			fr.arrays[sym.Slot] = arr
			if fr.arrShared != nil {
				fr.arrShared[sym.Slot] = false
			}
			ip.recordDef(idx, sym, trace.ScalarElem, 0)
			return sigNormal, 0
		}
		var v int64
		if n.Init != nil {
			v = ip.evalExpr(n.Init, idx)
			idx = ip.curEntry // callee entries may have shifted curEntry back
		}
		v = ip.maybePerturb(n, v)
		ip.writableTargetFrame(sym).scalars[sym.Slot] = cell{val: v, def: idxOrNoDef(idx)}
		ip.recordDef(idx, sym, trace.ScalarElem, v)
		return sigNormal, 0

	case *ast.AssignStmt:
		idx := ip.beginStmt(n)
		ip.execAssign(n, idx)
		return sigNormal, 0

	case *ast.IfStmt:
		ip.maybeCheckpoint()
		idx := ip.beginStmt(n)
		taken := ip.evalCond(n, n.Cond, idx)
		ip.pushCtrl(n.ID(), idx)
		if taken {
			t := ip.pushStep(stepIfThen, n)
			sig, v := ip.execBlock(n.Then)
			ip.popStep(t)
			return sig, v
		}
		if n.Else != nil {
			t := ip.pushStep(stepIfElse, n)
			sig, v := ip.execStmt(n.Else)
			ip.popStep(t)
			return sig, v
		}
		return sigNormal, 0

	case *ast.WhileStmt:
		t := ip.pushStep(stepWhile, n)
		sig, v := ip.execWhileLoop(n)
		ip.popStep(t)
		return sig, v

	case *ast.ForStmt:
		if n.Init != nil {
			ip.execStmt(n.Init)
		}
		// The step is pushed after Init so a resume never re-runs it:
		// RunFrom re-enters at execForLoop (the next condition check).
		t := ip.pushStep(stepFor, n)
		sig, v := ip.execForLoop(n)
		ip.popStep(t)
		return sig, v

	case *ast.BreakStmt:
		ip.beginStmt(n)
		return sigBreak, 0

	case *ast.ContinueStmt:
		ip.beginStmt(n)
		return sigContinue, 0

	case *ast.ReturnStmt:
		idx := ip.beginStmt(n)
		var v int64
		if n.Value != nil {
			v = ip.evalExpr(n.Value, idx)
			idx = ip.curEntry
			if idx >= 0 {
				ip.entry(idx).Value = v
			}
		}
		return sigReturn, v

	case *ast.ExprStmt:
		idx := ip.beginStmt(n)
		ip.evalExpr(n.X, idx)
		return sigNormal, 0

	case *ast.PrintStmt:
		idx := ip.beginStmt(n)
		arg := 0
		for _, a := range n.Args {
			if lit, ok := a.(*ast.StringLit); ok {
				ip.out.WriteString(lit.Value)
				continue
			}
			v := ip.evalExpr(a, idx)
			idx = ip.curEntry
			fmt.Fprintf(&ip.out, "%d", v)
			o := trace.Output{Seq: len(ip.res.Outputs), Entry: idxOrNoDef(idx), Arg: arg, Value: v}
			ip.res.Outputs = append(ip.res.Outputs, o)
			if ip.tr != nil {
				ip.tr.Outputs = append(ip.tr.Outputs, o)
			}
			arg++
		}
		ip.out.WriteByte('\n')
		return sigNormal, 0
	}
	panic(fmt.Sprintf("interp: unexpected statement %T", s))
}

// execWhileLoop runs a while statement from its next condition check.
// Extracted from execStmt so RunFrom can re-enter a checkpointed loop at
// exactly this point (the checkpoint is captured at the loop top, before
// the predicate's beginStmt).
func (ip *interp) execWhileLoop(n *ast.WhileStmt) (signal, int64) {
	for {
		ip.maybeCheckpoint()
		idx := ip.beginStmt(n)
		taken := ip.evalCond(n, n.Cond, idx)
		ip.pushCtrl(n.ID(), idx)
		if !taken {
			return sigNormal, 0
		}
		sig, v := ip.execBlock(n.Body)
		switch sig {
		case sigBreak:
			return sigNormal, 0
		case sigReturn:
			return sigReturn, v
		}
	}
}

// execForLoop runs a for statement from its next condition check (Init
// has already executed). See execWhileLoop for why it is extracted.
func (ip *interp) execForLoop(n *ast.ForStmt) (signal, int64) {
	for {
		ip.maybeCheckpoint()
		idx := ip.beginStmt(n)
		taken := true
		if n.Cond != nil {
			taken = ip.evalCond(n, n.Cond, idx)
		} else {
			ip.recordPredicate(n, idx, true) // unconditional iteration
		}
		ip.pushCtrl(n.ID(), idx)
		if !taken {
			return sigNormal, 0
		}
		sig, v := ip.execBlock(n.Body)
		switch sig {
		case sigBreak:
			return sigNormal, 0
		case sigReturn:
			return sigReturn, v
		}
		if n.Post != nil {
			ip.execStmt(n.Post)
		}
	}
}

// maybePerturb applies the PerturbPlan if it targets this instance of s.
func (ip *interp) maybePerturb(s ast.Numbered, v int64) int64 {
	if ip.perturb != nil && ip.perturb.Stmt == s.ID() && ip.perturb.Occ == ip.occ[s.ID()] {
		ip.res.PerturbApplied = true
		return ip.perturb.Value
	}
	return v
}

// idxOrNoDef converts a trace index (-1 in plain mode) to a def marker.
func idxOrNoDef(idx int) int {
	if idx < 0 {
		return trace.NoDef
	}
	return idx
}

// evalCond evaluates a predicate's condition, applies the switch plan if
// it targets this instance, records the effective outcome, and opens no
// region (the caller does).
func (ip *interp) evalCond(s ast.Numbered, cond ast.Expr, idx int) bool {
	v := ip.evalExpr(cond, idx)
	idx = ip.curEntry
	taken := v != 0
	if ip.plan != nil && ip.plan.Stmt == s.ID() && ip.plan.Occ == ip.occ[s.ID()] {
		taken = !taken
		ip.res.SwitchApplied = true
		if idx >= 0 {
			ip.entry(idx).Switched = true
		}
	}
	ip.recordPredicate(s, idx, taken)
	return taken
}

func (ip *interp) recordPredicate(s ast.Numbered, idx int, taken bool) {
	if idx < 0 {
		return
	}
	e := ip.entry(idx)
	if taken {
		e.Branch = cfg.True
		e.Value = 1
	} else {
		e.Branch = cfg.False
		e.Value = 0
	}
}

func (ip *interp) execAssign(n *ast.AssignStmt, idx int) {
	rhs := ip.evalExpr(n.RHS, idx)
	idx = ip.curEntry

	switch lhs := n.LHS.(type) {
	case *ast.Ident:
		sym := ip.c.Info.Uses[lhs]
		c := ip.writableScalarCell(sym)
		v := rhs
		if op := n.Op.AssignOp(); op != token.ILLEGAL {
			// compound assignment reads the old value
			ip.recordUse(idx, sym, trace.ScalarElem, c.def, c.val)
			v = ip.binop(op, c.val, rhs, n.Pos(), n.ID())
		}
		v = ip.maybePerturb(n, v)
		c.val = v
		c.def = idxOrNoDef(idx)
		ip.recordDef(idx, sym, trace.ScalarElem, v)

	case *ast.IndexExpr:
		sym := ip.c.Info.Uses[lhs.X]
		i := ip.evalExpr(lhs.Index, idx)
		idx = ip.curEntry
		arr := ip.writableArrayCells(sym, lhs.Pos())
		if i < 0 || i >= int64(len(arr)) {
			ip.fail(lhs.Pos(), n.ID(), fmt.Errorf("%w: %s[%d] (size %d)", ErrBounds, sym.Name, i, len(arr)))
		}
		v := rhs
		if op := n.Op.AssignOp(); op != token.ILLEGAL {
			ip.recordUse(idx, sym, i, arr[i].def, arr[i].val)
			v = ip.binop(op, arr[i].val, rhs, n.Pos(), n.ID())
		}
		v = ip.maybePerturb(n, v)
		arr[i].val = v
		arr[i].def = idxOrNoDef(idx)
		ip.recordDef(idx, sym, i, v)
	}
}

// ---------------------------------------------------------------------------
// Cells

// targetFrame returns the frame where sym's cell lives (declaration site).
func (ip *interp) targetFrame(sym *sem.Symbol) *frame {
	if sym.Kind == sem.Global {
		return ip.frames[0]
	}
	return ip.frame()
}

func (ip *interp) scalarCell(sym *sem.Symbol, pos token.Pos) *cell {
	return &ip.targetFrame(sym).scalars[sym.Slot]
}

func (ip *interp) arrayCells(sym *sem.Symbol, pos token.Pos) []cell {
	fr := ip.targetFrame(sym)
	arr := fr.arrays[sym.Slot]
	if arr == nil {
		// Declared but its var statement not yet executed (a use cannot
		// precede the declaration lexically, but a loop re-entry may hit
		// stale state): zero-initialized. Installing the array mutates the
		// frame, so a frozen frame must be thawed first.
		arr = make([]cell, sym.Size)
		for i := range arr {
			arr[i].def = trace.NoDef
		}
		fr = ip.writableTargetFrame(sym)
		fr.arrays[sym.Slot] = arr
		if fr.arrShared != nil {
			fr.arrShared[sym.Slot] = false
		}
	}
	return arr
}

func (ip *interp) recordUse(idx int, sym *sem.Symbol, elem int64, def int, val int64) {
	if idx < 0 {
		return
	}
	e := ip.entry(idx)
	e.Uses = append(e.Uses, trace.UseRec{Sym: sym.ID, Elem: elem, Def: def, Val: val})
}

// ---------------------------------------------------------------------------
// Expressions

func (ip *interp) evalExpr(e ast.Expr, idx int) int64 {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value
	case *ast.StringLit:
		return 0 // only legal inside print, handled there
	case *ast.Ident:
		sym := ip.c.Info.Uses[x]
		c := ip.scalarCell(sym, x.Pos())
		ip.recordUse(idx, sym, trace.ScalarElem, c.def, c.val)
		return c.val
	case *ast.IndexExpr:
		sym := ip.c.Info.Uses[x.X]
		i := ip.evalExpr(x.Index, idx)
		arr := ip.arrayCells(sym, x.Pos())
		if i < 0 || i >= int64(len(arr)) {
			ip.fail(x.Pos(), 0, fmt.Errorf("%w: %s[%d] (size %d)", ErrBounds, sym.Name, i, len(arr)))
		}
		ip.recordUse(idx, sym, i, arr[i].def, arr[i].val)
		return arr[i].val
	case *ast.UnaryExpr:
		v := ip.evalExpr(x.X, idx)
		switch x.Op {
		case token.SUB:
			return -v
		case token.NOT:
			if v == 0 {
				return 1
			}
			return 0
		case token.TILD:
			return ^v
		}
	case *ast.BinaryExpr:
		// Short-circuit: the unevaluated side contributes no dynamic uses.
		switch x.Op {
		case token.LAND:
			if ip.evalExpr(x.X, idx) == 0 {
				return 0
			}
			return b2i(ip.evalExpr(x.Y, idx) != 0)
		case token.LOR:
			if ip.evalExpr(x.X, idx) != 0 {
				return 1
			}
			return b2i(ip.evalExpr(x.Y, idx) != 0)
		}
		a := ip.evalExpr(x.X, idx)
		b := ip.evalExpr(x.Y, idx)
		return ip.binop(x.Op, a, b, x.Pos(), 0)
	case *ast.CallExpr:
		return ip.evalCall(x, idx)
	}
	panic(fmt.Sprintf("interp: unexpected expression %T", e))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (ip *interp) binop(op token.Kind, a, b int64, pos token.Pos, stmt int) int64 {
	switch op {
	case token.ADD:
		return a + b
	case token.SUB:
		return a - b
	case token.MUL:
		return a * b
	case token.QUO:
		if b == 0 {
			ip.fail(pos, stmt, ErrDivZero)
		}
		return a / b
	case token.REM:
		if b == 0 {
			ip.fail(pos, stmt, ErrDivZero)
		}
		return a % b
	case token.AND:
		return a & b
	case token.OR:
		return a | b
	case token.XOR:
		return a ^ b
	case token.SHL:
		if b < 0 || b > 63 {
			ip.fail(pos, stmt, ErrShift)
		}
		return a << uint(b)
	case token.SHR:
		if b < 0 || b > 63 {
			ip.fail(pos, stmt, ErrShift)
		}
		return a >> uint(b)
	case token.EQL:
		return b2i(a == b)
	case token.NEQ:
		return b2i(a != b)
	case token.LSS:
		return b2i(a < b)
	case token.LEQ:
		return b2i(a <= b)
	case token.GTR:
		return b2i(a > b)
	case token.GEQ:
		return b2i(a >= b)
	}
	panic(fmt.Sprintf("interp: unexpected binary op %v", op))
}

func (ip *interp) evalCall(call *ast.CallExpr, idx int) int64 {
	name := call.Fun.Name
	if _, ok := sem.Builtins[name]; ok {
		return ip.evalBuiltin(call, idx)
	}
	fi := ip.c.Info.Funcs[name]
	args := make([]int64, len(call.Args))
	for i, a := range call.Args {
		args[i] = ip.evalExpr(a, idx)
	}
	v, retIdx := ip.callFunction(fi, args, call.Pos())
	ip.curEntry = idx // restore: callee statements moved it
	if retIdx >= 0 {
		ip.recordUse(idx, &sem.Symbol{ID: trace.RetvalSym}, trace.ScalarElem, retIdx, v)
	}
	return v
}

// callFunction pushes a frame, binds parameters (defined by the call-site
// entry), executes the body, and returns the return value and the trace
// index of the return entry (-1 if none).
func (ip *interp) callFunction(fi *sem.FuncInfo, args []int64, pos token.Pos) (int64, int) {
	if len(ip.frames) >= ip.maxFrames {
		ip.fail(pos, 0, ErrFrames)
	}
	callSite := ip.curEntry
	fr := newFrame(ip.nextAct, fi.NumSlots(), callSite)
	ip.nextAct++
	for i, p := range fi.Params {
		fr.scalars[p.Slot] = cell{val: args[i], def: idxOrNoDef(callSite)}
		if callSite >= 0 {
			ip.entry(callSite).Defs = append(ip.entry(callSite).Defs,
				trace.DefRec{Sym: p.ID, Elem: trace.ScalarElem})
		}
	}
	ip.frames = append(ip.frames, fr)
	sig, v := ip.execBlock(fi.Decl.Body)
	retIdx := -1
	if sig == sigReturn && ip.tr != nil {
		retIdx = ip.curEntry // points at the return entry... not guaranteed
	}
	ip.frames = ip.frames[:len(ip.frames)-1]
	return v, retIdx
}

func (ip *interp) evalBuiltin(call *ast.CallExpr, idx int) int64 {
	name := call.Fun.Name
	switch name {
	case "read":
		if ip.inPos >= len(ip.input) {
			return -1
		}
		v := ip.input[ip.inPos]
		ip.inPos++
		return v
	case "peek":
		if ip.inPos >= len(ip.input) {
			return -1
		}
		return ip.input[ip.inPos]
	case "eof":
		return b2i(ip.inPos >= len(ip.input))
	case "len":
		id := call.Args[0].(*ast.Ident)
		sym := ip.c.Info.Uses[id]
		return sym.Size
	case "abs":
		v := ip.evalExpr(call.Args[0], idx)
		if v < 0 {
			return -v
		}
		return v
	case "min":
		a := ip.evalExpr(call.Args[0], idx)
		b := ip.evalExpr(call.Args[1], idx)
		if a < b {
			return a
		}
		return b
	case "max":
		a := ip.evalExpr(call.Args[0], idx)
		b := ip.evalExpr(call.Args[1], idx)
		if a > b {
			return a
		}
		return b
	case "assert":
		v := ip.evalExpr(call.Args[0], idx)
		if v == 0 {
			ip.fail(call.Pos(), 0, ErrAssert)
		}
		return v
	}
	panic(fmt.Sprintf("interp: unexpected builtin %s", name))
}
