package interp

// Checkpointed re-execution: capture cheap snapshots of the interpreter
// state during one traced run, then fork new runs that re-execute only
// the suffix after a snapshot. This is what turns switched re-execution
// (the hot path of implicit-dependence verification) from O(trace) into
// O(suffix) per candidate — see docs/CHECKPOINT.md for the full design.
//
// A tree-walking interpreter cannot snapshot its Go call stack, so a
// checkpoint is only *eligible* at points where that stack is trivially
// reconstructible: the top of a predicate instance (if/while/for) at
// statement level in main's frame. There the Go stack is exactly a nest
// of block/if/while/for executions, which the run records as an explicit
// resume path (pathStep list); RunFrom rebuilds the stack by descending
// it. Predicates inside callees or reached mid-expression are simply not
// capture points — switched runs against them resume from the nearest
// earlier eligible checkpoint instead.

import (
	"eol/internal/lang/ast"
	"eol/internal/trace"
)

// DefaultCheckpoints is the checkpoint-count bound when none is given:
// enough that the expected suffix is a small fraction of the trace,
// small enough that the retained state stays far below one extra trace.
const DefaultCheckpoints = 64

// stepKind says how one resume-path step re-enters its construct.
type stepKind uint8

const (
	stepBlock  stepKind = iota // executing stmt idx of a block
	stepIfThen                 // inside the then-branch of an if
	stepIfElse                 // inside the else-branch of an if
	stepWhile                  // inside a while (body or loop top)
	stepFor                    // inside a for, Init already executed
)

// pathStep is one level of the resume path: which construct main is
// currently inside, and (for blocks) at which statement.
type pathStep struct {
	kind stepKind
	node ast.Stmt // *ast.BlockStmt / *ast.IfStmt / *ast.WhileStmt / *ast.ForStmt
	idx  int      // stepBlock: index of the executing statement
}

// Checkpoint is one execution snapshot: everything RunFrom needs to
// continue the run from just before an eligible predicate instance.
// Checkpoints are immutable once captured and safe for concurrent forks.
type Checkpoint struct {
	steps    int      // executed statement instances at capture
	inPos    int      // input cursor
	nextAct  int      // next activation ID
	occ      []int    // per-statement occurrence counts (copy)
	frames   []*frame // frozen frames (shared, copy-on-write)
	path     []pathStep
	rendered string // formatted output so far
	prefix   *trace.Prefix
}

// Steps returns the step count at capture (== the trace prefix length,
// since every step appends one entry in trace mode).
func (ck *Checkpoint) Steps() int { return ck.steps }

// TraceLen returns the number of trace entries captured before the
// checkpoint; the forked run's first step produces entry TraceLen.
func (ck *Checkpoint) TraceLen() int { return ck.prefix.Len() }

// approxBytes estimates the state retained by this checkpoint: private
// copies only — frozen array elements are shared with the base run (and
// other checkpoints) and the trace prefix is shared by construction, so
// neither is charged here.
func (ck *Checkpoint) approxBytes() int64 {
	n := int64(len(ck.occ))*8 + int64(len(ck.path))*32 + int64(len(ck.rendered)) + 256
	for _, fr := range ck.frames {
		n += int64(len(fr.scalars))*16 + int64(len(fr.arrays))*9 + int64(len(fr.ctrl))*16 + 64
	}
	return n
}

// CheckpointStats snapshots a store's counters.
type CheckpointStats struct {
	// Count and Bytes describe the retained checkpoints: how many
	// survived thinning and (approximately) how much private state they
	// pin.
	Count int
	Bytes int64
	// Captured / Thinned count all capture and thinning events over the
	// run, for tuning the Max bound.
	Captured, Thinned int
}

// CheckpointStore collects checkpoints during one traced run
// (Options.Checkpoints) and answers nearest-checkpoint queries for
// RunFrom forks. Capture is driven by a deterministic stride-doubling
// policy: capture at every eligible predicate once the step counter
// passes the next mark; when the store exceeds Max, drop every second
// checkpoint and double the stride. The result is a set of at most Max
// checkpoints roughly evenly spaced over the run, chosen identically on
// every execution (no clocks, no randomness — determinism rule 1 of
// docs/CHECKPOINT.md).
//
// A store is bound to a single run. During the run it must only be
// touched by the interpreter; afterwards Nearest/Stats/Len are read-only
// and safe for concurrent use by verification workers.
type CheckpointStore struct {
	max    int
	stride int // step distance to the next capture mark
	next   int // step count at which the next capture may happen
	tr     *trace.Trace
	cks    []*Checkpoint // ascending by steps (== prefix length)

	captured, thinned int
	bytes             int64
}

// NewCheckpointStore returns a store bounded to max checkpoints
// (<= 0 means DefaultCheckpoints).
func NewCheckpointStore(max int) *CheckpointStore {
	if max <= 0 {
		max = DefaultCheckpoints
	}
	return &CheckpointStore{max: max, stride: 1}
}

// bind attaches the store to the run that fills it.
func (st *CheckpointStore) bind(tr *trace.Trace) {
	if st.tr != nil && st.tr != tr {
		panic("interp: CheckpointStore reused across runs")
	}
	st.tr = tr
}

// Len returns the number of retained checkpoints.
func (st *CheckpointStore) Len() int { return len(st.cks) }

// Stats snapshots the store's counters.
func (st *CheckpointStore) Stats() CheckpointStats {
	return CheckpointStats{
		Count: len(st.cks), Bytes: st.bytes,
		Captured: st.captured, Thinned: st.thinned,
	}
}

// Nearest returns the latest checkpoint whose trace prefix ends at or
// before trace entry traceIdx — the cheapest starting point for a fork
// that must re-execute entry traceIdx — or nil if no checkpoint
// precedes it.
func (st *CheckpointStore) Nearest(traceIdx int) *Checkpoint {
	lo, hi := 0, len(st.cks)
	for lo < hi {
		mid := (lo + hi) / 2
		if st.cks[mid].prefix.Len() <= traceIdx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	return st.cks[lo-1]
}

// maybeCheckpoint captures a checkpoint if the store's policy asks for
// one here. Called at predicate tops (if dispatch, while/for loop head),
// before the predicate's beginStmt; eligibility additionally requires
// executing at statement level in main's frame, where the resume path
// fully describes the Go stack.
func (ip *interp) maybeCheckpoint() {
	st := ip.cks
	if st == nil || ip.res.Steps < st.next || ip.frames[len(ip.frames)-1].id != 1 {
		return
	}
	st.capture(ip)
}

// capture freezes the live frames and records the snapshot.
func (st *CheckpointStore) capture(ip *interp) {
	for _, fr := range ip.frames {
		fr.freeze()
	}
	ck := &Checkpoint{
		steps:    ip.res.Steps,
		inPos:    ip.inPos,
		nextAct:  ip.nextAct,
		occ:      append([]int(nil), ip.occ...),
		frames:   append([]*frame(nil), ip.frames...),
		path:     append([]pathStep(nil), ip.path...),
		rendered: ip.out.String(),
		prefix:   st.tr.PrefixAt(ip.tr.Len()),
	}
	st.cks = append(st.cks, ck)
	st.captured++
	st.bytes += ck.approxBytes()
	if len(st.cks) > st.max {
		st.thin()
	}
	st.next = ip.res.Steps + st.stride
}

// thin drops every second checkpoint and doubles the stride.
func (st *CheckpointStore) thin() {
	kept := st.cks[:0]
	var bytes int64
	for i, ck := range st.cks {
		if i%2 == 0 {
			kept = append(kept, ck)
			bytes += ck.approxBytes()
		} else {
			st.thinned++
		}
	}
	for i := len(kept); i < len(st.cks); i++ {
		st.cks[i] = nil // release for GC
	}
	st.cks = kept
	st.bytes = bytes
	st.stride *= 2
}
