package interp

import (
	"context"

	"eol/internal/trace"
)

// Backend is one MiniC execution engine. Two implementations exist: the
// tree-walking reference interpreter in this package (Tree) and the
// bytecode VM in internal/vm. Both honor the same contract — for any
// program, input and Options, they produce byte-identical Results:
// the same trace entries (defs/uses/predicates/parents, step numbering),
// outputs, rendered text, step counts, RuntimeError positions, and
// ErrBudget / ctx-cancellation step semantics. The tree-walker is the
// always-available differential oracle for that contract; see
// docs/VM.md.
type Backend interface {
	// Name identifies the backend ("tree", "vm").
	Name() string
	// Run executes the program under opts. When opts.Checkpoints is a
	// store of a foreign backend the store is ignored (no captures).
	Run(c *Compiled, opts Options) *Result
	// NewCheckpoints returns an empty checkpoint store of this backend's
	// native representation, bounded to max snapshots (<= 0 means
	// DefaultCheckpoints), for use as Options.Checkpoints on a traced
	// run.
	NewCheckpoints(max int) Checkpoints
	// RunSwitchedFrom is the checkpoint-accelerated switched run: it
	// forks from the nearest snapshot in cks at or before the switched
	// predicate instance in orig and re-executes only the suffix. It
	// returns nil when no snapshot applies (nil/foreign store, predicate
	// not in the trace, no snapshot before it, or a budget the fork
	// could not honor); the caller then falls back to a full Run.
	RunSwitchedFrom(cks Checkpoints, orig *trace.Trace, c *Compiled, opts Options) *Result
}

// Checkpoints is the backend-neutral view of a checkpoint store: each
// backend snapshots its own execution representation (the tree-walker an
// explicit resume path, the VM a pc/frame stack), so stores are opaque
// outside their backend and only expose their counters. A store must be
// handed back to the backend that created it; a foreign backend ignores
// it.
type Checkpoints interface {
	// Len returns the number of retained checkpoints.
	Len() int
	// Stats snapshots the store's counters.
	Stats() CheckpointStats
}

// Tree is the tree-walking reference backend: the interpreter this
// package implements, wrapped in the Backend interface. It is the
// differential oracle every other backend is pinned against.
var Tree Backend = treeBackend{}

type treeBackend struct{}

func (treeBackend) Name() string { return "tree" }

func (treeBackend) Run(c *Compiled, opts Options) *Result { return Run(c, opts) }

func (treeBackend) NewCheckpoints(max int) Checkpoints { return NewCheckpointStore(max) }

func (treeBackend) RunSwitchedFrom(cks Checkpoints, orig *trace.Trace, c *Compiled, opts Options) *Result {
	st, _ := cks.(*CheckpointStore) // foreign stores fall back to a full run
	return RunSwitchedFromStore(st, orig, c, opts)
}

// ---------------------------------------------------------------------------
// Step accounting

// StepMeter centralizes the step-budget and context-poll accounting
// shared by every backend, so its two load-bearing invariants hold by
// construction rather than by copy:
//
//   - the budget check precedes the increment, so the step counter is
//     clamped to exactly the budget on expiry — deadline accounting
//     layered on the counter relies on it never overshooting;
//   - ctx.Err() is polled once per ctxCheckEvery executed statements
//     (a mask on the counter), plus unconditionally on the first tick
//     when forceFirstPoll is set — forked runs inherit a step count
//     that is off the poll grid but must still observe a dead context
//     on their first suffix step.
//
// The counter is shared by pointer so the owning run's Result.Steps is
// always current (checkpoint capture policies read it mid-run).
type StepMeter struct {
	steps    *int
	budget   int
	ctx      context.Context // nil = unbounded
	forceCtx bool
}

// NewStepMeter builds a meter over the given counter. budget must
// already be resolved (> 0); ctx may be nil.
func NewStepMeter(steps *int, budget int, ctx context.Context, forceFirstPoll bool) StepMeter {
	return StepMeter{steps: steps, budget: budget, ctx: ctx, forceCtx: forceFirstPoll}
}

// Tick accounts one statement instance about to execute. It returns
// ErrBudget when the budget is already spent (without incrementing) and
// a cancellation sentinel when a poll observes a dead context; a nil
// return means the statement may proceed.
func (m *StepMeter) Tick() error {
	if *m.steps >= m.budget {
		return ErrBudget
	}
	*m.steps++
	if m.ctx != nil && (m.forceCtx || *m.steps&(ctxCheckEvery-1) == 0) {
		m.forceCtx = false
		if err := m.ctx.Err(); err != nil {
			return CtxErr(err)
		}
	}
	return nil
}

// Budget returns the resolved step budget the meter enforces.
func (m *StepMeter) Budget() int { return m.budget }
