package interp

import (
	"eol/internal/lang/ast"
	"eol/internal/trace"
)

// RunFrom forks a run from a checkpoint captured by an earlier traced
// run of the same Compiled program and executes only the suffix. The
// result is byte-identical — trace, outputs, rendered text, step count,
// error — to a full Run with the same Options, provided:
//
//   - c is the same *Compiled the checkpoint was captured from (control
//     stack entries hold CFG node pointers),
//   - opts.Input equals the original run's input (the prefix consumed a
//     cursor into it),
//   - any Switch/Perturb plan targets an instance at or after the
//     checkpoint (guaranteed when the checkpoint came from
//     CheckpointStore.Nearest of the target's trace index),
//   - opts.StepBudget exceeds the checkpoint's step count (the forked
//     run inherits Steps, so a smaller budget would already be spent).
//
// The forked run is always traced: its Trace shares the prefix entries
// with the original run's trace (see trace.Prefix) and owns the suffix.
// opts.BuildTrace and opts.Rec are ignored (forks run on verification
// workers, which must not emit observability events), and so is
// opts.Checkpoints — a fork never captures new checkpoints.
func RunFrom(c *Compiled, ck *Checkpoint, opts Options) *Result {
	ip := &interp{
		c:         c,
		input:     opts.Input,
		inPos:     ck.inPos,
		plan:      opts.Switch,
		perturb:   opts.Perturb,
		maxFrames: opts.MaxFrames,
		occ:       append([]int(nil), ck.occ...),
		nextAct:   ck.nextAct,
		res:       &Result{Steps: ck.steps, ResumedAt: ck.steps},
	}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			// Already expired: mirror Run's contract — no partial suffix.
			ip.res.Err = &RuntimeError{Err: CtxErr(err)}
			return ip.res
		}
	}
	budget := opts.StepBudget
	if budget <= 0 {
		budget = DefaultStepBudget
	}
	if ip.maxFrames <= 0 {
		ip.maxFrames = DefaultMaxFrames
	}
	// forceFirstPoll: the first suffix step must observe a dead context
	// even though the inherited step count is off the ctxCheckEvery grid.
	ip.meter = NewStepMeter(&ip.res.Steps, budget, opts.Ctx, true)
	ip.frames = append([]*frame(nil), ck.frames...)
	ip.tr = ck.prefix.Fork()
	ip.res.Trace = ip.tr
	ip.res.Outputs = ip.tr.Outputs // both clipped: first append reallocates
	ip.out.WriteString(ck.rendered)
	ip.curEntry = -1

	ip.resume(ck.path)
	ip.res.Rendered = ip.out.String()
	return ip.res
}

// resume rebuilds the interpreter's Go stack by descending the
// checkpoint's resume path and runs the program to completion, with the
// same abort handling as run().
func (ip *interp) resume(path []pathStep) {
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(abort); ok {
				ip.res.Err = a.err
				return
			}
			panic(r)
		}
	}()
	// The path is never empty: capture requires executing inside main's
	// body, whose block is the outermost step. Finishing the path IS
	// finishing main; run()'s caller discards main's return value.
	ip.resumePath(path)
}

// resumePath re-enters the construct at path[0], resumes path[1:] inside
// it, and then executes that construct's remainder. The innermost step
// re-enters at exactly the point maybeCheckpoint captured: a loop head
// (execWhileLoop/execForLoop start with the next condition check) or a
// block position whose statement is the checkpointed if — re-dispatched
// fresh, which is safe because no part of it had executed yet.
func (ip *interp) resumePath(path []pathStep) (signal, int64) {
	st := path[0]
	rest := path[1:]
	switch st.kind {
	case stepBlock:
		b := st.node.(*ast.BlockStmt)
		i := st.idx
		if len(rest) > 0 {
			// Finish the in-progress statement at i, then continue after it.
			if sig, v := ip.resumePath(rest); sig != sigNormal {
				return sig, v
			}
			i++
		}
		for ; i < len(b.Stmts); i++ {
			if sig, v := ip.execStmt(b.Stmts[i]); sig != sigNormal {
				return sig, v
			}
		}
		return sigNormal, 0

	case stepIfThen:
		n := st.node.(*ast.IfStmt)
		if len(rest) > 0 {
			return ip.resumePath(rest)
		}
		return ip.execBlock(n.Then)

	case stepIfElse:
		// An innermost else-step means the checkpoint fired at an else-if's
		// predicate top, before any of it executed: re-dispatch it fresh.
		n := st.node.(*ast.IfStmt)
		if len(rest) > 0 {
			return ip.resumePath(rest)
		}
		return ip.execStmt(n.Else)

	case stepWhile:
		n := st.node.(*ast.WhileStmt)
		if len(rest) > 0 {
			sig, v := ip.resumePath(rest) // remainder of the body
			switch sig {
			case sigBreak:
				return sigNormal, 0
			case sigReturn:
				return sigReturn, v
			}
		}
		return ip.execWhileLoop(n)

	case stepFor:
		n := st.node.(*ast.ForStmt)
		if len(rest) > 0 {
			sig, v := ip.resumePath(rest) // remainder of the body
			switch sig {
			case sigBreak:
				return sigNormal, 0
			case sigReturn:
				return sigReturn, v
			}
			if n.Post != nil {
				ip.execStmt(n.Post)
			}
		}
		return ip.execForLoop(n)
	}
	panic("interp: corrupt resume path")
}

// RunSwitchedFromStore is the checkpoint-accelerated switched run: it
// picks the nearest checkpoint at or before pred's instance in the
// original trace and forks from it. It returns nil when no checkpoint
// qualifies (no store, predicate not in the trace, no checkpoint before
// it, or a budget the fork could not honor) — the caller then falls back
// to a full run. Safe for concurrent use once the capturing run has
// finished.
func RunSwitchedFromStore(cks *CheckpointStore, orig *trace.Trace, c *Compiled, opts Options) *Result {
	if cks == nil || orig == nil || opts.Switch == nil {
		return nil
	}
	idx := orig.FindInstance(trace.Instance{Stmt: opts.Switch.Stmt, Occ: opts.Switch.Occ})
	if idx < 0 {
		return nil
	}
	ck := cks.Nearest(idx)
	if ck == nil {
		return nil
	}
	if opts.StepBudget > 0 && opts.StepBudget <= ck.steps {
		// A full run would exhaust this budget before reaching the
		// checkpoint; forking would misreport the expiry step.
		return nil
	}
	return RunFrom(c, ck, opts)
}
