package ast

import (
	"fmt"
	"io"
	"strings"
)

// Fprint writes a fully indented MiniC rendering of the program to w.
// When withIDs is true, each numbered statement is prefixed with its
// statement ID in the paper's "S<n>:" notation.
func Fprint(w io.Writer, p *Program, withIDs bool) error {
	pr := &printer{w: w, withIDs: withIDs}
	for _, g := range p.Globals {
		pr.stmt(g, 0)
	}
	if len(p.Globals) > 0 {
		pr.line(0, "")
	}
	for i, f := range p.Funcs {
		if i > 0 {
			pr.line(0, "")
		}
		params := make([]string, len(f.Params))
		for j, q := range f.Params {
			params[j] = q.Name
		}
		pr.line(0, fmt.Sprintf("func %s(%s) {", f.Name.Name, strings.Join(params, ", ")))
		pr.block(f.Body, 1)
		pr.line(0, "}")
	}
	return pr.err
}

// ProgramString renders the program as a string; see Fprint.
func ProgramString(p *Program, withIDs bool) string {
	var sb strings.Builder
	_ = Fprint(&sb, p, withIDs)
	return sb.String()
}

type printer struct {
	w       io.Writer
	withIDs bool
	err     error
}

func (pr *printer) line(depth int, s string) {
	if pr.err != nil {
		return
	}
	_, pr.err = fmt.Fprintf(pr.w, "%s%s\n", strings.Repeat("    ", depth), s)
}

func (pr *printer) label(s Stmt) string {
	if !pr.withIDs {
		return ""
	}
	if n, ok := s.(Numbered); ok && n.ID() > 0 {
		return fmt.Sprintf("S%d: ", n.ID())
	}
	return ""
}

func (pr *printer) block(b *BlockStmt, depth int) {
	for _, s := range b.Stmts {
		pr.stmt(s, depth)
	}
}

func (pr *printer) stmt(s Stmt, depth int) {
	switch n := s.(type) {
	case *BlockStmt:
		pr.line(depth, "{")
		pr.block(n, depth+1)
		pr.line(depth, "}")
	case *IfStmt:
		pr.line(depth, pr.label(s)+StmtString(s)+" {")
		pr.block(n.Then, depth+1)
		switch e := n.Else.(type) {
		case nil:
			pr.line(depth, "}")
		case *BlockStmt:
			pr.line(depth, "} else {")
			pr.block(e, depth+1)
			pr.line(depth, "}")
		case *IfStmt:
			pr.line(depth, "} else")
			pr.stmt(e, depth)
		}
	case *WhileStmt:
		pr.line(depth, pr.label(s)+StmtString(s)+" {")
		pr.block(n.Body, depth+1)
		pr.line(depth, "}")
	case *ForStmt:
		pr.line(depth, pr.label(s)+StmtString(s)+" {")
		pr.block(n.Body, depth+1)
		pr.line(depth, "}")
	default:
		pr.line(depth, pr.label(s)+StmtString(s))
	}
}
