// Package ast declares the abstract syntax tree of MiniC.
//
// Every executable statement carries a small integer statement ID assigned
// in source order by the semantic pass (S1, S2, ... in the notation of the
// PLDI 2007 paper). Dynamic analyses identify statement *instances* by the
// pair (statement ID, occurrence count).
package ast

import (
	"fmt"
	"strings"

	"eol/internal/lang/token"
)

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is the interface implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	ValuePos token.Pos
	Value    int64
}

// StringLit is a string literal; MiniC strings appear only as print
// arguments.
type StringLit struct {
	ValuePos token.Pos
	Value    string
}

// Ident names a variable, function or builtin.
type Ident struct {
	NamePos token.Pos
	Name    string
}

// IndexExpr is an array element access a[i].
type IndexExpr struct {
	X     *Ident
	Index Expr
}

// CallExpr is a function or builtin call.
type CallExpr struct {
	Fun    *Ident
	Lparen token.Pos
	Args   []Expr
}

// UnaryExpr is a unary operation: -x, !x, ~x.
type UnaryExpr struct {
	OpPos token.Pos
	Op    token.Kind
	X     Expr
}

// BinaryExpr is a binary operation. && and || short-circuit.
type BinaryExpr struct {
	X  Expr
	Op token.Kind
	Y  Expr
}

func (x *IntLit) Pos() token.Pos     { return x.ValuePos }
func (x *StringLit) Pos() token.Pos  { return x.ValuePos }
func (x *Ident) Pos() token.Pos      { return x.NamePos }
func (x *IndexExpr) Pos() token.Pos  { return x.X.Pos() }
func (x *CallExpr) Pos() token.Pos   { return x.Fun.Pos() }
func (x *UnaryExpr) Pos() token.Pos  { return x.OpPos }
func (x *BinaryExpr) Pos() token.Pos { return x.X.Pos() }

func (*IntLit) exprNode()     {}
func (*StringLit) exprNode()  {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}

// ---------------------------------------------------------------------------
// Statements

// Stmt is the interface implemented by all statement nodes. Executable
// statements carry an ID assigned by the semantic pass; BlockStmt has no ID
// of its own.
type Stmt interface {
	Node
	stmtNode()
}

// Numbered is implemented by statements that receive a statement ID.
type Numbered interface {
	Stmt
	ID() int
	setID(int)
}

// stmtID provides the Numbered implementation by embedding.
type stmtID struct{ id int }

// ID returns the statement's ID (1-based; 0 means unassigned).
func (s *stmtID) ID() int     { return s.id }
func (s *stmtID) setID(n int) { s.id = n }

// SetID assigns id to s. It is exported as a free function so that only
// the semantic pass (and tests) assign IDs deliberately.
func SetID(s Numbered, id int) { s.setID(id) }

// VarDeclStmt declares a scalar (possibly initialized) or a fixed-size
// array: "var x;", "var x = e;", "var a[N];".
type VarDeclStmt struct {
	stmtID
	VarPos token.Pos
	Name   *Ident
	Size   Expr // non-nil for arrays; must be a constant expression
	Init   Expr // non-nil for initialized scalars
}

// AssignStmt assigns to a scalar or array element. Op is ASSIGN or a
// compound-assignment token; ++/-- are parsed into ADD_ASSIGN/SUB_ASSIGN
// with RHS 1.
type AssignStmt struct {
	stmtID
	LHS Expr // *Ident or *IndexExpr
	Op  token.Kind
	RHS Expr
}

// IfStmt is a conditional. Else is nil, a *BlockStmt, or another *IfStmt
// (else-if chain).
type IfStmt struct {
	stmtID
	IfPos token.Pos
	Cond  Expr
	Then  *BlockStmt
	Else  Stmt
}

// WhileStmt is a pre-tested loop.
type WhileStmt struct {
	stmtID
	WhilePos token.Pos
	Cond     Expr
	Body     *BlockStmt
}

// ForStmt is a C-style loop. Init and Post may be nil; Cond nil means true.
type ForStmt struct {
	stmtID
	ForPos token.Pos
	Init   Stmt // *AssignStmt or *VarDeclStmt or nil
	Cond   Expr
	Post   Stmt // *AssignStmt or nil
	Body   *BlockStmt
}

// BreakStmt exits the innermost loop.
type BreakStmt struct {
	stmtID
	BreakPos token.Pos
}

// ContinueStmt jumps to the next iteration of the innermost loop.
type ContinueStmt struct {
	stmtID
	ContinuePos token.Pos
}

// ReturnStmt returns from the current function; Value may be nil.
type ReturnStmt struct {
	stmtID
	ReturnPos token.Pos
	Value     Expr
}

// ExprStmt evaluates an expression for its side effects (a call).
type ExprStmt struct {
	stmtID
	X Expr
}

// PrintStmt emits output events, one per argument. String literal
// arguments are formatting only and produce no output *value* events.
type PrintStmt struct {
	stmtID
	PrintPos token.Pos
	Args     []Expr
}

// BlockStmt is a brace-delimited statement list. It has no statement ID.
type BlockStmt struct {
	Lbrace token.Pos
	Stmts  []Stmt
}

func (s *VarDeclStmt) Pos() token.Pos  { return s.VarPos }
func (s *AssignStmt) Pos() token.Pos   { return s.LHS.Pos() }
func (s *IfStmt) Pos() token.Pos       { return s.IfPos }
func (s *WhileStmt) Pos() token.Pos    { return s.WhilePos }
func (s *ForStmt) Pos() token.Pos      { return s.ForPos }
func (s *BreakStmt) Pos() token.Pos    { return s.BreakPos }
func (s *ContinueStmt) Pos() token.Pos { return s.ContinuePos }
func (s *ReturnStmt) Pos() token.Pos   { return s.ReturnPos }
func (s *ExprStmt) Pos() token.Pos     { return s.X.Pos() }
func (s *PrintStmt) Pos() token.Pos    { return s.PrintPos }
func (s *BlockStmt) Pos() token.Pos    { return s.Lbrace }

func (*VarDeclStmt) stmtNode()  {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*PrintStmt) stmtNode()    {}
func (*BlockStmt) stmtNode()    {}

// IsPredicate reports whether s is a predicate statement: a statement
// whose execution evaluates a branch condition (if, while, for).
func IsPredicate(s Stmt) bool {
	switch s.(type) {
	case *IfStmt, *WhileStmt, *ForStmt:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Declarations and program

// FuncDecl declares a function. Parameters are int scalars; the return
// value, if any, is an int.
type FuncDecl struct {
	FuncPos token.Pos
	Name    *Ident
	Params  []*Ident
	Body    *BlockStmt
}

// Pos returns the position of the func keyword.
func (f *FuncDecl) Pos() token.Pos { return f.FuncPos }

// Program is a parsed MiniC compilation unit. Globals are VarDeclStmts at
// file scope; execution starts at the function named "main".
type Program struct {
	Globals []*VarDeclStmt
	Funcs   []*FuncDecl
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name.Name == name {
			return f
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Walking

// Inspect traverses the statement tree rooted at s in source order,
// calling f for every statement (including s itself and nested blocks'
// statements). If f returns false for a statement, its children are
// skipped.
func Inspect(s Stmt, f func(Stmt) bool) {
	if s == nil || !f(s) {
		return
	}
	switch n := s.(type) {
	case *BlockStmt:
		for _, c := range n.Stmts {
			Inspect(c, f)
		}
	case *IfStmt:
		Inspect(n.Then, f)
		if n.Else != nil {
			Inspect(n.Else, f)
		}
	case *WhileStmt:
		Inspect(n.Body, f)
	case *ForStmt:
		if n.Init != nil {
			Inspect(n.Init, f)
		}
		if n.Post != nil {
			Inspect(n.Post, f)
		}
		Inspect(n.Body, f)
	}
}

// InspectExprs calls f on every expression appearing directly in statement
// s (not descending into nested statements), in evaluation order, then
// recursively on subexpressions.
func InspectExprs(s Stmt, f func(Expr)) {
	var walk func(e Expr)
	walk = func(e Expr) {
		if e == nil {
			return
		}
		f(e)
		switch x := e.(type) {
		case *IndexExpr:
			walk(x.X)
			walk(x.Index)
		case *CallExpr:
			walk(x.Fun)
			for _, a := range x.Args {
				walk(a)
			}
		case *UnaryExpr:
			walk(x.X)
		case *BinaryExpr:
			walk(x.X)
			walk(x.Y)
		}
	}
	switch n := s.(type) {
	case *VarDeclStmt:
		walk(n.Size)
		walk(n.Init)
	case *AssignStmt:
		walk(n.LHS)
		walk(n.RHS)
	case *IfStmt:
		walk(n.Cond)
	case *WhileStmt:
		walk(n.Cond)
	case *ForStmt:
		walk(n.Cond)
	case *ReturnStmt:
		walk(n.Value)
	case *ExprStmt:
		walk(n.X)
	case *PrintStmt:
		for _, a := range n.Args {
			walk(a)
		}
	}
}

// ---------------------------------------------------------------------------
// Printing

// ExprString renders e as MiniC source.
func ExprString(e Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e, 0)
	return sb.String()
}

func writeExpr(sb *strings.Builder, e Expr, parentPrec int) {
	switch x := e.(type) {
	case nil:
		return
	case *IntLit:
		fmt.Fprintf(sb, "%d", x.Value)
	case *StringLit:
		fmt.Fprintf(sb, "%q", x.Value)
	case *Ident:
		sb.WriteString(x.Name)
	case *IndexExpr:
		sb.WriteString(x.X.Name)
		sb.WriteByte('[')
		writeExpr(sb, x.Index, 0)
		sb.WriteByte(']')
	case *CallExpr:
		sb.WriteString(x.Fun.Name)
		sb.WriteByte('(')
		for i, a := range x.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a, 0)
		}
		sb.WriteByte(')')
	case *UnaryExpr:
		sb.WriteString(x.Op.String())
		writeExpr(sb, x.X, 10)
	case *BinaryExpr:
		prec := x.Op.Precedence()
		if prec < parentPrec {
			sb.WriteByte('(')
		}
		writeExpr(sb, x.X, prec)
		sb.WriteByte(' ')
		sb.WriteString(x.Op.String())
		sb.WriteByte(' ')
		writeExpr(sb, x.Y, prec+1)
		if prec < parentPrec {
			sb.WriteByte(')')
		}
	default:
		fmt.Fprintf(sb, "<?expr %T>", e)
	}
}

// StmtString renders the head of s as one line of MiniC source (bodies of
// compound statements are elided). Intended for diagnostics and reports.
func StmtString(s Stmt) string {
	switch n := s.(type) {
	case *VarDeclStmt:
		if n.Size != nil {
			return fmt.Sprintf("var %s[%s];", n.Name.Name, ExprString(n.Size))
		}
		if n.Init != nil {
			return fmt.Sprintf("var %s = %s;", n.Name.Name, ExprString(n.Init))
		}
		return fmt.Sprintf("var %s;", n.Name.Name)
	case *AssignStmt:
		return fmt.Sprintf("%s %s %s;", ExprString(n.LHS), n.Op, ExprString(n.RHS))
	case *IfStmt:
		return fmt.Sprintf("if (%s)", ExprString(n.Cond))
	case *WhileStmt:
		return fmt.Sprintf("while (%s)", ExprString(n.Cond))
	case *ForStmt:
		var init, post string
		if n.Init != nil {
			init = strings.TrimSuffix(StmtString(n.Init), ";")
		}
		if n.Post != nil {
			post = strings.TrimSuffix(StmtString(n.Post), ";")
		}
		cond := ""
		if n.Cond != nil {
			cond = ExprString(n.Cond)
		}
		return fmt.Sprintf("for (%s; %s; %s)", init, cond, post)
	case *BreakStmt:
		return "break;"
	case *ContinueStmt:
		return "continue;"
	case *ReturnStmt:
		if n.Value != nil {
			return fmt.Sprintf("return %s;", ExprString(n.Value))
		}
		return "return;"
	case *ExprStmt:
		return ExprString(n.X) + ";"
	case *PrintStmt:
		var sb strings.Builder
		sb.WriteString("print(")
		for i, a := range n.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(&sb, a, 0)
		}
		sb.WriteString(");")
		return sb.String()
	case *BlockStmt:
		return "{ ... }"
	}
	return fmt.Sprintf("<?stmt %T>", s)
}
