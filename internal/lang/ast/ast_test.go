package ast

import (
	"strings"
	"testing"

	"eol/internal/lang/token"
)

func ident(name string) *Ident { return &Ident{Name: name} }

func TestExprString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&IntLit{Value: 42}, "42"},
		{&IntLit{Value: -3}, "-3"},
		{&StringLit{Value: "hi"}, `"hi"`},
		{ident("x"), "x"},
		{&IndexExpr{X: ident("a"), Index: &IntLit{Value: 2}}, "a[2]"},
		{&CallExpr{Fun: ident("f"), Args: []Expr{ident("x"), &IntLit{Value: 1}}}, "f(x, 1)"},
		{&UnaryExpr{Op: token.SUB, X: ident("x")}, "-x"},
		{&UnaryExpr{Op: token.NOT, X: ident("p")}, "!p"},
		{&BinaryExpr{X: ident("a"), Op: token.ADD, Y: ident("b")}, "a + b"},
		{
			// (a + b) * c needs parens; a + b * c does not
			&BinaryExpr{
				X:  &BinaryExpr{X: ident("a"), Op: token.ADD, Y: ident("b")},
				Op: token.MUL, Y: ident("c"),
			},
			"(a + b) * c",
		},
		{
			&BinaryExpr{
				X:  ident("a"),
				Op: token.ADD,
				Y:  &BinaryExpr{X: ident("b"), Op: token.MUL, Y: ident("c")},
			},
			"a + b * c",
		},
		{
			// right operand at the same precedence level gets parens
			// (a - (b - c) must not print as a - b - c)
			&BinaryExpr{
				X:  ident("a"),
				Op: token.SUB,
				Y:  &BinaryExpr{X: ident("b"), Op: token.SUB, Y: ident("c")},
			},
			"a - (b - c)",
		},
	}
	for _, c := range cases {
		if got := ExprString(c.e); got != c.want {
			t.Errorf("ExprString = %q, want %q", got, c.want)
		}
	}
}

func TestStmtString(t *testing.T) {
	cases := []struct {
		s    Stmt
		want string
	}{
		{&VarDeclStmt{Name: ident("x")}, "var x;"},
		{&VarDeclStmt{Name: ident("x"), Init: &IntLit{Value: 5}}, "var x = 5;"},
		{&VarDeclStmt{Name: ident("a"), Size: &IntLit{Value: 8}}, "var a[8];"},
		{&AssignStmt{LHS: ident("x"), Op: token.ASSIGN, RHS: &IntLit{Value: 1}}, "x = 1;"},
		{&AssignStmt{LHS: ident("x"), Op: token.ADD_ASSIGN, RHS: &IntLit{Value: 1}}, "x += 1;"},
		{&IfStmt{Cond: ident("p")}, "if (p)"},
		{&WhileStmt{Cond: &BinaryExpr{X: ident("i"), Op: token.LSS, Y: ident("n")}}, "while (i < n)"},
		{&BreakStmt{}, "break;"},
		{&ContinueStmt{}, "continue;"},
		{&ReturnStmt{}, "return;"},
		{&ReturnStmt{Value: ident("x")}, "return x;"},
		{&PrintStmt{Args: []Expr{ident("x"), &StringLit{Value: " "}}}, `print(x, " ");`},
		{&BlockStmt{}, "{ ... }"},
	}
	for _, c := range cases {
		if got := StmtString(c.s); got != c.want {
			t.Errorf("StmtString = %q, want %q", got, c.want)
		}
	}
}

func TestForStmtString(t *testing.T) {
	f := &ForStmt{
		Init: &VarDeclStmt{Name: ident("i"), Init: &IntLit{Value: 0}},
		Cond: &BinaryExpr{X: ident("i"), Op: token.LSS, Y: &IntLit{Value: 10}},
		Post: &AssignStmt{LHS: ident("i"), Op: token.ADD_ASSIGN, RHS: &IntLit{Value: 1}},
	}
	if got := StmtString(f); got != "for (var i = 0; i < 10; i += 1)" {
		t.Errorf("for renders %q", got)
	}
	empty := &ForStmt{}
	if got := StmtString(empty); got != "for (; ; )" {
		t.Errorf("empty for renders %q", got)
	}
}

func TestIsPredicate(t *testing.T) {
	if !IsPredicate(&IfStmt{}) || !IsPredicate(&WhileStmt{}) || !IsPredicate(&ForStmt{}) {
		t.Error("if/while/for are predicates")
	}
	if IsPredicate(&AssignStmt{}) || IsPredicate(&BreakStmt{}) {
		t.Error("assign/break are not predicates")
	}
}

func TestInspectOrder(t *testing.T) {
	// while { if { break } else { continue } ; return }
	inner := &IfStmt{
		Cond: ident("c"),
		Then: &BlockStmt{Stmts: []Stmt{&BreakStmt{}}},
		Else: &BlockStmt{Stmts: []Stmt{&ContinueStmt{}}},
	}
	loop := &WhileStmt{
		Cond: ident("p"),
		Body: &BlockStmt{Stmts: []Stmt{inner, &ReturnStmt{}}},
	}
	var kindsSeen []string
	Inspect(loop, func(s Stmt) bool {
		switch s.(type) {
		case *WhileStmt:
			kindsSeen = append(kindsSeen, "while")
		case *IfStmt:
			kindsSeen = append(kindsSeen, "if")
		case *BreakStmt:
			kindsSeen = append(kindsSeen, "break")
		case *ContinueStmt:
			kindsSeen = append(kindsSeen, "continue")
		case *ReturnStmt:
			kindsSeen = append(kindsSeen, "return")
		}
		return true
	})
	want := "while if break continue return"
	if got := strings.Join(kindsSeen, " "); got != want {
		t.Errorf("Inspect order = %q, want %q", got, want)
	}

	// Pruning: returning false at the if skips its children.
	kindsSeen = nil
	Inspect(loop, func(s Stmt) bool {
		if _, isIf := s.(*IfStmt); isIf {
			kindsSeen = append(kindsSeen, "if")
			return false
		}
		switch s.(type) {
		case *BreakStmt, *ContinueStmt:
			kindsSeen = append(kindsSeen, "leaf")
		}
		return true
	})
	if strings.Contains(strings.Join(kindsSeen, " "), "leaf") {
		t.Error("Inspect did not prune the if's children")
	}
}

func TestInspectExprs(t *testing.T) {
	s := &AssignStmt{
		LHS: &IndexExpr{X: ident("a"), Index: ident("i")},
		Op:  token.ASSIGN,
		RHS: &CallExpr{Fun: ident("f"), Args: []Expr{&BinaryExpr{X: ident("x"), Op: token.ADD, Y: ident("y")}}},
	}
	var names []string
	InspectExprs(s, func(e Expr) {
		if id, ok := e.(*Ident); ok {
			names = append(names, id.Name)
		}
	})
	want := "a i f x y"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("InspectExprs idents = %q, want %q", got, want)
	}
}

func TestSetID(t *testing.T) {
	s := &AssignStmt{LHS: ident("x"), Op: token.ASSIGN, RHS: &IntLit{Value: 1}}
	if s.ID() != 0 {
		t.Error("fresh statement must have ID 0")
	}
	SetID(s, 7)
	if s.ID() != 7 {
		t.Errorf("ID = %d, want 7", s.ID())
	}
}

func TestProgramFunc(t *testing.T) {
	p := &Program{Funcs: []*FuncDecl{
		{Name: ident("main")},
		{Name: ident("helper")},
	}}
	if p.Func("helper") == nil || p.Func("main") == nil {
		t.Error("Func lookup failed")
	}
	if p.Func("nope") != nil {
		t.Error("Func should return nil for unknown names")
	}
}

// TestNodePositions exercises Pos on every node kind.
func TestNodePositions(t *testing.T) {
	p := token.Pos{Line: 2, Col: 3}
	exprs := []Expr{
		&IntLit{ValuePos: p},
		&StringLit{ValuePos: p},
		&Ident{NamePos: p},
		&IndexExpr{X: &Ident{NamePos: p}, Index: &IntLit{ValuePos: p}},
		&CallExpr{Fun: &Ident{NamePos: p}},
		&UnaryExpr{OpPos: p, Op: token.SUB, X: &IntLit{ValuePos: p}},
		&BinaryExpr{X: &Ident{NamePos: p}, Op: token.ADD, Y: &IntLit{ValuePos: p}},
	}
	for _, e := range exprs {
		if e.Pos() != p {
			t.Errorf("%T.Pos() = %v", e, e.Pos())
		}
	}
	stmts := []Stmt{
		&VarDeclStmt{VarPos: p, Name: ident("x")},
		&AssignStmt{LHS: &Ident{NamePos: p}, Op: token.ASSIGN, RHS: &IntLit{}},
		&IfStmt{IfPos: p, Cond: ident("c")},
		&WhileStmt{WhilePos: p, Cond: ident("c")},
		&ForStmt{ForPos: p},
		&BreakStmt{BreakPos: p},
		&ContinueStmt{ContinuePos: p},
		&ReturnStmt{ReturnPos: p},
		&ExprStmt{X: &CallExpr{Fun: &Ident{NamePos: p}}},
		&PrintStmt{PrintPos: p},
		&BlockStmt{Lbrace: p},
	}
	for _, s := range stmts {
		if s.Pos() != p {
			t.Errorf("%T.Pos() = %v", s, s.Pos())
		}
	}
}

// TestFprintWithIDs renders a program with statement labels.
func TestFprintWithIDs(t *testing.T) {
	decl := &VarDeclStmt{Name: ident("g")}
	SetID(decl, 1)
	ifs := &IfStmt{
		Cond: ident("g"),
		Then: &BlockStmt{Stmts: []Stmt{&BreakStmt{}}},
		Else: &BlockStmt{Stmts: []Stmt{&ContinueStmt{}}},
	}
	SetID(ifs, 2)
	loop := &WhileStmt{Cond: ident("g"), Body: &BlockStmt{Stmts: []Stmt{ifs}}}
	SetID(loop, 3)
	forStmt := &ForStmt{Body: &BlockStmt{}}
	SetID(forStmt, 4)
	prog := &Program{
		Globals: []*VarDeclStmt{decl},
		Funcs: []*FuncDecl{{
			Name:   ident("main"),
			Params: []*Ident{ident("a"), ident("b")},
			Body:   &BlockStmt{Stmts: []Stmt{loop, forStmt, &BlockStmt{}}},
		}},
	}
	out := ProgramString(prog, true)
	for _, want := range []string{"S1: var g;", "func main(a, b) {", "S3: while (g) {", "S2: if (g) {", "} else {", "S4: for"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fprint output missing %q:\n%s", want, out)
		}
	}
	// Without IDs there are no labels.
	if strings.Contains(ProgramString(prog, false), "S1:") {
		t.Error("unlabeled print contains IDs")
	}
}

// TestElseIfPrinting covers the else-if chain rendering.
func TestElseIfPrinting(t *testing.T) {
	inner := &IfStmt{Cond: ident("b"), Then: &BlockStmt{}}
	outer := &IfStmt{Cond: ident("a"), Then: &BlockStmt{}, Else: inner}
	prog := &Program{Funcs: []*FuncDecl{{
		Name: ident("main"),
		Body: &BlockStmt{Stmts: []Stmt{outer}},
	}}}
	out := ProgramString(prog, false)
	if !strings.Contains(out, "} else\n") && !strings.Contains(out, "} else") {
		t.Errorf("else-if rendering:\n%s", out)
	}
}
