// Package sem implements the semantic pass of the MiniC front end:
// name resolution, static checks, statement numbering, and per-statement
// def/use extraction.
//
// Statement numbering assigns S1..Sn in source order (globals first, then
// function bodies), matching the notation of the PLDI 2007 paper. Def/use
// sets are expressed over abstract locations: one per scalar symbol and
// one per array object. The whole-array granularity of the *static* view
// is deliberate — it reproduces the conservatism that makes relevant
// slicing introduce false potential dependences (Fig. 1 of the paper).
package sem

import (
	"fmt"

	"eol/internal/lang/ast"
	"eol/internal/lang/token"
)

// SymKind classifies variable symbols.
type SymKind int

// Symbol kinds.
const (
	Global SymKind = iota
	Local
	Param
)

// String names the symbol kind.
func (k SymKind) String() string {
	switch k {
	case Global:
		return "global"
	case Local:
		return "local"
	case Param:
		return "param"
	}
	return "unknown"
}

// Symbol is a resolved variable. Each symbol names one abstract location:
// the scalar cell, or the entire array object.
type Symbol struct {
	ID      int // unique, dense, 0-based
	Name    string
	Kind    SymKind
	IsArray bool
	Size    int64     // element count for arrays
	Func    *FuncInfo // enclosing function; nil for globals
	DeclPos token.Pos

	// Slot is the symbol's dense storage index: among the globals for
	// globals, among the function's params+locals otherwise. The
	// interpreter uses slots for O(1) slice-based cell access.
	Slot int
}

// String renders the symbol for diagnostics.
func (s *Symbol) String() string {
	if s.Func != nil {
		return s.Func.Name + "." + s.Name
	}
	return s.Name
}

// FuncInfo is the semantic record of a function.
type FuncInfo struct {
	Name    string
	Decl    *ast.FuncDecl
	Params  []*Symbol
	Locals  []*Symbol // includes params
	StmtIDs []int     // IDs of all numbered statements in the body, source order
}

// NumSlots returns the function's local slot count (params + locals).
func (f *FuncInfo) NumSlots() int { return len(f.Locals) }

// Builtin names recognized by the checker and the interpreter.
var Builtins = map[string]struct {
	MinArgs, MaxArgs int
}{
	"read":   {0, 0},
	"peek":   {0, 0},
	"eof":    {0, 0},
	"len":    {1, 1},
	"abs":    {1, 1},
	"min":    {2, 2},
	"max":    {2, 2},
	"assert": {1, 1},
}

// Error is a semantic error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a list of semantic errors; it implements error.
type ErrorList []*Error

// Error returns the first error plus a count of the rest.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// Info is the result of the semantic pass.
type Info struct {
	Prog    *ast.Program
	Symbols []*Symbol            // by symbol ID
	Funcs   map[string]*FuncInfo // by name
	Uses    map[*ast.Ident]*Symbol

	Stmts     []ast.Numbered       // by statement ID - 1
	StmtFunc  map[int]*FuncInfo    // statement ID -> enclosing function (nil for globals)
	StmtDefs  map[int][]*Symbol    // statement ID -> locations (possibly) defined directly
	StmtUses  map[int][]*Symbol    // statement ID -> locations used directly
	StmtCalls map[int][]string     // statement ID -> user functions called (incl. in exprs)
	Parent    map[int]ast.Stmt     // statement ID -> syntactic parent statement (block-transparent)
	LoopOf    map[int]ast.Numbered // break/continue stmt ID -> enclosing loop

	// NumGlobalSlots is the number of global storage slots.
	NumGlobalSlots int
}

// Stmt returns the statement with the given 1-based ID, or nil.
func (in *Info) Stmt(id int) ast.Numbered {
	if id < 1 || id > len(in.Stmts) {
		return nil
	}
	return in.Stmts[id-1]
}

// NumStmts returns the number of numbered statements.
func (in *Info) NumStmts() int { return len(in.Stmts) }

// SymbolByName finds a symbol by its qualified name as produced by
// Symbol.String ("x" for globals, "f.x" for locals). It returns nil if no
// such symbol exists. Intended for tests and tooling.
func (in *Info) SymbolByName(name string) *Symbol {
	for _, s := range in.Symbols {
		if s.String() == name {
			return s
		}
	}
	return nil
}

// Analyze runs the semantic pass over prog. It returns the Info and any
// semantic errors; the Info is usable (for diagnostics) even on error.
func Analyze(prog *ast.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			Prog:      prog,
			Funcs:     map[string]*FuncInfo{},
			Uses:      map[*ast.Ident]*Symbol{},
			StmtFunc:  map[int]*FuncInfo{},
			StmtDefs:  map[int][]*Symbol{},
			StmtUses:  map[int][]*Symbol{},
			StmtCalls: map[int][]string{},
			Parent:    map[int]ast.Stmt{},
			LoopOf:    map[int]ast.Numbered{},
		},
	}
	c.run()
	if len(c.errs) > 0 {
		return c.info, c.errs
	}
	return c.info, nil
}

// MustAnalyze panics on semantic error. Intended for tests and embedded
// benchmark programs.
func MustAnalyze(prog *ast.Program) *Info {
	info, err := Analyze(prog)
	if err != nil {
		panic(fmt.Sprintf("sem.MustAnalyze: %v", err))
	}
	return info
}

type scope struct {
	outer *scope
	names map[string]*Symbol
}

func (s *scope) lookup(name string) *Symbol {
	for sc := s; sc != nil; sc = sc.outer {
		if sym, ok := sc.names[name]; ok {
			return sym
		}
	}
	return nil
}

type checker struct {
	info    *Info
	errs    ErrorList
	globals *scope
	curFunc *FuncInfo
	cur     *scope
	loops   []ast.Numbered
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) newSymbol(name string, kind SymKind, pos token.Pos) *Symbol {
	sym := &Symbol{ID: len(c.info.Symbols), Name: name, Kind: kind, Func: c.curFunc, DeclPos: pos}
	c.info.Symbols = append(c.info.Symbols, sym)
	if c.curFunc != nil {
		sym.Slot = len(c.curFunc.Locals)
		c.curFunc.Locals = append(c.curFunc.Locals, sym)
	} else {
		sym.Slot = c.info.NumGlobalSlots
		c.info.NumGlobalSlots++
	}
	return sym
}

func (c *checker) declare(sc *scope, name string, kind SymKind, pos token.Pos) *Symbol {
	if name == "_" {
		// error-recovery placeholder from the parser
		return c.newSymbol(name, kind, pos)
	}
	if _, exists := sc.names[name]; exists {
		c.errorf(pos, "%s redeclared in this scope", name)
	}
	if _, isBuiltin := Builtins[name]; isBuiltin || name == "print" {
		c.errorf(pos, "cannot declare variable %s: name is reserved", name)
	}
	sym := c.newSymbol(name, kind, pos)
	sc.names[name] = sym
	return sym
}

func (c *checker) run() {
	prog := c.info.Prog
	c.globals = &scope{names: map[string]*Symbol{}}
	c.cur = c.globals

	// Pass 1: function signatures (so calls can be checked in any order).
	for _, f := range prog.Funcs {
		name := f.Name.Name
		if _, dup := c.info.Funcs[name]; dup {
			c.errorf(f.Pos(), "function %s redeclared", name)
			continue
		}
		if _, isBuiltin := Builtins[name]; isBuiltin || name == "print" {
			c.errorf(f.Pos(), "cannot declare function %s: name is reserved", name)
		}
		c.info.Funcs[name] = &FuncInfo{Name: name, Decl: f}
	}
	if main, ok := c.info.Funcs["main"]; !ok {
		c.errorf(token.Pos{Line: 1, Col: 1}, "program has no main function")
	} else if len(main.Decl.Params) != 0 {
		c.errorf(main.Decl.Pos(), "main must take no parameters")
	}

	// Pass 2: number statements and resolve, globals first then functions
	// in source order.
	for _, g := range prog.Globals {
		c.numberStmt(g, nil)
		c.checkVarDecl(g, c.globals, Global)
	}
	for _, f := range prog.Funcs {
		fi := c.info.Funcs[f.Name.Name]
		if fi == nil || fi.Decl != f {
			continue // duplicate declaration; skip body
		}
		c.curFunc = fi
		fnScope := &scope{outer: c.globals, names: map[string]*Symbol{}}
		for _, pIdent := range f.Params {
			sym := c.declare(fnScope, pIdent.Name, Param, pIdent.Pos())
			fi.Params = append(fi.Params, sym)
			c.info.Uses[pIdent] = sym
		}
		c.cur = fnScope
		c.checkBlock(f.Body, nil)
		c.curFunc = nil
		c.cur = c.globals
	}
}

// numberStmt assigns the next statement ID to s and records bookkeeping.
func (c *checker) numberStmt(s ast.Numbered, parent ast.Stmt) {
	ast.SetID(s, len(c.info.Stmts)+1)
	c.info.Stmts = append(c.info.Stmts, s)
	id := s.ID()
	c.info.StmtFunc[id] = c.curFunc
	if c.curFunc != nil {
		c.curFunc.StmtIDs = append(c.curFunc.StmtIDs, id)
	}
	if parent != nil {
		c.info.Parent[id] = parent
	}
}

func (c *checker) checkBlock(b *ast.BlockStmt, parent ast.Stmt) {
	inner := &scope{outer: c.cur, names: map[string]*Symbol{}}
	prev := c.cur
	c.cur = inner
	for _, s := range b.Stmts {
		c.checkStmt(s, parent)
	}
	c.cur = prev
}

func (c *checker) checkStmt(s ast.Stmt, parent ast.Stmt) {
	switch n := s.(type) {
	case *ast.BlockStmt:
		c.checkBlock(n, parent)
	case *ast.VarDeclStmt:
		c.numberStmt(n, parent)
		c.checkVarDecl(n, c.cur, Local)
	case *ast.AssignStmt:
		c.numberStmt(n, parent)
		c.checkAssign(n)
	case *ast.IfStmt:
		c.numberStmt(n, parent)
		c.useExpr(n.Cond, n.ID())
		c.checkBlock(n.Then, n)
		if n.Else != nil {
			c.checkStmt(n.Else, n)
		}
	case *ast.WhileStmt:
		c.numberStmt(n, parent)
		c.useExpr(n.Cond, n.ID())
		c.loops = append(c.loops, n)
		c.checkBlock(n.Body, n)
		c.loops = c.loops[:len(c.loops)-1]
	case *ast.ForStmt:
		// Init and Post get their own IDs; the ForStmt's own ID is the
		// predicate. Numbering order: Init, For (cond), body..., Post —
		// but IDs are source-order tokens, so number Init first, then the
		// for itself, then the body, then Post.
		forScope := &scope{outer: c.cur, names: map[string]*Symbol{}}
		prev := c.cur
		c.cur = forScope
		if n.Init != nil {
			c.checkStmt(n.Init, parent)
		}
		c.numberStmt(n, parent)
		if n.Cond != nil {
			c.useExpr(n.Cond, n.ID())
		}
		c.loops = append(c.loops, n)
		c.checkBlock(n.Body, n)
		c.loops = c.loops[:len(c.loops)-1]
		if n.Post != nil {
			c.checkStmt(n.Post, n)
		}
		c.cur = prev
	case *ast.BreakStmt:
		c.numberStmt(n, parent)
		if len(c.loops) == 0 {
			c.errorf(n.Pos(), "break outside loop")
		} else {
			c.info.LoopOf[n.ID()] = c.loops[len(c.loops)-1]
		}
	case *ast.ContinueStmt:
		c.numberStmt(n, parent)
		if len(c.loops) == 0 {
			c.errorf(n.Pos(), "continue outside loop")
		} else {
			c.info.LoopOf[n.ID()] = c.loops[len(c.loops)-1]
		}
	case *ast.ReturnStmt:
		c.numberStmt(n, parent)
		if n.Value != nil {
			c.useExpr(n.Value, n.ID())
		}
	case *ast.ExprStmt:
		c.numberStmt(n, parent)
		if call, ok := n.X.(*ast.CallExpr); ok {
			c.checkCall(call, n.ID())
		} else {
			c.useExpr(n.X, n.ID())
		}
	case *ast.PrintStmt:
		c.numberStmt(n, parent)
		for _, a := range n.Args {
			c.useExpr(a, n.ID())
		}
	default:
		c.errorf(s.Pos(), "unexpected statement %T", s)
	}
}

func (c *checker) checkVarDecl(d *ast.VarDeclStmt, sc *scope, kind SymKind) {
	id := d.ID()
	if d.Size != nil {
		sz, ok := constEval(d.Size)
		if !ok || sz <= 0 {
			c.errorf(d.Size.Pos(), "array size must be a positive constant expression")
			sz = 1
		}
		sym := c.declare(sc, d.Name.Name, kind, d.Pos())
		sym.IsArray = true
		sym.Size = sz
		c.info.Uses[d.Name] = sym
		c.info.StmtDefs[id] = append(c.info.StmtDefs[id], sym)
		return
	}
	if d.Init != nil {
		c.useExpr(d.Init, id) // resolve init before the name is visible
	}
	sym := c.declare(sc, d.Name.Name, kind, d.Pos())
	c.info.Uses[d.Name] = sym
	c.info.StmtDefs[id] = append(c.info.StmtDefs[id], sym)
}

func (c *checker) checkAssign(n *ast.AssignStmt) {
	id := n.ID()
	switch lhs := n.LHS.(type) {
	case *ast.Ident:
		sym := c.resolve(lhs)
		if sym != nil {
			if sym.IsArray {
				c.errorf(lhs.Pos(), "cannot assign to array %s without an index", sym.Name)
			}
			c.info.StmtDefs[id] = append(c.info.StmtDefs[id], sym)
			if n.Op != token.ASSIGN {
				c.addUse(id, sym)
			}
		}
	case *ast.IndexExpr:
		sym := c.resolve(lhs.X)
		if sym != nil {
			if !sym.IsArray {
				c.errorf(lhs.Pos(), "cannot index scalar %s", sym.Name)
			}
			c.info.StmtDefs[id] = append(c.info.StmtDefs[id], sym)
			if n.Op != token.ASSIGN {
				c.addUse(id, sym)
			}
		}
		c.useExpr(lhs.Index, id)
	default:
		c.errorf(n.LHS.Pos(), "invalid assignment target")
	}
	c.useExpr(n.RHS, id)
}

// resolve looks up an identifier, records the resolution, and reports
// undefined names.
func (c *checker) resolve(id *ast.Ident) *Symbol {
	if sym, done := c.info.Uses[id]; done {
		return sym
	}
	sym := c.cur.lookup(id.Name)
	if sym == nil {
		c.errorf(id.Pos(), "undefined: %s", id.Name)
		return nil
	}
	c.info.Uses[id] = sym
	return sym
}

func (c *checker) addUse(stmtID int, sym *Symbol) {
	for _, u := range c.info.StmtUses[stmtID] {
		if u == sym {
			return
		}
	}
	c.info.StmtUses[stmtID] = append(c.info.StmtUses[stmtID], sym)
}

func (c *checker) addCall(stmtID int, fn string) {
	for _, f := range c.info.StmtCalls[stmtID] {
		if f == fn {
			return
		}
	}
	c.info.StmtCalls[stmtID] = append(c.info.StmtCalls[stmtID], fn)
}

// useExpr resolves every identifier in e and accumulates uses for stmtID.
func (c *checker) useExpr(e ast.Expr, stmtID int) {
	switch x := e.(type) {
	case nil, *ast.IntLit, *ast.StringLit:
	case *ast.Ident:
		if sym := c.resolve(x); sym != nil {
			if sym.IsArray {
				c.errorf(x.Pos(), "array %s used without index (only len(%s) takes a bare array)", sym.Name, sym.Name)
			}
			c.addUse(stmtID, sym)
		}
	case *ast.IndexExpr:
		if sym := c.resolve(x.X); sym != nil {
			if !sym.IsArray {
				c.errorf(x.Pos(), "cannot index scalar %s", sym.Name)
			}
			c.addUse(stmtID, sym)
		}
		c.useExpr(x.Index, stmtID)
	case *ast.CallExpr:
		c.checkCall(x, stmtID)
	case *ast.UnaryExpr:
		c.useExpr(x.X, stmtID)
	case *ast.BinaryExpr:
		c.useExpr(x.X, stmtID)
		c.useExpr(x.Y, stmtID)
	default:
		c.errorf(e.Pos(), "unexpected expression %T", e)
	}
}

func (c *checker) checkCall(call *ast.CallExpr, stmtID int) {
	name := call.Fun.Name
	if name == "print" {
		c.errorf(call.Pos(), "print is a statement, not an expression")
		return
	}
	if b, ok := Builtins[name]; ok {
		if len(call.Args) < b.MinArgs || len(call.Args) > b.MaxArgs {
			c.errorf(call.Pos(), "%s expects %d..%d arguments, got %d", name, b.MinArgs, b.MaxArgs, len(call.Args))
		}
		if name == "len" {
			if len(call.Args) == 1 {
				if id, ok := call.Args[0].(*ast.Ident); ok {
					sym := c.resolve(id)
					if sym != nil && !sym.IsArray {
						c.errorf(id.Pos(), "len expects an array, got scalar %s", sym.Name)
					}
					// len is statically constant; no runtime use recorded.
					return
				}
				c.errorf(call.Args[0].Pos(), "len expects an array name")
			}
			return
		}
		for _, a := range call.Args {
			c.useExpr(a, stmtID)
		}
		return
	}
	fi, ok := c.info.Funcs[name]
	if !ok {
		c.errorf(call.Pos(), "undefined function: %s", name)
		// still resolve arguments for further checking
		for _, a := range call.Args {
			c.useExpr(a, stmtID)
		}
		return
	}
	if len(call.Args) != len(fi.Decl.Params) {
		c.errorf(call.Pos(), "%s expects %d arguments, got %d", name, len(fi.Decl.Params), len(call.Args))
	}
	c.addCall(stmtID, name)
	for _, a := range call.Args {
		c.useExpr(a, stmtID)
	}
}

// constEval evaluates a constant integer expression (literals, unary -/~,
// and arithmetic over constants).
func constEval(e ast.Expr) (int64, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value, true
	case *ast.UnaryExpr:
		v, ok := constEval(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.SUB:
			return -v, true
		case token.TILD:
			return ^v, true
		}
	case *ast.BinaryExpr:
		a, ok1 := constEval(x.X)
		b, ok2 := constEval(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case token.ADD:
			return a + b, true
		case token.SUB:
			return a - b, true
		case token.MUL:
			return a * b, true
		case token.QUO:
			if b != 0 {
				return a / b, true
			}
		case token.SHL:
			if b >= 0 && b < 64 {
				return a << uint(b), true
			}
		}
	}
	return 0, false
}
