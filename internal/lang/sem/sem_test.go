package sem

import (
	"strings"
	"testing"

	"eol/internal/lang/ast"
	"eol/internal/lang/parser"
)

func analyze(t *testing.T, src string) *Info {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Analyze(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	return info
}

func wantErr(t *testing.T, src, frag string) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Analyze(prog)
	if err == nil {
		t.Errorf("expected error containing %q, got nil", frag)
		return
	}
	if !strings.Contains(err.Error(), frag) {
		t.Errorf("error %q does not contain %q", err, frag)
	}
}

func TestStatementNumbering(t *testing.T) {
	info := analyze(t, `
var g;
func f(a) {
    return a + g;
}
func main() {
    g = 1;
    f(2);
}`)
	// S1 var g; S2 return; S3 g=1; S4 f(2);
	if info.NumStmts() != 4 {
		t.Fatalf("NumStmts = %d, want 4", info.NumStmts())
	}
	if _, ok := info.Stmt(1).(*ast.VarDeclStmt); !ok {
		t.Errorf("S1 is %T", info.Stmt(1))
	}
	if _, ok := info.Stmt(2).(*ast.ReturnStmt); !ok {
		t.Errorf("S2 is %T", info.Stmt(2))
	}
	if info.Stmt(0) != nil || info.Stmt(5) != nil {
		t.Error("out-of-range Stmt must be nil")
	}
	// IDs are dense and in order.
	for i, s := range info.Stmts {
		if s.ID() != i+1 {
			t.Errorf("Stmts[%d].ID() = %d", i, s.ID())
		}
	}
}

func TestForNumberingOrder(t *testing.T) {
	info := analyze(t, `
func main() {
    for (var i = 0; i < 3; i++) {
        print(i);
    }
}`)
	// Numbering: S1 init, S2 for-cond, S3 print, S4 post.
	if _, ok := info.Stmt(1).(*ast.VarDeclStmt); !ok {
		t.Errorf("S1 = %T, want init decl", info.Stmt(1))
	}
	if _, ok := info.Stmt(2).(*ast.ForStmt); !ok {
		t.Errorf("S2 = %T, want the for", info.Stmt(2))
	}
	if _, ok := info.Stmt(3).(*ast.PrintStmt); !ok {
		t.Errorf("S3 = %T, want body print", info.Stmt(3))
	}
	if _, ok := info.Stmt(4).(*ast.AssignStmt); !ok {
		t.Errorf("S4 = %T, want post", info.Stmt(4))
	}
}

func TestSymbolsAndScopes(t *testing.T) {
	info := analyze(t, `
var g;
var arr[4];
func f(p) {
    var local = p;
    return local;
}
func main() {
    var x = 1;
    {
        var y = x;
        x = y;
    }
    g = x;
}`)
	gSym := info.SymbolByName("g")
	if gSym == nil || gSym.Kind != Global || gSym.IsArray {
		t.Fatalf("g: %+v", gSym)
	}
	arrSym := info.SymbolByName("arr")
	if arrSym == nil || !arrSym.IsArray || arrSym.Size != 4 {
		t.Fatalf("arr: %+v", arrSym)
	}
	if p := info.SymbolByName("f.p"); p == nil || p.Kind != Param {
		t.Fatalf("f.p: %+v", p)
	}
	if l := info.SymbolByName("f.local"); l == nil || l.Kind != Local {
		t.Fatalf("f.local: %+v", l)
	}
	if info.SymbolByName("main.y") == nil {
		t.Error("block-scoped y missing")
	}
	if info.SymbolByName("nope") != nil {
		t.Error("unknown symbol lookup should be nil")
	}
}

func TestShadowingAllowedAcrossScopes(t *testing.T) {
	info := analyze(t, `
var x;
func main() {
    var x = 1;
    if (x) {
        var x = 2;
        print(x);
    }
    print(x);
}`)
	count := 0
	for _, s := range info.Symbols {
		if s.Name == "x" {
			count++
		}
	}
	if count != 3 {
		t.Errorf("three distinct x symbols expected, got %d", count)
	}
}

func TestDefUseExtraction(t *testing.T) {
	info := analyze(t, `
var a[4];
var g;
func main() {
    var i = 1;
    a[i] = g + i;
    g += a[0];
}`)
	aSym := info.SymbolByName("a")
	gSym := info.SymbolByName("g")
	iSym := info.SymbolByName("main.i")

	// "a[i] = g + i": defines a; uses g and i (not a: plain store).
	var store int
	for _, s := range info.Stmts {
		if strings.Contains(ast.StmtString(s), "a[i] =") {
			store = s.ID()
		}
	}
	defs := info.StmtDefs[store]
	if len(defs) != 1 || defs[0] != aSym {
		t.Errorf("store defs = %v", defs)
	}
	uses := map[*Symbol]bool{}
	for _, u := range info.StmtUses[store] {
		uses[u] = true
	}
	if !uses[gSym] || !uses[iSym] || uses[aSym] {
		t.Errorf("store uses = %v", info.StmtUses[store])
	}

	// "g += a[0]": compound assign both defines and uses g, uses a.
	var acc int
	for _, s := range info.Stmts {
		if strings.Contains(ast.StmtString(s), "g +=") {
			acc = s.ID()
		}
	}
	uses = map[*Symbol]bool{}
	for _, u := range info.StmtUses[acc] {
		uses[u] = true
	}
	if !uses[gSym] || !uses[aSym] {
		t.Errorf("compound uses = %v", info.StmtUses[acc])
	}
}

func TestCallTracking(t *testing.T) {
	info := analyze(t, `
func f(a) { return a; }
func g(a, b) { return a + b; }
func main() {
    var x = f(1) + g(2, 3);
    print(f(x));
}`)
	var declID, printID int
	for _, s := range info.Stmts {
		text := ast.StmtString(s)
		if strings.HasPrefix(text, "var x") {
			declID = s.ID()
		}
		if strings.HasPrefix(text, "print") {
			printID = s.ID()
		}
	}
	calls := info.StmtCalls[declID]
	if len(calls) != 2 {
		t.Errorf("decl calls = %v, want f and g", calls)
	}
	if len(info.StmtCalls[printID]) != 1 || info.StmtCalls[printID][0] != "f" {
		t.Errorf("print calls = %v", info.StmtCalls[printID])
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{`func main() { x = 1; }`, "undefined: x"},
		{`func main() { var x; var x; }`, "redeclared"},
		{`func f() {} func f() {} func main() {}`, "redeclared"},
		{`func main() { foo(); }`, "undefined function"},
		{`func f(a) { return a; } func main() { f(); }`, "expects 1 arguments"},
		{`func main() { read(1); }`, "arguments"},
		{`var x; func main() { x[0] = 1; }`, "cannot index scalar"},
		{`var a[4]; func main() { a = 1; }`, "without an index"},
		{`var a[4]; func main() { var x = a; }`, "used without index"},
		{`func main() { break; }`, "break outside loop"},
		{`func main() { continue; }`, "continue outside loop"},
		{`func f() { return 0; }`, "no main function"},
		{`func main(a) { }`, "main must take no parameters"},
		{`func main() { var a[0]; }`, "positive constant"},
		{`func main() { var a[x]; }`, "positive constant"},
		{`func main() { var read = 1; }`, "reserved"},
		{`func print() {} func main() {}`, "reserved"},
		{`func main() { var x = len(3); }`, "len expects an array"},
		{`var s; func main() { var x = len(s); }`, "len expects an array, got scalar"},
	}
	for _, c := range cases {
		wantErr(t, c.src, c.frag)
	}
}

func TestConstArraySizes(t *testing.T) {
	info := analyze(t, `
var a[2 + 3];
var b[1 << 4];
var c[20 / 2];
func main() { print(len(a), len(b), len(c)); }`)
	if s := info.SymbolByName("a"); s.Size != 5 {
		t.Errorf("a size = %d", s.Size)
	}
	if s := info.SymbolByName("b"); s.Size != 16 {
		t.Errorf("b size = %d", s.Size)
	}
	if s := info.SymbolByName("c"); s.Size != 10 {
		t.Errorf("c size = %d", s.Size)
	}
}

func TestLoopOfTracking(t *testing.T) {
	info := analyze(t, `
func main() {
    while (1) {
        if (read()) { break; }
    }
    for (var i = 0; i < 2; i++) {
        continue;
    }
}`)
	var brk, cont int
	for _, s := range info.Stmts {
		switch s.(type) {
		case *ast.BreakStmt:
			brk = s.ID()
		case *ast.ContinueStmt:
			cont = s.ID()
		}
	}
	if _, ok := info.LoopOf[brk].(*ast.WhileStmt); !ok {
		t.Errorf("break's loop = %T", info.LoopOf[brk])
	}
	if _, ok := info.LoopOf[cont].(*ast.ForStmt); !ok {
		t.Errorf("continue's loop = %T", info.LoopOf[cont])
	}
}

func TestSymbolString(t *testing.T) {
	info := analyze(t, `var g; func f(x) { return x; } func main() { g = 1; }`)
	if got := info.SymbolByName("g").String(); got != "g" {
		t.Errorf("global renders %q", got)
	}
	if got := info.SymbolByName("f.x").String(); got != "f.x" {
		t.Errorf("param renders %q", got)
	}
	if Global.String() != "global" || Local.String() != "local" || Param.String() != "param" {
		t.Error("SymKind strings broken")
	}
}

// TestSlotAssignment: globals and per-function locals get dense slots.
func TestSlotAssignment(t *testing.T) {
	info := analyze(t, `
var g1;
var g2;
var arr[4];
func f(a, b) {
    var x = a;
    return x + b;
}
func main() {
    var y = 0;
    g1 = y;
}`)
	// Globals: dense 0..2 in declaration order.
	wantGlobal := map[string]int{"g1": 0, "g2": 1, "arr": 2}
	for name, slot := range wantGlobal {
		if s := info.SymbolByName(name); s.Slot != slot {
			t.Errorf("%s slot = %d, want %d", name, s.Slot, slot)
		}
	}
	if info.NumGlobalSlots != 3 {
		t.Errorf("NumGlobalSlots = %d, want 3", info.NumGlobalSlots)
	}
	// f's params and locals: a=0, b=1, x=2.
	f := info.Funcs["f"]
	if f.NumSlots() != 3 {
		t.Errorf("f slots = %d, want 3", f.NumSlots())
	}
	for i, name := range []string{"a", "b", "x"} {
		if s := info.SymbolByName("f." + name); s.Slot != i {
			t.Errorf("f.%s slot = %d, want %d", name, s.Slot, i)
		}
	}
	// main's y restarts at 0: slots are per function.
	if s := info.SymbolByName("main.y"); s.Slot != 0 {
		t.Errorf("main.y slot = %d, want 0", s.Slot)
	}
}
