// Package token defines the lexical tokens of the MiniC language and
// source positions used throughout the front end.
//
// MiniC is the deterministic, C-like language that serves as the execution
// substrate for the execution-omission-error localization technique of
// Zhang et al. (PLDI 2007). See DESIGN.md for the language summary.
package token

import "fmt"

// Kind enumerates the lexical token kinds of MiniC.
type Kind int

// Token kinds. The ordering groups literals, keywords and operators so
// that predicates like IsKeyword can use range checks.
const (
	ILLEGAL Kind = iota
	EOF
	COMMENT

	literalBeg
	IDENT  // foo
	INT    // 12345
	STRING // "abc"
	literalEnd

	keywordBeg
	VAR      // var
	FUNC     // func
	IF       // if
	ELSE     // else
	WHILE    // while
	FOR      // for
	BREAK    // break
	CONTINUE // continue
	RETURN   // return
	keywordEnd

	operatorBeg
	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	AND // &
	OR  // |
	XOR // ^
	SHL // <<
	SHR // >>

	LAND // &&
	LOR  // ||
	NOT  // !
	TILD // ~

	EQL // ==
	NEQ // !=
	LSS // <
	LEQ // <=
	GTR // >
	GEQ // >=

	ASSIGN     // =
	ADD_ASSIGN // +=
	SUB_ASSIGN // -=
	MUL_ASSIGN // *=
	QUO_ASSIGN // /=
	REM_ASSIGN // %=
	AND_ASSIGN // &=
	OR_ASSIGN  // |=
	XOR_ASSIGN // ^=
	SHL_ASSIGN // <<=
	SHR_ASSIGN // >>=
	INC        // ++
	DEC        // --

	LPAREN // (
	RPAREN // )
	LBRACK // [
	RBRACK // ]
	LBRACE // {
	RBRACE // }
	COMMA  // ,
	SEMI   // ;
	operatorEnd
)

var kindStrings = map[Kind]string{
	ILLEGAL: "ILLEGAL",
	EOF:     "EOF",
	COMMENT: "COMMENT",

	IDENT:  "IDENT",
	INT:    "INT",
	STRING: "STRING",

	VAR:      "var",
	FUNC:     "func",
	IF:       "if",
	ELSE:     "else",
	WHILE:    "while",
	FOR:      "for",
	BREAK:    "break",
	CONTINUE: "continue",
	RETURN:   "return",

	ADD: "+",
	SUB: "-",
	MUL: "*",
	QUO: "/",
	REM: "%",

	AND: "&",
	OR:  "|",
	XOR: "^",
	SHL: "<<",
	SHR: ">>",

	LAND: "&&",
	LOR:  "||",
	NOT:  "!",
	TILD: "~",

	EQL: "==",
	NEQ: "!=",
	LSS: "<",
	LEQ: "<=",
	GTR: ">",
	GEQ: ">=",

	ASSIGN:     "=",
	ADD_ASSIGN: "+=",
	SUB_ASSIGN: "-=",
	MUL_ASSIGN: "*=",
	QUO_ASSIGN: "/=",
	REM_ASSIGN: "%=",
	AND_ASSIGN: "&=",
	OR_ASSIGN:  "|=",
	XOR_ASSIGN: "^=",
	SHL_ASSIGN: "<<=",
	SHR_ASSIGN: ">>=",
	INC:        "++",
	DEC:        "--",

	LPAREN: "(",
	RPAREN: ")",
	LBRACK: "[",
	RBRACK: "]",
	LBRACE: "{",
	RBRACE: "}",
	COMMA:  ",",
	SEMI:   ";",
}

// String returns the textual form of the token kind: the literal spelling
// for keywords and operators, and the kind name for the rest.
func (k Kind) String() string {
	if s, ok := kindStrings[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsLiteral reports whether k is an identifier or a basic literal.
func (k Kind) IsLiteral() bool { return literalBeg < k && k < literalEnd }

// IsKeyword reports whether k is a keyword.
func (k Kind) IsKeyword() bool { return keywordBeg < k && k < keywordEnd }

// IsOperator reports whether k is an operator or delimiter.
func (k Kind) IsOperator() bool { return operatorBeg < k && k < operatorEnd }

var keywords = map[string]Kind{
	"var":      VAR,
	"func":     FUNC,
	"if":       IF,
	"else":     ELSE,
	"while":    WHILE,
	"for":      FOR,
	"break":    BREAK,
	"continue": CONTINUE,
	"return":   RETURN,
}

// Lookup maps an identifier to its keyword kind, or IDENT if it is not a
// keyword.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Pos is a source position: 1-based line and column. The zero Pos is
// "no position".
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether the position carries real location information.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders the position as "line:col".
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Before reports whether p occurs strictly before q in the source text.
func (p Pos) Before(q Pos) bool {
	return p.Line < q.Line || (p.Line == q.Line && p.Col < q.Col)
}

// Token is a lexical token: its kind, literal text and position.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT, INT, STRING, COMMENT, ILLEGAL
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	if t.Kind.IsLiteral() || t.Kind == ILLEGAL || t.Kind == COMMENT {
		return fmt.Sprintf("%s(%q)", kindStrings[t.Kind], t.Lit)
	}
	return t.Kind.String()
}

// Precedence returns the binary-operator precedence of k (higher binds
// tighter), or 0 if k is not a binary operator. The levels follow C:
//
//	1: ||
//	2: &&
//	3: == !=
//	4: < <= > >=
//	5: | ^
//	6: &
//	7: << >>
//	8: + -
//	9: * / %
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case EQL, NEQ:
		return 3
	case LSS, LEQ, GTR, GEQ:
		return 4
	case OR, XOR:
		return 5
	case AND:
		return 6
	case SHL, SHR:
		return 7
	case ADD, SUB:
		return 8
	case MUL, QUO, REM:
		return 9
	}
	return 0
}

// AssignOp maps a compound-assignment token to the underlying binary
// operator (ADD_ASSIGN -> ADD). It returns ILLEGAL for plain ASSIGN and
// for non-assignment kinds.
func (k Kind) AssignOp() Kind {
	switch k {
	case ADD_ASSIGN:
		return ADD
	case SUB_ASSIGN:
		return SUB
	case MUL_ASSIGN:
		return MUL
	case QUO_ASSIGN:
		return QUO
	case REM_ASSIGN:
		return REM
	case AND_ASSIGN:
		return AND
	case OR_ASSIGN:
		return OR
	case XOR_ASSIGN:
		return XOR
	case SHL_ASSIGN:
		return SHL
	case SHR_ASSIGN:
		return SHR
	}
	return ILLEGAL
}

// IsAssign reports whether k is an assignment operator (= or compound).
func (k Kind) IsAssign() bool {
	return k == ASSIGN || k.AssignOp() != ILLEGAL
}
