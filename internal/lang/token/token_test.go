package token

import "testing"

func TestKindClassification(t *testing.T) {
	cases := []struct {
		k                          Kind
		literal, keyword, operator bool
	}{
		{IDENT, true, false, false},
		{INT, true, false, false},
		{STRING, true, false, false},
		{VAR, false, true, false},
		{WHILE, false, true, false},
		{RETURN, false, true, false},
		{ADD, false, false, true},
		{SHR_ASSIGN, false, false, true},
		{SEMI, false, false, true},
		{EOF, false, false, false},
		{ILLEGAL, false, false, false},
	}
	for _, c := range cases {
		if c.k.IsLiteral() != c.literal {
			t.Errorf("%v.IsLiteral() = %v", c.k, c.k.IsLiteral())
		}
		if c.k.IsKeyword() != c.keyword {
			t.Errorf("%v.IsKeyword() = %v", c.k, c.k.IsKeyword())
		}
		if c.k.IsOperator() != c.operator {
			t.Errorf("%v.IsOperator() = %v", c.k, c.k.IsOperator())
		}
	}
}

func TestLookup(t *testing.T) {
	if Lookup("while") != WHILE {
		t.Error("while should be a keyword")
	}
	if Lookup("whilex") != IDENT {
		t.Error("whilex should be an identifier")
	}
	if Lookup("") != IDENT {
		t.Error("empty string should be an identifier")
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// levels must strictly increase along this chain
	chain := []Kind{LOR, LAND, EQL, LSS, OR, AND, SHL, ADD, MUL}
	for i := 1; i < len(chain); i++ {
		if chain[i].Precedence() <= chain[i-1].Precedence() {
			t.Errorf("%v (%d) should bind tighter than %v (%d)",
				chain[i], chain[i].Precedence(), chain[i-1], chain[i-1].Precedence())
		}
	}
	if SEMI.Precedence() != 0 || IDENT.Precedence() != 0 {
		t.Error("non-binary tokens must have precedence 0")
	}
	// XOR and OR share a level; NEQ and EQL share a level.
	if XOR.Precedence() != OR.Precedence() || NEQ.Precedence() != EQL.Precedence() {
		t.Error("level sharing broken")
	}
}

func TestAssignOp(t *testing.T) {
	cases := map[Kind]Kind{
		ADD_ASSIGN: ADD, SUB_ASSIGN: SUB, MUL_ASSIGN: MUL, QUO_ASSIGN: QUO,
		REM_ASSIGN: REM, AND_ASSIGN: AND, OR_ASSIGN: OR, XOR_ASSIGN: XOR,
		SHL_ASSIGN: SHL, SHR_ASSIGN: SHR,
	}
	for compound, base := range cases {
		if compound.AssignOp() != base {
			t.Errorf("%v.AssignOp() = %v, want %v", compound, compound.AssignOp(), base)
		}
		if !compound.IsAssign() {
			t.Errorf("%v should be an assignment", compound)
		}
	}
	if ASSIGN.AssignOp() != ILLEGAL {
		t.Error("plain = has no base operator")
	}
	if !ASSIGN.IsAssign() {
		t.Error("plain = is an assignment")
	}
	if ADD.IsAssign() {
		t.Error("+ is not an assignment")
	}
}

func TestPos(t *testing.T) {
	var zero Pos
	if zero.IsValid() {
		t.Error("zero Pos must be invalid")
	}
	if zero.String() != "-" {
		t.Errorf("zero Pos renders %q", zero.String())
	}
	p := Pos{Line: 3, Col: 7}
	if !p.IsValid() || p.String() != "3:7" {
		t.Errorf("Pos render: %q", p.String())
	}
	q := Pos{Line: 3, Col: 9}
	if !p.Before(q) || q.Before(p) {
		t.Error("Before on same line broken")
	}
	r := Pos{Line: 4, Col: 1}
	if !p.Before(r) || r.Before(p) {
		t.Error("Before across lines broken")
	}
	if p.Before(p) {
		t.Error("Before must be irreflexive")
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: IDENT, Lit: "foo"}
	if tok.String() != `IDENT("foo")` {
		t.Errorf("token string: %q", tok.String())
	}
	tok = Token{Kind: WHILE}
	if tok.String() != "while" {
		t.Errorf("keyword string: %q", tok.String())
	}
	if SHL.String() != "<<" {
		t.Errorf("operator string: %q", SHL.String())
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kinds must still render")
	}
}
