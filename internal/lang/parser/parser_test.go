package parser

import (
	"strings"
	"testing"
	"testing/quick"

	"eol/internal/lang/ast"
	"eol/internal/lang/token"
)

const sample = `
var flags;
var outbuf[64];

func main() {
    var saveOrigName = read();
    flags = 0;
    if (saveOrigName) {
        flags = flags | 8;
    }
    outbuf[0] = flags;
    var i = 0;
    while (i < 1) {
        print(outbuf[i]);
        i = i + 1;
    }
}
`

func TestParseSample(t *testing.T) {
	prog, err := Parse(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Globals) != 2 {
		t.Errorf("globals = %d, want 2", len(prog.Globals))
	}
	if len(prog.Funcs) != 1 || prog.Funcs[0].Name.Name != "main" {
		t.Fatalf("funcs = %v", prog.Funcs)
	}
	body := prog.Funcs[0].Body
	if len(body.Stmts) != 6 {
		t.Errorf("main has %d stmts, want 6", len(body.Stmts))
	}
	if _, ok := body.Stmts[2].(*ast.IfStmt); !ok {
		t.Errorf("stmt 2 is %T, want *ast.IfStmt", body.Stmts[2])
	}
	if w, ok := body.Stmts[5].(*ast.WhileStmt); !ok {
		t.Errorf("stmt 5 is %T, want *ast.WhileStmt", body.Stmts[5])
	} else if len(w.Body.Stmts) != 2 {
		t.Errorf("while body has %d stmts, want 2", len(w.Body.Stmts))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"func main() { x = ; }", "expected expression"},
		{"func main() { if x { } }", `expected "("`},
		{"func main() { 1 + 2; }", "expected statement"},
		{"func main() { a[1; }", `expected "]"`},
		{"var x = 1", `expected ";"`},
		{"func main() { print(1) }", `expected ";"`},
		{"xyz", "expected declaration"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q, got nil", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q): error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestPrecedence(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"1 + 2 * 3", "1 + 2 * 3"},
		{"(1 + 2) * 3", "(1 + 2) * 3"},
		{"a && b || c", "a && b || c"},
		{"a || b && c", "a || b && c"},
		{"1 < 2 == 3 < 4", "1 < 2 == 3 < 4"},
		{"-a + b", "-a + b"},
		{"a << 2 + b", "a << 2 + b"}, // + binds tighter than << (C rules)
		{"x % 2 == 0", "x % 2 == 0"},
	}
	for _, c := range cases {
		src := "var g; func main() { g = " + c.src + "; }"
		prog, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		as := prog.Funcs[0].Body.Stmts[0].(*ast.AssignStmt)
		got := ast.ExprString(as.RHS)
		if got != c.want {
			t.Errorf("ExprString(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestForAndIncDec(t *testing.T) {
	src := `
func main() {
    var s = 0;
    for (var i = 0; i < 10; i++) {
        s += i;
        if (s > 20) { break; }
    }
    print(s);
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	f := prog.Funcs[0].Body.Stmts[1].(*ast.ForStmt)
	if f.Init == nil || f.Cond == nil || f.Post == nil {
		t.Fatalf("for clause missing parts: %+v", f)
	}
	post := f.Post.(*ast.AssignStmt)
	if post.Op != token.ADD_ASSIGN {
		t.Errorf("i++ parsed as op %v, want +=", post.Op)
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
func main() {
    var x = read();
    if (x == 1) { print(1); }
    else if (x == 2) { print(2); }
    else { print(3); }
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ifs := prog.Funcs[0].Body.Stmts[1].(*ast.IfStmt)
	elif, ok := ifs.Else.(*ast.IfStmt)
	if !ok {
		t.Fatalf("else branch is %T, want *ast.IfStmt", ifs.Else)
	}
	if _, ok := elif.Else.(*ast.BlockStmt); !ok {
		t.Fatalf("final else is %T, want *ast.BlockStmt", elif.Else)
	}
}

// TestPrintRoundTrip is a property test: pretty-printing a parsed program
// and re-parsing it yields the same pretty-printed form (idempotence of
// print∘parse).
func TestPrintRoundTrip(t *testing.T) {
	srcs := []string{
		sample,
		`func f(a, b) { return a * b + 1; } func main() { print(f(2, 3)); }`,
		`var a[8]; func main() { var i; i = 0; while (i < len(a)) { a[i] = i ^ 3; i++; } print(a[7], "done"); }`,
		`func main() { for (var i = 0; i < 3; i++) { if (i % 2 == 0) { continue; } print(i); } }`,
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		out1 := ast.ProgramString(p1, false)
		p2, err := Parse(out1)
		if err != nil {
			t.Fatalf("reparse of printed program failed: %v\n%s", err, out1)
		}
		out2 := ast.ProgramString(p2, false)
		if out1 != out2 {
			t.Errorf("print/parse not idempotent:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
		}
	}
}

// TestLexerNeverPanics feeds random byte strings to the full front end;
// the parser must return (possibly with errors) but never panic.
func TestLexerNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on input %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
