package parser

import (
	"strings"
	"testing"

	"eol/internal/lang/ast"
)

// FuzzParse feeds arbitrary text through the full front end. The parser
// must never panic and must either return errors or an AST whose
// pretty-printed form re-parses (print∘parse idempotence on accepted
// inputs). `go test` runs the seed corpus; `go test -fuzz=FuzzParse`
// explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"func main() {}",
		"var a[8]; func main() { a[0] = 1; print(a[0]); }",
		`func f(x) { return x * 2; } func main() { print(f(21)); }`,
		`func main() { for (var i = 0; i < 3; i++) { if (i % 2 == 0) { continue; } print(i); } }`,
		`func main() { while (!eof()) { var v = read(); print(v, " "); } }`,
		"func main() { var s = \"str\\n\"; }",
		"func main() { var x = 0x1F << 2; }",
		"func main() { if (a && b || !c) { } else if (d) { } else { } }",
		"var x func main( } {{{ ;;; )",
		"func main() { x = ; }",
		"/* unterminated",
		"func main() { print(1, \"a\", 2); }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejected input: fine
		}
		// Accepted input: pretty-print must re-parse to the same form.
		out1 := ast.ProgramString(prog, false)
		prog2, err := Parse(out1)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\n--- source ---\n%s\n--- printed ---\n%s",
				err, src, out1)
		}
		out2 := ast.ProgramString(prog2, false)
		if out1 != out2 {
			t.Fatalf("print/parse not idempotent:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
		}
		if strings.Count(out1, "func") != strings.Count(out2, "func") {
			t.Fatal("function count changed across round trip")
		}
	})
}
