// Package parser implements the recursive-descent parser for MiniC.
//
// The grammar is a small structured subset of C:
//
//	program   = { funcDecl | varDecl } .
//	funcDecl  = "func" IDENT "(" [ IDENT { "," IDENT } ] ")" block .
//	varDecl   = "var" IDENT ( "[" expr "]" | [ "=" expr ] ) ";" .
//	block     = "{" { stmt } "}" .
//	stmt      = varDecl | ifStmt | whileStmt | forStmt | "break" ";"
//	          | "continue" ";" | "return" [ expr ] ";" | block
//	          | simpleStmt ";" .
//	simpleStmt= assignment | incdec | callExpr .
//	ifStmt    = "if" "(" expr ")" block [ "else" ( block | ifStmt ) ] .
//	whileStmt = "while" "(" expr ")" block .
//	forStmt   = "for" "(" [simpleOrVar] ";" [expr] ";" [simpleStmt] ")" block .
//
// print(...) parses as a dedicated PrintStmt because printed values are
// output events in the dynamic analyses.
package parser

import (
	"fmt"
	"strconv"

	"eol/internal/lang/ast"
	"eol/internal/lang/lexer"
	"eol/internal/lang/token"
)

// Error is a syntax error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a list of syntax errors; it implements error.
type ErrorList []*Error

// Error returns the first error plus a count of the rest.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// Parse parses a complete MiniC program from src. On syntax errors it
// returns a partial AST together with an ErrorList.
func Parse(src string) (*ast.Program, error) {
	toks, lexErrs := lexer.ScanAll(src)
	p := &parser{toks: toks}
	for _, le := range lexErrs {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	prog := p.parseProgram()
	if len(p.errs) > 0 {
		return prog, p.errs
	}
	return prog, nil
}

// MustParse parses src and panics on error. Intended for tests and for
// embedded benchmark programs that are known to be valid.
func MustParse(src string) *ast.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("parser.MustParse: %v", err))
	}
	return prog
}

type parser struct {
	toks []token.Token
	pos  int
	errs ErrorList
}

const maxErrors = 20

func (p *parser) cur() token.Token { return p.toks[p.pos] }
func (p *parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	if len(p.errs) < maxErrors {
		p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.cur().Pos, "expected %q, found %s", k.String(), p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

// sync skips tokens until a statement boundary, for error recovery.
func (p *parser) sync() {
	for !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.SEMI:
			p.next()
			return
		case token.RBRACE, token.VAR, token.FUNC, token.IF, token.WHILE,
			token.FOR, token.BREAK, token.CONTINUE, token.RETURN:
			return
		}
		p.next()
	}
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.FUNC:
			if f := p.parseFuncDecl(); f != nil {
				prog.Funcs = append(prog.Funcs, f)
			}
		case token.VAR:
			if d := p.parseVarDecl(); d != nil {
				prog.Globals = append(prog.Globals, d)
			}
		default:
			p.errorf(p.cur().Pos, "expected declaration, found %s", p.cur())
			before := p.pos
			p.sync()
			if p.pos == before {
				// sync stopped without progress (e.g. a stray '}' at top
				// level); consume the token or error recovery loops.
				p.next()
			}
		}
	}
	return prog
}

func (p *parser) parseFuncDecl() *ast.FuncDecl {
	fpos := p.expect(token.FUNC).Pos
	name := p.parseIdent()
	p.expect(token.LPAREN)
	var params []*ast.Ident
	if !p.at(token.RPAREN) {
		params = append(params, p.parseIdent())
		for p.accept(token.COMMA) {
			params = append(params, p.parseIdent())
		}
	}
	p.expect(token.RPAREN)
	body := p.parseBlock()
	return &ast.FuncDecl{FuncPos: fpos, Name: name, Params: params, Body: body}
}

func (p *parser) parseIdent() *ast.Ident {
	t := p.expect(token.IDENT)
	name := t.Lit
	if name == "" {
		name = "_"
	}
	return &ast.Ident{NamePos: t.Pos, Name: name}
}

func (p *parser) parseVarDecl() *ast.VarDeclStmt {
	vpos := p.expect(token.VAR).Pos
	name := p.parseIdent()
	d := &ast.VarDeclStmt{VarPos: vpos, Name: name}
	if p.accept(token.LBRACK) {
		d.Size = p.parseExpr()
		p.expect(token.RBRACK)
	} else if p.accept(token.ASSIGN) {
		d.Init = p.parseExpr()
	}
	p.expect(token.SEMI)
	return d
}

func (p *parser) parseBlock() *ast.BlockStmt {
	lb := p.expect(token.LBRACE).Pos
	b := &ast.BlockStmt{Lbrace: lb}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		before := p.pos
		if s := p.parseStmt(); s != nil {
			b.Stmts = append(b.Stmts, s)
		}
		if p.pos == before {
			// No progress (e.g. a stray "func" inside a block stops
			// sync immediately): consume one token to guarantee
			// termination of error recovery.
			p.next()
		}
	}
	p.expect(token.RBRACE)
	return b
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.cur().Kind {
	case token.VAR:
		return p.parseVarDecl()
	case token.IF:
		return p.parseIf()
	case token.WHILE:
		return p.parseWhile()
	case token.FOR:
		return p.parseFor()
	case token.BREAK:
		t := p.next()
		p.expect(token.SEMI)
		return &ast.BreakStmt{BreakPos: t.Pos}
	case token.CONTINUE:
		t := p.next()
		p.expect(token.SEMI)
		return &ast.ContinueStmt{ContinuePos: t.Pos}
	case token.RETURN:
		t := p.next()
		r := &ast.ReturnStmt{ReturnPos: t.Pos}
		if !p.at(token.SEMI) {
			r.Value = p.parseExpr()
		}
		p.expect(token.SEMI)
		return r
	case token.LBRACE:
		return p.parseBlock()
	case token.SEMI:
		p.next() // empty statement: ignore
		return nil
	case token.IDENT:
		s := p.parseSimpleStmt()
		p.expect(token.SEMI)
		return s
	}
	p.errorf(p.cur().Pos, "expected statement, found %s", p.cur())
	p.sync()
	return nil
}

// parseSimpleStmt parses an assignment, ++/--, a print statement, or a
// bare call. The trailing semicolon is left to the caller (for-headers
// have none).
func (p *parser) parseSimpleStmt() ast.Stmt {
	if p.cur().Kind == token.IDENT && p.cur().Lit == "print" && p.peek().Kind == token.LPAREN {
		return p.parsePrint()
	}
	lhsPos := p.cur().Pos
	e := p.parseExpr()
	switch {
	case p.cur().Kind.IsAssign():
		op := p.next().Kind
		if !isLvalue(e) {
			p.errorf(lhsPos, "cannot assign to %s", ast.ExprString(e))
		}
		rhs := p.parseExpr()
		return &ast.AssignStmt{LHS: e, Op: op, RHS: rhs}
	case p.at(token.INC) || p.at(token.DEC):
		opTok := p.next()
		if !isLvalue(e) {
			p.errorf(lhsPos, "cannot assign to %s", ast.ExprString(e))
		}
		op := token.ADD_ASSIGN
		if opTok.Kind == token.DEC {
			op = token.SUB_ASSIGN
		}
		return &ast.AssignStmt{LHS: e, Op: op, RHS: &ast.IntLit{ValuePos: opTok.Pos, Value: 1}}
	}
	if _, ok := e.(*ast.CallExpr); !ok {
		p.errorf(lhsPos, "expression %s is not a statement", ast.ExprString(e))
	}
	return &ast.ExprStmt{X: e}
}

func isLvalue(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.IndexExpr:
		return true
	}
	return false
}

func (p *parser) parsePrint() *ast.PrintStmt {
	t := p.next() // 'print'
	p.expect(token.LPAREN)
	s := &ast.PrintStmt{PrintPos: t.Pos}
	if !p.at(token.RPAREN) {
		s.Args = append(s.Args, p.parseExpr())
		for p.accept(token.COMMA) {
			s.Args = append(s.Args, p.parseExpr())
		}
	}
	p.expect(token.RPAREN)
	return s
}

func (p *parser) parseIf() *ast.IfStmt {
	t := p.expect(token.IF)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseBlock()
	s := &ast.IfStmt{IfPos: t.Pos, Cond: cond, Then: then}
	if p.accept(token.ELSE) {
		if p.at(token.IF) {
			s.Else = p.parseIf()
		} else {
			s.Else = p.parseBlock()
		}
	}
	return s
}

func (p *parser) parseWhile() *ast.WhileStmt {
	t := p.expect(token.WHILE)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	body := p.parseBlock()
	return &ast.WhileStmt{WhilePos: t.Pos, Cond: cond, Body: body}
}

func (p *parser) parseFor() *ast.ForStmt {
	t := p.expect(token.FOR)
	p.expect(token.LPAREN)
	s := &ast.ForStmt{ForPos: t.Pos}
	if !p.at(token.SEMI) {
		if p.at(token.VAR) {
			vpos := p.next().Pos
			name := p.parseIdent()
			d := &ast.VarDeclStmt{VarPos: vpos, Name: name}
			if p.accept(token.ASSIGN) {
				d.Init = p.parseExpr()
			}
			s.Init = d
		} else {
			s.Init = p.parseSimpleStmt()
		}
	}
	p.expect(token.SEMI)
	if !p.at(token.SEMI) {
		s.Cond = p.parseExpr()
	}
	p.expect(token.SEMI)
	if !p.at(token.RPAREN) {
		s.Post = p.parseSimpleStmt()
	}
	p.expect(token.RPAREN)
	s.Body = p.parseBlock()
	return s
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		op := p.cur().Kind
		prec := op.Precedence()
		if prec < minPrec || prec == 0 {
			return x
		}
		p.next()
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{X: x, Op: op, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.cur().Kind {
	case token.SUB, token.NOT, token.TILD, token.ADD:
		t := p.next()
		x := p.parseUnary()
		if t.Kind == token.ADD {
			return x
		}
		return &ast.UnaryExpr{OpPos: t.Pos, Op: t.Kind, X: x}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() ast.Expr {
	switch p.cur().Kind {
	case token.INT:
		t := p.next()
		v, err := strconv.ParseInt(t.Lit, 0, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q", t.Lit)
		}
		return &ast.IntLit{ValuePos: t.Pos, Value: v}
	case token.STRING:
		t := p.next()
		return &ast.StringLit{ValuePos: t.Pos, Value: t.Lit}
	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	case token.IDENT:
		id := p.parseIdent()
		switch p.cur().Kind {
		case token.LPAREN:
			lp := p.next().Pos
			call := &ast.CallExpr{Fun: id, Lparen: lp}
			if !p.at(token.RPAREN) {
				call.Args = append(call.Args, p.parseExpr())
				for p.accept(token.COMMA) {
					call.Args = append(call.Args, p.parseExpr())
				}
			}
			p.expect(token.RPAREN)
			return call
		case token.LBRACK:
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBRACK)
			return &ast.IndexExpr{X: id, Index: idx}
		}
		return id
	}
	t := p.cur()
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.next()
	return &ast.IntLit{ValuePos: t.Pos, Value: 0}
}
