package lexer

import (
	"testing"

	"eol/internal/lang/token"
)

func kinds(toks []token.Token) []token.Kind {
	ks := make([]token.Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestScanBasics(t *testing.T) {
	toks, errs := ScanAll(`var x = 42; // comment
if (x >= 10 && x != 0) { x <<= 2; }`)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{
		token.VAR, token.IDENT, token.ASSIGN, token.INT, token.SEMI,
		token.IF, token.LPAREN, token.IDENT, token.GEQ, token.INT,
		token.LAND, token.IDENT, token.NEQ, token.INT, token.RPAREN,
		token.LBRACE, token.IDENT, token.SHL_ASSIGN, token.INT, token.SEMI,
		token.RBRACE, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperatorMaximalMunch(t *testing.T) {
	cases := map[string][]token.Kind{
		"<<=":   {token.SHL_ASSIGN},
		"<<":    {token.SHL},
		"<=":    {token.LEQ},
		"<":     {token.LSS},
		">>=":   {token.SHR_ASSIGN},
		"==":    {token.EQL},
		"=":     {token.ASSIGN},
		"& &":   {token.AND, token.AND},
		"&&":    {token.LAND},
		"||":    {token.LOR},
		"|=":    {token.OR_ASSIGN},
		"++":    {token.INC},
		"+=":    {token.ADD_ASSIGN},
		"+ +":   {token.ADD, token.ADD},
		"--":    {token.DEC},
		"-= -":  {token.SUB_ASSIGN, token.SUB},
		"! !=":  {token.NOT, token.NEQ},
		"~":     {token.TILD},
		"^= ^":  {token.XOR_ASSIGN, token.XOR},
		"%= %":  {token.REM_ASSIGN, token.REM},
		"*= */": {token.MUL_ASSIGN, token.MUL, token.QUO},
	}
	for src, want := range cases {
		toks, errs := ScanAll(src)
		if len(errs) != 0 {
			t.Errorf("%q: errors %v", src, errs)
			continue
		}
		got := kinds(toks[:len(toks)-1]) // drop EOF
		if len(got) != len(want) {
			t.Errorf("%q: got %v, want %v", src, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%q token %d: %v want %v", src, i, got[i], want[i])
			}
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, errs := ScanAll("0 7 123 0x1F 0XaB")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	wantLits := []string{"0", "7", "123", "0x1F", "0XaB"}
	for i, w := range wantLits {
		if toks[i].Kind != token.INT || toks[i].Lit != w {
			t.Errorf("number %d = %v(%q), want INT(%q)", i, toks[i].Kind, toks[i].Lit, w)
		}
	}
	// malformed
	_, errs = ScanAll("12ab")
	if len(errs) == 0 {
		t.Error("12ab should be a lexical error")
	}
	_, errs = ScanAll("0x")
	if len(errs) == 0 {
		t.Error("bare 0x should be a lexical error")
	}
}

func TestStrings(t *testing.T) {
	toks, errs := ScanAll(`"hello" "a\nb" "q\"q" "tab\t" ""`)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []string{"hello", "a\nb", `q"q`, "tab\t", ""}
	for i, w := range want {
		if toks[i].Kind != token.STRING || toks[i].Lit != w {
			t.Errorf("string %d = %q, want %q", i, toks[i].Lit, w)
		}
	}
	for _, bad := range []string{`"unterminated`, "\"line\nbreak\"", `"bad \q escape"`} {
		if _, errs := ScanAll(bad); len(errs) == 0 {
			t.Errorf("%q should be a lexical error", bad)
		}
	}
}

func TestComments(t *testing.T) {
	toks, errs := ScanAll(`
// full line
x // trailing
/* block
   spanning lines */ y
/* nested-ish * / still inside */ z`)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	var ids []string
	for _, tok := range toks {
		if tok.Kind == token.IDENT {
			ids = append(ids, tok.Lit)
		}
	}
	if len(ids) != 3 || ids[0] != "x" || ids[1] != "y" || ids[2] != "z" {
		t.Errorf("identifiers = %v, want [x y z]", ids)
	}
	if _, errs := ScanAll("/* unterminated"); len(errs) == 0 {
		t.Error("unterminated block comment should error")
	}
}

func TestPositions(t *testing.T) {
	toks, _ := ScanAll("a\n  bb\n\tc")
	want := []token.Pos{{Line: 1, Col: 1}, {Line: 2, Col: 3}, {Line: 3, Col: 2}}
	for i, w := range want {
		if toks[i].Pos != w {
			t.Errorf("token %d at %v, want %v", i, toks[i].Pos, w)
		}
	}
}

func TestIllegalCharacter(t *testing.T) {
	toks, errs := ScanAll("a $ b")
	if len(errs) != 1 {
		t.Fatalf("errors = %v, want 1", errs)
	}
	if toks[1].Kind != token.ILLEGAL {
		t.Errorf("token 1 = %v, want ILLEGAL", toks[1].Kind)
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := New("x")
	l.Next() // x
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("call %d after end = %v, want EOF", i, tok.Kind)
		}
	}
}
