// Package lexer implements the hand-written scanner for MiniC source text.
//
// The scanner is deliberately simple and allocation-light: MiniC programs
// are re-lexed only once per compilation, so clarity wins over speed.
package lexer

import (
	"fmt"
	"strings"

	"eol/internal/lang/token"
)

// Error is a lexical error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans MiniC source text into tokens.
type Lexer struct {
	src    string
	off    int // byte offset of the next rune to read
	line   int
	col    int
	errors []*Error
}

// New returns a Lexer over src. Line and column numbering start at 1.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errors }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errors = append(l.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isLetter(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || c == '_'
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		switch c := l.peek(); {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token. At end of input it returns an EOF token
// (repeatedly, if called again).
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}

	c := l.peek()
	switch {
	case isLetter(c):
		return l.scanIdent(pos)
	case isDigit(c):
		return l.scanNumber(pos)
	case c == '"':
		return l.scanString(pos)
	}

	l.advance()
	// two/three-character operators first
	mk := func(k token.Kind) token.Token { return token.Token{Kind: k, Pos: pos} }
	switch c {
	case '+':
		if l.peek() == '=' {
			l.advance()
			return mk(token.ADD_ASSIGN)
		}
		if l.peek() == '+' {
			l.advance()
			return mk(token.INC)
		}
		return mk(token.ADD)
	case '-':
		if l.peek() == '=' {
			l.advance()
			return mk(token.SUB_ASSIGN)
		}
		if l.peek() == '-' {
			l.advance()
			return mk(token.DEC)
		}
		return mk(token.SUB)
	case '*':
		if l.peek() == '=' {
			l.advance()
			return mk(token.MUL_ASSIGN)
		}
		return mk(token.MUL)
	case '/':
		if l.peek() == '=' {
			l.advance()
			return mk(token.QUO_ASSIGN)
		}
		return mk(token.QUO)
	case '%':
		if l.peek() == '=' {
			l.advance()
			return mk(token.REM_ASSIGN)
		}
		return mk(token.REM)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return mk(token.LAND)
		}
		if l.peek() == '=' {
			l.advance()
			return mk(token.AND_ASSIGN)
		}
		return mk(token.AND)
	case '|':
		if l.peek() == '|' {
			l.advance()
			return mk(token.LOR)
		}
		if l.peek() == '=' {
			l.advance()
			return mk(token.OR_ASSIGN)
		}
		return mk(token.OR)
	case '^':
		if l.peek() == '=' {
			l.advance()
			return mk(token.XOR_ASSIGN)
		}
		return mk(token.XOR)
	case '<':
		if l.peek() == '<' {
			l.advance()
			if l.peek() == '=' {
				l.advance()
				return mk(token.SHL_ASSIGN)
			}
			return mk(token.SHL)
		}
		if l.peek() == '=' {
			l.advance()
			return mk(token.LEQ)
		}
		return mk(token.LSS)
	case '>':
		if l.peek() == '>' {
			l.advance()
			if l.peek() == '=' {
				l.advance()
				return mk(token.SHR_ASSIGN)
			}
			return mk(token.SHR)
		}
		if l.peek() == '=' {
			l.advance()
			return mk(token.GEQ)
		}
		return mk(token.GTR)
	case '=':
		if l.peek() == '=' {
			l.advance()
			return mk(token.EQL)
		}
		return mk(token.ASSIGN)
	case '!':
		if l.peek() == '=' {
			l.advance()
			return mk(token.NEQ)
		}
		return mk(token.NOT)
	case '~':
		return mk(token.TILD)
	case '(':
		return mk(token.LPAREN)
	case ')':
		return mk(token.RPAREN)
	case '[':
		return mk(token.LBRACK)
	case ']':
		return mk(token.RBRACK)
	case '{':
		return mk(token.LBRACE)
	case '}':
		return mk(token.RBRACE)
	case ',':
		return mk(token.COMMA)
	case ';':
		return mk(token.SEMI)
	}
	l.errorf(pos, "illegal character %q", c)
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

func (l *Lexer) scanIdent(pos token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
		l.advance()
	}
	lit := l.src[start:l.off]
	kind := token.Lookup(lit)
	if kind != token.IDENT {
		return token.Token{Kind: kind, Pos: pos}
	}
	return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}
}

func (l *Lexer) scanNumber(pos token.Pos) token.Token {
	start := l.off
	// hex literals
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
		if l.off == start+2 {
			l.errorf(pos, "malformed hex literal")
		}
		return token.Token{Kind: token.INT, Lit: l.src[start:l.off], Pos: pos}
	}
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.off < len(l.src) && isLetter(l.peek()) {
		bad := l.off
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		l.errorf(pos, "malformed number %q", l.src[start:l.off])
		_ = bad
		return token.Token{Kind: token.ILLEGAL, Lit: l.src[start:l.off], Pos: pos}
	}
	return token.Token{Kind: token.INT, Lit: l.src[start:l.off], Pos: pos}
}

func isHexDigit(c byte) bool {
	return isDigit(c) || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F'
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.off >= len(l.src) || l.peek() == '\n' {
			l.errorf(pos, "unterminated string literal")
			return token.Token{Kind: token.ILLEGAL, Lit: sb.String(), Pos: pos}
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			if l.off >= len(l.src) {
				l.errorf(pos, "unterminated string literal")
				return token.Token{Kind: token.ILLEGAL, Lit: sb.String(), Pos: pos}
			}
			e := l.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case '0':
				sb.WriteByte(0)
			default:
				l.errorf(pos, "unknown escape \\%c", e)
				sb.WriteByte(e)
			}
			continue
		}
		sb.WriteByte(c)
	}
	return token.Token{Kind: token.STRING, Lit: sb.String(), Pos: pos}
}

// ScanAll lexes src to completion and returns all tokens up to and
// including the EOF token, plus any lexical errors.
func ScanAll(src string) ([]token.Token, []*Error) {
	l := New(src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, l.Errors()
		}
	}
}
