// Package depgraph is the unified dependence-graph engine: one compact
// representation of the dynamic dependence graph that classic dynamic
// slicing, relevant slicing, confidence analysis and the demand-driven
// locator (Algorithm 2) all parameterize by an edge-kind mask.
//
// The representation has two halves:
//
//   - an immutable CSR (compressed-sparse-row) base holding the explicit
//     dependences observed during execution — per node, its data edges in
//     use-record order followed by its control edge — built once from the
//     trace;
//   - a small mutable overlay holding the analysis-added edges (Potential
//     from relevant slicing, Implicit/StrongImplicit from predicate-
//     switching verification), appended during expansion.
//
// Every edge points from a later entry to an earlier one (from > to), so
// the graph is a DAG ordered by entry index. That invariant is what makes
// a single reverse-order pass exact for confidence propagation, and what
// lets the incremental re-pruning in internal/confidence re-evaluate a
// dirty set in decreasing index order and still produce results identical
// to a full recomputation (see docs/DEPGRAPH.md).
//
// Slice sets are bitsets (Set) whose iteration order is execution order,
// matching the old sort-the-map-keys contract byte for byte.
package depgraph

import "eol/internal/trace"

// Kind classifies dependence edges.
type Kind int

// Edge kinds. Data and Control come from the trace; the others are added
// by analyses.
const (
	Data Kind = 1 << iota
	Control
	Potential      // Definition 1 (relevant slicing)
	Implicit       // Definition 2, verified by predicate switching
	StrongImplicit // Definition 4
	Summary        // interprocedural summary (static SPDG, internal/staticdep)
)

// Explicit selects the dependences observable during execution.
const Explicit = Data | Control

// AnyKind selects every edge kind.
const AnyKind = Data | Control | Potential | Implicit | StrongImplicit | Summary

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Data:
		return "dd"
	case Control:
		return "cd"
	case Potential:
		return "pd"
	case Implicit:
		return "id"
	case StrongImplicit:
		return "sid"
	case Summary:
		return "sum"
	}
	return "?"
}

// Edge is a dependence from a later entry to an earlier one it depends on.
type Edge struct {
	To   int
	Kind Kind
}

// Graph is a dynamic dependence graph over one trace: CSR base plus
// overlay. The zero value is not usable; construct with New.
type Graph struct {
	T *trace.Trace

	// CSR base: edges of node i are base[rowStart[i]:rowStart[i+1]],
	// data edges in use-record order, then the control edge.
	rowStart []int32
	base     []Edge

	// Overlay: analysis-added edges out of each node, in insertion order.
	overlay    [][]Edge
	overlayLen int

	// Forward adjacency (consumer lists), built lazily for the immutable
	// base, maintained incrementally for the overlay. Edge.To holds the
	// *consumer* index here.
	fwdBase    [][]Edge
	fwdOverlay [][]Edge

	// version counts overlay mutations; analyses snapshot it to detect
	// graph changes they have not accounted for.
	version uint64
}

// New builds the CSR base from a trace. Data and control dependences come
// from the trace itself; the overlay starts empty.
func New(t *trace.Trace) *Graph {
	n := t.Len()
	g := &Graph{T: t, rowStart: make([]int32, n+1)}
	total := 0
	for i := 0; i < n; i++ {
		e := t.At(i)
		for _, u := range e.Uses {
			if u.Def >= 0 {
				total++
			}
		}
		if e.Parent >= 0 {
			total++
		}
		g.rowStart[i+1] = int32(total)
	}
	g.base = make([]Edge, 0, total)
	for i := 0; i < n; i++ {
		e := t.At(i)
		for _, u := range e.Uses {
			if u.Def >= 0 {
				g.base = append(g.base, Edge{To: u.Def, Kind: Data})
			}
		}
		if e.Parent >= 0 {
			g.base = append(g.base, Edge{To: e.Parent, Kind: Control})
		}
	}
	return g
}

// Version returns the overlay mutation counter.
func (g *Graph) Version() uint64 { return g.version }

// AddEdge records an analysis-added dependence from entry `from` to entry
// `to` of the given kind and reports whether it was new (duplicates are
// ignored).
func (g *Graph) AddEdge(from, to int, kind Kind) bool {
	if g.overlay == nil {
		g.overlay = make([][]Edge, g.T.Len())
	}
	for _, e := range g.overlay[from] {
		if e.To == to && e.Kind == kind {
			return false
		}
	}
	g.overlay[from] = append(g.overlay[from], Edge{To: to, Kind: kind})
	g.overlayLen++
	if g.fwdOverlay == nil {
		g.fwdOverlay = make([][]Edge, g.T.Len())
	}
	g.fwdOverlay[to] = append(g.fwdOverlay[to], Edge{To: from, Kind: kind})
	g.version++
	return true
}

// ExtraEdges returns the analysis-added edges out of entry i. The slice
// aliases the overlay; callers must not modify it.
func (g *Graph) ExtraEdges(i int) []Edge {
	if g.overlay == nil {
		return nil
	}
	return g.overlay[i]
}

// NumExtraEdges counts all analysis-added edges of the given kinds.
func (g *Graph) NumExtraEdges(kinds Kind) int {
	n := 0
	for _, es := range g.overlay {
		for _, e := range es {
			if e.Kind&kinds != 0 {
				n++
			}
		}
	}
	return n
}

// EachDep calls f for every dependence of entry i restricted to kinds:
// base data edges in use-record order, the control edge, then overlay
// edges in insertion order. This replaces the old Deps(i, kinds, buf)
// API, whose caller-supplied buffer invited aliasing bugs (a retained
// result was silently clobbered by the next call); a callback has no
// buffer to misuse and avoids the allocation outright.
func (g *Graph) EachDep(i int, kinds Kind, f func(Edge)) {
	if kinds&Explicit != 0 {
		for _, e := range g.base[g.rowStart[i]:g.rowStart[i+1]] {
			if e.Kind&kinds != 0 {
				f(e)
			}
		}
	}
	if g.overlay != nil {
		for _, e := range g.overlay[i] {
			if e.Kind&kinds != 0 {
				f(e)
			}
		}
	}
}

// BackwardSlice computes the transitive closure of the seed entries over
// the given edge kinds. The result includes the seeds.
func (g *Graph) BackwardSlice(kinds Kind, seeds ...int) *Set {
	s := NewSet(g.T.Len())
	g.Extend(s, kinds, seeds...)
	return s
}

// Extend grows an existing closure set by the backward cones of the seeds
// and returns the newly added entries (in no particular order). Entries
// already in the set act as traversal barriers, which is what makes
// incremental slice growth equivalent to recomputing from scratch: the
// set is only ever a union of backward closures.
func (g *Graph) Extend(s *Set, kinds Kind, seeds ...int) []int {
	var added []int
	var work []int
	for _, seed := range seeds {
		if s.Add(seed) {
			added = append(added, seed)
			work = append(work, seed)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		g.EachDep(n, kinds, func(e Edge) {
			if s.Add(e.To) {
				added = append(added, e.To)
				work = append(work, e.To)
			}
		})
	}
	return added
}

// ensureForward builds the base consumer lists (reverse adjacency) once.
func (g *Graph) ensureForward() {
	if g.fwdBase != nil {
		return
	}
	g.fwdBase = make([][]Edge, g.T.Len())
	for i := 0; i < g.T.Len(); i++ {
		for _, e := range g.base[g.rowStart[i]:g.rowStart[i+1]] {
			g.fwdBase[e.To] = append(g.fwdBase[e.To], Edge{To: i, Kind: e.Kind})
		}
	}
}

// ForwardReach computes the set of entries reachable forward from the
// seeds, i.e. entries whose backward closure would include a seed.
func (g *Graph) ForwardReach(kinds Kind, seeds ...int) *Set {
	g.ensureForward()
	reach := NewSet(g.T.Len())
	var work []int
	for _, s := range seeds {
		if reach.Add(s) {
			work = append(work, s)
		}
	}
	visit := func(e Edge, work *[]int) {
		if e.Kind&kinds != 0 && reach.Add(e.To) {
			*work = append(*work, e.To)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range g.fwdBase[n] {
			visit(e, &work)
		}
		if g.fwdOverlay != nil {
			for _, e := range g.fwdOverlay[n] {
				visit(e, &work)
			}
		}
	}
	return reach
}

// Distances computes, for every entry in the backward closure of seed,
// its minimal dependence distance (edge count) to the seed; unreached
// entries hold -1. Used for ranking fault candidates. A negative seed
// yields nil.
func (g *Graph) Distances(kinds Kind, seed int) []int32 {
	if seed < 0 {
		return nil
	}
	dist := make([]int32, g.T.Len())
	for i := range dist {
		dist[i] = -1
	}
	dist[seed] = 0
	queue := []int{seed}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		g.EachDep(n, kinds, func(e Edge) {
			if dist[e.To] < 0 {
				dist[e.To] = dist[n] + 1
				queue = append(queue, e.To)
			}
		})
	}
	return dist
}

// Relax lowers BFS distances after the edge (from, to) was added:
// decrease-only propagation from `to` through the current graph. Distances
// are unique, so relaxing each inserted edge in any order over the
// already-updated graph reproduces exactly what a fresh Distances pass
// would compute.
func (g *Graph) Relax(dist []int32, kinds Kind, from, to int) {
	if from < 0 || to < 0 || dist == nil || dist[from] < 0 {
		return
	}
	nd := dist[from] + 1
	if dist[to] >= 0 && dist[to] <= nd {
		return
	}
	dist[to] = nd
	queue := []int{to}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		dn := dist[n]
		g.EachDep(n, kinds, func(e Edge) {
			if dist[e.To] < 0 || dist[e.To] > dn+1 {
				dist[e.To] = dn + 1
				queue = append(queue, e.To)
			}
		})
	}
}

// TraceBackward computes a backward closure over a trace's explicit
// dependences without building a Graph: the one-shot path used in
// verification inner loops (one closure per switched trace), where CSR
// construction would cost more than the walk itself. Only Data and
// Control bits of kinds are honored — a bare trace has no overlay.
func TraceBackward(t *trace.Trace, kinds Kind, seeds ...int) *Set {
	s := NewSet(t.Len())
	var work []int
	for _, seed := range seeds {
		if s.Add(seed) {
			work = append(work, seed)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		e := t.At(n)
		if kinds&Data != 0 {
			for _, u := range e.Uses {
				if u.Def >= 0 && s.Add(u.Def) {
					work = append(work, u.Def)
				}
			}
		}
		if kinds&Control != 0 && e.Parent >= 0 && s.Add(e.Parent) {
			work = append(work, e.Parent)
		}
	}
	return s
}

// SliceStats summarizes a slice in the paper's "static/dynamic" terms:
// the number of unique source statements and the number of statement
// instances.
type SliceStats struct {
	Static  int
	Dynamic int
}

// Stats computes slice statistics for a set of trace entries.
func (g *Graph) Stats(slice *Set) SliceStats {
	stmts := map[int]bool{}
	slice.ForEach(func(i int) { stmts[g.T.At(i).Inst.Stmt] = true })
	return SliceStats{Static: len(stmts), Dynamic: slice.Len()}
}

// ContainsStmt reports whether any instance of statement id is in the
// slice.
func (g *Graph) ContainsStmt(slice *Set, stmt int) bool {
	found := false
	slice.ForEach(func(i int) {
		if !found && g.T.At(i).Inst.Stmt == stmt {
			found = true
		}
	})
	return found
}

// EngineStats summarizes the representation for diagnostics (cmd/slicer
// -engine).
type EngineStats struct {
	Nodes        int
	BaseEdges    int
	OverlayEdges int
}

// EngineStats reports node and edge counts of both halves.
func (g *Graph) EngineStats() EngineStats {
	return EngineStats{Nodes: g.T.Len(), BaseEdges: len(g.base), OverlayEdges: g.overlayLen}
}
