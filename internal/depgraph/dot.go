package depgraph

import (
	"fmt"
	"io"
)

// DOTOptions configure graph export.
type DOTOptions struct {
	// Only restricts the export to these entries (nil = whole trace).
	Only *Set
	// Kinds selects the edges to draw (0 = all).
	Kinds Kind
	// Label renders a node label; defaults to the statement instance.
	Label func(entry int) string
	// Highlight nodes get a distinct fill (e.g. the failure point, the
	// root cause).
	Highlight *Set
}

// WriteDOT renders the dependence graph in Graphviz DOT format. Edge
// styles distinguish kinds: solid = data, dashed = control, dotted =
// potential, bold = implicit / strong implicit. Base edges render first
// (data in use order, then control), then overlay edges in insertion
// order — the same order EachDep traverses.
func (g *Graph) WriteDOT(w io.Writer, opts DOTOptions) error {
	kinds := opts.Kinds
	if kinds == 0 {
		kinds = AnyKind
	}
	include := func(i int) bool { return opts.Only == nil || opts.Only.Has(i) }
	label := opts.Label
	if label == nil {
		label = func(i int) string { return g.T.At(i).Inst.String() }
	}

	if _, err := fmt.Fprintln(w, "digraph ddg {"); err != nil {
		return err
	}
	fmt.Fprintln(w, `  rankdir=BT;`)
	fmt.Fprintln(w, `  node [shape=box, fontname="monospace", fontsize=10];`)

	for i := 0; i < g.T.Len(); i++ {
		if !include(i) {
			continue
		}
		attrs := ""
		if opts.Highlight.Has(i) {
			attrs = `, style=filled, fillcolor="#ffd7d7"`
		}
		fmt.Fprintf(w, "  n%d [label=%q%s];\n", i, label(i), attrs)
	}

	for i := 0; i < g.T.Len(); i++ {
		if !include(i) {
			continue
		}
		g.EachDep(i, kinds, func(e Edge) {
			if !include(e.To) {
				return
			}
			style := edgeStyle(e.Kind)
			fmt.Fprintf(w, "  n%d -> n%d [%s, label=%q];\n", i, e.To, style, e.Kind.String())
		})
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func edgeStyle(k Kind) string {
	switch k {
	case Data:
		return "style=solid"
	case Control:
		return "style=dashed"
	case Potential:
		return `style=dotted, color="#888888"`
	case Implicit:
		return `style=bold, color="#cc6600"`
	case StrongImplicit:
		return `style=bold, color="#cc0000"`
	}
	return "style=solid"
}
