package depgraph

import "math/bits"

// Set is a bitset over trace entry indices. It replaces the map[int]bool
// slice sets of the original ddg API: membership is one bit, iteration is
// ascending entry order (= execution order, the same order
// ddg.SortedEntries produced by sorting map keys), and closure extension
// can reuse the same storage across incremental passes.
type Set struct {
	words []uint64
	count int
}

// NewSet returns an empty set sized for entries [0, n).
func NewSet(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+63)/64)}
}

// grow ensures the backing array covers bit i.
func (s *Set) grow(i int) {
	w := i >> 6
	for w >= len(s.words) {
		s.words = append(s.words, 0)
	}
}

// Add inserts i and reports whether it was newly added. Negative indices
// are ignored (the old map-based API guarded seeds the same way).
func (s *Set) Add(i int) bool {
	if i < 0 {
		return false
	}
	s.grow(i)
	w, b := i>>6, uint64(1)<<(i&63)
	if s.words[w]&b != 0 {
		return false
	}
	s.words[w] |= b
	s.count++
	return true
}

// Has reports membership of i.
func (s *Set) Has(i int) bool {
	if s == nil || i < 0 {
		return false
	}
	w := i >> 6
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<(i&63)) != 0
}

// Len returns the number of members.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return s.count
}

// ForEach calls f for every member in ascending order.
func (s *Set) ForEach(f func(i int)) {
	if s == nil {
		return
	}
	for w, word := range s.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			f(w<<6 + b)
			word &= word - 1
		}
	}
}

// Ordered returns the members in ascending (execution) order.
func (s *Set) Ordered() []int {
	if s == nil {
		return nil
	}
	res := make([]int, 0, s.count)
	s.ForEach(func(i int) { res = append(res, i) })
	return res
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), count: s.count}
	copy(c.words, s.words)
	return c
}
