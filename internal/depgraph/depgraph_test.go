package depgraph

import (
	"math/rand"
	"testing"

	"eol/internal/trace"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(10)
	if s.Len() != 0 || s.Has(3) {
		t.Fatal("fresh set not empty")
	}
	if !s.Add(3) || s.Add(3) {
		t.Fatal("Add newness reporting broken")
	}
	if s.Add(-1) {
		t.Fatal("negative Add accepted")
	}
	s.Add(200) // beyond initial capacity: auto-grow
	if !s.Has(200) || s.Has(-5) || s.Has(1000) {
		t.Fatal("Has broken")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if got := s.Ordered(); len(got) != 2 || got[0] != 3 || got[1] != 200 {
		t.Fatalf("Ordered = %v", got)
	}
	c := s.Clone()
	c.Add(4)
	if s.Has(4) || c.Len() != 3 {
		t.Fatal("Clone not independent")
	}
	var nilSet *Set
	if nilSet.Has(0) || nilSet.Len() != 0 || nilSet.Ordered() != nil {
		t.Fatal("nil Set accessors broken")
	}
}

// randomDAGTrace builds a trace whose entries use random earlier defs and
// random region parents — a dense, adversarial DAG for closure tests.
func randomDAGTrace(rng *rand.Rand, n int) *trace.Trace {
	tr := trace.New()
	for i := 0; i < n; i++ {
		e := trace.Entry{Inst: trace.Instance{Stmt: 1 + rng.Intn(8), Occ: i}, Parent: -1}
		if i > 0 && rng.Intn(3) > 0 {
			e.Parent = rng.Intn(i)
		}
		for k := rng.Intn(3); k > 0 && i > 0; k-- {
			e.Uses = append(e.Uses, trace.UseRec{Sym: k, Elem: trace.ScalarElem, Def: rng.Intn(i)})
		}
		tr.Append(e)
	}
	return tr
}

// TestExtendMatchesFromScratch: growing a closure edge-by-edge must land
// on the same set as recomputing it over the final graph — the invariant
// incremental re-pruning rests on.
func TestExtendMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 30; round++ {
		n := 20 + rng.Intn(60)
		tr := randomDAGTrace(rng, n)
		g := New(tr)
		seed := n - 1
		inc := g.BackwardSlice(Explicit|Implicit, seed)
		dist := g.Distances(Explicit|Implicit, seed)

		// Add random overlay edges one at a time, maintaining both the
		// closure and the distances incrementally.
		for k := 0; k < 10; k++ {
			from := 1 + rng.Intn(n-1)
			to := rng.Intn(from)
			if !g.AddEdge(from, to, Implicit) {
				continue
			}
			if inc.Has(from) {
				g.Extend(inc, Explicit|Implicit, to)
			}
			g.Relax(dist, Explicit|Implicit, from, to)
		}

		full := g.BackwardSlice(Explicit|Implicit, seed)
		fullDist := g.Distances(Explicit|Implicit, seed)
		if got, want := inc.Ordered(), full.Ordered(); len(got) != len(want) {
			t.Fatalf("round %d: incremental slice %v != full %v", round, got, want)
		} else {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("round %d: incremental slice %v != full %v", round, got, want)
				}
			}
		}
		for i := range fullDist {
			if dist[i] != fullDist[i] {
				t.Fatalf("round %d: dist[%d] = %d, full recompute %d", round, i, dist[i], fullDist[i])
			}
		}
	}
}

func TestTraceBackwardMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 10; round++ {
		tr := randomDAGTrace(rng, 40)
		g := New(tr)
		for seed := 0; seed < tr.Len(); seed += 7 {
			a := TraceBackward(tr, Explicit, seed).Ordered()
			b := g.BackwardSlice(Explicit, seed).Ordered()
			if len(a) != len(b) {
				t.Fatalf("TraceBackward differs from graph slice at seed %d", seed)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("TraceBackward differs from graph slice at seed %d", seed)
				}
			}
		}
	}
}

func TestEngineStats(t *testing.T) {
	tr := randomDAGTrace(rand.New(rand.NewSource(3)), 30)
	g := New(tr)
	st := g.EngineStats()
	if st.Nodes != 30 || st.BaseEdges == 0 || st.OverlayEdges != 0 {
		t.Fatalf("stats = %+v", st)
	}
	g.AddEdge(29, 0, StrongImplicit)
	if got := g.EngineStats().OverlayEdges; got != 1 {
		t.Fatalf("overlay edges = %d, want 1", got)
	}
}
