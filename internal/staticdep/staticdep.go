// Package staticdep builds the static program-dependence graph (SPDG)
// of a compiled MiniC program: one whole-program, statement-level graph
// fusing
//
//   - static control dependence (the postdominator-based CDKids relation
//     internal/cfg computes per function),
//   - intraprocedural reaching definitions for locals and parameters
//     (internal/dataflow),
//   - interprocedural, flow-sensitive reaching definitions for globals —
//     a supergraph fixpoint threading definition sets through call sites
//     with kills at strong writes, strictly sharper than the
//     flow-insensitive mod/ref condition dataflow.PotentialBranchGlobal
//     uses to generate cross-function candidates, and
//   - interprocedural summary edges: call site → callee body (execution
//     and argument influence) and return statement → call site (return
//     value influence), layered on transitive mod/ref summaries over the
//     call graph, and
//   - constant-index element refinement for arrays: a def→use data edge
//     is dropped when both statements access the array only at provably
//     constant, disjoint element indexes — the precision that gives the
//     reach filter its firing cases (see the vacuity discussion in
//     check/reachfilter.go), with the matching hazard exemption for
//     provably in-bounds constant indexing.
//
// The SPDG reuses internal/depgraph's edge vocabulary and CSR layout
// (rowStart + flat edge array, Kind bitmask; the Summary kind is this
// package's contribution), with statement IDs as nodes. It is computed
// once per compiled program — Cache shares it content-keyed across
// corpus shards exactly like the corpus compile cache — and consumed in
// two places: check.StaticReachFilter, which answers provably-NOT_ID
// verifications before any execution, and the EOL0009/EOL0010 eolvet
// passes. See docs/STATICDEP.md for the construction and the soundness
// argument.
package staticdep

import (
	"sort"
	"sync"

	"eol/internal/cfg"
	"eol/internal/dataflow"
	"eol/internal/depgraph"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/lang/sem"
	"eol/internal/lang/token"
)

// Stats describes one SPDG: node and per-kind edge counts plus the
// predicate cone summary. An edge connecting the same statement pair
// with several kinds counts once per kind.
type Stats struct {
	Nodes         int // statements (IDs 1..Nodes)
	ControlEdges  int
	DataEdges     int
	SummaryEdges  int
	Predicates    int // predicate statements with a precomputed cone
	HarmlessCones int // predicates whose forward cone is hazard-free
}

// Edges returns the total edge count across kinds.
func (s Stats) Edges() int { return s.ControlEdges + s.DataEdges + s.SummaryEdges }

// cone is the precomputed forward closure of one predicate statement
// over the SPDG: every statement whose execution or value could change
// if the predicate's branch were forced the other way.
type cone struct {
	bits     bitset
	harmless bool // no fault-capable or input-consuming statement inside
	silent   bool // harmless and no print statement inside
	straight bool // no predicate, return, break or continue inside
}

// Graph is the SPDG of one compiled program. It is immutable after New
// and safe for concurrent readers, which is what lets corpus shards
// share one instance.
type Graph struct {
	info *sem.Info

	n        int             // statement count; node IDs are 1..n
	rowStart []int32         // CSR rows for IDs 0..n (row 0 empty)
	edges    []depgraph.Edge // Edge.To is the successor statement ID

	hazard []bool // 1-based: statement can fault or consumes input
	output []bool // 1-based: print statement

	calls  map[string][]int        // callee -> call-site statement IDs
	mayRef map[string]map[int]bool // fn -> globals read, transitively
	mayDef map[string]map[int]bool // fn -> globals written, transitively

	// Interprocedural global reaching definitions.
	gsites  []gsite         // direct global definition sites (index 0.. )
	reachIn map[int]bitset  // stmt -> site indices reaching its entry
	live    bitset          // site indices some use actually reads

	cones map[int]*cone

	stats Stats
}

// gsite is one direct definition site of a global symbol. Virtual
// initial-value sites use Stmt 0 and never produce edges or findings.
type gsite struct {
	Stmt   int
	Sym    int
	Strong bool
}

// New builds the SPDG for c. flow may be nil, in which case the
// intraprocedural dataflow analysis is computed here; passing an
// existing one (core.Locate, check.Unit) avoids recomputing it.
func New(c *interp.Compiled, flow *dataflow.Analysis) *Graph {
	if flow == nil {
		flow = dataflow.New(c.Info, c.CFG)
	}
	info := c.Info
	g := &Graph{
		info:    info,
		n:       info.NumStmts(),
		calls:   map[string][]int{},
		mayRef:  map[string]map[int]bool{},
		reachIn: map[int]bitset{},
		cones:   map[int]*cone{},
	}
	g.mayDef = map[string]map[int]bool{}
	for name := range info.Funcs {
		g.mayDef[name] = flow.MayDefineGlobals(name)
	}

	g.classify()
	g.buildCallGraph()
	g.computeMayRef()
	g.computeGlobalReaching(c)
	g.buildEdges(c, flow)
	g.buildCones()
	return g
}

// Stats returns the SPDG size summary.
func (g *Graph) Stats() Stats { return g.stats }

// NumStmts returns the statement count (node IDs run 1..NumStmts).
func (g *Graph) NumStmts() int { return g.n }

// Succs returns the out-edges of statement id (kinds OR-ed per target).
func (g *Graph) Succs(id int) []depgraph.Edge {
	if id < 1 || id > g.n {
		return nil
	}
	return g.edges[g.rowStart[id]:g.rowStart[id+1]]
}

// Hazard reports whether statement id can fault (indexing, division,
// shifts, assert) or consumes input (read), i.e. whether its appearing
// or vanishing in a switched run can abort the execution or
// desynchronize every later read.
func (g *Graph) Hazard(id int) bool { return id >= 1 && id <= g.n && g.hazard[id] }

// InCone reports whether statement id is in the forward cone of
// predicate pred: reachable from pred's control-dependence kids through
// SPDG edges of any kind. pred itself is a member only when reachable
// through a cycle (e.g. a loop header, whose later iterations the switch
// can create or destroy). Returns false when pred is not a predicate.
func (g *Graph) InCone(pred, id int) bool {
	c := g.cones[pred]
	return c != nil && id >= 1 && id <= g.n && c.bits.get(id)
}

// ConeHarmless reports whether pred's forward cone contains no
// fault-capable or input-consuming statement. Only harmless cones admit
// the pre-execution NOT_ID proof of check.StaticReachFilter.
func (g *Graph) ConeHarmless(pred int) bool {
	c := g.cones[pred]
	return c != nil && c.harmless
}

// ConeStraight reports whether pred's forward cone contains no
// predicate, return, break or continue statement: every control-flow
// decision outside the predicate's own switched instance is then
// unaffected, so a switched run executes statement-for-statement
// identically to the original outside the switched region — the
// structural half of check.StaticReachFilter's proof (region alignment
// cannot fail on any point outside the cone). A predicate reaching
// itself through a cycle (loop header) fails this by definition.
func (g *Graph) ConeStraight(pred int) bool {
	c := g.cones[pred]
	return c != nil && c.straight
}

// ConeSilent reports whether pred's forward cone is harmless and
// contains no print statement either — the EOL0009 condition: switching
// the predicate cannot influence any program output.
func (g *Graph) ConeSilent(pred int) bool {
	c := g.cones[pred]
	return c != nil && c.silent
}

// MayRef returns the set of global symbol IDs function fn may read,
// transitively through callees — the ref half of the mod/ref summary
// (dataflow.MayDefineGlobals is the mod half).
func (g *Graph) MayRef(fn string) map[int]bool { return g.mayRef[fn] }

// GlobalDefsReaching returns the statement IDs of direct global
// definition sites of sym that may reach the entry of useStmt through
// the interprocedural supergraph (virtual initial-value sites excluded),
// in ascending order.
func (g *Graph) GlobalDefsReaching(useStmt, sym int) []int {
	bits, ok := g.reachIn[useStmt]
	if !ok {
		return nil
	}
	var res []int
	for i, s := range g.gsites {
		if s.Sym == sym && s.Stmt != 0 && bits.get(i) {
			res = append(res, s.Stmt)
		}
	}
	sort.Ints(res)
	return res
}

// DeadGlobalStores returns the statement IDs of direct global writes
// that no statement in any function can ever read — the EOL0010
// condition — in ascending order. A statement writing several globals is
// reported only if every one of its global writes is dead.
func (g *Graph) DeadGlobalStores() []int {
	deadBy := map[int]bool{}
	liveBy := map[int]bool{}
	for i, s := range g.gsites {
		if s.Stmt == 0 {
			continue
		}
		if g.live.get(i) {
			liveBy[s.Stmt] = true
		} else {
			deadBy[s.Stmt] = true
		}
	}
	var res []int
	for id := range deadBy {
		if !liveBy[id] {
			res = append(res, id)
		}
	}
	sort.Ints(res)
	return res
}

// ---------------------------------------------------------------------------
// construction

// classify computes the per-statement hazard and output flags. An
// IndexExpr whose index folds to a constant provably inside [0, size)
// cannot fault and is therefore not a hazard; every other indexing
// operation is.
func (g *Graph) classify() {
	g.hazard = make([]bool, g.n+1)
	g.output = make([]bool, g.n+1)
	for _, s := range g.info.Stmts {
		id := s.ID()
		if _, ok := s.(*ast.PrintStmt); ok {
			g.output[id] = true
		}
		if a, ok := s.(*ast.AssignStmt); ok {
			switch a.Op {
			case token.QUO_ASSIGN, token.REM_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN:
				g.hazard[id] = true
			}
		}
		ast.InspectExprs(s, func(x ast.Expr) {
			switch t := x.(type) {
			case *ast.IndexExpr:
				sym := g.info.Uses[t.X]
				v, ok := constIndex(t.Index)
				if sym == nil || !sym.IsArray || !ok || v < 0 || v >= sym.Size {
					g.hazard[id] = true
				}
			case *ast.BinaryExpr:
				switch t.Op {
				case token.QUO, token.REM, token.SHL, token.SHR:
					g.hazard[id] = true
				}
			case *ast.CallExpr:
				switch t.Fun.Name {
				case "read", "assert":
					g.hazard[id] = true
				}
			}
		})
	}
}

// constIndex folds an index expression made of literals and fault-free
// pure operators; ok is false for anything involving a variable, a
// call, or an operator whose folding could hide a runtime fault
// (division, shifts). The conservative subset keeps the element
// summaries below trivially sound.
func constIndex(x ast.Expr) (int64, bool) {
	switch t := x.(type) {
	case *ast.IntLit:
		return t.Value, true
	case *ast.UnaryExpr:
		v, ok := constIndex(t.X)
		if !ok {
			return 0, false
		}
		switch t.Op {
		case token.SUB:
			return -v, true
		case token.TILD:
			return ^v, true
		}
	case *ast.BinaryExpr:
		a, aok := constIndex(t.X)
		b, bok := constIndex(t.Y)
		if !aok || !bok {
			return 0, false
		}
		switch t.Op {
		case token.ADD:
			return a + b, true
		case token.SUB:
			return a - b, true
		case token.MUL:
			return a * b, true
		case token.AND:
			return a & b, true
		case token.OR:
			return a | b, true
		case token.XOR:
			return a ^ b, true
		}
	}
	return 0, false
}

// elemAccess summarizes one statement's accesses of one array symbol:
// the constant element indexes it touches, and whether every access of
// that symbol in the statement folded to a constant. Only all-constant
// summaries on both sides admit the disjointness proof that drops a
// data edge.
type elemAccess struct {
	idx      map[int64]bool
	allConst bool
}

func (e *elemAccess) record(v int64, ok bool) {
	if !ok {
		e.allConst = false
		return
	}
	if e.idx == nil {
		e.idx = map[int64]bool{}
	}
	e.idx[v] = true
}

// elemSummary holds the per-statement, per-array-symbol element access
// summaries: defs[stmt][sym] covers write occurrences (an AssignStmt
// whose LHS is an IndexExpr), uses[stmt][sym] covers read occurrences
// (every other IndexExpr, including those inside index expressions, and
// a compound-assign LHS, which reads the element it writes).
type elemSummary struct {
	defs map[int]map[int]*elemAccess
	uses map[int]map[int]*elemAccess
}

func (es *elemSummary) at(m map[int]map[int]*elemAccess, stmt, sym int) *elemAccess {
	by := m[stmt]
	if by == nil {
		by = map[int]*elemAccess{}
		m[stmt] = by
	}
	a := by[sym]
	if a == nil {
		a = &elemAccess{allConst: true}
		by[sym] = a
	}
	return a
}

// disjoint reports whether def statement d and use statement u provably
// touch disjoint element sets of array sym: both sides summarized, both
// all-constant, no common index. A missing summary (whole-array
// definition such as a declaration) or any non-constant index keeps the
// edge — the refinement only ever removes provably value-disconnected
// pairs, so it is a pure precision gain over the symbol-level graph.
func (es *elemSummary) disjoint(d, u int, sym *sem.Symbol) bool {
	if !sym.IsArray {
		return false
	}
	da := es.defs[d][sym.ID]
	ua := es.uses[u][sym.ID]
	if da == nil || ua == nil || !da.allConst || !ua.allConst {
		return false
	}
	for v := range da.idx {
		if ua.idx[v] {
			return false
		}
	}
	return true
}

// computeElemAccess builds the element summaries. The dynamic trace
// records uses per (symbol, element); the symbol-level candidate
// generator cannot see that, so these summaries are where the SPDG
// recovers element precision for constant indexes — the refinement that
// lets check.StaticReachFilter fire on real candidates (a region
// writing only buf[3] can never produce the reaching definition of a
// read of buf[1]).
func (g *Graph) computeElemAccess() *elemSummary {
	es := &elemSummary{
		defs: map[int]map[int]*elemAccess{},
		uses: map[int]map[int]*elemAccess{},
	}
	for _, s := range g.info.Stmts {
		id := s.ID()
		var defIE *ast.IndexExpr
		compound := false
		if a, ok := s.(*ast.AssignStmt); ok {
			if ix, ok := a.LHS.(*ast.IndexExpr); ok {
				defIE = ix
				compound = a.Op != token.ASSIGN
			}
		}
		ast.InspectExprs(s, func(x ast.Expr) {
			ix, ok := x.(*ast.IndexExpr)
			if !ok {
				return
			}
			sym := g.info.Uses[ix.X]
			if sym == nil || !sym.IsArray {
				return
			}
			v, cok := constIndex(ix.Index)
			if ix == defIE {
				es.at(es.defs, id, sym.ID).record(v, cok)
				if compound {
					es.at(es.uses, id, sym.ID).record(v, cok)
				}
				return
			}
			es.at(es.uses, id, sym.ID).record(v, cok)
		})
	}
	return es
}

// buildCallGraph records user-function call sites (builtins excluded).
func (g *Graph) buildCallGraph() {
	for _, s := range g.info.Stmts {
		id := s.ID()
		for _, callee := range g.info.StmtCalls[id] {
			if _, ok := g.info.Funcs[callee]; ok {
				g.calls[callee] = append(g.calls[callee], id)
			}
		}
	}
	for _, sites := range g.calls {
		sort.Ints(sites)
	}
}

// computeMayRef runs the ref half of the mod/ref fixpoint over the call
// graph, mirroring dataflow's may-def computation.
func (g *Graph) computeMayRef() {
	for name := range g.info.Funcs {
		g.mayRef[name] = map[int]bool{}
	}
	for name, fi := range g.info.Funcs {
		for _, id := range fi.StmtIDs {
			for _, sym := range g.info.StmtUses[id] {
				if sym.Kind == sem.Global {
					g.mayRef[name][sym.ID] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for name, fi := range g.info.Funcs {
			for _, id := range fi.StmtIDs {
				for _, callee := range g.info.StmtCalls[id] {
					for s := range g.mayRef[callee] {
						if !g.mayRef[name][s] {
							g.mayRef[name][s] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

// computeGlobalReaching runs the interprocedural, flow-sensitive
// reaching-definitions fixpoint for globals over the program supergraph:
// per-function iterative RD whose call nodes inject the callee's exit
// set (and feed their own entry set to the callee), iterated across
// functions until entry/exit sets stabilize. Context-insensitive,
// therefore a sound over-approximation of every dynamic flow — including
// flows in switched re-executions — while kills at strong global writes
// and call-site ordering make it strictly sharper than the
// flow-insensitive mod/ref view.
func (g *Graph) computeGlobalReaching(c *interp.Compiled) {
	info := g.info

	// Sites: one virtual initial-value site per global, then every
	// direct global write, in statement order.
	siteIdx := map[[2]int][]int{} // (stmt, sym) -> site indices
	addSite := func(s gsite) {
		idx := len(g.gsites)
		g.gsites = append(g.gsites, s)
		siteIdx[[2]int{s.Stmt, s.Sym}] = append(siteIdx[[2]int{s.Stmt, s.Sym}], idx)
	}
	initBits := newBitset(0)
	for _, sym := range info.Symbols {
		if sym.Kind == sem.Global {
			addSite(gsite{Stmt: 0, Sym: sym.ID})
			initBits = initBits.grow(len(g.gsites))
			initBits.set(len(g.gsites) - 1)
		}
	}
	for _, s := range info.Stmts {
		id := s.ID()
		if info.StmtFunc[id] == nil {
			// Top-level declaration: runs before main, outside every CFG.
			// The virtual initial-value site models it.
			continue
		}
		_, isDecl := s.(*ast.VarDeclStmt)
		for _, sym := range info.StmtDefs[id] {
			if sym.Kind == sem.Global {
				addSite(gsite{Stmt: id, Sym: sym.ID, Strong: !sym.IsArray || isDecl})
			}
		}
	}
	ns := len(g.gsites)
	initBits = initBits.grow(ns)

	// Per-statement direct gen/kill.
	gen := map[int]bitset{}
	kill := map[int]bitset{}
	for _, s := range info.Stmts {
		id := s.ID()
		gb, kb := newBitset(ns), newBitset(ns)
		for _, sym := range info.StmtDefs[id] {
			if sym.Kind != sem.Global {
				continue
			}
			for _, idx := range siteIdx[[2]int{id, sym.ID}] {
				gb.set(idx)
				if g.gsites[idx].Strong {
					for j, other := range g.gsites {
						if other.Sym == sym.ID && j != idx {
							kb.set(j)
						}
					}
				}
			}
		}
		gen[id] = gb
		kill[id] = kb
	}

	// Function names in deterministic order.
	var names []string
	for _, fd := range info.Prog.Funcs {
		names = append(names, fd.Name.Name)
	}

	entryIn := map[string]bitset{}
	exitOut := map[string]bitset{}
	for _, name := range names {
		entryIn[name] = newBitset(ns)
		exitOut[name] = newBitset(ns)
	}
	if _, ok := entryIn["main"]; ok {
		entryIn["main"].or(initBits)
	}

	in := map[string][]bitset{}
	out := map[string][]bitset{}
	for _, name := range names {
		fg := c.CFG.Funcs[name]
		in[name] = make([]bitset, len(fg.Nodes))
		out[name] = make([]bitset, len(fg.Nodes))
		for i := range fg.Nodes {
			in[name][i] = newBitset(ns)
			out[name][i] = newBitset(ns)
		}
	}

	calleeOuts := func(id int) bitset {
		acc := newBitset(ns)
		for _, callee := range info.StmtCalls[id] {
			if o, ok := exitOut[callee]; ok {
				acc.or(o)
			}
		}
		return acc
	}

	for changed := true; changed; {
		changed = false
		for _, name := range names {
			fg := c.CFG.Funcs[name]
			fin, fout := in[name], out[name]
			for pass := true; pass; {
				pass = false
				for _, node := range fg.Nodes {
					newIn := newBitset(ns)
					if node == fg.Entry {
						newIn.or(entryIn[name])
					}
					for _, e := range node.Preds {
						newIn.or(fout[e.To.Idx])
					}
					newOut := newIn.clone()
					if id := node.StmtID(); id != 0 {
						newOut.or(calleeOuts(id))
						newOut.andNot(kill[id])
						newOut.or(gen[id])
					}
					if !newIn.equal(fin[node.Idx]) || !newOut.equal(fout[node.Idx]) {
						fin[node.Idx] = newIn
						fout[node.Idx] = newOut
						pass = true
						changed = true
					}
				}
			}
			if !fin[fg.Exit.Idx].equal(exitOut[name]) {
				exitOut[name] = fin[fg.Exit.Idx].clone()
				changed = true
			}
			// Feed call-site entry sets to callees.
			fi := info.Funcs[name]
			for _, id := range fi.StmtIDs {
				for _, callee := range info.StmtCalls[id] {
					e, ok := entryIn[callee]
					if !ok {
						continue
					}
					node := fg.NodeOf(id)
					if node == nil {
						continue
					}
					add := fin[node.Idx].clone()
					add.or(calleeOuts(id))
					before := e.clone()
					e.or(add)
					if !e.equal(before) {
						changed = true
					}
				}
			}
		}
	}

	g.live = newBitset(ns)
	for _, name := range names {
		fg := c.CFG.Funcs[name]
		fi := info.Funcs[name]
		for _, id := range fi.StmtIDs {
			if node := fg.NodeOf(id); node != nil {
				g.reachIn[id] = in[name][node.Idx]
			}
			for _, sym := range info.StmtUses[id] {
				if sym.Kind != sem.Global {
					continue
				}
				bits := g.reachIn[id]
				for i, s := range g.gsites {
					if s.Sym == sym.ID && bits.get(i) {
						g.live.set(i)
					}
				}
			}
		}
	}
}

// buildEdges assembles the CSR edge array: control (CDKids), data
// (intraprocedural RD for locals/params, supergraph RD for globals) and
// interprocedural summary (call → callee body, return → call site).
func (g *Graph) buildEdges(c *interp.Compiled, flow *dataflow.Analysis) {
	adj := make([]map[int]depgraph.Kind, g.n+1)
	add := func(from, to int, k depgraph.Kind) {
		if from < 1 || from > g.n || to < 1 || to > g.n {
			return
		}
		if adj[from] == nil {
			adj[from] = map[int]depgraph.Kind{}
		}
		adj[from][to] |= k
	}

	for _, fd := range c.Prog.Funcs {
		fg := c.CFG.Funcs[fd.Name.Name]
		for pid, kids := range fg.CDKids {
			for _, label := range []cfg.Label{cfg.True, cfg.False, cfg.None} {
				for _, kid := range kids[label] {
					add(pid, kid, depgraph.Control)
				}
			}
		}
	}

	// Element refinement: the symbol-level RD answers treat an array as
	// one abstract object, but a def and a use whose indexes all fold to
	// constants with disjoint sets cannot exchange a value, so the edge
	// is dropped (elemSummary.disjoint documents the soundness).
	es := g.computeElemAccess()
	for _, s := range g.info.Stmts {
		u := s.ID()
		for _, sym := range g.info.StmtUses[u] {
			if sym.Kind == sem.Global {
				for _, d := range g.GlobalDefsReaching(u, sym.ID) {
					if es.disjoint(d, u, sym) {
						continue
					}
					add(d, u, depgraph.Data)
				}
			} else {
				for _, d := range flow.DefsReaching(u, sym.ID) {
					if es.disjoint(d, u, sym) {
						continue
					}
					add(d, u, depgraph.Data)
				}
			}
		}
	}

	for callee, sites := range g.calls {
		fi := g.info.Funcs[callee]
		for _, site := range sites {
			for _, id := range fi.StmtIDs {
				add(site, id, depgraph.Summary)
			}
		}
	}
	for name, fi := range g.info.Funcs {
		for _, id := range fi.StmtIDs {
			if _, ok := g.info.Stmt(id).(*ast.ReturnStmt); !ok {
				continue
			}
			for _, site := range g.calls[name] {
				add(id, site, depgraph.Summary)
			}
		}
	}

	g.rowStart = make([]int32, g.n+2)
	total := 0
	for id := 1; id <= g.n; id++ {
		total += len(adj[id])
	}
	g.edges = make([]depgraph.Edge, 0, total)
	for id := 1; id <= g.n; id++ {
		g.rowStart[id] = int32(len(g.edges))
		tos := make([]int, 0, len(adj[id]))
		for to := range adj[id] {
			tos = append(tos, to)
		}
		sort.Ints(tos)
		for _, to := range tos {
			k := adj[id][to]
			g.edges = append(g.edges, depgraph.Edge{To: to, Kind: k})
			if k&depgraph.Control != 0 {
				g.stats.ControlEdges++
			}
			if k&depgraph.Data != 0 {
				g.stats.DataEdges++
			}
			if k&depgraph.Summary != 0 {
				g.stats.SummaryEdges++
			}
		}
	}
	g.rowStart[g.n+1] = int32(len(g.edges))
	g.stats.Nodes = g.n
}

// buildCones precomputes, for every predicate statement, the forward
// closure of its control-dependence kids over the SPDG, and the
// harmless/silent summaries. Doing this eagerly keeps Graph immutable
// and race-free for sharing.
func (g *Graph) buildCones() {
	for _, s := range g.info.Stmts {
		if !ast.IsPredicate(s) {
			continue
		}
		p := s.ID()
		bits := newBitset(g.n + 1)
		var work []int
		push := func(id int) {
			if id >= 1 && id <= g.n && !bits.get(id) {
				bits.set(id)
				work = append(work, id)
			}
		}
		// Seed with the control-dependence kids of p (both branches and
		// unconditional kids); p's own condition evaluates identically in
		// the switched run, so p joins only via cycles.
		for i := g.rowStart[p]; i < g.rowStart[p+1]; i++ {
			e := g.edges[i]
			if e.Kind&depgraph.Control != 0 {
				push(e.To)
			}
		}
		for len(work) > 0 {
			id := work[len(work)-1]
			work = work[:len(work)-1]
			for i := g.rowStart[id]; i < g.rowStart[id+1]; i++ {
				push(g.edges[i].To)
			}
		}
		cn := &cone{bits: bits, harmless: true, silent: true, straight: true}
		for id := 1; id <= g.n; id++ {
			if !bits.get(id) {
				continue
			}
			if g.hazard[id] {
				cn.harmless = false
				cn.silent = false
			}
			if g.output[id] {
				cn.silent = false
			}
			switch st := g.info.Stmt(id); st.(type) {
			case *ast.ReturnStmt, *ast.BreakStmt, *ast.ContinueStmt:
				cn.straight = false
			default:
				if ast.IsPredicate(st) {
					cn.straight = false
				}
			}
		}
		g.cones[p] = cn
		g.stats.Predicates++
		if cn.harmless {
			g.stats.HarmlessCones++
		}
	}
}

// ---------------------------------------------------------------------------
// shared cache

// Cache shares SPDGs across users of the same program, keyed by source
// text — the corpus driver's analog of its compile cache: subjects of
// one program family build the graph once and share it read-only.
type Cache struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	g    *Graph
}

// NewCache returns an empty SPDG cache.
func NewCache() *Cache { return &Cache{m: map[string]*cacheEntry{}} }

// Get returns the SPDG for c, building it at most once per source text.
func (cc *Cache) Get(c *interp.Compiled) *Graph {
	cc.mu.Lock()
	e, ok := cc.m[c.Src]
	if !ok {
		e = &cacheEntry{}
		cc.m[c.Src] = e
	}
	cc.mu.Unlock()
	e.once.Do(func() { e.g = New(c, nil) })
	return e.g
}

// ---------------------------------------------------------------------------
// bitset (private copy of the dataflow idiom)

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) grow(n int) bitset {
	need := (n + 63) / 64
	if len(b) >= need {
		return b
	}
	nb := make(bitset, need)
	copy(nb, b)
	return nb
}

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) get(i int) bool { return i/64 < len(b) && b[i/64]&(1<<uint(i%64)) != 0 }

func (b bitset) clone() bitset {
	nb := make(bitset, len(b))
	copy(nb, b)
	return nb
}

func (b bitset) or(o bitset) {
	for i := range o {
		if i < len(b) {
			b[i] |= o[i]
		}
	}
}

func (b bitset) andNot(o bitset) {
	for i := range o {
		if i < len(b) {
			b[i] &^= o[i]
		}
	}
}

func (b bitset) equal(o bitset) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}
