package staticdep

import (
	"strings"
	"testing"

	"eol/internal/depgraph"
	"eol/internal/interp"
	"eol/internal/lang/ast"
)

func compile(t *testing.T, src string) *interp.Compiled {
	t.Helper()
	c, err := interp.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

// stmtByFrag resolves the unique statement whose source rendering
// contains frag.
func stmtByFrag(t *testing.T, c *interp.Compiled, frag string) int {
	t.Helper()
	id := 0
	for _, s := range c.Info.Stmts {
		if strings.Contains(ast.StmtString(s), frag) {
			if id != 0 {
				t.Fatalf("fragment %q is ambiguous", frag)
			}
			id = s.ID()
		}
	}
	if id == 0 {
		t.Fatalf("fragment %q not found", frag)
	}
	return id
}

const crossSrc = `
var g;
var sum;

func bump() {
    if (sum > 10) {
        g = 1;
    }
}

func report() {
    sum = sum + g;
    print(sum);
}

func main() {
    sum = read();
    bump();
    g = 2;
    report();
}
`

func TestSPDGBasics(t *testing.T) {
	c := compile(t, crossSrc)
	g := New(c, nil)
	st := g.Stats()
	if st.Nodes != c.Info.NumStmts() {
		t.Errorf("Nodes = %d, want %d", st.Nodes, c.Info.NumStmts())
	}
	if st.ControlEdges == 0 || st.DataEdges == 0 || st.SummaryEdges == 0 {
		t.Errorf("expected all edge kinds, got %+v", st)
	}
	if st.Predicates != 1 {
		t.Errorf("Predicates = %d, want 1", st.Predicates)
	}
	// Succs are ascending and rows cover all IDs.
	for id := 1; id <= g.NumStmts(); id++ {
		es := g.Succs(id)
		for i := 1; i < len(es); i++ {
			if es[i-1].To >= es[i].To {
				t.Fatalf("Succs(%d) not strictly ascending: %v", id, es)
			}
		}
	}
}

// TestGlobalReachingKill: main's unconditional g = 2 kills bump's
// guarded g = 1 before report reads g, so the interprocedural reach
// excludes it — the sharpening over the flow-insensitive mod/ref view.
func TestGlobalReachingKill(t *testing.T) {
	c := compile(t, crossSrc)
	g := New(c, nil)
	def := stmtByFrag(t, c, "g = 1")
	kill := stmtByFrag(t, c, "g = 2")
	use := stmtByFrag(t, c, "sum = sum + g")
	gsym := -1
	for _, sym := range c.Info.StmtUses[use] {
		if sym.Name == "g" {
			gsym = sym.ID
		}
	}
	if gsym < 0 {
		t.Fatal("no use of g at use statement")
	}
	reach := g.GlobalDefsReaching(use, gsym)
	for _, d := range reach {
		if d == def {
			t.Errorf("killed definition %d still reaches use %d: %v", def, use, reach)
		}
	}
	found := false
	for _, d := range reach {
		if d == kill {
			found = true
		}
	}
	if !found {
		t.Errorf("killing definition %d missing from reach set %v", kill, reach)
	}
}

// TestConeKill: with the guarded g = 1 killed before any read, the
// predicate's cone must not contain the downstream use of g, and the
// cone stays harmless (no faults or reads inside).
func TestConeKill(t *testing.T) {
	c := compile(t, crossSrc)
	g := New(c, nil)
	pred := stmtByFrag(t, c, "sum > 10")
	def := stmtByFrag(t, c, "g = 1")
	use := stmtByFrag(t, c, "sum = sum + g")
	if !g.InCone(pred, def) {
		t.Errorf("guarded definition %d not in cone of %d", def, pred)
	}
	if g.InCone(pred, use) {
		t.Errorf("killed flow: use %d must be outside cone of %d", use, pred)
	}
	if !g.ConeHarmless(pred) {
		t.Errorf("cone of %d should be harmless", pred)
	}
}

// TestConeCallOrder: a definition inside a function only called after
// the use executes cannot reach it (no loop re-enters the caller), so
// the use stays outside the predicate's cone.
func TestConeCallOrder(t *testing.T) {
	src := `
var flag;

func late() {
    if (flag > 0) {
        flag = flag + 1;
    }
}

func main() {
    flag = read();
    var v = flag * 2;
    print(v);
    late();
}
`
	c := compile(t, src)
	g := New(c, nil)
	pred := stmtByFrag(t, c, "flag > 0")
	use := stmtByFrag(t, c, "var v = flag * 2")
	if g.InCone(pred, use) {
		t.Errorf("use %d executes before late() is ever called; cone of %d must exclude it", use, pred)
	}
	if !g.ConeHarmless(pred) {
		t.Errorf("cone of %d should be harmless", pred)
	}
}

// TestConeLoopFeedback: the same shape inside a loop re-enters the
// caller, so the definition does reach the earlier use statement.
func TestConeLoopFeedback(t *testing.T) {
	src := `
var flag;

func late() {
    if (flag > 0) {
        flag = flag + 1;
    }
}

func main() {
    flag = read();
    var i = 0;
    while (i < 3) {
        var v = flag * 2;
        print(v);
        late();
        i = i + 1;
    }
}
`
	c := compile(t, src)
	g := New(c, nil)
	pred := stmtByFrag(t, c, "flag > 0")
	use := stmtByFrag(t, c, "var v = flag * 2")
	if !g.InCone(pred, use) {
		t.Errorf("loop feeds late()'s write back to use %d; cone of %d must include it", use, pred)
	}
}

func TestMayRef(t *testing.T) {
	c := compile(t, crossSrc)
	g := New(c, nil)
	var gID, sumID int
	for _, sym := range c.Info.Symbols {
		switch sym.Name {
		case "g":
			gID = sym.ID
		case "sum":
			sumID = sym.ID
		}
	}
	if !g.MayRef("report")[gID] || !g.MayRef("report")[sumID] {
		t.Errorf("report must ref g and sum: %v", g.MayRef("report"))
	}
	if !g.MayRef("main")[gID] {
		t.Errorf("main must ref g transitively through report: %v", g.MayRef("main"))
	}
	if g.MayRef("bump")[gID] {
		t.Errorf("bump only writes g, must not ref it: %v", g.MayRef("bump"))
	}
}

func TestDeadGlobalStores(t *testing.T) {
	src := `
var used;
var dead;

func main() {
    used = read();
    dead = used + 1;
    print(used);
}
`
	c := compile(t, src)
	g := New(c, nil)
	deadStmt := stmtByFrag(t, c, "dead = used + 1")
	got := g.DeadGlobalStores()
	if len(got) != 1 || got[0] != deadStmt {
		t.Errorf("DeadGlobalStores = %v, want [%d]", got, deadStmt)
	}
}

func TestConeSilent(t *testing.T) {
	src := `
var bookkeeping;

func main() {
    var x = read();
    if (x > 0) {
        bookkeeping = 1;
    }
    if (x > 1) {
        print(x);
    }
}
`
	c := compile(t, src)
	g := New(c, nil)
	silent := stmtByFrag(t, c, "x > 0")
	loud := stmtByFrag(t, c, "x > 1")
	if !g.ConeSilent(silent) {
		t.Errorf("cone of %d writes only an unread global: want silent", silent)
	}
	if g.ConeSilent(loud) {
		t.Errorf("cone of %d prints: want not silent", loud)
	}
}

// TestSummaryEdges: a call site links to the callee body, and the
// callee's return statement links back to every call site.
func TestSummaryEdges(t *testing.T) {
	src := `
func twice(v) {
    return v * 2;
}

func main() {
    var a = read();
    var b = twice(a);
    print(b);
}
`
	c := compile(t, src)
	g := New(c, nil)
	call := stmtByFrag(t, c, "var b = twice(a)")
	ret := stmtByFrag(t, c, "return v * 2")
	hasKind := func(from, to int, k depgraph.Kind) bool {
		for _, e := range g.Succs(from) {
			if e.To == to && e.Kind&k != 0 {
				return true
			}
		}
		return false
	}
	if !hasKind(call, ret, depgraph.Summary) {
		t.Errorf("missing call→body summary edge %d→%d", call, ret)
	}
	if !hasKind(ret, call, depgraph.Summary) {
		t.Errorf("missing return→call summary edge %d→%d", ret, call)
	}
}

func TestCacheShares(t *testing.T) {
	c1 := compile(t, crossSrc)
	c2 := compile(t, crossSrc)
	cc := NewCache()
	if cc.Get(c1) != cc.Get(c2) {
		t.Error("same source must share one SPDG")
	}
	other := compile(t, "func main() { print(read()); }")
	if cc.Get(other) == cc.Get(c1) {
		t.Error("different sources must not share")
	}
}
