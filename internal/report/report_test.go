package report

import (
	"strings"
	"testing"

	"eol/internal/core"
	"eol/internal/oracle"
	"eol/internal/testsupport"
)

func TestMarkdownReport(t *testing.T) {
	c := testsupport.Compile(t, testsupport.Fig1Faulty)
	fixed := testsupport.Compile(t, testsupport.Fig1Fixed)
	expected := testsupport.Run(t, fixed, testsupport.Fig1Input).OutputValues()
	root := testsupport.StmtID(t, c, "read() * 0")

	rep, err := core.Locate(&core.Spec{
		Program:   c,
		Input:     testsupport.Fig1Input,
		Expected:  expected,
		RootCause: []int{root},
		Oracle:    &oracle.StateOracle{Correct: testsupport.Run(t, fixed, testsupport.Fig1Input).Trace},
	})
	if err != nil {
		t.Fatal(err)
	}
	md := Markdown(Input{Program: c, Report: rep, RootCause: []int{root}})

	for _, want := range []string{
		"# Execution omission localization report",
		"## Failure",
		"printed **0**, expected **8**",
		"## Slices",
		"| dynamic slice (DS) |",
		"| no |", // DS misses the root
		"## Verification log",
		"STRONG_ID",
		"## Verified implicit dependences",
		"--sid-->",
		"## Fault candidates",
		"← **ROOT CAUSE**",
		"**Root cause located:**",
		"read() * 0",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q\n----\n%s", want, md)
		}
	}
}

func TestMarkdownReportNotLocated(t *testing.T) {
	// The Table 5(b) case without the perturbation fallback: not located.
	faulty := `
func main() {
    var A = read() * 0 + 5;
    var X = 1;
    if (A > 10) {
        if (A > 100) {
            X = 2;
        }
    }
    print(X);
}`
	c := testsupport.Compile(t, faulty)
	root := testsupport.StmtID(t, c, "read() * 0 + 5")
	rep, err := core.Locate(&core.Spec{
		Program:   c,
		Input:     []int64{200},
		Expected:  []int64{2},
		RootCause: []int{root},
	})
	if err != nil {
		t.Fatal(err)
	}
	md := Markdown(Input{Program: c, Report: rep, RootCause: []int{root}})
	if !strings.Contains(md, "**Root cause not located.**") {
		t.Errorf("report should state the miss:\n%s", md)
	}
}
