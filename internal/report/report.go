// Package report renders a human-readable debugging report for one
// localization run: the failure observation, the slice comparison, the
// verification log (which predicate switches were tried and what they
// proved), the verified implicit dependence edges, and the final fault
// candidate set with source excerpts — the artifact a programmer would
// actually read after running the tool.
package report

import (
	"fmt"
	"io"
	"strings"

	"eol/internal/core"
	"eol/internal/ddg"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/slicing"
	"eol/internal/trace"
)

// Input bundles what the renderer needs.
type Input struct {
	Program *interp.Compiled
	Report  *core.Report
	// RootCause, if known (seeded-fault evaluation), is highlighted.
	RootCause []int
}

// WriteMarkdown renders the report as markdown.
func WriteMarkdown(w io.Writer, in Input) error {
	p := in.Program
	rep := in.Report
	tr := rep.Trace

	stmtText := func(id int) string {
		s := p.Info.Stmt(id)
		if s == nil {
			return "?"
		}
		return ast.StmtString(s)
	}
	instText := func(i trace.Instance) string {
		return fmt.Sprintf("`%v` `%s`", i, stmtText(i.Stmt))
	}
	isRoot := func(stmt int) bool {
		for _, rc := range in.RootCause {
			if rc == stmt {
				return true
			}
		}
		return false
	}

	fmt.Fprintf(w, "# Execution omission localization report\n\n")

	// Failure observation.
	fmt.Fprintf(w, "## Failure\n\n")
	at := tr.At(rep.WrongOutput.Entry).Inst
	fmt.Fprintf(w, "Output #%d printed **%d**, expected **%d**, at %s.\n\n",
		rep.WrongOutput.Seq, rep.WrongOutput.Value, rep.Vexp, instText(at))

	// Slice comparison.
	g := ddg.New(tr)
	ds := slicing.Dynamic(g, rep.WrongOutput.Entry)
	dsStats := g.Stats(ds)
	fmt.Fprintf(w, "## Slices\n\n")
	fmt.Fprintf(w, "| slice | statements | instances | contains root cause |\n")
	fmt.Fprintf(w, "|---|---|---|---|\n")
	containsRoot := func(set *ddg.Set) string {
		if len(in.RootCause) == 0 {
			return "n/a"
		}
		for _, rc := range in.RootCause {
			if g.ContainsStmt(set, rc) {
				return "yes"
			}
		}
		return "no"
	}
	fmt.Fprintf(w, "| dynamic slice (DS) | %d | %d | %s |\n",
		dsStats.Static, dsStats.Dynamic, containsRoot(ds))
	ips := ddg.NewSet(tr.Len())
	for _, e := range rep.IPSEntries {
		ips.Add(e)
	}
	fmt.Fprintf(w, "| final pruned expanded slice (IPS) | %d | %d | %s |\n\n",
		rep.IPS.Static, rep.IPS.Dynamic, containsRoot(ips))

	// Counters.
	fmt.Fprintf(w, "## Effort\n\n")
	fmt.Fprintf(w, "%d user prunings, %d verifications, %d expansion iterations, %d implicit edges added (%d strong).\n\n",
		rep.Stats.UserPrunings, rep.Stats.Verifications, rep.Stats.Iterations,
		rep.Stats.ExpandedEdges, rep.Graph.NumExtraEdges(ddg.StrongImplicit))

	// Verification log.
	if len(rep.VerifyLog) > 0 {
		fmt.Fprintf(w, "## Verification log\n\n")
		for i, le := range rep.VerifyLog {
			mode := "switch"
			if le.Perturbed {
				mode = "perturb"
			}
			fmt.Fprintf(w, "%2d. %s %s → affects %s: **%s**",
				i+1, mode, instText(le.Pred), instText(le.Use), le.Verdict)
			if le.Perturbed && le.Verdict != 0 {
				fmt.Fprintf(w, " (witness value %d)", le.Value)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}

	// Verified edges.
	var edges []string
	for i := 0; i < tr.Len(); i++ {
		for _, e := range rep.Graph.ExtraEdges(i) {
			if e.Kind == ddg.Implicit || e.Kind == ddg.StrongImplicit {
				edges = append(edges, fmt.Sprintf("- %s --%s--> %s",
					instText(tr.At(i).Inst), e.Kind, instText(tr.At(e.To).Inst)))
			}
		}
	}
	if len(edges) > 0 {
		fmt.Fprintf(w, "## Verified implicit dependences\n\n%s\n\n", strings.Join(edges, "\n"))
	}

	// Final candidates.
	fmt.Fprintf(w, "## Fault candidates (most suspicious first)\n\n")
	for i, e := range rep.IPSEntries {
		inst := tr.At(e).Inst
		marker := ""
		if isRoot(inst.Stmt) {
			marker = "  ← **ROOT CAUSE**"
		}
		conf := 0.0
		if i < len(rep.IPSConfidence) {
			conf = rep.IPSConfidence[i]
		}
		fmt.Fprintf(w, "%2d. %s (confidence %.3f)%s\n", i+1, instText(inst), conf, marker)
	}
	fmt.Fprintln(w)

	if rep.Located {
		inst := tr.At(rep.RootEntry).Inst
		fmt.Fprintf(w, "**Root cause located:** %s\n", instText(inst))
	} else if len(in.RootCause) > 0 {
		fmt.Fprintf(w, "**Root cause not located.**\n")
	}
	return nil
}

// Markdown renders to a string.
func Markdown(in Input) string {
	var sb strings.Builder
	_ = WriteMarkdown(&sb, in)
	return sb.String()
}
