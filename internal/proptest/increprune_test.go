package proptest

// End-to-end differential property for the incremental dependence-graph
// engine: running the full locator with incremental re-pruning on vs off
// must produce identical diagnoses — verdict, counters, VerifyLog, IPS
// entries and confidences — on randomly generated subjects with injected
// execution-omission faults. This is the whole-pipeline complement to
// the analyzer-level fuzz in internal/confidence.

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"eol/internal/core"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/oracle"
	"eol/internal/slicing"
	"eol/internal/testsupport"
)

func TestIncrementalRepruneDifferential(t *testing.T) {
	rnd := rand.New(rand.NewSource(20070611)) // PLDI 2007 conference date
	applicable := 0

	for i := 0; i < 300 && applicable < 12; i++ {
		src := testsupport.RandomProgram(rnd, testsupport.GenConfig{})
		correct, err := interp.Compile(src)
		if err != nil {
			t.Fatalf("generator produced a bad program: %v", err)
		}

		// Silence one if-condition, as in TestRandomFaultInjection.
		var ifs []string
		for _, s := range correct.Info.Stmts {
			if _, ok := s.(*ast.IfStmt); ok {
				text := ast.StmtString(s)
				if strings.Count(src, text[3:]) == 1 {
					ifs = append(ifs, text)
				}
			}
		}
		if len(ifs) == 0 {
			continue
		}
		target := ifs[rnd.Intn(len(ifs))]
		cond := strings.TrimSuffix(strings.TrimPrefix(target, "if ("), ")")
		faultySrc := strings.Replace(src, "if ("+cond+")", "if (("+cond+") && 0)", 1)
		faulty, err := interp.Compile(faultySrc)
		if err != nil || faulty.Info.NumStmts() != correct.Info.NumStmts() {
			continue
		}
		if testsupport.Validate(faulty) != nil {
			continue
		}

		var in []int64
		var cr *interp.Result
		exposed := false
		for try := 0; try < 8 && !exposed; try++ {
			in = testsupport.RandomInput(rnd, inputLen)
			cr = interp.Run(correct, interp.Options{Input: in, BuildTrace: true})
			fr := interp.Run(faulty, interp.Options{Input: in})
			if cr.Err != nil || fr.Err != nil {
				continue
			}
			seq, missing, ok := slicing.FirstWrongOutput(fr.OutputValues(), cr.OutputValues())
			if ok && !missing && seq >= 0 {
				exposed = true
			}
		}
		if !exposed {
			continue
		}
		applicable++

		root := 0
		for _, s := range faulty.Info.Stmts {
			if strings.Contains(ast.StmtString(s), "&& 0") {
				root = s.ID()
			}
		}

		specOf := func(noInc bool) *core.Spec {
			return &core.Spec{
				Program:       faulty,
				Input:         in,
				Expected:      cr.OutputValues(),
				RootCause:     []int{root},
				Oracle:        &oracle.StateOracle{Correct: cr.Trace},
				NoIncremental: noInc,
			}
		}
		want, err := core.Locate(specOf(true))
		if err != nil {
			t.Fatalf("Locate (full) crashed:\n%s\nerror: %v", faultySrc, err)
		}
		got, err := core.Locate(specOf(false))
		if err != nil {
			t.Fatalf("Locate (incremental) crashed:\n%s\nerror: %v", faultySrc, err)
		}

		if got.Located != want.Located || got.RootEntry != want.RootEntry {
			t.Fatalf("located %v@%d incremental, %v@%d full\n%s",
				got.Located, got.RootEntry, want.Located, want.RootEntry, faultySrc)
		}
		if got.Stats.UserPrunings != want.Stats.UserPrunings ||
			got.Stats.Verifications != want.Stats.Verifications ||
			got.Stats.Iterations != want.Stats.Iterations ||
			got.Stats.ExpandedEdges != want.Stats.ExpandedEdges {
			t.Fatalf("counter divergence incremental vs full on:\n%s", faultySrc)
		}
		if !reflect.DeepEqual(got.VerifyLog, want.VerifyLog) {
			t.Fatalf("VerifyLog divergence incremental vs full on:\n%s", faultySrc)
		}
		if !reflect.DeepEqual(got.IPSEntries, want.IPSEntries) ||
			!reflect.DeepEqual(got.IPSConfidence, want.IPSConfidence) {
			t.Fatalf("IPS divergence incremental vs full on:\n%s", faultySrc)
		}
	}
	if applicable < 6 {
		t.Fatalf("only %d applicable injected faults; generator too tame", applicable)
	}
	t.Logf("%d injected-fault subjects agreed incremental vs full", applicable)
}
