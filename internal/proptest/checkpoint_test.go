package proptest

import (
	"fmt"
	"reflect"
	"testing"

	"eol/internal/cfg"
	"eol/internal/interp"
	"eol/internal/trace"
)

// TestCheckpointForkEquivalence is the checkpoint differential fuzz: for
// every generated subject, capture a checkpoint store during the traced
// run, then — for a spread of switched predicates — compare the
// checkpoint-forked switched run against a full switched run. Every
// observable field must be DeepEqual: steps, error, rendered output,
// output records, and the complete trace (entries, children, roots).
// This is the byte-identity contract of interp.RunFrom checked over the
// random-program space instead of hand-written cases.
func TestCheckpointForkEquivalence(t *testing.T) {
	forks, falls := 0, 0
	eachRandomRun(t, func(t *testing.T, c *interp.Compiled, in []int64, r *interp.Result) {
		// Re-run with a store attached; the captured run itself must be
		// unchanged by capturing.
		st := interp.NewCheckpointStore(0)
		ck := interp.Run(c, interp.Options{Input: in, BuildTrace: true, Checkpoints: st})
		if ck.Err != nil {
			t.Fatalf("captured run failed: %v", ck.Err)
		}
		if ck.Steps != r.Steps || ck.Rendered != r.Rendered {
			t.Fatalf("capturing changed the run: steps %d vs %d", ck.Steps, r.Steps)
		}

		var preds []int
		for i := 0; i < ck.Trace.Len(); i++ {
			if ck.Trace.At(i).Branch != cfg.None {
				preds = append(preds, i)
			}
		}
		if len(preds) == 0 {
			return
		}
		// A spread of switch targets: first, middle, last.
		targets := []int{preds[0], preds[len(preds)/2], preds[len(preds)-1]}
		for _, p := range targets {
			inst := ck.Trace.At(p).Inst
			opts := interp.Options{
				Input:      in,
				Switch:     &interp.SwitchPlan{Stmt: inst.Stmt, Occ: inst.Occ},
				StepBudget: 10*ck.Trace.Len() + 1000,
			}
			full := interp.Run(c, interp.Options{
				Input: opts.Input, Switch: opts.Switch,
				StepBudget: opts.StepBudget, BuildTrace: true,
			})
			forked := interp.RunSwitchedFromStore(st, ck.Trace, c, opts)
			if forked == nil {
				falls++ // no checkpoint before this predicate: full-run fallback
				continue
			}
			forks++
			label := fmt.Sprintf("switch %v from ck", inst)
			if forked.Steps != full.Steps || forked.SwitchApplied != full.SwitchApplied {
				t.Fatalf("%s: steps/applied %d/%v, want %d/%v",
					label, forked.Steps, forked.SwitchApplied, full.Steps, full.SwitchApplied)
			}
			if fmt.Sprint(forked.Err) != fmt.Sprint(full.Err) {
				t.Fatalf("%s: err %v, want %v", label, forked.Err, full.Err)
			}
			if forked.Rendered != full.Rendered {
				t.Fatalf("%s: rendered output diverged", label)
			}
			if !reflect.DeepEqual(forked.Outputs, full.Outputs) {
				t.Fatalf("%s: outputs %v, want %v", label, forked.Outputs, full.Outputs)
			}
			assertTraceDeepEqual(t, label, full.Trace, forked.Trace)
		}
	})
	if forks == 0 {
		t.Fatal("no fork ever happened: the differential never exercised RunFrom")
	}
	t.Logf("forked %d switched runs (%d fell back to full runs)", forks, falls)
}

func assertTraceDeepEqual(t *testing.T, label string, want, got *trace.Trace) {
	t.Helper()
	if (want == nil) != (got == nil) {
		t.Fatalf("%s: trace presence differs", label)
	}
	if want == nil {
		return
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: trace len %d, want %d", label, got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if !reflect.DeepEqual(*got.At(i), *want.At(i)) {
			t.Fatalf("%s: entry %d = %+v, want %+v", label, i, *got.At(i), *want.At(i))
		}
		if !reflect.DeepEqual(got.Children(i), want.Children(i)) {
			t.Fatalf("%s: children(%d) = %v, want %v", label, i, got.Children(i), want.Children(i))
		}
	}
	if !reflect.DeepEqual(got.Roots(), want.Roots()) {
		t.Fatalf("%s: roots diverged", label)
	}
}
