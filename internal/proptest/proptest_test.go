// Package proptest holds cross-cutting property-based tests: invariants
// of the dynamic analyses checked over randomly generated MiniC programs
// (internal/testsupport.RandomProgram) rather than hand-written cases.
package proptest

import (
	"math/rand"
	"testing"

	"eol/internal/align"
	"eol/internal/confidence"
	"eol/internal/ddg"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/oracle"
	"eol/internal/slicing"
	"eol/internal/testsupport"
	"eol/internal/trace"
)

const (
	numPrograms = 60
	inputLen    = 24
)

// eachRandomRun generates programs and traced runs and invokes f.
func eachRandomRun(t *testing.T, f func(t *testing.T, c *interp.Compiled, in []int64, r *interp.Result)) {
	t.Helper()
	rnd := rand.New(rand.NewSource(20070611)) // PLDI 2007's opening day
	for i := 0; i < numPrograms; i++ {
		src := testsupport.RandomProgram(rnd, testsupport.GenConfig{})
		c, err := interp.Compile(src)
		if err != nil {
			t.Fatalf("program %d does not compile: %v\n%s", i, err, src)
		}
		testsupport.MustValid(t, c) // generator contract: no ill-formed subjects
		in := testsupport.RandomInput(rnd, inputLen)
		r := interp.Run(c, interp.Options{Input: in, BuildTrace: true})
		if r.Err != nil {
			t.Fatalf("program %d failed at runtime: %v\n%s", i, r.Err, src)
		}
		f(t, c, in, r)
	}
}

// TestGeneratedProgramsTerminateCleanly is the generator's own contract.
func TestGeneratedProgramsTerminateCleanly(t *testing.T) {
	eachRandomRun(t, func(t *testing.T, c *interp.Compiled, in []int64, r *interp.Result) {
		if r.Steps == 0 {
			t.Fatal("empty execution")
		}
		if len(r.Outputs) == 0 {
			t.Fatal("no outputs (main always prints)")
		}
	})
}

// TestDeterminismProperty: identical input => identical trace.
func TestDeterminismProperty(t *testing.T) {
	eachRandomRun(t, func(t *testing.T, c *interp.Compiled, in []int64, r *interp.Result) {
		r2 := interp.Run(c, interp.Options{Input: in, BuildTrace: true})
		if r2.Err != nil || r2.Trace.Len() != r.Trace.Len() {
			t.Fatalf("non-deterministic re-run: err=%v len %d vs %d", r2.Err, r2.Trace.Len(), r.Trace.Len())
		}
		for i := 0; i < r.Trace.Len(); i++ {
			a, b := r.Trace.At(i), r2.Trace.At(i)
			if a.Inst != b.Inst || a.Parent != b.Parent || a.Value != b.Value || a.Branch != b.Branch {
				t.Fatalf("entry %d differs: %+v vs %+v", i, a, b)
			}
		}
	})
}

// TestRegionTreeInvariants: parents precede children; children are in
// execution order; every non-root parent is a predicate or a call site;
// the Euler ancestry index agrees with the parent-chain walk.
func TestRegionTreeInvariants(t *testing.T) {
	eachRandomRun(t, func(t *testing.T, c *interp.Compiled, in []int64, r *interp.Result) {
		tr := r.Trace
		anc := tr.Ancestry()
		for i := 0; i < tr.Len(); i++ {
			p := tr.At(i).Parent
			if p >= i {
				t.Fatalf("entry %d has parent %d", i, p)
			}
			if p >= 0 {
				st := c.Info.Stmt(tr.At(p).Inst.Stmt)
				isCallSite := len(c.Info.StmtCalls[tr.At(p).Inst.Stmt]) > 0
				if !ast.IsPredicate(st) && !isCallSite {
					t.Fatalf("parent %d (%s) is neither predicate nor call site",
						p, ast.StmtString(st))
				}
			}
			kids := tr.Children(i)
			for j := 1; j < len(kids); j++ {
				if kids[j] <= kids[j-1] {
					t.Fatalf("children of %d out of order: %v", i, kids)
				}
			}
			// Sampled ancestry agreement.
			if i%7 == 0 {
				for j := i; j < tr.Len() && j < i+11; j++ {
					if anc.IsAncestor(i, j) != tr.IsAncestor(i, j) {
						t.Fatalf("ancestry index disagrees for (%d,%d)", i, j)
					}
				}
			}
		}
	})
}

// TestSliceOrderingProperty: for every output, DS ⊆ RS, both contain the
// seed, and all their entries precede-or-equal the seed.
func TestSliceOrderingProperty(t *testing.T) {
	eachRandomRun(t, func(t *testing.T, c *interp.Compiled, in []int64, r *interp.Result) {
		tr := r.Trace
		cx := slicing.NewContext(c, tr)
		for _, o := range tr.Outputs {
			gDS := ddg.New(tr)
			ds := slicing.Dynamic(gDS, o.Entry)
			gRS := ddg.New(tr)
			rs := cx.Relevant(gRS, o.Entry)
			if !ds.Has(o.Entry) || !rs.Has(o.Entry) {
				t.Fatal("slice missing its seed")
			}
			anc := tr.Ancestry()
			ds.ForEach(func(e int) {
				if !rs.Has(e) {
					t.Fatalf("DS entry %d not in RS", e)
				}
				// Entries are allocated pre-order, so a callee executed
				// *during* the seed statement has a larger index; every
				// slice entry either precedes the seed or lies in its
				// region subtree.
				if e > o.Entry && !anc.IsAncestor(o.Entry, e) {
					t.Fatalf("slice entry %d after the seed %d and outside its region", e, o.Entry)
				}
			})
			break // one output per program keeps the test fast
		}
	})
}

// TestSelfPairingAllBenign: pairing a trace against an identical run
// marks every entry benign — the ground-truth oracle's sanity condition.
func TestSelfPairingAllBenign(t *testing.T) {
	eachRandomRun(t, func(t *testing.T, c *interp.Compiled, in []int64, r *interp.Result) {
		r2 := interp.Run(c, interp.Options{Input: in, BuildTrace: true})
		p := oracle.Pair(r.Trace, r2.Trace)
		for e := 0; e < r.Trace.Len(); e++ {
			if !p.Benign(e) {
				t.Fatalf("self-pairing marked entry %d (%v) corrupted",
					e, r.Trace.At(e).Inst)
			}
		}
	})
}

// TestSwitchAlignmentProperties: for a sampled predicate instance p,
// (a) the switched run marks p switched and flips its branch,
// (b) every entry before p matches itself under alignment,
// (c) Match is a partial injection: no two distinct original points map
// to the same switched point.
func TestSwitchAlignmentProperties(t *testing.T) {
	eachRandomRun(t, func(t *testing.T, c *interp.Compiled, in []int64, r *interp.Result) {
		tr := r.Trace
		// pick the middlemost predicate instance
		pIdx := -1
		for i := tr.Len() / 2; i < tr.Len(); i++ {
			if ast.IsPredicate(c.Info.Stmt(tr.At(i).Inst.Stmt)) {
				pIdx = i
				break
			}
		}
		if pIdx < 0 {
			return
		}
		p := tr.At(pIdx).Inst
		sw := interp.Run(c, interp.Options{
			Input: in, BuildTrace: true,
			Switch:     &interp.SwitchPlan{Stmt: p.Stmt, Occ: p.Occ},
			StepBudget: 20 * tr.Len(),
		})
		if sw.Err != nil || !sw.SwitchApplied {
			return
		}
		pPrime := sw.Trace.FindInstance(p)
		if pPrime < 0 {
			t.Fatal("switched predicate instance missing from its own run")
		}
		if sw.Trace.At(pPrime).Branch == tr.At(pIdx).Branch {
			t.Fatal("switch did not flip the branch")
		}

		anc := tr.Ancestry()
		seen := map[int]int{}
		for u := 0; u < tr.Len(); u++ {
			if u != pIdx && anc.IsAncestor(pIdx, u) {
				continue // inside p's region: out of Match's contract
			}
			m, ok := align.Match(tr, sw.Trace, p, u)
			if u < pIdx {
				// prefix identity: every earlier point matches itself
				if !ok || m != u {
					t.Fatalf("prefix entry %d matched (%d,%v), want itself", u, m, ok)
				}
			}
			if ok {
				if prev, dup := seen[m]; dup {
					t.Fatalf("entries %d and %d both match %d", prev, u, m)
				}
				seen[m] = u
				if sw.Trace.At(m).Inst.Stmt != tr.At(u).Inst.Stmt {
					t.Fatalf("entry %d (S%d) matched a different statement S%d",
						u, tr.At(u).Inst.Stmt, sw.Trace.At(m).Inst.Stmt)
				}
			}
		}
	})
}

// TestPotentialDepsRespectDefinition: every PD instance satisfies the
// checkable conditions of Definition 1: it precedes the use, it is a
// predicate, and the use is not its region descendant.
func TestPotentialDepsRespectDefinition(t *testing.T) {
	eachRandomRun(t, func(t *testing.T, c *interp.Compiled, in []int64, r *interp.Result) {
		tr := r.Trace
		cx := slicing.NewContext(c, tr)
		anc := tr.Ancestry()
		// sample a few entries
		for i := 0; i < tr.Len(); i += 1 + tr.Len()/10 {
			for _, pd := range cx.PotentialDeps(i) {
				if pd.Pred >= i {
					t.Fatalf("PD instance %d does not precede use %d", pd.Pred, i)
				}
				if !ast.IsPredicate(c.Info.Stmt(tr.At(pd.Pred).Inst.Stmt)) {
					t.Fatalf("PD instance %d is not a predicate", pd.Pred)
				}
				if anc.IsAncestor(pd.Pred, i) {
					t.Fatalf("use %d is control dependent on its PD %d", i, pd.Pred)
				}
			}
		}
	})
}

// TestOccurrenceIndexesAgree: InstancesOf and Occurrences and
// FindInstance are mutually consistent.
func TestOccurrenceIndexesAgree(t *testing.T) {
	eachRandomRun(t, func(t *testing.T, c *interp.Compiled, in []int64, r *interp.Result) {
		tr := r.Trace
		for id := 1; id <= c.Info.NumStmts(); id++ {
			insts := tr.InstancesOf(id)
			if len(insts) != tr.Occurrences(id) {
				t.Fatalf("S%d: InstancesOf %d vs Occurrences %d", id, len(insts), tr.Occurrences(id))
			}
			for k, idx := range insts {
				want := trace.Instance{Stmt: id, Occ: k + 1}
				if tr.At(idx).Inst != want {
					t.Fatalf("S%d instance %d: %v != %v", id, k, tr.At(idx).Inst, want)
				}
				if tr.FindInstance(want) != idx {
					t.Fatalf("FindInstance(%v) = %d, want %d", want, tr.FindInstance(want), idx)
				}
			}
		}
	})
}

// TestDynamicCDAgreesWithStaticCD: the interpreter's dynamic control
// parent must always be justified by the static analysis — the parent's
// statement is a static control-dependence source of the child's
// statement (or a call site for callee top-levels).
func TestDynamicCDAgreesWithStaticCD(t *testing.T) {
	eachRandomRun(t, func(t *testing.T, c *interp.Compiled, in []int64, r *interp.Result) {
		tr := r.Trace
		for i := 0; i < tr.Len(); i++ {
			p := tr.At(i).Parent
			if p < 0 {
				continue
			}
			childStmt := tr.At(i).Inst.Stmt
			parentStmt := tr.At(p).Inst.Stmt
			if len(c.Info.StmtCalls[parentStmt]) > 0 &&
				c.Info.StmtFunc[childStmt] != c.Info.StmtFunc[parentStmt] {
				continue // callee top-level under its call site
			}
			if !c.CFG.IsControlDependentOn(childStmt, parentStmt) {
				t.Fatalf("S%d's dynamic parent S%d is not a static CD source",
					childStmt, parentStmt)
			}
		}
	})
}

// TestConfidenceBounds: confidence values stay in [0,1] and pinned
// entries are never fault candidates, over random programs with a random
// output marked wrong.
func TestConfidenceBounds(t *testing.T) {
	eachRandomRun(t, func(t *testing.T, c *interp.Compiled, in []int64, r *interp.Result) {
		tr := r.Trace
		if len(tr.Outputs) < 2 {
			return
		}
		wrong := tr.Outputs[len(tr.Outputs)-1]
		var correct []trace.Output
		for _, o := range tr.Outputs[:len(tr.Outputs)-1] {
			if o.Entry != wrong.Entry {
				correct = append(correct, o)
			}
		}
		g := ddg.New(tr)
		an := confidence.New(c, g, nil, correct, wrong)
		an.Compute()
		for i := 0; i < tr.Len(); i++ {
			v := an.Confidence(i)
			if v < 0 || v > 1 {
				t.Fatalf("confidence %v out of range at entry %d", v, i)
			}
		}
		for _, cand := range an.FaultCandidates() {
			if an.Confidence(cand.Entry) >= 1 {
				t.Fatalf("pinned entry %d among candidates", cand.Entry)
			}
		}
	})
}

// TestUnionPDRefinesStaticPD: exercised evidence is a refinement of
// static may-analysis — every potential dependence the union graph
// admits, the static analysis admits too (dynamic governance implies
// transitive static control dependence; an observed reaching definition
// implies a static reaching definition).
func TestUnionPDRefinesStaticPD(t *testing.T) {
	eachRandomRun(t, func(t *testing.T, c *interp.Compiled, in []int64, r *interp.Result) {
		tr := r.Trace
		// Union over this failing run plus one alternate-input run.
		u := slicing.NewUnionGraph()
		u.AddTrace(tr)
		alt := interp.Run(c, interp.Options{Input: append([]int64{1, -3}, in...), BuildTrace: true})
		if alt.Err == nil {
			u.AddTrace(alt.Trace)
		}

		cxStatic := slicing.NewContext(c, tr)
		cxUnion := slicing.NewContext(c, tr)
		cxUnion.Union = u

		for i := 0; i < tr.Len(); i += 1 + tr.Len()/8 {
			staticSet := map[slicing.PDep]bool{}
			for _, pd := range cxStatic.PotentialDeps(i) {
				staticSet[pd] = true
			}
			for _, pd := range cxUnion.PotentialDeps(i) {
				if !staticSet[pd] {
					t.Fatalf("union PD %+v of entry %d not admitted by static analysis", pd, i)
				}
			}
		}
	})
}
