package proptest

import (
	"math/rand"
	"strings"
	"testing"

	"eol/internal/core"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/oracle"
	"eol/internal/slicing"
	"eol/internal/testsupport"
)

// TestRandomFaultInjection is the end-to-end robustness property: inject
// a pure execution-omission fault (an if-condition silenced with
// "&& (read() * 0)"-style zeroing is not expression-preserving, so we
// instead AND the condition with 0 via a marker variable) into random
// programs and run the full locator with the ground-truth oracle.
//
// For every injected fault that produces a wrong-value failure, the
// locator must not crash and must keep its counters sane; for a healthy
// majority it must locate the seeded root cause.
func TestRandomFaultInjection(t *testing.T) {
	rnd := rand.New(rand.NewSource(12507342)) // the paper's DOI digits
	attempts, failures, located, applicable := 0, 0, 0, 0

	for i := 0; i < 300 && applicable < 25; i++ {
		src := testsupport.RandomProgram(rnd, testsupport.GenConfig{})
		correct, err := interp.Compile(src)
		if err != nil {
			t.Fatalf("generator produced a bad program: %v", err)
		}
		testsupport.MustValid(t, correct)

		// Pick an if statement to silence. The edit keeps statement
		// numbering identical (expression-level).
		var ifs []string
		for _, s := range correct.Info.Stmts {
			if _, ok := s.(*ast.IfStmt); ok {
				text := ast.StmtString(s)
				// Only plain "if (...)" heads that appear exactly once
				// are safe to rewrite textually.
				if strings.Count(src, text[3:]) == 1 {
					ifs = append(ifs, text)
				}
			}
		}
		if len(ifs) == 0 {
			continue
		}
		target := ifs[rnd.Intn(len(ifs))]
		cond := strings.TrimSuffix(strings.TrimPrefix(target, "if ("), ")")
		faultySrc := strings.Replace(src, "if ("+cond+")", "if (("+cond+") && 0)", 1)
		faulty, err := interp.Compile(faultySrc)
		if err != nil || faulty.Info.NumStmts() != correct.Info.NumStmts() {
			continue // textual rewrite misfired; skip
		}
		if testsupport.Validate(faulty) != nil {
			continue // injection made the subject ill-formed; reject it
		}
		attempts++

		// Hunt for an input that exposes the fault as a wrong value.
		var in []int64
		var cr *interp.Result
		exposed := false
		for try := 0; try < 8 && !exposed; try++ {
			in = testsupport.RandomInput(rnd, inputLen)
			cr = interp.Run(correct, interp.Options{Input: in, BuildTrace: true})
			fr := interp.Run(faulty, interp.Options{Input: in})
			if cr.Err != nil || fr.Err != nil {
				continue
			}
			seq, missing, ok := slicing.FirstWrongOutput(fr.OutputValues(), cr.OutputValues())
			if ok && !missing && seq >= 0 {
				exposed = true
			}
		}
		if !exposed {
			continue // fault latent on all tried inputs, or truncation-only
		}
		applicable++

		root := 0
		for _, s := range faulty.Info.Stmts {
			if strings.Contains(ast.StmtString(s), "&& 0") {
				root = s.ID()
			}
		}
		if root == 0 {
			t.Fatal("mutated statement lost")
		}

		rep, err := core.Locate(&core.Spec{
			Program:   faulty,
			Input:     in,
			Expected:  cr.OutputValues(),
			RootCause: []int{root},
			Oracle:    &oracle.StateOracle{Correct: cr.Trace},
		})
		if err != nil {
			t.Fatalf("Locate crashed on injected fault:\n%s\nerror: %v", faultySrc, err)
		}
		if rep.Stats.Verifications < 0 || rep.Stats.Iterations < 0 || rep.IPS.Dynamic < 0 {
			t.Fatalf("insane counters: %+v", rep)
		}
		if rep.Located {
			located++
		} else {
			failures++
		}
	}

	if applicable < 10 {
		t.Fatalf("only %d applicable injected faults out of %d attempts; generator too tame", applicable, attempts)
	}
	// The technique is documented to be incomplete (Table 5(b), missing
	// PD support); require a healthy majority rather than perfection.
	if located*2 < applicable {
		t.Errorf("located %d/%d injected omission faults (failures %d): below the majority bar",
			located, applicable, failures)
	}
	t.Logf("injected omission faults: %d applicable, %d located, %d missed", applicable, located, failures)
}
