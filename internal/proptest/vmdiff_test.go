package proptest

// Backend differential lane: the bytecode VM (internal/vm) must be
// observationally identical to the tree-walking reference interpreter on
// randomly generated programs — same Steps, same outputs, same trace
// entries, and, under budget exhaustion or mid-run cancellation, the
// same error class and the same trace prefix at the cut point. The
// hand-written differential suite lives in internal/vm; this lane runs
// the generator over both backends so new language constructs cannot
// drift between them unnoticed.

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"eol/internal/interp"
	"eol/internal/vm"
)

// assertSameResult compares every observable Result field plus the
// entry-by-entry trace; on a cut run (budget or cancel) the traces are
// themselves the prefixes at the cut point, so whole-trace equality is
// the prefix property.
func assertSameResult(t *testing.T, label string, tree, got *interp.Result) {
	t.Helper()
	if tree.Steps != got.Steps {
		t.Fatalf("%s: Steps tree %d, vm %d", label, tree.Steps, got.Steps)
	}
	if tree.Rendered != got.Rendered {
		t.Fatalf("%s: Rendered tree %q, vm %q", label, tree.Rendered, got.Rendered)
	}
	if !reflect.DeepEqual(tree.Outputs, got.Outputs) {
		t.Fatalf("%s: Outputs tree %v, vm %v", label, tree.Outputs, got.Outputs)
	}
	if (tree.Err == nil) != (got.Err == nil) {
		t.Fatalf("%s: Err tree %v, vm %v", label, tree.Err, got.Err)
	}
	if tree.Err != nil {
		var te, ge *interp.RuntimeError
		if !errors.As(tree.Err, &te) || !errors.As(got.Err, &ge) {
			t.Fatalf("%s: Err types tree %T, vm %T", label, tree.Err, got.Err)
		}
		if te.Pos != ge.Pos || te.Stmt != ge.Stmt || te.Error() != ge.Error() {
			t.Fatalf("%s: Err tree %v, vm %v", label, tree.Err, got.Err)
		}
	}
	if (tree.Trace == nil) != (got.Trace == nil) {
		t.Fatalf("%s: Trace presence tree %v, vm %v", label, tree.Trace != nil, got.Trace != nil)
	}
	if tree.Trace == nil {
		return
	}
	if tree.Trace.Len() != got.Trace.Len() {
		t.Fatalf("%s: trace length tree %d, vm %d", label, tree.Trace.Len(), got.Trace.Len())
	}
	for i := 0; i < tree.Trace.Len(); i++ {
		if !reflect.DeepEqual(*tree.Trace.At(i), *got.Trace.At(i)) {
			t.Fatalf("%s: trace entry %d:\ntree %+v\nvm   %+v", label, i, *tree.Trace.At(i), *got.Trace.At(i))
		}
	}
	if !reflect.DeepEqual(tree.Trace.Outputs, got.Trace.Outputs) {
		t.Fatalf("%s: trace outputs tree %v, vm %v", label, tree.Trace.Outputs, got.Trace.Outputs)
	}
}

// TestVMDifferentialProperty: random programs run identically on both
// backends, in plain and trace mode. eachRandomRun's tree-walker run is
// the oracle; the VM must reproduce it byte for byte.
func TestVMDifferentialProperty(t *testing.T) {
	eachRandomRun(t, func(t *testing.T, c *interp.Compiled, in []int64, r *interp.Result) {
		plainTree := interp.Tree.Run(c, interp.Options{Input: in})
		plainVM := vm.Backend.Run(c, interp.Options{Input: in})
		assertSameResult(t, "plain", plainTree, plainVM)

		tracedVM := vm.Backend.Run(c, interp.Options{Input: in, BuildTrace: true})
		assertSameResult(t, "traced", r, tracedVM)
	})
}

// TestVMBudgetExhaustionProperty: for budgets below the full run length,
// both backends stop with ErrBudget at exactly the budgeted step count,
// with identical trace prefixes at the cut point.
func TestVMBudgetExhaustionProperty(t *testing.T) {
	eachRandomRun(t, func(t *testing.T, c *interp.Compiled, in []int64, r *interp.Result) {
		// Probe a spread of cut points rather than every step: the
		// property is grid-independent, the sweep lives in internal/vm.
		for _, budget := range []int{1, r.Steps / 3, r.Steps - 1, r.Steps} {
			if budget <= 0 {
				continue
			}
			opts := interp.Options{Input: in, BuildTrace: true, StepBudget: budget}
			tree := interp.Tree.Run(c, opts)
			got := vm.Backend.Run(c, opts)
			if budget < r.Steps {
				if !errors.Is(tree.Err, interp.ErrBudget) {
					t.Fatalf("budget %d of %d: tree err %v, want ErrBudget", budget, r.Steps, tree.Err)
				}
				if tree.Steps != budget {
					t.Fatalf("budget %d: tree stopped at step %d", budget, tree.Steps)
				}
			} else if tree.Err != nil {
				t.Fatalf("budget %d covers the full run, yet tree err %v", budget, tree.Err)
			}
			assertSameResult(t, "budget", tree, got)
		}
	})
}

// countdownCtx flips Err() non-nil after a fixed number of calls, so
// both backends observe the cancellation at the same poll — provided
// they poll on the same step grid, which is the property under test.
type countdownCtx struct {
	context.Context
	left int
}

func (c *countdownCtx) Err() error {
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

// TestVMCtxCancelProperty: a deterministic mid-run cancellation cuts
// both backends at the same step with the same error class and trace
// prefix. Generated runs are usually shorter than one 1024-step poll
// window, so polls=1 (cancel at the startup check) always fires and
// larger counts exercise the on-grid polls when the run is long enough.
func TestVMCtxCancelProperty(t *testing.T) {
	eachRandomRun(t, func(t *testing.T, c *interp.Compiled, in []int64, r *interp.Result) {
		for _, polls := range []int{1, 2, 3} {
			tree := interp.Tree.Run(c, interp.Options{Input: in, BuildTrace: true, Ctx: &countdownCtx{left: polls}})
			got := vm.Backend.Run(c, interp.Options{Input: in, BuildTrace: true, Ctx: &countdownCtx{left: polls}})
			if tree.Err != nil && !interp.IsCancellation(tree.Err) {
				t.Fatalf("polls %d: tree err %v, want cancellation", polls, tree.Err)
			}
			assertSameResult(t, "cancel", tree, got)
		}
	})
}

// TestVMSwitchedForkProperty: forked switched re-execution from a VM
// checkpoint store must agree with the tree-walker's full switched run
// for a sampled predicate instance of every generated program.
func TestVMSwitchedForkProperty(t *testing.T) {
	eachRandomRun(t, func(t *testing.T, c *interp.Compiled, in []int64, r *interp.Result) {
		tr := r.Trace
		pIdx := -1
		for i := tr.Len() / 2; i < tr.Len(); i++ {
			if tr.At(i).Branch != 0 {
				pIdx = i
				break
			}
		}
		if pIdx < 0 {
			return
		}
		p := tr.At(pIdx).Inst
		budget := 20 * tr.Len()
		opts := interp.Options{
			Input: in, BuildTrace: true,
			Switch:     &interp.SwitchPlan{Stmt: p.Stmt, Occ: p.Occ},
			StepBudget: budget,
		}
		tree := interp.Tree.Run(c, opts)

		// Record a checkpointed VM original, then fork the switched run.
		cks := vm.Backend.NewCheckpoints(8)
		orig := vm.Backend.Run(c, interp.Options{Input: in, BuildTrace: true, Checkpoints: cks})
		if orig.Err != nil {
			t.Fatalf("checkpointed original: %v", orig.Err)
		}
		forked := vm.Backend.RunSwitchedFrom(cks, orig.Trace, c, opts)
		if forked == nil { // no snapshot before the switch point: full run
			forked = vm.Backend.Run(c, opts)
		}
		if tree.SwitchApplied != forked.SwitchApplied {
			t.Fatalf("SwitchApplied tree %v, vm fork %v", tree.SwitchApplied, forked.SwitchApplied)
		}
		if !reflect.DeepEqual(tree.Outputs, forked.Outputs) || tree.Rendered != forked.Rendered {
			t.Fatalf("switched outputs diverged:\ntree %v %q\nfork %v %q",
				tree.Outputs, tree.Rendered, forked.Outputs, forked.Rendered)
		}
		if (tree.Err == nil) != (forked.Err == nil) {
			t.Fatalf("switched err tree %v, vm fork %v", tree.Err, forked.Err)
		}
		// Steps agree in the only sense a forked run preserves: total
		// steps including the inherited checkpoint prefix.
		if tree.Steps != forked.Steps {
			t.Fatalf("switched Steps tree %d, vm fork %d (resumed at %d)",
				tree.Steps, forked.Steps, forked.ResumedAt)
		}
	})
}
