package serve

import (
	"crypto/rand"
	"encoding/hex"
	"sync"

	"eol/internal/api"
	"eol/internal/obs"
)

// feed is the obs.Observer behind GET /v1/jobs/{id}/events: it retains
// the job's corpus journal in arrival order and lets any number of
// stream subscribers replay it from the start and then follow until the
// job closes it. Because the corpus journal is emitted post-run from a
// single goroutine and carries only scheduling-independent fields
// (docs/CORPUS.md), the streamed feed for a given manifest is
// byte-identical run to run — it is the journal, delivered over HTTP.
type feed struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events []obs.Event
	closed bool
}

func newFeed() *feed {
	f := &feed{}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Event implements obs.Observer.
func (f *feed) Event(e obs.Event) {
	f.mu.Lock()
	f.events = append(f.events, e)
	f.mu.Unlock()
	f.cond.Broadcast()
}

// close marks the stream complete and wakes every subscriber.
func (f *feed) close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// wake re-evaluates every blocked next call (used to observe subscriber
// cancellation, which sync.Cond cannot select on).
func (f *feed) wake() { f.cond.Broadcast() }

// next blocks until event i exists (returning it), the feed is closed
// and drained (ok=false), or stop returns true (ok=false).
func (f *feed) next(i int, stop func() bool) (e obs.Event, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if i < len(f.events) {
			return f.events[i], true
		}
		if f.closed || stop() {
			return obs.Event{}, false
		}
		f.cond.Wait()
	}
}

// job is one async corpus run.
type job struct {
	id     string
	tenant string
	feed   *feed
	done   chan struct{}

	mu     sync.Mutex
	state  string
	report *api.CorpusReport
	errb   *api.ErrorBody
}

// status snapshots the job's wire status.
func (j *job) status() *api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return &api.JobStatus{
		SchemaVersion: api.SchemaVersion,
		ID:            j.id,
		State:         j.state,
		Report:        j.report,
		Error:         j.errb,
	}
}

func (j *job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// finish records the outcome, closes the feed, and releases waiters.
func (j *job) finish(report *api.CorpusReport, errb *api.ErrorBody) {
	j.mu.Lock()
	j.state = api.JobDone
	j.report, j.errb = report, errb
	j.mu.Unlock()
	j.feed.close()
	close(j.done)
}

// jobTable registers async jobs, bounded to max entries: once full,
// the oldest finished job is evicted; if every job is still live, new
// submissions are rejected (admission pressure, not memory growth).
type jobTable struct {
	mu    sync.Mutex
	max   int
	jobs  map[string]*job
	order []string // insertion order, for eviction
}

func newJobTable(max int) *jobTable {
	return &jobTable{max: max, jobs: map[string]*job{}}
}

// add registers a new queued job for tenant, or reports ok=false when
// the table is full of live jobs.
func (t *jobTable) add(tenant string) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.jobs) >= t.max && !t.evictDone() {
		return nil, false
	}
	j := &job{
		id:     newJobID(),
		tenant: tenant,
		state:  api.JobQueued,
		feed:   newFeed(),
		done:   make(chan struct{}),
	}
	t.jobs[j.id] = j
	t.order = append(t.order, j.id)
	return j, true
}

// evictDone drops the oldest finished job; reports whether it freed a
// slot. Called with t.mu held.
func (t *jobTable) evictDone() bool {
	for i, id := range t.order {
		j := t.jobs[id]
		if j == nil {
			continue
		}
		j.mu.Lock()
		done := j.state == api.JobDone
		j.mu.Unlock()
		if done {
			delete(t.jobs, id)
			t.order = append(t.order[:i], t.order[i+1:]...)
			return true
		}
	}
	return false
}

// get returns tenant's job by id. Jobs are tenant-scoped: another
// tenant's id behaves exactly like an unknown one.
func (t *jobTable) get(id, tenant string) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	j := t.jobs[id]
	if j == nil || j.tenant != tenant {
		return nil
	}
	return j
}

// len reports the number of registered jobs.
func (t *jobTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.jobs)
}

// newJobID returns an unguessable 16-hex-digit id (job ids are the only
// handle on another tenant's results, so they must not be enumerable).
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("serve: crypto/rand unavailable: " + err.Error())
	}
	return "j" + hex.EncodeToString(b[:])
}
