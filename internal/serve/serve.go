// Package serve is the resident localization server: the corpus driver
// (internal/corpus) promoted from a batch process to a long-running
// multi-tenant HTTP daemon holding persistent warm state — the
// content-keyed compile cache, the cross-request switched-run cache,
// and the shared SPDG cache (one corpus.Shared) — behind per-tenant
// token-bucket rate limiting and bounded-queue admission control.
//
// # Endpoints (all JSON, wire types from internal/api)
//
//	POST /v1/locate            one subject  -> api.LocateResponse
//	POST /v1/corpus            manifest     -> api.CorpusReport
//	POST /v1/corpus?async=1    manifest     -> 202 api.JobStatus
//	GET  /v1/jobs/{id}                      -> api.JobStatus
//	GET  /v1/jobs/{id}/events               -> NDJSON stream of obs.Event
//	GET  /v1/healthz                        -> liveness
//	GET  /v1/statsz                         -> Statsz (ops counters)
//
// # Determinism
//
// Responses carry only the scheduling-independent result fields
// (api.NewCorpusReport with timing off), so a response for a given
// manifest is byte-identical to `eolcorpus -o` for the same subjects —
// regardless of concurrency, admission order, or cache warmth. The
// events stream is the corpus journal (docs/CORPUS.md), which carries
// the same guarantee. Wall-clock-dependent numbers live only in
// /v1/statsz. Pinned by the A/B suite in determinism_test.go and `make
// serve-smoke`.
//
// # Admission control
//
// Three bounds, crossed in order per request: the tenant's token
// bucket (rate × burst; 429 + Retry-After on empty), the session-slot
// pool (Sessions concurrent localizations), and the wait queue (Queue
// requests blocked on a slot; 429 when full). Async jobs skip the wait
// queue — the bounded job table is their queue — but still occupy
// session slots while running. See docs/SERVER.md.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"eol/internal/api"
	"eol/internal/corpus"
	"eol/internal/interp"
)

// maxBodyBytes bounds request bodies (manifests with inlined sources).
const maxBodyBytes = 16 << 20

// Config sizes a Server. The zero value is a usable single-tenant
// development server: unlimited rate, GOMAXPROCS sessions, a small
// queue, default caches.
type Config struct {
	// Corpus shapes each request's run: Shards, VerifyWorkers,
	// CacheSize, Checkpoints, NoStaticReach, and the default per-subject
	// Deadline all apply per request. Shared and Observer are owned by
	// the server and ignored here.
	Corpus corpus.Options
	// MaxDeadline caps every subject's deadline (and supplies it where
	// none is set), so no tenant can pin a session slot forever
	// (0 = uncapped).
	MaxDeadline time.Duration
	// Sessions bounds concurrently running requests (0 = GOMAXPROCS).
	Sessions int
	// Queue bounds requests waiting for a session slot
	// (0 = 2×Sessions); beyond it the server sheds load with 429.
	Queue int
	// Rate is each tenant's sustained request rate in requests/second
	// (0 = unlimited); Burst the bucket depth (0 = max(1, Rate)).
	Rate  float64
	Burst int
	// MaxJobs bounds the async job table (0 = 64). Finished jobs are
	// evicted oldest-first to make room; when every job is live, new
	// async submissions are rejected.
	MaxJobs int
	// Now is the clock used by rate limiting (nil = time.Now; tests
	// inject a fake).
	Now func() time.Time
}

// Statsz is the GET /v1/statsz body: operational counters. Unlike the
// result documents these are deliberately scheduling-dependent — cache
// warmth, queue depth, and tenant traffic are what an operator watches.
type Statsz struct {
	SchemaVersion    int            `json:"schema_version"`
	UptimeMS         float64        `json:"uptime_ms"`
	LocateRequests   int64          `json:"locate_requests"`
	CorpusRequests   int64          `json:"corpus_requests"`
	Admitted         int64          `json:"admitted"`
	RejectedRate     int64          `json:"rejected_rate"`
	RejectedQueue    int64          `json:"rejected_queue"`
	Inflight         int            `json:"inflight"`
	Queued           int            `json:"queued"`
	Jobs             int            `json:"jobs"`
	Tenants          int            `json:"tenants"`
	CompiledPrograms int            `json:"compiled_programs"`
	Cache            api.CacheStats `json:"cache"`
}

// Health is the GET /v1/healthz body.
type Health struct {
	SchemaVersion int  `json:"schema_version"`
	OK            bool `json:"ok"`
}

// Server is the resident localization service. Create with New; it
// implements http.Handler. Close cancels running async jobs.
type Server struct {
	cfg     Config
	shared  *corpus.Shared
	adm     *admission
	buckets *bucketSet
	jobs    *jobTable
	mux     *http.ServeMux
	start   time.Time
	baseCtx context.Context
	cancel  context.CancelFunc

	locateReqs, corpusReqs         atomic.Int64
	admitted                       atomic.Int64
	rejectedRate, rejectedQueue    atomic.Int64
}

// New builds a server with its warm state. The switched-run cache is
// sized by cfg.Corpus.CacheSize (0 = default, negative = disabled).
func New(cfg Config) *Server {
	if cfg.Sessions <= 0 {
		cfg.Sessions = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 2 * cfg.Sessions
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 64
	}
	s := &Server{
		cfg:     cfg,
		shared:  corpus.NewShared(cfg.Corpus.CacheSize),
		adm:     newAdmission(cfg.Sessions, cfg.Queue),
		buckets: newBucketSet(cfg.Rate, cfg.Burst, cfg.Now),
		jobs:    newJobTable(cfg.MaxJobs),
		mux:     http.NewServeMux(),
		start:   time.Now(),
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.mux.HandleFunc("POST /v1/locate", s.handleLocate)
	s.mux.HandleFunc("POST /v1/corpus", s.handleCorpus)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/statsz", s.handleStatsz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels running async jobs (their subjects report class
// "canceled", like any other aborted run).
func (s *Server) Close() { s.cancel() }

// tenantOf keys rate limiting and job visibility: the X-Tenant header,
// or "default".
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// writeJSON writes v with status via the shared api encoding, so
// response bytes match batch output bytes for equal values.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	api.Encode(w, v) // nothing to do about a failed write mid-response
}

// fail writes the standard error body for class.
func (s *Server) fail(w http.ResponseWriter, class, format string, args ...any) {
	writeJSON(w, api.HTTPStatus(class), api.Errorf(class, format, args...))
}

// reject writes a 429 with a Retry-After hint.
func (s *Server) reject(w http.ResponseWriter, retry time.Duration, format string, args ...any) {
	secs := int(retry / time.Second)
	if retry%time.Second != 0 || secs == 0 {
		secs++ // ceil; never advertise "retry immediately"
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.fail(w, api.CodeRejected, format, args...)
}

// rateAdmit spends one token of the tenant's bucket; on refusal it
// writes the 429 and reports false.
func (s *Server) rateAdmit(w http.ResponseWriter, tenant string) bool {
	ok, retry := s.buckets.take(tenant)
	if !ok {
		s.rejectedRate.Add(1)
		s.reject(w, retry, "tenant %q rate limit exceeded", tenant)
		return false
	}
	return true
}

// queueAdmit acquires a session slot through the bounded wait queue; on
// success the caller must s.adm.release().
func (s *Server) queueAdmit(w http.ResponseWriter, r *http.Request) bool {
	if err := s.adm.admit(r.Context()); err != nil {
		if errors.Is(err, errQueueFull) {
			s.rejectedQueue.Add(1)
			s.reject(w, time.Second, "server at capacity (%d running, %d queued)", s.cfg.Sessions, s.cfg.Queue)
			return false
		}
		// The client gave up (or its deadline passed) while queued.
		class := api.CodeOf(interp.CtxErr(err))
		s.fail(w, class, "abandoned while queued: %v", err)
		return false
	}
	s.admitted.Add(1)
	return true
}

// runOptions shapes one request's corpus run over the server's warm
// state.
func (s *Server) runOptions() corpus.Options {
	o := s.cfg.Corpus
	o.Shared = s.shared
	o.Observer = nil
	if s.cfg.MaxDeadline > 0 && (o.Deadline <= 0 || o.Deadline > s.cfg.MaxDeadline) {
		o.Deadline = s.cfg.MaxDeadline
	}
	return o
}

// clampDeadlines enforces MaxDeadline on every subject.
func (s *Server) clampDeadlines(m *corpus.Manifest) {
	max := s.cfg.MaxDeadline
	if max <= 0 {
		return
	}
	for i := range m.Subjects {
		if d := m.Subjects[i].Deadline.D(); d <= 0 || d > max {
			m.Subjects[i].Deadline = corpus.Duration(max)
		}
	}
}

func (s *Server) handleLocate(w http.ResponseWriter, r *http.Request) {
	s.locateReqs.Add(1)
	if !s.rateAdmit(w, tenantOf(r)) {
		return
	}
	req, err := api.DecodeLocateRequest(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.fail(w, api.CodeInvalid, "bad locate request: %v", err)
		return
	}
	m, err := req.Manifest()
	if err != nil {
		s.fail(w, api.CodeInvalid, "bad subject: %v", err)
		return
	}
	s.clampDeadlines(m)
	if !s.queueAdmit(w, r) {
		return
	}
	defer s.adm.release()
	res, err := corpus.Run(r.Context(), m, s.runOptions())
	if err != nil {
		s.fail(w, api.CodeInvalid, "%v", err)
		return
	}
	// Subject-level failures (deadline, budget, not located) are result
	// rows, exactly as in batch output — the transport succeeded.
	writeJSON(w, http.StatusOK, &api.LocateResponse{
		SchemaVersion: api.SchemaVersion,
		SubjectResult: api.NewSubjectResult(&res.Subjects[0], false),
	})
}

func (s *Server) handleCorpus(w http.ResponseWriter, r *http.Request) {
	s.corpusReqs.Add(1)
	tenant := tenantOf(r)
	if !s.rateAdmit(w, tenant) {
		return
	}
	req, err := api.DecodeCorpusRequest(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.fail(w, api.CodeInvalid, "bad corpus request: %v", err)
		return
	}
	m, err := req.Manifest()
	if err != nil {
		s.fail(w, api.CodeInvalid, "bad manifest: %v", err)
		return
	}
	s.clampDeadlines(m)

	if async := r.URL.Query().Get("async"); async == "1" || async == "true" {
		j, ok := s.jobs.add(tenant)
		if !ok {
			s.rejectedQueue.Add(1)
			s.reject(w, time.Second, "job table full (%d live jobs)", s.cfg.MaxJobs)
			return
		}
		go s.runJob(j, m)
		writeJSON(w, http.StatusAccepted, j.status())
		return
	}

	if !s.queueAdmit(w, r) {
		return
	}
	defer s.adm.release()
	res, err := corpus.Run(r.Context(), m, s.runOptions())
	if err != nil {
		s.fail(w, api.CodeInvalid, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, api.NewCorpusReport(res, false, 0))
}

// runJob executes one async corpus job. Accepted jobs wait for a
// session slot without a queue bound (the job table is their bound) and
// are cut short by server shutdown, not by the submitting request's
// lifetime.
func (s *Server) runJob(j *job, m *corpus.Manifest) {
	if err := s.adm.admitAsync(s.baseCtx); err != nil {
		j.finish(nil, api.Errorf(api.CodeCanceled, "server shutting down: %v", err))
		return
	}
	defer s.adm.release()
	s.admitted.Add(1)
	j.setState(api.JobRunning)
	opts := s.runOptions()
	opts.Observer = j.feed // the deterministic corpus journal, streamed
	res, err := corpus.Run(s.baseCtx, m, opts)
	if err != nil {
		j.finish(nil, api.Errorf(api.CodeInvalid, "%v", err))
		return
	}
	j.finish(api.NewCorpusReport(res, false, 0), nil)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"), tenantOf(r))
	if j == nil {
		s.fail(w, api.CodeNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleJobEvents streams the job's corpus journal as NDJSON — one
// obs.Event per line, flushed as they arrive — following until the job
// finishes. A journal validator (cmd/journalcheck) accepts the stream
// verbatim.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"), tenantOf(r))
	if j == nil {
		s.fail(w, api.CodeNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)

	ctx := r.Context()
	watcherDone := make(chan struct{})
	defer close(watcherDone)
	go func() {
		// sync.Cond cannot select on a context; poke the feed so a
		// blocked next call re-checks ctx.
		select {
		case <-ctx.Done():
			j.feed.wake()
		case <-watcherDone:
		}
	}()
	stop := func() bool { return ctx.Err() != nil }
	for i := 0; ; i++ {
		e, ok := j.feed.next(i, stop)
		if !ok {
			return
		}
		b, err := json.Marshal(e)
		if err != nil {
			return
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &Health{SchemaVersion: api.SchemaVersion, OK: true})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	inflight, queued := s.adm.load()
	c := s.shared.RunCacheStats()
	rate := 0.0
	if c.Hits+c.Misses > 0 {
		rate = float64(c.Hits) / float64(c.Hits+c.Misses)
	}
	writeJSON(w, http.StatusOK, &Statsz{
		SchemaVersion:    api.SchemaVersion,
		UptimeMS:         float64(time.Since(s.start)) / float64(time.Millisecond),
		LocateRequests:   s.locateReqs.Load(),
		CorpusRequests:   s.corpusReqs.Load(),
		Admitted:         s.admitted.Load(),
		RejectedRate:     s.rejectedRate.Load(),
		RejectedQueue:    s.rejectedQueue.Load(),
		Inflight:         inflight,
		Queued:           queued,
		Jobs:             s.jobs.len(),
		Tenants:          s.buckets.tenants(),
		CompiledPrograms: s.shared.CompiledPrograms(),
		Cache:            api.CacheStats{Hits: c.Hits, Misses: c.Misses, Evictions: c.Evictions, HitRate: rate},
	})
}

// String renders the server's sizing for logs.
func (s *Server) String() string {
	return fmt.Sprintf("serve.Server{sessions=%d queue=%d rate=%g burst=%d}",
		s.cfg.Sessions, s.cfg.Queue, s.cfg.Rate, s.cfg.Burst)
}
