package serve

import (
	"context"
	"encoding/json"
	"strconv"
	"sync"
	"testing"
	"time"

	"eol/internal/api"
)

// fakeClock is an injectable bucket clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestBucketRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	bs := newBucketSet(2, 3, clk.now) // 2 tokens/s, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := bs.take("a"); !ok {
			t.Fatalf("burst token %d refused", i)
		}
	}
	ok, retry := bs.take("a")
	if ok {
		t.Fatal("4th immediate request admitted past burst")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry hint %v, want (0, 1s] at 2 tokens/s", retry)
	}

	// Half a second refills one token — exactly one more request.
	clk.advance(500 * time.Millisecond)
	if ok, _ := bs.take("a"); !ok {
		t.Fatal("token not refilled after 500ms at 2/s")
	}
	if ok, _ := bs.take("a"); ok {
		t.Fatal("second token appeared from nowhere")
	}

	// A long idle period refills to burst, not beyond.
	clk.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := bs.take("a"); !ok {
			t.Fatalf("post-idle token %d refused", i)
		}
	}
	if ok, _ := bs.take("a"); ok {
		t.Fatal("idle refill exceeded burst")
	}
}

func TestBucketTenantIsolation(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	bs := newBucketSet(1, 1, clk.now)
	if ok, _ := bs.take("a"); !ok {
		t.Fatal("first request refused")
	}
	if ok, _ := bs.take("a"); ok {
		t.Fatal("tenant a over burst")
	}
	// Tenant b has its own bucket, untouched by a's exhaustion.
	if ok, _ := bs.take("b"); !ok {
		t.Fatal("tenant b starved by tenant a")
	}
	if n := bs.tenants(); n != 2 {
		t.Fatalf("tenants = %d, want 2", n)
	}
}

func TestBucketEviction(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	bs := newBucketSet(1, 1, clk.now)
	for i := 0; i < maxTenants; i++ {
		bs.take("t" + strconv.Itoa(i))
	}
	if n := bs.tenants(); n != maxTenants {
		t.Fatalf("tenants = %d, want %d", n, maxTenants)
	}
	// Everyone refills to capacity; the next insertion evicts them all.
	clk.advance(time.Hour)
	bs.take("fresh")
	if n := bs.tenants(); n != 1 {
		t.Fatalf("tenants = %d after eviction, want 1", n)
	}
}

func TestBucketDisabled(t *testing.T) {
	bs := newBucketSet(0, 0, nil)
	for i := 0; i < 1000; i++ {
		if ok, _ := bs.take("a"); !ok {
			t.Fatal("rate 0 must mean unlimited")
		}
	}
	if n := bs.tenants(); n != 0 {
		t.Fatalf("disabled limiter tracked %d tenants", n)
	}
}

// TestAdmissionQueueOverflow drives the admission struct directly:
// slots full + queue full -> errQueueFull; a queued waiter gets the
// slot when released; a canceled waiter reports its ctx error.
func TestAdmissionQueueOverflow(t *testing.T) {
	a := newAdmission(1, 1)
	if err := a.admit(context.Background()); err != nil {
		t.Fatal(err)
	}

	// One waiter fits in the queue.
	got := make(chan error, 1)
	go func() { got <- a.admit(context.Background()) }()
	waitFor(t, func() bool { _, q := a.load(); return q == 1 })

	// The second waiter overflows.
	if err := a.admit(context.Background()); err != errQueueFull {
		t.Fatalf("overflow admit: %v, want errQueueFull", err)
	}

	// Releasing the slot hands it to the queued waiter.
	a.release()
	if err := <-got; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	a.release()

	// A waiter whose context dies while queued reports that.
	if err := a.admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	if err := a.admit(ctx); err != context.Canceled {
		t.Fatalf("canceled waiter: %v, want context.Canceled", err)
	}
	a.release()
}

func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRateLimitHTTP: the whole 429 path over HTTP — status, body
// class, Retry-After header, statsz counter, and tenant isolation. The
// fixed clock means buckets never refill.
func TestRateLimitHTTP(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	_, ts := startServer(t, Config{Rate: 0.5, Burst: 1, Now: clk.now})
	body := locateBody(t, 0)

	if code, _, b := post(t, ts.URL+"/v1/locate", "alice", body); code != 200 {
		t.Fatalf("first request: %d %s", code, b)
	}
	code, hdr, b := post(t, ts.URL+"/v1/locate", "alice", body)
	if code != 429 {
		t.Fatalf("second request: %d %s, want 429", code, b)
	}
	var eb api.ErrorBody
	if err := json.Unmarshal(b, &eb); err != nil || eb.Class != api.CodeRejected {
		t.Errorf("429 body %s (err %v), want class rejected", b, err)
	}
	retry, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || retry < 1 || retry > 2 {
		t.Errorf("Retry-After %q, want 1..2 seconds at rate 0.5", hdr.Get("Retry-After"))
	}
	// Another tenant's bucket is untouched.
	if code, _, b := post(t, ts.URL+"/v1/locate", "bob", body); code != 200 {
		t.Errorf("tenant bob hit alice's limit: %d %s", code, b)
	}

	var st Statsz
	_, sb := get(t, ts.URL+"/v1/statsz", "")
	if err := json.Unmarshal(sb, &st); err != nil {
		t.Fatal(err)
	}
	if st.RejectedRate != 1 || st.Tenants != 2 {
		t.Errorf("statsz after rate rejection: %+v", st)
	}
}

// TestQueueOverflowHTTP: with the single session slot held by a test
// hold and the queue occupied, the next request is shed with 429 +
// Retry-After and class rejected.
func TestQueueOverflowHTTP(t *testing.T) {
	s, ts := startServer(t, Config{Sessions: 1, Queue: 1})
	body := locateBody(t, 0)

	// Occupy the slot directly, then park one request in the queue.
	if err := s.adm.admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	type reply struct {
		code int
		body []byte
	}
	queued := make(chan reply, 1)
	go func() {
		c, _, b := postRaw(ts.URL+"/v1/locate", "", body)
		queued <- reply{c, b}
	}()
	waitFor(t, func() bool { _, q := s.adm.load(); return q == 1 })

	code, hdr, b := post(t, ts.URL+"/v1/locate", "", body)
	if code != 429 {
		t.Fatalf("overflow request: %d %s, want 429", code, b)
	}
	var eb api.ErrorBody
	if err := json.Unmarshal(b, &eb); err != nil || eb.Class != api.CodeRejected {
		t.Errorf("429 body %s (err %v), want class rejected", b, err)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("queue 429 missing Retry-After")
	}

	// Free the slot: the queued request must complete normally.
	s.adm.release()
	r := <-queued
	if r.code != 200 {
		t.Fatalf("queued request after release: %d %s", r.code, r.body)
	}

	var st Statsz
	_, sb := get(t, ts.URL+"/v1/statsz", "")
	if err := json.Unmarshal(sb, &st); err != nil {
		t.Fatal(err)
	}
	if st.RejectedQueue != 1 {
		t.Errorf("rejected_queue = %d, want 1", st.RejectedQueue)
	}
}
