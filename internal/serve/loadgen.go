package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"eol/internal/api"
)

// LoadOptions configures an open-loop load run against a server's
// POST /v1/locate endpoint: requests are fired on a fixed arrival
// schedule (Rate per second) regardless of completions — the
// closed-loop alternative would slow its arrival rate exactly when the
// server struggles, hiding queueing delay (coordinated omission).
type LoadOptions struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Tenant is sent as X-Tenant ("" = server default).
	Tenant string
	// Requests is the total request count (0 = 100).
	Requests int
	// Rate is the arrival rate in requests/second (0 = closed loop:
	// each request fires when the previous completes).
	Rate float64
	// Concurrency caps in-flight requests in open-loop mode so an
	// unresponsive server cannot drown the generator (0 = 256). Arrivals
	// past the cap are counted as errors (the server was effectively
	// unreachable at that arrival).
	Concurrency int
	// Client is the HTTP client (nil = http.DefaultClient).
	Client *http.Client
}

// LoadReport summarizes one load run. Latency quantiles are measured
// arrival-to-response over every request that got an HTTP response
// (any status).
type LoadReport struct {
	SchemaVersion int     `json:"schema_version"`
	Requests      int     `json:"requests"`
	OK            int     `json:"ok"`
	Rejected      int     `json:"rejected"` // 429s: rate limit or queue overflow
	Errors        int     `json:"errors"`   // transport errors + non-2xx/429
	ElapsedMS     float64 `json:"elapsed_ms"`
	ThroughputRPS float64 `json:"throughput_rps"` // OK responses per second
	P50MS         float64 `json:"p50_ms"`
	P90MS         float64 `json:"p90_ms"`
	P99MS         float64 `json:"p99_ms"`
	MaxMS         float64 `json:"max_ms"`
}

// RunLoad drives body (an api.LocateRequest document) at the server
// opts.Requests times and reports latency quantiles and outcome counts.
func RunLoad(ctx context.Context, opts LoadOptions, body []byte) (*LoadReport, error) {
	n := opts.Requests
	if n <= 0 {
		n = 100
	}
	conc := opts.Concurrency
	if conc <= 0 {
		conc = 256
	}
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	url := opts.BaseURL + "/v1/locate"

	var (
		mu        sync.Mutex
		latencies []time.Duration
		rep       = &LoadReport{SchemaVersion: api.SchemaVersion, Requests: n}
		wg        sync.WaitGroup
		sem       = make(chan struct{}, conc)
	)
	fire := func() {
		defer wg.Done()
		start := time.Now()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
			if opts.Tenant != "" {
				req.Header.Set("X-Tenant", opts.Tenant)
			}
			var resp *http.Response
			resp, err = client.Do(req)
			if err == nil {
				resp.Body.Close()
				mu.Lock()
				latencies = append(latencies, time.Since(start))
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					rep.Rejected++
				case resp.StatusCode >= 200 && resp.StatusCode < 300:
					rep.OK++
				default:
					rep.Errors++
				}
				mu.Unlock()
				return
			}
		}
		mu.Lock()
		rep.Errors++
		mu.Unlock()
	}

	start := time.Now()
	var interval time.Duration
	if opts.Rate > 0 {
		interval = time.Duration(float64(time.Second) / opts.Rate)
	}
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if interval > 0 {
			// Open loop: fire on the schedule, never waiting for
			// completions (up to the generator's own capacity).
			if next := start.Add(time.Duration(i) * interval); time.Until(next) > 0 {
				select {
				case <-time.After(time.Until(next)):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func() { defer func() { <-sem }(); fire() }()
			default:
				rep.Errors++ // generator capacity exhausted
			}
		} else {
			wg.Add(1)
			fire() // closed loop: back to back
		}
	}
	wg.Wait()
	rep.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	if rep.ElapsedMS > 0 {
		rep.ThroughputRPS = float64(rep.OK) / (rep.ElapsedMS / 1000)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50MS = quantileMS(latencies, 0.50)
	rep.P90MS = quantileMS(latencies, 0.90)
	rep.P99MS = quantileMS(latencies, 0.99)
	if len(latencies) > 0 {
		rep.MaxMS = float64(latencies[len(latencies)-1]) / float64(time.Millisecond)
	}
	return rep, nil
}

// quantileMS returns the q-quantile of sorted latencies in ms (nearest
// rank), 0 when empty.
func quantileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// Summary renders the report for humans.
func (r *LoadReport) Summary() string {
	return fmt.Sprintf("%d requests: %d ok, %d rejected, %d errors; %.1f req/s; p50 %.2fms p90 %.2fms p99 %.2fms max %.2fms",
		r.Requests, r.OK, r.Rejected, r.Errors, r.ThroughputRPS, r.P50MS, r.P90MS, r.P99MS, r.MaxMS)
}
