package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// errQueueFull is returned by admit when the wait queue is at capacity;
// the caller maps it to 429/CodeRejected.
var errQueueFull = errors.New("admission queue full")

// admission bounds the number of requests localizing concurrently
// (slots) and the number allowed to wait for a slot (the queue). A
// request that finds both full is rejected immediately — under
// overload the server sheds load with 429s instead of building an
// unbounded backlog.
type admission struct {
	slots    chan struct{}
	maxQueue int64
	waiting  atomic.Int64
}

func newAdmission(sessions, queue int) *admission {
	return &admission{
		slots:    make(chan struct{}, sessions),
		maxQueue: int64(queue),
	}
}

// admit acquires a session slot, waiting in the bounded queue if
// necessary. It returns errQueueFull when the queue is at capacity and
// ctx's error when the caller gave up while queued. On nil return the
// caller must release().
func (a *admission) admit(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		return errQueueFull
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// admitAsync acquires a slot without the queue bound: accepted async
// jobs are already bounded by the job table, so they block until a slot
// frees or ctx (the server's lifetime) ends.
func (a *admission) admitAsync(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// load snapshots (in-flight, queued) request counts.
func (a *admission) load() (inflight, queued int) {
	return len(a.slots), int(a.waiting.Load())
}

// bucketSet is per-tenant token-bucket rate limiting with lazy refill:
// each tenant owns an independent bucket of burst tokens refilled at
// rate tokens/second, so one tenant hammering the server cannot starve
// the others (admission fairness is the queue's job; the buckets bound
// per-tenant request *rates*).
type bucketSet struct {
	rate  float64 // tokens per second; <= 0 disables limiting
	burst float64
	now   func() time.Time

	mu sync.Mutex
	m  map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxTenants bounds the bucket map: on insertion past the bound, full
// (i.e. long-idle) buckets are dropped — they are indistinguishable
// from absent ones, so eviction never changes behavior.
const maxTenants = 4096

func newBucketSet(rate float64, burst int, now func() time.Time) *bucketSet {
	if now == nil {
		now = time.Now
	}
	b := float64(burst)
	if b <= 0 {
		b = math.Max(1, rate)
	}
	return &bucketSet{rate: rate, burst: b, now: now, m: map[string]*bucket{}}
}

// take tries to spend one token of tenant's bucket. On refusal it
// returns the wait until a token will be available (the Retry-After
// hint).
func (bs *bucketSet) take(tenant string) (ok bool, retry time.Duration) {
	if bs.rate <= 0 {
		return true, 0
	}
	now := bs.now()
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.m[tenant]
	if b == nil {
		if len(bs.m) >= maxTenants {
			bs.evictFull(now)
		}
		b = &bucket{tokens: bs.burst, last: now}
		bs.m[tenant] = b
	} else {
		b.tokens = math.Min(bs.burst, b.tokens+now.Sub(b.last).Seconds()*bs.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / bs.rate
	return false, time.Duration(need * float64(time.Second))
}

// evictFull drops every bucket that has refilled to capacity. Called
// with bs.mu held.
func (bs *bucketSet) evictFull(now time.Time) {
	for k, b := range bs.m {
		if math.Min(bs.burst, b.tokens+now.Sub(b.last).Seconds()*bs.rate) >= bs.burst {
			delete(bs.m, k)
		}
	}
}

// tenants reports the number of tracked buckets.
func (bs *bucketSet) tenants() int {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return len(bs.m)
}
