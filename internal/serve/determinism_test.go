package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"eol/internal/api"
	"eol/internal/corpus"
)

// batchBytes renders the smoke manifest exactly as `eolcorpus -o` does:
// corpus.Run with the given options, api.NewCorpusReport with timing
// off, api.Encode.
func batchBytes(t testing.TB, opts corpus.Options) []byte {
	t.Helper()
	res, err := corpus.Run(context.Background(), loadManifest(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := api.Encode(&buf, api.NewCorpusReport(res, false, 0)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServeMatchesBatch is the core A/B determinism pin: a
// POST /v1/corpus response must be byte-identical to eolcorpus batch
// output for the same subjects — cold cache, warm cache, and across
// server concurrency configs.
func TestServeMatchesBatch(t *testing.T) {
	want := batchBytes(t, corpus.Options{})
	body := corpusBody(t)

	configs := []struct {
		name string
		cfg  Config
	}{
		{"default", Config{}},
		{"sharded", Config{Corpus: corpus.Options{Shards: 3, VerifyWorkers: 2}}},
		{"no run cache", Config{Corpus: corpus.Options{CacheSize: -1}}},
		// Backends are byte-identical (docs/VM.md), so pinning either one
		// explicitly must still reproduce the default batch bytes.
		{"tree backend", Config{Corpus: corpus.Options{Backend: "tree"}}},
		{"vm backend", Config{Corpus: corpus.Options{Backend: "vm"}}},
	}
	for _, c := range configs {
		t.Run(c.name, func(t *testing.T) {
			_, ts := startServer(t, c.cfg)
			code, _, cold := post(t, ts.URL+"/v1/corpus", "", body)
			if code != 200 {
				t.Fatalf("cold: %d %s", code, cold)
			}
			if !bytes.Equal(cold, want) {
				t.Errorf("cold response differs from batch output:\ngot:\n%s\nwant:\n%s", cold, want)
			}
			// Second request reuses every warm cache; verdicts and
			// counters must not move.
			code, _, warm := post(t, ts.URL+"/v1/corpus", "", body)
			if code != 200 {
				t.Fatalf("warm: %d %s", code, warm)
			}
			if !bytes.Equal(warm, cold) {
				t.Errorf("warm response differs from cold:\ngot:\n%s\nwant:\n%s", warm, cold)
			}
		})
	}
}

// TestLocateMatchesCorpusRows: a /v1/locate response for one subject
// carries the same SubjectResult as that subject's row in the corpus
// report.
func TestLocateMatchesCorpusRows(t *testing.T) {
	_, ts := startServer(t, Config{})
	var report api.CorpusReport
	if err := json.Unmarshal(batchBytes(t, corpus.Options{}), &report); err != nil {
		t.Fatal(err)
	}
	for i, row := range report.Subjects {
		code, _, b := post(t, ts.URL+"/v1/locate", "", locateBody(t, i))
		if code != 200 {
			t.Fatalf("locate %s: %d %s", row.Name, code, b)
		}
		var resp api.LocateResponse
		if err := json.Unmarshal(b, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.SubjectResult != row {
			t.Errorf("locate %s row differs from corpus row:\ngot:  %+v\nwant: %+v", row.Name, resp.SubjectResult, row)
		}
	}
}

// TestConcurrentRequestsDeterministic hammers one server with parallel
// identical corpus requests; every response must be identical despite
// shared caches and slot contention.
func TestConcurrentRequestsDeterministic(t *testing.T) {
	_, ts := startServer(t, Config{Sessions: 2, Queue: 32})
	body := corpusBody(t)
	want := batchBytes(t, corpus.Options{})

	const n = 6
	type outcome struct {
		body []byte
		err  error
	}
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func() {
			// Plain http here: t.Fatal is not legal off the test goroutine.
			resp, err := http.Post(ts.URL+"/v1/corpus", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- outcome{err: err}
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err == nil && resp.StatusCode != 200 {
				err = fmt.Errorf("status %d: %s", resp.StatusCode, b)
			}
			results <- outcome{body: b, err: err}
		}()
	}
	for i := 0; i < n; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("concurrent request: %v", o.err)
		}
		if !bytes.Equal(o.body, want) {
			t.Errorf("concurrent response %d differs from batch output", i)
		}
	}
}
