package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"eol/internal/api"
	"eol/internal/corpus"
	"eol/internal/obs"
)

const smokeManifest = "../../testdata/corpus/smoke.json"

// loadManifest loads the smoke manifest (2 locating fig1 subjects + one
// 5ms-deadline subject — all three row sets are deterministic, pinned
// by make corpus-smoke).
func loadManifest(t testing.TB) *corpus.Manifest {
	t.Helper()
	m, err := corpus.Load(smokeManifest)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func startServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// post sends body with optional tenant and returns status, headers, and
// response bytes.
func post(t testing.TB, url, tenant string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// postRaw is post without the testing.TB — safe off the test goroutine.
// Failures come back as status 0.
func postRaw(url, tenant string, body []byte) (int, http.Header, []byte) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, nil
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, b
}

func get(t testing.TB, url, tenant string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// corpusBody marshals the smoke manifest as a wire corpus request.
func corpusBody(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := api.Encode(&buf, api.RequestFromManifest(loadManifest(t))); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestHealthz(t *testing.T) {
	_, ts := startServer(t, Config{})
	code, b := get(t, ts.URL+"/v1/healthz", "")
	if code != 200 || !strings.Contains(string(b), `"ok": true`) {
		t.Fatalf("healthz: %d %s", code, b)
	}
}

// TestInvalidRequests: malformed bodies are 400/invalid, before any
// session slot is consumed.
func TestInvalidRequests(t *testing.T) {
	_, ts := startServer(t, Config{})
	cases := []struct {
		name, path, body string
	}{
		{"bad json", "/v1/locate", `{`},
		{"unknown field", "/v1/locate", `{"source":"main(){}","expected":[1],"bogus":1}`},
		{"future schema", "/v1/locate", `{"schema_version":99,"source":"main(){}","expected":[1]}`},
		{"file ref", "/v1/locate", `{"file":"/etc/passwd","expected":[1]}`},
		{"no subjects", "/v1/corpus", `{"subjects":[]}`},
		{"no expected", "/v1/corpus", `{"subjects":[{"source":"main(){}"}]}`},
		{"unknown feature", "/v1/locate", `{"source":"main(){}","expected":[1],"features":{"warp_drive":"on"}}`},
		{"bad feature mode", "/v1/corpus", `{"subjects":[{"source":"main(){}","expected":[1],"features":{"speculation":"maybe"}}]}`},
	}
	for _, c := range cases {
		code, _, b := post(t, ts.URL+c.path, "", []byte(c.body))
		if code != 400 {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, code, b)
		}
		var eb api.ErrorBody
		if err := json.Unmarshal(b, &eb); err != nil || eb.Class != api.CodeInvalid {
			t.Errorf("%s: error body %s (err %v), want class invalid", c.name, b, err)
		}
	}
	var st Statsz
	_, sb := get(t, ts.URL+"/v1/statsz", "")
	if err := json.Unmarshal(sb, &st); err != nil {
		t.Fatal(err)
	}
	if st.Admitted != 0 {
		t.Errorf("invalid requests consumed %d session slots", st.Admitted)
	}
}

// TestAsyncJobAndEvents drives the async path end to end: submit,
// poll to done, stream events, and pin the stream to the journal
// corpus.Run itself emits for the same manifest — the wire feed IS the
// deterministic corpus journal.
func TestAsyncJobAndEvents(t *testing.T) {
	_, ts := startServer(t, Config{})
	code, _, b := post(t, ts.URL+"/v1/corpus?async=1", "", corpusBody(t))
	if code != 202 {
		t.Fatalf("async submit: %d %s", code, b)
	}
	var js api.JobStatus
	if err := json.Unmarshal(b, &js); err != nil {
		t.Fatal(err)
	}
	if js.ID == "" || js.State == api.JobDone {
		t.Fatalf("bad initial job status: %+v", js)
	}

	// The events stream follows until the job is done.
	code, events := get(t, ts.URL+"/v1/jobs/"+js.ID+"/events", "")
	if code != 200 {
		t.Fatalf("events: %d %s", code, events)
	}
	if err := obs.ValidateJournal(bytes.NewReader(events)); err != nil {
		t.Fatalf("event stream is not a valid journal: %v", err)
	}

	// Reference journal from a direct batch run.
	var want bytes.Buffer
	j := obs.NewJournal(&want)
	if _, err := corpus.Run(context.Background(), loadManifest(t), corpus.Options{Observer: j}); err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(events, want.Bytes()) {
		t.Errorf("event stream differs from the batch corpus journal:\ngot:\n%s\nwant:\n%s", events, want.Bytes())
	}

	// After the stream ends the job must be done, with the report.
	code, jb := get(t, ts.URL+"/v1/jobs/"+js.ID, "")
	if code != 200 {
		t.Fatalf("job status: %d %s", code, jb)
	}
	if err := json.Unmarshal(jb, &js); err != nil {
		t.Fatal(err)
	}
	if js.State != api.JobDone || js.Report == nil || js.Error != nil {
		t.Fatalf("job not done with report: %+v", js)
	}
	if js.Report.Total != 3 || js.Report.Located != 2 {
		t.Errorf("report totals: %+v", js.Report)
	}
}

// TestJobTenantIsolation: a job id is visible only to the tenant that
// submitted it.
func TestJobTenantIsolation(t *testing.T) {
	_, ts := startServer(t, Config{})
	code, _, b := post(t, ts.URL+"/v1/corpus?async=1", "alice", corpusBody(t))
	if code != 202 {
		t.Fatalf("submit: %d %s", code, b)
	}
	var js api.JobStatus
	if err := json.Unmarshal(b, &js); err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/"+js.ID, "mallory"); code != 404 {
		t.Errorf("foreign tenant read job: %d", code)
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/"+js.ID+"/events", "mallory"); code != 404 {
		t.Errorf("foreign tenant read events: %d", code)
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/"+js.ID, "alice"); code != 200 {
		t.Errorf("owner denied: %d", code)
	}
}

func TestUnknownJob(t *testing.T) {
	_, ts := startServer(t, Config{})
	code, b := get(t, ts.URL+"/v1/jobs/j0000000000000000", "")
	if code != 404 || !strings.Contains(string(b), api.CodeNotFound) {
		t.Errorf("unknown job: %d %s", code, b)
	}
}

// TestStatszWarmState: statsz reflects the warm caches accumulating
// across requests.
func TestStatszWarmState(t *testing.T) {
	_, ts := startServer(t, Config{})
	body := corpusBody(t)
	if code, _, b := post(t, ts.URL+"/v1/corpus", "", body); code != 200 {
		t.Fatalf("corpus: %d %s", code, b)
	}
	var st1 Statsz
	_, sb := get(t, ts.URL+"/v1/statsz", "")
	if err := json.Unmarshal(sb, &st1); err != nil {
		t.Fatal(err)
	}
	if st1.CompiledPrograms == 0 {
		t.Error("no compiled programs after a corpus run")
	}
	if code, _, b := post(t, ts.URL+"/v1/corpus", "", body); code != 200 {
		t.Fatalf("corpus (warm): %d %s", code, b)
	}
	var st2 Statsz
	_, sb = get(t, ts.URL+"/v1/statsz", "")
	if err := json.Unmarshal(sb, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.Cache.Hits <= st1.Cache.Hits {
		t.Errorf("warm run added no cache hits: %d -> %d", st1.Cache.Hits, st2.Cache.Hits)
	}
	if st2.CompiledPrograms != st1.CompiledPrograms {
		t.Errorf("warm run recompiled: %d -> %d programs", st1.CompiledPrograms, st2.CompiledPrograms)
	}
	if st2.CorpusRequests != 2 || st2.Admitted != 2 {
		t.Errorf("request accounting: %+v", st2)
	}
}

// TestLoadGen exercises the open-loop harness against a live server:
// every request must come back, and quantiles must be populated.
func TestLoadGen(t *testing.T) {
	_, ts := startServer(t, Config{})
	lr := mustLoad(t, LoadOptions{BaseURL: ts.URL, Requests: 8, Rate: 200}, locateBody(t, 0))
	if lr.OK+lr.Rejected+lr.Errors != lr.Requests {
		t.Errorf("outcomes don't sum: %+v", lr)
	}
	if lr.OK == 0 || lr.P50MS <= 0 || lr.P99MS < lr.P50MS {
		t.Errorf("implausible load report: %s", lr.Summary())
	}
}

func mustLoad(t testing.TB, opts LoadOptions, body []byte) *LoadReport {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	lr, err := RunLoad(ctx, opts, body)
	if err != nil {
		t.Fatal(err)
	}
	return lr
}

// locateBody builds a wire locate request for subject i of the smoke
// manifest.
func locateBody(t testing.TB, i int) []byte {
	t.Helper()
	m := loadManifest(t)
	var buf bytes.Buffer
	req := &api.LocateRequest{SchemaVersion: api.SchemaVersion, Subject: m.Subjects[i]}
	req.File, req.CorrectFile = "", ""
	if err := api.Encode(&buf, req); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
