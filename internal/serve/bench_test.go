package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchPost posts body and fails the benchmark on a non-200.
func benchPost(b *testing.B, url string, body []byte) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkServeLocateWarm measures steady-state /v1/locate latency
// with every cache warm — the daemon's reason to exist. Compare with
// BenchmarkServeLocateCold for the warm-state payoff.
func BenchmarkServeLocateWarm(b *testing.B) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()
	body := locateBody(b, 0)
	benchPost(b, ts.URL+"/v1/locate", body) // warm the caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL+"/v1/locate", body)
	}
}

// BenchmarkServeLocateCold measures first-request latency against a
// fresh server per iteration: compile + SPDG + every switched run paid
// in full.
func BenchmarkServeLocateCold(b *testing.B) {
	body := locateBody(b, 0)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New(Config{})
		ts := httptest.NewServer(s)
		b.StartTimer()
		benchPost(b, ts.URL+"/v1/locate", body)
		b.StopTimer()
		ts.Close()
		s.Close()
		b.StartTimer()
	}
}

// BenchmarkServeCorpusWarm measures a whole warm corpus request (the
// smoke manifest) end to end over HTTP.
func BenchmarkServeCorpusWarm(b *testing.B) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()
	body := corpusBody(b)
	benchPost(b, ts.URL+"/v1/corpus", body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL+"/v1/corpus", body)
	}
}
