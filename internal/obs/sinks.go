package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Memory is an in-memory Observer for tests: it retains every event in
// arrival order. Safe for concurrent use.
type Memory struct {
	mu     sync.Mutex
	events []Event
}

// Event implements Observer.
func (m *Memory) Event(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Events returns a copy of the retained events.
func (m *Memory) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// Len returns the number of retained events.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// Progress renders a human-readable live view of a run: span begins and
// ends (indented by nesting depth, with elapsed time measured by the
// sink's own clock — time never rides inside events) and final gauges.
// Counts and marks are summarized at each span end rather than printed
// individually, so the output stays readable on large subjects.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	now   func() time.Time
	stack []progressFrame
}

type progressFrame struct {
	name  string
	start time.Time
	// counts accumulates Count deltas and Mark occurrences seen while
	// this frame is innermost.
	counts map[string]int64
}

// NewProgress returns a progress sink writing to w.
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w, now: time.Now}
}

// Event implements Observer.
func (p *Progress) Event(e Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch e.Kind {
	case KindBegin:
		fmt.Fprintf(p.w, "%s> %s%s\n", p.indent(), e.Name, attrSuffix(e.Attrs))
		p.stack = append(p.stack, progressFrame{name: e.Name, start: p.now(), counts: map[string]int64{}})
	case KindEnd:
		if n := len(p.stack); n > 0 && p.stack[n-1].name == e.Name {
			fr := p.stack[n-1]
			p.stack = p.stack[:n-1]
			fmt.Fprintf(p.w, "%s< %s (%v)%s%s\n",
				p.indent(), e.Name, p.now().Sub(fr.start).Round(time.Microsecond),
				countSuffix(fr.counts), attrSuffix(e.Attrs))
		} else {
			fmt.Fprintf(p.w, "%s< %s%s\n", p.indent(), e.Name, attrSuffix(e.Attrs))
		}
	case KindCount, KindMark:
		if n := len(p.stack); n > 0 {
			if e.Kind == KindMark {
				p.stack[n-1].counts[e.Name]++
			} else {
				p.stack[n-1].counts[e.Name] += e.Value
			}
		}
	case KindGauge:
		fmt.Fprintf(p.w, "%s= %s %d\n", p.indent(), e.Name, e.Value)
	}
}

func (p *Progress) indent() string { return strings.Repeat("  ", len(p.stack)) }

func countSuffix(counts map[string]int64) string {
	if len(counts) == 0 {
		return ""
	}
	var b strings.Builder
	for _, k := range sortedKeys(counts) {
		fmt.Fprintf(&b, " %s=%d", k, counts[k])
	}
	return b.String()
}

func attrSuffix(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	for _, k := range sortedKeys(attrs) {
		fmt.Fprintf(&b, " %s=%s", k, attrs[k])
	}
	return b.String()
}

// sortedKeys returns the map's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// tee fans one stream out to several observers.
type tee struct{ os []Observer }

// Tee returns an Observer that forwards each event to every non-nil
// observer in order. Nil inputs are dropped; with zero or one survivor
// it returns nil or the survivor itself.
func Tee(os ...Observer) Observer {
	kept := make([]Observer, 0, len(os))
	for _, o := range os {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &tee{os: kept}
}

// Event implements Observer.
func (t *tee) Event(e Event) {
	for _, o := range t.os {
		o.Event(e)
	}
}
