package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Journal writes the event stream as JSON Lines: one Event object per
// line, in stream order. Because events carry no timestamps, field
// order is fixed by the struct, and attribute maps serialize with
// sorted keys, the journal for a given configuration is byte-identical
// across runs and across verification worker counts — it is the durable
// form of the determinism contract.
type Journal struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewJournal returns a journal sink writing to w. Call Flush when the
// run is done.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: bufio.NewWriter(w)}
}

// Event implements Observer. Encoding errors are sticky and reported by
// Flush.
func (j *Journal) Event(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(b); err != nil {
		j.err = err
		return
	}
	j.err = j.w.WriteByte('\n')
}

// Flush drains buffered output and returns the first error seen.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// ValidateJournal checks a JSONL journal against the schema: every line
// a well-formed Event, sequence numbers contiguous from 1, kinds known,
// names non-empty, and begin/end spans properly nested and balanced.
func ValidateJournal(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var (
		line  int
		want  int64 = 1
		stack []string
	)
	for sc.Scan() {
		line++
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return fmt.Errorf("journal line %d: %v", line, err)
		}
		if e.Seq != want {
			return fmt.Errorf("journal line %d: seq %d, want %d", line, e.Seq, want)
		}
		want++
		if !e.Kind.valid() {
			return fmt.Errorf("journal line %d: unknown kind %q", line, e.Kind)
		}
		if e.Name == "" {
			return fmt.Errorf("journal line %d: empty name", line)
		}
		switch e.Kind {
		case KindBegin:
			stack = append(stack, e.Name)
		case KindEnd:
			if len(stack) == 0 {
				return fmt.Errorf("journal line %d: end %q with no open span", line, e.Name)
			}
			top := stack[len(stack)-1]
			if top != e.Name {
				return fmt.Errorf("journal line %d: end %q, innermost open span is %q", line, e.Name, top)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("journal line %d: %v", line+1, err)
	}
	if line == 0 {
		return fmt.Errorf("journal: empty")
	}
	if len(stack) > 0 {
		return fmt.Errorf("journal: %d unclosed span(s), innermost %q", len(stack), stack[len(stack)-1])
	}
	return nil
}
