package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestNilRecorderNoops(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	// None of these may panic.
	r.Begin("span", "k", "v")
	r.End("span", 1)
	r.Count("c", 2)
	r.Gauge("g", 3)
	r.Mark("m", 4, "k", "v")
}

func TestNewRecorderNilObserver(t *testing.T) {
	if NewRecorder(nil) != nil {
		t.Fatal("NewRecorder(nil) should return the disabled (nil) recorder")
	}
}

func TestRecorderSequencesAndAttrs(t *testing.T) {
	var m Memory
	r := NewRecorder(&m)
	if !r.Enabled() {
		t.Fatal("recorder with observer reports disabled")
	}
	r.Begin("locate", "subject", "fig1")
	r.Count("pruned_entries", 3)
	r.Gauge("located", 1)
	r.Mark("verdict", 2, "pred", "S5#1", "use", "S9")
	r.End("locate", 1)

	evs := m.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != int64(i+1) {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, i+1)
		}
	}
	if evs[0].Kind != KindBegin || evs[0].Attrs["subject"] != "fig1" {
		t.Errorf("begin event malformed: %v", evs[0])
	}
	if evs[1].Kind != KindCount || evs[1].Value != 3 {
		t.Errorf("count event malformed: %v", evs[1])
	}
	if evs[3].Attrs["pred"] != "S5#1" || evs[3].Attrs["use"] != "S9" {
		t.Errorf("mark attrs malformed: %v", evs[3])
	}
	want := "#4 mark verdict=2 pred=S5#1 use=S9"
	if got := evs[3].String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("Tee of nothing should be nil")
	}
	var m Memory
	if Tee(nil, &m) != Observer(&m) {
		t.Fatal("Tee with one survivor should return it unwrapped")
	}
	var a, b Memory
	r := NewRecorder(Tee(&a, nil, &b))
	r.Count("c", 1)
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("tee fan-out failed: a=%d b=%d", a.Len(), b.Len())
	}
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	r := NewRecorder(j)
	r.Begin("locate")
	r.Begin("verify_batch", "reqs", "4")
	r.Mark("switched_run", 120, "pred", "S5#1")
	r.Count("switched_runs", 1)
	r.End("verify_batch", 4)
	r.Gauge("located", 1)
	r.End("locate", 1)
	if err := j.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := ValidateJournal(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ValidateJournal: %v", err)
	}
	first, _, _ := strings.Cut(buf.String(), "\n")
	want := `{"seq":1,"kind":"begin","name":"locate"}`
	if first != want {
		t.Errorf("first journal line = %s, want %s", first, want)
	}
}

func TestValidateJournalRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "empty"},
		{"bad json", "not json\n", "line 1"},
		{"seq gap", `{"seq":2,"kind":"count","name":"c"}` + "\n", "seq 2, want 1"},
		{"unknown kind", `{"seq":1,"kind":"blip","name":"c"}` + "\n", "unknown kind"},
		{"empty name", `{"seq":1,"kind":"count","name":""}` + "\n", "empty name"},
		{"stray end", `{"seq":1,"kind":"end","name":"s"}` + "\n", "no open span"},
		{"mismatched end", `{"seq":1,"kind":"begin","name":"a"}` + "\n" +
			`{"seq":2,"kind":"end","name":"b"}` + "\n", "innermost open span"},
		{"unclosed span", `{"seq":1,"kind":"begin","name":"a"}` + "\n", "unclosed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateJournal(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestProgressSink(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	base := time.Unix(0, 0)
	p.now = func() time.Time {
		base = base.Add(time.Millisecond)
		return base
	}
	r := NewRecorder(p)
	r.Begin("locate")
	r.Begin("verify_batch", "reqs", "2")
	r.Mark("switched_run", 10)
	r.Count("cache_hits", 1)
	r.End("verify_batch", 2)
	r.Gauge("located", 1)
	r.End("locate", 1)

	out := buf.String()
	for _, want := range []string{
		"> locate",
		"  > verify_batch reqs=2",
		"  < verify_batch (1ms) cache_hits=1 switched_run=1",
		"  = located 1",
		"< locate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
}

func TestStatsCacheHitRate(t *testing.T) {
	var s Stats
	if got := s.CacheHitRate(); got != 0 {
		t.Fatalf("empty hit rate = %v, want 0", got)
	}
	s.CacheHits, s.CacheMisses = 3, 1
	if got := s.CacheHitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
}

func TestStatsEmit(t *testing.T) {
	var m Memory
	r := NewRecorder(&m)
	s := Stats{UserPrunings: 2, SwitchedRuns: 7}
	s.Emit(r)
	evs := m.Events()
	if len(evs) != len(statGauges) {
		t.Fatalf("emitted %d gauges, want %d", len(evs), len(statGauges))
	}
	if evs[0].Name != "user_prunings" || evs[0].Value != 2 {
		t.Errorf("first gauge = %v", evs[0])
	}
	// Zero-valued fields still emit, so gauge presence is config-independent.
	var seen int
	for _, e := range evs {
		if e.Kind != KindGauge {
			t.Errorf("non-gauge event from Emit: %v", e)
		}
		if e.Name == "verifications" && e.Value == 0 {
			seen++
		}
	}
	if seen != 1 {
		t.Errorf("zero-valued gauge not emitted")
	}
	// Nil recorder: no panic.
	s.Emit(nil)
}
