// Package obs is the deterministic observability layer of the locator:
// span events for each localization phase, monotonic counters and gauges
// for the quantities that dominate a run's cost (switched re-executions,
// cache hits, static skips, aligned regions, pruned entries), and
// pluggable sinks (in-memory for tests, a human progress writer, a JSONL
// run-journal writer).
//
// # Determinism contract
//
// The event stream is part of the locator's reproducibility surface: for
// a fixed configuration (cache sizing, skip-filter setting) the stream —
// sequence numbers, order, names, values, attributes — is byte-identical
// for any verification worker count. Two rules make that hold:
//
//   - Events are only emitted from deterministic program points: the
//     locator's planning loop, batch absorption (which replays worker
//     results in request order), and sequential helpers. Worker
//     goroutines never emit.
//   - Events carry no wall-clock timestamps. Time is out-of-band: sinks
//     that want it (the progress writer) attach their own clock at
//     receipt, and the journal omits it entirely.
//
// Configuration that varies between otherwise-equivalent runs (the
// worker count) is deliberately kept out of the stream.
//
// # Fast path
//
// Instrumented packages hold a *Recorder, which is nil when no observer
// is attached. Every Recorder method is safe on a nil receiver and
// returns immediately, so the uninstrumented hot path costs one pointer
// test per site (see the overhead numbers in docs/OBSERVABILITY.md).
package obs

import (
	"fmt"
	"sync"
)

// Kind classifies an Event.
type Kind string

// Event kinds. Begin/End bracket a span; Count is a monotonic counter
// increment; Gauge is a point-in-time value; Mark is a single
// occurrence (one verification verdict, one switched re-execution).
const (
	KindBegin Kind = "begin"
	KindEnd   Kind = "end"
	KindCount Kind = "count"
	KindGauge Kind = "gauge"
	KindMark  Kind = "mark"
)

// valid reports whether k is one of the defined kinds.
func (k Kind) valid() bool {
	switch k {
	case KindBegin, KindEnd, KindCount, KindGauge, KindMark:
		return true
	}
	return false
}

// Event is one record of a run's observability stream. See
// docs/OBSERVABILITY.md for the event schema and the per-name meaning of
// Value.
type Event struct {
	// Seq numbers events 1, 2, 3, ... within one recorder's stream.
	Seq int64 `json:"seq"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Name is the span name (begin/end), counter or gauge name, or mark
	// name.
	Name string `json:"name"`
	// Value is the counter delta, gauge value, mark payload, or span
	// result (End only; Begin leaves it 0).
	Value int64 `json:"value,omitempty"`
	// Attrs carries small string attributes (predicate instance, verdict,
	// iteration number). Serialized with sorted keys.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// String renders the event compactly (for test failures and logs).
func (e Event) String() string {
	s := fmt.Sprintf("#%d %s %s=%d", e.Seq, e.Kind, e.Name, e.Value)
	for _, k := range sortedKeys(e.Attrs) {
		s += fmt.Sprintf(" %s=%s", k, e.Attrs[k])
	}
	return s
}

// Observer consumes one run's event stream. Calls are serialized by the
// emitting Recorder; an Observer needs its own locking only if it is
// shared across recorders.
type Observer interface {
	Event(Event)
}

// Recorder assigns sequence numbers and forwards events to one Observer.
// The zero value of *Recorder (nil) is the disabled recorder: every
// method is a no-op, which is the fast path instrumented code relies on.
type Recorder struct {
	mu  sync.Mutex
	o   Observer
	seq int64
}

// NewRecorder returns a recorder over o, or nil — the disabled recorder
// — when o is nil.
func NewRecorder(o Observer) *Recorder {
	if o == nil {
		return nil
	}
	return &Recorder{o: o}
}

// Enabled reports whether events are being recorded. Use it to guard
// attribute construction that would otherwise burden the fast path.
func (r *Recorder) Enabled() bool { return r != nil }

// emit assigns the next sequence number and forwards the event.
func (r *Recorder) emit(k Kind, name string, value int64, attrs []string) {
	if r == nil {
		return
	}
	var m map[string]string
	if len(attrs) > 0 {
		m = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			m[attrs[i]] = attrs[i+1]
		}
	}
	r.mu.Lock()
	r.seq++
	e := Event{Seq: r.seq, Kind: k, Name: name, Value: value, Attrs: m}
	r.o.Event(e)
	r.mu.Unlock()
}

// Begin opens a span. attrs are alternating key, value pairs.
func (r *Recorder) Begin(span string, attrs ...string) {
	r.emit(KindBegin, span, 0, attrs)
}

// End closes the innermost open span with the given name, carrying a
// span-specific result value.
func (r *Recorder) End(span string, value int64, attrs ...string) {
	r.emit(KindEnd, span, value, attrs)
}

// Count increments the named monotonic counter by delta.
func (r *Recorder) Count(name string, delta int64) {
	r.emit(KindCount, name, delta, nil)
}

// Gauge records a point-in-time value.
func (r *Recorder) Gauge(name string, value int64) {
	r.emit(KindGauge, name, value, nil)
}

// Mark records a single occurrence. attrs are alternating key, value
// pairs.
func (r *Recorder) Mark(name string, value int64, attrs ...string) {
	r.emit(KindMark, name, value, attrs)
}
