package obs

// Stats aggregates one localization run's counters. It is the single
// stats vocabulary shared by the observability layer, core's Report,
// and the public Diagnosis: the Table-3 effectiveness counters from the
// paper (prunings, verifications, iterations, expanded edges) next to
// the engine-level cost counters (switched re-executions, cache
// traffic, static skips, alignment work).
type Stats struct {
	// UserPrunings counts slice entries pruned by confidence analysis
	// (the paper's "user interactions saved" measure).
	UserPrunings int
	// Verifications counts implicit-dependence verifications performed
	// (Definition 2/4 checks), excluding memo hits.
	Verifications int
	// Iterations counts Algorithm-2 expansion iterations.
	Iterations int
	// ExpandedEdges counts dependence edges added by expansion.
	ExpandedEdges int
	// StrongEdges counts strong implicit-dependence edges in the final
	// graph.
	StrongEdges int
	// ImplicitEdges counts (weak) implicit-dependence edges in the final
	// graph.
	ImplicitEdges int

	// SwitchedRuns counts switched re-executions actually performed by
	// the verify engine (cache misses execute; hits do not).
	SwitchedRuns int64
	// CacheHits and CacheMisses count switched-run cache lookups.
	CacheHits, CacheMisses int64
	// CacheEvictions counts LRU evictions from the switched-run cache.
	CacheEvictions int64
	// StaticSkips counts verifications answered by the static
	// skip-filter without any re-execution.
	StaticSkips int64
	// StaticReachSkips counts verifications answered by the SPDG reach
	// filter (check.StaticReachFilter) — proved NOT_ID before any
	// execution, without even replaying the failing trace. Distinct from
	// StaticSkips: the replay filter works one instance at a time, the
	// reach filter retires whole candidate families per predicate
	// statement.
	StaticReachSkips int64
	// AlignedRegions counts code regions walked by the alignment
	// algorithm (Algorithm 1) during verification.
	AlignedRegions int64

	// Repropagated counts confidence entries re-evaluated by re-prune
	// passes after the first (delta passes count their dirty set, full
	// passes the whole trace); DirtyFraction is Repropagated divided by
	// passes·trace-length — the mean dirty fraction, 1.0 when incremental
	// re-pruning is off. Like the worker count, these describe the cost of
	// the chosen execution mode, not the analysis result, so they are NOT
	// emitted as journal gauges: the journal must stay byte-identical with
	// incremental mode on or off (docs/OBSERVABILITY.md).
	Repropagated  int64
	DirtyFraction float64

	// Checkpoint counters (docs/CHECKPOINT.md). CheckpointHits counts
	// switched runs served by forking a checkpoint of the failing run;
	// SuffixSteps totals the interpreter steps those forks executed — the
	// saving is the forks' full-run step counts minus SuffixSteps.
	// Checkpoints and CheckpointBytes describe the store captured during
	// the failing run. Like Repropagated above, all four describe the cost
	// of the chosen execution mode, not the analysis result, so they are
	// NOT emitted as journal gauges: the journal must stay byte-identical
	// with checkpointing on or off.
	CheckpointHits  int64
	SuffixSteps     int64
	Checkpoints     int
	CheckpointBytes int64

	// Speculation counters (docs/SPECULATION.md). SpecIssued counts
	// speculative switched runs issued ahead of demand; SpecHits the ones
	// a later demand verification claimed (their latency was hidden
	// behind the re-prune); SpecWasted the difference — mispredictions
	// plus runs aborted by the final drain. Claimed runs are charged to
	// SwitchedRuns/CacheMisses/Checkpoint* exactly as the demand run they
	// replaced would have been, so every other counter — and the whole
	// journal — is byte-identical with speculation on or off. Like the
	// checkpoint counters above, these describe the cost of the chosen
	// execution mode, not the analysis result, and with a shared cache
	// they depend on what other localizations already cached; they are
	// therefore NOT emitted as journal gauges.
	SpecIssued int64
	SpecHits   int64
	SpecWasted int64
}

// CacheHitRate returns hits / (hits + misses), or 0 with no lookups.
func (s Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// statGauges lists the gauge name for each Stats field, in the fixed
// order Emit uses. The order is part of the journal's byte-determinism
// surface: never reorder, only append.
var statGauges = []struct {
	name string
	get  func(*Stats) int64
}{
	{"user_prunings", func(s *Stats) int64 { return int64(s.UserPrunings) }},
	{"verifications", func(s *Stats) int64 { return int64(s.Verifications) }},
	{"iterations", func(s *Stats) int64 { return int64(s.Iterations) }},
	{"expanded_edges", func(s *Stats) int64 { return int64(s.ExpandedEdges) }},
	{"strong_edges", func(s *Stats) int64 { return int64(s.StrongEdges) }},
	{"implicit_edges", func(s *Stats) int64 { return int64(s.ImplicitEdges) }},
	{"switched_runs", func(s *Stats) int64 { return s.SwitchedRuns }},
	{"cache_hits", func(s *Stats) int64 { return s.CacheHits }},
	{"cache_misses", func(s *Stats) int64 { return s.CacheMisses }},
	{"cache_evictions", func(s *Stats) int64 { return s.CacheEvictions }},
	{"static_skips", func(s *Stats) int64 { return s.StaticSkips }},
	{"aligned_regions", func(s *Stats) int64 { return s.AlignedRegions }},
	{"static_reach_skips", func(s *Stats) int64 { return s.StaticReachSkips }},
}

// Emit records every stats field as a gauge on r, in a fixed order.
// Zero-valued fields are emitted too, so the set of gauges present does
// not depend on which features fired.
func (s *Stats) Emit(r *Recorder) {
	if r == nil {
		return
	}
	for _, g := range statGauges {
		r.Gauge(g.name, g.get(s))
	}
}
