package implicit

import (
	"testing"

	"eol/internal/trace"

	"eol/internal/testsupport"
)

// TestPerturbationClosesTable5bGap: the nested-predicate case where
// single-predicate switching fails to expose the implicit dependence
// (TestTable5bUnsoundness) IS exposed by perturbing the faulty value —
// the paper's §5 proposed remedy.
func TestPerturbationClosesTable5bGap(t *testing.T) {
	src := `
func main() {
    var A = read();
    var X = 1;
    if (A > 10) {
        if (A > 100) {
            X = 2;
        }
    }
    print(X);
}`
	c := testsupport.Compile(t, src)
	r := testsupport.Run(t, c, []int64{5})
	aDef := testsupport.StmtID(t, c, "var A = read()")
	pr := testsupport.StmtID(t, c, "print(X)")

	v := &Verifier{C: c, Input: []int64{5}, Orig: r.Trace}
	d := r.Trace.FindInstance(trace.Instance{Stmt: aDef, Occ: 1})
	u := r.Trace.FindInstance(trace.Instance{Stmt: pr, Occ: 1})

	res := v.PerturbVerify(PerturbRequest{
		Def: d, Use: u,
		Candidates: []int64{7, 50, 200}, // from a hypothetical value profile
	})
	if !res.Dependent {
		t.Fatal("perturbation failed to expose the Table 5(b) dependence")
	}
	if res.Witness != 200 {
		t.Errorf("witness = %d, want 200 (only a value > 100 takes both branches)", res.Witness)
	}
	// 7 and 50 do not change X; 200 does: three re-executions at most,
	// and the cost exceeds the single switch the binary domain needs.
	if res.Reexecutions != 3 {
		t.Errorf("re-executions = %d, want 3 (stop at the witness)", res.Reexecutions)
	}
}

// TestPerturbNoDependence: perturbing an unrelated definition leaves the
// use untouched.
func TestPerturbNoDependence(t *testing.T) {
	src := `
func main() {
    var a = read();
    var b = read();
    var x = a * 2;
    print(x);
    print(b);
}`
	c := testsupport.Compile(t, src)
	r := testsupport.Run(t, c, []int64{3, 4})
	bDef := testsupport.StmtID(t, c, "var b = read()")
	prX := testsupport.StmtID(t, c, "print(x)")

	v := &Verifier{C: c, Input: []int64{3, 4}, Orig: r.Trace}
	d := r.Trace.FindInstance(trace.Instance{Stmt: bDef, Occ: 1})
	u := r.Trace.FindInstance(trace.Instance{Stmt: prX, Occ: 1})

	res := v.PerturbVerify(PerturbRequest{Def: d, Use: u, Candidates: []int64{99, -1}})
	if res.Dependent {
		t.Errorf("spurious dependence via witness %d", res.Witness)
	}
	if res.Reexecutions != 2 {
		t.Errorf("re-executions = %d, want 2", res.Reexecutions)
	}
}

// TestPerturbSkipsOriginalValue: a candidate equal to the original value
// is not a disturbance and must not trigger a re-execution.
func TestPerturbSkipsOriginalValue(t *testing.T) {
	src := `
func main() {
    var a = read();
    print(a);
}`
	c := testsupport.Compile(t, src)
	r := testsupport.Run(t, c, []int64{5})
	aDef := testsupport.StmtID(t, c, "var a = read()")
	pr := testsupport.StmtID(t, c, "print(a)")

	v := &Verifier{C: c, Input: []int64{5}, Orig: r.Trace}
	d := r.Trace.FindInstance(trace.Instance{Stmt: aDef, Occ: 1})
	u := r.Trace.FindInstance(trace.Instance{Stmt: pr, Occ: 1})

	res := v.PerturbVerify(PerturbRequest{Def: d, Use: u, Candidates: []int64{5}})
	if res.Reexecutions != 0 || res.Dependent {
		t.Errorf("original value must be skipped: %+v", res)
	}
	// A genuinely different value flows straight to the print.
	res = v.PerturbVerify(PerturbRequest{Def: d, Use: u, Candidates: []int64{6}})
	if !res.Dependent {
		t.Error("direct data dependence not exposed by perturbation")
	}
}

func TestProfileCandidates(t *testing.T) {
	c := testsupport.Compile(t, `func main() { var a = read(); print(a); }`)
	r := testsupport.Run(t, c, []int64{5})
	d := r.Trace.FindInstance(trace.Instance{Stmt: 1, Occ: 1})
	got := ProfileCandidates(r.Trace, d, []int64{5, 7, 7, 9, 11}, 2)
	if len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Errorf("candidates = %v, want [7 9] (skip original, dedupe, cap)", got)
	}
}
