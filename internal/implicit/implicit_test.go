package implicit

import (
	"testing"

	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/slicing"
	"eol/internal/testsupport"
	"eol/internal/trace"
)

// fig1Verifier runs the Figure 1 scenario and prepares a Verifier with
// the wrong output and expected value filled in.
func fig1Verifier(t *testing.T) (*Verifier, *interp.Compiled) {
	t.Helper()
	c := testsupport.Compile(t, testsupport.Fig1Faulty)
	fixed := testsupport.Compile(t, testsupport.Fig1Fixed)
	want := testsupport.Run(t, fixed, testsupport.Fig1Input).OutputValues()
	r := testsupport.Run(t, c, testsupport.Fig1Input)

	seq, _, ok := slicing.FirstWrongOutput(r.OutputValues(), want)
	if !ok {
		t.Fatal("no failure")
	}
	return &Verifier{
		C:        c,
		Input:    testsupport.Fig1Input,
		Orig:     r.Trace,
		WrongOut: *r.Trace.OutputAt(seq),
		Vexp:     want[seq],
		HasVexp:  true,
	}, c
}

func symID(t *testing.T, c *interp.Compiled, name string) int {
	t.Helper()
	for _, s := range c.Info.Symbols {
		if s.Name == name {
			return s.ID
		}
	}
	t.Fatalf("symbol %q not found", name)
	return 0
}

// TestFig1StrongImplicitDependence reproduces step (3) of the paper's
// worked example: VerifyDep(S4, S6) returns STRONG_ID — switching the
// first if produces the expected flags value at the failure point.
func TestFig1StrongImplicitDependence(t *testing.T) {
	v, c := fig1Verifier(t)
	ifFlags := testsupport.StmtID(t, c, "if (saveOrigName)")
	writeFlags := testsupport.StmtID(t, c, "outbuf[outcnt] = flags")

	p := v.Orig.FindInstance(trace.Instance{Stmt: ifFlags, Occ: 1})
	u := v.Orig.FindInstance(trace.Instance{Stmt: writeFlags, Occ: 1})
	verdict := v.Verify(Request{Pred: p, Use: u, UseSym: symID(t, c, "flags"), UseElem: trace.ScalarElem})
	if verdict != StrongID {
		t.Errorf("VerifyDep(S4, S6) = %v, want STRONG_ID", verdict)
	}
}

// TestFig1FalsePotentialRejected reproduces step (2): VerifyDep(S7, S10)
// returns NOT_ID — the potential dependence introduced by whole-array
// reasoning does not survive verification.
func TestFig1FalsePotentialRejected(t *testing.T) {
	v, c := fig1Verifier(t)
	// The second "if (saveOrigName)" is the paper's S7.
	first := testsupport.StmtID(t, c, "if (saveOrigName)")
	second := 0
	for _, s := range c.Info.Stmts {
		if s.ID() > first && ast.StmtString(s) == "if (saveOrigName)" {
			second = s.ID()
			break
		}
	}
	if second == 0 {
		t.Fatal("second if not found")
	}

	p := v.Orig.FindInstance(trace.Instance{Stmt: second, Occ: 1})
	u := v.WrongOut.Entry // the wrong print
	verdict := v.Verify(Request{Pred: p, Use: u, UseSym: symID(t, c, "outbuf"), UseElem: 1})
	if verdict != NotID {
		t.Errorf("VerifyDep(S7, S10) = %v, want NOT_ID", verdict)
	}
}

// TestTable5aFeasibility: switching may force a statically infeasible
// path and still expose a dependence; the technique accepts this (the
// predicate itself may be the bug).
func TestTable5aFeasibility(t *testing.T) {
	src := `
func main() {
    var A = read();
    var X = 1;
    if (A > 10) {
        A = A + 1;
    }
    if (A < 5) {
        X = 2;
    }
    print(X);
}`
	c := testsupport.Compile(t, src)
	r := testsupport.Run(t, c, []int64{15})
	p2 := testsupport.StmtID(t, c, "if (A < 5)")
	pr := testsupport.StmtID(t, c, "print(X)")

	v := &Verifier{C: c, Input: []int64{15}, Orig: r.Trace}
	p := r.Trace.FindInstance(trace.Instance{Stmt: p2, Occ: 1})
	u := r.Trace.FindInstance(trace.Instance{Stmt: pr, Occ: 1})
	verdict := v.Verify(Request{Pred: p, Use: u, UseSym: symID(t, c, "X"), UseElem: trace.ScalarElem})
	if verdict != ID {
		t.Errorf("infeasible-path dependence: VerifyDep = %v, want ID", verdict)
	}
}

// TestTable5bUnsoundness: nested predicates guarded by the same faulty
// value hide the implicit dependence — switching one predicate at a time
// does not expose it (the paper's documented soundness gap).
func TestTable5bUnsoundness(t *testing.T) {
	src := `
func main() {
    var A = read();
    var X = 1;
    if (A > 10) {
        if (A > 100) {
            X = 2;
        }
    }
    print(X);
}`
	c := testsupport.Compile(t, src)
	r := testsupport.Run(t, c, []int64{5})
	p1 := testsupport.StmtID(t, c, "if (A > 10)")
	pr := testsupport.StmtID(t, c, "print(X)")

	v := &Verifier{C: c, Input: []int64{5}, Orig: r.Trace}
	p := r.Trace.FindInstance(trace.Instance{Stmt: p1, Occ: 1})
	u := r.Trace.FindInstance(trace.Instance{Stmt: pr, Occ: 1})
	verdict := v.Verify(Request{Pred: p, Use: u, UseSym: symID(t, c, "X"), UseElem: trace.ScalarElem})
	if verdict != NotID {
		t.Errorf("nested-predicate case: VerifyDep = %v, want NOT_ID (documented unsoundness)", verdict)
	}
}

// edgesVsPathsSrc: the paper's §3.1 example where the loop body defines x.
// With the edge approximation, VerifyDep(if(P), print(x)) is NOT_ID; with
// path mode (the letter of Definition 2) it is ID.
const edgesVsPathsSrc = `
func main() {
    var i = 0;
    var t = 0;
    var x = 0;
    var P = read();
    if (P) {
        t = 1;
    }
    while (i < t) {
        x = 9;
        i = i + 1;
    }
    print(x);
}`

func TestEdgesVsPaths(t *testing.T) {
	c := testsupport.Compile(t, edgesVsPathsSrc)
	r := testsupport.Run(t, c, []int64{0})
	ifP := testsupport.StmtID(t, c, "if (P)")
	pr := testsupport.StmtID(t, c, "print(x)")
	p := r.Trace.FindInstance(trace.Instance{Stmt: ifP, Occ: 1})
	u := r.Trace.FindInstance(trace.Instance{Stmt: pr, Occ: 1})
	req := Request{Pred: p, Use: u, UseSym: symID(t, c, "x"), UseElem: trace.ScalarElem}

	edge := &Verifier{C: c, Input: []int64{0}, Orig: r.Trace}
	if got := edge.Verify(req); got != NotID {
		t.Errorf("edge mode: VerifyDep = %v, want NOT_ID (x's def is outside Region(p'))", got)
	}
	path := &Verifier{C: c, Input: []int64{0}, Orig: r.Trace, PathMode: true}
	if got := path.Verify(req); got != ID {
		t.Errorf("path mode: VerifyDep = %v, want ID (explicit path p'->t->while->x->print)", got)
	}

	// The edge-mode route to the root cause still exists stepwise:
	// if(P) -> while-cond (use of t), then while-cond -> print (use of x).
	wcond := testsupport.StmtID(t, c, "while (i < t)")
	w := r.Trace.FindInstance(trace.Instance{Stmt: wcond, Occ: 1})
	if got := edge.Verify(Request{Pred: p, Use: w, UseSym: symID(t, c, "t"), UseElem: trace.ScalarElem}); got != ID {
		t.Errorf("edge mode: VerifyDep(if, while-cond) = %v, want ID", got)
	}
	if got := edge.Verify(Request{Pred: w, Use: u, UseSym: symID(t, c, "x"), UseElem: trace.ScalarElem}); got != ID {
		t.Errorf("edge mode: VerifyDep(while-cond, print) = %v, want ID", got)
	}
}

// TestBudgetTimeout: if the switched execution blows the step budget, the
// verification fails (NOT_ID), mirroring the paper's timer.
func TestBudgetTimeout(t *testing.T) {
	src := `
func main() {
    var P = read();
    var x = 1;
    var bound = 3;
    if (P) {
        bound = 100000;
    }
    var i = 0;
    while (i < bound) {
        i = i + 1;
    }
    print(x);
}`
	c := testsupport.Compile(t, src)
	r := testsupport.Run(t, c, []int64{0})
	ifP := testsupport.StmtID(t, c, "if (P)")
	pr := testsupport.StmtID(t, c, "print(x)")
	p := r.Trace.FindInstance(trace.Instance{Stmt: ifP, Occ: 1})
	u := r.Trace.FindInstance(trace.Instance{Stmt: pr, Occ: 1})

	v := &Verifier{C: c, Input: []int64{0}, Orig: r.Trace, BudgetFactor: 2}
	got := v.Verify(Request{Pred: p, Use: u, UseSym: symID(t, c, "x"), UseElem: trace.ScalarElem})
	if got != NotID {
		t.Errorf("timed-out verification = %v, want NOT_ID", got)
	}
}

// TestCrashTreatedAsMissing: a switched run that crashes before reaching
// u' counts as "u' not found" — an implicit dependence.
func TestCrashTreatedAsMissing(t *testing.T) {
	src := `
var a[4];
func main() {
    var P = read();
    var x = 1;
    var idx = 0;
    if (P) {
        idx = 100;
    }
    a[idx] = 5;
    print(x);
}`
	c := testsupport.Compile(t, src)
	r := testsupport.Run(t, c, []int64{0})
	ifP := testsupport.StmtID(t, c, "if (P)")
	pr := testsupport.StmtID(t, c, "print(x)")
	p := r.Trace.FindInstance(trace.Instance{Stmt: ifP, Occ: 1})
	u := r.Trace.FindInstance(trace.Instance{Stmt: pr, Occ: 1})

	v := &Verifier{C: c, Input: []int64{0}, Orig: r.Trace}
	got := v.Verify(Request{Pred: p, Use: u, UseSym: symID(t, c, "x"), UseElem: trace.ScalarElem})
	if got != ID {
		t.Errorf("crashing switched run: VerifyDep = %v, want ID (u' missing)", got)
	}
}

// TestMemoization: repeated verification of the same dependence re-uses
// the cached verdict instead of re-executing.
func TestMemoization(t *testing.T) {
	v, c := fig1Verifier(t)
	ifFlags := testsupport.StmtID(t, c, "if (saveOrigName)")
	writeFlags := testsupport.StmtID(t, c, "outbuf[outcnt] = flags")
	p := v.Orig.FindInstance(trace.Instance{Stmt: ifFlags, Occ: 1})
	u := v.Orig.FindInstance(trace.Instance{Stmt: writeFlags, Occ: 1})
	req := Request{Pred: p, Use: u, UseSym: symID(t, c, "flags"), UseElem: trace.ScalarElem}

	v.Verify(req)
	n := v.Verifications
	v.Verify(req)
	if v.Verifications != n {
		t.Errorf("memoized verification re-executed (count %d -> %d)", n, v.Verifications)
	}
}
