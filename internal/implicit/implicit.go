// Package implicit implements implicit-dependence verification by
// predicate switching (Definitions 2 and 4 and the VerifyDep procedure of
// Algorithm 2 in the PLDI 2007 paper).
//
// Given a failing execution E, a predicate instance p and a use instance
// u with no explicit dependence path between them, the program is
// re-executed with p's branch outcome inverted; the alignment algorithm
// then looks for the counterparts p', u' (and o', the wrong output's
// counterpart) in the switched execution E'. The verdict is:
//
//	STRONG_ID  o' exists and carries the expected correct value vexp
//	           (Definition 4) — the switch repaired the failure;
//	ID         u' does not exist (condition (i) of Definition 2), or u'
//	           exists and its reaching definition d' lies inside p''s
//	           region (the data-dependence-EDGE approximation of
//	           condition (ii) used by Algorithm 2);
//	NOT_ID     otherwise, or when the switched run exceeds its step
//	           budget (the paper's verification timer).
//
// The edge approximation is deliberately unsafe (§3.1 of the paper); the
// PathMode option implements the safe explicit-dependence-PATH variant
// for the edges-vs-paths ablation.
//
// The switched re-execution is the hot path. Two seams control its cost:
// the Runner interface hands the run to a scheduling/caching layer
// (internal/verifyengine), and the Checkpoints store makes inline runs —
// and, through RunSwitchedFrom, the engine's runs — fork from snapshots
// of the failing run instead of replaying from the start
// (docs/CHECKPOINT.md). Both are transparent: every verdict, counter and
// log entry is identical with or without them.
package implicit

import (
	"context"
	"errors"
	"fmt"

	"eol/internal/align"
	"eol/internal/ddg"
	"eol/internal/depgraph"
	"eol/internal/interp"
	"eol/internal/obs"
	"eol/internal/region"
	"eol/internal/trace"
)

// Verdict is the outcome of one verification.
type Verdict int

// Verdicts, in increasing strength.
const (
	NotID Verdict = iota
	ID
	StrongID
)

// String names the verdict in the paper's notation.
func (v Verdict) String() string {
	switch v {
	case NotID:
		return "NOT_ID"
	case ID:
		return "ID"
	case StrongID:
		return "STRONG_ID"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Verifier verifies implicit dependences for one failing execution.
//
// A Verifier is not safe for concurrent use: Verify mutates the counters,
// the log and the verdict memo. Concurrent schedulers (see
// internal/verifyengine) give each worker a Clone and replay the results
// into one base Verifier with Absorb, which keeps the observable state —
// Verifications, Log order, memo — identical to a sequential run.
type Verifier struct {
	C     *interp.Compiled
	Input []int64
	Orig  *trace.Trace

	// WrongOut is the first wrong output of the failing run.
	WrongOut trace.Output
	// Vexp is the expected correct value at the wrong output, if known.
	Vexp    int64
	HasVexp bool

	// BudgetFactor bounds switched re-executions to BudgetFactor × the
	// original trace length (default 10) — the paper's timer.
	BudgetFactor int

	// PathMode, when set, uses explicit dependence *paths* between p' and
	// u' (the letter of Definition 2) instead of single data-dependence
	// edges out of p''s region (Algorithm 2's approximation).
	PathMode bool

	// Runner, if non-nil, supplies the switched re-executions — the seam
	// where a scheduling/caching layer (internal/verifyengine) plugs in.
	// When nil the interpreter is invoked inline.
	Runner SwitchedRunner

	// Ctx, if non-nil, bounds the verifier's own re-executions (the
	// inline switched runs and the perturbation runs). A Runner is
	// expected to carry its own context; this field covers the paths that
	// invoke the interpreter directly. Copied by Clone.
	Ctx context.Context

	// Backend selects the execution engine for the verifier's switched
	// re-executions (nil = interp.Tree). It must be the backend that
	// produced Orig and Checkpoints: backends are byte-identical, so any
	// mix yields the same verdicts, but a foreign checkpoint store cannot
	// be forked and every run would pay full-replay cost. Copied by
	// Clone.
	Backend interp.Backend

	// Checkpoints, if non-nil, holds execution snapshots captured during
	// the failing run by Backend (tree: interp.CheckpointStore; vm:
	// vm.Store). Inline switched runs then fork from the nearest
	// checkpoint at or before the switched instance and re-execute only
	// the suffix — byte-identical results, a fraction of the steps
	// (docs/CHECKPOINT.md). Read-only after the failing run, so it is
	// shared by Clone and safe across workers.
	Checkpoints interp.Checkpoints

	// Rec, if non-nil, receives a "verdict" mark for every fresh
	// verification recorded. It is only consulted from the sequential
	// record path (Verify / Absorb on the base verifier) and is
	// deliberately not copied by Clone, so worker goroutines never emit.
	Rec *obs.Recorder

	// Verifications counts the re-executions performed.
	Verifications int

	// Log records every verification performed, in order.
	Log []LogEntry

	// memo memoizes verdicts per (pred instance, use instance, location).
	memo map[MemoKey]Verdict
}

// SwitchedRunner supplies switched re-executions of the verifier's
// program on its failing input. Implementations must be safe for
// concurrent use; the returned Result (and its trace) must be treated as
// read-only by callers, since a caching runner shares it.
type SwitchedRunner interface {
	// SwitchedRun returns the (possibly cached) result of re-executing
	// with pred's branch outcome inverted, bounded by budget steps.
	SwitchedRun(pred trace.Instance, budget int) *interp.Result
}

// MemoKey identifies one verification judgment: the dependence pair
// (p, u) plus the used location. Within one failing execution, requests
// with equal keys have equal verdicts, so the key is what Verify
// memoizes on — and what batch schedulers deduplicate on.
type MemoKey struct {
	pred trace.Instance
	use  trace.Instance
	sym  int
	elem int64
}

// MemoKey returns the memoization key of req.
func (v *Verifier) MemoKey(req Request) MemoKey {
	return MemoKey{
		pred: v.Orig.At(req.Pred).Inst,
		use:  v.Orig.At(req.Use).Inst,
		sym:  req.UseSym,
		elem: req.UseElem,
	}
}

// LogEntry records one verification for reporting.
type LogEntry struct {
	Pred    trace.Instance
	Use     trace.Instance
	Sym     int
	Verdict Verdict
	// Perturbed marks value-perturbation verifications; Value is the
	// witnessing replacement value when Verdict != NotID.
	Perturbed bool
	Value     int64
}

// Request identifies one dependence to verify: does use entry Use
// implicitly depend on predicate instance Pred (both trace indices into
// the original execution)? UseSym/UseElem select which use of the entry
// is in question (the location whose definition could have differed).
type Request struct {
	Pred    int
	Use     int
	UseSym  int
	UseElem int64
}

// Result carries the verdict's evidence for reporting.
type Result struct {
	Verdict  Verdict
	Switched *interp.Result // the switched run
	UPrime   int            // matched use entry in E', -1 if none
	OPrime   int            // matched wrong-output entry in E', -1 if none
	OValue   int64          // value printed at o', if OPrime >= 0
	// AlignRegions counts the region steps walked by the alignment
	// algorithm for this verification — a pure function of the traces,
	// so it is deterministic regardless of which worker computed it.
	AlignRegions int
}

// Verify runs one verification re-execution and classifies the
// dependence. Verdicts are memoized per (p, u, location).
func (v *Verifier) Verify(req Request) Verdict {
	if verdict, ok := v.Memoized(req); ok {
		return verdict
	}
	return v.record(req, v.VerifyDetailed(req).Verdict)
}

// Memoized returns the verdict already recorded for req, if any.
func (v *Verifier) Memoized(req Request) (Verdict, bool) {
	verdict, ok := v.memo[v.MemoKey(req)]
	return verdict, ok
}

// Absorb records a verification result computed elsewhere (typically by
// a worker Clone) as if Verify had produced it here: counted, logged and
// memoized exactly once per key. On a repeated key the earlier verdict
// wins and nothing is counted, mirroring Verify's memo hit. It returns
// the effective verdict.
func (v *Verifier) Absorb(req Request, res *Result) Verdict {
	if verdict, ok := v.Memoized(req); ok {
		return verdict
	}
	v.Verifications++
	return v.record(req, res.Verdict)
}

// record memoizes and logs a fresh verdict for req.
func (v *Verifier) record(req Request, verdict Verdict) Verdict {
	if v.memo == nil {
		v.memo = map[MemoKey]Verdict{}
	}
	pred := v.Orig.At(req.Pred).Inst
	use := v.Orig.At(req.Use).Inst
	v.memo[v.MemoKey(req)] = verdict
	v.Log = append(v.Log, LogEntry{
		Pred: pred, Use: use, Sym: req.UseSym, Verdict: verdict,
	})
	if v.Rec.Enabled() {
		v.Rec.Mark("verdict", int64(verdict),
			"pred", pred.String(), "use", use.String(), "verdict", verdict.String())
	}
	return verdict
}

// Clone returns a Verifier sharing v's immutable configuration (program,
// input, original trace, thresholds, runner) but with fresh counters, log
// and memo. Clones are how concurrent schedulers call VerifyDetailed from
// worker goroutines without racing on v's mutable state; the original
// trace itself must have its lazy indexes pre-built (trace.Ancestry)
// before clones run concurrently.
func (v *Verifier) Clone() *Verifier {
	return &Verifier{
		C: v.C, Input: v.Input, Orig: v.Orig,
		WrongOut: v.WrongOut, Vexp: v.Vexp, HasVexp: v.HasVexp,
		BudgetFactor: v.BudgetFactor, PathMode: v.PathMode, Runner: v.Runner,
		Ctx: v.Ctx, Backend: v.Backend, Checkpoints: v.Checkpoints,
	}
}

// backend resolves the verifier's execution backend (nil = interp.Tree).
func (v *Verifier) backend() interp.Backend {
	if v.Backend != nil {
		return v.Backend
	}
	return interp.Tree
}

// RunSwitched performs the switched re-execution underlying one
// verification: run c on input with pred's branch outcome inverted, with
// full tracing, bounded by budget steps. Exported so scheduling layers
// can perform (and cache) the expensive part of VerifyDetailed.
func RunSwitched(c *interp.Compiled, input []int64, pred trace.Instance, budget int) *interp.Result {
	return RunSwitchedContext(nil, c, input, pred, budget)
}

// RunSwitchedContext is RunSwitched bounded by ctx (nil = unbounded): a
// cancelled or deadlined context aborts the re-execution with
// interp.ErrCanceled/ErrDeadline on the result.
func RunSwitchedContext(ctx context.Context, c *interp.Compiled, input []int64, pred trace.Instance, budget int) *interp.Result {
	return interp.Run(c, interp.Options{
		Input:      input,
		BuildTrace: true,
		Switch:     &interp.SwitchPlan{Stmt: pred.Stmt, Occ: pred.Occ},
		StepBudget: budget,
		Ctx:        ctx,
	})
}

// RunSwitchedFrom is the checkpoint-accelerated form of
// RunSwitchedContext on an explicit backend b (nil = interp.Tree): when
// cks holds a checkpoint of b at or before pred's instance in orig (the
// failing run's trace), the switched run forks from it and re-executes
// only the suffix. The result — trace, outputs, verdict-relevant state,
// step count — is byte-identical to a full switched run; only
// Result.ResumedAt reveals the shortcut. Falls back to a full run under
// b when no checkpoint qualifies (nil or foreign store, unknown
// instance, no checkpoint before it, or a budget already spent at the
// checkpoint).
func RunSwitchedFrom(ctx context.Context, b interp.Backend, c *interp.Compiled, input []int64, cks interp.Checkpoints, orig *trace.Trace, pred trace.Instance, budget int) *interp.Result {
	if b == nil {
		b = interp.Tree
	}
	opts := interp.Options{
		Input:      input,
		Switch:     &interp.SwitchPlan{Stmt: pred.Stmt, Occ: pred.Occ},
		StepBudget: budget,
		Ctx:        ctx,
	}
	if cks != nil {
		if r := b.RunSwitchedFrom(cks, orig, c, opts); r != nil {
			return r
		}
	}
	opts.BuildTrace = true
	return b.Run(c, opts)
}

// switchedRun obtains the switched run through the Runner seam.
func (v *Verifier) switchedRun(pred trace.Instance, budget int) *interp.Result {
	if v.Runner != nil {
		return v.Runner.SwitchedRun(pred, budget)
	}
	return RunSwitchedFrom(v.Ctx, v.backend(), v.C, v.Input, v.Checkpoints, v.Orig, pred, budget)
}

// VerifyDetailed is Verify without memoization, returning evidence.
func (v *Verifier) VerifyDetailed(req Request) *Result {
	v.Verifications++
	res := &Result{Verdict: NotID, UPrime: -1, OPrime: -1}

	pe := v.Orig.At(req.Pred)
	factor := v.BudgetFactor
	if factor <= 0 {
		factor = 10
	}
	budget := factor*v.Orig.Len() + 1000

	sw := v.switchedRun(pe.Inst, budget)
	res.Switched = sw
	if errors.Is(sw.Err, interp.ErrBudget) {
		// Timer expired: "we aggressively conclude the verification fails".
		return res
	}
	if !sw.SwitchApplied || sw.Trace == nil {
		return res
	}
	ep := sw.Trace

	// Strong implicit dependence: the wrong output's counterpart carries
	// the expected value (Definition 4 via Algorithm 2 lines 27-28).
	if v.HasVexp && v.WrongOut.Entry >= 0 {
		o, ok, walked := align.MatchCounted(v.Orig, ep, pe.Inst, v.WrongOut.Entry)
		res.AlignRegions += walked
		if ok {
			res.OPrime = o
			for _, out := range ep.OutputsOf(o) {
				if out.Arg == v.WrongOut.Arg {
					res.OValue = out.Value
					if out.Value == v.Vexp {
						res.Verdict = StrongID
						return res
					}
				}
			}
		}
	}

	// u': condition (i) of Definition 2.
	u, ok, walked := align.MatchCounted(v.Orig, ep, pe.Inst, req.Use)
	res.AlignRegions += walked
	if !ok {
		res.Verdict = ID
		return res
	}
	res.UPrime = u

	pPrimeIdx := ep.FindInstance(pe.Inst)
	if pPrimeIdx < 0 {
		return res
	}

	if v.PathMode {
		// Safe variant: any explicit dependence path between p' and u'.
		// One closure per switched trace: walk the trace directly rather
		// than building a graph that is discarded immediately.
		if depgraph.TraceBackward(ep, ddg.Explicit, u).Has(pPrimeIdx) {
			res.Verdict = ID
		}
		return res
	}

	// Algorithm 2 lines 31-35: the reaching definition d' of the use in
	// E' must lie inside Region(p').
	pRegion := region.Region{T: ep, Head: pPrimeIdx}
	for _, use := range ep.At(u).Uses {
		if use.Sym != req.UseSym {
			continue
		}
		if use.Def == trace.NoDef {
			continue
		}
		if pRegion.Contains(use.Def) {
			res.Verdict = ID
			return res
		}
	}
	return res
}
