// Package implicit implements implicit-dependence verification by
// predicate switching (Definitions 2 and 4 and the VerifyDep procedure of
// Algorithm 2 in the PLDI 2007 paper).
//
// Given a failing execution E, a predicate instance p and a use instance
// u with no explicit dependence path between them, the program is
// re-executed with p's branch outcome inverted; the alignment algorithm
// then looks for the counterparts p', u' (and o', the wrong output's
// counterpart) in the switched execution E'. The verdict is:
//
//	STRONG_ID  o' exists and carries the expected correct value vexp
//	           (Definition 4) — the switch repaired the failure;
//	ID         u' does not exist (condition (i) of Definition 2), or u'
//	           exists and its reaching definition d' lies inside p''s
//	           region (the data-dependence-EDGE approximation of
//	           condition (ii) used by Algorithm 2);
//	NOT_ID     otherwise, or when the switched run exceeds its step
//	           budget (the paper's verification timer).
//
// The edge approximation is deliberately unsafe (§3.1 of the paper); the
// PathMode option implements the safe explicit-dependence-PATH variant
// for the edges-vs-paths ablation.
package implicit

import (
	"errors"
	"fmt"

	"eol/internal/align"
	"eol/internal/ddg"
	"eol/internal/interp"
	"eol/internal/region"
	"eol/internal/trace"
)

// Verdict is the outcome of one verification.
type Verdict int

// Verdicts, in increasing strength.
const (
	NotID Verdict = iota
	ID
	StrongID
)

// String names the verdict in the paper's notation.
func (v Verdict) String() string {
	switch v {
	case NotID:
		return "NOT_ID"
	case ID:
		return "ID"
	case StrongID:
		return "STRONG_ID"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Verifier verifies implicit dependences for one failing execution.
type Verifier struct {
	C     *interp.Compiled
	Input []int64
	Orig  *trace.Trace

	// WrongOut is the first wrong output of the failing run.
	WrongOut trace.Output
	// Vexp is the expected correct value at the wrong output, if known.
	Vexp    int64
	HasVexp bool

	// BudgetFactor bounds switched re-executions to BudgetFactor × the
	// original trace length (default 10) — the paper's timer.
	BudgetFactor int

	// PathMode, when set, uses explicit dependence *paths* between p' and
	// u' (the letter of Definition 2) instead of single data-dependence
	// edges out of p''s region (Algorithm 2's approximation).
	PathMode bool

	// Verifications counts the re-executions performed.
	Verifications int

	// Log records every verification performed, in order.
	Log []LogEntry

	// cache memoizes verdicts per (pred instance, use instance, symbol).
	cache map[cacheKey]Verdict
}

type cacheKey struct {
	pred trace.Instance
	use  trace.Instance
	sym  int
	elem int64
}

// LogEntry records one verification for reporting.
type LogEntry struct {
	Pred    trace.Instance
	Use     trace.Instance
	Sym     int
	Verdict Verdict
	// Perturbed marks value-perturbation verifications; Value is the
	// witnessing replacement value when Verdict != NotID.
	Perturbed bool
	Value     int64
}

// Request identifies one dependence to verify: does use entry Use
// implicitly depend on predicate instance Pred (both trace indices into
// the original execution)? UseSym/UseElem select which use of the entry
// is in question (the location whose definition could have differed).
type Request struct {
	Pred    int
	Use     int
	UseSym  int
	UseElem int64
}

// Result carries the verdict's evidence for reporting.
type Result struct {
	Verdict  Verdict
	Switched *interp.Result // the switched run
	UPrime   int            // matched use entry in E', -1 if none
	OPrime   int            // matched wrong-output entry in E', -1 if none
	OValue   int64          // value printed at o', if OPrime >= 0
}

// Verify runs one verification re-execution and classifies the
// dependence. Verdicts are memoized per (p, u, location).
func (v *Verifier) Verify(req Request) Verdict {
	pe := v.Orig.At(req.Pred)
	ue := v.Orig.At(req.Use)
	key := cacheKey{pred: pe.Inst, use: ue.Inst, sym: req.UseSym, elem: req.UseElem}
	if v.cache == nil {
		v.cache = map[cacheKey]Verdict{}
	}
	if verdict, ok := v.cache[key]; ok {
		return verdict
	}
	res := v.VerifyDetailed(req)
	v.cache[key] = res.Verdict
	v.Log = append(v.Log, LogEntry{
		Pred: pe.Inst, Use: ue.Inst, Sym: req.UseSym, Verdict: res.Verdict,
	})
	return res.Verdict
}

// VerifyDetailed is Verify without memoization, returning evidence.
func (v *Verifier) VerifyDetailed(req Request) *Result {
	v.Verifications++
	res := &Result{Verdict: NotID, UPrime: -1, OPrime: -1}

	pe := v.Orig.At(req.Pred)
	factor := v.BudgetFactor
	if factor <= 0 {
		factor = 10
	}
	budget := factor*v.Orig.Len() + 1000

	sw := interp.Run(v.C, interp.Options{
		Input:      v.Input,
		BuildTrace: true,
		Switch:     &interp.SwitchPlan{Stmt: pe.Inst.Stmt, Occ: pe.Inst.Occ},
		StepBudget: budget,
	})
	res.Switched = sw
	if errors.Is(sw.Err, interp.ErrBudget) {
		// Timer expired: "we aggressively conclude the verification fails".
		return res
	}
	if !sw.SwitchApplied || sw.Trace == nil {
		return res
	}
	ep := sw.Trace

	// Strong implicit dependence: the wrong output's counterpart carries
	// the expected value (Definition 4 via Algorithm 2 lines 27-28).
	if v.HasVexp && v.WrongOut.Entry >= 0 {
		if o, ok := align.Match(v.Orig, ep, pe.Inst, v.WrongOut.Entry); ok {
			res.OPrime = o
			for _, out := range ep.OutputsOf(o) {
				if out.Arg == v.WrongOut.Arg {
					res.OValue = out.Value
					if out.Value == v.Vexp {
						res.Verdict = StrongID
						return res
					}
				}
			}
		}
	}

	// u': condition (i) of Definition 2.
	u, ok := align.Match(v.Orig, ep, pe.Inst, req.Use)
	if !ok {
		res.Verdict = ID
		return res
	}
	res.UPrime = u

	pPrimeIdx := ep.FindInstance(pe.Inst)
	if pPrimeIdx < 0 {
		return res
	}

	if v.PathMode {
		// Safe variant: any explicit dependence path between p' and u'.
		g := ddg.New(ep)
		slice := g.BackwardSlice(ddg.Explicit, u)
		if slice[pPrimeIdx] {
			res.Verdict = ID
		}
		return res
	}

	// Algorithm 2 lines 31-35: the reaching definition d' of the use in
	// E' must lie inside Region(p').
	pRegion := region.Region{T: ep, Head: pPrimeIdx}
	for _, use := range ep.At(u).Uses {
		if use.Sym != req.UseSym {
			continue
		}
		if use.Def == trace.NoDef {
			continue
		}
		if pRegion.Contains(use.Def) {
			res.Verdict = ID
			return res
		}
	}
	return res
}
