package implicit

import (
	"errors"

	"eol/internal/align"
	"eol/internal/interp"
	"eol/internal/trace"
)

// PerturbRequest asks whether use entry Use depends on the *definition*
// at entry Def: the paper's §5 alternative to predicate switching.
// Where switching explores a binary domain (one branch outcome), value
// perturbation explores the integer domain of the defined value — more
// expensive, but able to expose the implicit dependences hidden by
// nested predicates that all test the same faulty value (the Table 5(b)
// soundness gap).
type PerturbRequest struct {
	Def int // trace index of the defining entry in the original run
	Use int // trace index of the use entry
	// Candidates are the replacement values to try (typically drawn from
	// a value profile). The original value is skipped automatically.
	Candidates []int64
}

// PerturbResult reports the outcome of a perturbation-based verification.
type PerturbResult struct {
	// Dependent reports whether some perturbation affected the use per
	// the paper's general dependence criterion ("disturbing the
	// execution of one statement affects the execution of the other"):
	// the matched point disappears, or the value it reads changes.
	Dependent bool
	// Witness is the candidate value that exposed the dependence.
	Witness int64
	// Reexecutions counts the perturbation runs performed.
	Reexecutions int
}

// PerturbVerify re-executes the program once per candidate value, each
// time overriding the value defined at Def, aligns the runs, and checks
// whether Use is affected. Runs that exceed the step budget are treated
// like timed-out verifications (no evidence).
func (v *Verifier) PerturbVerify(req PerturbRequest) *PerturbResult {
	res := &PerturbResult{}
	de := v.Orig.At(req.Def)
	ue := v.Orig.At(req.Use)

	factor := v.BudgetFactor
	if factor <= 0 {
		factor = 10
	}
	budget := factor*v.Orig.Len() + 1000

	// The values the use read in the original run, per location, for the
	// affected-value check.
	origVals := map[[2]int64]int64{}
	for _, u := range ue.Uses {
		origVals[[2]int64{int64(u.Sym), u.Elem}] = u.Val
	}

	for _, cand := range req.Candidates {
		if cand == de.Value {
			continue // identical to the original: no disturbance
		}
		res.Reexecutions++
		v.Verifications++
		run := v.backend().Run(v.C, interp.Options{
			Input:      v.Input,
			BuildTrace: true,
			Perturb: &interp.PerturbPlan{
				Stmt: de.Inst.Stmt, Occ: de.Inst.Occ, Value: cand,
			},
			StepBudget: budget,
			Ctx:        v.Ctx,
		})
		if interp.IsCancellation(run.Err) {
			// The verifier's context is gone: stop probing candidates; the
			// caller observes the cancellation on its own ctx checkpoint.
			return res
		}
		if errors.Is(run.Err, interp.ErrBudget) {
			continue
		}
		if !run.PerturbApplied || run.Trace == nil {
			continue
		}
		u, ok := align.Match(v.Orig, run.Trace, de.Inst, req.Use)
		if !ok {
			// The use disappeared: affected (condition (i) of Def. 2,
			// generalized).
			res.Dependent = true
			res.Witness = cand
			break
		}
		for _, use := range run.Trace.At(u).Uses {
			if orig, seen := origVals[[2]int64{int64(use.Sym), use.Elem}]; seen && orig != use.Val {
				res.Dependent = true
				res.Witness = cand
				break
			}
		}
		if res.Dependent {
			break
		}
	}
	verdict := NotID
	if res.Dependent {
		verdict = ID
	}
	v.Log = append(v.Log, LogEntry{
		Pred: de.Inst, Use: ue.Inst, Verdict: verdict,
		Perturbed: true, Value: res.Witness,
	})
	if v.Rec.Enabled() {
		// PerturbVerify runs only on the base verifier, sequentially, so
		// emitting here preserves the stream's determinism.
		v.Rec.Count("perturb_runs", int64(res.Reexecutions))
		v.Rec.Mark("verdict", int64(verdict),
			"def", de.Inst.String(), "use", ue.Inst.String(),
			"verdict", verdict.String(), "perturbed", "true")
	}
	return res
}

// ProfileCandidates extracts perturbation candidates for the statement of
// entry def from per-statement observed values, excluding the original.
func ProfileCandidates(orig *trace.Trace, def int, observed []int64, max int) []int64 {
	de := orig.At(def)
	var res []int64
	seen := map[int64]bool{de.Value: true}
	for _, v := range observed {
		if !seen[v] {
			seen[v] = true
			res = append(res, v)
			if max > 0 && len(res) >= max {
				break
			}
		}
	}
	return res
}
