// Package slicing implements the two slicing baselines of the PLDI 2007
// paper:
//
//   - classic dynamic slicing (Korel-Laski): backward closure over the
//     explicit (data + control) dynamic dependences — the DS columns of
//     Table 2, which miss every execution omission error;
//   - relevant slicing (Gyimóthy et al., ESEC/FSE 1999): the dynamic
//     dependence graph augmented with *potential dependence* edges per
//     Definition 1 — the RS columns of Table 2, which capture the errors
//     but blow up the dynamic slice size.
//
// Potential dependences are also the candidate set that the demand-driven
// locator (Algorithm 2) verifies with predicate switching.
package slicing

import (
	"sort"

	"eol/internal/dataflow"
	"eol/internal/ddg"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/lang/sem"
	"eol/internal/trace"
)

// Context bundles the compiled program, its static analyses and one
// failing trace.
type Context struct {
	C    *interp.Compiled
	Flow *dataflow.Analysis
	T    *trace.Trace

	// Union, when non-nil, answers Definition 1's condition (iv) from the
	// union dependence graph of exercised test executions (the paper's
	// prototype strategy) instead of the static potential-reaching
	// analysis. See UnionGraph.
	Union *UnionGraph

	// CrossFunction extends PD(u) across function boundaries for global
	// locations: predicates in *other* functions whose untaken branch
	// governs a definition of the global become candidates too
	// (conservatively — no interprocedural reaches-check). This removes
	// the intraprocedural limitation for callee-side omissions at the
	// cost of more candidates to verify.
	CrossFunction bool

	allPreds []int // cached predicate statement IDs, all functions
}

// predicateStmts returns every predicate statement ID in the program.
func (cx *Context) predicateStmts() []int {
	if cx.allPreds == nil {
		for _, s := range cx.C.Info.Stmts {
			if ast.IsPredicate(s) {
				cx.allPreds = append(cx.allPreds, s.ID())
			}
		}
		if cx.allPreds == nil {
			cx.allPreds = []int{}
		}
	}
	return cx.allPreds
}

// NewContext builds the static analyses for c and wraps trace t.
func NewContext(c *interp.Compiled, t *trace.Trace) *Context {
	return &Context{C: c, Flow: dataflow.New(c.Info, c.CFG), T: t}
}

// Dynamic computes the classic dynamic slice: the backward closure of the
// seeds over explicit dependences only.
func Dynamic(g *ddg.Graph, seeds ...int) *ddg.Set {
	return g.BackwardSlice(ddg.Explicit, seeds...)
}

// PDep is one potential dependence of a use entry: the use (symbol and
// element) may have received a different definition had the predicate
// instance Pred taken its other branch (Definition 1).
type PDep struct {
	Pred    int   // trace index of the predicate instance
	UseSym  int   // symbol whose definition could have differed
	UseElem int64 // element for array uses (trace.ScalarElem for scalars)
}

// PotentialDeps computes PD(u) for trace entry u: every earlier predicate
// instance satisfying Definition 1's four conditions for some use of u.
//
// Condition mapping:
//
//	(i)   the predicate instance precedes u in the trace;
//	(ii)  u is not (transitively) dynamically control dependent on it —
//	      such dependences are already explicit;
//	(iii) the use's dynamic reaching definition precedes the predicate
//	      instance;
//	(iv)  statically, a definition of the used location is governed by
//	      the predicate's *other* branch and may reach u's statement
//	      (dataflow.PotentialBranch).
//
// The static side is intraprocedural: predicate and use must be in the
// same function (calls are summarized as global may-defs). For local
// locations the instances must additionally share an activation.
func (cx *Context) PotentialDeps(u int) []PDep {
	t := cx.T
	ue := t.At(u)
	useStmt := ue.Inst.Stmt
	uf := cx.C.Info.StmtFunc[useStmt]
	if uf == nil {
		return nil
	}
	anc := t.Ancestry()

	var res []PDep
	seen := map[PDep]bool{}
	for _, use := range ue.Uses {
		if use.Sym < 0 {
			continue // return-value plumbing
		}
		sym := cx.C.Info.Symbols[use.Sym]
		// Candidate predicate statements: the same function's predicates,
		// or (CrossFunction, globals only) every predicate in the program.
		candidates := uf.StmtIDs
		crossOK := cx.CrossFunction && sym.Kind == sem.Global
		if crossOK {
			candidates = cx.predicateStmts()
		}
		for _, ps := range candidates {
			st := cx.C.Info.Stmt(ps)
			if !ast.IsPredicate(st) {
				continue
			}
			sameFn := cx.C.Info.StmtFunc[ps] == uf
			for _, p := range t.InstancesOf(ps) {
				if p >= u {
					break // instances are in execution order
				}
				pe := t.At(p)
				// (iii) reaching definition before p. NoDef means the
				// value predates everything.
				if use.Def != trace.NoDef && use.Def >= p {
					continue
				}
				// (ii) no dynamic control dependence.
				if anc.IsAncestor(p, u) {
					continue
				}
				// Locals require a shared activation.
				if sym.Kind != sem.Global && pe.Frame != ue.Frame {
					continue
				}
				// (iv) a different definition could reach u on the other
				// branch: static potential-reaching analysis (precise
				// within a function, conservative across functions for
				// globals), or exercised evidence from the union graph
				// when one is supplied.
				switch {
				case cx.Union != nil:
					if !cx.Union.PotentialBranch(ps, pe.Branch, useStmt, use.Sym) {
						continue
					}
				case sameFn:
					if !cx.Flow.PotentialBranch(ps, pe.Branch, useStmt, use.Sym) {
						continue
					}
				default:
					if !cx.Flow.PotentialBranchGlobal(ps, pe.Branch, use.Sym) {
						continue
					}
				}
				d := PDep{Pred: p, UseSym: use.Sym, UseElem: use.Elem}
				if !seen[d] {
					seen[d] = true
					res = append(res, d)
				}
			}
		}
	}
	sort.Slice(res, func(i, j int) bool { return res[i].Pred < res[j].Pred })
	return res
}

// Relevant computes the relevant slice: the backward closure of the seeds
// over explicit dependences plus potential dependences, which are
// discovered on demand for every entry that enters the slice and recorded
// in g as Potential edges.
func (cx *Context) Relevant(g *ddg.Graph, seeds ...int) *ddg.Set {
	slice := ddg.NewSet(cx.T.Len())
	var work []int
	for _, s := range seeds {
		if slice.Add(s) {
			work = append(work, s)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, pd := range cx.PotentialDeps(n) {
			g.AddEdge(n, pd.Pred, ddg.Potential)
		}
		g.EachDep(n, ddg.Explicit|ddg.Potential, func(e ddg.Edge) {
			if slice.Add(e.To) {
				work = append(work, e.To)
			}
		})
	}
	return slice
}

// FailureSeeds returns the slicing seeds for a wrong output event: the
// producing print entry. Returns -1 if the output index is out of range.
func FailureSeeds(t *trace.Trace, outputSeq int) int {
	o := t.OutputAt(outputSeq)
	if o == nil {
		return -1
	}
	return o.Entry
}

// FirstWrongOutput compares actual output values against expected ones
// and returns the sequence number of the first mismatch. The second
// result distinguishes "all match" (-1, false → no failure) from a
// missing-output failure: if actual is a strict prefix of expected, the
// failure is the absence of output len(actual), reported with ok=true and
// missing=true.
func FirstWrongOutput(actual, expected []int64) (seq int, missing, ok bool) {
	for i := range actual {
		if i >= len(expected) {
			return i, false, true // extra output is a wrong output
		}
		if actual[i] != expected[i] {
			return i, false, true
		}
	}
	if len(actual) < len(expected) {
		return len(actual), true, true
	}
	return -1, false, false
}
