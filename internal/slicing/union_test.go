package slicing

import (
	"testing"

	"eol/internal/cfg"
	"eol/internal/ddg"
	"eol/internal/testsupport"
	"eol/internal/trace"
)

// TestUnionPDWithCoveringSuite: when the test suite exercises the omitted
// branch, the union graph supports the same potential dependence as the
// static analysis (the paper's prototype behavior).
func TestUnionPDWithCoveringSuite(t *testing.T) {
	c := testsupport.Compile(t, testsupport.Fig1Faulty)
	fixed := testsupport.Compile(t, testsupport.Fig1Fixed)

	// Build the union graph from CORRECT-version runs that take the
	// saveOrigName branch — exercising flags|=8 reaching the store.
	u := NewUnionGraph()
	for _, in := range [][]int64{{1}, {0}} {
		r := testsupport.Run(t, fixed, in)
		u.AddTrace(r.Trace)
	}
	if u.Traces != 2 || u.NumReachedPairs() == 0 {
		t.Fatalf("union graph empty: %d traces, %d pairs", u.Traces, u.NumReachedPairs())
	}

	r := testsupport.Run(t, c, testsupport.Fig1Input)
	cx := NewContext(c, r.Trace)
	cx.Union = u

	writeFlags := testsupport.StmtID(t, c, "outbuf[outcnt] = flags")
	uIdx := r.Trace.FindInstance(trace.Instance{Stmt: writeFlags, Occ: 1})
	pds := cx.PotentialDeps(uIdx)
	ifFlags := testsupport.StmtID(t, c, "if (saveOrigName)")
	if !hasPred(r.Trace, pds, ifFlags) {
		t.Errorf("union-based PD should include the if: %v", pds)
	}

	// RS under union PD still captures the root cause.
	g := ddg.New(r.Trace)
	seed := FailureSeeds(r.Trace, 1)
	rs := cx.Relevant(g, seed)
	root := testsupport.StmtID(t, c, "read() * 0")
	if !g.ContainsStmt(rs, root) {
		t.Error("union-based RS missed the root cause despite coverage")
	}
}

// TestUnionPDCoverageSensitivity: if the suite never exercises the
// omitted branch, the union graph cannot support the dependence — the
// test-suite sensitivity static analysis avoids.
func TestUnionPDCoverageSensitivity(t *testing.T) {
	c := testsupport.Compile(t, testsupport.Fig1Faulty)

	// Suite of FAULTY runs: saveOrigName is always 0, the branch never
	// executes, no flags|=8 -> store dependence is ever observed.
	u := NewUnionGraph()
	for _, in := range [][]int64{{1}, {0}, {5}} {
		r := testsupport.Run(t, c, in)
		u.AddTrace(r.Trace)
	}

	r := testsupport.Run(t, c, testsupport.Fig1Input)
	cx := NewContext(c, r.Trace)
	cx.Union = u

	writeFlags := testsupport.StmtID(t, c, "outbuf[outcnt] = flags")
	uIdx := r.Trace.FindInstance(trace.Instance{Stmt: writeFlags, Occ: 1})
	ifFlags := testsupport.StmtID(t, c, "if (saveOrigName)")
	if hasPred(r.Trace, cx.PotentialDeps(uIdx), ifFlags) {
		t.Error("union graph cannot know about a never-exercised dependence")
	}
	// The static analysis (no union) does find it.
	cx.Union = nil
	if !hasPred(r.Trace, cx.PotentialDeps(uIdx), ifFlags) {
		t.Error("static PD lost the dependence")
	}
}

// TestUnionGovernedTransitivity: statements nested two predicates deep
// are recorded as governed by both.
func TestUnionGovernedTransitivity(t *testing.T) {
	src := `
func main() {
    var a = read();
    var b = read();
    var x = 0;
    if (a) {
        if (b) {
            x = 1;
        }
    }
    print(x);
}`
	c := testsupport.Compile(t, src)
	u := NewUnionGraph()
	u.AddTrace(testsupport.Run(t, c, []int64{1, 1}).Trace)

	pr := testsupport.StmtID(t, c, "print(x)")
	xSym := 0
	for _, s := range c.Info.Symbols {
		if s.Name == "x" {
			xSym = s.ID
		}
	}
	ifA := testsupport.StmtID(t, c, "if (a)")
	ifB := testsupport.StmtID(t, c, "if (b)")

	// In a run where both ifs take F (the def not exercised along that
	// path), the union from the T-run still knows x=1 was governed by
	// both predicates' T branches and reached the print.
	if !u.PotentialBranch(ifA, cfg.False, pr, xSym) {
		t.Error("outer predicate evidence missing")
	}
	if !u.PotentialBranch(ifB, cfg.False, pr, xSym) {
		t.Error("inner predicate evidence missing")
	}
}

// TestUnionAcrossRuns: dependences from different runs union together.
func TestUnionAcrossRuns(t *testing.T) {
	src := `
func main() {
    var m = read();
    var x = 0;
    if (m == 1) { x = 1; }
    if (m == 2) { x = 2; }
    print(x);
}`
	c := testsupport.Compile(t, src)
	u := NewUnionGraph()
	u.AddTrace(testsupport.Run(t, c, []int64{1}).Trace)
	before := u.NumReachedPairs()
	u.AddTrace(testsupport.Run(t, c, []int64{2}).Trace)
	if u.NumReachedPairs() <= before {
		t.Error("second run added no pairs")
	}
}
