package slicing

import (
	"reflect"
	"testing"

	"eol/internal/ddg"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/testsupport"
	"eol/internal/trace"
)

// fig1 compiles and runs the paper's Figure 1 scenario and returns the
// slicing context, the graph, and the wrong output's seed entry.
func fig1(t *testing.T) (*Context, *ddg.Graph, int, *interp.Compiled) {
	t.Helper()
	c := testsupport.Compile(t, testsupport.Fig1Faulty)
	fixed := testsupport.Compile(t, testsupport.Fig1Fixed)
	want := testsupport.Run(t, fixed, testsupport.Fig1Input).OutputValues()
	r := testsupport.Run(t, c, testsupport.Fig1Input)

	seq, missing, ok := FirstWrongOutput(r.OutputValues(), want)
	if !ok || missing {
		t.Fatalf("expected a wrong output; got %v want %v", r.OutputValues(), want)
	}
	if seq != 1 {
		t.Fatalf("first wrong output = %d, want 1", seq)
	}
	cx := NewContext(c, r.Trace)
	g := ddg.New(r.Trace)
	return cx, g, FailureSeeds(r.Trace, seq), c
}

func TestFig1DynamicSliceMissesRootCause(t *testing.T) {
	cx, g, seed, c := fig1(t)
	ds := Dynamic(g, seed)

	root := testsupport.StmtID(t, c, "read() * 0")
	ifFlags := testsupport.StmtID(t, c, "if (saveOrigName)")
	setFlag := testsupport.StmtID(t, c, "flags = flags | 8")
	writeFlags := testsupport.StmtID(t, c, "outbuf[outcnt] = flags")
	zeroFlags := testsupport.StmtID(t, c, "flags = 0")

	if g.ContainsStmt(ds, root) {
		t.Errorf("DS must miss the root cause S%d (execution omission)", root)
	}
	if g.ContainsStmt(ds, ifFlags) {
		t.Errorf("DS must miss the omitting predicate S%d", ifFlags)
	}
	if g.ContainsStmt(ds, setFlag) {
		t.Errorf("DS must miss the omitted assignment S%d", setFlag)
	}
	if !g.ContainsStmt(ds, writeFlags) || !g.ContainsStmt(ds, zeroFlags) {
		t.Errorf("DS should contain the explicit chain (S%d, S%d)", writeFlags, zeroFlags)
	}
	_ = cx
}

func TestFig1RelevantSliceCapturesRootCause(t *testing.T) {
	cx, g, seed, c := fig1(t)
	rs := cx.Relevant(g, seed)

	root := testsupport.StmtID(t, c, "read() * 0")
	ifFlags := testsupport.StmtID(t, c, "if (saveOrigName)")

	if !g.ContainsStmt(rs, root) {
		t.Errorf("RS must contain the root cause S%d", root)
	}
	if !g.ContainsStmt(rs, ifFlags) {
		t.Errorf("RS must contain the omitting predicate S%d", ifFlags)
	}
	// RS is a superset of DS.
	ds := Dynamic(g, seed)
	ds.ForEach(func(i int) {
		if !rs.Has(i) {
			t.Fatalf("RS must be a superset of DS; entry %d missing", i)
		}
	})
	if rs.Len() <= ds.Len() {
		t.Errorf("RS (%d) should be strictly larger than DS (%d) here", rs.Len(), ds.Len())
	}
}

func TestFig1PotentialDepsMatchPaper(t *testing.T) {
	cx, _, seed, c := fig1(t)
	tr := cx.T

	// Both ifs render identically; the first is the paper's S4, the
	// second the paper's S7.
	var ifIDs []int
	for _, s := range c.Info.Stmts {
		if ast.StmtString(s) == "if (saveOrigName)" {
			ifIDs = append(ifIDs, s.ID())
		}
	}
	if len(ifIDs) != 2 {
		t.Fatalf("want 2 saveOrigName predicates, got %v", ifIDs)
	}
	ifFlags, ifName := ifIDs[0], ifIDs[1]

	// PD(flags use at "outbuf[outcnt] = flags") must contain the first if
	// (the paper's S4 -> S6 potential dependence).
	writeFlags := testsupport.StmtID(t, c, "outbuf[outcnt] = flags")
	u := tr.FindInstance(trace.Instance{Stmt: writeFlags, Occ: 1})
	pds := cx.PotentialDeps(u)
	if !hasPred(tr, pds, ifFlags) {
		t.Errorf("PD(S%d) should contain predicate S%d; got %v", writeFlags, ifFlags, pds)
	}

	// PD(wrong output use) must contain the second if (the paper's FALSE
	// potential dependence S7 -> S10, an artifact of whole-array
	// granularity).
	pds = cx.PotentialDeps(seed)
	if !hasPred(tr, pds, ifName) {
		t.Errorf("PD(wrong output) should contain predicate S%d (false potential dep); got %v", ifName, pds)
	}
	// ... and must NOT contain the first if: outbuf defs on its other
	// branch do not exist.
	if hasPred(tr, pds, ifFlags) {
		t.Errorf("PD(wrong output) must not contain predicate S%d", ifFlags)
	}
}

func hasPred(tr *trace.Trace, pds []PDep, stmt int) bool {
	for _, pd := range pds {
		if tr.At(pd.Pred).Inst.Stmt == stmt {
			return true
		}
	}
	return false
}

func TestFirstWrongOutput(t *testing.T) {
	cases := []struct {
		actual, expected []int64
		seq              int
		missing, ok      bool
	}{
		{[]int64{1, 2, 3}, []int64{1, 2, 3}, -1, false, false},
		{[]int64{1, 9, 3}, []int64{1, 2, 3}, 1, false, true},
		{[]int64{1, 2}, []int64{1, 2, 3}, 2, true, true},
		{[]int64{1, 2, 3, 4}, []int64{1, 2, 3}, 3, false, true},
		{nil, nil, -1, false, false},
		{nil, []int64{7}, 0, true, true},
	}
	for _, c := range cases {
		seq, missing, ok := FirstWrongOutput(c.actual, c.expected)
		if seq != c.seq || missing != c.missing || ok != c.ok {
			t.Errorf("FirstWrongOutput(%v, %v) = (%d,%v,%v), want (%d,%v,%v)",
				c.actual, c.expected, seq, missing, ok, c.seq, c.missing, c.ok)
		}
	}
}

// TestKilledDefinitionExcluded reproduces the paper's condition (iii)
// example: a definition after the predicate kills the branch's
// definition, so no potential dependence arises.
//
//	1: if (p) { 2: x = ...; }
//	4: x = ...;
//	6: ... = x;
func TestKilledDefinitionExcluded(t *testing.T) {
	src := `
func main() {
    var p = read();
    var x = 0;
    if (p) {
        x = 1;
    }
    x = 2;
    print(x);
}`
	c := testsupport.Compile(t, src)
	r := testsupport.Run(t, c, []int64{0})
	cx := NewContext(c, r.Trace)

	pr := testsupport.StmtID(t, c, "print(x)")
	u := r.Trace.FindInstance(trace.Instance{Stmt: pr, Occ: 1})
	pds := cx.PotentialDeps(u)
	ifID := testsupport.StmtID(t, c, "if (p)")
	if hasPred(r.Trace, pds, ifID) {
		t.Errorf("x's reaching def (x=2) occurs after the predicate was irrelevant: no PD expected, got %v", pds)
	}
}

// TestConditionIIIOrdering: the reaching definition must occur before the
// predicate instance, not merely before the use.
func TestConditionIIIOrdering(t *testing.T) {
	src := `
func main() {
    var p = read();
    var x = 0;
    x = 5;
    if (p) {
        x = 1;
    }
    print(x);
}`
	c := testsupport.Compile(t, src)
	r := testsupport.Run(t, c, []int64{0})
	cx := NewContext(c, r.Trace)

	pr := testsupport.StmtID(t, c, "print(x)")
	u := r.Trace.FindInstance(trace.Instance{Stmt: pr, Occ: 1})
	pds := cx.PotentialDeps(u)
	ifID := testsupport.StmtID(t, c, "if (p)")
	// x=5 precedes the if, and x=1 on the not-taken branch could reach
	// the print: PD must contain the if.
	if !hasPred(r.Trace, pds, ifID) {
		t.Errorf("PD(print) should contain the if; got %v", pds)
	}
}

// TestLoopInstanceExplosion verifies the dynamic-size blow-up phenomenon
// the paper describes: a predicate executed N times contributes up to N
// potential-dependence instances even though the static count is 1.
func TestLoopInstanceExplosion(t *testing.T) {
	src := `
var total;
func main() {
    var n = read();
    total = 0;
    var i = 0;
    while (i < n) {
        if (read()) {
            total = total + 1;
        }
        i = i + 1;
    }
    print(total);
}`
	c := testsupport.Compile(t, src)
	input := []int64{10, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	r := testsupport.Run(t, c, input)
	cx := NewContext(c, r.Trace)

	pr := testsupport.StmtID(t, c, "print(total)")
	u := r.Trace.FindInstance(trace.Instance{Stmt: pr, Occ: 1})
	pds := cx.PotentialDeps(u)
	ifID := testsupport.StmtID(t, c, "if (read())")
	n := 0
	for _, pd := range pds {
		if r.Trace.At(pd.Pred).Inst.Stmt == ifID {
			n++
		}
	}
	if n != 10 {
		t.Errorf("expected 10 potential-dependence instances on the if (one per iteration), got %d", n)
	}
	// Static count: two unique predicate statements — the if, plus the
	// final while instance (had it evaluated true, one more iteration
	// could have redefined total).
	stmts := map[int]bool{}
	for _, pd := range pds {
		stmts[r.Trace.At(pd.Pred).Inst.Stmt] = true
	}
	whileID := testsupport.StmtID(t, c, "while (i < n)")
	if len(stmts) != 2 || !stmts[ifID] || !stmts[whileID] {
		t.Errorf("unique PD statements = %v, want {S%d, S%d}", stmts, ifID, whileID)
	}
}

func TestRelevantEqualsDynamicWithoutOmission(t *testing.T) {
	// A program with no branch-dependent definitions: RS == DS.
	src := `
func main() {
    var a = read();
    var b = a * 2;
    var c = b + 1;
    print(c);
}`
	c := testsupport.Compile(t, src)
	r := testsupport.Run(t, c, []int64{3})
	cx := NewContext(c, r.Trace)
	g := ddg.New(r.Trace)
	seed := FailureSeeds(r.Trace, 0)
	ds := Dynamic(g, seed)
	rs := cx.Relevant(g, seed)
	if !reflect.DeepEqual(ds, rs) {
		t.Errorf("straight-line program: RS %v != DS %v", rs, ds)
	}
}
