package slicing

import (
	"testing"

	"eol/internal/ddg"
	"eol/internal/testsupport"
	"eol/internal/trace"
)

// crossFnSrc: the omission happens inside a callee — the predicate that
// suppresses the global write lives in setup(), the corrupted use in
// main(). Intraprocedural PD cannot connect them; the cross-function
// extension can.
const crossFnSrc = `
var mode;

func setup(request) {
    if (request > 0) {
        mode = 7;
    }
    return 0;
}

func main() {
    var request = read() * 0;   // ROOT CAUSE: should be read()
    mode = 1;
    setup(request);
    print(mode);
}`

func crossFnRun(t *testing.T) (*Context, *ddg.Graph, int, int, int) {
	t.Helper()
	c := testsupport.Compile(t, crossFnSrc)
	r := testsupport.Run(t, c, []int64{5})
	cx := NewContext(c, r.Trace)
	g := ddg.New(r.Trace)
	pr := testsupport.StmtID(t, c, "print(mode)")
	u := r.Trace.FindInstance(trace.Instance{Stmt: pr, Occ: 1})
	ifID := testsupport.StmtID(t, c, "if (request > 0)")
	root := testsupport.StmtID(t, c, "read() * 0")
	return cx, g, u, ifID, root
}

// TestCrossFunctionPDDefault documents the intraprocedural limitation:
// without the extension, PD(print(mode)) misses the callee predicate and
// the relevant slice misses the root cause.
func TestCrossFunctionPDDefault(t *testing.T) {
	cx, g, u, ifID, root := crossFnRun(t)
	if hasPred(cx.T, cx.PotentialDeps(u), ifID) {
		t.Fatal("intraprocedural PD unexpectedly crossed the function boundary")
	}
	rs := cx.Relevant(g, u)
	if g.ContainsStmt(rs, root) {
		t.Fatal("RS unexpectedly contains the root cause without cross-function PD")
	}
}

// TestCrossFunctionPDExtension: with CrossFunction enabled, the callee
// predicate joins PD(u) for the global use and the relevant slice reaches
// the root cause.
func TestCrossFunctionPDExtension(t *testing.T) {
	cx, g, u, ifID, root := crossFnRun(t)
	cx.CrossFunction = true
	if !hasPred(cx.T, cx.PotentialDeps(u), ifID) {
		t.Fatalf("cross-function PD missing the callee predicate; got %v", cx.PotentialDeps(u))
	}
	rs := cx.Relevant(g, u)
	if !g.ContainsStmt(rs, root) {
		t.Fatal("RS must contain the root cause with cross-function PD")
	}
}

// TestCrossFunctionPDNoFalseLocals: the extension must not add
// cross-function candidates for local variables.
func TestCrossFunctionPDNoFalseLocals(t *testing.T) {
	src := `
func helper(v) {
    var local = 0;
    if (v > 0) {
        local = 1;
    }
    return local;
}
func main() {
    var x = 5;
    helper(0);
    print(x);
}`
	c := testsupport.Compile(t, src)
	r := testsupport.Run(t, c, nil)
	cx := NewContext(c, r.Trace)
	cx.CrossFunction = true
	pr := testsupport.StmtID(t, c, "print(x)")
	u := r.Trace.FindInstance(trace.Instance{Stmt: pr, Occ: 1})
	ifID := testsupport.StmtID(t, c, "if (v > 0)")
	if hasPred(r.Trace, cx.PotentialDeps(u), ifID) {
		t.Error("local x cannot potentially depend on a callee predicate over a callee local")
	}
}
