package slicing

import (
	"eol/internal/cfg"
	"eol/internal/trace"
)

// UnionGraph is the statement-level union dependence graph of the paper's
// prototype: "a union dependence graph, which is static, is also
// constructed ... by unioning all the unique dependences that were
// exercised during the execution of a large number of test cases. Such a
// graph is used to compute potential dependences."
//
// It records, across a set of (typically passing) executions:
//
//   - which definition statements were observed to reach which use
//     statements, per abstract location, and
//   - which statements were observed executing under which branch of
//     which predicate (transitively, via region ancestry).
//
// Definition 1's condition (iv) can then be answered from exercised
// evidence instead of the static potential-reaching analysis: a different
// definition of v "could reach" u if some test run showed a def of v —
// governed by the predicate's other branch — reaching u's statement.
// This is less conservative than static analysis but sensitive to test
// suite coverage (see Ablation D in EXPERIMENTS.md).
type UnionGraph struct {
	// reached[useStmt][sym][defStmt]: a def of sym at defStmt was
	// observed reaching useStmt.
	reached map[int]map[int]map[int]bool
	// governed[stmt][{pred,label}]: stmt was observed executing
	// (transitively) under pred taking label.
	governed map[int]map[govKey]bool
	// Traces counts the executions folded in.
	Traces int
}

type govKey struct {
	pred  int
	label cfg.Label
}

// NewUnionGraph creates an empty union graph.
func NewUnionGraph() *UnionGraph {
	return &UnionGraph{
		reached:  map[int]map[int]map[int]bool{},
		governed: map[int]map[govKey]bool{},
	}
}

// AddTrace folds one execution into the union graph.
func (u *UnionGraph) AddTrace(t *trace.Trace) {
	u.Traces++
	// Governing pairs per entry, computed by walking parents; memoized
	// per entry index within this trace.
	type stackItem struct {
		pred  int
		label cfg.Label
	}
	govOf := make([][]stackItem, t.Len())
	for i := 0; i < t.Len(); i++ {
		e := t.At(i)
		if e.Parent >= 0 {
			pe := t.At(e.Parent)
			govOf[i] = append(append([]stackItem{}, govOf[e.Parent]...),
				stackItem{pred: pe.Inst.Stmt, label: pe.Branch})
		}
		stmt := e.Inst.Stmt
		gm := u.governed[stmt]
		if gm == nil {
			gm = map[govKey]bool{}
			u.governed[stmt] = gm
		}
		for _, g := range govOf[i] {
			gm[govKey{pred: g.pred, label: g.label}] = true
		}
		for _, use := range e.Uses {
			if use.Def < 0 || use.Sym < 0 {
				continue
			}
			defStmt := t.At(use.Def).Inst.Stmt
			rm := u.reached[stmt]
			if rm == nil {
				rm = map[int]map[int]bool{}
				u.reached[stmt] = rm
			}
			sm := rm[use.Sym]
			if sm == nil {
				sm = map[int]bool{}
				rm[use.Sym] = sm
			}
			sm[defStmt] = true
		}
	}
}

// PotentialBranch answers Definition 1 condition (iv) from exercised
// evidence: was some definition of sym — observed under pred's *other*
// branch — ever seen reaching useStmt?
func (u *UnionGraph) PotentialBranch(pred int, taken cfg.Label, useStmt, sym int) bool {
	opposite := taken.Negate()
	for defStmt := range u.reached[useStmt][sym] {
		if u.governed[defStmt][govKey{pred: pred, label: opposite}] {
			return true
		}
	}
	return false
}

// NumReachedPairs reports the number of distinct (use, sym, def) triples.
func (u *UnionGraph) NumReachedPairs() int {
	n := 0
	for _, syms := range u.reached {
		for _, defs := range syms {
			n += len(defs)
		}
	}
	return n
}
