package cliutil

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eol/internal/obs"
)

func TestEngineFlagsCanonicalNames(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ef := RegisterEngineFlags(fs)
	if err := fs.Parse([]string{"-workers", "4", "-cache", "-1"}); err != nil {
		t.Fatal(err)
	}
	if ef.Workers != 4 || ef.Cache != -1 {
		t.Errorf("got workers=%d cache=%d, want 4 -1", ef.Workers, ef.Cache)
	}
}

func TestEngineFlagsHiddenAliases(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	ef := RegisterEngineFlags(fs)
	if err := fs.Parse([]string{"-verify-workers", "2", "-verify-cache", "64"}); err != nil {
		t.Fatal(err)
	}
	if ef.Workers != 2 || ef.Cache != 64 {
		t.Errorf("got workers=%d cache=%d, want 2 64", ef.Workers, ef.Cache)
	}
	// Using an alias warns, naming both spellings.
	for _, want := range []string{
		"warning: -verify-workers is deprecated, use -workers",
		"warning: -verify-cache is deprecated, use -cache",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing deprecation warning %q in:\n%s", want, buf.String())
		}
	}
}

// TestEngineFlagsNoWarningForCanonical: the canonical spellings parse
// silently.
func TestEngineFlagsNoWarningForCanonical(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	ef := RegisterEngineFlags(fs)
	if err := fs.Parse([]string{"-workers", "2", "-cache", "64"}); err != nil {
		t.Fatal(err)
	}
	if ef.Workers != 2 || ef.Cache != 64 {
		t.Errorf("got workers=%d cache=%d, want 2 64", ef.Workers, ef.Cache)
	}
	if buf.Len() != 0 {
		t.Errorf("canonical flags produced output: %q", buf.String())
	}
}

func TestUsageHidesAliases(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	RegisterEngineFlags(fs)
	RegisterObsFlags(fs)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.Usage()
	out := buf.String()
	for _, want := range []string{"-workers", "-cache", "-trace", "-progress"} {
		if !strings.Contains(out, want) {
			t.Errorf("usage does not advertise %s:\n%s", want, out)
		}
	}
	for _, hidden := range []string{"verify-workers", "verify-cache"} {
		if strings.Contains(out, hidden) {
			t.Errorf("usage leaks hidden alias %s:\n%s", hidden, out)
		}
	}
}

func TestObsFlagsObserverNil(t *testing.T) {
	of := &ObsFlags{}
	o, close, err := of.Observer()
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Errorf("no flags set: observer = %v, want nil", o)
	}
	if err := close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

func TestObsFlagsObserverJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	of := &ObsFlags{TracePath: path}
	o, close, err := of.Observer()
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(o)
	rec.Begin("locate")
	rec.Count("switched_runs", 3)
	rec.End("locate", 1)
	if err := close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := obs.ValidateJournal(f); err != nil {
		t.Errorf("journal written through ObsFlags is invalid: %v", err)
	}
}
