package cliutil

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eol/internal/core"
	"eol/internal/obs"
)

func TestEngineFlagsCanonicalNames(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ef := RegisterEngineFlags(fs)
	if err := fs.Parse([]string{"-workers", "4", "-cache", "-1"}); err != nil {
		t.Fatal(err)
	}
	if ef.Workers != 4 || ef.Cache != -1 {
		t.Errorf("got workers=%d cache=%d, want 4 -1", ef.Workers, ef.Cache)
	}
}

// TestEngineFlagsRemovedAliases: the pre-unification spellings
// -verify-workers/-verify-cache finished their deprecation cycle and
// now fail like any unknown flag. Under the commands' flag.ExitOnError
// sets that means usage output and exit code 2; with ContinueOnError
// here it surfaces as a Parse error naming the flag.
func TestEngineFlagsRemovedAliases(t *testing.T) {
	for _, alias := range []string{"verify-workers", "verify-cache"} {
		fs := flag.NewFlagSet("x", flag.ContinueOnError)
		var buf bytes.Buffer
		fs.SetOutput(&buf)
		RegisterEngineFlags(fs)
		err := fs.Parse([]string{"-" + alias, "2"})
		if err == nil {
			t.Fatalf("-%s still parses; the removed alias must be an unknown flag", alias)
		}
		if !strings.Contains(err.Error(), alias) {
			t.Errorf("-%s error does not name the flag: %v", alias, err)
		}
	}
}

func TestEngineFlagsSpeculate(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ef := RegisterEngineFlags(fs)
	if err := fs.Parse([]string{"-speculate"}); err != nil {
		t.Fatal(err)
	}
	if !ef.Speculate {
		t.Fatal("-speculate did not set Speculate")
	}
	if f := ef.Features(); f.Speculation != core.FeatureOn {
		t.Errorf("Features().Speculation = %v, want on", f.Speculation)
	}
	ef.NoStaticReach = true
	if f := ef.Features(); f.StaticReach != core.FeatureOff {
		t.Errorf("Features().StaticReach = %v, want off", f.StaticReach)
	}
	var zero EngineFlags
	if f := zero.Features(); f != (core.Features{}) {
		t.Errorf("zero EngineFlags yields non-default features %+v", f)
	}
}

// TestEngineFlagsNoWarningForCanonical: the canonical spellings parse
// silently.
func TestEngineFlagsNoWarningForCanonical(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	ef := RegisterEngineFlags(fs)
	if err := fs.Parse([]string{"-workers", "2", "-cache", "64"}); err != nil {
		t.Fatal(err)
	}
	if ef.Workers != 2 || ef.Cache != 64 {
		t.Errorf("got workers=%d cache=%d, want 2 64", ef.Workers, ef.Cache)
	}
	if buf.Len() != 0 {
		t.Errorf("canonical flags produced output: %q", buf.String())
	}
}

func TestUsageHidesAliases(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	RegisterEngineFlags(fs)
	RegisterObsFlags(fs)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.Usage()
	out := buf.String()
	for _, want := range []string{"-workers", "-cache", "-speculate", "-trace", "-progress"} {
		if !strings.Contains(out, want) {
			t.Errorf("usage does not advertise %s:\n%s", want, out)
		}
	}
	for _, gone := range []string{"verify-workers", "verify-cache"} {
		if strings.Contains(out, gone) {
			t.Errorf("usage still mentions removed alias %s:\n%s", gone, out)
		}
	}
}

func TestObsFlagsObserverNil(t *testing.T) {
	of := &ObsFlags{}
	o, close, err := of.Observer()
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Errorf("no flags set: observer = %v, want nil", o)
	}
	if err := close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

func TestObsFlagsObserverJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	of := &ObsFlags{TracePath: path}
	o, close, err := of.Observer()
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(o)
	rec.Begin("locate")
	rec.Count("switched_runs", 3)
	rec.End("locate", 1)
	if err := close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := obs.ValidateJournal(f); err != nil {
		t.Errorf("journal written through ObsFlags is invalid: %v", err)
	}
}
