package cliutil

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseInts(t *testing.T) {
	cases := []struct {
		in   string
		want []int64
		err  bool
	}{
		{"", nil, false},
		{"  ", nil, false},
		{"1,2,3", []int64{1, 2, 3}, false},
		{"1 2 3", []int64{1, 2, 3}, false},
		{"1, 2,\t3", []int64{1, 2, 3}, false},
		{"-5,0x10", []int64{-5, 16}, false},
		{"1,x", nil, true},
	}
	for _, c := range cases {
		got, err := ParseInts(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseInts(%q) err = %v", c.in, err)
			continue
		}
		if !c.err && !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseInts(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTextToInput(t *testing.T) {
	got := TextToInput("ab\n")
	if !reflect.DeepEqual(got, []int64{97, 98, 10}) {
		t.Errorf("TextToInput = %v", got)
	}
	if TextToInput("") != nil && len(TextToInput("")) != 0 {
		t.Error("empty text should yield empty input")
	}
}

func TestInput(t *testing.T) {
	if _, err := Input("1,2", "ab"); err == nil {
		t.Error("both flags set must error")
	}
	got, err := Input("", "a")
	if err != nil || !reflect.DeepEqual(got, []int64{97}) {
		t.Errorf("text input = %v (%v)", got, err)
	}
	got, err = Input("7", "")
	if err != nil || !reflect.DeepEqual(got, []int64{7}) {
		t.Errorf("int input = %v (%v)", got, err)
	}
}

func TestLoadSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.mc")
	if err := os.WriteFile(path, []byte("func main() {}"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := LoadSource(path)
	if err != nil || src != "func main() {}" {
		t.Errorf("LoadSource = %q (%v)", src, err)
	}
	if _, err := LoadSource(filepath.Join(dir, "missing.mc")); err == nil {
		t.Error("missing file must error")
	}
}

func TestFormatInts(t *testing.T) {
	if got := FormatInts([]int64{1, -2, 3}); got != "1,-2,3" {
		t.Errorf("FormatInts = %q", got)
	}
	if got := FormatInts(nil); got != "" {
		t.Errorf("FormatInts(nil) = %q", got)
	}
}
