package cliutil

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eol/internal/core"
	"eol/internal/obs"
)

// hiddenUsagePrefix marks a flag as hidden: it parses normally but is
// omitted from the -h listing. Nothing registers a hidden flag today —
// the deprecated -verify-workers/-verify-cache aliases that used it
// were removed after their deprecation cycle (they now fail with the
// usual unknown-flag usage error, exit code 2) — but the mechanism
// stays for the next rename.
const hiddenUsagePrefix = "hidden: "

// EngineFlags holds the verification-engine sizing knobs shared by every
// command that runs localizations. The zero values mean "library
// default" and can be passed straight to core.Spec.VerifyWorkers /
// VerifyCacheSize.
type EngineFlags struct {
	// Workers is the verification worker-pool size: 0 = GOMAXPROCS,
	// 1 = the sequential inline path.
	Workers int
	// Cache sizes the switched-run cache: 0 = engine default, negative
	// disables caching.
	Cache int
	// Checkpoints bounds the checkpoint store captured during the
	// failing run: 0 = interpreter default, negative disables
	// checkpointed switched replay (docs/CHECKPOINT.md).
	Checkpoints int
	// NoStaticReach disables the pre-execution static reach filter over
	// the interprocedural dependence graph (docs/STATICDEP.md).
	NoStaticReach bool
	// Backend names the execution backend ("vm", the default, or
	// "tree"). Backends are byte-identical — the flag only changes
	// wall-clock time (docs/VM.md).
	Backend string
	// Speculate enables speculative verification: predicted next-round
	// switched runs overlap the incremental re-prune. Results, counters,
	// and the journal are byte-identical either way
	// (docs/SPECULATION.md).
	Speculate bool
}

// Features translates the parsed flags into the engine-feature
// tri-states for core.Spec.Features / corpus.Options.Features:
// -no-static-reach maps to StaticReach off, -speculate to Speculation
// on. The sizing knobs (Workers, Cache, Checkpoints) stay plain ints
// because they carry sizes, not on/off choices. Commands should pass
// this instead of copying NoStaticReach into the deprecated negative
// fields.
func (ef *EngineFlags) Features() core.Features {
	var f core.Features
	if ef.NoStaticReach {
		f.StaticReach = core.FeatureOff
	}
	if ef.Speculate {
		f.Speculation = core.FeatureOn
	}
	return f
}

// RegisterEngineFlags registers the unified engine knobs -workers,
// -cache, -checkpoints, -no-static-reach, -backend, and -speculate on
// fs. The pre-unification spellings -verify-workers/-verify-cache
// finished their deprecation cycle and are gone: they fail like any
// unknown flag (usage + exit code 2 under flag.ExitOnError).
func RegisterEngineFlags(fs *flag.FlagSet) *EngineFlags {
	ef := &EngineFlags{}
	fs.IntVar(&ef.Workers, "workers", 0,
		"verification workers (0 = GOMAXPROCS, 1 = sequential)")
	fs.IntVar(&ef.Cache, "cache", 0,
		"switched-run cache size (0 = default, negative = disabled)")
	fs.IntVar(&ef.Checkpoints, "checkpoints", 0,
		"failing-run checkpoint bound for switched replay (0 = default, negative = disabled)")
	fs.BoolVar(&ef.NoStaticReach, "no-static-reach", false,
		"disable the pre-execution static reach filter")
	fs.BoolVar(&ef.Speculate, "speculate", false,
		"speculatively verify predicted candidates during re-prune (same results, see docs/SPECULATION.md)")
	RegisterBackendFlag(fs, &ef.Backend)
	hideAliases(fs)
	return ef
}

// RegisterBackendFlag registers -backend on fs, bound to target. Split
// out of RegisterEngineFlags for commands that execute programs without
// running localizations (cmd/slicer's slicing modes, cmd/minic).
func RegisterBackendFlag(fs *flag.FlagSet, target *string) {
	fs.StringVar(target, "backend", "vm",
		"execution `backend`: vm (bytecode) or tree (reference interpreter)")
}

// ObsFlags holds the observability knobs shared by every command:
// -trace FILE writes the JSONL run journal, -progress streams
// human-readable phase progress to stderr.
type ObsFlags struct {
	TracePath string
	Progress  bool
}

// RegisterObsFlags registers -trace and -progress on fs.
func RegisterObsFlags(fs *flag.FlagSet) *ObsFlags {
	of := &ObsFlags{}
	fs.StringVar(&of.TracePath, "trace", "",
		"write a JSONL event journal to this `file`")
	fs.BoolVar(&of.Progress, "progress", false,
		"print live phase progress to stderr")
	hideAliases(fs)
	return of
}

// Observer builds the observer the parsed flags ask for: a JSONL
// journal on TracePath, a progress sink on stderr, both, or nil when
// neither flag was given (the zero-cost path). close flushes and closes
// the journal file and must be called once the run is over, even when
// observer is nil.
func (of *ObsFlags) Observer() (observer obs.Observer, close func() error, err error) {
	close = func() error { return nil }
	var sinks []obs.Observer
	if of.TracePath != "" {
		f, err := os.Create(of.TracePath)
		if err != nil {
			return nil, nil, err
		}
		j := obs.NewJournal(f)
		sinks = append(sinks, j)
		close = func() error {
			ferr := j.Flush()
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
			return ferr
		}
	}
	if of.Progress {
		sinks = append(sinks, obs.NewProgress(os.Stderr))
	}
	return obs.Tee(sinks...), close, nil
}

// hideAliases replaces fs.Usage with a PrintDefaults equivalent that
// skips flags whose usage starts with hiddenUsagePrefix. Idempotent in
// effect, so each Register helper may call it.
func hideAliases(fs *flag.FlagSet) {
	fs.Usage = func() {
		out := fs.Output()
		if fs.Name() != "" {
			fmt.Fprintf(out, "Usage of %s:\n", fs.Name())
		}
		fs.VisitAll(func(f *flag.Flag) {
			if strings.HasPrefix(f.Usage, hiddenUsagePrefix) {
				return
			}
			name, usage := flag.UnquoteUsage(f)
			fmt.Fprintf(out, "  -%s %s\n    \t%s", f.Name, name, usage)
			if f.DefValue != "" && f.DefValue != "0" && f.DefValue != "false" {
				fmt.Fprintf(out, " (default %v)", f.DefValue)
			}
			fmt.Fprintln(out)
		})
	}
}
