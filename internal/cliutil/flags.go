package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"eol/internal/obs"
)

// hiddenUsagePrefix marks a flag as a hidden alias: it parses normally
// but is omitted from the -h listing. The unified flag names (-workers,
// -cache) use it to keep the pre-unification spellings working without
// advertising them.
const hiddenUsagePrefix = "hidden: "

// EngineFlags holds the verification-engine sizing knobs shared by every
// command that runs localizations. The zero values mean "library
// default" and can be passed straight to core.Spec.VerifyWorkers /
// VerifyCacheSize.
type EngineFlags struct {
	// Workers is the verification worker-pool size: 0 = GOMAXPROCS,
	// 1 = the sequential inline path.
	Workers int
	// Cache sizes the switched-run cache: 0 = engine default, negative
	// disables caching.
	Cache int
	// Checkpoints bounds the checkpoint store captured during the
	// failing run: 0 = interpreter default, negative disables
	// checkpointed switched replay (docs/CHECKPOINT.md).
	Checkpoints int
	// NoStaticReach disables the pre-execution static reach filter over
	// the interprocedural dependence graph (docs/STATICDEP.md).
	NoStaticReach bool
	// Backend names the execution backend ("vm", the default, or
	// "tree"). Backends are byte-identical — the flag only changes
	// wall-clock time (docs/VM.md).
	Backend string
}

// deprecatedInt is an int flag.Value bound to the canonical flag's
// target that prints a one-line deprecation warning when actually used
// on a command line.
type deprecatedInt struct {
	target   *int
	old, new string
	out      func() io.Writer
}

func (d *deprecatedInt) String() string {
	if d.target == nil {
		return "0" // the zero Value flag.PrintDefaults probes
	}
	return strconv.Itoa(*d.target)
}

func (d *deprecatedInt) Set(s string) error {
	v, err := strconv.Atoi(s)
	if err != nil {
		return err
	}
	*d.target = v
	fmt.Fprintf(d.out(), "warning: -%s is deprecated, use -%s\n", d.old, d.new)
	return nil
}

// RegisterEngineFlags registers -workers and -cache on fs, plus the
// old per-command spellings -verify-workers and -verify-cache as hidden
// deprecated aliases bound to the same variables: they keep parsing but
// warn on use and do not appear in -h output.
func RegisterEngineFlags(fs *flag.FlagSet) *EngineFlags {
	ef := &EngineFlags{}
	fs.IntVar(&ef.Workers, "workers", 0,
		"verification workers (0 = GOMAXPROCS, 1 = sequential)")
	fs.Var(&deprecatedInt{&ef.Workers, "verify-workers", "workers", fs.Output},
		"verify-workers", hiddenUsagePrefix+"deprecated alias for -workers")
	fs.IntVar(&ef.Cache, "cache", 0,
		"switched-run cache size (0 = default, negative = disabled)")
	fs.Var(&deprecatedInt{&ef.Cache, "verify-cache", "cache", fs.Output},
		"verify-cache", hiddenUsagePrefix+"deprecated alias for -cache")
	fs.IntVar(&ef.Checkpoints, "checkpoints", 0,
		"failing-run checkpoint bound for switched replay (0 = default, negative = disabled)")
	fs.BoolVar(&ef.NoStaticReach, "no-static-reach", false,
		"disable the pre-execution static reach filter")
	RegisterBackendFlag(fs, &ef.Backend)
	hideAliases(fs)
	return ef
}

// RegisterBackendFlag registers -backend on fs, bound to target. Split
// out of RegisterEngineFlags for commands that execute programs without
// running localizations (cmd/slicer's slicing modes, cmd/minic).
func RegisterBackendFlag(fs *flag.FlagSet, target *string) {
	fs.StringVar(target, "backend", "vm",
		"execution `backend`: vm (bytecode) or tree (reference interpreter)")
}

// ObsFlags holds the observability knobs shared by every command:
// -trace FILE writes the JSONL run journal, -progress streams
// human-readable phase progress to stderr.
type ObsFlags struct {
	TracePath string
	Progress  bool
}

// RegisterObsFlags registers -trace and -progress on fs.
func RegisterObsFlags(fs *flag.FlagSet) *ObsFlags {
	of := &ObsFlags{}
	fs.StringVar(&of.TracePath, "trace", "",
		"write a JSONL event journal to this `file`")
	fs.BoolVar(&of.Progress, "progress", false,
		"print live phase progress to stderr")
	hideAliases(fs)
	return of
}

// Observer builds the observer the parsed flags ask for: a JSONL
// journal on TracePath, a progress sink on stderr, both, or nil when
// neither flag was given (the zero-cost path). close flushes and closes
// the journal file and must be called once the run is over, even when
// observer is nil.
func (of *ObsFlags) Observer() (observer obs.Observer, close func() error, err error) {
	close = func() error { return nil }
	var sinks []obs.Observer
	if of.TracePath != "" {
		f, err := os.Create(of.TracePath)
		if err != nil {
			return nil, nil, err
		}
		j := obs.NewJournal(f)
		sinks = append(sinks, j)
		close = func() error {
			ferr := j.Flush()
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
			return ferr
		}
	}
	if of.Progress {
		sinks = append(sinks, obs.NewProgress(os.Stderr))
	}
	return obs.Tee(sinks...), close, nil
}

// hideAliases replaces fs.Usage with a PrintDefaults equivalent that
// skips flags whose usage starts with hiddenUsagePrefix. Idempotent in
// effect, so each Register helper may call it.
func hideAliases(fs *flag.FlagSet) {
	fs.Usage = func() {
		out := fs.Output()
		if fs.Name() != "" {
			fmt.Fprintf(out, "Usage of %s:\n", fs.Name())
		}
		fs.VisitAll(func(f *flag.Flag) {
			if strings.HasPrefix(f.Usage, hiddenUsagePrefix) {
				return
			}
			name, usage := flag.UnquoteUsage(f)
			fmt.Fprintf(out, "  -%s %s\n    \t%s", f.Name, name, usage)
			if f.DefValue != "" && f.DefValue != "0" && f.DefValue != "false" {
				fmt.Fprintf(out, " (default %v)", f.DefValue)
			}
			fmt.Fprintln(out)
		})
	}
}
