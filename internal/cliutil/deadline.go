package cliutil

import (
	"context"
	"flag"
	"time"

	"eol/internal/core"
)

// DeadlineFlag is the parsed -deadline flag; see RegisterDeadlineFlag.
type DeadlineFlag struct {
	// Deadline is the requested wall-clock bound (0 = none).
	Deadline time.Duration
}

// RegisterDeadlineFlag registers the shared -deadline flag on fs: a
// wall-clock bound for the whole operation in Go duration syntax
// ("30s", "2m"). Zero means unbounded.
func RegisterDeadlineFlag(fs *flag.FlagSet) *DeadlineFlag {
	f := &DeadlineFlag{}
	fs.DurationVar(&f.Deadline, "deadline", 0, "wall-clock bound for the run (e.g. 30s; 0 = none)")
	return f
}

// Context returns a context honoring the flag: context.Background when
// no deadline was requested, a timeout context otherwise. The returned
// cancel function is always safe to call.
func (f *DeadlineFlag) Context() (context.Context, context.CancelFunc) {
	if f.Deadline <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), f.Deadline)
}

// ExitErr reports err on stderr and exits with the cliutil exit-code
// contract: nothing happens for a nil err; everything else prints
// prefix-tagged to stderr and exits 1, with the core.ErrClass name
// appended for classified errors so scripts can distinguish a deadline
// from a genuine failure without parsing wrapped error text.
func ExitErr(prefix string, err error) {
	if err == nil {
		return
	}
	if class := core.ErrClass(err); class != "" && class != "error" {
		Fatalf("%s: %v [%s]", prefix, err, class)
	}
	Fatalf("%s: %v", prefix, err)
}
