// Package cliutil holds small helpers shared by the command-line tools:
// parsing input specifications and loading MiniC programs.
package cliutil

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// ParseInts parses a comma- or space-separated list of integers.
func ParseInts(s string) ([]int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	vals := make([]int64, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseInt(f, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", f, err)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// TextToInput encodes a string as its byte values (the convention the
// text-processing benchmark programs use).
func TextToInput(s string) []int64 {
	vals := make([]int64, len(s))
	for i := 0; i < len(s); i++ {
		vals[i] = int64(s[i])
	}
	return vals
}

// Input resolves the -input/-text flag pair: at most one may be set.
func Input(ints, text string) ([]int64, error) {
	if ints != "" && text != "" {
		return nil, fmt.Errorf("use either -input or -text, not both")
	}
	if text != "" {
		return TextToInput(text), nil
	}
	return ParseInts(ints)
}

// LoadSource reads a MiniC source file.
func LoadSource(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// Fatalf prints to stderr and exits 1: the exit code for operational
// failures (unreadable files, compile errors, runtime faults).
func Fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// Usagef prints to stderr and exits 2: the exit code for command-line
// misuse (wrong arguments, malformed or conflicting flags), following
// the flag package's convention.
func Usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// FormatInts renders values as a comma-separated list.
func FormatInts(vals []int64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strconv.FormatInt(v, 10)
	}
	return strings.Join(parts, ",")
}
