package corpus

// Manifest and Options coverage for the Features wire spelling: per-key
// fold order, Validate rejection of unknown names, and the corpus-level
// determinism contract — speculation on vs off yields byte-identical
// results and journals.

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"eol/internal/bench"
	"eol/internal/core"
	"eol/internal/obs"
)

// TestManifestFeaturesFold: a key the subject leaves unset inherits the
// manifest default; subject keys — including an explicit "default" —
// win.
func TestManifestFeaturesFold(t *testing.T) {
	m := &Manifest{
		Defaults: Defaults{Features: map[string]string{
			"speculation": "on",
			"static_skip": "off",
		}},
		Subjects: []Subject{
			{Name: "inherits", Source: "s", Expected: []int64{1}},
			{Name: "overrides", Source: "s", Expected: []int64{1},
				Features: map[string]string{"speculation": "off"}},
			{Name: "explicit-default", Source: "s", Expected: []int64{1},
				Features: map[string]string{"static_skip": "default"}},
		},
	}
	m.Fold()

	if got := m.Subjects[0].Features; got["speculation"] != "on" || got["static_skip"] != "off" {
		t.Errorf("inherits: %v", got)
	}
	if got := m.Subjects[1].Features; got["speculation"] != "off" || got["static_skip"] != "off" {
		t.Errorf("overrides: %v", got)
	}
	if got := m.Subjects[2].Features; got["static_skip"] != "default" || got["speculation"] != "on" {
		t.Errorf("explicit-default: %v", got)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("folded manifest invalid: %v", err)
	}
}

// TestManifestFeaturesValidate: unknown feature names and modes fail
// Validate with an error naming the offender — the server surfaces this
// as the `invalid` code.
func TestManifestFeaturesValidate(t *testing.T) {
	mk := func(features map[string]string) *Manifest {
		return &Manifest{Subjects: []Subject{
			{Name: "x", Source: "s", Expected: []int64{1}, Features: features},
		}}
	}
	if err := mk(map[string]string{"speculation": "on"}).Validate(); err != nil {
		t.Errorf("valid feature rejected: %v", err)
	}
	err := mk(map[string]string{"warp_drive": "on"}).Validate()
	if err == nil || !strings.Contains(err.Error(), "warp_drive") {
		t.Errorf("unknown feature name: err = %v", err)
	}
	err = mk(map[string]string{"speculation": "maybe"}).Validate()
	if err == nil || !strings.Contains(err.Error(), "maybe") {
		t.Errorf("unknown feature mode: err = %v", err)
	}
}

// TestCorpusSpeculationInvariance is the corpus-level half of the
// speculation determinism contract: the same manifest run with
// Options.Features.Speculation on and off must yield identical
// per-subject results, totals, and journal events.
func TestCorpusSpeculationInvariance(t *testing.T) {
	m := &Manifest{}
	for _, name := range []string{"grepsim/V4-F2", "sedsim/V3-F2"} {
		c := bench.ByName(name)
		if c == nil {
			t.Fatalf("unknown case %s", name)
		}
		faulty, err := c.FaultySrc()
		if err != nil {
			t.Fatal(err)
		}
		m.Subjects = append(m.Subjects, Subject{
			Name:          c.Name(),
			Source:        faulty,
			CorrectSource: c.CorrectSrc,
			Input:         c.FailingInput,
			RootFrag:      c.RootFrag,
		})
	}

	run := func(f core.Features) (*Result, []obs.Event) {
		mem := &obs.Memory{}
		res, err := Run(context.Background(), m, Options{
			Shards:        2,
			VerifyWorkers: 2,
			Features:      f,
			Observer:      mem,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, mem.Events()
	}

	resOff, jOff := run(core.Features{})
	resOn, jOn := run(core.Features{Speculation: core.FeatureOn})

	if got, want := viewOf(resOn), viewOf(resOff); !reflect.DeepEqual(got, want) {
		t.Errorf("per-subject results differ with speculation:\noff: %+v\non:  %+v", want, got)
	}
	if !reflect.DeepEqual(jOff, jOn) {
		t.Errorf("journals differ with speculation (%d vs %d events)", len(jOff), len(jOn))
	}
	var issued int64
	for i := range resOn.Subjects {
		if rep := resOn.Subjects[i].Report; rep != nil {
			issued += rep.Stats.SpecIssued
		}
	}
	if issued == 0 {
		t.Error("speculation never issued a run across the corpus")
	}
	for i := range resOff.Subjects {
		if rep := resOff.Subjects[i].Report; rep != nil && rep.Stats.SpecIssued != 0 {
			t.Errorf("%s: speculation-off subject issued %d speculative runs",
				resOff.Subjects[i].Name, rep.Stats.SpecIssued)
		}
	}
}

// TestSubjectFeaturesOverrideOptions: a subject's manifest features
// overlay the corpus-wide Options.Features key by key.
func TestSubjectFeaturesOverrideOptions(t *testing.T) {
	c := bench.ByName("grepsim/V4-F2")
	if c == nil {
		t.Fatal("unknown case grepsim/V4-F2")
	}
	faulty, err := c.FaultySrc()
	if err != nil {
		t.Fatal(err)
	}
	m := &Manifest{Subjects: []Subject{
		{
			Name: "spec-off", Source: faulty, CorrectSource: c.CorrectSrc,
			Input: c.FailingInput, RootFrag: c.RootFrag,
			Features: map[string]string{"speculation": "off"},
		},
		{
			Name: "spec-inherit", Source: faulty, CorrectSource: c.CorrectSrc,
			Input: c.FailingInput, RootFrag: c.RootFrag,
		},
	}}
	res, err := Run(context.Background(), m, Options{
		Shards:   1,
		Features: core.Features{Speculation: core.FeatureOn},
		// Private caches: the first subject must not warm the second's.
		NoSharedCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	off, on := res.Subjects[0].Report, res.Subjects[1].Report
	if off == nil || on == nil {
		t.Fatal("missing reports")
	}
	if off.Stats.SpecIssued != 0 {
		t.Errorf("subject-level off ignored: SpecIssued=%d", off.Stats.SpecIssued)
	}
	if on.Stats.SpecIssued == 0 {
		t.Error("corpus-level on not inherited: SpecIssued=0")
	}
}
