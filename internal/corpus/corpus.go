// Package corpus runs many localization subjects — (faulty program,
// failing input, expected output) triples — concurrently over a bounded
// pool of localization sessions, sharing compiled programs and the
// switched-run cache across subjects of the same program family.
//
// It is the batch driver behind cmd/eolcorpus and eol.LocateCorpus.
// Subjects come from a Manifest (see manifest.go and docs/CORPUS.md);
// Run shards them over Options.Shards goroutines, bounds each with a
// per-subject deadline, and returns per-subject reports in manifest
// order. Cancellation is cooperative end-to-end: the corpus context
// flows through core.LocateContext into the verification workers and
// the interpreter's step loop, so an expired subject stops mid-run and
// still yields its partial Table-3 counters.
//
// # Determinism
//
// The per-subject localization counters (the paper's Table 3 terms plus
// edge counts and located) are pure functions of the subject: a verdict
// served from the shared cache is byte-identical to a fresh switched
// re-execution, and verdict absorption inside core.Locate is
// rank-ordered regardless of scheduling. The journal Run emits — and
// the default eolcorpus JSON — therefore contains only those fields and
// is byte-identical for any shard count. Wall-clock timings, shard
// assignment, and cache hit/miss splits DO depend on scheduling; they
// are reported on the side (Result.Elapsed, SubjectResult.Shard,
// Result.Cache) and never enter the journal.
package corpus

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eol/internal/confidence"
	"eol/internal/core"
	"eol/internal/backend"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/obs"
	"eol/internal/oracle"
	"eol/internal/staticdep"
	"eol/internal/verifyengine"
)

// Options configures a corpus run.
type Options struct {
	// Shards is the number of subjects localized concurrently
	// (0 = GOMAXPROCS). Shard count never changes results — only
	// wall-clock time and the scheduling-dependent side counters.
	Shards int
	// Deadline bounds each subject's wall clock when the manifest sets
	// none (0 = unbounded).
	Deadline time.Duration
	// FailFast cancels the remaining subjects after the first subject
	// error. Subjects canceled this way report class "canceled".
	FailFast bool
	// VerifyWorkers sizes each session's verification pool
	// (0 = GOMAXPROCS). With many shards, 1 is usually right: the
	// corpus already saturates the cores subject-wise.
	VerifyWorkers int
	// CacheSize bounds the shared switched-run cache (0 = default,
	// negative = disable caching entirely).
	CacheSize int
	// NoSharedCache gives every subject a private cache instead of one
	// shared across the corpus — for A/B-measuring the sharing gain.
	NoSharedCache bool
	// Checkpoints bounds each subject's failing-run checkpoint store
	// (0 = interpreter default, negative disables checkpointed switched
	// replay). Per-subject results are identical either way.
	Checkpoints int
	// NoStaticReach disables the pre-execution static reach filter
	// (docs/STATICDEP.md). Per-subject results are identical either way;
	// only the run-count split in Stats changes.
	//
	// Deprecated: set Features.StaticReach = core.FeatureOff instead.
	NoStaticReach bool
	// Features selects optional engine features for every subject, as
	// explicit tri-states; per-subject manifest features (wire spelling)
	// overlay it key by key. Results-neutral, like all features.
	Features core.Features
	// Backend names the execution backend for subjects that do not pick
	// their own ("" = library default). Backends are byte-identical, so
	// the corpus JSON and journal never depend on — or record — the
	// choice: that blindness is what lets the vm-smoke CI lane compare
	// tree and vm outputs byte for byte.
	Backend string
	// Shared, if non-nil, supplies externally owned warm state — the
	// compile cache, the switched-run cache, and the SPDG cache — that
	// outlives this Run call. Resident drivers (internal/serve) keep one
	// Shared across requests so later runs of the same program family hit
	// warm caches. When set, it overrides NoSharedCache and the
	// cache-construction half of CacheSize (CacheSize still sizes
	// per-subject private caches if Shared was built without a run
	// cache). Per-subject results are identical warm or cold.
	Shared *Shared
	// Observer, if non-nil, receives the corpus journal: one corpus
	// span containing a subject span per subject (manifest order) with
	// the deterministic per-subject gauges, then corpus totals. Emitted
	// post-run from a single goroutine; see package comment for what is
	// deliberately excluded.
	Observer obs.Observer
}

// SubjectResult is the outcome of one subject.
type SubjectResult struct {
	// Name is the subject's manifest name.
	Name string
	// Report is core.Locate's report: non-nil, partial when Err is set.
	Report *core.Report
	// Err is the subject's terminal error (nil on completion); Class is
	// core.ErrClass(Err).
	Err   error
	Class string
	// Elapsed and Shard describe scheduling: wall clock spent and which
	// shard ran the subject. Both vary run to run.
	Elapsed time.Duration
	Shard   int
}

// Located reports whether the subject completed and located its root
// cause.
func (r *SubjectResult) Located() bool {
	return r.Err == nil && r.Report != nil && r.Report.Located
}

// Result is the outcome of a corpus run.
type Result struct {
	// Subjects holds one entry per manifest subject, in manifest order.
	Subjects []SubjectResult
	// Located counts subjects that located their root cause; Failed
	// counts subjects with a terminal error.
	Located int
	Failed  int
	// Elapsed is the whole run's wall clock (scheduling-dependent).
	Elapsed time.Duration
	// Cache snapshots the shared switched-run cache (zero value when
	// sharing is off). Hit/miss splits are scheduling-dependent.
	Cache verifyengine.CacheStats
	// SharedCache reports whether one cache served all subjects.
	SharedCache bool
}

// compileEntry dedupes compilation: all subjects referencing the same
// source text share one compile (and hence one *interp.Compiled, which
// is what lets the switched-run cache key match across subjects).
type compileEntry struct {
	once sync.Once
	c    *interp.Compiled
	err  error
}

type compileCache struct {
	mu sync.Mutex
	m  map[string]*compileEntry
}

func (cc *compileCache) get(src string) (*interp.Compiled, error) {
	cc.mu.Lock()
	e, ok := cc.m[src]
	if !ok {
		e = &compileEntry{}
		cc.m[src] = e
	}
	cc.mu.Unlock()
	e.once.Do(func() { e.c, e.err = interp.Compile(src) })
	return e.c, e.err
}

func (cc *compileCache) len() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.m)
}

// Shared is the warm state a resident driver keeps across Run calls:
// the content-keyed compile cache, the cross-request switched-run cache,
// and the content-keyed SPDG cache. All three are safe for concurrent
// use, so one Shared may serve overlapping Run calls. A batch Run
// without Options.Shared builds the equivalent state privately and
// discards it afterwards; the only difference warm state makes is
// wall-clock time and the cache hit/miss split — never results.
type Shared struct {
	runs    *verifyengine.RunCache // nil when run caching is disabled
	compile *compileCache
	static  *staticdep.Cache
}

// NewShared builds warm state with a switched-run cache of cacheSize
// entries (0 = verifyengine.DefaultCacheSize, negative = no shared run
// cache).
func NewShared(cacheSize int) *Shared {
	s := &Shared{
		compile: &compileCache{m: map[string]*compileEntry{}},
		static:  staticdep.NewCache(),
	}
	if cacheSize >= 0 {
		s.runs = verifyengine.NewRunCache(cacheSize)
	}
	return s
}

// RunCacheStats snapshots the shared switched-run cache counters
// (zero value when the run cache is disabled). Cumulative across every
// Run call that used this Shared.
func (s *Shared) RunCacheStats() verifyengine.CacheStats {
	if s.runs == nil {
		return verifyengine.CacheStats{}
	}
	return s.runs.Stats()
}

// CompiledPrograms reports how many distinct program texts the compile
// cache holds.
func (s *Shared) CompiledPrograms() int { return s.compile.len() }

// Run localizes every subject of m under ctx and opts. The returned
// Result is non-nil unless the manifest itself is invalid; individual
// subject failures (deadline, budget, not located) land in their
// SubjectResult, not in Run's error. Run's own error is non-nil only
// for an invalid manifest.
func Run(ctx context.Context, m *Manifest, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > len(m.Subjects) {
		shards = len(m.Subjects)
	}

	var shared *verifyengine.RunCache
	var cc *compileCache
	var sd *staticdep.Cache
	if opts.Shared != nil {
		// Resident mode: warm state owned by the caller, reused across
		// Run calls.
		shared, cc, sd = opts.Shared.runs, opts.Shared.compile, opts.Shared.static
	} else {
		if !opts.NoSharedCache && opts.CacheSize >= 0 {
			shared = verifyengine.NewRunCache(opts.CacheSize)
		}
		cc = &compileCache{m: map[string]*compileEntry{}}
		// Subjects of one program family share a single immutable SPDG,
		// the static analog of the compile cache above.
		sd = staticdep.NewCache()
	}

	runCtx := ctx
	cancel := func() {}
	if opts.FailFast {
		runCtx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	start := time.Now()
	res := &Result{
		Subjects:    make([]SubjectResult, len(m.Subjects)),
		SharedCache: shared != nil,
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for shard := 0; shard < shards; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(m.Subjects) {
					return
				}
				res.Subjects[i] = runSubject(runCtx, &m.Subjects[i], shard, shared, cc, sd, &opts)
				if opts.FailFast && res.Subjects[i].Err != nil {
					cancel()
				}
			}
		}(shard)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)

	for i := range res.Subjects {
		switch {
		case res.Subjects[i].Located():
			res.Located++
		case res.Subjects[i].Err != nil:
			res.Failed++
		}
	}
	if shared != nil {
		res.Cache = shared.Stats()
	}
	emitJournal(opts.Observer, res)
	return res, nil
}

// runSubject performs one localization session end to end.
func runSubject(ctx context.Context, s *Subject, shard int, shared *verifyengine.RunCache, cc *compileCache, sd *staticdep.Cache, opts *Options) SubjectResult {
	start := time.Now()
	sr := SubjectResult{Name: s.Name, Shard: shard, Report: &core.Report{}}
	fail := func(err error) SubjectResult {
		sr.Err = err
		sr.Class = core.ErrClass(err)
		sr.Elapsed = time.Since(start)
		return sr
	}

	faulty, err := cc.get(s.Source)
	if err != nil {
		return fail(fmt.Errorf("compile: %w", err))
	}

	bkName := s.Backend
	if bkName == "" {
		bkName = opts.Backend
	}
	bk, err := backend.Lookup(bkName)
	if err != nil {
		return fail(err)
	}

	sctx := ctx
	if d := s.Deadline.D(); d == 0 && opts.Deadline > 0 {
		s2 := *s
		s2.Deadline = Duration(opts.Deadline)
		s = &s2
	}
	if d := s.Deadline.D(); d > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	// Per-key feature merge: the subject's manifest features (validated by
	// Manifest.Validate, so the parse cannot fail here) overlay the
	// corpus-wide Options.Features.
	subjFeats, err := core.ParseFeatures(s.Features)
	if err != nil {
		return fail(err)
	}
	spec := &core.Spec{
		Program:         faulty,
		Backend:         bk,
		Input:           s.Input,
		Expected:        s.Expected,
		MaxIterations:   s.MaxIterations,
		PathMode:        s.PathMode,
		CrossFunctionPD: s.CrossFunctionPD,
		VerifyWorkers:   opts.VerifyWorkers,
		VerifyCacheSize: opts.CacheSize,
		VerifyCache:     shared,
		Checkpoints:     opts.Checkpoints,
		NoStaticReach:   opts.NoStaticReach,
		Features:        opts.Features.Overlay(subjFeats),
	}
	if spec.ResolveFeatures().StaticReach && !s.PathMode {
		spec.StaticDeps = sd.Get(faulty)
	}

	if s.CorrectSource != "" {
		correct, err := cc.get(s.CorrectSource)
		if err != nil {
			return fail(fmt.Errorf("compile correct: %w", err))
		}
		corRun := bk.Run(correct, interp.Options{Input: s.Input, BuildTrace: true, Ctx: sctx})
		if corRun.Err != nil {
			return fail(fmt.Errorf("correct run: %w", corRun.Err))
		}
		spec.Oracle = &oracle.StateOracle{Correct: corRun.Trace}
		if len(spec.Expected) == 0 {
			spec.Expected = corRun.OutputValues()
		}
		// The correct run doubles as a value profile for confidence
		// analysis, as in the bench harness.
		prof := confidence.NewProfile()
		prof.AddTrace(corRun.Trace)
		spec.Profile = prof
	}

	if s.RootFrag != "" {
		for _, st := range faulty.Info.Stmts {
			if strings.Contains(ast.StmtString(st), s.RootFrag) {
				spec.RootCause = append(spec.RootCause, st.ID())
			}
		}
		if len(spec.RootCause) == 0 {
			return fail(fmt.Errorf("no statement matches root fragment %q", s.RootFrag))
		}
	}

	rep, err := core.LocateContext(sctx, spec)
	if rep != nil {
		sr.Report = rep
	}
	if err != nil {
		return fail(err)
	}
	if len(spec.RootCause) > 0 && !rep.Located {
		return fail(core.ErrNotLocated)
	}
	sr.Elapsed = time.Since(start)
	return sr
}

// subjectGauges are the per-subject journal gauges: the scheduling-
// independent subset of obs.Stats (see the package comment). Fixed
// order; append only.
var subjectGauges = []struct {
	name string
	get  func(*obs.Stats) int64
}{
	{"user_prunings", func(s *obs.Stats) int64 { return int64(s.UserPrunings) }},
	{"verifications", func(s *obs.Stats) int64 { return int64(s.Verifications) }},
	{"iterations", func(s *obs.Stats) int64 { return int64(s.Iterations) }},
	{"expanded_edges", func(s *obs.Stats) int64 { return int64(s.ExpandedEdges) }},
	{"strong_edges", func(s *obs.Stats) int64 { return int64(s.StrongEdges) }},
	{"implicit_edges", func(s *obs.Stats) int64 { return int64(s.ImplicitEdges) }},
}

// emitJournal writes the corpus journal: deterministic for any shard
// count because it is emitted after the run, in manifest order, from
// one goroutine, and carries only scheduling-independent fields.
func emitJournal(o obs.Observer, res *Result) {
	rec := obs.NewRecorder(o)
	if !rec.Enabled() {
		return
	}
	rec.Begin("corpus")
	for i := range res.Subjects {
		sr := &res.Subjects[i]
		rec.Begin("subject", "name", sr.Name)
		var st *obs.Stats
		if sr.Report != nil {
			st = &sr.Report.Stats
		} else {
			st = &obs.Stats{}
		}
		for _, g := range subjectGauges {
			rec.Gauge(g.name, g.get(st))
		}
		located := int64(0)
		if sr.Located() {
			located = 1
		}
		rec.Gauge("located", located)
		if sr.Err != nil {
			rec.Mark("subject_error", 0, "class", sr.Class)
		}
		rec.End("subject", located)
	}
	rec.Gauge("corpus_subjects", int64(len(res.Subjects)))
	rec.Gauge("corpus_located", int64(res.Located))
	rec.Gauge("corpus_failed", int64(res.Failed))
	rec.End("corpus", int64(res.Located))
}
