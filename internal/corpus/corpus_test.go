package corpus

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"eol/internal/bench"
	"eol/internal/core"
	"eol/internal/interp"
	"eol/internal/obs"
)

// benchManifest builds an in-memory manifest from the nine benchmark
// cases: each subject gets the faulty source, the correct version as
// the oracle, and the known root fragment.
func benchManifest(t *testing.T) *Manifest {
	t.Helper()
	m := &Manifest{}
	for _, c := range bench.Cases() {
		faulty, err := c.FaultySrc()
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		m.Subjects = append(m.Subjects, Subject{
			Name:          c.Name(),
			Source:        faulty,
			CorrectSource: c.CorrectSrc,
			Input:         c.FailingInput,
			RootFrag:      c.RootFrag,
		})
	}
	if len(m.Subjects) < 8 {
		t.Fatalf("bench suite has %d cases, want >= 8 for the shard A/B", len(m.Subjects))
	}
	return m
}

// deterministicView strips the scheduling-dependent fields from a
// result, leaving exactly what the shard-count contract promises.
type deterministicView struct {
	Name          string
	Located       bool
	Class         string
	UserPrunings  int
	Verifications int
	Iterations    int
	ExpandedEdges int
	StrongEdges   int
	ImplicitEdges int
	IPSStatic     int
	IPSDynamic    int
}

func viewOf(res *Result) []deterministicView {
	views := make([]deterministicView, len(res.Subjects))
	for i := range res.Subjects {
		sr := &res.Subjects[i]
		v := deterministicView{Name: sr.Name, Located: sr.Located(), Class: sr.Class}
		if rep := sr.Report; rep != nil {
			v.UserPrunings = rep.Stats.UserPrunings
			v.Verifications = rep.Stats.Verifications
			v.Iterations = rep.Stats.Iterations
			v.ExpandedEdges = rep.Stats.ExpandedEdges
			v.StrongEdges = rep.Stats.StrongEdges
			v.ImplicitEdges = rep.Stats.ImplicitEdges
			v.IPSStatic = rep.IPS.Static
			v.IPSDynamic = rep.IPS.Dynamic
		}
		views[i] = v
	}
	return views
}

// TestShardCountInvariance is the A/B acceptance check: localizing the
// nine-subject bench manifest with 1 shard and with 4 shards must yield
// identical per-subject results, totals, and journals.
func TestShardCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full bench corpus in -short mode")
	}
	m := benchManifest(t)

	run := func(shards int) (*Result, []obs.Event) {
		mem := &obs.Memory{}
		res, err := Run(context.Background(), m, Options{
			Shards:        shards,
			VerifyWorkers: 1,
			Observer:      mem,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return res, mem.Events()
	}

	res1, j1 := run(1)
	res4, j4 := run(4)

	if got, want := viewOf(res4), viewOf(res1); !reflect.DeepEqual(got, want) {
		t.Errorf("per-subject results differ between 1 and 4 shards:\n1: %+v\n4: %+v", want, got)
	}
	if res1.Located != res4.Located || res1.Failed != res4.Failed {
		t.Errorf("totals differ: shards=1 located=%d failed=%d, shards=4 located=%d failed=%d",
			res1.Located, res1.Failed, res4.Located, res4.Failed)
	}
	if !reflect.DeepEqual(j1, j4) {
		t.Errorf("journals differ between 1 and 4 shards (%d vs %d events)", len(j1), len(j4))
	}
	if res1.Located == 0 {
		t.Errorf("no subject located its root cause; the corpus run is vacuous")
	}
	// Every bench subject is expected to locate.
	for _, v := range viewOf(res1) {
		if !v.Located {
			t.Errorf("%s: not located (class %q)", v.Name, v.Class)
		}
	}
}

// TestSharedCacheAcrossSubjects runs the same subject several times in
// one corpus: with a shared cache the later sessions reuse the first
// session's switched runs; with private caches they cannot.
func TestSharedCacheAcrossSubjects(t *testing.T) {
	cases := bench.Cases()
	faulty, err := cases[0].FaultySrc()
	if err != nil {
		t.Fatal(err)
	}
	m := &Manifest{}
	for i := 0; i < 3; i++ {
		m.Subjects = append(m.Subjects, Subject{
			Name:          cases[0].Name() + "-" + string(rune('a'+i)),
			Source:        faulty,
			CorrectSource: cases[0].CorrectSrc,
			Input:         cases[0].FailingInput,
			RootFrag:      cases[0].RootFrag,
		})
	}

	shared, err := Run(context.Background(), m, Options{Shards: 1, VerifyWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !shared.SharedCache {
		t.Fatal("expected a shared cache by default")
	}
	if shared.Cache.Hits == 0 {
		t.Errorf("identical subjects produced no shared-cache hits: %+v", shared.Cache)
	}

	private, err := Run(context.Background(), m, Options{Shards: 1, VerifyWorkers: 1, NoSharedCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if private.SharedCache {
		t.Errorf("private-cache run reported a shared cache")
	}
	// Sharing must not change results.
	if !reflect.DeepEqual(viewOf(shared), viewOf(private)) {
		t.Errorf("shared vs private cache changed results:\nshared:  %+v\nprivate: %+v",
			viewOf(shared), viewOf(private))
	}
}

// TestSubjectDeadline gives a long-running subject a tiny deadline: the
// subject must fail with class "deadline", an error matching
// interp.ErrDeadline, and a non-nil partial report, without affecting
// its siblings.
func TestSubjectDeadline(t *testing.T) {
	slow := `
func main() {
    var x = read();
    var i = 0;
    while (i < 100000000) {
        i = i + 1;
    }
    print(x);
}
`
	cases := bench.Cases()
	faulty, err := cases[0].FaultySrc()
	if err != nil {
		t.Fatal(err)
	}
	m := &Manifest{Subjects: []Subject{
		{Name: "slow", Source: slow, Input: []int64{1}, Expected: []int64{2},
			Deadline: Duration(5 * time.Millisecond)},
		{Name: "ok", Source: faulty, CorrectSource: cases[0].CorrectSrc,
			Input: cases[0].FailingInput, RootFrag: cases[0].RootFrag},
	}}
	res, err := Run(context.Background(), m, Options{Shards: 2, VerifyWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	slowRes, okRes := &res.Subjects[0], &res.Subjects[1]
	if slowRes.Class != "deadline" {
		t.Fatalf("slow subject class = %q (err %v), want deadline", slowRes.Class, slowRes.Err)
	}
	if !errors.Is(slowRes.Err, interp.ErrDeadline) {
		t.Errorf("slow subject error %v does not match interp.ErrDeadline", slowRes.Err)
	}
	if slowRes.Report == nil {
		t.Error("slow subject has no partial report")
	}
	if !okRes.Located() {
		t.Errorf("sibling subject failed: class %q err %v", okRes.Class, okRes.Err)
	}
	if res.Failed != 1 || res.Located != 1 {
		t.Errorf("totals: located=%d failed=%d, want 1/1", res.Located, res.Failed)
	}
}

// TestNotLocatedClass runs a subject whose root fragment names a
// statement the locator cannot reach as a candidate, and expects the
// not_located failure class.
func TestNotLocatedClass(t *testing.T) {
	src := `
func main() {
    var a = read();
    var dead = 7;
    print(a + 1);
}
`
	m := &Manifest{Subjects: []Subject{{
		Name: "never", Source: src, Input: []int64{1}, Expected: []int64{3},
		RootFrag: "var dead",
	}}}
	res, err := Run(context.Background(), m, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	sr := &res.Subjects[0]
	if sr.Class != "not_located" || !errors.Is(sr.Err, core.ErrNotLocated) {
		t.Fatalf("class = %q err = %v, want not_located", sr.Class, sr.Err)
	}
}

// TestFailFast checks that the first failure cancels the rest of the
// corpus when FailFast is set.
func TestFailFast(t *testing.T) {
	slow := `
func main() {
    var x = read();
    var i = 0;
    while (i < 100000000) {
        i = i + 1;
    }
    print(x);
}
`
	m := &Manifest{Subjects: []Subject{
		{Name: "fails", Source: "func main() { print(read()); }", Input: []int64{1},
			Expected: []int64{2}, RootFrag: "no-such-fragment"},
		{Name: "slow", Source: slow, Input: []int64{1}, Expected: []int64{2}},
	}}
	res, err := Run(context.Background(), m, Options{Shards: 1, FailFast: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subjects[0].Err == nil {
		t.Fatal("first subject should fail (bad root fragment)")
	}
	if res.Subjects[1].Class != "canceled" {
		t.Fatalf("second subject class = %q (err %v), want canceled via fail-fast",
			res.Subjects[1].Class, res.Subjects[1].Err)
	}
}

// TestManifestLoad exercises file resolution, duration parsing, default
// folding and validation.
func TestManifestLoad(t *testing.T) {
	dir := t.TempDir()
	prog := "func main() { print(read()); }"
	if err := os.WriteFile(filepath.Join(dir, "p.mc"), []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	manifest := `{
  "defaults": {"deadline": "2s", "max_iterations": 7},
  "subjects": [
    {"file": "p.mc", "input": [1], "expected": [2]},
    {"name": "b", "source": "func main() { print(read()); }", "input": [1],
     "expected": [2], "deadline": "10ms"}
  ]
}`
	path := filepath.Join(dir, "m.json")
	if err := os.WriteFile(path, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a, b := &m.Subjects[0], &m.Subjects[1]
	if a.Source != prog {
		t.Errorf("file not resolved: %q", a.Source)
	}
	if a.Name != "p.mc" {
		t.Errorf("default name = %q, want p.mc", a.Name)
	}
	if a.Deadline.D() != 2*time.Second || a.MaxIterations != 7 {
		t.Errorf("defaults not folded: deadline=%v iters=%d", a.Deadline.D(), a.MaxIterations)
	}
	if b.Deadline.D() != 10*time.Millisecond {
		t.Errorf("subject deadline = %v, want 10ms", b.Deadline.D())
	}

	for name, bad := range map[string]string{
		"no subjects":   `{"subjects": []}`,
		"no program":    `{"subjects": [{"input": [1], "expected": [2]}]}`,
		"no expected":   `{"subjects": [{"source": "func main() {}"}]}`,
		"unknown field": `{"subjects": [{"source": "x", "expected": [1], "wat": 3}]}`,
		"dup names":     `{"subjects": [{"name":"x","source":"s","expected":[1]},{"name":"x","source":"s","expected":[1]}]}`,
	} {
		p := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(p, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(p); err == nil {
			t.Errorf("%s: Load accepted an invalid manifest", name)
		}
	}
}

// TestCorpusContextCancel cancels the whole corpus up front: every
// subject reports canceled and Run still returns a complete result.
func TestCorpusContextCancel(t *testing.T) {
	m := benchManifest(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, m, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Subjects {
		if res.Subjects[i].Class != "canceled" {
			t.Fatalf("%s: class %q, want canceled", res.Subjects[i].Name, res.Subjects[i].Class)
		}
	}
	if res.Failed != len(m.Subjects) {
		t.Errorf("Failed = %d, want %d", res.Failed, len(m.Subjects))
	}
}
