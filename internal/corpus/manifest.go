package corpus

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"eol/internal/backend"
	"eol/internal/core"
)

// Duration is a time.Duration that unmarshals from either a JSON string
// in Go duration syntax ("250ms", "2s") or a bare integer nanosecond
// count — the format manifest files use for deadlines.
type Duration time.Duration

// D returns the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// MarshalJSON renders the duration in Go syntax.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Subject is one localization problem of a corpus: a faulty program, the
// failing input, and the expected output (given directly or derived by
// running a correct version, which then doubles as the ground-truth
// benign-state oracle).
type Subject struct {
	// Name labels the subject in results and the journal; Load defaults
	// it to the source file name or "subject-<n>".
	Name string `json:"name,omitempty"`

	// Source is the faulty MiniC program text; File is the manifest-file
	// alternative (path relative to the manifest), loaded into Source.
	Source string `json:"source,omitempty"`
	File   string `json:"file,omitempty"`

	// CorrectSource / CorrectFile optionally supply the corrected
	// program: its run on Input provides Expected (when Expected is
	// empty) and the state oracle that mechanizes the paper's
	// interactive pruning protocol.
	CorrectSource string `json:"correct_source,omitempty"`
	CorrectFile   string `json:"correct_file,omitempty"`

	// Input is the failing input vector.
	Input []int64 `json:"input,omitempty"`
	// Expected is the correct output sequence; may be omitted when a
	// correct version is given.
	Expected []int64 `json:"expected,omitempty"`

	// RootFrag, if non-empty, is a source fragment identifying the
	// root-cause statement (as in eoloc -root): the search stops when it
	// enters the candidate set, and a completed run that does not locate
	// it reports core.ErrNotLocated.
	RootFrag string `json:"root,omitempty"`

	// Deadline bounds this subject's wall clock (0 = Options.Deadline).
	Deadline Duration `json:"deadline,omitempty"`
	// MaxIterations bounds the expansion loop (0 = default).
	MaxIterations int `json:"max_iterations,omitempty"`
	// PathMode selects the safe explicit-path VerifyDep variant.
	PathMode bool `json:"path_mode,omitempty"`
	// CrossFunctionPD extends potential dependences across function
	// boundaries for globals — the mode where the static reach filter
	// has pruning power (see docs/STATICDEP.md).
	CrossFunctionPD bool `json:"cross_function_pd,omitempty"`
	// Backend names the execution backend for this subject ("vm" or
	// "tree"; "" = Defaults.Backend, then Options.Backend, then the
	// library default). Backends are byte-identical, so results and the
	// journal do not depend on — and never record — the choice.
	Backend string `json:"backend,omitempty"`
	// Features selects optional engine features by wire name
	// (static_skip, static_reach, incremental_reprune, checkpoints,
	// speculation) with tri-state values ("on", "off", "default").
	// Per-key merge order: subject over Defaults.Features over
	// Options.Features. Unknown names or values fail Validate. Every
	// feature is results-neutral, so results and the journal do not
	// depend on the choice.
	Features map[string]string `json:"features,omitempty"`
}

// Defaults are manifest-wide subject defaults, folded into each subject
// by Load where the subject leaves the field zero.
type Defaults struct {
	Deadline        Duration          `json:"deadline,omitempty"`
	MaxIterations   int               `json:"max_iterations,omitempty"`
	PathMode        bool              `json:"path_mode,omitempty"`
	CrossFunctionPD bool              `json:"cross_function_pd,omitempty"`
	Backend         string            `json:"backend,omitempty"`
	Features        map[string]string `json:"features,omitempty"`
}

// Manifest is the on-disk corpus description: defaults plus subjects.
// See docs/CORPUS.md for the format reference.
type Manifest struct {
	Defaults Defaults  `json:"defaults,omitempty"`
	Subjects []Subject `json:"subjects"`
}

// Load reads and validates a manifest file. Relative file/correct_file
// paths are resolved against the manifest's directory and loaded, and
// Defaults are folded into the subjects, so the returned manifest is
// self-contained.
func Load(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	dir := filepath.Dir(path)
	for i := range m.Subjects {
		s := &m.Subjects[i]
		if s.File != "" {
			if s.Source != "" {
				return nil, fmt.Errorf("%s: subject %d: both source and file set", path, i)
			}
			src, err := os.ReadFile(resolve(dir, s.File))
			if err != nil {
				return nil, fmt.Errorf("%s: subject %d: %w", path, i, err)
			}
			s.Source = string(src)
		}
		if s.CorrectFile != "" {
			if s.CorrectSource != "" {
				return nil, fmt.Errorf("%s: subject %d: both correct_source and correct_file set", path, i)
			}
			src, err := os.ReadFile(resolve(dir, s.CorrectFile))
			if err != nil {
				return nil, fmt.Errorf("%s: subject %d: %w", path, i, err)
			}
			s.CorrectSource = string(src)
		}
	}
	m.Fold()
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}

// Fold assigns default subject names and folds Defaults into each
// subject where the subject leaves the field zero — the normalization
// Load applies to file manifests, exported for manifests that arrive
// already in memory (the server's wire requests). Idempotent.
func (m *Manifest) Fold() {
	for i := range m.Subjects {
		s := &m.Subjects[i]
		if s.Name == "" {
			if s.File != "" {
				s.Name = filepath.Base(s.File)
			} else {
				s.Name = "subject-" + strconv.Itoa(i)
			}
		}
		if s.Deadline == 0 {
			s.Deadline = m.Defaults.Deadline
		}
		if s.MaxIterations == 0 {
			s.MaxIterations = m.Defaults.MaxIterations
		}
		if m.Defaults.PathMode {
			s.PathMode = true
		}
		if m.Defaults.CrossFunctionPD {
			s.CrossFunctionPD = true
		}
		if s.Backend == "" {
			s.Backend = m.Defaults.Backend
		}
		// Per-key merge: a key the subject leaves unset inherits the
		// manifest default; subject keys (including explicit "default")
		// win.
		for name, mode := range m.Defaults.Features {
			if _, ok := s.Features[name]; ok {
				continue
			}
			if s.Features == nil {
				s.Features = map[string]string{}
			}
			s.Features[name] = mode
		}
	}
}

// Validate checks the manifest is runnable: at least one subject, each
// with program text and a way to obtain the expected output.
func (m *Manifest) Validate() error {
	if len(m.Subjects) == 0 {
		return fmt.Errorf("manifest has no subjects")
	}
	seen := map[string]bool{}
	for i := range m.Subjects {
		s := &m.Subjects[i]
		if s.Source == "" {
			return fmt.Errorf("subject %d (%s): no program (source or file)", i, s.Name)
		}
		if len(s.Expected) == 0 && s.CorrectSource == "" {
			return fmt.Errorf("subject %d (%s): no expected output (expected, correct_source or correct_file)", i, s.Name)
		}
		if s.Name != "" && seen[s.Name] {
			return fmt.Errorf("subject %d: duplicate name %q", i, s.Name)
		}
		seen[s.Name] = true
		if _, err := backend.Lookup(s.Backend); err != nil {
			return fmt.Errorf("subject %d (%s): %w", i, s.Name, err)
		}
		if _, err := core.ParseFeatures(s.Features); err != nil {
			return fmt.Errorf("subject %d (%s): %w", i, s.Name, err)
		}
	}
	return nil
}

func resolve(dir, p string) string {
	if filepath.IsAbs(p) {
		return p
	}
	return filepath.Join(dir, p)
}
