package corpus

import (
	"context"
	"testing"

	"eol/internal/bench"
	"eol/internal/obs"
)

// repeatManifest builds a corpus of n sessions of the same benchmark
// case — the "many localizations of one program family" workload that
// cross-session cache sharing targets.
func repeatManifest(b *testing.B, n int) *Manifest {
	b.Helper()
	c := bench.Cases()[0]
	faulty, err := c.FaultySrc()
	if err != nil {
		b.Fatal(err)
	}
	m := &Manifest{}
	for i := 0; i < n; i++ {
		m.Subjects = append(m.Subjects, Subject{
			Name:          c.Name() + "-" + string(rune('a'+i)),
			Source:        faulty,
			CorrectSource: c.CorrectSrc,
			Input:         c.FailingInput,
			RootFrag:      c.RootFrag,
		})
	}
	return m
}

// benchmarkCorpus runs the repeat-corpus and reports the aggregate
// switched-run cache hit rate (hits/(hits+misses) summed over the
// subjects' engine counters) so the shared-vs-private gain is visible
// in the benchmark output.
func benchmarkCorpus(b *testing.B, private bool) {
	m := repeatManifest(b, 6)
	var agg obs.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), m, Options{
			Shards: 2, VerifyWorkers: 1, NoSharedCache: private,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed > 0 {
			b.Fatalf("%d subjects failed", res.Failed)
		}
		agg = obs.Stats{}
		for j := range res.Subjects {
			st := &res.Subjects[j].Report.Stats
			agg.CacheHits += st.CacheHits
			agg.CacheMisses += st.CacheMisses
			agg.SwitchedRuns += st.SwitchedRuns
		}
	}
	b.StopTimer()
	b.ReportMetric(agg.CacheHitRate(), "cache-hit-rate")
	b.ReportMetric(float64(agg.SwitchedRuns), "switched-runs")
}

func BenchmarkCorpusSharedCache(b *testing.B)  { benchmarkCorpus(b, false) }
func BenchmarkCorpusPrivateCache(b *testing.B) { benchmarkCorpus(b, true) }
