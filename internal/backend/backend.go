// Package backend is the registry of MiniC execution backends: the
// single place that knows every interp.Backend implementation by name.
// It exists so the layers that select a backend from configuration —
// the eol facade, core.Spec, the CLI flags, corpus manifests — depend
// on one tiny package instead of importing internal/vm directly, and so
// the default lives in exactly one place.
//
// The bytecode VM is the default: it produces byte-identical results to
// the tree-walker (the contract every differential lane pins down) at a
// fraction of the per-step cost. The tree-walker remains always
// available as the reference oracle under the name "tree".
package backend

import (
	"fmt"
	"sort"

	"eol/internal/interp"
	"eol/internal/vm"
)

// DefaultName is the name of the default execution backend.
const DefaultName = "vm"

var registry = map[string]interp.Backend{
	"tree": interp.Tree,
	"vm":   vm.Backend,
}

// Default returns the default execution backend (the bytecode VM).
func Default() interp.Backend { return vm.Backend }

// Lookup resolves a backend by name. The empty string selects the
// default; unknown names return an error listing the valid ones.
func Lookup(name string) (interp.Backend, error) {
	if name == "" {
		name = DefaultName
	}
	if b, ok := registry[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("unknown execution backend %q (valid: %s)", name, names())
}

// Names lists the registered backend names, sorted.
func Names() []string {
	ns := make([]string, 0, len(registry))
	for n := range registry {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

func names() string {
	s := ""
	for i, n := range Names() {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}
