package vm

import (
	"fmt"
	"strings"

	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/lang/token"
)

// Disassemble renders the compiled bytecode of c as a stable text
// listing: one line per instruction (pc, opcode, operands) with
// source-statement annotations at every opBegin and a header per
// function. The output is deterministic for a given program and is
// golden-tested by the CLI integration tests (-disasm).
func Disassemble(c *interp.Compiled) string {
	p := programOf(c)
	var sb strings.Builder

	// Map entry pcs to function names for headers.
	hdr := make(map[int32]string, len(p.fns))
	for i := range p.fns {
		fn := &p.fns[i]
		hdr[fn.entry] = fmt.Sprintf("func %s (%d params, %d slots)", fn.name, fn.nargs, fn.nslots)
	}
	sb.WriteString("globals:\n")
	for pc := range p.code {
		if h, ok := hdr[int32(pc)]; ok {
			fmt.Fprintf(&sb, "%s:\n", h)
		}
		in := &p.code[pc]
		fmt.Fprintf(&sb, "%5d  %-10s%s\n", pc, opName(in.op), p.operands(in))
	}
	return sb.String()
}

// operands renders an instruction's operand column, symbolically where
// the operand indexes a side table.
func (p *Program) operands(in *instr) string {
	switch in.op {
	case opBegin:
		m := &p.stmts[in.a]
		return fmt.Sprintf("S%-4d ; %s", m.id, stmtLabel(m.stmt))
	case opConst:
		return fmt.Sprintf("%d", p.consts[in.a])
	case opLoadS, opLoadA, opDeclS, opDeclA, opStoreS, opStoreA:
		return p.syms[in.a].Name
	case opStoreSOp, opStoreAOp:
		return fmt.Sprintf("%s %v=", p.syms[in.a].Name, token.Kind(in.b))
	case opJump, opJnz, opJz, opPred:
		return fmt.Sprintf("-> %d", in.a)
	case opCall, opCallMain:
		return p.fns[in.a].name
	case opPrintS:
		return fmt.Sprintf("%q", p.strs[in.a])
	case opPrintV:
		return fmt.Sprintf("arg %d", in.a)
	case opQuo, opRem, opShl, opShr:
		if in.b != 0 {
			return fmt.Sprintf("(S%d)", in.b)
		}
	}
	return ""
}

// stmtLabel is the one-line source annotation for a statement: its
// header for control statements (whose bodies are separate
// instructions), its full text otherwise.
func stmtLabel(s ast.Numbered) string {
	switch n := s.(type) {
	case *ast.IfStmt:
		return fmt.Sprintf("if (%s)", ast.ExprString(n.Cond))
	case *ast.WhileStmt:
		return fmt.Sprintf("while (%s)", ast.ExprString(n.Cond))
	case *ast.ForStmt:
		if n.Cond != nil {
			return fmt.Sprintf("for (; %s; )", ast.ExprString(n.Cond))
		}
		return "for (; ; )"
	default:
		return ast.StmtString(s)
	}
}

func opName(op opcode) string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op%d", op)
}

var opNames = [...]string{
	opBegin: "begin", opCheck: "check", opReset: "reset", opHalt: "halt",
	opConst: "const", opPop: "pop",
	opLoadS: "load", opLoadA: "loadidx", opDeclS: "decl", opDeclA: "declarr",
	opStoreS: "store", opStoreSOp: "storeop", opStoreA: "storeidx", opStoreAOp: "storeidxop",
	opJump: "jump", opJnz: "jnz", opJz: "jz", opBool: "bool",
	opPred: "pred", opPredTrue: "predtrue",
	opCall: "call", opCallMain: "callmain",
	opRetV: "retval", opRet: "ret", opEndFn: "endfn",
	opNeg: "neg", opNot: "not", opBnot: "bnot",
	opAdd: "add", opSub: "sub", opMul: "mul", opQuo: "quo", opRem: "rem",
	opAnd: "and", opOr: "or", opXor: "xor", opShl: "shl", opShr: "shr",
	opEql: "eql", opNeq: "neq", opLss: "lss", opLeq: "leq", opGtr: "gtr", opGeq: "geq",
	opPrintS: "prints", opPrintV: "printv", opPrintNL: "printnl",
	opRead: "read", opPeek: "peek", opEof: "eof",
	opAbs: "abs", opMin: "min", opMax: "max", opAssert: "assert",
}
