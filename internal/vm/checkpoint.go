package vm

import (
	"eol/internal/interp"
	"eol/internal/trace"
)

// Checkpointed re-execution on VM state. Where the tree-walker must
// record an explicit resume path and rebuild its Go call stack by
// recursive descent (interp/resume.go), the VM's execution state is
// already explicit: a snapshot is the pc, the frozen frame stack, the
// call records and the (empty-at-capture) operand stack, and a fork is
// "restore and jump". The capture policy — opCheck poll points before
// every predicate's opBegin, fired at exactly the statements where the
// tree-walker polls maybeCheckpoint, with the same stride-doubling /
// thin-on-overflow schedule — is deliberately identical, so both
// backends capture at the same step counts and Nearest picks the same
// fork points (CheckpointStats.Bytes differs: the representations do).
//
// Unlike the tree-walker, eligibility needs no resume-path tracking:
// any opCheck in main's frame is a valid snapshot point by
// construction. The main-frame restriction is kept so the two backends
// capture identically; see docs/VM.md.

// checkpoint is one VM snapshot, immutable once captured and safe for
// concurrent forks (frames are frozen copy-on-write).
type checkpoint struct {
	steps   int
	inPos   int
	nextAct int
	occ     []int
	frames  []*frame
	calls   []callRec
	stack   []int64 // operand stack (always empty at statement level)
	pc      int32   // resume point: just past the opCheck that fired
	rendered string
	prefix  *trace.Prefix
}

// approxBytes mirrors the tree store's estimate: private copies only.
func (ck *checkpoint) approxBytes() int64 {
	n := int64(len(ck.occ))*8 + int64(len(ck.calls))*24 + int64(len(ck.stack))*8 + int64(len(ck.rendered)) + 256
	for _, fr := range ck.frames {
		n += int64(len(fr.scalars))*16 + int64(len(fr.arrays))*9 + int64(len(fr.ctrl))*16 + 64
	}
	return n
}

// Store collects VM checkpoints during one traced run and answers
// nearest-checkpoint queries for forks. The policy is a verbatim
// mirror of interp.CheckpointStore: capture at every eligible opCheck
// once the step counter passes the next mark; past max, drop every
// second checkpoint and double the stride. A store is bound to a
// single run; afterwards Nearest/Stats/Len are read-only and safe for
// concurrent use.
type Store struct {
	max    int
	stride int
	next   int
	tr     *trace.Trace
	cks    []*checkpoint

	captured, thinned int
	bytes             int64
}

// NewStore returns a store bounded to max checkpoints (<= 0 means
// interp.DefaultCheckpoints).
func NewStore(max int) *Store {
	if max <= 0 {
		max = interp.DefaultCheckpoints
	}
	return &Store{max: max, stride: 1}
}

// bind attaches the store to the run that fills it.
func (st *Store) bind(tr *trace.Trace) {
	if st.tr != nil && st.tr != tr {
		panic("vm: Store reused across runs")
	}
	st.tr = tr
}

// Len returns the number of retained checkpoints.
func (st *Store) Len() int { return len(st.cks) }

// Stats snapshots the store's counters.
func (st *Store) Stats() interp.CheckpointStats {
	return interp.CheckpointStats{
		Count: len(st.cks), Bytes: st.bytes,
		Captured: st.captured, Thinned: st.thinned,
	}
}

// Nearest returns the latest checkpoint whose trace prefix ends at or
// before trace entry traceIdx, or nil if none precedes it.
func (st *Store) Nearest(traceIdx int) *checkpoint {
	lo, hi := 0, len(st.cks)
	for lo < hi {
		mid := (lo + hi) / 2
		if st.cks[mid].prefix.Len() <= traceIdx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	return st.cks[lo-1]
}

// capture freezes the live frames and records the snapshot. pc points
// just past the opCheck that fired.
func (st *Store) capture(m *machine, pc int32) {
	for _, fr := range m.frames {
		fr.freeze()
	}
	ck := &checkpoint{
		steps:    m.res.Steps,
		inPos:    m.inPos,
		nextAct:  m.nextAct,
		occ:      append([]int(nil), m.occ...),
		frames:   append([]*frame(nil), m.frames...),
		calls:    append([]callRec(nil), m.calls...),
		stack:    append([]int64(nil), m.stack[:m.sp]...),
		pc:       pc,
		rendered: m.out.String(),
		prefix:   st.tr.PrefixAt(m.tr.Len()),
	}
	st.cks = append(st.cks, ck)
	st.captured++
	st.bytes += ck.approxBytes()
	if len(st.cks) > st.max {
		st.thin()
	}
	st.next = m.res.Steps + st.stride
}

// thin drops every second checkpoint and doubles the stride.
func (st *Store) thin() {
	kept := st.cks[:0]
	var bytes int64
	for i, ck := range st.cks {
		if i%2 == 0 {
			kept = append(kept, ck)
			bytes += ck.approxBytes()
		} else {
			st.thinned++
		}
	}
	for i := len(kept); i < len(st.cks); i++ {
		st.cks[i] = nil
	}
	st.cks = kept
	st.bytes = bytes
	st.stride *= 2
}
