package vm

import (
	"eol/internal/cfg"
	"eol/internal/lang/sem"
	"eol/internal/trace"
)

// The VM uses the same activation-frame representation as the
// tree-walker: dense slot-indexed cell slices with copy-on-write
// sharing for checkpoints. The types are duplicated here (they are
// unexported in internal/interp) but the freeze/thaw discipline is
// identical, so a VM checkpoint shares frames with the continuing run
// exactly the way a tree checkpoint does.

type cell struct {
	val int64
	def int // trace index of last writer, trace.NoDef if none
}

type ctrlEntry struct {
	entryIdx int
	ipdom    *cfg.Node
}

type frame struct {
	id         int // unique activation ID (0 = globals, 1 = main, then dense)
	scalars    []cell
	arrays     [][]cell
	callParent int // trace index of the call-site entry, -1 for main/globals
	ctrl       []ctrlEntry

	// frozen marks the frame as shared with >= 1 checkpoint; any mutation
	// must go through machine.thaw first.
	frozen bool
	// arrShared[i] marks arrays[i] as shared with a frozen snapshot.
	arrShared []bool
}

func newFrame(id, nslots, callParent int) *frame {
	f := &frame{
		id:         id,
		scalars:    make([]cell, nslots),
		arrays:     make([][]cell, nslots),
		callParent: callParent,
	}
	for i := range f.scalars {
		f.scalars[i].def = trace.NoDef
	}
	return f
}

// freeze marks the frame immutable for sharing with a checkpoint.
func (f *frame) freeze() {
	f.frozen = true
	if f.arrShared == nil {
		f.arrShared = make([]bool, len(f.arrays))
	}
	for i := range f.arrShared {
		f.arrShared[i] = true
	}
}

// thaw makes frame i writable: a frozen frame (shared with a
// checkpoint) is replaced by a private clone that still shares the
// array element storage (unshared per slot on first element write).
func (m *machine) thaw(i int) *frame {
	fr := m.frames[i]
	if !fr.frozen {
		return fr
	}
	nf := &frame{
		id:         fr.id,
		callParent: fr.callParent,
		scalars:    append([]cell(nil), fr.scalars...),
		arrays:     append([][]cell(nil), fr.arrays...),
		ctrl:       append([]ctrlEntry(nil), fr.ctrl...),
		arrShared:  append([]bool(nil), fr.arrShared...),
	}
	m.frames[i] = nf
	return nf
}

func (m *machine) thawTop() *frame { return m.thaw(len(m.frames) - 1) }

// targetFrame returns the frame where sym's cell lives.
func (m *machine) targetFrame(sym *sem.Symbol) *frame {
	if sym.Kind == sem.Global {
		return m.frames[0]
	}
	return m.frames[len(m.frames)-1]
}

func (m *machine) writableTargetFrame(sym *sem.Symbol) *frame {
	if sym.Kind == sem.Global {
		return m.thaw(0)
	}
	return m.thawTop()
}

func (m *machine) scalarCell(sym *sem.Symbol) *cell {
	return &m.targetFrame(sym).scalars[sym.Slot]
}

func (m *machine) writableScalarCell(sym *sem.Symbol) *cell {
	return &m.writableTargetFrame(sym).scalars[sym.Slot]
}

// arrayCells returns sym's element storage, zero-initializing it if the
// declaration has not executed yet (same lazy-init as the tree-walker:
// installing the array mutates the frame, so a frozen frame is thawed).
func (m *machine) arrayCells(sym *sem.Symbol) []cell {
	fr := m.targetFrame(sym)
	arr := fr.arrays[sym.Slot]
	if arr == nil {
		arr = make([]cell, sym.Size)
		for i := range arr {
			arr[i].def = trace.NoDef
		}
		fr = m.writableTargetFrame(sym)
		fr.arrays[sym.Slot] = arr
		if fr.arrShared != nil {
			fr.arrShared[sym.Slot] = false
		}
	}
	return arr
}

// writableArrayCells returns sym's array storage ready for element
// writes: the frame is thawed and a snapshot-shared array is cloned.
func (m *machine) writableArrayCells(sym *sem.Symbol) []cell {
	arr := m.arrayCells(sym)
	fr := m.writableTargetFrame(sym)
	if fr.arrShared != nil && fr.arrShared[sym.Slot] {
		arr = append([]cell(nil), arr...)
		fr.arrays[sym.Slot] = arr
		fr.arrShared[sym.Slot] = false
	}
	return arr
}
