package vm

import (
	"fmt"

	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/lang/sem"
	"eol/internal/lang/token"
)

// Compile lowers a checked program to bytecode. Lowering is
// deterministic and side-effect free; programOf caches the result on
// the *interp.Compiled so it runs once per program.
//
// Code layout: the global declarations come first, followed by
// [opReset, opCallMain, opHalt], followed by each function body (in
// source order, duplicate declarations skipped) terminated by opEndFn.
// Calls name functions by index into Program.fns; the entry pc is read
// from the table at call time, so no fixups are needed for forward
// references.
func Compile(c *interp.Compiled) *Program {
	cp := &compiler{
		c:        c,
		p:        &Program{c: c},
		constIdx: make(map[int64]int32),
		strIdx:   make(map[string]int32),
		symIdx:   make(map[*sem.Symbol]int32),
		stmtIdx:  make(map[int]int32),
		fnIdx:    make(map[string]int32),
	}
	p := cp.p

	// Function index pre-pass, so call sites can reference any function
	// before its body is compiled.
	for _, f := range c.Prog.Funcs {
		fi := c.Info.Funcs[f.Name.Name]
		if fi.Decl != f {
			continue // duplicate declaration: only the canonical body runs
		}
		cp.fnIdx[f.Name.Name] = int32(len(p.fns))
		p.fns = append(p.fns, fnMeta{
			fi:     fi,
			name:   f.Name.Name,
			nslots: int32(fi.NumSlots()),
			nargs:  int32(len(fi.Params)),
			params: fi.Params,
		})
	}

	for _, d := range c.Prog.Globals {
		cp.stmt(d)
	}
	// Reset the region parent so main's top-level statements become
	// roots, exactly like run()'s curEntry reset between globals and the
	// main call. The main call site reports position 1:1 (ErrFrames at
	// depth bound 1), and records no return-value use: run() discards
	// main's return value without an enclosing expression.
	cp.emit(instr{op: opReset})
	cp.emit(instr{op: opCallMain, a: cp.fnIdx["main"], pos: token.Pos{Line: 1, Col: 1}})
	cp.emit(instr{op: opHalt})

	for _, f := range c.Prog.Funcs {
		fi := c.Info.Funcs[f.Name.Name]
		if fi.Decl != f {
			continue
		}
		p.fns[cp.fnIdx[f.Name.Name]].entry = cp.pc()
		cp.block(f.Body)
		cp.emit(instr{op: opEndFn})
	}
	return p
}

type compiler struct {
	c        *interp.Compiled
	p        *Program
	constIdx map[int64]int32
	strIdx   map[string]int32
	symIdx   map[*sem.Symbol]int32
	stmtIdx  map[int]int32 // statement ID -> stmtMeta index
	fnIdx    map[string]int32
	loops    []loopFrame
}

// loopFrame collects the forward jumps of break/continue statements in
// the innermost enclosing loop. While-loops know their continue target
// up front (the loop top); for-loops patch continues to the Post
// statement, which is emitted after the body.
type loopFrame struct {
	breakPs []int32
	contPs  []int32
	contPC  int32 // continue target when already known, else -1
}

func (cp *compiler) emit(in instr) int32 {
	cp.p.code = append(cp.p.code, in)
	return int32(len(cp.p.code) - 1)
}

func (cp *compiler) pc() int32 { return int32(len(cp.p.code)) }

func (cp *compiler) patch(at, target int32) { cp.p.code[at].a = target }

func (cp *compiler) constant(v int64) int32 {
	if i, ok := cp.constIdx[v]; ok {
		return i
	}
	i := int32(len(cp.p.consts))
	cp.p.consts = append(cp.p.consts, v)
	cp.constIdx[v] = i
	return i
}

func (cp *compiler) str(s string) int32 {
	if i, ok := cp.strIdx[s]; ok {
		return i
	}
	i := int32(len(cp.p.strs))
	cp.p.strs = append(cp.p.strs, s)
	cp.strIdx[s] = i
	return i
}

func (cp *compiler) sym(s *sem.Symbol) int32 {
	if i, ok := cp.symIdx[s]; ok {
		return i
	}
	i := int32(len(cp.p.syms))
	cp.p.syms = append(cp.p.syms, s)
	cp.symIdx[s] = i
	return i
}

// meta interns the side-table entry for one numbered statement,
// resolving at compile time what the tree-walker looks up per executed
// instance: the CFG node (control-stack pop test), its immediate
// post-dominator (control-stack push), and the static use-count bound.
func (cp *compiler) meta(s ast.Numbered) int32 {
	id := s.ID()
	if i, ok := cp.stmtIdx[id]; ok {
		return i
	}
	node := cp.c.CFG.NodeOf(id)
	m := stmtMeta{
		id:    int32(id),
		nuses: int32(countStmtUses(s)),
		pos:   s.Pos(),
		node:  node,
		stmt:  s,
	}
	if node != nil {
		m.ipdom = node.IPDom
	}
	i := int32(len(cp.p.stmts))
	cp.p.stmts = append(cp.p.stmts, m)
	cp.stmtIdx[id] = i
	return i
}

func (cp *compiler) begin(s ast.Numbered) { cp.emit(instr{op: opBegin, a: cp.meta(s)}) }

func (cp *compiler) block(b *ast.BlockStmt) {
	for _, s := range b.Stmts {
		cp.stmt(s)
	}
}

func (cp *compiler) stmt(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.BlockStmt:
		cp.block(n)

	case *ast.VarDeclStmt:
		cp.begin(n)
		sym := cp.c.Info.Uses[n.Name]
		if sym.IsArray {
			cp.emit(instr{op: opDeclA, a: cp.sym(sym)})
			return
		}
		if n.Init != nil {
			cp.expr(n.Init)
		} else {
			cp.emit(instr{op: opConst, a: cp.constant(0)})
		}
		cp.emit(instr{op: opDeclS, a: cp.sym(sym)})

	case *ast.AssignStmt:
		cp.begin(n)
		cp.expr(n.RHS)
		op := n.Op.AssignOp()
		switch lhs := n.LHS.(type) {
		case *ast.Ident:
			sym := cp.c.Info.Uses[lhs]
			if op == token.ILLEGAL {
				cp.emit(instr{op: opStoreS, a: cp.sym(sym)})
			} else {
				cp.emit(instr{op: opStoreSOp, a: cp.sym(sym), b: int32(op), pos: n.Pos()})
			}
		case *ast.IndexExpr:
			sym := cp.c.Info.Uses[lhs.X]
			cp.expr(lhs.Index)
			// n.Pos() == lhs.Pos(), so one position serves both the bounds
			// check and a compound operator's div/shift errors.
			if op == token.ILLEGAL {
				cp.emit(instr{op: opStoreA, a: cp.sym(sym), pos: lhs.Pos()})
			} else {
				cp.emit(instr{op: opStoreAOp, a: cp.sym(sym), b: int32(op), pos: lhs.Pos()})
			}
		default:
			panic(fmt.Sprintf("vm: unexpected assignment target %T", n.LHS))
		}

	case *ast.IfStmt:
		cp.emit(instr{op: opCheck})
		cp.begin(n)
		cp.expr(n.Cond)
		pred := cp.emit(instr{op: opPred, a: -1})
		cp.block(n.Then)
		if n.Else != nil {
			jend := cp.emit(instr{op: opJump, a: -1})
			cp.patch(pred, cp.pc())
			cp.stmt(n.Else) // else-if re-dispatches: gets its own opCheck
			cp.patch(jend, cp.pc())
		} else {
			cp.patch(pred, cp.pc())
		}

	case *ast.WhileStmt:
		top := cp.pc()
		cp.emit(instr{op: opCheck})
		cp.begin(n)
		cp.expr(n.Cond)
		pred := cp.emit(instr{op: opPred, a: -1})
		cp.loops = append(cp.loops, loopFrame{contPC: top})
		cp.block(n.Body)
		lf := cp.loops[len(cp.loops)-1]
		cp.loops = cp.loops[:len(cp.loops)-1]
		cp.emit(instr{op: opJump, a: top})
		exit := cp.pc()
		cp.patch(pred, exit)
		for _, at := range lf.breakPs {
			cp.patch(at, exit)
		}

	case *ast.ForStmt:
		if n.Init != nil {
			cp.stmt(n.Init)
		}
		top := cp.pc()
		cp.emit(instr{op: opCheck})
		cp.begin(n)
		pred := int32(-1)
		if n.Cond != nil {
			cp.expr(n.Cond)
			pred = cp.emit(instr{op: opPred, a: -1})
		} else {
			cp.emit(instr{op: opPredTrue})
		}
		cp.loops = append(cp.loops, loopFrame{contPC: -1})
		cp.block(n.Body)
		lf := cp.loops[len(cp.loops)-1]
		cp.loops = cp.loops[:len(cp.loops)-1]
		post := cp.pc()
		if n.Post != nil {
			cp.stmt(n.Post)
		}
		cp.emit(instr{op: opJump, a: top})
		exit := cp.pc()
		if pred >= 0 {
			cp.patch(pred, exit)
		}
		for _, at := range lf.contPs {
			cp.patch(at, post)
		}
		for _, at := range lf.breakPs {
			cp.patch(at, exit)
		}

	case *ast.BreakStmt:
		cp.begin(n)
		at := cp.emit(instr{op: opJump, a: -1})
		lf := &cp.loops[len(cp.loops)-1]
		lf.breakPs = append(lf.breakPs, at)

	case *ast.ContinueStmt:
		cp.begin(n)
		lf := &cp.loops[len(cp.loops)-1]
		if lf.contPC >= 0 {
			cp.emit(instr{op: opJump, a: lf.contPC})
		} else {
			at := cp.emit(instr{op: opJump, a: -1})
			lf.contPs = append(lf.contPs, at)
		}

	case *ast.ReturnStmt:
		cp.begin(n)
		if n.Value != nil {
			cp.expr(n.Value)
			cp.emit(instr{op: opRetV})
		} else {
			cp.emit(instr{op: opRet})
		}

	case *ast.ExprStmt:
		cp.begin(n)
		cp.expr(n.X)
		cp.emit(instr{op: opPop})

	case *ast.PrintStmt:
		cp.begin(n)
		arg := int32(0)
		for _, a := range n.Args {
			if lit, ok := a.(*ast.StringLit); ok {
				cp.emit(instr{op: opPrintS, a: cp.str(lit.Value)})
				continue
			}
			cp.expr(a)
			cp.emit(instr{op: opPrintV, a: arg})
			arg++
		}
		cp.emit(instr{op: opPrintNL})

	default:
		panic(fmt.Sprintf("vm: unexpected statement %T", s))
	}
}

func (cp *compiler) expr(e ast.Expr) {
	switch x := e.(type) {
	case *ast.IntLit:
		cp.emit(instr{op: opConst, a: cp.constant(x.Value)})
	case *ast.StringLit:
		cp.emit(instr{op: opConst, a: cp.constant(0)}) // only legal inside print
	case *ast.Ident:
		cp.emit(instr{op: opLoadS, a: cp.sym(cp.c.Info.Uses[x])})
	case *ast.IndexExpr:
		cp.expr(x.Index)
		cp.emit(instr{op: opLoadA, a: cp.sym(cp.c.Info.Uses[x.X]), pos: x.Pos()})
	case *ast.UnaryExpr:
		cp.expr(x.X)
		switch x.Op {
		case token.SUB:
			cp.emit(instr{op: opNeg})
		case token.NOT:
			cp.emit(instr{op: opNot})
		case token.TILD:
			cp.emit(instr{op: opBnot})
		default:
			panic(fmt.Sprintf("vm: unexpected unary op %v", x.Op))
		}
	case *ast.BinaryExpr:
		// Short-circuit lowering: the unevaluated side is jumped over, so
		// it contributes no dynamic uses, and the result is normalized to
		// 0/1 on both paths exactly like the tree-walker's b2i.
		switch x.Op {
		case token.LAND:
			cp.expr(x.X)
			jy := cp.emit(instr{op: opJnz, a: -1})
			cp.emit(instr{op: opConst, a: cp.constant(0)})
			jend := cp.emit(instr{op: opJump, a: -1})
			cp.patch(jy, cp.pc())
			cp.expr(x.Y)
			cp.emit(instr{op: opBool})
			cp.patch(jend, cp.pc())
			return
		case token.LOR:
			cp.expr(x.X)
			jy := cp.emit(instr{op: opJz, a: -1})
			cp.emit(instr{op: opConst, a: cp.constant(1)})
			jend := cp.emit(instr{op: opJump, a: -1})
			cp.patch(jy, cp.pc())
			cp.expr(x.Y)
			cp.emit(instr{op: opBool})
			cp.patch(jend, cp.pc())
			return
		}
		cp.expr(x.X)
		cp.expr(x.Y)
		// b (the statement ID reported by div/shift errors) is 0 in
		// expression context; compound assignments use opStore*Op instead.
		cp.emit(instr{op: binOpcode(x.Op), pos: x.Pos()})
	case *ast.CallExpr:
		cp.call(x)
	default:
		panic(fmt.Sprintf("vm: unexpected expression %T", e))
	}
}

func (cp *compiler) call(x *ast.CallExpr) {
	name := x.Fun.Name
	if _, ok := sem.Builtins[name]; ok {
		switch name {
		case "read":
			cp.emit(instr{op: opRead})
		case "peek":
			cp.emit(instr{op: opPeek})
		case "eof":
			cp.emit(instr{op: opEof})
		case "len":
			// Static: the array's declared size, no runtime use recorded.
			sym := cp.c.Info.Uses[x.Args[0].(*ast.Ident)]
			cp.emit(instr{op: opConst, a: cp.constant(sym.Size)})
		case "abs":
			cp.expr(x.Args[0])
			cp.emit(instr{op: opAbs})
		case "min":
			cp.expr(x.Args[0])
			cp.expr(x.Args[1])
			cp.emit(instr{op: opMin})
		case "max":
			cp.expr(x.Args[0])
			cp.expr(x.Args[1])
			cp.emit(instr{op: opMax})
		case "assert":
			cp.expr(x.Args[0])
			cp.emit(instr{op: opAssert, pos: x.Pos()})
		default:
			panic(fmt.Sprintf("vm: unexpected builtin %s", name))
		}
		return
	}
	for _, a := range x.Args {
		cp.expr(a)
	}
	cp.emit(instr{op: opCall, a: cp.fnIdx[name], pos: x.Pos()})
}

// binOpcode maps a strict (non-short-circuit) binary operator token to
// its opcode.
func binOpcode(op token.Kind) opcode {
	switch op {
	case token.ADD:
		return opAdd
	case token.SUB:
		return opSub
	case token.MUL:
		return opMul
	case token.QUO:
		return opQuo
	case token.REM:
		return opRem
	case token.AND:
		return opAnd
	case token.OR:
		return opOr
	case token.XOR:
		return opXor
	case token.SHL:
		return opShl
	case token.SHR:
		return opShr
	case token.EQL:
		return opEql
	case token.NEQ:
		return opNeq
	case token.LSS:
		return opLss
	case token.LEQ:
		return opLeq
	case token.GTR:
		return opGtr
	case token.GEQ:
		return opGeq
	}
	panic(fmt.Sprintf("vm: unexpected binary op %v", op))
}

// countStmtUses bounds the number of use records one instance of s can
// append to its trace entry, to presize Entry.Uses. Over-counting is
// harmless (short-circuit sides count even though at most one runs);
// under-counting never happens because every recordUse site below maps
// to a counted construct.
func countStmtUses(s ast.Numbered) int {
	switch n := s.(type) {
	case *ast.VarDeclStmt:
		return countExprUses(n.Init)
	case *ast.AssignStmt:
		c := countExprUses(n.RHS)
		if lhs, ok := n.LHS.(*ast.IndexExpr); ok {
			c += countExprUses(lhs.Index)
		}
		if n.Op.AssignOp() != token.ILLEGAL {
			c++ // compound assignment reads the old value
		}
		return c
	case *ast.IfStmt:
		return countExprUses(n.Cond)
	case *ast.WhileStmt:
		return countExprUses(n.Cond)
	case *ast.ForStmt:
		return countExprUses(n.Cond)
	case *ast.ReturnStmt:
		return countExprUses(n.Value)
	case *ast.ExprStmt:
		return countExprUses(n.X)
	case *ast.PrintStmt:
		c := 0
		for _, a := range n.Args {
			c += countExprUses(a)
		}
		return c
	}
	return 0
}

func countExprUses(e ast.Expr) int {
	switch x := e.(type) {
	case nil, *ast.IntLit, *ast.StringLit:
		return 0
	case *ast.Ident:
		return 1
	case *ast.IndexExpr:
		return countExprUses(x.Index) + 1
	case *ast.UnaryExpr:
		return countExprUses(x.X)
	case *ast.BinaryExpr:
		return countExprUses(x.X) + countExprUses(x.Y)
	case *ast.CallExpr:
		if _, ok := sem.Builtins[x.Fun.Name]; ok {
			if x.Fun.Name == "len" {
				return 0 // compile-time constant, argument never evaluated
			}
			c := 0
			for _, a := range x.Args {
				c += countExprUses(a)
			}
			return c
		}
		c := 1 // the return-value use recorded at the call site
		for _, a := range x.Args {
			c += countExprUses(a)
		}
		return c
	}
	return 0
}
