// Package vm is the bytecode execution backend for MiniC: a compiler
// that lowers a checked program to a flat instruction stream plus a
// dispatch-loop virtual machine that executes it with inline tracing.
//
// The VM implements exactly the same observable semantics as the
// tree-walking reference interpreter (internal/interp), which remains
// the differential oracle: for any program, input and options the two
// backends produce byte-identical traces (entries, step numbering,
// defs/uses/predicates/outputs), rendered text, step counts,
// RuntimeError positions and budget/cancellation semantics. What the VM
// removes is the per-step interpretation overhead — AST type switches,
// the per-identifier symbol map lookups, and the per-statement CFG node
// lookups are all resolved at compile time into instruction operands
// and the side tables below. See docs/VM.md for the instruction set and
// the trace-emission contract.
//
// Checkpointing is also reimplemented on VM state: where the
// tree-walker must record an explicit resume path and rebuild its Go
// call stack by recursive descent (interp/resume.go), a VM snapshot is
// just the pc, the frame stack and the call records — forking is
// "restore and jump". See checkpoint.go.
package vm

import (
	"eol/internal/cfg"
	"eol/internal/interp"
	"eol/internal/lang/ast"
	"eol/internal/lang/sem"
	"eol/internal/lang/token"
)

// opcode enumerates the VM instruction set. The machine is stack-based:
// expression operands live on a per-run operand stack, while variables
// live in slot-indexed activation frames (the same copy-on-write frame
// representation the tree-walker uses, so checkpoint sharing works
// identically).
type opcode uint8

const (
	// Statement framing.
	opBegin opcode = iota // a=stmt meta index: budget/ctx tick, occ, ctrl-pop, trace entry
	opCheck               // checkpoint poll point (precedes a predicate's opBegin)
	opReset               // curEntry = -1 (between globals and main)
	opHalt                // end of program

	// Operand stack.
	opConst // a=const pool index: push
	opPop   // drop top

	// Variable access.
	opLoadS  // a=sym index: push scalar value, record use
	opLoadA  // a=sym index: pop element index, push value, record use (pos=index expr)
	opDeclS  // a=sym index: pop value, perturb, store scalar, record def
	opDeclA  // a=sym index: allocate array, record def
	opStoreS // a=sym index: pop value, perturb, store scalar, record def
	opStoreSOp
	// opStoreSOp a=sym index, b=binary op kind: compound scalar assign
	opStoreA // a=sym index: pop index, pop value, bounds-check, store element
	opStoreAOp
	// opStoreAOp a=sym index, b=binary op kind: compound element assign

	// Control flow.
	opJump     // pc = a
	opJnz      // pop; pc = a when != 0 (short-circuit &&/||)
	opJz       // pop; pc = a when == 0
	opBool     // pop v; push v != 0 ? 1 : 0
	opPred     // pop cond; apply switch plan; record branch; push ctrl; pc = a when not taken
	opPredTrue // condition-less for: record taken=true (no switch consult); push ctrl

	// Calls and returns.
	opCall     // a=fn index: push activation, bind params, jump to body
	opCallMain // like opCall but no return-value use is recorded at the call site
	opRetV     // explicit "return e": pop value, set entry value, unwind
	opRet      // explicit "return;": unwind with value 0
	opEndFn    // fall off the end of a body: unwind with value 0, no return entry

	// Unary and binary operators. The b operand of the fallible ops
	// (div/rem/shift) is the statement ID for error reporting: non-zero
	// only in compound-assignment context, matching the tree-walker.
	opNeg
	opNot
	opBnot
	opAdd
	opSub
	opMul
	opQuo
	opRem
	opAnd
	opOr
	opXor
	opShl
	opShr
	opEql
	opNeq
	opLss
	opLeq
	opGtr
	opGeq

	// Output.
	opPrintS  // a=string pool index: write literal text
	opPrintV  // a=arg number: pop value, write %d, record output event
	opPrintNL // write '\n'

	// Builtins (len compiles to opConst: the size is static).
	opRead
	opPeek
	opEof
	opAbs
	opMin
	opMax
	opAssert // peek top; fail ErrAssert when 0 (value stays pushed)
)

// instr is one VM instruction. pos carries the source position used in
// RuntimeErrors raised by this instruction (byte-identical to the
// positions the tree-walker reports).
type instr struct {
	op   opcode
	a, b int32
	pos  token.Pos
}

// stmtMeta is the per-statement side table: everything opBegin and the
// predicate/store ops need that the tree-walker recomputes per step
// (CFG node lookups, statement ID, position) resolved once at compile
// time.
type stmtMeta struct {
	id    int32
	nuses int32     // static upper bound of use records, to presize Entry.Uses
	pos   token.Pos // s.Pos(), for budget/ctx expiry reporting
	node  *cfg.Node // CFG node; nil for global declarations
	ipdom *cfg.Node // node.IPDom for predicates (control-stack push)
	stmt  ast.Numbered // source statement, for disassembly annotations
}

// fnMeta is the per-function side table.
type fnMeta struct {
	fi     *sem.FuncInfo
	name   string
	entry  int32 // pc of the first instruction of the body
	nslots int32
	nargs  int32
	params []*sem.Symbol
}

// Program is a compiled bytecode program. It is immutable after Compile
// and safe for concurrent runs; it is cached on the *interp.Compiled it
// was lowered from (see programOf), so each program is compiled once.
type Program struct {
	c      *interp.Compiled
	code   []instr
	stmts  []stmtMeta
	consts []int64
	strs   []string
	syms   []*sem.Symbol
	fns    []fnMeta
}

// NumInstrs returns the size of the instruction stream.
func (p *Program) NumInstrs() int { return len(p.code) }
