package vm

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"eol/internal/interp"
	"eol/internal/testsupport"
	"eol/internal/trace"
)

// diffPrograms covers every statement and expression form, both error
// and error-free, so the backend comparison exercises each opcode path.
var diffPrograms = map[string]string{
	"arith": `
func main() {
	var a = 7; var b = 3;
	print(a+b, " ", a-b, " ", a*b, " ", a/b, " ", a%b);
	print(a&b, " ", a|b, " ", a^b, " ", a<<b, " ", a>>1, " ", ~a, " ", -a, " ", !a);
	print(a==b, " ", a!=b, " ", a<b, " ", a<=b, " ", a>b, " ", a>=b);
}`,
	"shortcircuit": `
var g = 0;
func side() { g = g + 1; return g; }
func main() {
	var x = side() && side();
	var y = 0 || side();
	var z = 0 && side();
	print(x, " ", y, " ", z, " ", g);
}`,
	"loops": `
func main() {
	var s = 0;
	var i = 0;
	while (i < 10) {
		i = i + 1;
		if (i == 3) { continue; }
		if (i == 8) { break; }
		s = s + i;
	}
	for (var j = 0; j < 5; j = j + 1) {
		if (j % 2 == 0) { s = s + j; } else { s = s - 1; }
	}
	var k = 0;
	for (;;) {
		k = k + 1;
		if (k > 3) { break; }
	}
	print(s, " ", k);
}`,
	"arrays": `
var a[5];
func main() {
	var i = 0;
	while (i < len(a)) { a[i] = i * i; i = i + 1; }
	a[2] += 10;
	a[3] = a[2] + a[1];
	var b[3];
	b[0] = a[4];
	print(a[0], a[1], a[2], a[3], a[4], " ", b[0], b[1]);
}`,
	"calls": `
var base = read();
func f(x, y) {
	if (x <= 0) { return y; }
	return f(x - 1, y + x);
}
func g() { return base * 2; }
func main() {
	print(f(4, g()));
	print(f(0, 0) + f(1, 1));
}`,
	"globals_with_calls": `
func ten() { return 10; }
var a = ten() + 1;
var b = a * 2;
func main() { print(a, " ", b); }`,
	"builtins": `
func main() {
	var a = read(); var b = read();
	print(abs(a - b), " ", min(a, b), " ", max(a, b));
	while (!eof()) { print(peek(), " ", read()); }
	print(read(), " ", eof());
}`,
	"compound": `
func main() {
	var x = 100;
	x += 5; x -= 2; x *= 3; x /= 4; x %= 50;
	x <<= 2; x >>= 1; x &= 255; x |= 16; x ^= 3;
	print(x);
}`,
	"elseif": `
func main() {
	var v = read();
	if (v < 0) { print(0 - 1); }
	else if (v == 0) { print(0); }
	else if (v < 10) { print(1); }
	else { print(2); }
}`,
	"return_paths": `
func early(x) {
	if (x > 0) { return; }
	print(x);
}
func noret(x) { x = x + 1; }
func main() {
	early(1);
	early(0 - 1);
	print(noret(5));
	var implicit = noret(2);
	print(implicit);
}`,
	"div_zero": `
func main() {
	var d = read();
	print(10 / d);
}`,
	"mod_zero_compound": `
func main() {
	var x = 9;
	x %= read();
	print(x);
}`,
	"bounds_read": `
var a[3];
func main() {
	var i = read();
	print(a[i]);
}`,
	"bounds_write": `
var a[3];
func main() {
	a[read()] = 7;
}`,
	"bounds_compound": `
var a[3];
func main() {
	a[read()] += 1;
}`,
	"shift_range": `
func main() {
	print(1 << read());
}`,
	"assert_fail": `
func main() {
	var x = read();
	assert(x > 10);
	print(x);
}`,
	"frames": `
func loop(n) { return loop(n + 1); }
func main() { print(loop(0)); }`,
	"switchable": `
var wrong = 0;
func main() {
	var n = read();
	var acc = 0;
	var i = 0;
	while (i < n) {
		if (i % 3 == 0) { acc = acc + i; }
		if (acc > 10) { wrong = 1; } else { wrong = 2; }
		i = i + 1;
	}
	print(acc, " ", wrong);
}`,
	"uninit_array_use": `
var a[4];
func touch() { a[1] = 5; return a[1]; }
var seeded = touch();
func main() { print(a[0], " ", a[1], " ", seeded); }`,
}

var diffInputs = [][]int64{
	nil,
	{0},
	{5, 2},
	{3, 0, 7, 1},
	{-4, 99, 2, 0, 1, 64},
}

// compareResults asserts byte-identity of two results, the heart of the
// backend contract: steps, outputs, rendered text, applied plans, error
// (position, statement and message), and every trace entry.
func compareResults(t *testing.T, want, got *interp.Result) {
	t.Helper()
	if want.Steps != got.Steps {
		t.Fatalf("Steps: tree %d, vm %d", want.Steps, got.Steps)
	}
	if want.ResumedAt != got.ResumedAt {
		t.Fatalf("ResumedAt: tree %d, vm %d", want.ResumedAt, got.ResumedAt)
	}
	if want.Rendered != got.Rendered {
		t.Fatalf("Rendered:\ntree %q\nvm   %q", want.Rendered, got.Rendered)
	}
	if want.SwitchApplied != got.SwitchApplied || want.PerturbApplied != got.PerturbApplied {
		t.Fatalf("applied flags: tree (%v,%v), vm (%v,%v)",
			want.SwitchApplied, want.PerturbApplied, got.SwitchApplied, got.PerturbApplied)
	}
	if !reflect.DeepEqual(want.Outputs, got.Outputs) {
		t.Fatalf("Outputs:\ntree %v\nvm   %v", want.Outputs, got.Outputs)
	}
	compareErr(t, want.Err, got.Err)
	compareTraces(t, want.Trace, got.Trace)
}

func compareErr(t *testing.T, want, got error) {
	t.Helper()
	if (want == nil) != (got == nil) {
		t.Fatalf("Err: tree %v, vm %v", want, got)
	}
	if want == nil {
		return
	}
	if want.Error() != got.Error() {
		t.Fatalf("Err text: tree %q, vm %q", want, got)
	}
	var wr, gr *interp.RuntimeError
	if !errors.As(want, &wr) || !errors.As(got, &gr) {
		t.Fatalf("Err types: tree %T, vm %T", want, got)
	}
	if wr.Pos != gr.Pos || wr.Stmt != gr.Stmt {
		t.Fatalf("Err site: tree %v S%d, vm %v S%d", wr.Pos, wr.Stmt, gr.Pos, gr.Stmt)
	}
}

func compareTraces(t *testing.T, want, got *trace.Trace) {
	t.Helper()
	if (want == nil) != (got == nil) {
		t.Fatalf("Trace: tree %v, vm %v", want != nil, got != nil)
	}
	if want == nil {
		return
	}
	if want.Len() != got.Len() {
		t.Fatalf("Trace length: tree %d, vm %d", want.Len(), got.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if !reflect.DeepEqual(*want.At(i), *got.At(i)) {
			t.Fatalf("entry %d:\ntree %+v\nvm   %+v", i, *want.At(i), *got.At(i))
		}
	}
	if !reflect.DeepEqual(want.Outputs, got.Outputs) {
		t.Fatalf("trace Outputs:\ntree %v\nvm   %v", want.Outputs, got.Outputs)
	}
}

func runBoth(t *testing.T, c *interp.Compiled, opts interp.Options) (*interp.Result, *interp.Result) {
	t.Helper()
	tree := interp.Tree.Run(c, opts)
	vm := Backend.Run(c, opts)
	return tree, vm
}

func TestDifferentialPrograms(t *testing.T) {
	for name, src := range diffPrograms {
		t.Run(name, func(t *testing.T) {
			c := interp.MustCompile(src)
			for i, input := range diffInputs {
				for _, traced := range []bool{false, true} {
					opts := interp.Options{Input: input, BuildTrace: traced}
					tree, vm := runBoth(t, c, opts)
					if tree.Err != nil && !errors.As(tree.Err, new(*interp.RuntimeError)) {
						t.Fatalf("input %d: unexpected error type %T", i, tree.Err)
					}
					compareResults(t, tree, vm)
				}
			}
		})
	}
}

// TestDifferentialSwitch flips every predicate instance of every traced
// run (capped) on both backends and compares the switched results.
func TestDifferentialSwitch(t *testing.T) {
	for name, src := range diffPrograms {
		t.Run(name, func(t *testing.T) {
			c := interp.MustCompile(src)
			input := diffInputs[3]
			orig := interp.Tree.Run(c, interp.Options{Input: input, BuildTrace: true})
			n := 0
			for i := 0; i < orig.Trace.Len() && n < 12; i++ {
				e := orig.Trace.At(i)
				if e.Branch == 0 { // not a predicate
					continue
				}
				n++
				plan := &interp.SwitchPlan{Stmt: e.Inst.Stmt, Occ: e.Inst.Occ}
				opts := interp.Options{Input: input, BuildTrace: true, Switch: plan}
				tree, vm := runBoth(t, c, opts)
				if !tree.SwitchApplied {
					t.Fatalf("switch %v not applied", plan)
				}
				compareResults(t, tree, vm)
			}
		})
	}
}

// TestDifferentialPerturb perturbs defining instances on both backends.
func TestDifferentialPerturb(t *testing.T) {
	c := interp.MustCompile(diffPrograms["switchable"])
	input := []int64{9}
	orig := interp.Tree.Run(c, interp.Options{Input: input, BuildTrace: true})
	n := 0
	for i := 0; i < orig.Trace.Len() && n < 10; i++ {
		e := orig.Trace.At(i)
		if len(e.Defs) == 0 {
			continue
		}
		n++
		plan := &interp.PerturbPlan{Stmt: e.Inst.Stmt, Occ: e.Inst.Occ, Value: 77}
		opts := interp.Options{Input: input, BuildTrace: true, Perturb: plan}
		tree, vm := runBoth(t, c, opts)
		compareResults(t, tree, vm)
	}
}

// TestDifferentialBudget sweeps the step budget through every possible
// expiry point: identical Steps (clamped at the budget), error class,
// and trace prefix at the cut.
func TestDifferentialBudget(t *testing.T) {
	c := interp.MustCompile(diffPrograms["loops"])
	full := interp.Tree.Run(c, interp.Options{BuildTrace: true})
	if full.Err != nil {
		t.Fatal(full.Err)
	}
	for budget := 1; budget <= full.Steps+1; budget++ {
		opts := interp.Options{BuildTrace: true, StepBudget: budget}
		tree, vm := runBoth(t, c, opts)
		if budget < full.Steps {
			if !errors.Is(tree.Err, interp.ErrBudget) || tree.Steps != budget {
				t.Fatalf("budget %d: tree err %v steps %d", budget, tree.Err, tree.Steps)
			}
		} else if tree.Err != nil {
			t.Fatalf("budget %d: unexpected %v", budget, tree.Err)
		}
		compareResults(t, tree, vm)
	}
}

// countdownCtx is a deterministic cancellation probe: Err() flips
// non-nil after a fixed number of calls, so both backends observe the
// cancellation at the same poll — provided they poll on the same step
// grid, which is exactly what the test pins.
type countdownCtx struct {
	context.Context
	left int
}

func (c *countdownCtx) Err() error {
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func TestDifferentialCtxCancel(t *testing.T) {
	// A program long enough to cross several 1024-step poll marks.
	c := interp.MustCompile(`
func main() {
	var s = 0;
	var i = 0;
	while (i < 3000) { s = s + i; i = i + 1; }
	print(s);
}`)
	for _, polls := range []int{1, 2, 3, 4} {
		// Each backend gets its own countdown so both see the identical
		// Err() sequence: one startup check plus one per on-grid poll.
		tree := interp.Tree.Run(c, interp.Options{BuildTrace: true, Ctx: &countdownCtx{left: polls}})
		vm := Backend.Run(c, interp.Options{BuildTrace: true, Ctx: &countdownCtx{left: polls}})
		if tree.Err == nil != (vm.Err == nil) {
			t.Fatalf("polls %d: tree err %v, vm err %v", polls, tree.Err, vm.Err)
		}
		if tree.Err != nil && !interp.IsCancellation(tree.Err) {
			t.Fatalf("polls %d: unexpected %v", polls, tree.Err)
		}
		compareResults(t, tree, vm)
	}
}

// TestDifferentialRandom fuzzes generated programs through both
// backends in plain and trace mode.
func TestDifferentialRandom(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		src := testsupport.RandomProgram(rnd, testsupport.GenConfig{})
		input := testsupport.RandomInput(rnd, 8)
		c, err := interp.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		for _, traced := range []bool{false, true} {
			tree, vm := runBoth(t, c, interp.Options{Input: input, BuildTrace: traced})
			compareResults(t, tree, vm)
		}
	}
}

// TestCheckpointFork pins the VM's pc/frame-stack checkpoints: a
// switched fork from every retained snapshot must be byte-identical to
// a full switched run, and the capture schedule must match the
// tree-walker's (same capture step counts, same retained count).
func TestCheckpointFork(t *testing.T) {
	c := interp.MustCompile(diffPrograms["switchable"])
	input := []int64{40}

	treeCks := interp.Tree.NewCheckpoints(8)
	treeRun := interp.Tree.Run(c, interp.Options{Input: input, BuildTrace: true, Checkpoints: treeCks})
	vmCks := Backend.NewCheckpoints(8)
	vmRun := Backend.Run(c, interp.Options{Input: input, BuildTrace: true, Checkpoints: vmCks})
	compareResults(t, treeRun, vmRun)

	ts, vs := treeCks.Stats(), vmCks.Stats()
	if ts.Count != vs.Count || ts.Captured != vs.Captured || ts.Thinned != vs.Thinned {
		t.Fatalf("capture schedules diverge: tree %+v, vm %+v", ts, vs)
	}

	// Fork every switchable predicate instance from the VM store and
	// check against both a full VM switched run and the tree fork.
	forks := 0
	for i := 0; i < vmRun.Trace.Len(); i++ {
		e := vmRun.Trace.At(i)
		if e.Branch == 0 {
			continue
		}
		plan := &interp.SwitchPlan{Stmt: e.Inst.Stmt, Occ: e.Inst.Occ}
		opts := interp.Options{Input: input, BuildTrace: true, Switch: plan}
		vmFork := Backend.RunSwitchedFrom(vmCks, vmRun.Trace, c, opts)
		treeFork := interp.Tree.RunSwitchedFrom(treeCks, treeRun.Trace, c, opts)
		if (vmFork == nil) != (treeFork == nil) {
			t.Fatalf("fork availability diverges at %v: tree %v, vm %v", plan, treeFork != nil, vmFork != nil)
		}
		if vmFork == nil {
			continue
		}
		forks++
		compareResults(t, treeFork, vmFork)
		full := Backend.Run(c, opts)
		full.ResumedAt = vmFork.ResumedAt // the only legitimate difference
		compareResults(t, full, vmFork)
	}
	if forks == 0 {
		t.Fatal("no forks exercised")
	}
}

// TestForeignCheckpointStore: handing a store to the other backend must
// be a no-op (run completes, nothing captured, forks decline).
func TestForeignCheckpointStore(t *testing.T) {
	c := interp.MustCompile(diffPrograms["switchable"])
	input := []int64{12}

	treeStore := interp.Tree.NewCheckpoints(4)
	res := Backend.Run(c, interp.Options{Input: input, BuildTrace: true, Checkpoints: treeStore})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if treeStore.Len() != 0 {
		t.Fatalf("VM run captured into a tree store: %d", treeStore.Len())
	}
	plan := &interp.SwitchPlan{Stmt: 1, Occ: 1}
	if r := Backend.RunSwitchedFrom(treeStore, res.Trace, c, interp.Options{Input: input, BuildTrace: true, Switch: plan}); r != nil {
		t.Fatal("VM fork accepted a tree store")
	}

	vmStore := Backend.NewCheckpoints(4)
	res = interp.Tree.Run(c, interp.Options{Input: input, BuildTrace: true, Checkpoints: vmStore})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if vmStore.Len() != 0 {
		t.Fatalf("tree run captured into a VM store: %d", vmStore.Len())
	}
	if r := interp.Tree.RunSwitchedFrom(vmStore, res.Trace, c, interp.Options{Input: input, BuildTrace: true, Switch: plan}); r != nil {
		t.Fatal("tree fork accepted a VM store")
	}
}

// TestDifferentialForkBudgetAndCancel exercises forked runs under tight
// budgets and countdown cancellation on both backends.
func TestDifferentialForkBudgetAndCancel(t *testing.T) {
	c := interp.MustCompile(diffPrograms["switchable"])
	input := []int64{60}

	treeCks := interp.Tree.NewCheckpoints(8)
	treeRun := interp.Tree.Run(c, interp.Options{Input: input, BuildTrace: true, Checkpoints: treeCks})
	vmCks := Backend.NewCheckpoints(8)
	vmRun := Backend.Run(c, interp.Options{Input: input, BuildTrace: true, Checkpoints: vmCks})

	// Pick the last predicate instance: its fork has the longest prefix.
	var plan *interp.SwitchPlan
	for i := vmRun.Trace.Len() - 1; i >= 0; i-- {
		e := vmRun.Trace.At(i)
		if e.Branch != 0 {
			plan = &interp.SwitchPlan{Stmt: e.Inst.Stmt, Occ: e.Inst.Occ}
			break
		}
	}
	if plan == nil {
		t.Fatal("no predicate found")
	}
	for _, budget := range []int{1, 5, treeRun.Steps / 2, treeRun.Steps, treeRun.Steps * 2} {
		opts := interp.Options{Input: input, BuildTrace: true, Switch: plan, StepBudget: budget}
		vmFork := Backend.RunSwitchedFrom(vmCks, vmRun.Trace, c, opts)
		treeFork := interp.Tree.RunSwitchedFrom(treeCks, treeRun.Trace, c, opts)
		if (vmFork == nil) != (treeFork == nil) {
			t.Fatalf("budget %d: fork availability diverges", budget)
		}
		if vmFork != nil {
			compareResults(t, treeFork, vmFork)
		}
	}
	for _, polls := range []int{1, 2} {
		opts := interp.Options{Input: input, BuildTrace: true, Switch: plan}
		opts.Ctx = &countdownCtx{left: polls}
		vmFork := Backend.RunSwitchedFrom(vmCks, vmRun.Trace, c, opts)
		opts.Ctx = &countdownCtx{left: polls}
		treeFork := interp.Tree.RunSwitchedFrom(treeCks, treeRun.Trace, c, opts)
		if (vmFork == nil) != (treeFork == nil) {
			t.Fatalf("polls %d: fork availability diverges", polls)
		}
		if vmFork != nil {
			compareResults(t, treeFork, vmFork)
		}
	}
}

func TestDisassemble(t *testing.T) {
	c := interp.MustCompile(diffPrograms["loops"])
	d1 := Disassemble(c)
	d2 := Disassemble(c)
	if d1 != d2 {
		t.Fatal("disassembly not deterministic")
	}
	for _, want := range []string{"globals:", "func main", "begin", "pred", "jump", "callmain", "halt", "endfn", "while (i < 10)"} {
		if !strings.Contains(d1, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, d1)
		}
	}
}

// TestArtifactCaching: one Compiled lowers once.
func TestArtifactCaching(t *testing.T) {
	c := interp.MustCompile(`func main() { print(1); }`)
	p1 := programOf(c)
	p2 := programOf(c)
	if p1 != p2 {
		t.Fatal("bytecode not cached on Compiled")
	}
	if p1.NumInstrs() == 0 {
		t.Fatal("empty program")
	}
}

func TestErrorMessages(t *testing.T) {
	// Pin the exact error strings (positions included) against the tree
	// backend for each runtime error class.
	cases := []struct {
		name string
		src  string
		in   []int64
	}{
		{"div", diffPrograms["div_zero"], []int64{0}},
		{"bounds", diffPrograms["bounds_read"], []int64{5}},
		{"boundsneg", diffPrograms["bounds_write"], []int64{-1}},
		{"shift", diffPrograms["shift_range"], []int64{64}},
		{"assert", diffPrograms["assert_fail"], []int64{1}},
		{"frames", diffPrograms["frames"], nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := interp.MustCompile(tc.src)
			tree, vm := runBoth(t, c, interp.Options{Input: tc.in, BuildTrace: true})
			if tree.Err == nil {
				t.Fatal("expected an error")
			}
			compareErr(t, tree.Err, vm.Err)
			if fmt.Sprint(tree.Err) != fmt.Sprint(vm.Err) {
				t.Fatalf("message mismatch: %v vs %v", tree.Err, vm.Err)
			}
		})
	}
}
