package vm

import (
	"eol/internal/interp"
	"eol/internal/trace"
)

// Backend is the bytecode VM execution backend. It satisfies the same
// byte-identity contract as interp.Tree (see interp.Backend); the
// compiled bytecode is cached on the *interp.Compiled, so repeated runs
// of one program lower it exactly once.
var Backend interp.Backend = vmBackend{}

type vmBackend struct{}

func (vmBackend) Name() string { return "vm" }

func (vmBackend) Run(c *interp.Compiled, opts interp.Options) *interp.Result {
	return run(c, opts)
}

func (vmBackend) NewCheckpoints(max int) interp.Checkpoints { return NewStore(max) }

func (vmBackend) RunSwitchedFrom(cks interp.Checkpoints, orig *trace.Trace, c *interp.Compiled, opts interp.Options) *interp.Result {
	st, _ := cks.(*Store) // a foreign (tree) store falls back to a full run
	if st == nil || orig == nil || opts.Switch == nil {
		return nil
	}
	idx := orig.FindInstance(trace.Instance{Stmt: opts.Switch.Stmt, Occ: opts.Switch.Occ})
	if idx < 0 {
		return nil
	}
	ck := st.Nearest(idx)
	if ck == nil {
		return nil
	}
	if opts.StepBudget > 0 && opts.StepBudget <= ck.steps {
		// A full run would exhaust this budget before reaching the
		// checkpoint; forking would misreport the expiry step.
		return nil
	}
	return runFrom(c, ck, opts)
}

// progKey is the Artifact cache key for the compiled bytecode.
var progKey int

// programOf returns c's bytecode, lowering it on first use.
func programOf(c *interp.Compiled) *Program {
	return c.Artifact(&progKey, func() any { return Compile(c) }).(*Program)
}
