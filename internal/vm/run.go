package vm

import (
	"fmt"
	"strconv"
	"strings"

	"eol/internal/cfg"
	"eol/internal/interp"
	"eol/internal/lang/token"
	"eol/internal/trace"
)

// machine is one VM execution: the operand stack, the activation
// frames, the call records and the trace cursor. Its observable
// behavior — trace entries, outputs, rendered text, step counts,
// errors — is byte-identical to the tree-walker's; every case in exec
// mirrors a specific code path of interp.execStmt/evalExpr, and the
// differential suite in internal/proptest pins the equivalence.
type machine struct {
	p         *Program
	input     []int64
	inPos     int
	plan      *interp.SwitchPlan
	perturb   *interp.PerturbPlan
	maxFrames int
	meter     interp.StepMeter

	tr      *trace.Trace // nil in plain mode
	occ     []int
	frames  []*frame
	calls   []callRec
	nextAct int
	out     strings.Builder
	res     *interp.Result

	stack []int64
	sp    int

	// The statement instance currently executing: its trace index (-1
	// outside / in plain mode), a cached pointer to its entry (re-fetched
	// whenever the entries slice may have grown, i.e. after calls
	// return), and its side-table row.
	curEntry int
	curE     *trace.Entry
	curMeta  *stmtMeta

	cks     *Store // capture store; nil on plain and forked runs
	scratch [24]byte

	// Use/def records are carved from shared pointer-free arena chunks
	// instead of one tiny heap object per entry: entries' Uses/Defs
	// slices become capacity-clipped windows into a chunk, so the GC
	// traces a handful of large noscan objects rather than thousands of
	// small ones. An entry that outgrows its window falls back to a
	// plain append reallocation, which is rare and harmless.
	useArena []trace.UseRec
	defArena []trace.DefRec
}

// Arena chunks double from arenaChunkMin up to arenaChunkMax records, so
// short runs (the verify engine forks many brief switched suffixes) waste
// at most ~2x their actual usage while long runs settle into large chunks.
const (
	arenaChunkMin = 256
	arenaChunkMax = 16384
)

func nextChunk(cur, n int) int {
	c := cur * 2
	if c < arenaChunkMin {
		c = arenaChunkMin
	}
	if c > arenaChunkMax {
		c = arenaChunkMax
	}
	if c < n {
		c = n
	}
	return c
}

// carveUses reserves an n-record window for the current entry.
func (m *machine) carveUses(n int) []trace.UseRec {
	if len(m.useArena)+n > cap(m.useArena) {
		m.useArena = make([]trace.UseRec, 0, nextChunk(cap(m.useArena), n))
	}
	s := len(m.useArena)
	m.useArena = m.useArena[:s+n]
	return m.useArena[s:s : s+n]
}

// carveDefs reserves an n-record window for the current entry.
func (m *machine) carveDefs(n int) []trace.DefRec {
	if len(m.defArena)+n > cap(m.defArena) {
		m.defArena = make([]trace.DefRec, 0, nextChunk(cap(m.defArena), n))
	}
	s := len(m.defArena)
	m.defArena = m.defArena[:s+n]
	return m.defArena[s:s : s+n]
}

// callRec is the VM's call-stack record: where to return, and the
// caller statement context to restore (the tree-walker keeps both in
// its Go stack).
type callRec struct {
	retpc      int32
	base       int32 // operand-stack position on entry (args popped)
	savedEntry int32 // caller's curEntry
	savedMeta  *stmtMeta
	recordRet  bool // record a RetvalSym use at the call site (false for main)
}

// vmAbort is the panic payload used to unwind on runtime errors.
type vmAbort struct{ err *interp.RuntimeError }

func (m *machine) fail(pos token.Pos, stmt int, err error) {
	panic(vmAbort{&interp.RuntimeError{Pos: pos, Stmt: stmt, Err: err}})
}

func (m *machine) push(v int64) {
	if m.sp == len(m.stack) {
		m.stack = append(m.stack, v)
	} else {
		m.stack[m.sp] = v
	}
	m.sp++
}

func (m *machine) pop() int64 {
	m.sp--
	return m.stack[m.sp]
}

// run executes a compiled program from the top under opts; it is the
// VM analogue of interp.Run and mirrors its setup exactly.
func run(c *interp.Compiled, opts interp.Options) *interp.Result {
	p := programOf(c)
	m := &machine{
		p:         p,
		input:     opts.Input,
		plan:      opts.Switch,
		perturb:   opts.Perturb,
		maxFrames: opts.MaxFrames,
		occ:       make([]int, c.Info.NumStmts()+1),
		res:       &interp.Result{},
		curEntry:  -1,
	}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			// Already expired: no partial output.
			m.res.Err = &interp.RuntimeError{Err: interp.CtxErr(err)}
			return m.res
		}
	}
	budget := opts.StepBudget
	if budget <= 0 {
		budget = interp.DefaultStepBudget
	}
	if m.maxFrames <= 0 {
		m.maxFrames = interp.DefaultMaxFrames
	}
	m.meter = interp.NewStepMeter(&m.res.Steps, budget, opts.Ctx, false)
	if opts.BuildTrace {
		m.tr = trace.NewLazy()
		m.res.Trace = m.tr
		// Only a VM store can capture here; a foreign (tree) store is
		// left untouched.
		if st, ok := opts.Checkpoints.(*Store); ok && st != nil {
			st.bind(m.tr)
			m.cks = st
		}
	}
	if opts.Rec.Enabled() {
		mode := "plain"
		if opts.BuildTrace {
			mode = "trace"
		}
		opts.Rec.Begin("interp_run", "mode", mode)
		defer func() { opts.Rec.End("interp_run", int64(m.res.Steps)) }()
	}

	// Frame 0: globals. Code starts at pc 0 with the global declarations
	// and calls main via opCallMain.
	m.frames = append(m.frames, newFrame(0, c.Info.NumGlobalSlots, -1))
	m.nextAct = 1
	m.execTrapped(0)
	if m.tr != nil {
		m.tr.Finish()
	}
	m.res.Rendered = m.out.String()
	return m.res
}

// runFrom forks a run from a VM checkpoint, executing only the suffix;
// the VM analogue of interp.RunFrom (same contract, same caveats).
func runFrom(c *interp.Compiled, ck *checkpoint, opts interp.Options) *interp.Result {
	m := &machine{
		p:         programOf(c),
		input:     opts.Input,
		inPos:     ck.inPos,
		plan:      opts.Switch,
		perturb:   opts.Perturb,
		maxFrames: opts.MaxFrames,
		occ:       append([]int(nil), ck.occ...),
		nextAct:   ck.nextAct,
		res:       &interp.Result{Steps: ck.steps, ResumedAt: ck.steps},
		curEntry:  -1,
	}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			m.res.Err = &interp.RuntimeError{Err: interp.CtxErr(err)}
			return m.res
		}
	}
	budget := opts.StepBudget
	if budget <= 0 {
		budget = interp.DefaultStepBudget
	}
	if m.maxFrames <= 0 {
		m.maxFrames = interp.DefaultMaxFrames
	}
	// forceFirstPoll: the inherited step count is off the poll grid, but
	// the first suffix step must still observe a dead context.
	m.meter = interp.NewStepMeter(&m.res.Steps, budget, opts.Ctx, true)
	m.frames = append([]*frame(nil), ck.frames...)
	m.calls = append([]callRec(nil), ck.calls...)
	m.stack = append([]int64(nil), ck.stack...)
	m.sp = len(m.stack)
	m.tr = ck.prefix.Fork()
	// A switched suffix usually runs to a length comparable to the
	// original one; reserving it up front removes the amortized-growth
	// copies that otherwise dominate forked-run trace construction.
	m.tr.Reserve(ck.prefix.BaseLen() - ck.prefix.Len() + 64)
	m.res.Trace = m.tr
	m.res.Outputs = m.tr.Outputs // both clipped: first append reallocates
	m.out.WriteString(ck.rendered)

	// The snapshot pc points just past the opCheck the capture fired at;
	// a fork never re-captures (cks == nil), so skipping it is exact.
	m.execTrapped(ck.pc)
	m.tr.Finish()
	m.res.Rendered = m.out.String()
	return m.res
}

// execTrapped runs the dispatch loop with the same abort handling as
// the tree-walker's run().
func (m *machine) execTrapped(pc int32) {
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(vmAbort); ok {
				m.res.Err = a.err
				return
			}
			panic(r)
		}
	}()
	m.exec(pc)
}

// exec is the dispatch loop.
func (m *machine) exec(pc int32) {
	code := m.p.code
	for {
		in := &code[pc]
		pc++
		switch in.op {

		case opBegin:
			meta := &m.p.stmts[in.a]
			if err := m.meter.Tick(); err != nil {
				m.fail(meta.pos, int(meta.id), err)
			}
			id := meta.id
			m.occ[id]++
			fr := m.frames[len(m.frames)-1]
			if meta.node != nil && len(fr.ctrl) > 0 && fr.ctrl[len(fr.ctrl)-1].ipdom == meta.node {
				fr = m.thawTop() // popping mutates the ctrl stack
				for len(fr.ctrl) > 0 && fr.ctrl[len(fr.ctrl)-1].ipdom == meta.node {
					fr.ctrl = fr.ctrl[:len(fr.ctrl)-1]
				}
			}
			m.curMeta = meta
			if m.tr == nil {
				m.curEntry = -1
				continue
			}
			parent := fr.callParent
			if len(fr.ctrl) > 0 {
				parent = fr.ctrl[len(fr.ctrl)-1].entryIdx
			}
			e, idx := m.tr.AppendSlot()
			e.Inst = trace.Instance{Stmt: int(id), Occ: m.occ[id]}
			e.Frame = fr.id
			e.Parent = parent
			m.curEntry = idx
			m.curE = e

		case opCheck:
			if st := m.cks; st != nil && m.res.Steps >= st.next && m.frames[len(m.frames)-1].id == 1 {
				st.capture(m, pc)
			}

		case opReset:
			m.curEntry = -1
			m.curE = nil
			m.curMeta = nil

		case opHalt:
			return

		case opConst:
			m.push(m.p.consts[in.a])

		case opPop:
			m.sp--

		case opLoadS:
			sym := m.p.syms[in.a]
			c := m.scalarCell(sym)
			m.recordUse(sym.ID, trace.ScalarElem, c.def, c.val)
			m.push(c.val)

		case opLoadA:
			sym := m.p.syms[in.a]
			i := m.pop()
			arr := m.arrayCells(sym)
			if i < 0 || i >= int64(len(arr)) {
				m.fail(in.pos, 0, fmt.Errorf("%w: %s[%d] (size %d)", interp.ErrBounds, sym.Name, i, len(arr)))
			}
			m.recordUse(sym.ID, i, arr[i].def, arr[i].val)
			m.push(arr[i].val)

		case opDeclS, opStoreS:
			sym := m.p.syms[in.a]
			v := m.maybePerturb(m.pop())
			fr := m.writableTargetFrame(sym)
			fr.scalars[sym.Slot] = cell{val: v, def: idxOrNoDef(m.curEntry)}
			m.recordDef(sym.ID, trace.ScalarElem, v)

		case opDeclA:
			sym := m.p.syms[in.a]
			arr := make([]cell, sym.Size)
			d := idxOrNoDef(m.curEntry)
			for i := range arr {
				arr[i].def = d
			}
			fr := m.writableTargetFrame(sym)
			fr.arrays[sym.Slot] = arr
			if fr.arrShared != nil {
				fr.arrShared[sym.Slot] = false
			}
			m.recordDef(sym.ID, trace.ScalarElem, 0)

		case opStoreSOp:
			sym := m.p.syms[in.a]
			rhs := m.pop()
			c := m.writableScalarCell(sym)
			// Compound assignment reads the old value first.
			m.recordUse(sym.ID, trace.ScalarElem, c.def, c.val)
			v := m.binop(token.Kind(in.b), c.val, rhs, in.pos, int(m.curMeta.id))
			v = m.maybePerturb(v)
			c.val = v
			c.def = idxOrNoDef(m.curEntry)
			m.recordDef(sym.ID, trace.ScalarElem, v)

		case opStoreA:
			sym := m.p.syms[in.a]
			i := m.pop()
			rhs := m.pop()
			arr := m.writableArrayCells(sym)
			if i < 0 || i >= int64(len(arr)) {
				m.fail(in.pos, int(m.curMeta.id), fmt.Errorf("%w: %s[%d] (size %d)", interp.ErrBounds, sym.Name, i, len(arr)))
			}
			v := m.maybePerturb(rhs)
			arr[i].val = v
			arr[i].def = idxOrNoDef(m.curEntry)
			m.recordDef(sym.ID, i, v)

		case opStoreAOp:
			sym := m.p.syms[in.a]
			i := m.pop()
			rhs := m.pop()
			arr := m.writableArrayCells(sym)
			if i < 0 || i >= int64(len(arr)) {
				m.fail(in.pos, int(m.curMeta.id), fmt.Errorf("%w: %s[%d] (size %d)", interp.ErrBounds, sym.Name, i, len(arr)))
			}
			m.recordUse(sym.ID, i, arr[i].def, arr[i].val)
			v := m.binop(token.Kind(in.b), arr[i].val, rhs, in.pos, int(m.curMeta.id))
			v = m.maybePerturb(v)
			arr[i].val = v
			arr[i].def = idxOrNoDef(m.curEntry)
			m.recordDef(sym.ID, i, v)

		case opJump:
			pc = in.a

		case opJnz:
			if m.pop() != 0 {
				pc = in.a
			}

		case opJz:
			if m.pop() == 0 {
				pc = in.a
			}

		case opBool:
			if m.stack[m.sp-1] != 0 {
				m.stack[m.sp-1] = 1
			}

		case opPred:
			taken := m.pop() != 0
			meta := m.curMeta
			id := int(meta.id)
			if m.plan != nil && m.plan.Stmt == id && m.plan.Occ == m.occ[id] {
				taken = !taken
				m.res.SwitchApplied = true
				if m.curE != nil {
					m.curE.Switched = true
				}
			}
			if e := m.curE; e != nil {
				if taken {
					e.Branch = cfg.True
					e.Value = 1
				} else {
					e.Branch = cfg.False
					e.Value = 0
				}
			}
			fr := m.thawTop()
			fr.ctrl = append(fr.ctrl, ctrlEntry{entryIdx: m.curEntry, ipdom: meta.ipdom})
			if !taken {
				pc = in.a
			}

		case opPredTrue:
			// Condition-less for: unconditional iteration, never switched.
			if e := m.curE; e != nil {
				e.Branch = cfg.True
				e.Value = 1
			}
			fr := m.thawTop()
			fr.ctrl = append(fr.ctrl, ctrlEntry{entryIdx: m.curEntry, ipdom: m.curMeta.ipdom})

		case opCall, opCallMain:
			fn := &m.p.fns[in.a]
			if len(m.frames) >= m.maxFrames {
				m.fail(in.pos, 0, interp.ErrFrames)
			}
			callSite := m.curEntry
			fr := newFrame(m.nextAct, int(fn.nslots), callSite)
			m.nextAct++
			base := m.sp - int(fn.nargs)
			d := idxOrNoDef(callSite)
			for i, p := range fn.params {
				fr.scalars[p.Slot] = cell{val: m.stack[base+i], def: d}
			}
			if callSite >= 0 {
				e := m.tr.At(callSite)
				if e.Defs == nil && len(fn.params) > 0 {
					e.Defs = m.carveDefs(len(fn.params))
				}
				for _, p := range fn.params {
					e.Defs = append(e.Defs, trace.DefRec{Sym: p.ID, Elem: trace.ScalarElem})
				}
			}
			m.sp = base
			m.calls = append(m.calls, callRec{
				retpc:      pc,
				base:       int32(base),
				savedEntry: int32(callSite),
				savedMeta:  m.curMeta,
				recordRet:  in.op == opCall,
			})
			m.frames = append(m.frames, fr)
			pc = fn.entry

		case opRetV:
			v := m.pop()
			if m.curE != nil {
				m.curE.Value = v
			}
			pc = m.doReturn(v, m.curEntry)

		case opRet:
			pc = m.doReturn(0, m.curEntry)

		case opEndFn:
			// Fell off the end of a body: no return entry.
			pc = m.doReturn(0, -1)

		case opNeg:
			m.stack[m.sp-1] = -m.stack[m.sp-1]

		case opNot:
			if m.stack[m.sp-1] == 0 {
				m.stack[m.sp-1] = 1
			} else {
				m.stack[m.sp-1] = 0
			}

		case opBnot:
			m.stack[m.sp-1] = ^m.stack[m.sp-1]

		case opAdd:
			b := m.pop()
			m.stack[m.sp-1] += b
		case opSub:
			b := m.pop()
			m.stack[m.sp-1] -= b
		case opMul:
			b := m.pop()
			m.stack[m.sp-1] *= b
		case opQuo:
			b := m.pop()
			if b == 0 {
				m.fail(in.pos, int(in.b), interp.ErrDivZero)
			}
			m.stack[m.sp-1] /= b
		case opRem:
			b := m.pop()
			if b == 0 {
				m.fail(in.pos, int(in.b), interp.ErrDivZero)
			}
			m.stack[m.sp-1] %= b
		case opAnd:
			b := m.pop()
			m.stack[m.sp-1] &= b
		case opOr:
			b := m.pop()
			m.stack[m.sp-1] |= b
		case opXor:
			b := m.pop()
			m.stack[m.sp-1] ^= b
		case opShl:
			b := m.pop()
			if b < 0 || b > 63 {
				m.fail(in.pos, int(in.b), interp.ErrShift)
			}
			m.stack[m.sp-1] <<= uint(b)
		case opShr:
			b := m.pop()
			if b < 0 || b > 63 {
				m.fail(in.pos, int(in.b), interp.ErrShift)
			}
			m.stack[m.sp-1] >>= uint(b)
		case opEql:
			b := m.pop()
			m.stack[m.sp-1] = b2i(m.stack[m.sp-1] == b)
		case opNeq:
			b := m.pop()
			m.stack[m.sp-1] = b2i(m.stack[m.sp-1] != b)
		case opLss:
			b := m.pop()
			m.stack[m.sp-1] = b2i(m.stack[m.sp-1] < b)
		case opLeq:
			b := m.pop()
			m.stack[m.sp-1] = b2i(m.stack[m.sp-1] <= b)
		case opGtr:
			b := m.pop()
			m.stack[m.sp-1] = b2i(m.stack[m.sp-1] > b)
		case opGeq:
			b := m.pop()
			m.stack[m.sp-1] = b2i(m.stack[m.sp-1] >= b)

		case opPrintS:
			m.out.WriteString(m.p.strs[in.a])

		case opPrintV:
			v := m.pop()
			m.out.Write(strconv.AppendInt(m.scratch[:0], v, 10))
			o := trace.Output{Seq: len(m.res.Outputs), Entry: idxOrNoDef(m.curEntry), Arg: int(in.a), Value: v}
			m.res.Outputs = append(m.res.Outputs, o)
			if m.tr != nil {
				m.tr.Outputs = append(m.tr.Outputs, o)
			}

		case opPrintNL:
			m.out.WriteByte('\n')

		case opRead:
			if m.inPos >= len(m.input) {
				m.push(-1)
			} else {
				m.push(m.input[m.inPos])
				m.inPos++
			}

		case opPeek:
			if m.inPos >= len(m.input) {
				m.push(-1)
			} else {
				m.push(m.input[m.inPos])
			}

		case opEof:
			m.push(b2i(m.inPos >= len(m.input)))

		case opAbs:
			if m.stack[m.sp-1] < 0 {
				m.stack[m.sp-1] = -m.stack[m.sp-1]
			}

		case opMin:
			b := m.pop()
			if b < m.stack[m.sp-1] {
				m.stack[m.sp-1] = b
			}

		case opMax:
			b := m.pop()
			if b > m.stack[m.sp-1] {
				m.stack[m.sp-1] = b
			}

		case opAssert:
			if m.stack[m.sp-1] == 0 {
				m.fail(in.pos, 0, interp.ErrAssert)
			}

		default:
			panic(fmt.Sprintf("vm: unexpected opcode %d at pc %d", in.op, pc-1))
		}
	}
}

// doReturn unwinds one activation: pops the frame and call record,
// restores the caller's statement context, records the return-value use
// at the call site (retEntry >= 0 and not the main call), and pushes
// the return value for the caller's expression.
func (m *machine) doReturn(v int64, retEntry int) int32 {
	rec := m.calls[len(m.calls)-1]
	m.calls = m.calls[:len(m.calls)-1]
	m.frames = m.frames[:len(m.frames)-1]
	m.sp = int(rec.base)
	m.curEntry = int(rec.savedEntry)
	m.curMeta = rec.savedMeta
	if m.curEntry >= 0 {
		// Re-fetch: callee entries may have grown the entries slice.
		m.curE = m.tr.At(m.curEntry)
	} else {
		m.curE = nil
	}
	if rec.recordRet && retEntry >= 0 {
		m.recordUse(trace.RetvalSym, trace.ScalarElem, retEntry, v)
	}
	m.push(v)
	return rec.retpc
}

func (m *machine) recordUse(sym int, elem int64, def int, val int64) {
	e := m.curE
	if e == nil {
		return
	}
	if e.Uses == nil {
		n := int(m.curMeta.nuses)
		if n < 1 {
			n = 1
		}
		e.Uses = m.carveUses(n)
	}
	e.Uses = append(e.Uses, trace.UseRec{Sym: sym, Elem: elem, Def: def, Val: val})
}

func (m *machine) recordDef(sym int, elem int64, val int64) {
	e := m.curE
	if e == nil {
		return
	}
	if e.Defs == nil {
		e.Defs = m.carveDefs(1)
	}
	e.Defs = append(e.Defs, trace.DefRec{Sym: sym, Elem: elem})
	e.Value = val
}

// maybePerturb applies the PerturbPlan if it targets the current
// statement instance.
func (m *machine) maybePerturb(v int64) int64 {
	if m.perturb != nil && m.perturb.Stmt == int(m.curMeta.id) && m.perturb.Occ == m.occ[m.curMeta.id] {
		m.res.PerturbApplied = true
		return m.perturb.Value
	}
	return v
}

func (m *machine) binop(op token.Kind, a, b int64, pos token.Pos, stmt int) int64 {
	switch op {
	case token.ADD:
		return a + b
	case token.SUB:
		return a - b
	case token.MUL:
		return a * b
	case token.QUO:
		if b == 0 {
			m.fail(pos, stmt, interp.ErrDivZero)
		}
		return a / b
	case token.REM:
		if b == 0 {
			m.fail(pos, stmt, interp.ErrDivZero)
		}
		return a % b
	case token.AND:
		return a & b
	case token.OR:
		return a | b
	case token.XOR:
		return a ^ b
	case token.SHL:
		if b < 0 || b > 63 {
			m.fail(pos, stmt, interp.ErrShift)
		}
		return a << uint(b)
	case token.SHR:
		if b < 0 || b > 63 {
			m.fail(pos, stmt, interp.ErrShift)
		}
		return a >> uint(b)
	case token.EQL:
		return b2i(a == b)
	case token.NEQ:
		return b2i(a != b)
	case token.LSS:
		return b2i(a < b)
	case token.LEQ:
		return b2i(a <= b)
	case token.GTR:
		return b2i(a > b)
	case token.GEQ:
		return b2i(a >= b)
	}
	panic(fmt.Sprintf("vm: unexpected binary op %v", op))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// idxOrNoDef converts a trace index (-1 in plain mode) to a def marker.
func idxOrNoDef(idx int) int {
	if idx < 0 {
		return trace.NoDef
	}
	return idx
}
