package harness

import (
	"context"
	"fmt"
	"io"
	"strings"

	"eol/internal/bench"
	"eol/internal/confidence"
	"eol/internal/core"
	"eol/internal/critpred"
	"eol/internal/ddg"
	"eol/internal/interp"
	"eol/internal/slicing"
	"eol/internal/trace"
)

// AblationARow reports the "relevant slicing + confidence" shortcut
// (§3.2 of the paper) against the verified-edge approach for one case.
type AblationARow struct {
	Case string
	// NaiveSanitizes reports whether the naive combination pins the
	// root-cause instance at confidence 1 (pruning it away).
	NaiveSanitizes bool
	// NaiveConf / VerifiedConf are the root instance's confidences under
	// the two schemes (verified-edge scheme measured after localization).
	NaiveConf    float64
	VerifiedKept bool // the verified approach keeps the root as candidate
}

// AblationA runs the naive RS+confidence combination on every case: all
// potential edges are added unverified and confidence flows across them.
// The paper predicts this sanitizes root causes; the verified approach
// (Table 3) keeps them.
func AblationA(ctx context.Context) ([]AblationARow, error) {
	var rows []AblationARow
	for _, c := range bench.Cases() {
		p, err := c.Prepare()
		if err != nil {
			return nil, err
		}
		tr := p.Run.Trace
		seq, missing, ok := slicing.FirstWrongOutput(p.Run.OutputValues(), p.Expected)
		if !ok || missing {
			return nil, fmt.Errorf("%s: no wrong-value failure", c.Name())
		}
		seed := slicing.FailureSeeds(tr, seq)
		cx := slicing.NewContext(p.Faulty, tr)

		// Relevant slicing adds every potential edge to the graph; also
		// expand PD for entries reachable from the correct outputs so the
		// naive pinning has false edges to cross (the paper's S9 -> S7).
		g := ddg.New(tr)
		cx.Relevant(g, seed)
		var correct []trace.Output
		for i := 0; i < seq; i++ {
			correct = append(correct, *tr.OutputAt(i))
			g.BackwardSlice(ddg.Explicit, tr.OutputAt(i).Entry).ForEach(func(e int) {
				for _, pd := range cx.PotentialDeps(e) {
					g.AddEdge(e, pd.Pred, ddg.Potential)
				}
			})
		}

		an := confidence.New(p.Faulty, g, p.Profile, correct, *tr.OutputAt(seq))
		an.Kinds |= ddg.Potential
		an.Naive = true
		an.Compute()

		// Root instances: any executed instance of the root statement.
		row := AblationARow{Case: c.Name(), NaiveSanitizes: true}
		for _, e := range tr.InstancesOf(p.RootStmt) {
			conf := an.Confidence(e)
			if conf > row.NaiveConf {
				row.NaiveConf = conf
			}
			if conf < 1 {
				row.NaiveSanitizes = false
			}
		}

		// The verified approach: did Table 3's run keep the root?
		rep, err := core.LocateContext(ctx, p.Spec())
		if err != nil {
			return nil, err
		}
		row.VerifiedKept = rep.Located
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationBRow compares Algorithm 2's data-dependence-EDGE approximation
// against the safe explicit-PATH variant of Definition 2.
type AblationBRow struct {
	Case              string
	EdgeVerifications int
	PathVerifications int
	EdgeIterations    int
	PathIterations    int
	EdgeLocated       bool
	PathLocated       bool
}

// AblationB runs the locator in both verification modes on every case.
func AblationB(ctx context.Context) ([]AblationBRow, error) {
	var rows []AblationBRow
	for _, c := range bench.Cases() {
		p, err := c.Prepare()
		if err != nil {
			return nil, err
		}
		edgeSpec := p.Spec()
		edgeRep, err := core.LocateContext(ctx, edgeSpec)
		if err != nil {
			return nil, err
		}
		pathSpec := p.Spec()
		pathSpec.PathMode = true
		pathRep, err := core.LocateContext(ctx, pathSpec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationBRow{
			Case:              c.Name(),
			EdgeVerifications: edgeRep.Stats.Verifications,
			PathVerifications: pathRep.Stats.Verifications,
			EdgeIterations:    edgeRep.Stats.Iterations,
			PathIterations:    pathRep.Stats.Iterations,
			EdgeLocated:       edgeRep.Located,
			PathLocated:       pathRep.Located,
		})
	}
	return rows, nil
}

// AblationCRow compares the demand-driven locator against the ICSE 2006
// critical-predicate search (brute-force whole-output repair).
type AblationCRow struct {
	Case string
	// LocatorVerifs is the locator's re-execution count; CritSwitches the
	// baseline's. CritFound reports whether a single switch repairs the
	// whole output; CritNamesRoot whether the critical predicate is the
	// root-cause statement itself.
	LocatorVerifs int
	CritSwitches  int
	CritFound     bool
	CritNamesRoot bool
	LocatorFound  bool
}

// AblationC runs the predicate-switching baseline next to the locator.
func AblationC(ctx context.Context) ([]AblationCRow, error) {
	var rows []AblationCRow
	for _, c := range bench.Cases() {
		p, err := c.Prepare()
		if err != nil {
			return nil, err
		}
		rep, err := core.LocateContext(ctx, p.Spec())
		if err != nil {
			return nil, err
		}
		res := critpred.Search(p.Faulty, c.FailingInput, p.Expected,
			critpred.Options{Strategy: critpred.Prior})
		rows = append(rows, AblationCRow{
			Case:          c.Name(),
			LocatorVerifs: rep.Stats.Verifications,
			CritSwitches:  res.Switches,
			CritFound:     res.Found,
			CritNamesRoot: res.Found && res.Critical.Stmt == p.RootStmt,
			LocatorFound:  rep.Located,
		})
	}
	return rows, nil
}

// WriteAblationA renders the §3.2 ablation.
func WriteAblationA(w io.Writer, rows []AblationARow) {
	fmt.Fprintf(w, "Ablation A. Naive relevant-slicing + confidence (§3.2 pitfall)\n")
	fmt.Fprintf(w, "%-16s %16s %10s %14s\n", "Case", "naive sanitizes", "naiveConf", "verified keeps")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %16v %10.3f %14v\n", r.Case, r.NaiveSanitizes, r.NaiveConf, r.VerifiedKept)
	}
}

// WriteAblationB renders the edges-vs-paths ablation.
func WriteAblationB(w io.Writer, rows []AblationBRow) {
	fmt.Fprintf(w, "Ablation B. VerifyDep: data-dependence edges vs explicit paths\n")
	fmt.Fprintf(w, "%-16s %12s %12s %10s %10s %8s %8s\n",
		"Case", "edge verifs", "path verifs", "edge iter", "path iter", "edge ok", "path ok")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %12d %12d %10d %10d %8v %8v\n",
			r.Case, r.EdgeVerifications, r.PathVerifications,
			r.EdgeIterations, r.PathIterations, r.EdgeLocated, r.PathLocated)
	}
}

// WriteAblationC renders the critical-predicate baseline comparison.
func WriteAblationC(w io.Writer, rows []AblationCRow) {
	fmt.Fprintf(w, "Ablation C. Demand-driven locator vs ICSE'06 critical-predicate search\n")
	fmt.Fprintf(w, "%-16s %14s %13s %10s %11s %11s\n",
		"Case", "locator verifs", "crit switches", "crit found", "names root", "locator ok")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %14d %13d %10v %11v %11v\n",
			r.Case, r.LocatorVerifs, r.CritSwitches, r.CritFound, r.CritNamesRoot, r.LocatorFound)
	}
}

// RenderAblation runs and renders ablation "A", "B" or "C".
func RenderAblation(ctx context.Context, name string) (string, error) {
	var sb strings.Builder
	switch strings.ToUpper(name) {
	case "A":
		rows, err := AblationA(ctx)
		if err != nil {
			return "", err
		}
		WriteAblationA(&sb, rows)
	case "B":
		rows, err := AblationB(ctx)
		if err != nil {
			return "", err
		}
		WriteAblationB(&sb, rows)
	case "C":
		rows, err := AblationC(ctx)
		if err != nil {
			return "", err
		}
		WriteAblationC(&sb, rows)
	case "D":
		rows, err := AblationD(ctx)
		if err != nil {
			return "", err
		}
		WriteAblationD(&sb, rows)
	default:
		return "", fmt.Errorf("unknown ablation %q (want A, B, C or D)", name)
	}
	return sb.String(), nil
}

// AblationDRow compares the two sources of Definition 1's condition (iv):
// the static potential-reaching analysis (this reproduction's default)
// against the exercised union dependence graph (the paper's prototype,
// built here from each case's passing test suite plus the failing run).
type AblationDRow struct {
	Case           string
	StaticRS       ddg.SliceStats
	UnionRS        ddg.SliceStats
	StaticCaptures bool
	UnionCaptures  bool
}

// AblationD computes RS under both PD sources for every case.
func AblationD(ctx context.Context) ([]AblationDRow, error) {
	var rows []AblationDRow
	for _, c := range bench.Cases() {
		p, err := c.Prepare()
		if err != nil {
			return nil, err
		}
		tr := p.Run.Trace
		seq, missing, ok := slicing.FirstWrongOutput(p.Run.OutputValues(), p.Expected)
		if !ok || missing {
			return nil, fmt.Errorf("%s: no wrong-value failure", c.Name())
		}
		seed := slicing.FailureSeeds(tr, seq)

		cx := slicing.NewContext(p.Faulty, tr)
		gStatic := ddg.New(tr)
		rsStatic := cx.Relevant(gStatic, seed)

		// Union graph from the faulty binary's test suite + the failing
		// run itself (the prototype unioned "a large number of test
		// cases"; the failing run was among the executions available).
		u := slicing.NewUnionGraph()
		for _, in := range c.PassingInputs {
			r := interp.Run(p.Faulty, interp.Options{Input: in, BuildTrace: true})
			if r.Err != nil {
				return nil, r.Err
			}
			u.AddTrace(r.Trace)
		}
		u.AddTrace(tr)

		cxU := slicing.NewContext(p.Faulty, tr)
		cxU.Union = u
		gUnion := ddg.New(tr)
		rsUnion := cxU.Relevant(gUnion, seed)

		rows = append(rows, AblationDRow{
			Case:           c.Name(),
			StaticRS:       gStatic.Stats(rsStatic),
			UnionRS:        gUnion.Stats(rsUnion),
			StaticCaptures: gStatic.ContainsStmt(rsStatic, p.RootStmt),
			UnionCaptures:  gUnion.ContainsStmt(rsUnion, p.RootStmt),
		})
	}
	return rows, nil
}

// WriteAblationD renders the PD-source comparison.
func WriteAblationD(w io.Writer, rows []AblationDRow) {
	fmt.Fprintf(w, "Ablation D. Potential-dependence source: static analysis vs union graph\n")
	fmt.Fprintf(w, "%-16s %15s %15s %11s %11s\n",
		"Case", "static RS", "union RS", "static cap", "union cap")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %7d/%-7d %7d/%-7d %11v %11v\n",
			r.Case, r.StaticRS.Static, r.StaticRS.Dynamic,
			r.UnionRS.Static, r.UnionRS.Dynamic,
			r.StaticCaptures, r.UnionCaptures)
	}
}
